// Copyright (c) prefrep contributors.
// Edit-script workloads for the resident serving layer (src/serve).
// A workload is a base prioritizing instance plus a stream of textual
// session-op lines (src/io/ops_format.h) — inserts, deletes, prefers,
// J updates and interleaved queries — that every serve consumer (the
// randomized differential battery in tests/serve_test.cc, the
// incremental-vs-rebuild benchmark in bench/bench_serve.cc, and
// prefrepd batch scripts) replays identically.
//
// Shape: `shards` conflict cliques on one relation R(3) with FD 1 → 2.
// All facts of a shard share attribute 1 and differ pairwise on
// attribute 2, so a shard is one block; shards use disjoint constants,
// so blocks are independent.  Edits pick their shard Zipf-skewed —
// like real dirty data, a few hot entities absorb most of the churn
// while the cold tail stays untouched, which is exactly the access
// pattern incremental maintenance exploits (hot blocks re-solve, cold
// blocks replay).
//
// Validity by construction: every delete names a live fact, inserts
// use fresh "e<counter>" labels (or revive a tombstoned fact of the
// same shard, exercising the revival path), and every prefer joins two
// live facts of one shard — conflicting by the shard's shared
// attribute 1 — oriented by a hidden linear order (global creation
// order), so the priority stays conflict-bounded and acyclic across
// any prefix of the script.

#ifndef PREFREP_GEN_EDIT_SCRIPT_H_
#define PREFREP_GEN_EDIT_SCRIPT_H_

#include <string>
#include <vector>

#include "model/problem.h"

namespace prefrep {

/// Knobs for MakeEditScriptWorkload.
struct EditScriptOptions {
  /// Independent conflict cliques (blocks) in the base instance.
  size_t shards = 16;
  /// Initial facts per shard (each shard is one clique of this size).
  size_t facts_per_shard = 4;
  /// Session-op lines to generate.
  size_t num_ops = 128;
  /// Zipf exponent for shard selection (0 = uniform; higher = hotter
  /// hot shards).
  double shard_skew = 1.1;
  /// Fraction of ops that are queries (check/count/construct/cqa); the
  /// rest are edits.  Queries rotate through the semantics
  /// deterministically.
  double query_fraction = 0.25;
  /// Among edits: probability of a delete (inserts and prefers split
  /// the remainder evenly).
  double delete_fraction = 0.34;
  /// Every this many ops, a jset line re-anchors J to the first live
  /// fact of every nonempty shard (0 disables).
  size_t jset_every = 16;
  uint64_t seed = 1;
};

/// A base problem plus the op lines to replay against it.
struct EditScriptWorkload {
  PreferredRepairProblem problem;
  /// Textual session-op lines, parseable by ParseSessionOp; every line
  /// is valid when executed in order (after any prefix of the script).
  std::vector<std::string> ops;
};

/// Generates the sharded base instance and a Zipf-skewed edit/query
/// script over it.  Deterministic given the options.
EditScriptWorkload MakeEditScriptWorkload(const EditScriptOptions& options);

}  // namespace prefrep

#endif  // PREFREP_GEN_EDIT_SCRIPT_H_
