// schema_advisor — a command-line tool around the two dichotomy
// classifiers (Theorems 6.1 and 7.6): given a schema, report for each
// relation which tractable case (if any) it falls into, the overall
// verdicts for ordinary and cross-conflict priorities, and — for hard
// relations — the §5.2 hardness case with its determiners.
//
// Usage:
//   ./build/examples/schema_advisor file.schema    # text-format input
//   ./build/examples/schema_advisor --demo         # built-in showcase
//
// Input files use the library text format, e.g.
//   relation LibLoc 2
//   fd LibLoc: 1 -> 2
//   fd LibLoc: 2 -> 1

#include <cstdio>
#include <cstring>

#include "classify/case_analysis.h"
#include "classify/ccp_dichotomy.h"
#include "classify/dichotomy.h"
#include "gen/running_example.h"
#include "io/text_format.h"
#include "reductions/hard_schemas.h"
#include "reductions/pattern_reduction.h"

using namespace prefrep;

namespace {

void Report(const std::string& name, const Schema& schema) {
  std::printf("=== %s ===\n%s", name.c_str(), schema.ToString().c_str());
  SchemaClassification ordinary = ClassifySchema(schema);
  for (RelId r = 0; r < schema.num_relations(); ++r) {
    const RelationClassification& rc = ordinary.relations[r];
    std::printf("  %-10s %-10s %s\n", schema.relation_name(r).c_str(),
                TractableKindName(rc.kind), rc.explanation.c_str());
    if (rc.kind == TractableKind::kHard) {
      Result<HardnessCase> hard = AnalyzeHardRelation(schema.fds(r));
      if (hard.ok()) {
        std::printf("             hardness case %d (%s)\n",
                    hard->case_number, hard->explanation.c_str());
        if (hard->case_number >= 2) {
          std::printf("             A = %s (A+ = %s), B = %s (B+ = %s)\n",
                      hard->a.ToString().c_str(),
                      hard->a_plus.ToString().c_str(),
                      hard->b.ToString().c_str(),
                      hard->b_plus.ToString().c_str());
        }
        if (schema.num_relations() == 1) {
          auto reduction = PatternReduction::Search(schema);
          if (reduction.ok()) {
            std::printf("             verified reduction: %s\n",
                        reduction->ToString().c_str());
          }
        }
      }
    }
  }
  std::printf("  ordinary priorities (Thm 3.1): %s\n",
              ordinary.tractable ? "PTIME" : "coNP-complete");
  CcpSchemaClassification ccp = ClassifyCcpSchema(schema);
  std::printf("  cross-conflict priorities (Thm 7.1): %s (%s)\n\n",
              ccp.tractable() ? "PTIME" : "coNP-complete",
              ccp.explanation.c_str());
}

int Demo() {
  Report("running example (Ex. 3.2)", RunningExampleSchema());
  for (int i = 1; i <= 6; ++i) {
    Report("S" + std::to_string(i) + " (Ex. 3.4)", HardSchema(i));
  }
  Report("Sa (§7.3)", CcpHardSchemaSa());
  Report("Sd (§7.3: tractable under Thm 3.1, hard under Thm 7.1)",
         CcpHardSchemaSd());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) {
    return Demo();
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <schema-file> | --demo\n"
                 "  schema files use the prefrep text format\n",
                 argv[0]);
    return 2;
  }
  Result<PreferredRepairProblem> parsed = ParseProblemFile(argv[1]);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Report(argv[1], parsed->instance->schema());
  return 0;
}
