#include "repair/completion.h"

#include "base/random.h"
#include "repair/audit.h"
#include "repair/subinstance_ops.h"

namespace prefrep {

CheckResult CheckCompletionOptimal(const ConflictGraph& cg,
                                   const PriorityRelation& pr,
                                   const DynamicBitset& j,
                                   const DynamicBitset* universe) {
  PREFREP_CHECK_MSG(pr.IsConflictBounded(),
                    "completion semantics require conflict-bounded "
                    "priorities (§2.3)");
  if (!IsConsistent(cg, j)) {
    return CheckResult::NotOptimalNoWitness();
  }
  size_t n = cg.num_facts();
  DynamicBitset remaining(n);
  if (universe != nullptr) {
    remaining = *universe;  // dominators and conflicts never leave a block
  } else {
    remaining.set_all();
  }
  DynamicBitset picked(n);

  // Greedy fixpoint over J-facts.  Picking a pickable fact never blocks
  // another (deletions only shrink the set of potential dominators), so
  // the order of picks within a round is immaterial.
  bool changed = true;
  while (changed) {
    changed = false;
    for (FactId f = 0; f < n; ++f) {
      if (!j.test(f) || !remaining.test(f)) {
        continue;
      }
      bool blocked = false;
      for (FactId g : pr.DominatedBy(f)) {
        if (remaining.test(g)) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        continue;
      }
      picked.set(f);
      remaining.reset(f);
      for (FactId u : cg.neighbors(f)) {
        remaining.reset(u);
      }
      changed = true;
    }
  }
  const DynamicBitset target = universe != nullptr ? (j & *universe) : j;
  CheckResult result = picked == target && remaining.none()
                           ? CheckResult::Optimal()
                           : CheckResult::NotOptimalNoWitness();
  audit::CheckCompletionVerdict(cg, pr, j, universe, result);
  return result;
}

DynamicBitset GreedyCompletionRepair(const ConflictGraph& cg,
                                     const PriorityRelation& pr,
                                     uint64_t seed) {
  Rng rng(seed);
  size_t n = cg.num_facts();
  DynamicBitset remaining(n);
  remaining.set_all();
  DynamicBitset out(n);
  size_t left = n;
  while (left > 0) {
    // Collect the ≻-maximal remaining facts.
    std::vector<FactId> candidates;
    remaining.ForEach([&](size_t f) {
      for (FactId g : pr.DominatedBy(static_cast<FactId>(f))) {
        if (remaining.test(g)) {
          return;
        }
      }
      candidates.push_back(static_cast<FactId>(f));
    });
    PREFREP_CHECK_MSG(!candidates.empty(),
                      "acyclic priority must leave a maximal fact");
    FactId f = candidates[rng.NextBounded(candidates.size())];
    out.set(f);
    remaining.reset(f);
    --left;
    for (FactId u : cg.neighbors(f)) {
      if (remaining.test(u)) {
        remaining.reset(u);
        --left;
      }
    }
  }
  audit::CheckConstructedRepair(cg, pr, out, "GreedyCompletionRepair");
  return out;
}

}  // namespace prefrep
