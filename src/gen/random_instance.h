// Copyright (c) prefrep contributors.
// Randomized problem generation for property tests and benchmarks:
// instances with controllable conflict density, acyclic priorities
// (sampled from a hidden linear order, hence always acyclic), and
// several candidate-J policies.

#ifndef PREFREP_GEN_RANDOM_INSTANCE_H_
#define PREFREP_GEN_RANDOM_INSTANCE_H_

#include "base/random.h"
#include "model/problem.h"

namespace prefrep {

/// How the candidate subinstance J of a generated problem is chosen.
enum class JPolicy {
  /// A repair obtained by greedy insertion in random order.
  kRandomRepair,
  /// A repair grown greedily from the *lowest*-priority facts first —
  /// adversarial: most likely to admit improvements.
  kLowPriorityRepair,
  /// A repair grown greedily from the highest-priority facts first —
  /// most likely to be optimal.
  kHighPriorityRepair,
  /// A random consistent, possibly non-maximal subinstance.
  kRandomConsistentSubset,
};

/// Knobs for the generator.
struct RandomProblemOptions {
  /// Facts generated per relation (duplicates collapse, so the actual
  /// count can be slightly lower).
  size_t facts_per_relation = 20;
  /// Domain size per attribute; smaller domains create more conflicts.
  size_t domain_size = 4;
  /// Zipf exponent for drawing attribute values (0 = uniform).  Skewed
  /// domains concentrate facts on few values, creating hub-shaped
  /// conflict graphs like real dirty data.
  double value_skew = 0.0;
  /// Probability that a conflicting pair receives a priority edge.
  double priority_density = 0.5;
  /// Probability that a sampled non-conflicting pair receives a priority
  /// edge (cross-conflict mode only; 0 keeps the priority conflict-
  /// bounded).  The generator samples ~num_facts such pairs.
  double cross_priority_density = 0.0;
  JPolicy j_policy = JPolicy::kRandomRepair;
  uint64_t seed = 1;
};

/// Generates a random prioritizing instance + J over `schema`.
/// The priority edges are oriented by a hidden random linear order, so
/// the relation is acyclic by construction.
PreferredRepairProblem GenerateRandomProblem(const Schema& schema,
                                             const RandomProblemOptions& opts);

}  // namespace prefrep

#endif  // PREFREP_GEN_RANDOM_INSTANCE_H_
