// Copyright (c) prefrep contributors.
// δ-conflicts and conflict graphs (§2.2).  Two facts form a δ-conflict for
// an FD δ = R: A → B if they agree on A and disagree on B.  Facts conflict
// if they form a δ-conflict for some δ ∈ ∆.  Since FDs are binary-violation
// constraints, a subinstance is consistent iff it is an independent set of
// the conflict graph.

#ifndef PREFREP_CONFLICTS_CONFLICTS_H_
#define PREFREP_CONFLICTS_CONFLICTS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/dynamic_bitset.h"
#include "model/instance.h"

namespace prefrep {

/// Returns true if facts f and g agree on every attribute in `attrs`
/// (1-based positions).  The facts must be of the same relation.
bool FactsAgreeOn(const Fact& f, const Fact& g, AttrSet attrs);

/// Returns true if {f, g} is a δ-conflict for the given FD.
bool IsDeltaConflict(const Fact& f, const Fact& g, const FD& fd);

/// Returns true if f and g are conflicting facts under the schema of the
/// instance (δ-conflict for some δ in ∆|rel).  Facts of different
/// relations never conflict (all constraints are FDs).
bool FactsConflict(const Instance& instance, FactId f, FactId g);

/// All conflicting pairs {f, g} (f < g) by the naive all-pairs scan —
/// the O(n²·|∆|) ablation baseline for the hash-bucketed ConflictGraph
/// construction (see bench_enumeration).  Results are sorted.
std::vector<std::pair<FactId, FactId>> AllConflictPairsNaive(
    const Instance& instance);

/// All conflicting pairs by the pre-columnar hash join (nested
/// node-based hash maps keyed by materialized projection vectors) —
/// preserved as the ablation baseline the perf-regression gate
/// (tools/perf_gate.py, bench/bench_hotpath.cc) measures the flat join
/// against and the metamorphic battery cross-checks it with.  Results
/// are sorted and deduplicated; must equal ConflictGraph::edges().
std::vector<std::pair<FactId, FactId>> AllConflictPairsHashedReference(
    const Instance& instance);

/// All conflicting pairs by the flat columnar join (open-addressing
/// table keyed by the seeded hash of the projected lhs columns, rows
/// compared in place — conflicts/projection.h): the production kernel,
/// also the core of the ConflictGraph constructor.  Results are sorted
/// and deduplicated; equal to both baselines above by construction.
std::vector<std::pair<FactId, FactId>> AllConflictPairsFlat(
    const Instance& instance);

/// The materialized conflict graph of an instance: for each fact, the
/// (sorted) list of facts it conflicts with, plus the edge list.
///
/// The graph can be quadratic in the number of facts (that is inherent);
/// algorithms that only need point queries should use FactsConflict or the
/// consistency checks in repair/subinstance_ops.h.
class ConflictGraph {
 public:
  /// Builds the conflict graph of `instance` by hashing facts on FD
  /// left-hand sides (no all-pairs scan across groups).
  explicit ConflictGraph(const Instance& instance);

  const Instance& instance() const { return *instance_; }

  size_t num_facts() const { return adjacency_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Facts conflicting with `f`, sorted ascending, no duplicates.
  const std::vector<FactId>& neighbors(FactId f) const {
    PREFREP_CHECK_MSG(f < adjacency_.size(), "fact id out of range");
    return adjacency_[f];
  }

  /// All conflicting pairs {f, g} with f < g.
  const std::vector<std::pair<FactId, FactId>>& edges() const {
    return edges_;
  }

  /// Bitset of neighbors of `f` (materialized lazily per call).
  DynamicBitset NeighborSet(FactId f) const;

  /// True if some fact of `sub` conflicts with `f`.
  bool ConflictsWithSet(FactId f, const DynamicBitset& sub) const;

  /// Facts of `sub` that conflict with `f`.
  std::vector<FactId> ConflictsInSet(FactId f, const DynamicBitset& sub) const;

  /// Serve-layer mutators (src/serve/session.cc): a resident session
  /// maintains the graph incrementally under fact edits instead of
  /// rebuilding it.  All three preserve the constructor's invariants —
  /// sorted deduplicated adjacency, lexicographically sorted edge list —
  /// so a mutated graph is indistinguishable from a rebuilt one.

  /// Grows the vertex set to `num_facts` (new vertices isolated).
  void ResizeUniverse(size_t num_facts);

  /// Adds the edges {f, g} for every g in `neighbors` (callers pass the
  /// exact δ-conflict set of a freshly inserted fact; pairs already
  /// present are rejected as a bug).
  void AddConflictEdges(FactId f, const std::vector<FactId>& neighbors);

  /// Removes every edge incident to `f` (fact deletion).  The vertex
  /// itself stays — ids are stable — it is simply isolated afterwards.
  void RemoveIncidentEdges(FactId f);

 private:
  const Instance* instance_;
  std::vector<std::vector<FactId>> adjacency_;
  std::vector<std::pair<FactId, FactId>> edges_;
};

}  // namespace prefrep

#endif  // PREFREP_CONFLICTS_CONFLICTS_H_
