#include "base/governor.h"

#include <cstdint>
#include <limits>
#include <string>

namespace prefrep {

const char* TrileanName(Trilean value) {
  switch (value) {
    case Trilean::kFalse:
      return "false";
    case Trilean::kTrue:
      return "true";
    case Trilean::kUnknown:
      return "unknown";
  }
  return "invalid";
}

uint64_t SaturatingMulU64(uint64_t a, uint64_t b, bool* saturated) {
  if (a != 0 && b > std::numeric_limits<uint64_t>::max() / a) {
    if (saturated != nullptr) {
      *saturated = true;
    }
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

ResourceGovernor::ResourceGovernor(const ResourceBudget& budget)
    : budget_(budget), armed_(!budget.Unlimited()) {
  if (budget_.deadline_ms > 0) {
    start_ = std::chrono::steady_clock::now();
  }
}

ResourceGovernor::ResourceGovernor(const ResourceBudget& budget,
                                   std::chrono::steady_clock::time_point start)
    : budget_(budget), armed_(!budget.Unlimited()) {
  if (budget_.deadline_ms > 0) {
    start_ = start;
  }
}

ResourceGovernor& ResourceGovernor::Unlimited() {
  // Shared across every call that installs no governor; the unarmed
  // Checkpoint() fast path never writes, so sharing is safe.
  static ResourceGovernor* const kUnlimited = new ResourceGovernor();
  return *kUnlimited;
}

bool ResourceGovernor::CheckpointSlow() {
  if (exhausted()) {
    return false;  // sticky: nested enumerations unwind without re-arming
  }
  if (cancel_bound_ != nullptr &&
      cancel_position_ >= cancel_bound_->load(std::memory_order_relaxed)) {
    Exhaust(ExhaustCause::kCancelled);
    return false;
  }
  const uint64_t n = nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (fault_at_ != 0 && n >= fault_at_) {
    Exhaust(ExhaustCause::kFaultInjection);
    return false;
  }
  if (budget_.max_nodes != 0 && n > budget_.max_nodes) {
    Exhaust(ExhaustCause::kNodeBudget);
    return false;
  }
  if (budget_.deadline_ms > 0 && n % kDeadlineCheckInterval == 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start_);
    if (elapsed.count() >= budget_.deadline_ms) {
      Exhaust(ExhaustCause::kDeadline);
      return false;
    }
  }
  return true;
}

bool ResourceGovernor::AdmitBlock(size_t block_facts) {
  if (block_facts > kMaxExhaustiveBlockFacts) {
    // The hard cap binds even for the shared unlimited governor, but
    // that one must stay write-free (it is shared across threads), so
    // only caller-owned governors record the refusal.
    if (this != &Unlimited()) {
      blocks_refused_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  if (!armed_) {
    return true;
  }
  if (exhausted()) {
    return false;
  }
  if (budget_.max_block != 0 && block_facts > budget_.max_block) {
    blocks_refused_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool ResourceGovernor::WouldAdmitBlock(size_t block_facts) const {
  // Mirror of AdmitBlock without the refusal accounting.  Kept in sync
  // by tests/governor_test.cc; any divergence would let a cache hit be
  // served where a fresh solve would have recorded a refusal.
  if (block_facts > kMaxExhaustiveBlockFacts) {
    return false;
  }
  if (!armed_) {
    return true;
  }
  if (exhausted()) {
    return false;
  }
  if (budget_.max_block != 0 && block_facts > budget_.max_block) {
    return false;
  }
  return true;
}

std::string ResourceGovernor::CauseString() const {
  switch (cause()) {
    case ExhaustCause::kNone:
      break;
    case ExhaustCause::kDeadline:
      return "deadline of " + std::to_string(budget_.deadline_ms) +
             " ms exceeded after " + std::to_string(nodes_spent()) + " nodes";
    case ExhaustCause::kNodeBudget:
      return "node budget of " + std::to_string(budget_.max_nodes) +
             " exhausted";
    case ExhaustCause::kFaultInjection:
      return "fault injected at checkpoint " + std::to_string(nodes_spent());
    case ExhaustCause::kCancelled:
      return "cancelled: superseded by another block's result";
  }
  if (blocks_refused() > 0) {
    return std::to_string(blocks_refused()) +
           " block(s) refused by block-size limit";
  }
  return "within budget";
}

Status ResourceGovernor::ToStatus() const {
  if (!degraded()) {
    return Status::OK();
  }
  if (cause() == ExhaustCause::kDeadline) {
    return Status::DeadlineExceeded(CauseString());
  }
  return Status::ResourceExhausted(CauseString());
}

void ResourceGovernor::ForceExhaustAtCheckpointForTesting(uint64_t nth) {
  PREFREP_CHECK_MSG(this != &Unlimited(),
                    "fault injection on the shared unlimited governor");
  fault_at_ = nth;
  armed_ = nth != 0 || !budget_.Unlimited() || cancel_bound_ != nullptr;
}

void ResourceGovernor::ArmCancellation(
    const std::atomic<uint64_t>* cancel_bound, uint64_t position) {
  PREFREP_CHECK_MSG(this != &Unlimited(),
                    "cancellation on the shared unlimited governor");
  cancel_bound_ = cancel_bound;
  cancel_position_ = position;
  armed_ = true;
}

uint64_t ResourceGovernor::NodeFiringIndex() const {
  uint64_t firing = 0;
  if (fault_at_ != 0) {
    firing = fault_at_;
  }
  if (budget_.max_nodes != 0 &&
      (firing == 0 || budget_.max_nodes + 1 < firing)) {
    firing = budget_.max_nodes + 1;
  }
  return firing;
}

void ResourceGovernor::CommitReplayNodes(uint64_t n) {
  if (!armed_ || n == 0) {
    return;
  }
  PREFREP_CHECK_MSG(NodeFiringIndex() == 0 ||
                        nodes_spent() + n < NodeFiringIndex(),
                    "replayed node batch would cross the firing index — the "
                    "parallel merge must rerun such blocks instead");
  nodes_.fetch_add(n, std::memory_order_relaxed);
}

std::string DegradationReport::ToString() const {
  std::string out = "blocks: " + std::to_string(blocks_exact) + "/" +
                    std::to_string(blocks_total) + " solved exactly, " +
                    std::to_string(blocks_abandoned) +
                    " abandoned; nodes spent: " + std::to_string(nodes_spent);
  if (!cause.empty()) {
    out += "; cause: " + cause;
  }
  if (cache_hits + cache_misses > 0) {
    out += "; cache: " + std::to_string(cache_hits) + " hit(s), " +
           std::to_string(cache_misses) + " miss(es)";
  }
  for (const BlockDegradation& b : abandoned) {
    out += "\n  block #" + std::to_string(b.block_id) + " (" +
           std::to_string(b.block_size) + " facts, " + std::to_string(b.nodes) +
           " nodes): " + b.reason;
  }
  return out;
}

}  // namespace prefrep
