// Copyright (c) prefrep contributors.
// Consistent query answering under preferred repairs — the paper's
// stated next step ("the classification of the computational complexity
// of ... consistent query answering, in the framework of preferred
// repairs", §1 and §8).
//
// The consistent answers of Q on (I, ≻) under a repair semantics σ are
//     ⋂ { Q(J) : J is a σ-optimal repair of I }
// (for σ = subset-repairs this is the classical Arenas–Bertossi–Chomicki
// notion).  This module computes them by enumeration — exact but
// exponential in general, matching the problem's hardness; it exists to
// let users experiment with the open problem, not as a claimed
// polynomial algorithm.

#ifndef PREFREP_QUERY_CONSISTENT_ANSWERS_H_
#define PREFREP_QUERY_CONSISTENT_ANSWERS_H_

#include "model/context.h"
#include "priority/priority.h"
#include "query/conjunctive_query.h"
#include "repair/exhaustive.h"

namespace prefrep {

/// Which repairs the intersection ranges over.
enum class AnswerSemantics {
  kAllRepairs,   ///< classical consistent answers (no preferences)
  kGlobal,       ///< globally-optimal repairs only
  kPareto,       ///< Pareto-optimal repairs only
  kCompletion,   ///< completion-optimal repairs only
};

/// Computes the consistent answers of `query` on (I, ≻) under the given
/// semantics.  Exponential in general (repair enumeration); intended
/// for small instances and experimentation.
std::vector<ConjunctiveQuery::AnswerTuple> ConsistentAnswers(
    const ConflictGraph& cg, const PriorityRelation& priority,
    const ConjunctiveQuery& query, AnswerSemantics semantics);

/// Boolean-query variant: true iff Q holds in *every* σ-optimal repair.
bool CertainlyTrue(const ConflictGraph& cg, const PriorityRelation& priority,
                   const ConjunctiveQuery& query, AnswerSemantics semantics);

/// True iff Q holds in *some* σ-optimal repair (possible answers).
bool PossiblyTrue(const ConflictGraph& cg, const PriorityRelation& priority,
                  const ConjunctiveQuery& query, AnswerSemantics semantics);

/// ProblemContext overloads: share one context (conflict graph, block
/// decomposition, classifications) across repeated queries on the same
/// prioritizing instance; optimal-repair enumeration goes through the
/// per-block product of repair/block_solver.h.
std::vector<ConjunctiveQuery::AnswerTuple> ConsistentAnswers(
    const ProblemContext& ctx, const ConjunctiveQuery& query,
    AnswerSemantics semantics);
bool CertainlyTrue(const ProblemContext& ctx, const ConjunctiveQuery& query,
                   AnswerSemantics semantics);
bool PossiblyTrue(const ProblemContext& ctx, const ConjunctiveQuery& query,
                  AnswerSemantics semantics);

/// Budget-aware variants for governed contexts (ctx.governor()).  The
/// plain overloads above are CHECK-fatal if the budget fires mid-query —
/// a bool cannot say "unknown" — so governed callers use these instead.
///
/// Degradation contract: under the optimal-repair semantics an
/// abandoned enumeration yields kUnknown / kResourceExhausted outright,
/// because a partial per-block product contains no complete repairs to
/// even falsify with.  Under kAllRepairs every enumerated repair is
/// complete, so a definite refutation (CertainlyTrue → kFalse) or
/// confirmation (PossiblyTrue → kTrue) found before exhaustion stands.
///
/// `all_repairs_universe` (optional) restricts the kAllRepairs
/// enumeration to the maximal consistent subsets of that fact set
/// instead of the whole id range.  Resident sessions (src/serve) pass
/// their live-fact mask here: their instances carry tombstoned ids that
/// must not be enumerated as repair members.  Ignored under the
/// optimal-repair semantics, whose per-block product already ranges
/// over blocks ∪ free facts only.
Result<std::vector<ConjunctiveQuery::AnswerTuple>> ConsistentAnswersBounded(
    const ProblemContext& ctx, const ConjunctiveQuery& query,
    AnswerSemantics semantics,
    const DynamicBitset* all_repairs_universe = nullptr);
Trilean CertainlyTrueBounded(const ProblemContext& ctx,
                             const ConjunctiveQuery& query,
                             AnswerSemantics semantics,
                             const DynamicBitset* all_repairs_universe =
                                 nullptr);
Trilean PossiblyTrueBounded(const ProblemContext& ctx,
                            const ConjunctiveQuery& query,
                            AnswerSemantics semantics,
                            const DynamicBitset* all_repairs_universe =
                                nullptr);

}  // namespace prefrep

#endif  // PREFREP_QUERY_CONSISTENT_ANSWERS_H_
