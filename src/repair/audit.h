// Copyright (c) prefrep contributors.
// PREFREP_AUDIT — compile-time-gated runtime self-verification.
//
// The polynomial checkers of Theorem 3.1 / Theorem 7.1 and the per-block
// dispatch layer are trusted oracles: a silent bug in them invalidates
// every downstream experiment.  A build configured with -DPREFREP_AUDIT=ON
// (the `audit` CMake preset, layered on ASan) therefore cross-validates,
// at runtime:
//
//   * every polynomial per-block verdict against the exhaustive baseline
//     (repair enumeration) on blocks of at most kMaxVerdictBlock facts —
//     Pareto verdicts against the definitional Pareto enumeration,
//     completion verdicts against the completion ⊆ globally-optimal
//     inclusion [SCM];
//   * every improvement witness against the definitional checkers of
//     repair/improvement.h (Definition 2.4);
//   * every constructed repair for consistency and ⊆-maximality (the
//     repair postconditions of §2.2);
//   * per-block optimal-repair counts and sets against the enumeration
//     baseline on blocks of at most kMaxSetBlock facts;
//   * the block decomposition as a true partition refining the conflict
//     graph's connected components (hook lives in conflicts/blocks.cc —
//     the conflicts layer cannot include this header).
//
// A failed audit prints the offending instance in the io/text_format
// grammar — paste it into `prefrepctl` or ParseProblemText to replay —
// and aborts.  In regular builds every entry point below compiles to a
// no-op, so call sites stay unconditional.

#ifndef PREFREP_REPAIR_AUDIT_H_
#define PREFREP_REPAIR_AUDIT_H_

#include <vector>

#include "model/context.h"
#include "repair/block_solver.h"

namespace prefrep {
namespace audit {

/// True when the library was compiled with -DPREFREP_AUDIT=ON.
constexpr bool Enabled() { return PREFREP_AUDIT_ENABLED != 0; }

/// Largest block whose polynomial verdicts are cross-validated against
/// the 2^{|block|} exhaustive baseline.
inline constexpr size_t kMaxVerdictBlock = 12;

/// Largest block whose optimal-repair counts/sets are cross-validated
/// (the set baseline is quadratic in the 2^{|block|} enumeration).
inline constexpr size_t kMaxSetBlock = 8;

/// Largest whole instance cross-validated on non-block-local paths.
inline constexpr size_t kMaxWholeInstance = 12;

namespace internal {

// Out-of-line audit bodies; defined (non-trivially) only in audit
// builds.  Call the inline wrappers below instead.
void BlockVerdictImpl(const ProblemContext& ctx, const BlockSolver& solver,
                      const Block& b, const DynamicBitset& j,
                      const CheckResult& result);
void BlockCountImpl(const ProblemContext& ctx, const BlockSolver& solver,
                    const Block& b, uint64_t count);
void BlockRepairSetImpl(const ProblemContext& ctx, const BlockSolver& solver,
                        const Block& b,
                        const std::vector<DynamicBitset>& repairs);
void GlobalVerdictImpl(const ConflictGraph& cg, const PriorityRelation& pr,
                       const DynamicBitset& j, const CheckResult& result,
                       const char* algorithm);
void ParetoWitnessImpl(const ConflictGraph& cg, const PriorityRelation& pr,
                       const DynamicBitset& j, const CheckResult& result);
void ConstructedRepairImpl(const ConflictGraph& cg, const PriorityRelation& pr,
                           const DynamicBitset& repair, const char* origin,
                           const DynamicBitset* universe);
void ConstructedBlockRepairImpl(const ConflictGraph& cg,
                                const PriorityRelation& pr,
                                const DynamicBitset& universe,
                                const DynamicBitset& repair,
                                const char* origin);
void CompletionVerdictImpl(const ConflictGraph& cg, const PriorityRelation& pr,
                           const DynamicBitset& j,
                           const DynamicBitset* universe,
                           const CheckResult& result);

/// Test-only fault injection: while enabled, AuditedCheckBlock corrupts
/// every verdict it returns *before* auditing it, so a test can prove
/// the audit actually fires (see tests/audit_death_test.cc).  Defined in
/// every build (the flag is simply never read without PREFREP_AUDIT).
void ForceWrongVerdictForTesting(bool enabled);
bool ForcingWrongVerdict();

}  // namespace internal

/// Cross-validates a per-block verdict produced by `solver` (witness
/// validity always; exhaustive baseline when the solver is polynomial
/// and |b| ≤ kMaxVerdictBlock).
inline void CheckBlockVerdict(const ProblemContext& ctx,
                              const BlockSolver& solver, const Block& b,
                              const DynamicBitset& j,
                              const CheckResult& result) {
#if PREFREP_AUDIT_ENABLED
  internal::BlockVerdictImpl(ctx, solver, b, j, result);
#else
  (void)ctx;
  (void)solver;
  (void)b;
  (void)j;
  (void)result;
#endif
}

/// Cross-validates a per-block optimal-repair count.
inline void CheckBlockCount(const ProblemContext& ctx,
                            const BlockSolver& solver, const Block& b,
                            uint64_t count) {
#if PREFREP_AUDIT_ENABLED
  internal::BlockCountImpl(ctx, solver, b, count);
#else
  (void)ctx;
  (void)solver;
  (void)b;
  (void)count;
#endif
}

/// Cross-validates a materialized per-block optimal-repair set.
inline void CheckBlockRepairSet(const ProblemContext& ctx,
                                const BlockSolver& solver, const Block& b,
                                const std::vector<DynamicBitset>& repairs) {
#if PREFREP_AUDIT_ENABLED
  internal::BlockRepairSetImpl(ctx, solver, b, repairs);
#else
  (void)ctx;
  (void)solver;
  (void)b;
  (void)repairs;
#endif
}

/// Cross-validates a whole-instance globally-optimal verdict (used on
/// the non-block-local ccp paths): witness validity always, exhaustive
/// baseline when the instance has ≤ kMaxWholeInstance facts.
inline void CheckGlobalVerdict(const ConflictGraph& cg,
                               const PriorityRelation& pr,
                               const DynamicBitset& j,
                               const CheckResult& result,
                               const char* algorithm) {
#if PREFREP_AUDIT_ENABLED
  internal::GlobalVerdictImpl(cg, pr, j, result, algorithm);
#else
  (void)cg;
  (void)pr;
  (void)j;
  (void)result;
  (void)algorithm;
#endif
}

/// Verifies that a Pareto non-optimality witness is a genuine Pareto
/// improvement (Definition 2.4).
inline void CheckParetoWitness(const ConflictGraph& cg,
                               const PriorityRelation& pr,
                               const DynamicBitset& j,
                               const CheckResult& result) {
#if PREFREP_AUDIT_ENABLED
  internal::ParetoWitnessImpl(cg, pr, j, result);
#else
  (void)cg;
  (void)pr;
  (void)j;
  (void)result;
#endif
}

/// Postcondition for constructed repairs: consistent, ⊆-maximal, and on
/// small instances globally-optimal (the completion ⊆ global inclusion
/// the construction relies on).  A non-null `universe` restricts every
/// check to those facts: a resident session's instance may carry
/// tombstoned facts outside the solving universe (serve/session.h),
/// which are neither addable nor allowed to appear in the repair.
inline void CheckConstructedRepair(const ConflictGraph& cg,
                                   const PriorityRelation& pr,
                                   const DynamicBitset& repair,
                                   const char* origin,
                                   const DynamicBitset* universe = nullptr) {
#if PREFREP_AUDIT_ENABLED
  internal::ConstructedRepairImpl(cg, pr, repair, origin, universe);
#else
  (void)cg;
  (void)pr;
  (void)repair;
  (void)origin;
  (void)universe;
#endif
}

/// Postcondition for constructed block-repairs: contained in `universe`,
/// consistent, and maximal within `universe`.
inline void CheckConstructedBlockRepair(const ConflictGraph& cg,
                                        const PriorityRelation& pr,
                                        const DynamicBitset& universe,
                                        const DynamicBitset& repair,
                                        const char* origin) {
#if PREFREP_AUDIT_ENABLED
  internal::ConstructedBlockRepairImpl(cg, pr, universe, repair, origin);
#else
  (void)cg;
  (void)pr;
  (void)universe;
  (void)repair;
  (void)origin;
#endif
}

/// Postcondition for positive completion verdicts: a completion-optimal
/// J must be a (block-)repair.
inline void CheckCompletionVerdict(const ConflictGraph& cg,
                                   const PriorityRelation& pr,
                                   const DynamicBitset& j,
                                   const DynamicBitset* universe,
                                   const CheckResult& result) {
#if PREFREP_AUDIT_ENABLED
  internal::CompletionVerdictImpl(cg, pr, j, universe, result);
#else
  (void)cg;
  (void)pr;
  (void)j;
  (void)universe;
  (void)result;
#endif
}

}  // namespace audit
}  // namespace prefrep

#endif  // PREFREP_REPAIR_AUDIT_H_
