#include "conflicts/conflicts.h"

#include <algorithm>
#include <unordered_map>

#include "base/hash.h"

namespace prefrep {

bool FactsAgreeOn(const Fact& f, const Fact& g, AttrSet attrs) {
  PREFREP_DCHECK(f.rel == g.rel);
  bool agree = true;
  attrs.ForEach([&](int a) {
    if (f.values[a - 1] != g.values[a - 1]) {
      agree = false;
    }
  });
  return agree;
}

bool IsDeltaConflict(const Fact& f, const Fact& g, const FD& fd) {
  if (f.rel != g.rel) {
    return false;
  }
  return FactsAgreeOn(f, g, fd.lhs) && !FactsAgreeOn(f, g, fd.rhs);
}

bool FactsConflict(const Instance& instance, FactId f, FactId g) {
  const Fact& ff = instance.fact(f);
  const Fact& gg = instance.fact(g);
  if (ff.rel != gg.rel) {
    return false;
  }
  for (const FD& fd : instance.schema().fds(ff.rel).fds()) {
    if (IsDeltaConflict(ff, gg, fd)) {
      return true;
    }
  }
  return false;
}

namespace {

// Projects a fact onto an attribute set, producing a hashable key.
std::vector<ValueId> Project(const Fact& f, AttrSet attrs) {
  std::vector<ValueId> key;
  key.reserve(static_cast<size_t>(attrs.size()));
  attrs.ForEach([&](int a) { key.push_back(f.values[a - 1]); });
  return key;
}

}  // namespace

std::vector<std::pair<FactId, FactId>> AllConflictPairsNaive(
    const Instance& instance) {
  std::vector<std::pair<FactId, FactId>> out;
  const Schema& schema = instance.schema();
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    const std::vector<FactId>& facts = instance.facts_of(rel);
    for (size_t i = 0; i < facts.size(); ++i) {
      for (size_t k = i + 1; k < facts.size(); ++k) {
        FactId f = std::min(facts[i], facts[k]);
        FactId g = std::max(facts[i], facts[k]);
        if (FactsConflict(instance, f, g)) {
          out.emplace_back(f, g);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ConflictGraph::ConflictGraph(const Instance& instance)
    : instance_(&instance) {
  size_t n = instance.num_facts();
  adjacency_.assign(n, {});
  const Schema& schema = instance.schema();

  // For each relation and each FD A → B: bucket the facts by their
  // A-projection; within a bucket, sub-bucket by B-projection; facts in
  // different sub-buckets of the same bucket are in δ-conflict.
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    const std::vector<FactId>& rel_facts = instance.facts_of(rel);
    for (const FD& fd : schema.fds(rel).fds()) {
      if (fd.IsTrivial()) {
        continue;
      }
      std::unordered_map<std::vector<ValueId>,
                         std::unordered_map<std::vector<ValueId>,
                                            std::vector<FactId>,
                                            VectorHash<ValueId>>,
                         VectorHash<ValueId>>
          buckets;
      for (FactId f : rel_facts) {
        const Fact& fact = instance.fact(f);
        buckets[Project(fact, fd.lhs)][Project(fact, fd.rhs)].push_back(f);
      }
      for (const auto& [lhs_key, sub_buckets] : buckets) {
        (void)lhs_key;
        if (sub_buckets.size() < 2) {
          continue;
        }
        // Collect sub-bucket groups, then connect facts across groups.
        std::vector<const std::vector<FactId>*> groups;
        groups.reserve(sub_buckets.size());
        for (const auto& [rhs_key, group] : sub_buckets) {
          (void)rhs_key;
          groups.push_back(&group);
        }
        for (size_t i = 0; i < groups.size(); ++i) {
          for (size_t j = i + 1; j < groups.size(); ++j) {
            for (FactId f : *groups[i]) {
              for (FactId g : *groups[j]) {
                adjacency_[f].push_back(g);
                adjacency_[g].push_back(f);
              }
            }
          }
        }
      }
    }
  }

  // Deduplicate adjacency (a pair may conflict under several FDs) and
  // derive the edge list.
  for (FactId f = 0; f < n; ++f) {
    std::vector<FactId>& adj = adjacency_[f];
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    for (FactId g : adj) {
      if (f < g) {
        edges_.emplace_back(f, g);
      }
    }
  }
}

void ConflictGraph::ResizeUniverse(size_t num_facts) {
  PREFREP_CHECK_MSG(num_facts >= adjacency_.size(),
                    "the conflict-graph universe cannot shrink");
  adjacency_.resize(num_facts);
}

void ConflictGraph::AddConflictEdges(FactId f,
                                     const std::vector<FactId>& neighbors) {
  PREFREP_CHECK_MSG(f < adjacency_.size(), "fact id out of range");
  for (FactId g : neighbors) {
    PREFREP_CHECK_MSG(g < adjacency_.size() && g != f,
                      "bad conflict neighbor");
    std::vector<FactId>& adj_f = adjacency_[f];
    auto pos_f = std::lower_bound(adj_f.begin(), adj_f.end(), g);
    PREFREP_CHECK_MSG(pos_f == adj_f.end() || *pos_f != g,
                      "conflict edge inserted twice");
    adj_f.insert(pos_f, g);
    std::vector<FactId>& adj_g = adjacency_[g];
    adj_g.insert(std::lower_bound(adj_g.begin(), adj_g.end(), f), f);
    std::pair<FactId, FactId> edge{std::min(f, g), std::max(f, g)};
    edges_.insert(std::lower_bound(edges_.begin(), edges_.end(), edge),
                  edge);
  }
}

void ConflictGraph::RemoveIncidentEdges(FactId f) {
  PREFREP_CHECK_MSG(f < adjacency_.size(), "fact id out of range");
  for (FactId g : adjacency_[f]) {
    std::vector<FactId>& adj_g = adjacency_[g];
    adj_g.erase(std::remove(adj_g.begin(), adj_g.end(), f), adj_g.end());
  }
  adjacency_[f].clear();
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [f](const std::pair<FactId, FactId>& e) {
                                return e.first == f || e.second == f;
                              }),
               edges_.end());
}

DynamicBitset ConflictGraph::NeighborSet(FactId f) const {
  DynamicBitset out(adjacency_.size());
  for (FactId g : neighbors(f)) {
    out.set(g);
  }
  return out;
}

bool ConflictGraph::ConflictsWithSet(FactId f,
                                     const DynamicBitset& sub) const {
  for (FactId g : neighbors(f)) {
    if (sub.test(g)) {
      return true;
    }
  }
  return false;
}

std::vector<FactId> ConflictGraph::ConflictsInSet(
    FactId f, const DynamicBitset& sub) const {
  std::vector<FactId> out;
  for (FactId g : neighbors(f)) {
    if (sub.test(g)) {
      out.push_back(g);
    }
  }
  return out;
}

}  // namespace prefrep
