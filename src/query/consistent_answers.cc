#include "query/consistent_answers.h"

#include <algorithm>

#include "repair/block_solver.h"

namespace prefrep {

namespace {

std::vector<DynamicBitset> RepairsFor(const ProblemContext& ctx,
                                      AnswerSemantics semantics) {
  switch (semantics) {
    case AnswerSemantics::kAllRepairs:
      return AllRepairs(ctx.conflict_graph());
    case AnswerSemantics::kGlobal:
      return AllOptimalRepairs(ctx, RepairSemantics::kGlobal);
    case AnswerSemantics::kPareto:
      return AllOptimalRepairs(ctx, RepairSemantics::kPareto);
    case AnswerSemantics::kCompletion:
      return AllOptimalRepairs(ctx, RepairSemantics::kCompletion);
  }
  return {};
}

}  // namespace

std::vector<ConjunctiveQuery::AnswerTuple> ConsistentAnswers(
    const ProblemContext& ctx, const ConjunctiveQuery& query,
    AnswerSemantics semantics) {
  std::vector<DynamicBitset> repairs = RepairsFor(ctx, semantics);
  // Every preferred-repair semantics admits at least one optimal repair
  // (completion-optimal repairs exist, and they are global- and
  // Pareto-optimal); an empty instance has the empty repair.
  PREFREP_CHECK_MSG(!repairs.empty(),
                    "no repair under the requested semantics");
  std::vector<ConjunctiveQuery::AnswerTuple> intersection =
      query.Evaluate(ctx.instance(), repairs.front());
  for (size_t i = 1; i < repairs.size() && !intersection.empty(); ++i) {
    std::vector<ConjunctiveQuery::AnswerTuple> next =
        query.Evaluate(ctx.instance(), repairs[i]);
    std::vector<ConjunctiveQuery::AnswerTuple> merged;
    std::set_intersection(intersection.begin(), intersection.end(),
                          next.begin(), next.end(),
                          std::back_inserter(merged));
    intersection = std::move(merged);
  }
  return intersection;
}

bool CertainlyTrue(const ProblemContext& ctx, const ConjunctiveQuery& query,
                   AnswerSemantics semantics) {
  for (const DynamicBitset& repair : RepairsFor(ctx, semantics)) {
    if (!query.EvaluateBoolean(ctx.instance(), repair)) {
      return false;
    }
  }
  return true;
}

bool PossiblyTrue(const ProblemContext& ctx, const ConjunctiveQuery& query,
                  AnswerSemantics semantics) {
  for (const DynamicBitset& repair : RepairsFor(ctx, semantics)) {
    if (query.EvaluateBoolean(ctx.instance(), repair)) {
      return true;
    }
  }
  return false;
}

std::vector<ConjunctiveQuery::AnswerTuple> ConsistentAnswers(
    const ConflictGraph& cg, const PriorityRelation& priority,
    const ConjunctiveQuery& query, AnswerSemantics semantics) {
  ProblemContext ctx(cg, priority);
  return ConsistentAnswers(ctx, query, semantics);
}

bool CertainlyTrue(const ConflictGraph& cg, const PriorityRelation& priority,
                   const ConjunctiveQuery& query,
                   AnswerSemantics semantics) {
  ProblemContext ctx(cg, priority);
  return CertainlyTrue(ctx, query, semantics);
}

bool PossiblyTrue(const ConflictGraph& cg, const PriorityRelation& priority,
                  const ConjunctiveQuery& query, AnswerSemantics semantics) {
  ProblemContext ctx(cg, priority);
  return PossiblyTrue(ctx, query, semantics);
}

}  // namespace prefrep
