// Copyright (c) prefrep contributors.
// Graphviz DOT export for the library's graph structures: conflict
// graphs (with J / I\J colouring and priority edges), the two-keys
// improvement graphs G12_J/G21_J of §4.2 (Figure 3), and the ccp graph
// G_{J,I\J} of §7.2.1 (Figure 6).  Lets users render the paper's
// figures from their own instances:
//
//   ./build/examples/prefrepctl dot problem.txt | dot -Tsvg > out.svg

#ifndef PREFREP_IO_DOT_EXPORT_H_
#define PREFREP_IO_DOT_EXPORT_H_

#include <string>

#include "conflicts/conflicts.h"
#include "priority/priority.h"
#include "repair/global_two_keys.h"

namespace prefrep {

/// Renders the instance as an undirected conflict graph plus directed
/// priority edges.  Facts in `j` are drawn filled; conflict edges solid,
/// priority edges dashed arrows from the preferred fact.
std::string ConflictGraphToDot(const ConflictGraph& cg,
                               const PriorityRelation& pr,
                               const DynamicBitset& j);

/// Renders a two-keys improvement graph (Figure 3 style): left-side
/// nodes as boxes, right-side as ellipses, forward edges solid,
/// backward edges dashed.
std::string ImprovementGraphToDot(const KeyedImprovementGraph& graph,
                                  const std::string& title);

/// Renders the ccp graph G_{J,I\J} (Figure 6 style): J facts on the
/// left rank, I\J on the right.
std::string CcpGraphToDot(const ConflictGraph& cg,
                          const PriorityRelation& pr,
                          const DynamicBitset& j);

}  // namespace prefrep

#endif  // PREFREP_IO_DOT_EXPORT_H_
