// Tests for the repair substrate: consistency / maximality / repair
// checking, improvement verification (Definition 2.4 edge cases), the
// polynomial Pareto check, and the exhaustive repair enumeration.

#include <gtest/gtest.h>

#include "repair/exhaustive.h"
#include "repair/pareto.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::ProblemSpec;
using testing_util::Sub;

PreferredRepairProblem TwoGroups() {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a1: k, 1", "a2: k, 2", "b1: m, 1", "b2: m, 2"};
  spec.priorities = {"a1 > a2", "b1 > b2"};
  return testing_util::MakeProblem(spec);
}

TEST(SubinstanceOpsTest, ConsistencyBothPaths) {
  PreferredRepairProblem p = TwoGroups();
  const Instance& inst = *p.instance;
  ConflictGraph cg(inst);
  DynamicBitset ok = Sub(inst, {"a1", "b2"});
  DynamicBitset bad = Sub(inst, {"a1", "a2"});
  EXPECT_TRUE(IsConsistent(inst, ok));
  EXPECT_TRUE(IsConsistent(cg, ok));
  EXPECT_FALSE(IsConsistent(inst, bad));
  EXPECT_FALSE(IsConsistent(cg, bad));
  auto violation = FindViolation(inst, bad);
  ASSERT_TRUE(violation.has_value());
  EXPECT_TRUE((violation->first == inst.FindLabel("a1") &&
               violation->second == inst.FindLabel("a2")) ||
              (violation->first == inst.FindLabel("a2") &&
               violation->second == inst.FindLabel("a1")));
  // The empty subinstance is consistent.
  EXPECT_TRUE(IsConsistent(inst, inst.EmptySubinstance()));
}

TEST(SubinstanceOpsTest, RepairChecking) {
  PreferredRepairProblem p = TwoGroups();
  const Instance& inst = *p.instance;
  ConflictGraph cg(inst);
  EXPECT_TRUE(IsRepair(cg, Sub(inst, {"a1", "b1"})));
  EXPECT_FALSE(IsRepair(cg, Sub(inst, {"a1"})));           // not maximal
  EXPECT_FALSE(IsRepair(cg, Sub(inst, {"a1", "a2", "b1"})));  // inconsistent
  auto ext = FindExtension(cg, Sub(inst, {"a1"}));
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(inst.fact(*ext).values[0], inst.dict().Find("m"));
}

TEST(SubinstanceOpsTest, ExtendToRepair) {
  PreferredRepairProblem p = TwoGroups();
  const Instance& inst = *p.instance;
  ConflictGraph cg(inst);
  DynamicBitset extended = ExtendToRepair(cg, Sub(inst, {"a2"}));
  EXPECT_TRUE(IsRepair(cg, extended));
  EXPECT_TRUE(extended.test(inst.FindLabel("a2")));
}

TEST(SubinstanceOpsTest, RestrictToRelation) {
  Schema schema;
  schema.MustAddRelation("A", 1);
  schema.MustAddRelation("B", 1);
  PreferredRepairProblem p(std::move(schema));
  p.instance->MustAddFact("A", {"1"}, "a");
  p.instance->MustAddFact("B", {"2"}, "b");
  DynamicBitset all = p.instance->AllFacts();
  EXPECT_EQ(RestrictToRelation(*p.instance, 0, all),
            Sub(*p.instance, {"a"}));
}

// Definition 2.4 edge cases.
TEST(ImprovementTest, Definition24EdgeCases) {
  PreferredRepairProblem p = TwoGroups();
  const Instance& inst = *p.instance;
  ConflictGraph cg(inst);
  const PriorityRelation& pr = *p.priority;
  DynamicBitset j = Sub(inst, {"a2", "b2"});

  // A consistent strict superset is a global improvement (J\J' = ∅).
  EXPECT_TRUE(IsGlobalImprovement(cg, pr, Sub(inst, {"a2"}), j));
  // ... and also a Pareto improvement (witness dominates ∅ vacuously).
  EXPECT_TRUE(IsParetoImprovement(cg, pr, Sub(inst, {"a2"}), j));
  // J is never an improvement of itself.
  EXPECT_FALSE(IsGlobalImprovement(cg, pr, j, j));
  EXPECT_FALSE(IsParetoImprovement(cg, pr, j, j));
  // An inconsistent candidate is never an improvement.
  EXPECT_FALSE(IsGlobalImprovement(cg, pr, j, Sub(inst, {"a1", "a2"})));
  // A strict subset is never an improvement (removed facts have no
  // improvers in an empty added set).
  EXPECT_FALSE(IsGlobalImprovement(cg, pr, j, Sub(inst, {"a2"})));
  EXPECT_FALSE(IsParetoImprovement(cg, pr, j, Sub(inst, {"a2"})));

  // {a1, b1} improves {a2, b2} globally (a1 ≻ a2, b1 ≻ b2) but not
  // Pareto-wise (no single fact dominates both).
  DynamicBitset better = Sub(inst, {"a1", "b1"});
  EXPECT_TRUE(IsGlobalImprovement(cg, pr, j, better));
  EXPECT_FALSE(IsParetoImprovement(cg, pr, j, better));
  // Swapping only one group is both.
  DynamicBitset one = Sub(inst, {"a1", "b2"});
  EXPECT_TRUE(IsGlobalImprovement(cg, pr, j, one));
  EXPECT_TRUE(IsParetoImprovement(cg, pr, j, one));
}

TEST(ParetoTest, WitnessStructure) {
  PreferredRepairProblem p = TwoGroups();
  const Instance& inst = *p.instance;
  ConflictGraph cg(inst);
  DynamicBitset j = Sub(inst, {"a2", "b1"});
  CheckResult r = CheckParetoOptimal(cg, *p.priority, j);
  EXPECT_FALSE(r.optimal);
  ASSERT_TRUE(r.witness.has_value());
  // The witness swaps a2 for a1.
  EXPECT_EQ(r.witness->improvement, Sub(inst, {"a1", "b1"}));
  EXPECT_TRUE(
      IsParetoImprovement(cg, *p.priority, j, r.witness->improvement));
}

TEST(ParetoTest, OptimalAndInconsistentCases) {
  PreferredRepairProblem p = TwoGroups();
  const Instance& inst = *p.instance;
  ConflictGraph cg(inst);
  EXPECT_TRUE(CheckParetoOptimal(cg, *p.priority,
                                 Sub(inst, {"a1", "b1"}))
                  .optimal);
  EXPECT_FALSE(CheckParetoOptimal(cg, *p.priority,
                                  Sub(inst, {"a1", "a2"}))
                   .optimal);  // inconsistent
  // Non-maximal J is Pareto-improvable by extension.
  EXPECT_FALSE(CheckParetoOptimal(cg, *p.priority, Sub(inst, {"a1"}))
                   .optimal);
}

TEST(ExhaustiveTest, EnumerationOnKnownInstance) {
  PreferredRepairProblem p = TwoGroups();
  ConflictGraph cg(*p.instance);
  EXPECT_EQ(CountRepairs(cg), 4u);  // 2 choices × 2 choices
  std::vector<DynamicBitset> repairs = AllRepairs(cg);
  EXPECT_EQ(repairs.size(), 4u);
  for (const DynamicBitset& r : repairs) {
    EXPECT_TRUE(IsRepair(cg, r));
  }
  // Early-exit works.
  size_t seen = 0;
  ForEachRepair(cg, [&](const DynamicBitset&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_EQ(seen, 2u);
}

TEST(ExhaustiveTest, EmptyInstanceHasOneEmptyRepair) {
  Schema schema = Schema::SingleRelation("R", 2, {FD(AttrSet{1}, AttrSet{2})});
  PreferredRepairProblem p(std::move(schema));
  p.InitPriority();
  ConflictGraph cg(*p.instance);
  EXPECT_EQ(CountRepairs(cg), 1u);
  EXPECT_TRUE(AllRepairs(cg)[0].none());
  // The empty J is the (only) globally-optimal repair.
  EXPECT_TRUE(
      ExhaustiveCheckGlobalOptimal(cg, *p.priority, p.instance->EmptySubinstance())
          .optimal);
}

TEST(ExhaustiveTest, ConflictFreeInstanceHasOneRepair) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k1, 1", "b: k2, 2", "c: k3, 3"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  EXPECT_EQ(CountRepairs(cg), 1u);
  EXPECT_EQ(AllRepairs(cg)[0], p.instance->AllFacts());
}

TEST(ExhaustiveTest, RestrictedUniverseEnumeration) {
  PreferredRepairProblem p = TwoGroups();
  const Instance& inst = *p.instance;
  ConflictGraph cg(inst);
  // Universe = the k-group only: two repairs {a1}, {a2} (as subsets of
  // the universe).
  DynamicBitset universe = Sub(inst, {"a1", "a2"});
  size_t count = 0;
  ForEachRepairWithin(cg, universe, [&](const DynamicBitset& r) {
    EXPECT_EQ(r.count(), 1u);
    EXPECT_TRUE(r.IsSubsetOf(universe));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2u);
}

TEST(ExhaustiveTest, PivotlessEnumerationMatches) {
  // Ablation parity: the pivotless Bron–Kerbosch variant must produce
  // the same repair set.
  PreferredRepairProblem p = TwoGroups();
  ConflictGraph cg(*p.instance);
  std::vector<DynamicBitset> with_pivot = AllRepairs(cg);
  std::vector<DynamicBitset> without;
  ForEachRepairNoPivot(cg, [&](const DynamicBitset& r) {
    without.push_back(r);
    return true;
  });
  auto key = [](const DynamicBitset& b) { return b.ToVector(); };
  std::vector<std::vector<size_t>> a, b;
  for (const auto& r : with_pivot) a.push_back(key(r));
  for (const auto& r : without) b.push_back(key(r));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ExhaustiveTest, AllOptimalRepairsOnTwoGroups) {
  PreferredRepairProblem p = TwoGroups();
  ConflictGraph cg(*p.instance);
  const Instance& inst = *p.instance;
  // a1 ≻ a2 and b1 ≻ b2: the unique optimal repair under every
  // semantics is {a1, b1}.
  for (RepairSemantics sem :
       {RepairSemantics::kGlobal, RepairSemantics::kPareto,
        RepairSemantics::kCompletion}) {
    std::vector<DynamicBitset> optimal =
        AllOptimalRepairs(cg, *p.priority, sem);
    ASSERT_EQ(optimal.size(), 1u);
    EXPECT_EQ(optimal[0], Sub(inst, {"a1", "b1"}));
  }
}

}  // namespace
}  // namespace prefrep
