// Copyright (c) prefrep contributors.
// Pattern reductions — a machine-searchable generalization of the
// paper's Π translations (§5.1, §5.3) covering ALL hardness cases of
// both dichotomies.
//
// The paper proves Theorem 3.1's hard side by giving, for each hard
// schema, a fact translation Π from one of the six source schemas
// S1..S6 with two key properties: injectivity and pairwise preservation
// of (in)consistency.  The printed construction (Case 1) assigns each
// target attribute a value composed injectively from a *subset of the
// source fact's coordinates* — the "pattern form".  For Π of this form,
// writing D_a ⊆ {1..k} for the coordinates feeding target attribute a
// (k = source arity):
//
//   Agree(Π(f), Π(g)) = T(P) := { a : D_a ⊆ P },  P := Agree(f, g),
//
// and since a fact pair is ∆-consistent iff its agreement set is
// ∆-closed, pairwise consistency preservation reduces to the FINITE
// condition
//
//   for every proper P ⊊ {1..k}:
//       P is ∆_src-closed  ⟺  T(P) is ∆_target-closed,          (★)
//
// checkable exactly (2^k − 1 patterns).  Injectivity holds whenever
// every coordinate feeds some attribute.  Thus a coordinate-subset
// assignment D satisfying (★) constitutes a *verified reduction* from
// the source to the target schema — Search() finds one by enumeration,
// and (★) is its own correctness proof (no sampling).
//
// Empirically (pattern_reduction_test.cc):
//   * ordinary mode (sources S1..S6): the search succeeds on every hard
//     schema we generated — S1..S6 reduce from themselves, matching the
//     paper's case branching — and fails on every tractable schema, as
//     it must unless P = coNP;
//   * ccp mode (sources Sb, Sc, Sd of §7.3): success coincides exactly
//     with the hard side of Theorem 7.1 on random schemas.

#ifndef PREFREP_REDUCTIONS_PATTERN_REDUCTION_H_
#define PREFREP_REDUCTIONS_PATTERN_REDUCTION_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "model/problem.h"

namespace prefrep {

/// A verified pattern reduction from a named ternary/binary source hard
/// schema to a fixed single-relation target schema.
class PatternReduction {
 public:
  /// Ordinary-priority mode: searches sources S1..S6 (Example 3.4) for
  /// a coordinate assignment satisfying (★) against `target`'s single
  /// relation.  Fails with NotFound if none exists (in particular for
  /// every Theorem 3.1-tractable target), Unimplemented for arity > 7,
  /// InvalidArgument for multi-relation targets.
  static Result<PatternReduction> Search(const Schema& target);

  /// Like Search but restricted to one of S1..S6.
  static Result<PatternReduction> SearchFrom(int source_index,
                                             const Schema& target);

  /// Cross-conflict mode: searches the single-relation ccp-hard sources
  /// Sb, Sc, Sd (§7.3).  Empirically succeeds exactly on the hard side
  /// of Theorem 7.1.
  static Result<PatternReduction> SearchCcp(const Schema& target);

  /// Searches an arbitrary single-relation source schema.
  static Result<PatternReduction> SearchFromSchema(const Schema& source,
                                                   std::string source_name,
                                                   const Schema& target);

  /// Name of the source schema ("S4", "Sb", ...).
  const std::string& source_name() const { return source_name_; }
  const Schema& source_schema() const { return source_; }

  /// D_a for each target attribute: a bit mask over source coordinates
  /// (bit k-1 = coordinate c_k).
  const std::vector<uint8_t>& coordinate_masks() const { return d_; }

  /// Re-runs the finite correctness check (★) plus coordinate coverage;
  /// OK means the reduction is valid for *all* instances.
  Status Verify() const;

  /// Translates one source fact (its constants, source-arity many) into
  /// the target fact's constants.
  std::vector<std::string> TranslateConstants(
      const std::vector<std::string>& c) const;

  /// Translates a whole repair-checking input over the source schema:
  /// I, ≻ and J map through the fact translation; labels are kept.
  PreferredRepairProblem Apply(const PreferredRepairProblem& source) const;

  /// Renders "S4 → R via D = [c1, {c1,c2}, c3, •]".
  std::string ToString() const;

 private:
  PatternReduction() = default;

  Schema source_;
  std::string source_name_;
  Schema target_;
  int source_arity_ = 0;
  int arity_ = 0;
  std::vector<uint8_t> d_;
};

}  // namespace prefrep

#endif  // PREFREP_REDUCTIONS_PATTERN_REDUCTION_H_
