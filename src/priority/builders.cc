#include "priority/builders.h"

namespace prefrep {

PriorityRelation BuildScorePriority(const ConflictGraph& cg,
                                    const FactScore& score,
                                    PriorityMode mode) {
  const Instance& inst = cg.instance();
  PriorityRelation pr(&inst);
  size_t n = inst.num_facts();
  if (mode == PriorityMode::kConflictOnly) {
    for (const auto& [f, g] : cg.edges()) {
      int64_t sf = score(f);
      int64_t sg = score(g);
      if (sf > sg) {
        pr.MustAdd(f, g);
      } else if (sg > sf) {
        pr.MustAdd(g, f);
      }
    }
  } else {
    for (FactId f = 0; f < n; ++f) {
      int64_t sf = score(f);
      for (FactId g = f + 1; g < n; ++g) {
        int64_t sg = score(g);
        if (sf > sg) {
          pr.MustAdd(f, g);
        } else if (sg > sf) {
          pr.MustAdd(g, f);
        }
      }
    }
  }
  PREFREP_DCHECK(pr.IsAcyclic());
  return pr;
}

}  // namespace prefrep
