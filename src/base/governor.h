// Copyright (c) prefrep contributors.
// ResourceGovernor — per-call budgets and cooperative cancellation for
// the exponential solving paths.
//
// The FKK dichotomies guarantee that outside the tractable cases
// checking is coNP-complete, so the exhaustive per-block fallbacks are
// exponential *by design*: one oversized block can otherwise stall a
// whole solving session.  A ResourceGovernor carries a per-call budget
// (wall-clock deadline, explored-node count, peak admissible block
// size) that the enumeration loops poll at cheap checkpoints.  When the
// budget runs out the stack degrades gracefully instead of hanging:
// verdicts become three-valued (yes / no / unknown), per-block
// dispatchers keep answering tractable blocks exactly and report only
// the over-budget blocks as unknown, and counting falls back to a
// verified lower bound (see DegradationReport).
//
// The governor is single-call state: create one per solving call (or
// per request), install it on the ProblemContext, and read the
// degradation report afterwards.  Its counters are atomic, so sharing
// one governor across threads is memory-safe; node counts under truly
// concurrent checkpointing are then approximate.  The parallel solver
// (repair/parallel_solver.h) avoids even that: workers run against
// private governors and the merge replays their consumption onto the
// shared one in serial block order, which is what keeps parallel
// verdicts byte-identical to serial ones.

#ifndef PREFREP_BASE_GOVERNOR_H_
#define PREFREP_BASE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "base/macros.h"
#include "base/status.h"

namespace prefrep {

/// Three-valued answer for budget-bounded decision procedures.
enum class Trilean {
  kFalse,
  kTrue,
  kUnknown,  ///< the budget ran out before the answer was certified
};

/// Short human-readable name ("false" / "true" / "unknown").
const char* TrileanName(Trilean value);

/// Why a governor stopped admitting work.
enum class ExhaustCause {
  kNone = 0,        ///< budget not exhausted
  kDeadline,        ///< wall-clock deadline passed
  kNodeBudget,      ///< explored-node budget spent
  kFaultInjection,  ///< test-only forced exhaustion (N-th checkpoint)
  kCancelled,       ///< a parallel worker was superseded (its block's
                    ///< result cannot affect the merged answer anymore)
};

/// A per-call resource budget.  Zero in any field means "unlimited" for
/// that dimension; a default-constructed budget is fully unlimited.
struct ResourceBudget {
  /// Wall-clock deadline, measured from governor construction.
  int64_t deadline_ms = 0;
  /// Maximum number of enumeration checkpoints (≈ explored subsets /
  /// search-tree nodes) across the whole call.
  uint64_t max_nodes = 0;
  /// Largest block (in facts) an exponential solver may dive into;
  /// larger blocks are reported unknown without being attempted.  The
  /// hard cap ResourceGovernor::kMaxExhaustiveBlockFacts applies on top.
  size_t max_block = 0;

  bool Unlimited() const {
    return deadline_ms == 0 && max_nodes == 0 && max_block == 0;
  }
};

/// Multiplies two uint64 counts, saturating at UINT64_MAX instead of
/// wrapping.  Sets `*saturated` (when non-null) if the product
/// overflowed.  Used by the per-block repair-count cross-product, where
/// a wrapped count would be a silent lie.
uint64_t SaturatingMulU64(uint64_t a, uint64_t b, bool* saturated = nullptr);

/// Cooperative budget enforcement.  Enumeration loops call Checkpoint()
/// once per explored node and unwind when it returns false; exponential
/// block solvers call AdmitBlock() before diving into a block.
/// Exhaustion by deadline or node budget is sticky: once fired, every
/// further Checkpoint() returns false, so cancellation propagates
/// through nested enumerations without extra plumbing.  Block refusal
/// (AdmitBlock) is *not* sticky — other blocks may still be solved
/// exactly — but is recorded, so degraded() reflects it.
class ResourceGovernor {
 public:
  /// Hard cap on the size of a block any exponential per-block routine
  /// may attempt, independent of the configured budget: per-block
  /// subset spaces and repair counts are tracked in uint64_t, and a
  /// `1 << n`-style bound for n ≥ 64 is undefined behaviour before it
  /// is even unaffordable.  Such blocks are refused up front with
  /// kResourceExhausted instead.
  static constexpr size_t kMaxExhaustiveBlockFacts = 63;

  /// Checkpoints between wall-clock reads: the deadline is polled every
  /// this many Checkpoint() calls, so its enforcement granularity (and
  /// the promised return latency) is one checkpoint interval.
  static constexpr uint64_t kDeadlineCheckInterval = 256;

  /// An unlimited governor: every checkpoint passes, nothing is
  /// counted.
  ResourceGovernor() = default;

  explicit ResourceGovernor(const ResourceBudget& budget);

  /// Worker-local governor for parallel solving: same budget semantics,
  /// but the deadline is measured from `start` (the anchor of the
  /// governor whose budget a worker enforces a share of) instead of
  /// from construction, so every worker and the serial replay agree on
  /// when the deadline fires.
  ResourceGovernor(const ResourceBudget& budget,
                   std::chrono::steady_clock::time_point start);

  PREFREP_DISALLOW_COPY(ResourceGovernor);

  /// The shared no-op governor used when none is installed.  Its fast
  /// path performs no writes, so it is safe to share across threads.
  static ResourceGovernor& Unlimited();

  const ResourceBudget& budget() const { return budget_; }

  /// True when neither a budget dimension nor the test fault is armed.
  bool unlimited() const { return !armed_; }

  /// Counts one unit of enumeration work and polls the budget.  Returns
  /// false once the budget is exhausted (sticky).  On the unarmed fast
  /// path this performs no writes and always returns true.
  bool Checkpoint() {
    if (PREFREP_LIKELY(!armed_)) {
      return true;
    }
    return CheckpointSlow();
  }

  /// Whether an exponential solver may dive into a block of
  /// `block_facts` facts.  False when the block exceeds the hard cap or
  /// the configured max_block, or when the governor is already
  /// exhausted.  A refusal is recorded (degraded()) but does not stop
  /// other blocks from being solved.
  bool AdmitBlock(size_t block_facts);

  /// Pure query: would AdmitBlock(block_facts) currently return true?
  /// Records nothing.  The block-solve cache (cache/block_cache.h) uses
  /// it to decide whether serving a memoized result preserves the
  /// refusal accounting a fresh solve would have produced; ordinary
  /// solvers must keep calling AdmitBlock so refusals are recorded.
  bool WouldAdmitBlock(size_t block_facts) const;

  /// True once the deadline, node budget, injected fault, or a
  /// cancellation fired.
  bool exhausted() const { return cause() != ExhaustCause::kNone; }

  /// True when any budget enforcement happened: exhaustion or at least
  /// one refused block.  A degraded call's "unknown" parts are real.
  bool degraded() const { return exhausted() || blocks_refused() > 0; }

  ExhaustCause cause() const {
    return cause_.load(std::memory_order_relaxed);
  }

  /// Checkpoints passed so far (0 on the unarmed fast path, which does
  /// not count).
  uint64_t nodes_spent() const {
    return nodes_.load(std::memory_order_relaxed);
  }

  /// Number of blocks AdmitBlock refused.
  uint64_t blocks_refused() const {
    return blocks_refused_.load(std::memory_order_relaxed);
  }

  /// Human-readable description of what fired ("deadline of 50 ms
  /// exceeded after 12345 nodes", ...).  "within budget" when nothing
  /// did.
  std::string CauseString() const;

  /// Maps the governor state to a Status: OK when not degraded,
  /// kDeadlineExceeded for a deadline, kResourceExhausted otherwise.
  Status ToStatus() const;

  /// Test-only fault injection, in the spirit of
  /// audit::internal::ForceWrongVerdictForTesting: makes the governor
  /// fire deterministically at the `nth` Checkpoint() call (1-based),
  /// so tests can prove that cancellation unwinds cleanly from any
  /// enumeration state.  0 disables.  Never call this on Unlimited().
  void ForceExhaustAtCheckpointForTesting(uint64_t nth);

  // ---- Parallel-solving support (repair/parallel_solver.h) ----------
  //
  // The three hooks below exist for the deterministic parallel merge
  // and are of no use to ordinary callers.

  /// Arms cooperative cancellation on a worker-local governor: once
  /// `*cancel_bound` drops to `position` or below, the next
  /// Checkpoint() fires with ExhaustCause::kCancelled and the worker
  /// unwinds exactly like any other budget exhaustion.  `cancel_bound`
  /// must outlive the governor.  Never call this on Unlimited().
  void ArmCancellation(const std::atomic<uint64_t>* cancel_bound,
                       uint64_t position);

  /// The node index at which the node-space budget fires, i.e. the
  /// smallest global checkpoint index that does NOT succeed: the
  /// injected fault fires at `fault_at`, the node budget at
  /// `max_nodes + 1`.  0 when no node-space dimension is armed (the
  /// deadline is wall-clock, not node-space).  This is the constant the
  /// parallel merge replays worker node counts against.
  uint64_t NodeFiringIndex() const;

  /// Serial-order replay: account `n` checkpoints that a worker already
  /// performed (against its private governor) as if they had happened
  /// here, without re-running them.  The caller guarantees
  /// `nodes_spent() + n < NodeFiringIndex()` (or no node-space limit is
  /// armed), so the batch cannot fire.  No-op when unarmed, keeping the
  /// shared Unlimited() governor write-free.
  void CommitReplayNodes(uint64_t n);

  /// The deadline anchor (set iff deadline_ms > 0); workers pass it to
  /// the anchored constructor so all shares of one budget agree.
  std::chrono::steady_clock::time_point start() const { return start_; }

 private:
  // Concurrency contract (TSAN-verified; see also the tsa preset):
  // the atomic counters below are the only fields written after a
  // governor becomes visible to other threads — they are shared
  // headroom state and need no lock.  Everything else (budget_, armed_,
  // fault_at_, cancel_bound_, cancel_position_, start_) is
  // configuration written by the single owner before the governor is
  // shared (construction, ArmCancellation, the *ForTesting hook) and
  // read-only afterwards, which is why no PREFREP_GUARDED_BY appears
  // here: there is no lock, by design — the unarmed Checkpoint() fast
  // path must stay write-free and fence-free.
  bool CheckpointSlow();
  void Exhaust(ExhaustCause cause) {
    // First cause wins; a racing second exhaustion keeps the original
    // diagnosis (both still return false from their checkpoint).
    ExhaustCause expected = ExhaustCause::kNone;
    cause_.compare_exchange_strong(expected, cause,
                                   std::memory_order_relaxed);
  }

  ResourceBudget budget_;
  bool armed_ = false;
  std::atomic<ExhaustCause> cause_{ExhaustCause::kNone};
  std::atomic<uint64_t> nodes_{0};
  std::atomic<uint64_t> blocks_refused_{0};
  uint64_t fault_at_ = 0;
  const std::atomic<uint64_t>* cancel_bound_ = nullptr;
  uint64_t cancel_position_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

/// Per-block record of a degraded (abandoned) block.
struct BlockDegradation {
  size_t block_id = 0;
  size_t block_size = 0;
  /// Checkpoints spent inside this block before it was abandoned.
  uint64_t nodes = 0;
  /// Why the block was abandoned (budget cause or admission refusal).
  std::string reason;
};

/// What a budget-bounded call actually did: how many blocks were solved
/// exactly, which were abandoned (and how much work each consumed), and
/// what fired.  Attached to checker outcomes and printable by
/// `prefrepctl` as the degradation summary.
struct DegradationReport {
  size_t blocks_total = 0;
  size_t blocks_exact = 0;
  size_t blocks_abandoned = 0;
  uint64_t nodes_spent = 0;
  /// Overall exhaustion cause description; empty when only per-block
  /// admission refusals degraded the call.
  std::string cause;
  /// Block-solve cache traffic during this call (zero when no cache is
  /// installed).  NOT part of the byte-identical cache-on/off contract:
  /// these counters necessarily differ between cached and uncached runs
  /// and depend on worker timing (racing workers can both miss the same
  /// fingerprint); everything else in the report stays identical.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// One entry per abandoned block.
  std::vector<BlockDegradation> abandoned;

  bool Degraded() const { return blocks_abandoned > 0; }

  /// Multi-line human-readable summary (one line per abandoned block).
  std::string ToString() const;
};

}  // namespace prefrep

#endif  // PREFREP_BASE_GOVERNOR_H_
