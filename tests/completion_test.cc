// Tests for completion-optimal repair checking, including a brute-force
// validation of the greedy-fixpoint characterization against the
// definition of [SCM] (enumerate every completion of ≻, compute its
// unique optimal repair greedily, compare the resulting set), and a
// counterexample to [SCM, Prop. 10(iii)] — the incorrect claim, reported
// in §4.1, that global and completion optimality coincide for a single
// FD.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "repair/completion.h"
#include "repair/exhaustive.h"
#include "repair/subinstance_ops.h"
#include "gen/random_instance.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::ProblemSpec;

// Enumerates every completion of (I, ≻): an orientation of all
// unordered conflicting pairs consistent with ≻ and acyclic overall.
// For each, the optimal repair is unique and computed greedily.  Returns
// the set of optimal repairs across completions.
std::set<std::vector<size_t>> CompletionOptimalByBruteForce(
    const ConflictGraph& cg, const PriorityRelation& pr) {
  // Undirected conflict pairs not already oriented by ≻.
  std::vector<std::pair<FactId, FactId>> free_pairs;
  for (const auto& [f, g] : cg.edges()) {
    if (!pr.Prefers(f, g) && !pr.Prefers(g, f)) {
      free_pairs.push_back({f, g});
    }
  }
  PREFREP_CHECK(free_pairs.size() <= 16);
  std::set<std::vector<size_t>> result;
  for (uint64_t bits = 0; bits < (uint64_t{1} << free_pairs.size());
       ++bits) {
    // Build the completed priority.
    PriorityRelation completed(&cg.instance());
    for (const auto& [h, l] : pr.edges()) {
      completed.MustAdd(h, l);
    }
    for (size_t i = 0; i < free_pairs.size(); ++i) {
      auto [f, g] = free_pairs[i];
      if ((bits >> i) & 1) {
        completed.MustAdd(f, g);
      } else {
        completed.MustAdd(g, f);
      }
    }
    if (!completed.IsAcyclic()) {
      continue;
    }
    // The greedy repair of a total-on-conflicts priority is unique; any
    // seed gives the same result.
    DynamicBitset repair = GreedyCompletionRepair(cg, completed, 1);
    DynamicBitset check = GreedyCompletionRepair(cg, completed, 2);
    EXPECT_EQ(repair, check) << "total completion must be deterministic";
    result.insert(repair.ToVector());
  }
  return result;
}

TEST(CompletionTest, GreedyFixpointMatchesBruteForceOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Schema schema = Schema::SingleRelation(
        "R", 2, {FD(AttrSet{1}, AttrSet{2})});
    RandomProblemOptions opts;
    opts.facts_per_relation = 7;
    opts.domain_size = 3;
    opts.priority_density = 0.4;
    opts.seed = seed * 101;
    PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
    ConflictGraph cg(*problem.instance);
    if (cg.num_edges() > 12) {
      continue;  // keep 2^pairs enumerable
    }
    std::set<std::vector<size_t>> expected =
        CompletionOptimalByBruteForce(cg, *problem.priority);
    for (const DynamicBitset& repair : AllRepairs(cg)) {
      bool checker =
          CheckCompletionOptimal(cg, *problem.priority, repair).optimal;
      bool brute = expected.count(repair.ToVector()) > 0;
      EXPECT_EQ(checker, brute)
          << "seed " << seed << " J = "
          << problem.instance->SubinstanceToString(repair);
    }
  }
}

// §4.1: Proposition 10(iii) of [SCM] is incorrect — under a single FD
// there are globally-optimal repairs that are not completion-optimal.
// Under fd 1 → 2, facts sharing attributes 1 AND 2 form non-conflicting
// "blocks", and blocks of a key group pairwise conflict; a repair picks
// one whole block per group.  Take block A = {a1, a2} and singleton
// blocks B = {b1}, C = {b2} with b1 ≻ a1 and b2 ≻ a2:
//   * A is globally optimal — no single block dominates all of A;
//   * A is not completion-optimal — greedy can never pick a1 or a2
//     first, since b1 / b2 are undominated, so every greedy run kills A.
// (For a *binary* relation blocks are singletons and the two notions
// provably coincide group-wise, so the counterexample needs arity ≥ 3.)
TEST(CompletionTest, GlobalStrictlyContainsCompletionUnderSingleFd) {
  ProblemSpec spec;
  spec.arity = 3;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a1: k, A, 1", "a2: k, A, 2", "b1: k, B, 1", "b2: k, C, 1"};
  spec.priorities = {"b1 > a1", "b2 > a2"};
  PreferredRepairProblem problem = testing_util::MakeProblem(spec);
  ConflictGraph cg(*problem.instance);
  const Instance& inst = *problem.instance;
  ASSERT_TRUE(problem.priority->Validate(PriorityMode::kConflictOnly).ok());
  DynamicBitset block_a = testing_util::Sub(inst, {"a1", "a2"});
  ASSERT_TRUE(IsRepair(cg, block_a));
  EXPECT_TRUE(
      ExhaustiveCheckGlobalOptimal(cg, *problem.priority, block_a).optimal);
  EXPECT_FALSE(
      CheckCompletionOptimal(cg, *problem.priority, block_a).optimal);
}

// The same separation is reachable by random search over arity-3
// single-fd instances (establishing it is not an artifact of the
// hand-built example).
TEST(CompletionTest, GapAlsoFoundByRandomSearch) {
  bool found = false;
  for (uint64_t seed = 1; seed <= 300 && !found; ++seed) {
    Schema schema = Schema::SingleRelation(
        "R", 3, {FD(AttrSet{1}, AttrSet{2})});
    RandomProblemOptions opts;
    opts.facts_per_relation = 10;
    opts.domain_size = 3;  // ≥ 3 blocks per key group are needed for a gap
    opts.priority_density = 0.5;
    opts.seed = seed * 977;
    PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
    ConflictGraph cg(*problem.instance);
    for (const DynamicBitset& repair : AllRepairs(cg)) {
      bool global =
          ExhaustiveCheckGlobalOptimal(cg, *problem.priority, repair)
              .optimal;
      bool completion =
          CheckCompletionOptimal(cg, *problem.priority, repair).optimal;
      EXPECT_TRUE(!completion || global);
      if (global && !completion) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompletionTest, ChainPriorityUniqueOptimal) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"x1: k, 1", "x2: k, 2", "x3: k, 3"};
  spec.priorities = {"x1 > x2", "x2 > x3", "x1 > x3"};
  PreferredRepairProblem problem = testing_util::MakeProblem(spec);
  ConflictGraph cg(*problem.instance);
  const Instance& inst = *problem.instance;
  EXPECT_TRUE(CheckCompletionOptimal(cg, *problem.priority,
                                     testing_util::Sub(inst, {"x1"}))
                  .optimal);
  EXPECT_FALSE(CheckCompletionOptimal(cg, *problem.priority,
                                      testing_util::Sub(inst, {"x2"}))
                   .optimal);
  EXPECT_FALSE(CheckCompletionOptimal(cg, *problem.priority,
                                      testing_util::Sub(inst, {"x3"}))
                   .optimal);
}

TEST(CompletionTest, IncomparableTopsBothOptimal) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"x1: k, 1", "x2: k, 2", "x3: k, 3"};
  spec.priorities = {"x1 > x3", "x2 > x3"};
  PreferredRepairProblem problem = testing_util::MakeProblem(spec);
  ConflictGraph cg(*problem.instance);
  const Instance& inst = *problem.instance;
  EXPECT_TRUE(CheckCompletionOptimal(cg, *problem.priority,
                                     testing_util::Sub(inst, {"x1"}))
                  .optimal);
  EXPECT_TRUE(CheckCompletionOptimal(cg, *problem.priority,
                                     testing_util::Sub(inst, {"x2"}))
                  .optimal);
  EXPECT_FALSE(CheckCompletionOptimal(cg, *problem.priority,
                                      testing_util::Sub(inst, {"x3"}))
                   .optimal);
}

TEST(CompletionTest, NonRepairRejected) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"x1: k, 1", "x2: k, 2", "y1: m, 1"};
  spec.priorities = {"x1 > x2"};
  PreferredRepairProblem problem = testing_util::MakeProblem(spec);
  ConflictGraph cg(*problem.instance);
  const Instance& inst = *problem.instance;
  // {x1} is consistent but not maximal (y1 is addable): not an output of
  // the greedy, which never leaves an unconflicted fact behind.
  EXPECT_FALSE(CheckCompletionOptimal(cg, *problem.priority,
                                      testing_util::Sub(inst, {"x1"}))
                   .optimal);
  EXPECT_TRUE(CheckCompletionOptimal(cg, *problem.priority,
                                     testing_util::Sub(inst, {"x1", "y1"}))
                  .optimal);
  // Inconsistent J rejected.
  EXPECT_FALSE(CheckCompletionOptimal(cg, *problem.priority,
                                      testing_util::Sub(inst, {"x1", "x2"}))
                   .optimal);
}

TEST(CompletionTest, GreedyRepairAlwaysCompletionOptimal) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Schema schema = Schema::SingleRelation(
        "R", 3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
    RandomProblemOptions opts;
    opts.facts_per_relation = 12;
    opts.seed = seed;
    PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
    ConflictGraph cg(*problem.instance);
    DynamicBitset greedy =
        GreedyCompletionRepair(cg, *problem.priority, seed * 3);
    EXPECT_TRUE(IsRepair(cg, greedy));
    EXPECT_TRUE(
        CheckCompletionOptimal(cg, *problem.priority, greedy).optimal);
  }
}

}  // namespace
}  // namespace prefrep
