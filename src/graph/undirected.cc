#include "graph/undirected.h"

#include <algorithm>

namespace prefrep {

void UndirectedGraph::AddEdge(size_t u, size_t v) {
  PREFREP_CHECK(u < adjacency_.size() && v < adjacency_.size());
  if (u == v || HasEdge(u, v)) {
    return;
  }
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool UndirectedGraph::HasEdge(size_t u, size_t v) const {
  PREFREP_CHECK(u < adjacency_.size() && v < adjacency_.size());
  const std::vector<size_t>& smaller = adjacency_[u].size() <=
                                               adjacency_[v].size()
                                           ? adjacency_[u]
                                           : adjacency_[v];
  size_t other = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), other) != smaller.end();
}

UndirectedGraph UndirectedGraph::Cycle(size_t n) {
  UndirectedGraph g(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(i, i + 1);
  }
  if (n >= 3) {
    g.AddEdge(n - 1, 0);
  } else if (n == 2) {
    g.AddEdge(0, 1);
  }
  return g;
}

UndirectedGraph UndirectedGraph::Complete(size_t n) {
  UndirectedGraph g(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      g.AddEdge(i, j);
    }
  }
  return g;
}

UndirectedGraph UndirectedGraph::Path(size_t n) {
  UndirectedGraph g(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(i, i + 1);
  }
  return g;
}

UndirectedGraph UndirectedGraph::HamiltonianWithChords(size_t n,
                                                       size_t extra_edges,
                                                       Rng* rng) {
  PREFREP_CHECK(n >= 3);
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  rng->Shuffle(&perm);
  UndirectedGraph g(n);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(perm[i], perm[(i + 1) % n]);
  }
  for (size_t added = 0; added < extra_edges;) {
    size_t u = rng->NextBounded(n);
    size_t v = rng->NextBounded(n);
    if (u != v && !g.HasEdge(u, v)) {
      g.AddEdge(u, v);
      ++added;
    } else {
      // Bail out once the graph is complete.
      if (g.num_edges() == n * (n - 1) / 2) {
        break;
      }
    }
  }
  return g;
}

UndirectedGraph UndirectedGraph::Random(size_t n, double p, Rng* rng) {
  UndirectedGraph g(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng->NextBool(p)) {
        g.AddEdge(i, j);
      }
    }
  }
  return g;
}

UndirectedGraph UndirectedGraph::NonHamiltonianPendant(size_t n, double p,
                                                       Rng* rng) {
  PREFREP_CHECK(n >= 2);
  UndirectedGraph g(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j + 1 < n; ++j) {
      if (rng->NextBool(p)) {
        g.AddEdge(i, j);
      }
    }
  }
  // Node n-1 has a single neighbor, so no cycle can pass through it.
  g.AddEdge(n - 1, rng->NextBounded(n - 1));
  return g;
}

namespace {

// Held–Karp reachability: dp[mask] = set of end nodes v such that there
// is a simple path 0 → ... → v visiting exactly the nodes of mask.
// The graph has a Hamiltonian cycle iff some v adjacent to 0 ends a path
// over the full mask.
std::vector<uint32_t> HamiltonianDp(const UndirectedGraph& g) {
  size_t n = g.num_nodes();
  PREFREP_CHECK_MSG(n <= 24, "Hamiltonian solver limited to 24 nodes");
  std::vector<uint32_t> dp(size_t{1} << n, 0);
  dp[1] = 1;  // path {0} ending at 0
  for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
    if (!(mask & 1) || dp[mask] == 0) {
      continue;  // all paths start at node 0
    }
    uint32_t ends = dp[mask];
    while (ends) {
      size_t v = static_cast<size_t>(__builtin_ctz(ends));
      ends &= ends - 1;
      for (size_t u : g.neighbors(v)) {
        if (!(mask & (uint32_t{1} << u))) {
          dp[mask | (uint32_t{1} << u)] |= uint32_t{1} << u;
        }
      }
    }
  }
  return dp;
}

}  // namespace

bool HasHamiltonianCycle(const UndirectedGraph& g) {
  size_t n = g.num_nodes();
  if (n < 3) {
    return false;  // a cycle needs at least three distinct nodes
  }
  std::vector<uint32_t> dp = HamiltonianDp(g);
  uint32_t full = (n == 32) ? ~uint32_t{0} : ((uint32_t{1} << n) - 1);
  uint32_t ends = dp[full];
  while (ends) {
    size_t v = static_cast<size_t>(__builtin_ctz(ends));
    ends &= ends - 1;
    if (v != 0 && g.HasEdge(v, 0)) {
      return true;
    }
  }
  return false;
}

std::optional<std::vector<size_t>> FindHamiltonianCycle(
    const UndirectedGraph& g) {
  size_t n = g.num_nodes();
  if (n < 3) {
    return std::nullopt;
  }
  std::vector<uint32_t> dp = HamiltonianDp(g);
  uint32_t full = (uint32_t{1} << n) - 1;
  size_t last = SIZE_MAX;
  uint32_t ends = dp[full];
  while (ends) {
    size_t v = static_cast<size_t>(__builtin_ctz(ends));
    ends &= ends - 1;
    if (v != 0 && g.HasEdge(v, 0)) {
      last = v;
      break;
    }
  }
  if (last == SIZE_MAX) {
    return std::nullopt;
  }
  // Reconstruct the path backwards.
  std::vector<size_t> path;
  uint32_t mask = full;
  size_t v = last;
  while (v != 0 || mask != 1) {
    path.push_back(v);
    uint32_t prev_mask = mask & ~(uint32_t{1} << v);
    size_t prev = SIZE_MAX;
    for (size_t u : g.neighbors(v)) {
      if ((prev_mask & (uint32_t{1} << u)) &&
          (dp[prev_mask] & (uint32_t{1} << u))) {
        prev = u;
        break;
      }
    }
    PREFREP_CHECK_MSG(prev != SIZE_MAX, "dp reconstruction failed");
    v = prev;
    mask = prev_mask;
  }
  path.push_back(0);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace prefrep
