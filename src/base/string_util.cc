#include "base/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace prefrep {

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> StrSplitTrimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : StrSplit(s, sep)) {
    std::string_view trimmed = StripAsciiWhitespace(piece);
    if (!trimmed.empty()) {
      out.emplace_back(trimmed);
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<uint64_t> ParseUint(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return std::nullopt;  // overflow
    }
    value = value * 10 + digit;
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace prefrep
