// Copyright (c) prefrep contributors.
// Negative-compile proof (see CMakeLists.txt here): silently dropping a
// Status MUST NOT compile under -Werror=unused-result.  The class-level
// [[nodiscard]] on Status (base/status.h) is what rejects this TU; if
// someone removes the attribute, this test fails by *succeeding* to
// compile (WILL_FAIL inverts the verdict).

#include "base/status.h"

namespace {

prefrep::Status MightFail() { return prefrep::Status::OK(); }

void Caller() {
  MightFail();  // dropped Status — must be a hard error
}

}  // namespace

int main() {
  Caller();
  return 0;
}
