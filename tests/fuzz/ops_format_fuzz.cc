// Copyright (c) prefrep contributors.
// Fuzz harness for the session-ops grammar (io/ops_format.h).
//
// Properties checked on every input the parser accepts:
//   1. Render/reparse closure: SessionOpToString of a parsed op must
//      itself parse (an op the session can hold must be expressible in
//      the grammar — prefrepd logs and replays rendered ops).
//   2. Render idempotence: rendering the reparsed op must reproduce the
//      rendered line byte for byte (SessionOpToString is the canonical
//      form, so one normalization round must reach a fixpoint).
// Inputs the parser rejects must be rejected with a Status, never a
// crash or a sanitizer report.
//
// Build: linked against libFuzzer under the `fuzz` preset, or against
// tests/fuzz/standalone_driver.cc everywhere else (same CLI).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "io/ops_format.h"

namespace prefrep {
namespace {

[[noreturn]] void PropertyFailure(const char* property, const char* origin,
                                  const std::string& detail) {
  std::fprintf(stderr, "[ops_format_fuzz] %s violated (%s): %s\n", property,
               origin, detail.c_str());
  std::abort();  // the crash signal both libFuzzer and the driver report
}

void CheckRoundTrip(const SessionOp& op, const char* origin) {
  std::string rendered = SessionOpToString(op);
  Result<SessionOp> reparsed = ParseSessionOp(rendered);
  if (!reparsed.ok()) {
    PropertyFailure("render/reparse closure", origin,
                    "'" + rendered + "': " + reparsed.status().ToString());
  }
  std::string again = SessionOpToString(*reparsed);
  if (again != rendered) {
    PropertyFailure("render idempotence", origin,
                    "'" + rendered + "' != '" + again + "'");
  }
}

}  // namespace
}  // namespace prefrep

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Whole input as a script (comment/blank handling, line numbering).
  prefrep::Result<std::vector<prefrep::SessionOp>> script =
      prefrep::ParseSessionScript(input);
  if (script.ok()) {
    for (const prefrep::SessionOp& op : *script) {
      prefrep::CheckRoundTrip(op, "script");
    }
  }

  // Whole input as a single raw op line: reaches byte sequences the
  // script reader strips ('#', interior newlines inside one "line").
  prefrep::Result<prefrep::SessionOp> op = prefrep::ParseSessionOp(input);
  if (op.ok()) {
    prefrep::CheckRoundTrip(*op, "line");
  }
  return 0;
}
