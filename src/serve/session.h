// Copyright (c) prefrep contributors.
// SessionContext — a long-lived, incrementally-maintained solving
// session over one prioritizing instance (I, ≻).  Every one-shot entry
// point rebuilds the conflict graph, classifications and block
// decomposition per call; a session keeps them *resident* and patches
// them under edits:
//
//   insert f  — δ-conflict neighbors of f come from the persistent
//               ConflictDeltaIndex buckets (O(|∆| · bucket), not
//               O(instance)).  No neighbors: f is free.  Otherwise f's
//               neighbor blocks and free neighbors merge into ONE block.
//   delete f  — f is tombstoned (ids are stable), its incident conflict
//               and priority edges drop, and its old block re-splits
//               into the connected components of the remainder
//               (singletons become free facts).
//   prefer    — a new edge between conflicting facts; the block is
//               unchanged as a fact set but its solved state is stale.
//
// Only the affected blocks' cache entries are invalidated (refcounted
// via BlockInvalidationIndex — isomorphic twins keep their entries);
// every untouched block's verdicts, counts and constructions survive.
//
// Correctness contract (enforced by tests/serve_test.cc and the
// PREFREP_AUDIT hook): after ANY edit sequence, every rendered answer
// is byte-identical to a from-scratch rebuild on the serialized live
// state — serial and parallel, cache on and off, governed and not.
// Three properties carry the proof: (1) serialization emits live facts
// in id order, so the rebuild's id compaction is order-preserving and
// block numbering / enumeration orders coincide; (2) every fact is
// labeled, and answers render through labels, never raw ids; (3) the
// incremental graph and decomposition equal their rebuilt counterparts
// as *data structures* (sorted adjacency, canonical block order), which
// the audit hook checks directly.

#ifndef PREFREP_SERVE_SESSION_H_
#define PREFREP_SERVE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cache/block_cache.h"
#include "cache/invalidation.h"
#include "classify/categoricity.h"
#include "conflicts/delta.h"
#include "io/ops_format.h"
#include "model/context.h"
#include "serve/mutable_instance.h"

namespace prefrep {

/// Session-wide knobs, fixed at creation (budget can be re-set per
/// request via the budget op).
struct SessionOptions {
  /// Worker threads for per-block dispatch (0 = hardware default).
  size_t threads = 0;
  /// Block-solve cache capacity in entries; 0 disables the cache.
  size_t cache_capacity = 0;
  /// Initial per-request budget (default: unlimited).
  ResourceBudget budget;
};

/// Monotone counters for the stats op / observability.
struct SessionStats {
  uint64_t edits = 0;
  uint64_t queries = 0;
  uint64_t blocks_retired = 0;
  uint64_t cache_entries_erased = 0;
  /// Wall time spent answering queries (check/count/construct/cqa).
  /// `prefrepctl session --crossover` divides a rebuild-and-replay
  /// probe by this to surface when the resident path has degraded
  /// below a from-scratch rebuild (e.g. cache off under heavy edits).
  uint64_t query_micros = 0;
};

/// A resident prioritizing instance with incremental artifact
/// maintenance and a batched request API.  Thread-compatible, not
/// thread-safe: one session serializes its ops, so its resident state
/// carries no locks and no PREFREP_GUARDED_BY annotations.  Per-request
/// solving still fans out through the parallel per-block dispatcher,
/// whose shared structures (base/thread_pool.h, cache/block_cache.h)
/// ARE annotated — the session hands workers only the thread-safe
/// pieces (const ProblemContext views, the BlockSolveCache) and touches
/// everything else from the op-executing thread alone.
class SessionContext {
 public:
  /// Builds a session over a deep copy of `problem` (the argument is
  /// not retained).  The priority must be acyclic; conflict-bounded
  /// priorities get the full edit vocabulary, cross-conflict ones are
  /// query-only (the prefer op enforces conflict-boundedness, and
  /// non-block-local priorities reject session queries).
  static Result<std::unique_ptr<SessionContext>> Create(
      const PreferredRepairProblem& problem, SessionOptions options = {});

  PREFREP_DISALLOW_COPY(SessionContext);

  // ---- edits ------------------------------------------------------

  Result<std::string> Insert(std::string_view label,
                             std::string_view relation_name,
                             const std::vector<std::string>& constants);
  Result<std::string> Delete(std::string_view label);
  Result<std::string> Prefer(std::string_view higher_label,
                             std::string_view lower_label);

  // ---- batched request API ---------------------------------------

  /// Executes one parsed op (edit or query) and returns its rendered
  /// reply.  Query replies are the byte-identical-under-rebuild
  /// surface; edit and stats replies are informational.
  Result<std::string> Execute(const SessionOp& op);

  // ---- resident artifacts ----------------------------------------

  /// The resident ProblemContext (re-materialized lazily after edits).
  /// Valid until the next edit.  Shared by every existing prefrepctl
  /// subcommand so one CLI run pays for conflicts/blocks once.  Mutable
  /// so such callers can install per-call governors; do not install a
  /// different block cache — the session's invalidation index only
  /// tracks its own.
  ProblemContext& context();

  const Instance& instance() const { return facts_.instance(); }
  const PriorityRelation& priority() const { return *priority_; }
  const DynamicBitset& live() const { return facts_.live(); }
  PriorityMode mode() const { return mode_; }

  /// The current candidate J (live facts only; deletes drop members).
  DynamicBitset JSubinstance() const;

  /// Serializes the live state in the text-format grammar; parsing it
  /// reproduces this session's answers byte for byte.
  std::string SerializeLive();

  uint64_t generation() const { return facts_.generation(); }
  const SessionStats& stats() const { return stats_; }
  BlockSolveCache* cache() { return cache_.get(); }

  /// Per-block categoricity verdicts resident across requests; entries
  /// are retired whenever their block's membership or internal priority
  /// edges change (insert-merge, delete-split, prefer), alongside the
  /// fingerprint invalidation.  Exposed so tests can cross-check every
  /// cached bit against a from-scratch recomputation after each edit.
  CategoricityMemo& categoricity_memo() { return categoricity_memo_; }

  /// Replaces the per-request budget (budget op).
  void set_budget(const ResourceBudget& budget) { budget_ = budget; }

  /// The current per-request budget (snapshots persist it alongside the
  /// serialized instance — see persist/snapshot.h).
  const ResourceBudget& budget() const { return budget_; }

 private:
  SessionContext(const PreferredRepairProblem& problem,
                 SessionOptions options);

  // Re-materializes the BlockDecomposition view + ProblemContext after
  // edits and registers changed blocks' fingerprints with the
  // invalidation index.  Cheap when nothing changed.
  void EnsureFresh();

  // Retires block `key`: drops its cache entries (refcounted) and its
  // membership record.  block_key_of_ entries are overwritten by the
  // caller (merge/split install or free/tombstone marking).
  void RetireBlock(FactId key);

  // Installs a block over `members` (sorted ascending, size ≥ 2); the
  // key is members.front().
  void InstallBlock(std::vector<FactId> members);

  // True iff `to` is reachable from `from` along declared ≻-edges
  // (cycle guard for Prefer).
  bool Reaches(FactId from, FactId to) const;

  // Query execution (EnsureFresh + per-request governor).
  Result<std::string> RunCheck(AnswerSemantics semantics);
  Result<std::string> RunCount(AnswerSemantics semantics);
  Result<std::string> RunConstruct();
  Result<std::string> RunCqa(AnswerSemantics semantics,
                             const std::string& query_text);
  std::string RenderStats();

#if PREFREP_AUDIT_ENABLED
  // Compares the incremental graph/blocks/priority against a
  // from-scratch rebuild of the serialized live state, modulo the
  // order-preserving id compaction.  Fatal on divergence.
  void AuditAgainstRebuild();
#endif

  MutableInstance facts_;
  std::unique_ptr<PriorityRelation> priority_;
  PriorityMode mode_ = PriorityMode::kConflictOnly;
  ConflictDeltaIndex conflict_index_;
  std::unique_ptr<ConflictGraph> graph_;

  // Incremental block state.  A block's key is its smallest fact id;
  // std::map iteration then yields the canonical block order for free.
  //
  // delta-field-guard: Block=4
  // (Every Block field is re-derived here at materialization: id from
  // the map position, rel from the member facts, facts/fact_list from
  // members.  Adding a field to struct Block requires teaching
  // EnsureFresh to derive it and bumping this guard — the lint pins it
  // to the fingerprint-field-guard count in cache/block_fingerprint.cc
  // so the delta path and the cache key can never silently diverge.)
  struct BlockMembers {
    RelId rel = kInvalidRelId;
    std::vector<FactId> facts;  // sorted ascending
  };
  std::map<FactId, BlockMembers> block_members_;
  std::vector<FactId> block_key_of_;  // kInvalidFactId: free or dead
  DynamicBitset free_;                // live facts with no conflicts

  // Materialized view (rebuilt lazily by EnsureFresh).
  bool view_dirty_ = true;
  std::unique_ptr<BlockDecomposition> blocks_view_;
  std::unique_ptr<ProblemContext> ctx_;
  bool priority_block_local_value_ = true;

  // Schema-level classifications never change (the schema is fixed).
  SchemaClassification classification_;
  CcpSchemaClassification ccp_classification_;

  std::unique_ptr<BlockSolveCache> cache_;
  BlockInvalidationIndex invalidation_;
  CategoricityMemo categoricity_memo_;
  std::set<FactId> changed_keys_;  // fingerprints to (re-)register

  std::set<FactId> j_;  // ordered: renders deterministically
  SessionOptions options_;
  ResourceBudget budget_;
  SessionStats stats_;
};

}  // namespace prefrep

#endif  // PREFREP_SERVE_SESSION_H_
