// Pareto-optimal repair checking (§2.4, §3): polynomial for every schema,
// by searching for a Pareto improvement set directly.
#include "repair/pareto.h"

#include "repair/audit.h"
#include "repair/subinstance_ops.h"

namespace prefrep {

CheckResult FindParetoImprovement(const ConflictGraph& cg,
                                  const PriorityRelation& pr,
                                  const DynamicBitset& j,
                                  const DynamicBitset* universe) {
  PREFREP_CHECK_MSG(IsConsistent(cg, j),
                    "FindParetoImprovement requires a consistent J");
  size_t n = cg.num_facts();
  const Instance& instance = cg.instance();
  for (FactId g = 0; g < n; ++g) {
    if (j.test(g) || (universe != nullptr && !universe->test(g))) {
      continue;
    }
    // g improves J iff g ≻ f for every f ∈ J conflicting with g.
    bool improves = true;
    for (FactId f : cg.neighbors(g)) {
      if (j.test(f) && !pr.Prefers(g, f)) {
        improves = false;
        break;
      }
    }
    if (!improves) {
      continue;
    }
    DynamicBitset improvement = j;
    for (FactId f : cg.neighbors(g)) {
      if (j.test(f)) {
        improvement.reset(f);
      }
    }
    improvement.set(g);
    CheckResult result = CheckResult::NotOptimal(
        std::move(improvement),
        "fact " + instance.FactToString(g) +
            " is preferred over every fact of J it conflicts with");
    audit::CheckParetoWitness(cg, pr, j, result);
    return result;
  }
  return CheckResult::Optimal();
}

CheckResult CheckParetoOptimal(const ConflictGraph& cg,
                               const PriorityRelation& pr,
                               const DynamicBitset& j) {
  if (!IsConsistent(cg, j)) {
    return CheckResult::NotOptimalNoWitness();  // not even a repair
  }
  CheckResult improvement = FindParetoImprovement(cg, pr, j);
  if (!improvement.optimal) {
    return improvement;
  }
  return CheckResult::Optimal();
}

}  // namespace prefrep
