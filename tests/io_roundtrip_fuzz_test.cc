// Round-trip fuzzing of the text format: random problems (random
// schemas, facts, priorities, J) are serialized and re-parsed, and the
// semantic content — fact set, priority edges, J, conflicts, optimality
// verdicts — must survive unchanged.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random_instance.h"
#include "io/text_format.h"
#include "repair/exhaustive.h"
#include "repair/pareto.h"

namespace prefrep {
namespace {

Schema FuzzSchema(Rng* rng) {
  Schema schema;
  size_t num_relations = 1 + rng->NextBounded(3);
  for (size_t r = 0; r < num_relations; ++r) {
    int arity = 1 + static_cast<int>(rng->NextBounded(4));
    RelId rel = schema.MustAddRelation("Rel" + std::to_string(r), arity);
    uint64_t full = (uint64_t{1} << arity) - 1;
    size_t num_fds = rng->NextBounded(3);
    for (size_t i = 0; i < num_fds; ++i) {
      schema.MustAddFd(rel, FD(AttrSet::FromMask(rng->Next() & full),
                               AttrSet::FromMask(rng->Next() & full)));
    }
  }
  return schema;
}

// Renders a fact by content only (labels differ across the round trip:
// serialization synthesizes f<id> labels for unlabeled facts).
std::string ContentOf(const Instance& inst, FactId f) {
  const Fact& fact = inst.fact(f);
  std::string s = inst.schema().relation_name(fact.rel) + "(";
  for (ValueId v : fact.values) {
    s += inst.dict().Text(v) + ",";
  }
  return s + ")";
}

// Canonical form of an instance's fact set: sorted textual facts.
std::vector<std::string> CanonicalFacts(const Instance& inst) {
  std::vector<std::string> out;
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    out.push_back(ContentOf(inst, f));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Canonical priority: sorted textual (higher, lower) pairs.
std::vector<std::string> CanonicalPriority(const PreferredRepairProblem& p) {
  std::vector<std::string> out;
  for (const auto& [h, l] : p.priority->edges()) {
    out.push_back(ContentOf(*p.instance, h) + ">" +
                  ContentOf(*p.instance, l));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> CanonicalJ(const PreferredRepairProblem& p) {
  std::vector<std::string> out;
  p.j.ForEach([&](size_t f) {
    out.push_back(ContentOf(*p.instance, static_cast<FactId>(f)));
  });
  std::sort(out.begin(), out.end());
  return out;
}

class RoundTripFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripFuzz, SemanticsSurviveSerialization) {
  Rng rng(GetParam() * 2654435761u + 5);
  Schema schema = FuzzSchema(&rng);
  RandomProblemOptions opts;
  opts.facts_per_relation = 4 + rng.NextBounded(8);
  opts.domain_size = 2 + rng.NextBounded(4);
  opts.priority_density = rng.NextDouble();
  opts.j_policy = static_cast<JPolicy>(rng.NextBounded(4));
  opts.seed = rng.Next();
  PreferredRepairProblem original = GenerateRandomProblem(schema, opts);

  std::string text = ProblemToText(original);
  Result<PreferredRepairProblem> reparsed = ParseProblemText(text);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\n--- text ---\n" << text;

  EXPECT_EQ(CanonicalFacts(*reparsed->instance),
            CanonicalFacts(*original.instance));
  EXPECT_EQ(CanonicalPriority(*reparsed), CanonicalPriority(original));
  EXPECT_EQ(CanonicalJ(*reparsed), CanonicalJ(original));

  // Semantic invariants: conflicts and optimality verdicts agree.
  ConflictGraph cg1(*original.instance);
  ConflictGraph cg2(*reparsed->instance);
  EXPECT_EQ(cg1.num_edges(), cg2.num_edges());
  EXPECT_EQ(CountRepairs(cg1), CountRepairs(cg2));
  EXPECT_EQ(
      CheckParetoOptimal(cg1, *original.priority, original.j).optimal,
      CheckParetoOptimal(cg2, *reparsed->priority, reparsed->j).optimal);
  EXPECT_EQ(ExhaustiveCheckGlobalOptimal(cg1, *original.priority, original.j)
                .optimal,
            ExhaustiveCheckGlobalOptimal(cg2, *reparsed->priority,
                                         reparsed->j)
                .optimal);

  // Idempotence: serializing the reparse gives the same text.
  EXPECT_EQ(ProblemToText(*reparsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace prefrep
