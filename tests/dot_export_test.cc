// Tests for the Graphviz export: well-formedness and the presence of
// exactly the expected nodes/edges for known instances (Figure 3 and
// Figure 6 shapes).

#include <gtest/gtest.h>

#include "gen/running_example.h"
#include "io/dot_export.h"
#include "test_util.h"

namespace prefrep {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(DotExportTest, ConflictGraphShape) {
  PreferredRepairProblem p = RunningExampleProblem();
  ConflictGraph cg(*p.instance);
  DynamicBitset j = RunningExampleJ(*p.instance, 2);
  std::string dot = ConflictGraphToDot(cg, *p.priority, j);
  EXPECT_NE(dot.find("digraph conflicts {"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // 15 conflict edges (undirected) + 6 priority edges (dashed).
  EXPECT_EQ(CountOccurrences(dot, "[dir=none]"), cg.num_edges());
  EXPECT_EQ(CountOccurrences(dot, "style=dashed"), p.priority->num_edges());
  // J facts are filled; J2 has 7 facts.
  EXPECT_EQ(CountOccurrences(dot, "fillcolor=lightblue"), j.count());
  // Labels appear.
  EXPECT_NE(dot.find("g1f1"), std::string::npos);
  EXPECT_NE(dot.find("LibLoc(lib2, almaden)"), std::string::npos);
}

TEST(DotExportTest, ImprovementGraphFigure3) {
  PreferredRepairProblem p = RunningExampleProblem();
  RelId lib_loc = p.instance->schema().FindRelation("LibLoc");
  DynamicBitset j = testing_util::Sub(*p.instance, {"d1a", "f2b", "f3c"});
  KeyedImprovementGraph g21 = BuildImprovementGraph(
      *p.instance, *p.priority, lib_loc, AttrSet{2}, AttrSet{1}, j);
  std::string dot = ImprovementGraphToDot(g21, "G21");
  EXPECT_NE(dot.find("digraph G21 {"), std::string::npos);
  // 3 forward (solid) + 2 backward (dashed) edges as in Figure 3.
  EXPECT_EQ(CountOccurrences(dot, "style=dashed"), 2u);
  EXPECT_NE(dot.find("\"L:almaden\""), std::string::npos);
  EXPECT_NE(dot.find("\"R:lib1\""), std::string::npos);
}

TEST(DotExportTest, CcpGraphFigure6) {
  testing_util::ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"f01: 0, 1", "f02: 0, 2", "f1b: 1, b", "f13: 1, 3"};
  spec.priorities = {"f13 > f02"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  DynamicBitset j = testing_util::Sub(*p.instance, {"f02", "f1b"});
  std::string dot = CcpGraphToDot(cg, *p.priority, j);
  EXPECT_NE(dot.find("digraph ccp {"), std::string::npos);
  // Conflict edges J → I\J: f02→f01, f1b→f13; priority edge f13→f02.
  EXPECT_NE(dot.find("\"f02\" -> \"f01\""), std::string::npos);
  EXPECT_NE(dot.find("\"f1b\" -> \"f13\""), std::string::npos);
  EXPECT_NE(dot.find("\"f13\" -> \"f02\" [style=dashed"),
            std::string::npos);
}

TEST(DotExportTest, QuotesSpecialCharacters) {
  Schema schema = Schema::SingleRelation("R", 1, {});
  PreferredRepairProblem p(std::move(schema));
  p.instance->MustAddFact("R", {"va\"lue"});
  p.InitPriority();
  ConflictGraph cg(*p.instance);
  std::string dot =
      ConflictGraphToDot(cg, *p.priority, p.instance->EmptySubinstance());
  EXPECT_NE(dot.find("va\\\"lue"), std::string::npos);
}

}  // namespace
}  // namespace prefrep
