#include "reductions/pi_case1.h"

#include "conflicts/conflicts.h"
#include "reductions/hard_schemas.h"

namespace prefrep {

namespace {

// The fixed constant used for attributes inside all three key sets.
constexpr const char* kBullet = "•";

std::string EncodePair(const std::string& x, const std::string& y) {
  return "<" + x + "|" + y + ">";
}

std::string EncodeTriple(const std::string& x, const std::string& y,
                         const std::string& z) {
  return "<" + x + "|" + y + "|" + z + ">";
}

}  // namespace

Result<PiCase1Reduction> PiCase1Reduction::Create(const Schema& target) {
  if (target.num_relations() != 1) {
    return Status::InvalidArgument(
        "Case 1 reduction targets single-relation schemas");
  }
  const FDSet& fds = target.fds(0);
  if (!fds.EquivalentToSomeKeySet()) {
    return Status::InvalidArgument(
        "target ∆ is not equivalent to a set of key constraints");
  }
  std::vector<AttrSet> keys = fds.AsKeySet();
  if (keys.size() < 3) {
    return Status::InvalidArgument(
        "target ∆ is equivalent to fewer than three keys (tractable side)");
  }
  PiCase1Reduction out;
  out.target_ = target;
  out.arity_ = fds.arity();
  out.keys_ = keys;
  out.a12_ = keys[0];
  out.a23_ = keys[1];
  out.a13_ = keys[2];
  return out;
}

std::vector<std::string> PiCase1Reduction::TranslateConstants(
    const std::array<std::string, 3>& c) const {
  std::vector<std::string> d(static_cast<size_t>(arity_));
  for (int i = 1; i <= arity_; ++i) {
    bool in12 = a12_.Contains(i);
    bool in23 = a23_.Contains(i);
    bool in13 = a13_.Contains(i);
    std::string value;
    int count = static_cast<int>(in12) + static_cast<int>(in23) +
                static_cast<int>(in13);
    switch (count) {
      case 3:
        value = kBullet;
        break;
      case 2:
        // The shared coordinate of the two key sets containing i.
        if (in12 && in23) {
          value = c[1];  // c2
        } else if (in12 && in13) {
          value = c[0];  // c1
        } else {
          value = c[2];  // c3
        }
        break;
      case 1:
        if (in12) {
          value = EncodePair(c[0], c[1]);
        } else if (in23) {
          value = EncodePair(c[1], c[2]);
        } else {
          value = EncodePair(c[0], c[2]);
        }
        break;
      default:
        value = EncodeTriple(c[0], c[1], c[2]);
        break;
    }
    d[static_cast<size_t>(i - 1)] = std::move(value);
  }
  return d;
}

PreferredRepairProblem PiCase1Reduction::Apply(
    const PreferredRepairProblem& s1_problem) const {
  const Instance& src = *s1_problem.instance;
  PREFREP_CHECK_MSG(src.schema().num_relations() == 1 &&
                        src.schema().arity(0) == 3,
                    "source problem must be over the ternary S1 relation");
  PreferredRepairProblem out(target_);
  Instance& dst = *out.instance;

  // Π(I): translate facts, preserving ids 1:1 (AddFact dedups, and Π is
  // injective, so ids line up with the source's).
  for (FactId f = 0; f < src.num_facts(); ++f) {
    const Fact& fact = src.fact(f);
    std::array<std::string, 3> c = {src.dict().Text(fact.values[0]),
                                    src.dict().Text(fact.values[1]),
                                    src.dict().Text(fact.values[2])};
    Result<FactId> added =
        dst.AddFact(RelId{0}, TranslateConstants(c), src.label(f));
    PREFREP_CHECK_MSG(added.ok() && *added == f,
                      "Π failed to be injective on the given facts");
  }

  // Π(≻) and Π(J) are then identity on ids.
  out.InitPriority();
  for (const auto& [higher, lower] : s1_problem.priority->edges()) {
    out.priority->MustAdd(higher, lower);
  }
  out.j = s1_problem.j;
  return out;
}

Status ValidatePiProperties(const PiCase1Reduction& reduction,
                            const Instance& s1_instance) {
  // Lemma 5.3 (injectivity) on the instance's facts, and Lemma 5.4
  // (consistency preservation) on every fact pair.  FD consistency is a
  // pairwise property, so pair coverage is complete.
  const Schema& s1_schema = s1_instance.schema();
  // Translate every fact once.
  std::vector<std::vector<std::string>> images;
  for (FactId f = 0; f < s1_instance.num_facts(); ++f) {
    const Fact& fact = s1_instance.fact(f);
    std::array<std::string, 3> c = {
        s1_instance.dict().Text(fact.values[0]),
        s1_instance.dict().Text(fact.values[1]),
        s1_instance.dict().Text(fact.values[2])};
    images.push_back(reduction.TranslateConstants(c));
  }
  for (size_t f = 0; f < images.size(); ++f) {
    for (size_t g = f + 1; g < images.size(); ++g) {
      if (images[f] == images[g]) {
        return Status::Internal("Π not injective: facts " +
                                std::to_string(f) + " and " +
                                std::to_string(g) + " collide");
      }
    }
  }

  // Pairwise consistency preservation, evaluated via two throwaway
  // two-fact instances.
  const FDSet& s1_fds = s1_schema.fds(0);
  for (size_t f = 0; f < images.size(); ++f) {
    for (size_t g = f + 1; g < images.size(); ++g) {
      // S1-side consistency of {f, g}.
      Fact ff = s1_instance.fact(static_cast<FactId>(f));
      Fact gg = s1_instance.fact(static_cast<FactId>(g));
      bool src_consistent = true;
      for (const FD& fd : s1_fds.fds()) {
        if (IsDeltaConflict(ff, gg, fd)) {
          src_consistent = false;
          break;
        }
      }
      // Target-side consistency of {Π(f), Π(g)}.
      // The target ∆ is equivalent to reduction.keys(), so two distinct
      // facts conflict iff they agree on some key.
      bool dst_consistent = true;
      for (const AttrSet& key : reduction.keys()) {
        bool agree_on_key = true;
        key.ForEach([&](int a) {
          if (images[f][static_cast<size_t>(a - 1)] !=
              images[g][static_cast<size_t>(a - 1)]) {
            agree_on_key = false;
          }
        });
        if (agree_on_key && images[f] != images[g]) {
          dst_consistent = false;
          break;
        }
      }
      if (src_consistent != dst_consistent) {
        return Status::Internal(
            "Π does not preserve consistency on facts " + std::to_string(f) +
            ", " + std::to_string(g));
      }
    }
  }
  return Status::OK();
}

}  // namespace prefrep
