// Tests for the priority builders, conflict statistics and the
// explanation facility.

#include <gtest/gtest.h>

#include "conflicts/stats.h"
#include "gen/running_example.h"
#include "priority/builders.h"
#include "repair/checker.h"
#include "repair/explain.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::ProblemSpec;

// --- Priority builders -------------------------------------------------------

TEST(BuildersTest, ScorePriorityConflictOnly) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"old: k, 1", "new: k, 2", "other: m, 1"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  const Instance& inst = *p.instance;
  ConflictGraph cg(inst);
  std::vector<int64_t> ts = {1, 2, 9};  // by fact id
  PriorityRelation pr = BuildRecencyPriority(
      cg, [&ts](FactId f) { return ts[f]; });
  EXPECT_TRUE(pr.Validate(PriorityMode::kConflictOnly).ok());
  EXPECT_TRUE(pr.Prefers(inst.FindLabel("new"), inst.FindLabel("old")));
  // "other" conflicts with nothing: no edges despite its high score.
  EXPECT_TRUE(pr.Dominates(inst.FindLabel("other")).empty());
  EXPECT_EQ(pr.num_edges(), 1u);
}

TEST(BuildersTest, ScorePriorityCrossConflict) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: k, 2", "c: m, 1"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  std::vector<int64_t> rank = {1, 2, 3};
  PriorityRelation pr = BuildScorePriority(
      cg, [&rank](FactId f) { return rank[f]; },
      PriorityMode::kCrossConflict);
  // All three pairs ordered (distinct scores).
  EXPECT_EQ(pr.num_edges(), 3u);
  EXPECT_TRUE(pr.Validate(PriorityMode::kCrossConflict).ok());
  EXPECT_FALSE(pr.Validate(PriorityMode::kConflictOnly).ok());
}

TEST(BuildersTest, TiedScoresProduceNoEdge) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: k, 2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  PriorityRelation pr =
      BuildSourcePriority(cg, [](FactId) { return 7; });
  EXPECT_EQ(pr.num_edges(), 0u);
}

// --- Conflict statistics ------------------------------------------------------

TEST(StatsTest, RunningExampleStats) {
  PreferredRepairProblem p = RunningExampleProblem();
  ConflictGraph cg(*p.instance);
  ConflictStats stats = ComputeConflictStats(cg);
  EXPECT_EQ(stats.num_facts, 13u);
  EXPECT_EQ(stats.num_conflicts, 15u);
  // f2p1 and h3h2 are uncontested; the other 11 facts conflict.
  EXPECT_EQ(stats.conflicting_facts, 11u);
  // Components: BookLoc {g1f1, g1f2, f1d3}; the LibLoc facts form one
  // connected blob (all 8 are linked through lib/loc chains).
  EXPECT_EQ(stats.num_components, 2u);
  EXPECT_EQ(stats.largest_component, 8u);
  EXPECT_GT(stats.log2_repair_upper_bound, 4.0);  // ≥ 16 actual repairs
  EXPECT_NE(stats.ToString().find("13 facts"), std::string::npos);
}

TEST(StatsTest, ComponentsOfConflictFreeInstance) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k1, 1", "b: k2, 2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  ConflictStats stats = ComputeConflictStats(cg);
  EXPECT_EQ(stats.num_conflicts, 0u);
  EXPECT_EQ(stats.num_components, 0u);
  EXPECT_EQ(stats.log2_repair_upper_bound, 0.0);
  size_t n = 0;
  std::vector<size_t> comp = ConflictComponents(cg, &n);
  EXPECT_EQ(n, 2u);  // two singleton components
  EXPECT_NE(comp[0], comp[1]);
}

// --- Explanations --------------------------------------------------------------

TEST(ExplainTest, NotOptimalExplanationNamesImprovers) {
  PreferredRepairProblem p = RunningExampleProblem();
  RepairChecker checker(*p.instance, *p.priority);
  DynamicBitset j1 = RunningExampleJ(*p.instance, 1);
  auto outcome = checker.CheckGloballyOptimal(j1);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->result.optimal);
  std::string text = ExplainOutcome(checker.conflict_graph(), *p.priority,
                                    j1, outcome->result);
  EXPECT_NE(text.find("not globally optimal"), std::string::npos);
  EXPECT_NE(text.find("drop"), std::string::npos);
  EXPECT_NE(text.find("outranked by"), std::string::npos);
  EXPECT_NE(text.find("g2a"), std::string::npos);  // the improver
}

TEST(ExplainTest, OptimalAndInconsistentMessages) {
  PreferredRepairProblem p = RunningExampleProblem();
  RepairChecker checker(*p.instance, *p.priority);
  DynamicBitset j2 = RunningExampleJ(*p.instance, 2);
  auto ok = checker.CheckGloballyOptimal(j2);
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ExplainOutcome(checker.conflict_graph(), *p.priority, j2,
                           ok->result)
                .find("globally-optimal repair"),
            std::string::npos);

  DynamicBitset bad = p.instance->AllFacts();
  auto rejected = checker.CheckGloballyOptimal(bad);
  ASSERT_TRUE(rejected.ok());
  EXPECT_NE(ExplainOutcome(checker.conflict_graph(), *p.priority, bad,
                           rejected->result)
                .find("inconsistent"),
            std::string::npos);
}

TEST(ExplainTest, NonMaximalExplanationListsAdditions) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: m, 1"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  DynamicBitset j = testing_util::Sub(*p.instance, {"a"});
  DynamicBitset improvement = p.instance->AllFacts();
  std::string text = ExplainImprovement(cg, *p.priority, j, improvement);
  EXPECT_NE(text.find("not maximal"), std::string::npos);
  EXPECT_NE(text.find("+ add"), std::string::npos);
}

TEST(ExplainTest, RejectsInvalidImprovement) {
  PreferredRepairProblem p = RunningExampleProblem();
  ConflictGraph cg(*p.instance);
  DynamicBitset j2 = RunningExampleJ(*p.instance, 2);
  DynamicBitset j1 = RunningExampleJ(*p.instance, 1);
  // J1 does not improve J2.
  EXPECT_NE(ExplainImprovement(cg, *p.priority, j2, j1)
                .find("not a global improvement"),
            std::string::npos);
}

}  // namespace
}  // namespace prefrep
