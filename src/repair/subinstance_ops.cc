// Consistency and maximality primitives over subinstances (§2.2, §2.4):
// the building blocks every checker and constructor shares.
#include "repair/subinstance_ops.h"

#include <unordered_map>

#include "base/hash.h"
#include "conflicts/projection.h"

namespace prefrep {

bool IsConsistent(const Instance& instance, const DynamicBitset& sub) {
  return !FindViolation(instance, sub).has_value();
}

std::optional<std::pair<FactId, FactId>> FindViolation(
    const Instance& instance, const DynamicBitset& sub) {
  const Schema& schema = instance.schema();
  // Representatives of each lhs-projection group, keyed by the seeded
  // projection hash (collision lists, verified by row compare — no key
  // vectors materialized, see conflicts/projection.h).
  std::unordered_map<uint64_t, std::vector<FactId>> reps;
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    for (const FdProjection& p : BuildFdProjections(schema, rel)) {
      // For A → B: within each A-projection group, all facts must share
      // the same B-projection; remember one representative per group.
      reps.clear();
      for (FactId f : instance.facts_of(rel)) {
        if (!sub.test(f)) {
          continue;
        }
        const ValueId* row = instance.row(f);
        const uint64_t h = ProjectHash(row, p.lhs, p.lhs_seed);
        std::vector<FactId>& bucket = reps[h];
        FactId rep = kInvalidFactId;
        for (FactId r : bucket) {
          if (RowsEqualOn(row, instance.row(r), p.lhs)) {
            rep = r;
            break;
          }
        }
        if (rep == kInvalidFactId) {
          bucket.push_back(f);
        } else if (!RowsEqualOn(row, instance.row(rep), p.rhs)) {
          return std::make_pair(rep, f);
        }
      }
    }
  }
  return std::nullopt;
}

bool IsConsistent(const ConflictGraph& cg, const DynamicBitset& sub) {
  bool consistent = true;
  sub.ForEach([&](size_t f) {
    if (!consistent) {
      return;
    }
    for (FactId g : cg.neighbors(static_cast<FactId>(f))) {
      if (g > f && sub.test(g)) {
        consistent = false;
        return;
      }
    }
  });
  return consistent;
}

bool IsRepair(const ConflictGraph& cg, const DynamicBitset& sub) {
  if (!IsConsistent(cg, sub)) {
    return false;
  }
  return !FindExtension(cg, sub).has_value();
}

std::optional<FactId> FindExtension(const ConflictGraph& cg,
                                    const DynamicBitset& sub) {
  size_t n = cg.num_facts();
  for (FactId f = 0; f < n; ++f) {
    if (sub.test(f)) {
      continue;
    }
    if (!cg.ConflictsWithSet(f, sub)) {
      return f;
    }
  }
  return std::nullopt;
}

DynamicBitset ExtendToRepair(const ConflictGraph& cg, DynamicBitset sub) {
  PREFREP_CHECK_MSG(IsConsistent(cg, sub),
                    "ExtendToRepair requires a consistent subinstance");
  size_t n = cg.num_facts();
  for (FactId f = 0; f < n; ++f) {
    if (!sub.test(f) && !cg.ConflictsWithSet(f, sub)) {
      sub.set(f);
    }
  }
  return sub;
}

DynamicBitset RestrictToRelation(const Instance& instance, RelId rel,
                                 const DynamicBitset& sub) {
  DynamicBitset out(instance.num_facts());
  for (FactId f : instance.facts_of(rel)) {
    if (sub.test(f)) {
      out.set(f);
    }
  }
  return out;
}

}  // namespace prefrep
