// Tests for the unified dispatching RepairChecker: routing decisions,
// the allow_exponential guard, rejection of invalid inputs, and
// Proposition 3.5-style per-relation behaviour.

#include <gtest/gtest.h>

#include "gen/running_example.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"
#include "test_util.h"

namespace prefrep {
namespace {

TEST(CheckerTest, RouteNamesAlgorithms) {
  PreferredRepairProblem problem = RunningExampleProblem();
  RepairChecker checker(*problem.instance, *problem.priority);
  auto outcome =
      checker.CheckGloballyOptimal(RunningExampleJ(*problem.instance, 2));
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->route.size(), 2u);
  EXPECT_NE(outcome->route[0].find("GRepCheck1FD"), std::string::npos);
  EXPECT_NE(outcome->route[1].find("GRepCheck2Keys"), std::string::npos);
}

TEST(CheckerTest, HardSchemaWithExponentialDisabledFails) {
  Schema schema = Schema::SingleRelation(
      "R", 3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  PreferredRepairProblem problem(std::move(schema));
  problem.instance->MustAddFact("R", {"a", "b", "c"});
  problem.InitPriority();
  CheckerOptions opts;
  opts.allow_exponential = false;
  RepairChecker checker(*problem.instance, *problem.priority, opts);
  EXPECT_FALSE(checker.SchemaIsTractable());
  auto outcome = checker.CheckGloballyOptimal(problem.instance->AllFacts());
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckerTest, InconsistentJRejectedBeforeDispatch) {
  PreferredRepairProblem problem = RunningExampleProblem();
  RepairChecker checker(*problem.instance, *problem.priority);
  DynamicBitset bad = problem.instance->AllFacts();  // I is inconsistent
  auto outcome = checker.CheckGloballyOptimal(bad);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->result.optimal);
  ASSERT_EQ(outcome->route.size(), 1u);
  EXPECT_NE(outcome->route[0].find("inconsistent"), std::string::npos);
}

TEST(CheckerTest, EmptyInstanceEmptyJIsOptimal) {
  Schema schema = Schema::SingleRelation(
      "R", 2, {FD(AttrSet{1}, AttrSet{2})});
  PreferredRepairProblem problem(std::move(schema));
  problem.InitPriority();
  RepairChecker checker(*problem.instance, *problem.priority);
  auto outcome =
      checker.CheckGloballyOptimal(problem.instance->EmptySubinstance());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->result.optimal);
}

TEST(CheckerTest, PerRelationIndependence) {
  // A defect in one relation must be reported regardless of the other
  // relation being optimal, and vice versa.
  Schema schema;
  RelId a = schema.MustAddRelation("A", 2);
  RelId b = schema.MustAddRelation("B", 2);
  schema.MustAddFd(a, FD(AttrSet{1}, AttrSet{2}));
  schema.MustAddFd(b, FD(AttrSet{1}, AttrSet{2}));
  PreferredRepairProblem problem(std::move(schema));
  Instance& inst = *problem.instance;
  inst.MustAddFact("A", {"k", "good"}, "a_good");
  inst.MustAddFact("A", {"k", "bad"}, "a_bad");
  inst.MustAddFact("B", {"k", "good"}, "b_good");
  inst.MustAddFact("B", {"k", "bad"}, "b_bad");
  problem.InitPriority();
  PREFREP_CHECK(problem.priority->AddByLabels("a_good", "a_bad").ok());
  PREFREP_CHECK(problem.priority->AddByLabels("b_good", "b_bad").ok());
  RepairChecker checker(inst, *problem.priority);

  auto both_good = checker.CheckGloballyOptimal(
      inst.SubinstanceByLabels({"a_good", "b_good"}));
  ASSERT_TRUE(both_good.ok());
  EXPECT_TRUE(both_good->result.optimal);

  for (auto labels : {std::vector<std::string>{"a_bad", "b_good"},
                      std::vector<std::string>{"a_good", "b_bad"},
                      std::vector<std::string>{"a_bad", "b_bad"}}) {
    auto outcome =
        checker.CheckGloballyOptimal(inst.SubinstanceByLabels(labels));
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->result.optimal);
    ConflictGraph cg(inst);
    EXPECT_EQ(testing_util::VerifyWitness(
                  cg, *problem.priority, inst.SubinstanceByLabels(labels),
                  outcome->result),
              "");
  }
}

TEST(CheckerTest, CcpModeRejectsConflictOnlyViolations) {
  // A cross-conflict priority must be rejected when the checker runs in
  // kConflictOnly mode (constructor check).
  Schema schema = Schema::SingleRelation(
      "R", 2, {FD(AttrSet{1}, AttrSet{1, 2})});
  PreferredRepairProblem problem(std::move(schema));
  Instance& inst = *problem.instance;
  inst.MustAddFact("R", {"a", "1"}, "f1");
  inst.MustAddFact("R", {"b", "2"}, "f2");  // no conflict with f1
  problem.InitPriority();
  PREFREP_CHECK(problem.priority->AddByLabels("f1", "f2").ok());
  CheckerOptions ccp;
  ccp.mode = PriorityMode::kCrossConflict;
  RepairChecker checker(inst, *problem.priority, ccp);  // fine
  auto outcome = checker.CheckGloballyOptimal(inst.AllFacts());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->result.optimal);
  EXPECT_DEATH(
      { RepairChecker bad(inst, *problem.priority, CheckerOptions{}); },
      "invalid");
}

}  // namespace
}  // namespace prefrep
