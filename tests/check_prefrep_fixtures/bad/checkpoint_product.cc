// Fixture for tools/check_prefrep.py --selftest (never compiled): the
// AllOptimalRepairs cross-block-product bug class — per-block repair
// lists are budget-charged when produced, but the product loop below
// multiplies their sizes with no governor checkpoint, so the
// materialized cross product can exceed any admitted budget.
// EXPECT-FINDING: prefrep-checkpoint

#include <vector>

namespace prefrep {

struct Repair {};
struct Ctx {};
std::vector<Repair> AllOptimalRepairs(const Ctx& ctx, int block);
Repair Merge(const Repair& a, const Repair& b);

std::vector<Repair> CrossProduct(const Ctx& ctx, int blocks) {
  std::vector<Repair> out(1);
  for (int b = 0; b < blocks; ++b) {
    std::vector<Repair> optimal = AllOptimalRepairs(ctx, b);
    std::vector<Repair> next;
    for (const Repair& prefix : out) {
      for (const Repair& choice : optimal) {
        next.push_back(Merge(prefix, choice));  // no Checkpoint() — bug
      }
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace prefrep
