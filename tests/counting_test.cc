// Tests for counting / uniqueness of preferred repairs (the concluding-
// remarks extension) and for the hard choice-gadget workload generator.

#include <gtest/gtest.h>

#include "gen/hard_workloads.h"
#include "gen/random_instance.h"
#include "repair/counting.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::ProblemSpec;

TEST(HardWorkloadTest, GadgetsAreIndependentAcrossAllSixSchemas) {
  for (int index = 1; index <= 6; ++index) {
    PreferredRepairProblem p =
        MakeHardChoiceWorkload(index, 6, HardJ::kAllPreferred);
    ConflictGraph cg(*p.instance);
    // Exactly one conflict per gadget, hence 2^6 repairs.
    EXPECT_EQ(cg.num_edges(), 6u) << "S" << index;
    EXPECT_EQ(CountRepairs(cg), 64u) << "S" << index;
    EXPECT_TRUE(p.priority->Validate(PriorityMode::kConflictOnly).ok())
        << "S" << index;
    EXPECT_TRUE(IsRepair(cg, p.j)) << "S" << index;
  }
}

TEST(HardWorkloadTest, PreferredJIsOptimalDispreferredIsNot) {
  for (int index = 1; index <= 6; ++index) {
    PreferredRepairProblem hi =
        MakeHardChoiceWorkload(index, 5, HardJ::kAllPreferred);
    ConflictGraph cg_hi(*hi.instance);
    EXPECT_TRUE(
        ExhaustiveCheckGlobalOptimal(cg_hi, *hi.priority, hi.j).optimal)
        << "S" << index;

    PreferredRepairProblem lo =
        MakeHardChoiceWorkload(index, 5, HardJ::kAllDispreferred);
    ConflictGraph cg_lo(*lo.instance);
    EXPECT_FALSE(
        ExhaustiveCheckGlobalOptimal(cg_lo, *lo.priority, lo.j).optimal)
        << "S" << index;
  }
}

TEST(CountingTest, GadgetWorkloadHasUniqueOptimal) {
  PreferredRepairProblem p = MakeHardChoiceWorkload(4, 4, HardJ::kAllPreferred);
  ConflictGraph cg(*p.instance);
  EXPECT_EQ(CountOptimalRepairs(cg, *p.priority, RepairSemantics::kGlobal),
            1u);
  auto unique = UniqueGloballyOptimalRepair(cg, *p.priority);
  ASSERT_TRUE(unique.has_value());
  EXPECT_EQ(*unique, p.j);
  // The priority orders every conflicting pair here, so the polynomial
  // sufficient condition applies and agrees.
  EXPECT_TRUE(IsPriorityTotalOnConflicts(cg, *p.priority));
  auto fast = UniqueOptimalIfTotalPriority(cg, *p.priority);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, *unique);
}

TEST(CountingTest, IncomparableChoicesGiveMultipleOptima) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: k, 2"};
  // No priority: both singleton repairs are optimal.
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  EXPECT_EQ(CountOptimalRepairs(cg, *p.priority, RepairSemantics::kGlobal),
            2u);
  EXPECT_FALSE(UniqueGloballyOptimalRepair(cg, *p.priority).has_value());
  EXPECT_FALSE(IsPriorityTotalOnConflicts(cg, *p.priority));
  EXPECT_FALSE(UniqueOptimalIfTotalPriority(cg, *p.priority).has_value());
}

TEST(CountingTest, TotalityIsSufficientButNotNecessary) {
  // Two conflicting facts with a priority, plus an unconflicted third:
  // the optimal repair is unique; now add an unordered conflict pair
  // whose members both lose to a third fact — still unique, though the
  // priority is not total.
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"top: k, 1", "l1: k, 2", "l2: k, 3"};
  spec.priorities = {"top > l1", "top > l2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  EXPECT_FALSE(IsPriorityTotalOnConflicts(cg, *p.priority));  // l1 vs l2
  EXPECT_FALSE(UniqueOptimalIfTotalPriority(cg, *p.priority).has_value());
  auto unique = UniqueGloballyOptimalRepair(cg, *p.priority);
  ASSERT_TRUE(unique.has_value());
  EXPECT_EQ(*unique, testing_util::Sub(*p.instance, {"top"}));
}

TEST(CountingTest, CountsAgreeWithSemanticsInclusion) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Schema schema = Schema::SingleRelation(
        "R", 3, {FD(AttrSet{1}, AttrSet{2})});
    RandomProblemOptions opts;
    opts.facts_per_relation = 10;
    opts.domain_size = 3;
    opts.seed = seed * 53;
    PreferredRepairProblem p = GenerateRandomProblem(schema, opts);
    ConflictGraph cg(*p.instance);
    uint64_t completion =
        CountOptimalRepairs(cg, *p.priority, RepairSemantics::kCompletion);
    uint64_t global =
        CountOptimalRepairs(cg, *p.priority, RepairSemantics::kGlobal);
    uint64_t pareto =
        CountOptimalRepairs(cg, *p.priority, RepairSemantics::kPareto);
    EXPECT_GE(global, uint64_t{1});
    EXPECT_LE(completion, global);
    EXPECT_LE(global, pareto);
  }
}

}  // namespace
}  // namespace prefrep
