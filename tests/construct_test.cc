// Tests for the repair-construction corollary: a completion-optimal —
// hence globally-optimal — repair is constructible in polynomial time
// for every schema, including all six hard schemas of Example 3.4.

#include <gtest/gtest.h>

#include "gen/hard_workloads.h"
#include "gen/random_instance.h"
#include "reductions/hard_schemas.h"
#include "repair/completion.h"
#include "repair/construct.h"
#include "repair/exhaustive.h"
#include "repair/pareto.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

TEST(ConstructTest, OutputIsOptimalOnHardSchemasToo) {
  // Constructing an optimal repair is polynomial even where *checking*
  // is coNP-complete — the asymmetry this module packages.
  for (int index = 1; index <= 6; ++index) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      RandomProblemOptions opts;
      opts.facts_per_relation = 12;
      opts.domain_size = 3;
      opts.priority_density = 0.5;
      opts.seed = seed * 131 + static_cast<uint64_t>(index);
      PreferredRepairProblem p =
          GenerateRandomProblem(HardSchema(index), opts);
      ConflictGraph cg(*p.instance);
      DynamicBitset repair = ConstructGloballyOptimalRepair(cg, *p.priority);
      EXPECT_TRUE(IsRepair(cg, repair)) << "S" << index;
      EXPECT_TRUE(
          CheckCompletionOptimal(cg, *p.priority, repair).optimal)
          << "S" << index;
      EXPECT_TRUE(
          ExhaustiveCheckGlobalOptimal(cg, *p.priority, repair).optimal)
          << "S" << index;
      EXPECT_TRUE(CheckParetoOptimal(cg, *p.priority, repair).optimal)
          << "S" << index;
    }
  }
}

TEST(ConstructTest, TieBreaksAreAllOptimal) {
  RandomProblemOptions opts;
  opts.facts_per_relation = 14;
  opts.domain_size = 3;
  opts.priority_density = 0.4;
  opts.seed = 99;
  PreferredRepairProblem p =
      GenerateRandomProblem(HardSchemaS4(), opts);
  ConflictGraph cg(*p.instance);
  for (TieBreak tb :
       {TieBreak::kFirstFact, TieBreak::kRandom, TieBreak::kMostDominating}) {
    ConstructOptions options;
    options.tie_break = tb;
    options.seed = 5;
    DynamicBitset repair =
        ConstructGloballyOptimalRepair(cg, *p.priority, options);
    EXPECT_TRUE(
        ExhaustiveCheckGlobalOptimal(cg, *p.priority, repair).optimal);
  }
}

TEST(ConstructTest, FirstFactTieBreakIsDeterministic) {
  PreferredRepairProblem p =
      MakeHardChoiceWorkload(1, 6, HardJ::kAllDispreferred);
  ConflictGraph cg(*p.instance);
  DynamicBitset a = ConstructGloballyOptimalRepair(cg, *p.priority);
  DynamicBitset b = ConstructGloballyOptimalRepair(cg, *p.priority);
  EXPECT_EQ(a, b);
  // On the gadget workload the constructed repair is the all-preferred
  // one — every "hi" fact is undominated.
  EXPECT_EQ(a, MakeHardChoiceWorkload(1, 6, HardJ::kAllPreferred).j);
}

TEST(ConstructTest, SamplingFindsMultipleOptimaWhenTheyExist) {
  // Two incomparable facts per group: several completion-optimal
  // repairs; sampling should find more than one.
  testing_util::ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a1: k, 1", "a2: k, 2", "b1: m, 1", "b2: m, 2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  size_t distinct = 0;
  SampleOptimalRepairs(cg, *p.priority, 64, [&](const DynamicBitset& r) {
    EXPECT_TRUE(
        ExhaustiveCheckGlobalOptimal(cg, *p.priority, r).optimal);
    ++distinct;
    return true;
  });
  EXPECT_EQ(distinct, 4u);  // 2 × 2 incomparable choices
}

TEST(ConstructTest, SamplingStopsOnFalse) {
  testing_util::ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a1: k, 1", "a2: k, 2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  size_t seen = 0;
  SampleOptimalRepairs(cg, *p.priority, 64, [&](const DynamicBitset&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1u);
}

}  // namespace
}  // namespace prefrep
