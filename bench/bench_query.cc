// B10 — consistent query answering under preferred repairs (the
// library's extension toward the paper's stated open problem, §8):
// evaluation cost of CQs, and the cost of certain-answer computation as
// the repair space grows — exponential under every semantics, which is
// why the paper calls the complexity classification an open problem.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gen/hard_workloads.h"
#include "query/consistent_answers.h"

namespace prefrep {
namespace {

void BM_Query_EvaluateJoin(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kRandomRepair);
  auto q = ConjunctiveQuery::Parse("Q(x, z) :- R(x, y, z), R(z, w, u)");
  PREFREP_CHECK(q.ok());
  DynamicBitset all = problem.instance->AllFacts();
  for (auto _ : state) {
    auto answers = q->Evaluate(*problem.instance, all);
    benchmark::DoNotOptimize(answers.size());
  }
}
BENCHMARK(BM_Query_EvaluateJoin)->RangeMultiplier(4)->Range(16, 1024);

void BM_Query_ConsistentAnswers(benchmark::State& state) {
  // Choice gadgets: 2^g repairs; answering over all of them is the
  // exponential wall.
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      4, static_cast<size_t>(state.range(0)), HardJ::kAllPreferred);
  ConflictGraph cg(*problem.instance);
  auto q = ConjunctiveQuery::Parse("Q(x) :- R4(x, y, z)");
  PREFREP_CHECK(q.ok());
  for (auto _ : state) {
    auto answers = ConsistentAnswers(cg, *problem.priority, *q,
                                     AnswerSemantics::kAllRepairs);
    benchmark::DoNotOptimize(answers.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Query_ConsistentAnswers)->DenseRange(4, 12, 2);

void BM_Query_PreferredAnswersPruneFaster(benchmark::State& state) {
  // Under the global semantics, the gadget priorities collapse the
  // optimal-repair set to a single repair — but finding that out still
  // costs an enumeration: the measurement shows semantics do not
  // rescue the exponential by themselves.
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      4, static_cast<size_t>(state.range(0)), HardJ::kAllPreferred);
  ConflictGraph cg(*problem.instance);
  auto q = ConjunctiveQuery::Parse("Q(x) :- R4(x, y, z)");
  PREFREP_CHECK(q.ok());
  for (auto _ : state) {
    auto answers = ConsistentAnswers(cg, *problem.priority, *q,
                                     AnswerSemantics::kGlobal);
    benchmark::DoNotOptimize(answers.size());
  }
}
BENCHMARK(BM_Query_PreferredAnswersPruneFaster)->DenseRange(4, 10, 2);

void BM_Query_CertainlyTrueEarlyExit(benchmark::State& state) {
  // Boolean certain answering can exit at the first repair violating Q.
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      4, static_cast<size_t>(state.range(0)), HardJ::kAllPreferred);
  ConflictGraph cg(*problem.instance);
  // "some fact has the lo-marker in attribute 2": false in the all-hi
  // repair, so the scan can stop as soon as it sees one.
  auto q = ConjunctiveQuery::Parse("Q() :- R4(x, \"m0_lo\", z)");
  PREFREP_CHECK(q.ok());
  for (auto _ : state) {
    bool certain = CertainlyTrue(cg, *problem.priority, *q,
                                 AnswerSemantics::kAllRepairs);
    benchmark::DoNotOptimize(certain);
  }
}
BENCHMARK(BM_Query_CertainlyTrueEarlyExit)->DenseRange(4, 12, 2);

}  // namespace
}  // namespace prefrep

BENCHMARK_MAIN();
