// Tests for the FD-theory substrate: attribute sets, FD parsing, closure,
// implication, equivalence, keys, minimal covers and determiners.
// Includes the worked closures of Example 2.2.

#include <gtest/gtest.h>

#include "fd/determiners.h"
#include "fd/fd_set.h"

namespace prefrep {
namespace {

TEST(AttrSetTest, BasicSetAlgebra) {
  AttrSet a{1, 3};
  AttrSet b{3, 4};
  EXPECT_EQ(a.size(), 2);
  EXPECT_TRUE(a.Contains(1));
  EXPECT_FALSE(a.Contains(2));
  EXPECT_EQ((a | b), (AttrSet{1, 3, 4}));
  EXPECT_EQ((a & b), (AttrSet{3}));
  EXPECT_EQ((a - b), (AttrSet{1}));
  EXPECT_TRUE((a & b).IsSubsetOf(a));
  EXPECT_TRUE(AttrSet().IsSubsetOf(a));
  EXPECT_TRUE(AttrSet{1}.IsStrictSubsetOf(a));
  EXPECT_FALSE(a.IsStrictSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(AttrSet{2}));
}

TEST(AttrSetTest, FullAndBoundaries) {
  EXPECT_EQ(AttrSet::Full(0), AttrSet());
  EXPECT_EQ(AttrSet::Full(3), (AttrSet{1, 2, 3}));
  AttrSet full64 = AttrSet::Full(64);
  EXPECT_EQ(full64.size(), 64);
  EXPECT_TRUE(full64.Contains(64));
  EXPECT_TRUE(full64.Contains(1));
}

TEST(AttrSetTest, IterationOrderAndToString) {
  AttrSet a{5, 1, 3};
  EXPECT_EQ(a.ToVector(), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(a.ToString(), "{1, 3, 5}");
  EXPECT_EQ(AttrSet().ToString(), "{}");
}

TEST(FdTest, ParseVariants) {
  auto fd1 = FD::Parse("1 -> 2");
  ASSERT_TRUE(fd1.ok());
  EXPECT_EQ(fd1->lhs, AttrSet{1});
  EXPECT_EQ(fd1->rhs, AttrSet{2});

  auto fd2 = FD::Parse("{1, 2} -> {3}");
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(fd2->lhs, (AttrSet{1, 2}));
  EXPECT_EQ(fd2->rhs, AttrSet{3});

  auto fd3 = FD::Parse("{} -> 1");
  ASSERT_TRUE(fd3.ok());
  EXPECT_TRUE(fd3->lhs.empty());
  EXPECT_TRUE(fd3->IsConstantAttribute());

  EXPECT_FALSE(FD::Parse("1, 2").ok());
  EXPECT_FALSE(FD::Parse("{1 -> 2").ok());
  EXPECT_FALSE(FD::Parse("a -> b").ok());
  EXPECT_FALSE(FD::Parse("0 -> 1").ok());
  EXPECT_FALSE(FD::Parse("65 -> 1").ok());
}

TEST(FdTest, TrivialAndKeyPredicates) {
  EXPECT_TRUE(FD(AttrSet{1, 2}, AttrSet{1}).IsTrivial());
  EXPECT_FALSE(FD(AttrSet{1}, AttrSet{2}).IsTrivial());
  EXPECT_TRUE(FD(AttrSet{1}, AttrSet{1, 2, 3}).IsKeyConstraint(3));
  EXPECT_FALSE(FD(AttrSet{1}, AttrSet{1, 2}).IsKeyConstraint(3));
}

// Example 2.2: ∆ = {R:1→2, R:2→3} over a ternary R has, in ∆⁺, the fds
// 1→3, {1,2}→3 and 3→3; ⟦R.{1}⟧ = {1,2,3}.
TEST(FdSetTest, ClosureAndImplicationExample) {
  FDSet fds(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  EXPECT_EQ(fds.Closure(AttrSet{1}), (AttrSet{1, 2, 3}));
  EXPECT_EQ(fds.Closure(AttrSet{2}), (AttrSet{2, 3}));
  EXPECT_EQ(fds.Closure(AttrSet{3}), (AttrSet{3}));
  EXPECT_TRUE(fds.Implies(FD(AttrSet{1}, AttrSet{3})));
  EXPECT_TRUE(fds.Implies(FD(AttrSet{1, 2}, AttrSet{3})));
  EXPECT_TRUE(fds.Implies(FD(AttrSet{3}, AttrSet{3})));
  EXPECT_FALSE(fds.Implies(FD(AttrSet{3}, AttrSet{1})));
  EXPECT_FALSE(fds.Implies(FD(AttrSet{2}, AttrSet{1})));
}

// Example 2.2 closures for the running-example schema: with
// ∆|BookLoc = {1→2}, ⟦BookLoc.{1}⟧ = {1,2} and ⟦BookLoc.{1,3}⟧ = {1,2,3}.
TEST(FdSetTest, RunningExampleClosures) {
  FDSet book_loc(3, {FD(AttrSet{1}, AttrSet{2})});
  EXPECT_EQ(book_loc.Closure(AttrSet{1}), (AttrSet{1, 2}));
  EXPECT_EQ(book_loc.Closure(AttrSet{1, 3}), (AttrSet{1, 2, 3}));
  // BookLoc: {1,3} → {1,2} is in ∆⁺ but not in ∆.
  EXPECT_TRUE(book_loc.Implies(FD(AttrSet{1, 3}, AttrSet{1, 2})));
}

TEST(FdSetTest, EmptyLhsClosure) {
  FDSet fds(3, {FD(AttrSet(), AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  EXPECT_EQ(fds.Closure(AttrSet()), (AttrSet{2, 3}));
  EXPECT_TRUE(fds.Implies(FD(AttrSet{1}, AttrSet{3})));
}

TEST(FdSetTest, Equivalence) {
  FDSet a(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  FDSet b(3, {FD(AttrSet{1}, AttrSet{2, 3}), FD(AttrSet{2}, AttrSet{3})});
  FDSet c(3, {FD(AttrSet{1}, AttrSet{2, 3})});
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_TRUE(b.EquivalentTo(a));
  EXPECT_FALSE(a.EquivalentTo(c));  // c does not imply 2→3
  EXPECT_TRUE(c.ImpliesAll(FDSet(3)));
  EXPECT_TRUE(a.EquivalentTo(a));
}

TEST(FdSetTest, KeysBasic) {
  FDSet fds(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  EXPECT_TRUE(fds.IsKey(AttrSet{1}));
  EXPECT_TRUE(fds.IsKey(AttrSet{1, 3}));
  EXPECT_FALSE(fds.IsKey(AttrSet{2}));
  EXPECT_TRUE(fds.IsMinimalKey(AttrSet{1}));
  EXPECT_FALSE(fds.IsMinimalKey(AttrSet{1, 3}));
  EXPECT_EQ(fds.MinimalKeys(), std::vector<AttrSet>{AttrSet{1}});
}

TEST(FdSetTest, MinimalKeysMultiple) {
  // 1→2, 2→1 over a binary relation: minimal keys {1} and {2}.
  FDSet fds(2, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{1})});
  EXPECT_EQ(fds.MinimalKeys(), (std::vector<AttrSet>{AttrSet{1}, AttrSet{2}}));
}

TEST(FdSetTest, MinimalKeysS1) {
  // S1's three fds make every pair of attributes a minimal key.
  FDSet fds(3, {FD(AttrSet{1, 2}, AttrSet{3}), FD(AttrSet{1, 3}, AttrSet{2}),
                FD(AttrSet{2, 3}, AttrSet{1})});
  std::vector<AttrSet> keys = fds.MinimalKeys();
  EXPECT_EQ(keys.size(), 3u);
  EXPECT_NE(std::find(keys.begin(), keys.end(), (AttrSet{1, 2})), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), (AttrSet{1, 3})), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), (AttrSet{2, 3})), keys.end());
}

TEST(FdSetTest, MinimalKeysEmptyFdSet) {
  FDSet fds(3);
  EXPECT_EQ(fds.MinimalKeys(), std::vector<AttrSet>{(AttrSet{1, 2, 3})});
}

TEST(FdSetTest, SaturatePerLhs) {
  FDSet fds(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3}),
                FD(AttrSet{1}, AttrSet{3})});
  FDSet saturated = fds.SaturatePerLhs();
  EXPECT_EQ(saturated.size(), 2u);  // LHSs {1} and {2}
  EXPECT_TRUE(saturated.EquivalentTo(fds));
  for (const FD& fd : saturated.fds()) {
    EXPECT_EQ(fd.rhs, fds.Closure(fd.lhs));
  }
}

TEST(FdSetTest, MinimalCover) {
  // Redundant set: 1→2, 2→3, 1→3 (implied), {1,3}→2 (extraneous attr 3).
  FDSet fds(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3}),
                FD(AttrSet{1}, AttrSet{3}), FD(AttrSet{1, 3}, AttrSet{2})});
  FDSet cover = fds.MinimalCover();
  EXPECT_TRUE(cover.EquivalentTo(fds));
  EXPECT_LE(cover.size(), 2u);
  for (const FD& fd : cover.fds()) {
    EXPECT_EQ(fd.rhs.size(), 1);
    EXPECT_FALSE(fd.IsTrivial());
  }
}

TEST(FdSetTest, MinimalCoverOfEquivalentSetsMatchesSemantics) {
  FDSet a(4, {FD(AttrSet{1}, AttrSet{2, 3, 4})});
  FDSet b(4, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{1}, AttrSet{3}),
              FD(AttrSet{1}, AttrSet{4})});
  EXPECT_TRUE(a.MinimalCover().EquivalentTo(b.MinimalCover()));
}

TEST(FdSetTest, KeySetEquivalence) {
  // {1→all, 2→all} is a key set.
  FDSet keys(2, {FD(AttrSet{1}, AttrSet{1, 2}), FD(AttrSet{2}, AttrSet{1, 2})});
  EXPECT_TRUE(keys.EquivalentToSomeKeySet());
  EXPECT_EQ(keys.AsKeySet(), (std::vector<AttrSet>{AttrSet{1}, AttrSet{2}}));

  // 1→2, 2→1 over binary: both LHSs are keys, so a key set.
  FDSet twokeys(2, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{1})});
  EXPECT_TRUE(twokeys.EquivalentToSomeKeySet());

  // 1→2, 2→3 over ternary: LHS {2} is not a key.
  FDSet chain(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  EXPECT_FALSE(chain.EquivalentToSomeKeySet());

  // Example 3.3's T: {1→{2,3,4}, {2,3}→1} is equivalent to two keys.
  FDSet t(4, {FD(AttrSet{1}, AttrSet{2, 3, 4}), FD(AttrSet{2, 3}, AttrSet{1})});
  EXPECT_TRUE(t.EquivalentToSomeKeySet());
  EXPECT_EQ(t.AsKeySet(), (std::vector<AttrSet>{AttrSet{1}, (AttrSet{2, 3})}));
}

TEST(FdSetTest, AsKeySetDropsContainedKeys) {
  // {1}→all and {1,2}→all: the latter is implied.
  FDSet fds(3, {FD(AttrSet{1}, AttrSet{1, 2, 3}),
                FD(AttrSet{1, 2}, AttrSet{1, 2, 3})});
  EXPECT_TRUE(fds.EquivalentToSomeKeySet());
  EXPECT_EQ(fds.AsKeySet(), std::vector<AttrSet>{AttrSet{1}});
}

// --- Determiners (§5.2) ---------------------------------------------------

TEST(DeterminerTest, NontrivialAndMinimal) {
  FDSet fds(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  EXPECT_TRUE(IsNontrivialDeterminer(fds, AttrSet{1}));
  EXPECT_TRUE(IsNontrivialDeterminer(fds, AttrSet{2}));
  EXPECT_FALSE(IsNontrivialDeterminer(fds, AttrSet{3}));
  EXPECT_TRUE(IsNontrivialDeterminer(fds, AttrSet{1, 3}));

  EXPECT_TRUE(IsMinimalDeterminer(fds, AttrSet{1}));
  EXPECT_TRUE(IsMinimalDeterminer(fds, AttrSet{2}));
  EXPECT_FALSE(IsMinimalDeterminer(fds, AttrSet{1, 3}));
  EXPECT_EQ(MinimalDeterminers(fds),
            (std::vector<AttrSet>{AttrSet{1}, AttrSet{2}}));
}

TEST(DeterminerTest, NonRedundant) {
  FDSet fds(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  EXPECT_TRUE(IsNonRedundantDeterminer(fds, AttrSet{1}));
  EXPECT_TRUE(IsNonRedundantDeterminer(fds, AttrSet{2}));
  // {1,2} adds only {3} which {2} alone already determines.
  EXPECT_FALSE(IsNonRedundantDeterminer(fds, (AttrSet{1, 2})));
  // {1,3} adds only {2} which {1} alone already determines.
  EXPECT_FALSE(IsNonRedundantDeterminer(fds, (AttrSet{1, 3})));
}

TEST(DeterminerTest, NonRedundantNeedNotBeLhs) {
  // ∆ = {2→5, {4,5}→6} over arity 6: {2,4} is a non-redundant determiner
  // that is not a syntactic LHS (closure adds {5,6}; {2} alone only adds
  // {5}, {4} alone nothing).
  FDSet fds(6, {FD(AttrSet{2}, AttrSet{5}), FD(AttrSet{4, 5}, AttrSet{6})});
  EXPECT_TRUE(IsNonRedundantDeterminer(fds, (AttrSet{2, 4})));
  EXPECT_FALSE(IsMinimalDeterminer(fds, (AttrSet{2, 4})));
}

TEST(DeterminerTest, EmptySetDeterminer) {
  FDSet fds(2, {FD(AttrSet(), AttrSet{1})});
  EXPECT_TRUE(IsNontrivialDeterminer(fds, AttrSet()));
  EXPECT_TRUE(IsMinimalDeterminer(fds, AttrSet()));
  EXPECT_TRUE(IsNonRedundantDeterminer(fds, AttrSet()));
  // Any superset of ∅ gains nothing beyond what ∅ already determines.
  EXPECT_FALSE(IsNonRedundantDeterminer(fds, AttrSet{2}));
}

TEST(DeterminerTest, MinimalNonKeyDeterminer) {
  // S4 = {1→2, 2→3}: minimal determiners {1} (a key) and {2} (not).
  FDSet s4(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  auto a = MinimalNonKeyDeterminer(s4);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, AttrSet{2});

  // A pure key set has no non-key minimal determiner.
  FDSet keys(2, {FD(AttrSet{1}, AttrSet{1, 2}), FD(AttrSet{2}, AttrSet{1, 2})});
  EXPECT_FALSE(MinimalNonKeyDeterminer(keys).has_value());
}

TEST(DeterminerTest, SecondDeterminerExcluding) {
  FDSet s4(3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  auto b = MinimalNonRedundantDeterminerExcluding(s4, AttrSet{2});
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, AttrSet{1});
}

}  // namespace
}  // namespace prefrep
