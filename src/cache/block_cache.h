// Copyright (c) prefrep contributors.
// BlockSolveCache — a sharded, thread-safe, capacity-bounded memo table
// for per-block solving results, keyed by canonical block fingerprints
// (cache/block_fingerprint.h).
//
// Sharded workloads repeat the same hard gadget hundreds of times
// (MakeHardShardedWorkload; the paper's reductions stamp out copies of
// S1..S6 the same way), yet every block was solved from scratch.  The
// cache closes that gap: each isomorphism class of blocks pays for one
// exhaustive solve, every later encounter replays the stored result
// through the canonical relabeling.
//
// Stored payloads are in canonical (block-local) coordinates and carry
// the node count the original solve spent, so a hit can be committed to
// the caller's governor as a zero-node replay (CommitReplayNodes) and
// the node trajectory stays exactly on the cache-off path.  Only
// complete, exact results are ever stored — never kUnknown verdicts,
// never results produced by an exhausted governor — which is what makes
// the issue's "at least as generous a budget" serve rule collapse to
// the node-replay check the callers perform (see docs/caching.md,
// "Governor interaction").
//
// Thread safety: 16 independently-locked shards; counters are atomics.
// Worker timing can change which thread pays a miss (two workers may
// both miss the same fresh fingerprint), so hit/miss counts are
// timing-dependent — but every stored value for a key is the same
// deterministic result, so *values* served are not.
//
// The cache itself is policy-free: callers (repair/block_solver.cc,
// repair/construct.cc) decide when serving is governor-correct and call
// NoteHit/NoteMiss accordingly, so the counters reflect served results,
// not raw probes.

#ifndef PREFREP_CACHE_BLOCK_CACHE_H_
#define PREFREP_CACHE_BLOCK_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/dynamic_bitset.h"
#include "base/governor.h"
#include "base/macros.h"
#include "base/thread_annotations.h"
#include "cache/block_fingerprint.h"

namespace prefrep {

/// Cache traffic counters (monotonic, process lifetime of the cache).
struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  /// Approximate heap footprint of the stored payloads.
  size_t bytes = 0;
};

/// Memo table for per-block solving results.  See the file comment.
class BlockSolveCache {
 public:
  /// Default capacity in entries (not bytes): enough for every distinct
  /// gadget of a large reduction while bounding worst-case memory.
  static constexpr size_t kDefaultCapacity = 1 << 16;

  static constexpr size_t kNumShards = 16;

  explicit BlockSolveCache(size_t capacity = kDefaultCapacity);

  PREFREP_DISALLOW_COPY(BlockSolveCache);

  /// What one cached solve produced.  Exactly one payload member is
  /// meaningful per entry kind; all bitsets are block-local (universe =
  /// block size, canonical indices).
  struct Entry {
    /// True verdict payload: `optimal`, plus the improving block-repair
    /// when not optimal.
    bool optimal = false;
    DynamicBitset witness_local;
    /// Count payload.
    uint64_t count = 0;
    /// Optimal-set payload (canonical enumeration order).
    std::vector<DynamicBitset> repairs_local;
    /// Construction payload.
    DynamicBitset repair_local;
    /// Checkpoints the original solve spent, and whether that number is
    /// meaningful: a solve under an unarmed governor counts nothing, so
    /// its entry says nodes_valid = false and node-replaying callers
    /// must treat it as a miss (and overwrite it with a counted solve).
    uint64_t nodes = 0;
    bool nodes_valid = false;
  };

  /// Looks up `key`; refreshes LRU recency on hit.  Does NOT touch the
  /// hit/miss counters — the caller decides whether the entry may be
  /// served (governor rules) and reports via NoteHit/NoteMiss.
  std::optional<Entry> Lookup(const BlockFingerprint& key);

  /// Inserts `entry` under `key`, evicting the least-recently-used
  /// entry of the shard when full.  An existing entry is replaced only
  /// when the incoming one upgrades nodes_valid from false to true
  /// (identical results, better accounting); otherwise the first write
  /// wins, keeping racing stores idempotent.
  void Store(const BlockFingerprint& key, Entry entry);

  /// Like Store(key, entry), and additionally records `key` as derived
  /// from the base (pre-salt) block fingerprint `base`, so the serve
  /// layer can drop a retired block's entries with EraseDerivedFrom.
  /// At most kMaxDerivedPerBase keys are recorded per base (verdict
  /// keys are salted by the candidate J, so a base can derive
  /// unboundedly many); overflowing keys simply stay until evicted —
  /// fingerprint keying already guarantees an edited block can never
  /// *hit* a stale entry, so targeted erasure is purely a memory/
  /// hygiene optimization and may be incomplete.
  void Store(const BlockFingerprint& base, const BlockFingerprint& key,
             Entry entry);

  /// Removes `key` if present; true when an entry was dropped.
  bool Erase(const BlockFingerprint& key);

  /// Drops every entry recorded as derived from `base`, plus the
  /// derivation record; returns how many entries were removed.  Entries
  /// already evicted are skipped silently.
  size_t EraseDerivedFrom(const BlockFingerprint& base);

  static constexpr size_t kMaxDerivedPerBase = 64;

  void NoteHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void NoteMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  BlockCacheStats stats() const;

  size_t capacity() const { return capacity_; }

  /// Drops every entry (counters are kept — they are lifetime totals).
  void Clear();

 private:
  struct Shard {
    Mutex mu;
    // Front = most recently used.
    std::list<std::pair<BlockFingerprint, Entry>> lru PREFREP_GUARDED_BY(mu);
    std::unordered_map<BlockFingerprint,
                       std::list<std::pair<BlockFingerprint, Entry>>::iterator,
                       BlockFingerprintHash>
        index PREFREP_GUARDED_BY(mu);
  };

  Shard& shard_of(const BlockFingerprint& key) {
    return shards_[key.hi >> 60];  // top 4 bits pick one of 16 shards
  }

  static size_t EntryBytes(const Entry& entry);

  const size_t capacity_;
  const size_t shard_capacity_;
  Shard shards_[kNumShards];
  // base fingerprint → derived keys stored under it.  Global (not
  // per-shard): DeriveOpKey rehashes, so one base's keys land in
  // different shards.  Guarded by its own mutex; always acquired
  // without any shard lock held (and vice versa), so no lock-order
  // cycle is possible.
  Mutex derived_mu_;
  std::unordered_map<BlockFingerprint, std::vector<BlockFingerprint>,
                     BlockFingerprintHash>
      derived_ PREFREP_GUARDED_BY(derived_mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stores_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> entries_{0};
  std::atomic<size_t> bytes_{0};
};

/// The governor-correct serve rule shared by every cache call site
/// (repair/block_solver.cc, repair/construct.cc): a hit may be served
/// iff a fresh solve would also have completed, so serving changes
/// nothing but wall-clock time.  Concretely: always serve to an
/// unlimited governor; never to an exhausted one; serve regardless of
/// node validity to a governor armed only for cancellation (its node
/// counter is never read back); otherwise require a counted entry
/// (nodes_valid) whose replay stays strictly below the node firing
/// index — if the fresh solve would have fired mid-block, refuse the
/// hit and let it fire.  Block admission (WouldAdmitBlock) is the
/// caller's job: only solver paths have refusal accounting to preserve.
bool MayServeCachedEntry(const ResourceGovernor& governor,
                         const BlockSolveCache::Entry& entry);

/// Commits a served entry's node cost to the caller's governor
/// (CommitReplayNodes), keeping nodes_spent() exactly on the cache-off
/// trajectory.  MayServeCachedEntry must have approved the entry.
void ReplayServedNodes(ResourceGovernor& governor,
                       const BlockSolveCache::Entry& entry);

}  // namespace prefrep

#endif  // PREFREP_CACHE_BLOCK_CACHE_H_
