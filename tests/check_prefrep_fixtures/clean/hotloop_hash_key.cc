// Fixture for tools/check_prefrep.py --selftest (never compiled): the
// sanctioned conflict-join shapes — buckets keyed by the seeded 64-bit
// projection hash with rows verified against a representative (no key
// vectors materialized), and a deliberately preserved vector-keyed
// baseline justified with a NOLINT(prefrep-hotloop) escape, mirroring
// the reference join kept in conflicts.cc.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace prefrep {

uint64_t ProjectHashOf(const uint32_t* row);
bool RowsEqual(const uint32_t* a, const uint32_t* b);

int CountLhsGroups(const std::vector<const uint32_t*>& rows) {
  std::unordered_map<uint64_t, std::vector<const uint32_t*>> reps;
  int groups = 0;
  for (const uint32_t* row : rows) {
    std::vector<const uint32_t*>& bucket = reps[ProjectHashOf(row)];
    bool found = false;
    for (const uint32_t* rep : bucket) {
      if (RowsEqual(row, rep)) {
        found = true;
        break;
      }
    }
    if (!found) {
      bucket.push_back(row);
      ++groups;
    }
  }
  return groups;
}

struct VecHash {
  uint64_t operator()(const std::vector<uint32_t>& v) const;
};

std::vector<uint32_t> ProjectKey(const uint32_t* row);

int CountLhsGroupsReference(const std::vector<const uint32_t*>& rows) {
  // Ablation baseline kept for differential testing.
  // NOLINT(prefrep-hotloop)
  std::unordered_map<std::vector<uint32_t>, int, VecHash> buckets;
  for (const uint32_t* row : rows) {
    ++buckets[ProjectKey(row)];
  }
  return static_cast<int>(buckets.size());
}

}  // namespace prefrep
