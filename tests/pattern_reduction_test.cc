// Tests for the pattern-reduction framework — the machine-searchable
// completion of the paper's omitted hardness cases (§5.2 Cases 2–7).
//
// The load-bearing facts verified here:
//   1. the search finds a (finitely verified) reduction for every hard
//      schema we try, with S1..S6 reducing from themselves;
//   2. it finds NONE for tractable schemas — as it must, since a valid
//      reduction from a coNP-complete problem into a PTIME one would
//      collapse the dichotomy;
//   3. applied reductions preserve legality and optimality verdicts
//      end to end, including composed with the Lemma 5.2 HC reduction.

#include <gtest/gtest.h>

#include "classify/ccp_dichotomy.h"
#include "classify/dichotomy.h"
#include "gen/random_instance.h"
#include "graph/undirected.h"
#include "reductions/hard_schemas.h"
#include "reductions/hc_to_s1.h"
#include "reductions/pattern_reduction.h"
#include "repair/exhaustive.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

TEST(PatternReductionTest, SixHardSchemasReduceFromThemselves) {
  for (int i = 1; i <= 6; ++i) {
    Schema target = HardSchema(i);
    auto self = PatternReduction::SearchFrom(i, target);
    ASSERT_TRUE(self.ok()) << "S" << i << ": " << self.status().ToString();
    EXPECT_EQ(self->Verify().ToString(), "OK");
    EXPECT_EQ(self->source_name(), "S" + std::to_string(i));
  }
}

TEST(PatternReductionTest, AssortedHardTargets) {
  std::vector<Schema> targets;
  // Three overlapping composite keys sharing attribute 4.
  targets.push_back(Schema::SingleRelation(
      "R", 4,
      {FD(AttrSet{1, 4}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{2, 4}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{3, 4}, AttrSet{1, 2, 3, 4})}));
  // The case-7 example from classify_test.
  targets.push_back(Schema::SingleRelation(
      "R", 5, {FD(AttrSet{1}, AttrSet{2, 3, 4}), FD(AttrSet{2}, AttrSet{3})}));
  // Two independent single-fd "wings" (hard in combination).
  targets.push_back(Schema::SingleRelation(
      "R", 4, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{3}, AttrSet{4})}));
  // A constant-attribute + chain mix (case 6 flavour).
  targets.push_back(Schema::SingleRelation(
      "R", 4, {FD(AttrSet(), AttrSet{1}), FD(AttrSet{2}, AttrSet{3})}));
  for (const Schema& target : targets) {
    ASSERT_EQ(ClassifyRelationFds(target.fds(0)).kind, TractableKind::kHard);
    auto reduction = PatternReduction::Search(target);
    ASSERT_TRUE(reduction.ok())
        << target.ToString() << reduction.status().ToString();
    EXPECT_EQ(reduction->Verify().ToString(), "OK") << reduction->ToString();
  }
}

TEST(PatternReductionTest, TractableTargetsAdmitNoReduction) {
  std::vector<Schema> targets;
  targets.push_back(Schema::SingleRelation(
      "R", 3, {FD(AttrSet{1}, AttrSet{2})}));  // single fd
  targets.push_back(Schema::SingleRelation(
      "R", 2, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{1})}));
  targets.push_back(Schema::SingleRelation(
      "R", 4, {FD(AttrSet{1}, AttrSet{2, 3, 4})}));  // single key
  targets.push_back(Schema::SingleRelation("R", 3, {}));  // no fds
  targets.push_back(Schema::SingleRelation(
      "T", 4, {FD(AttrSet{1}, AttrSet{2, 3, 4}),
               FD(AttrSet{2, 3}, AttrSet{1})}));  // Example 3.3's two keys
  for (const Schema& target : targets) {
    ASSERT_NE(ClassifyRelationFds(target.fds(0)).kind, TractableKind::kHard);
    auto reduction = PatternReduction::Search(target);
    EXPECT_FALSE(reduction.ok()) << target.ToString();
    EXPECT_EQ(reduction.status().code(), StatusCode::kNotFound);
  }
}

TEST(PatternReductionTest, RandomHardSchemasAllReducible) {
  // Sweep random FD sets; every hard one (arity ≤ 4 keeps the search
  // instant) must admit a reduction, every tractable one must not.
  Rng rng(777);
  int hard_seen = 0;
  int tractable_seen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    int arity = 3 + static_cast<int>(rng.NextBounded(2));
    FDSet fds(arity);
    size_t num_fds = 1 + rng.NextBounded(3);
    uint64_t full = (uint64_t{1} << arity) - 1;
    for (size_t i = 0; i < num_fds; ++i) {
      fds.Add(FD(AttrSet::FromMask(rng.Next() & full),
                 AttrSet::FromMask(rng.Next() & full)));
    }
    Schema target;
    RelId rel = target.MustAddRelation("R", arity);
    for (const FD& fd : fds.fds()) {
      target.MustAddFd(rel, fd);
    }
    bool hard = ClassifyRelationFds(fds).kind == TractableKind::kHard;
    auto reduction = PatternReduction::Search(target);
    EXPECT_EQ(reduction.ok(), hard) << fds.ToString();
    (hard ? hard_seen : tractable_seen)++;
  }
  EXPECT_GT(hard_seen, 10);
  EXPECT_GT(tractable_seen, 10);
}

TEST(PatternReductionTest, EndToEndEquivalenceOnRandomInputs) {
  Schema target = Schema::SingleRelation(
      "R", 4, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{3}, AttrSet{4})});
  auto reduction = PatternReduction::Search(target);
  ASSERT_TRUE(reduction.ok());
  Schema source = reduction->source_schema();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomProblemOptions opts;
    opts.facts_per_relation = 12;
    opts.domain_size = 2;
    opts.priority_density = 0.7;
    opts.j_policy = (seed % 2 == 0) ? JPolicy::kRandomRepair
                                    : JPolicy::kLowPriorityRepair;
    opts.seed = seed * 37;
    PreferredRepairProblem src = GenerateRandomProblem(source, opts);
    PreferredRepairProblem dst = reduction->Apply(src);
    EXPECT_TRUE(dst.priority->Validate(PriorityMode::kConflictOnly).ok());
    ConflictGraph src_cg(*src.instance);
    ConflictGraph dst_cg(*dst.instance);
    // Conflicts correspond 1:1 under the fact bijection.
    EXPECT_EQ(src_cg.num_edges(), dst_cg.num_edges());
    EXPECT_EQ(
        ExhaustiveCheckGlobalOptimal(src_cg, *src.priority, src.j).optimal,
        ExhaustiveCheckGlobalOptimal(dst_cg, *dst.priority, dst.j).optimal)
        << "seed " << seed;
  }
}

TEST(PatternReductionTest, HamiltonianCycleThroughPatternReduction) {
  // Compose: HC → S1 → (pattern search from S1) → a 4-attribute
  // three-overlapping-keys schema.  The final instance answers the
  // original graph question.
  Schema target = Schema::SingleRelation(
      "R", 4,
      {FD(AttrSet{1, 4}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{2, 4}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{3, 4}, AttrSet{1, 2, 3, 4})});
  auto reduction = PatternReduction::SearchFrom(1, target);
  ASSERT_TRUE(reduction.ok()) << reduction.status().ToString();
  for (bool hamiltonian : {true, false}) {
    UndirectedGraph g =
        hamiltonian ? UndirectedGraph::Cycle(3) : UndirectedGraph::Path(3);
    PreferredRepairProblem src = ReduceHamiltonianCycleToS1(g);
    PreferredRepairProblem dst = reduction->Apply(src);
    ConflictGraph cg(*dst.instance);
    EXPECT_TRUE(IsRepair(cg, dst.j));
    EXPECT_EQ(ExhaustiveCheckGlobalOptimal(cg, *dst.priority, dst.j).optimal,
              !hamiltonian);
  }
}

TEST(PatternReductionTest, TranslationShapes) {
  Schema target = Schema::SingleRelation(
      "R", 4, {FD(AttrSet(), AttrSet{1}), FD(AttrSet{2}, AttrSet{3})});
  auto reduction = PatternReduction::Search(target);
  ASSERT_TRUE(reduction.ok());
  std::vector<std::string> image =
      reduction->TranslateConstants({"a", "b", "c"});  // source arity 3
  ASSERT_EQ(image.size(), 4u);
  // Constant attributes render as the bullet; composed ones are
  // bracketed.
  for (size_t a = 0; a < image.size(); ++a) {
    if (reduction->coordinate_masks()[a] == 0) {
      EXPECT_EQ(image[a], "•");
    } else {
      EXPECT_EQ(image[a].front(), '<');
      EXPECT_EQ(image[a].back(), '>');
    }
  }
  EXPECT_NE(reduction->ToString().find("→"), std::string::npos);
}

// --- Cross-conflict mode (Theorem 7.1's hard side) ---------------------------

TEST(PatternReductionTest, CcpSourcesReduceFromThemselves) {
  for (const Schema& source :
       {CcpHardSchemaSb(), CcpHardSchemaSc(), CcpHardSchemaSd()}) {
    auto reduction = PatternReduction::SearchCcp(source);
    ASSERT_TRUE(reduction.ok()) << source.ToString();
    EXPECT_EQ(reduction->Verify().ToString(), "OK");
  }
}

TEST(PatternReductionTest, CcpSearchMatchesTheorem71OnRandomSchemas) {
  // The searchable reduction exists iff the schema is on the hard side
  // of Theorem 7.1 — an independent re-derivation of the ccp dichotomy
  // boundary.
  Rng rng(99);
  int hard_seen = 0;
  int tractable_seen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    int arity = 2 + static_cast<int>(rng.NextBounded(3));
    FDSet fds(arity);
    size_t num_fds = 1 + rng.NextBounded(3);
    uint64_t full = (uint64_t{1} << arity) - 1;
    for (size_t i = 0; i < num_fds; ++i) {
      fds.Add(FD(AttrSet::FromMask(rng.Next() & full),
                 AttrSet::FromMask(rng.Next() & full)));
    }
    Schema target;
    RelId rel = target.MustAddRelation("R", arity);
    for (const FD& fd : fds.fds()) {
      target.MustAddFd(rel, fd);
    }
    bool tractable = IsSingleKeyEquivalent(fds, nullptr) ||
                     IsConstantAttrEquivalent(fds, nullptr);
    auto reduction = PatternReduction::SearchCcp(target);
    EXPECT_EQ(reduction.ok(), !tractable) << fds.ToString();
    (tractable ? tractable_seen : hard_seen)++;
  }
  EXPECT_GT(hard_seen, 10);
  EXPECT_GT(tractable_seen, 10);
}

TEST(PatternReductionTest, CcpEndToEndEquivalence) {
  // For several ccp-hard targets, search for a reduction (from whichever
  // of Sb/Sc/Sd admits one — e.g. Sd → Sb is provably impossible, since
  // Sb cannot host two symmetric non-closed singleton patterns) and
  // compare optimality verdicts under cross-conflict priorities.
  std::vector<Schema> targets;
  targets.push_back(CcpHardSchemaSb());
  targets.push_back(CcpHardSchemaSc());
  targets.push_back(CcpHardSchemaSd());
  targets.push_back(Schema::SingleRelation(
      "R", 4, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet(), AttrSet{4})}));
  for (const Schema& target : targets) {
    auto reduction = PatternReduction::SearchCcp(target);
    ASSERT_TRUE(reduction.ok()) << target.ToString();
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      RandomProblemOptions opts;
      opts.facts_per_relation = 10;
      opts.domain_size = 3;
      opts.priority_density = 0.6;
      opts.cross_priority_density = 0.5;
      opts.j_policy = JPolicy::kRandomRepair;
      opts.seed = seed * 41;
      PreferredRepairProblem src =
          GenerateRandomProblem(reduction->source_schema(), opts);
      PreferredRepairProblem dst = reduction->Apply(src);
      EXPECT_TRUE(dst.priority->Validate(PriorityMode::kCrossConflict).ok());
      ConflictGraph src_cg(*src.instance);
      ConflictGraph dst_cg(*dst.instance);
      EXPECT_EQ(src_cg.num_edges(), dst_cg.num_edges());
      EXPECT_EQ(
          ExhaustiveCheckGlobalOptimal(src_cg, *src.priority, src.j).optimal,
          ExhaustiveCheckGlobalOptimal(dst_cg, *dst.priority, dst.j).optimal)
          << target.ToString() << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace prefrep
