#include "gen/random_instance.h"

#include <algorithm>
#include <optional>

#include "conflicts/conflicts.h"
#include "repair/subinstance_ops.h"

namespace prefrep {

PreferredRepairProblem GenerateRandomProblem(
    const Schema& schema, const RandomProblemOptions& opts) {
  Rng rng(opts.seed);
  PreferredRepairProblem problem(schema);
  Instance& inst = *problem.instance;

  // Facts: per-attribute values from a shared domain, uniform or
  // Zipf-skewed.
  size_t domain = std::max<size_t>(1, opts.domain_size);
  std::optional<ZipfTable> zipf;
  if (opts.value_skew > 0) {
    zipf.emplace(domain, opts.value_skew);
  }
  auto draw = [&]() {
    return zipf.has_value() ? zipf->Sample(&rng) : rng.NextBounded(domain);
  };
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    int arity = schema.arity(rel);
    for (size_t k = 0; k < opts.facts_per_relation; ++k) {
      std::vector<std::string> values;
      values.reserve(static_cast<size_t>(arity));
      for (int a = 0; a < arity; ++a) {
        values.push_back("x" + std::to_string(draw()));
      }
      Result<FactId> added = inst.AddFact(rel, values);
      PREFREP_CHECK(added.ok());
    }
  }

  size_t n = inst.num_facts();
  // Hidden linear order: rank[f] = position of f in a random permutation.
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  rng.Shuffle(&perm);
  std::vector<size_t> rank(n);
  for (size_t i = 0; i < n; ++i) {
    rank[perm[i]] = i;
  }

  ConflictGraph cg(inst);
  problem.InitPriority();
  // Conflict-bounded edges, oriented by rank (higher rank = preferred).
  for (const auto& [f, g] : cg.edges()) {
    if (!rng.NextBool(opts.priority_density)) {
      continue;
    }
    FactId higher = rank[f] > rank[g] ? f : g;
    FactId lower = higher == f ? g : f;
    problem.priority->MustAdd(higher, lower);
  }
  // Cross-conflict edges between random non-conflicting pairs.
  if (opts.cross_priority_density > 0 && n >= 2) {
    for (size_t attempt = 0; attempt < n; ++attempt) {
      FactId f = static_cast<FactId>(rng.NextBounded(n));
      FactId g = static_cast<FactId>(rng.NextBounded(n));
      if (f == g || FactsConflict(inst, f, g)) {
        continue;
      }
      if (!rng.NextBool(opts.cross_priority_density)) {
        continue;
      }
      FactId higher = rank[f] > rank[g] ? f : g;
      FactId lower = higher == f ? g : f;
      problem.priority->MustAdd(higher, lower);
    }
  }

  // Candidate J.
  std::vector<FactId> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = static_cast<FactId>(i);
  }
  switch (opts.j_policy) {
    case JPolicy::kRandomRepair:
    case JPolicy::kRandomConsistentSubset:
      rng.Shuffle(&order);
      break;
    case JPolicy::kLowPriorityRepair:
      std::sort(order.begin(), order.end(), [&](FactId a, FactId b) {
        return rank[a] < rank[b];
      });
      break;
    case JPolicy::kHighPriorityRepair:
      std::sort(order.begin(), order.end(), [&](FactId a, FactId b) {
        return rank[a] > rank[b];
      });
      break;
  }
  DynamicBitset j(n);
  for (FactId f : order) {
    if (!cg.ConflictsWithSet(f, j)) {
      j.set(f);
    }
  }
  if (opts.j_policy == JPolicy::kRandomConsistentSubset) {
    // Drop ~30% of the facts to make J (likely) non-maximal.
    j.ForEach([&](size_t f) {
      if (rng.NextBool(0.3)) {
        j.reset(f);
      }
    });
  }
  problem.j = std::move(j);
  return problem;
}

}  // namespace prefrep
