// Copyright (c) prefrep contributors.
// Globally-optimal repair checking for a single-relation schema whose FD
// set is equivalent to a single FD A → B (§4.1, algorithm GRepCheck1FD of
// Figure 2).
//
// The algorithm tries, for every conflicting pair f ∈ J, g ∈ I \ J, the
// swap J[f↔g] — remove from J the facts agreeing with f on A∪B, add the
// facts of I agreeing with g on A∪B — and accepts J iff no swap is a
// global improvement (Lemma 4.2 shows this is complete).
//
// Historical note (§4.1): Proposition 10(iii) of [SCM] claimed global and
// completion optimality coincide for a single FD, which would have given
// tractability via completion checking; that proposition is incorrect,
// and this algorithm is the paper's replacement proof of tractability.

#ifndef PREFREP_REPAIR_GLOBAL_ONE_FD_H_
#define PREFREP_REPAIR_GLOBAL_ONE_FD_H_

#include "repair/improvement.h"

namespace prefrep {

/// The swap J[f↔g] of Example 4.1: requires f ∈ J, f and g agree on
/// fd.lhs and disagree on fd.rhs.  Exposed for tests (Example 4.1).
DynamicBitset SwapBlocks(const Instance& instance, RelId rel, const FD& fd,
                         const DynamicBitset& j, FactId f, FactId g);

/// GRepCheck1FD restricted to relation `rel`: decides whether J ∩ rel is
/// a globally-optimal repair of I ∩ rel, where ∆|rel is equivalent to the
/// single FD `fd` (caller obtains `fd` from the dichotomy classifier).
///
/// Handles arbitrary J: an inconsistent or non-maximal J|rel is rejected
/// (with a witness for the non-maximal case).
///
/// When `universe` is non-null the check is further restricted to the
/// facts of `universe` (a conflict block of the relation): only pairs
/// inside the universe are considered.  Sound because a swap J[f↔g] only
/// touches facts of f's and g's conflict block (every fact agreeing with
/// f or g on lhs∪rhs conflicts with the other endpoint).
CheckResult CheckGlobalOptimalOneFd(const ConflictGraph& cg,
                                    const PriorityRelation& pr, RelId rel,
                                    const FD& fd, const DynamicBitset& j,
                                    const DynamicBitset* universe = nullptr);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_GLOBAL_ONE_FD_H_
