// Copyright (c) prefrep contributors.
// Consistent query answering under preferred repairs — the paper's
// stated next step ("the classification of the computational complexity
// of ... consistent query answering, in the framework of preferred
// repairs", §1 and §8).
//
// The consistent answers of Q on (I, ≻) under a repair semantics σ are
//     ⋂ { Q(J) : J is a σ-optimal repair of I }
// (for σ = subset-repairs this is the classical Arenas–Bertossi–Chomicki
// notion).  This module computes them by enumeration — exact but
// exponential in general, matching the problem's hardness; it exists to
// let users experiment with the open problem, not as a claimed
// polynomial algorithm.

#ifndef PREFREP_QUERY_CONSISTENT_ANSWERS_H_
#define PREFREP_QUERY_CONSISTENT_ANSWERS_H_

#include "classify/categoricity.h"
#include "model/context.h"
#include "priority/priority.h"
#include "query/conjunctive_query.h"
#include "repair/exhaustive.h"

namespace prefrep {

/// Which repairs the intersection ranges over.
enum class AnswerSemantics {
  kAllRepairs,   ///< classical consistent answers (no preferences)
  kGlobal,       ///< globally-optimal repairs only
  kPareto,       ///< Pareto-optimal repairs only
  kCompletion,   ///< completion-optimal repairs only
};

/// Which route produced an answer (reported through CqaOptions::path).
enum class CqaPath {
  /// The categoricity pre-pass (classify/categoricity.h) certified a
  /// unique optimal repair; the answer is one construct call plus one
  /// query evaluation.
  kCategorical,
  /// The repair set was enumerated and intersected (the general route;
  /// always taken under kAllRepairs and on non-categorical or undecided
  /// instances).
  kEnumeration,
};

/// Short human-readable name ("categorical" / "enumeration").
const char* CqaPathName(CqaPath value);

/// Knobs for the categoricity fast path of the *Bounded entry points.
/// The defaults preserve the historical behaviour observably: the
/// pre-pass runs under a *private* governor derived from the caller's
/// budget, so when it does not certify categoricity the enumeration
/// path runs with the caller's governor untouched — byte-identical
/// answers, Trileans and degradation to a build without the pre-pass.
struct CqaOptions {
  /// Memoized per-block categoricity verdicts (serve layer); nullptr
  /// decides from scratch.  Changes cost, never answers.
  CategoricityMemo* memo = nullptr;
  /// When non-null, receives which route produced the answer.
  CqaPath* path = nullptr;
  /// Skips the pre-pass outright (differential testing / benchmarks).
  bool force_enumeration = false;
};

/// Computes the consistent answers of `query` on (I, ≻) under the given
/// semantics.  Exponential in general (repair enumeration); intended
/// for small instances and experimentation.
std::vector<ConjunctiveQuery::AnswerTuple> ConsistentAnswers(
    const ConflictGraph& cg, const PriorityRelation& priority,
    const ConjunctiveQuery& query, AnswerSemantics semantics);

/// Boolean-query variant: true iff Q holds in *every* σ-optimal repair.
bool CertainlyTrue(const ConflictGraph& cg, const PriorityRelation& priority,
                   const ConjunctiveQuery& query, AnswerSemantics semantics);

/// True iff Q holds in *some* σ-optimal repair (possible answers).
bool PossiblyTrue(const ConflictGraph& cg, const PriorityRelation& priority,
                  const ConjunctiveQuery& query, AnswerSemantics semantics);

/// ProblemContext overloads: share one context (conflict graph, block
/// decomposition, classifications) across repeated queries on the same
/// prioritizing instance; optimal-repair enumeration goes through the
/// per-block product of repair/block_solver.h.
std::vector<ConjunctiveQuery::AnswerTuple> ConsistentAnswers(
    const ProblemContext& ctx, const ConjunctiveQuery& query,
    AnswerSemantics semantics);
bool CertainlyTrue(const ProblemContext& ctx, const ConjunctiveQuery& query,
                   AnswerSemantics semantics);
bool PossiblyTrue(const ProblemContext& ctx, const ConjunctiveQuery& query,
                  AnswerSemantics semantics);

/// Budget-aware variants for governed contexts (ctx.governor()).  The
/// plain overloads above are CHECK-fatal if the budget fires mid-query —
/// a bool cannot say "unknown" — so governed callers use these instead.
///
/// Degradation contract: under the optimal-repair semantics an
/// abandoned enumeration yields kUnknown / kResourceExhausted outright,
/// because a partial per-block product contains no complete repairs to
/// even falsify with.  Under kAllRepairs every enumerated repair is
/// complete, so a definite refutation (CertainlyTrue → kFalse) or
/// confirmation (PossiblyTrue → kTrue) found before exhaustion stands.
///
/// `all_repairs_universe` (optional) restricts the kAllRepairs
/// enumeration to the maximal consistent subsets of that fact set
/// instead of the whole id range.  Resident sessions (src/serve) pass
/// their live-fact mask here: their instances carry tombstoned ids that
/// must not be enumerated as repair members.  Ignored under the
/// optimal-repair semantics, whose per-block product already ranges
/// over blocks ∪ free facts only.
///
/// Under the optimal-repair semantics every Bounded entry point first
/// runs the categoricity pre-pass (see CqaOptions): a certified unique
/// optimal repair turns the enumeration + intersection into a single
/// query evaluation — identical output, since intersecting (or
/// scanning) a one-element repair set is evaluating its only member.
/// Degradation is one-sided: the tier-1 categoricity test is
/// polynomial, so on total-priority instances the fast route can still
/// answer under budgets (notably max_block) that refuse the
/// exponential enumeration — never the reverse, and any answer it
/// produces equals the ungoverned ground truth (tests/
/// categoricity_test.cc, BlockStarvationDegradesNoWorse).
Result<std::vector<ConjunctiveQuery::AnswerTuple>> ConsistentAnswersBounded(
    const ProblemContext& ctx, const ConjunctiveQuery& query,
    AnswerSemantics semantics,
    const DynamicBitset* all_repairs_universe = nullptr,
    const CqaOptions& options = {});
Trilean CertainlyTrueBounded(const ProblemContext& ctx,
                             const ConjunctiveQuery& query,
                             AnswerSemantics semantics,
                             const DynamicBitset* all_repairs_universe =
                                 nullptr,
                             const CqaOptions& options = {});
Trilean PossiblyTrueBounded(const ProblemContext& ctx,
                            const ConjunctiveQuery& query,
                            AnswerSemantics semantics,
                            const DynamicBitset* all_repairs_universe =
                                nullptr,
                            const CqaOptions& options = {});

}  // namespace prefrep

#endif  // PREFREP_QUERY_CONSISTENT_ANSWERS_H_
