// Copyright (c) prefrep contributors.
// Database instances (§2.1).  An instance over a signature is a finite set
// of facts R_i(t); we identify each instance with its set of facts and
// give every fact a dense FactId so subinstances are bitsets.

#ifndef PREFREP_MODEL_INSTANCE_H_
#define PREFREP_MODEL_INSTANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/dynamic_bitset.h"
#include "base/hash.h"
#include "base/status.h"
#include "model/schema.h"
#include "model/value.h"

namespace prefrep {

/// Dense id of a fact within an Instance.
using FactId = uint32_t;

inline constexpr FactId kInvalidFactId = UINT32_MAX;

/// A fact R(t): a relation symbol and a tuple of interned values.
struct Fact {
  RelId rel = kInvalidRelId;
  std::vector<ValueId> values;

  bool operator==(const Fact& other) const {
    return rel == other.rel && values == other.values;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    size_t seed = HashMix64(f.rel);
    for (ValueId v : f.values) {
      HashCombine(&seed, v);
    }
    return seed;
  }
};

/// A database instance: a set of facts over a schema, with dense ids.
///
/// Facts are set-valued (duplicates collapse to the same id) and ids are
/// stable.  An Instance owns its ValueDict, so facts from different
/// instances must never be mixed.  Facts can carry optional labels (like
/// the paper's g1f1, d1a, ...) used by the text format, the examples and
/// error messages.
class Instance {
 public:
  /// Creates an empty instance over `schema`.  The schema must outlive the
  /// instance.
  explicit Instance(const Schema* schema) : schema_(schema) {
    PREFREP_CHECK(schema != nullptr);
    by_relation_.resize(schema->num_relations());
  }

  PREFREP_DISALLOW_COPY(Instance);
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  const Schema& schema() const { return *schema_; }
  ValueDict& dict() { return dict_; }
  const ValueDict& dict() const { return dict_; }

  size_t num_facts() const { return facts_.size(); }

  const Fact& fact(FactId id) const {
    PREFREP_CHECK(id < facts_.size());
    return facts_[id];
  }

  /// Adds a fact given by relation id and constant texts; returns the
  /// (possibly pre-existing) fact id.  Arity is checked.
  Result<FactId> AddFact(RelId rel, const std::vector<std::string>& constants,
                         std::string_view label = {});

  /// Adds a fact with already-interned values.
  Result<FactId> AddFactValues(RelId rel, std::vector<ValueId> values,
                               std::string_view label = {});

  /// Adds by relation name; fatal on error (for tests/examples).
  FactId MustAddFact(std::string_view relation_name,
                     const std::vector<std::string>& constants,
                     std::string_view label = {});

  /// Finds a fact by content; kInvalidFactId if absent.
  FactId FindFact(const Fact& fact) const;

  /// Finds a fact by label; kInvalidFactId if absent.
  FactId FindLabel(std::string_view label) const;

  /// The label of a fact (empty if unlabeled).
  const std::string& label(FactId id) const {
    PREFREP_CHECK(id < labels_.size());
    return labels_[id];
  }

  /// All fact ids of relation `rel`, in insertion order.
  const std::vector<FactId>& facts_of(RelId rel) const {
    PREFREP_CHECK(rel < by_relation_.size());
    return by_relation_[rel];
  }

  /// An all-ones bitset over the facts (the subinstance I itself).
  DynamicBitset AllFacts() const {
    DynamicBitset b(facts_.size());
    b.set_all();
    return b;
  }

  /// An all-zero bitset over the facts.
  DynamicBitset EmptySubinstance() const {
    return DynamicBitset(facts_.size());
  }

  /// Builds a subinstance bitset from fact labels; fatal on unknown label.
  DynamicBitset SubinstanceByLabels(
      const std::vector<std::string>& labels) const;

  /// Renders a fact as "Rel(a, b, c)" (with its label prefix if present).
  std::string FactToString(FactId id) const;

  /// Renders a subinstance as "{f1, f2, ...}" using labels when available.
  std::string SubinstanceToString(const DynamicBitset& sub) const;

 private:
  const Schema* schema_;
  ValueDict dict_;
  std::vector<Fact> facts_;
  std::vector<std::string> labels_;
  std::vector<std::vector<FactId>> by_relation_;
  std::unordered_map<Fact, FactId, FactHash> fact_index_;
  std::unordered_map<std::string, FactId> label_index_;
};

}  // namespace prefrep

#endif  // PREFREP_MODEL_INSTANCE_H_
