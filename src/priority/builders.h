// Copyright (c) prefrep contributors.
// Priority-relation builders for the common preference sources the
// paper's introduction motivates: source reliability ("one source is
// regarded to be more reliable than another") and recency ("timestamp
// information implies that a more recent fact should be preferred").
//
// Every builder emits edges only between *conflicting* facts when asked
// for PriorityMode::kConflictOnly, and between arbitrary fact pairs of
// distinct score when asked for kCrossConflict.  Scores induce no edge
// when equal, so the result is acyclic by construction.

#ifndef PREFREP_PRIORITY_BUILDERS_H_
#define PREFREP_PRIORITY_BUILDERS_H_

#include <functional>

#include "conflicts/conflicts.h"
#include "priority/priority.h"

namespace prefrep {

/// A score for each fact; ties produce no preference.
using FactScore = std::function<int64_t(FactId)>;

/// Builds the priority "higher score ≻ lower score" over the given
/// instance.  In kConflictOnly mode edges are restricted to conflicting
/// pairs (O(conflicts)); in kCrossConflict mode every ordered pair of
/// facts with distinct scores is related (O(n²)) — suitable for small
/// instances or demos.
PriorityRelation BuildScorePriority(const ConflictGraph& cg,
                                    const FactScore& score,
                                    PriorityMode mode);

/// Source-reliability priority: `source_rank(f)` returns the rank of
/// the source that contributed fact f (higher = more trusted).
inline PriorityRelation BuildSourcePriority(const ConflictGraph& cg,
                                            const FactScore& source_rank,
                                            PriorityMode mode =
                                                PriorityMode::kConflictOnly) {
  return BuildScorePriority(cg, source_rank, mode);
}

/// Recency priority: `timestamp(f)` returns the arrival time of fact f;
/// later facts are preferred over conflicting earlier ones.
inline PriorityRelation BuildRecencyPriority(const ConflictGraph& cg,
                                             const FactScore& timestamp,
                                             PriorityMode mode =
                                                 PriorityMode::kConflictOnly) {
  return BuildScorePriority(cg, timestamp, mode);
}

}  // namespace prefrep

#endif  // PREFREP_PRIORITY_BUILDERS_H_
