#include "repair/counting.h"

#include "repair/completion.h"

namespace prefrep {

uint64_t CountOptimalRepairs(const ConflictGraph& cg,
                             const PriorityRelation& pr,
                             RepairSemantics semantics) {
  return AllOptimalRepairs(cg, pr, semantics).size();
}

std::optional<DynamicBitset> UniqueGloballyOptimalRepair(
    const ConflictGraph& cg, const PriorityRelation& pr) {
  std::vector<DynamicBitset> optimal =
      AllOptimalRepairs(cg, pr, RepairSemantics::kGlobal);
  if (optimal.size() == 1) {
    return optimal.front();
  }
  return std::nullopt;
}

bool IsPriorityTotalOnConflicts(const ConflictGraph& cg,
                                const PriorityRelation& pr) {
  for (const auto& [f, g] : cg.edges()) {
    if (!pr.Prefers(f, g) && !pr.Prefers(g, f)) {
      return false;
    }
  }
  return true;
}

std::optional<DynamicBitset> UniqueOptimalIfTotalPriority(
    const ConflictGraph& cg, const PriorityRelation& pr) {
  if (!IsPriorityTotalOnConflicts(cg, pr)) {
    return std::nullopt;
  }
  // With a total priority the greedy output does not depend on the
  // tie-break seed, and it is the unique optimal repair under all three
  // semantics [SCM].
  return GreedyCompletionRepair(cg, pr, /*seed=*/1);
}

}  // namespace prefrep
