// Copyright (c) prefrep contributors.
// Undirected graphs and a Hamiltonian-cycle solver.  Lemma 5.2 reduces
// undirected Hamiltonian Cycle to globally-optimal repair checking over
// the hard schema S1; the solver provides ground truth for validating
// that reduction end to end.

#ifndef PREFREP_GRAPH_UNDIRECTED_H_
#define PREFREP_GRAPH_UNDIRECTED_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/macros.h"
#include "base/random.h"

namespace prefrep {

/// A simple undirected graph over nodes 0..n-1.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(size_t num_nodes) : adjacency_(num_nodes) {}

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Adds the undirected edge {u, v}; duplicates and self-loops are
  /// ignored.
  void AddEdge(size_t u, size_t v);

  bool HasEdge(size_t u, size_t v) const;

  const std::vector<size_t>& neighbors(size_t u) const {
    PREFREP_CHECK(u < adjacency_.size());
    return adjacency_[u];
  }

  const std::vector<std::pair<size_t, size_t>>& edges() const {
    return edges_;
  }

  /// --- Generators -------------------------------------------------------

  /// The cycle v0 - v1 - ... - v(n-1) - v0 (has a Hamiltonian cycle by
  /// construction).
  static UndirectedGraph Cycle(size_t n);

  /// The complete graph K_n.
  static UndirectedGraph Complete(size_t n);

  /// The path v0 - ... - v(n-1) (no Hamiltonian cycle for n ≥ 3).
  static UndirectedGraph Path(size_t n);

  /// A Hamiltonian cycle through a random permutation plus `extra_edges`
  /// random chords: guaranteed Hamiltonian, adversarially noisy.
  static UndirectedGraph HamiltonianWithChords(size_t n, size_t extra_edges,
                                               Rng* rng);

  /// An Erdős–Rényi graph with edge probability p.
  static UndirectedGraph Random(size_t n, double p, Rng* rng);

  /// A graph guaranteed non-Hamiltonian: a random graph on n-1 nodes plus
  /// a pendant node of degree 1.
  static UndirectedGraph NonHamiltonianPendant(size_t n, double p, Rng* rng);

 private:
  std::vector<std::vector<size_t>> adjacency_;
  std::vector<std::pair<size_t, size_t>> edges_;
};

/// Decides whether the graph has a Hamiltonian cycle.  Held–Karp bitmask
/// dynamic programming, O(2^n · n^2); intended for the small ground-truth
/// graphs of tests and benchmarks (n ≤ 24 enforced).
bool HasHamiltonianCycle(const UndirectedGraph& g);

/// Returns a Hamiltonian cycle as a permutation v0, ..., v(n-1) (with the
/// closing edge back to v0 implied), or nullopt if none exists.
std::optional<std::vector<size_t>> FindHamiltonianCycle(
    const UndirectedGraph& g);

}  // namespace prefrep

#endif  // PREFREP_GRAPH_UNDIRECTED_H_
