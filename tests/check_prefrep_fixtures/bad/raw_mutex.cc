// Fixture for tools/check_prefrep.py --selftest (never compiled): raw
// std::mutex/std::lock_guard outside src/base/ — invisible to Thread
// Safety Analysis, which only sees acquisitions through the annotated
// wrappers in src/base/thread_annotations.h.
// EXPECT-FINDING: prefrep-raw-concurrency

#include <mutex>

namespace prefrep {

std::mutex g_mu;
int g_count = 0;

void Bump() {
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_count;
}

}  // namespace prefrep
