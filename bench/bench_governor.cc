// B11 — what bounded-effort solving costs and buys (docs/robustness.md).
// Three questions: (1) how expensive is the ungoverned Checkpoint()
// fast path that now sits inside every enumeration node, (2) what does
// an armed-but-ample governor add to a real exhaustive check, and
// (3) does a deadline actually bound the wall-clock of a check that
// would otherwise exhaust a 2^{|block|} space (Theorem 3.1's hard
// side).  (1) and (2) must be noise-level — that is the contract that
// lets the governor live on the default paths.

#include <benchmark/benchmark.h>

#include "base/governor.h"
#include "bench_util.h"
#include "gen/hard_workloads.h"
#include "model/context.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"

namespace prefrep {
namespace {

// The branch every enumeration node pays when no governor is armed.
void BM_Checkpoint_Unarmed(benchmark::State& state) {
  ResourceGovernor& g = ResourceGovernor::Unlimited();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Checkpoint());
  }
}
BENCHMARK(BM_Checkpoint_Unarmed);

// The slow path with a node budget that never fires within the run.
void BM_Checkpoint_Armed(benchmark::State& state) {
  ResourceBudget budget;
  budget.max_nodes = ~uint64_t{0} >> 1;
  ResourceGovernor g(budget);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Checkpoint());
  }
}
BENCHMARK(BM_Checkpoint_Armed);

// Exact check on the single-block clustered S1 workload (one block of
// 3*cliques facts, (s-1)^(c-1)*(s-1+c) repairs), ungoverned: the
// baseline the governed variants are compared against.
void BM_ClusteredCheck_Ungoverned(benchmark::State& state) {
  PreferredRepairProblem p =
      MakeHardClusteredWorkload(static_cast<size_t>(state.range(0)), 3);
  ConflictGraph cg(*p.instance);
  for (auto _ : state) {
    CheckResult r = ExhaustiveCheckGlobalOptimal(cg, *p.priority, p.j);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.counters["repairs"] = static_cast<double>(CountRepairs(cg));
}
BENCHMARK(BM_ClusteredCheck_Ungoverned)->DenseRange(8, 14, 2);

// Same check with an armed governor whose budget is far too large to
// fire: measures the real checkpoint overhead in the enumeration loop
// (deadline polling included, every kDeadlineCheckInterval nodes).
void BM_ClusteredCheck_GovernedAmple(benchmark::State& state) {
  PreferredRepairProblem p =
      MakeHardClusteredWorkload(static_cast<size_t>(state.range(0)), 3);
  ConflictGraph cg(*p.instance);
  for (auto _ : state) {
    ResourceBudget budget;
    budget.max_nodes = ~uint64_t{0} >> 1;
    budget.deadline_ms = 3'600'000;
    ResourceGovernor g(budget);
    CheckResult r = ExhaustiveCheckGlobalOptimal(cg, *p.priority, p.j, g);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_ClusteredCheck_GovernedAmple)->DenseRange(8, 14, 2);

// The payoff: a deadline bounds the check regardless of block size.
// 20 cliques = a 60-fact block with ~11.5M repairs (seconds to minutes
// ungoverned); the governed run returns "unknown" in ~deadline_ms.
void BM_ClusteredCheck_Deadline(benchmark::State& state) {
  PreferredRepairProblem p = MakeHardClusteredWorkload(20, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  int64_t deadline_ms = state.range(0);
  uint64_t unknowns = 0;
  for (auto _ : state) {
    ResourceBudget budget;
    budget.deadline_ms = deadline_ms;
    ResourceGovernor g(budget);
    CheckResult r = ExhaustiveCheckGlobalOptimal(
        ctx.conflict_graph(), *p.priority, p.j, g);
    unknowns += r.known() ? 0 : 1;
    benchmark::DoNotOptimize(r.optimal);
  }
  state.counters["unknown"] = static_cast<double>(unknowns);
}
BENCHMARK(BM_ClusteredCheck_Deadline)->Arg(1)->Arg(5)->Arg(25);

// Tractable-path sanity: the polynomial checker with a governed
// context.  GRepCheck1FD never checkpoints (it is polynomial), so a
// governed context must cost the same as an ungoverned one here.
void RunOneFdChecker(benchmark::State& state, bool governed) {
  PreferredRepairProblem p = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kRandomRepair);
  ProblemContext ctx(*p.instance, *p.priority);
  ResourceBudget budget;
  budget.max_nodes = ~uint64_t{0} >> 1;
  ResourceGovernor g(budget);
  if (governed) {
    ctx.set_governor(&g);
  }
  RepairChecker checker(ctx);
  for (auto _ : state) {
    auto outcome = checker.CheckGloballyOptimal(p.j);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
void BM_OneFdChecker_Ungoverned(benchmark::State& state) {
  RunOneFdChecker(state, false);
}
void BM_OneFdChecker_Governed(benchmark::State& state) {
  RunOneFdChecker(state, true);
}
BENCHMARK(BM_OneFdChecker_Ungoverned)->Arg(1024);
BENCHMARK(BM_OneFdChecker_Governed)->Arg(1024);

}  // namespace
}  // namespace prefrep
