#include "classify/dichotomy.h"

namespace prefrep {

const char* TractableKindName(TractableKind kind) {
  switch (kind) {
    case TractableKind::kSingleFd:
      return "single-fd";
    case TractableKind::kTwoKeys:
      return "two-keys";
    case TractableKind::kHard:
      return "hard";
  }
  return "unknown";
}

RelationClassification ClassifyRelationFds(const FDSet& fds) {
  RelationClassification out;
  const int arity = fds.arity();

  // Condition 1: ∆|R equivalent to a single FD.  By Lemma 6.2(1) the LHS
  // of such an FD can be taken from the syntactic LHSs; the best RHS for
  // a fixed LHS A is its closure ⟦R.A⟧.
  FDSet nontrivial = fds.WithoutTrivial();
  if (nontrivial.empty()) {
    out.kind = TractableKind::kSingleFd;
    out.single_fd = FD(AttrSet(), AttrSet());
    out.explanation = "∆|R has no nontrivial fd (equivalent to a trivial fd)";
    return out;
  }
  for (const AttrSet& a : fds.LeftHandSides()) {
    FD candidate(a, fds.Closure(a));
    FDSet single(arity, {candidate});
    if (single.ImpliesAll(fds)) {  // fds ⊨ candidate holds by construction
      out.kind = TractableKind::kSingleFd;
      out.single_fd = candidate;
      out.explanation =
          "∆|R is equivalent to the single fd " + candidate.ToString();
      return out;
    }
  }

  // Condition 2: ∆|R equivalent to two (incomparable) key constraints.
  // By Lemma 6.2(2) both LHSs can be taken from the syntactic LHSs; a
  // comparable pair collapses to a single key, which condition 1 already
  // covers.
  std::vector<AttrSet> lhss = fds.LeftHandSides();
  AttrSet full = fds.AllAttrs();
  for (size_t i = 0; i < lhss.size(); ++i) {
    if (!fds.IsKey(lhss[i])) {
      continue;
    }
    for (size_t k = i + 1; k < lhss.size(); ++k) {
      if (!fds.IsKey(lhss[k])) {
        continue;
      }
      if (lhss[i].IsSubsetOf(lhss[k]) || lhss[k].IsSubsetOf(lhss[i])) {
        continue;
      }
      FDSet two_keys(arity, {FD(lhss[i], full), FD(lhss[k], full)});
      if (two_keys.ImpliesAll(fds)) {
        out.kind = TractableKind::kTwoKeys;
        out.key1 = lhss[i];
        out.key2 = lhss[k];
        out.explanation = "∆|R is equivalent to the two keys " +
                          lhss[i].ToString() + " → ⟦R⟧ and " +
                          lhss[k].ToString() + " → ⟦R⟧";
        return out;
      }
    }
  }

  out.kind = TractableKind::kHard;
  out.explanation =
      "∆|R is equivalent to neither a single fd nor two key constraints";
  return out;
}

std::vector<RelId> SchemaClassification::HardRelations() const {
  std::vector<RelId> out;
  for (RelId r = 0; r < relations.size(); ++r) {
    if (relations[r].kind == TractableKind::kHard) {
      out.push_back(r);
    }
  }
  return out;
}

SchemaClassification ClassifySchema(const Schema& schema) {
  SchemaClassification out;
  out.relations.reserve(schema.num_relations());
  for (RelId r = 0; r < schema.num_relations(); ++r) {
    out.relations.push_back(ClassifyRelationFds(schema.fds(r)));
    if (out.relations.back().kind == TractableKind::kHard) {
      out.tractable = false;
    }
  }
  return out;
}

}  // namespace prefrep
