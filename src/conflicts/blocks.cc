#include "conflicts/blocks.h"

namespace prefrep {

#if PREFREP_AUDIT_ENABLED
namespace {

// PREFREP_AUDIT hook: asserts the decomposition is a true partition of
// the fact universe refining the conflict graph's connected components.
// Lives here rather than in repair/audit.h because the conflicts layer
// sits below repair/ and must not include it.
void AuditDecomposition(const ConflictGraph& cg,
                        const std::vector<Block>& blocks,
                        const DynamicBitset& free_facts,
                        const std::vector<size_t>& block_of) {
  size_t n = cg.num_facts();
  // Partition: every fact is free xor belongs to exactly one block, and
  // block membership agrees with the block_of index.
  DynamicBitset covered = free_facts;
  free_facts.ForEach([&](size_t f) {
    PREFREP_CHECK_MSG(block_of[f] == BlockDecomposition::kNoBlock,
                      "audit: a conflict-free fact is indexed into a block");
    PREFREP_CHECK_MSG(cg.neighbors(static_cast<FactId>(f)).empty(),
                      "audit: a fact with conflicts was marked free");
  });
  for (const Block& b : blocks) {
    PREFREP_CHECK_MSG(b.facts.IsDisjointFrom(covered),
                      "audit: blocks overlap each other or the free facts");
    covered |= b.facts;
    PREFREP_CHECK_MSG(b.size() >= 2,
                      "audit: a block must hold at least two facts");
    b.facts.ForEach([&](size_t f) {
      PREFREP_CHECK_MSG(block_of[f] == b.id,
                        "audit: block membership disagrees with block_of");
      PREFREP_CHECK_MSG(cg.instance().fact(static_cast<FactId>(f)).rel ==
                            b.rel,
                        "audit: a block spans relations");
    });
    // Connectivity: a BFS inside the block reaches every block fact, so
    // the block is one component, not a union of several.
    DynamicBitset visited(n);
    std::vector<FactId> queue{
        static_cast<FactId>(b.facts.FindFirst())};
    visited.set(queue.front());
    while (!queue.empty()) {
      FactId f = queue.back();
      queue.pop_back();
      for (FactId g : cg.neighbors(f)) {
        if (b.facts.test(g) && !visited.test(g)) {
          visited.set(g);
          queue.push_back(g);
        }
      }
    }
    PREFREP_CHECK_MSG(visited == b.facts,
                      "audit: a block is not a connected component");
  }
  PREFREP_CHECK_MSG(covered.count() == n,
                    "audit: blocks plus free facts do not cover the "
                    "instance");
  // Refinement: no conflict edge leaves a block.
  for (FactId f = 0; f < n; ++f) {
    for (FactId g : cg.neighbors(f)) {
      PREFREP_CHECK_MSG(block_of[f] == block_of[g] &&
                            block_of[f] != BlockDecomposition::kNoBlock,
                        "audit: a conflict edge crosses block boundaries");
    }
  }
}

}  // namespace
#endif  // PREFREP_AUDIT_ENABLED

BlockDecomposition::BlockDecomposition(const ConflictGraph& cg)
    : free_facts_(cg.num_facts()),
      block_of_(cg.num_facts(), kNoBlock),
      by_relation_(cg.instance().schema().num_relations()) {
  size_t n = cg.num_facts();
  const Instance& instance = cg.instance();
  // BFS from each unvisited non-isolated fact; scanning fact ids in
  // ascending order numbers blocks by their smallest member.
  std::vector<FactId> queue;
  for (FactId start = 0; start < n; ++start) {
    if (cg.neighbors(start).empty()) {
      free_facts_.set(start);
      continue;
    }
    if (block_of_[start] != kNoBlock) {
      continue;
    }
    Block block;
    block.id = blocks_.size();
    block.rel = instance.fact(start).rel;
    block.facts = DynamicBitset(n);
    queue.clear();
    queue.push_back(start);
    block_of_[start] = block.id;
    while (!queue.empty()) {
      FactId f = queue.back();
      queue.pop_back();
      block.facts.set(f);
      PREFREP_CHECK_MSG(instance.fact(f).rel == block.rel,
                        "conflict edges must be intra-relation");
      for (FactId g : cg.neighbors(f)) {
        if (block_of_[g] == kNoBlock) {
          block_of_[g] = block.id;
          queue.push_back(g);
        }
      }
    }
    block.fact_list.reserve(block.facts.count());
    block.facts.ForEach([&](size_t f) {
      block.fact_list.push_back(static_cast<FactId>(f));
    });
    largest_block_ = std::max(largest_block_, block.fact_list.size());
    by_relation_[block.rel].push_back(block.id);
    blocks_.push_back(std::move(block));
  }
#if PREFREP_AUDIT_ENABLED
  AuditDecomposition(cg, blocks_, free_facts_, block_of_);
#endif
}

BlockDecomposition::BlockDecomposition(std::vector<Block> blocks,
                                       DynamicBitset free_facts,
                                       std::vector<size_t> block_of,
                                       size_t num_relations)
    : blocks_(std::move(blocks)),
      free_facts_(std::move(free_facts)),
      block_of_(std::move(block_of)),
      by_relation_(num_relations) {
  for (const Block& b : blocks_) {
    PREFREP_CHECK_MSG(b.id == static_cast<size_t>(&b - blocks_.data()),
                      "from-parts blocks must be numbered positionally");
    PREFREP_CHECK_MSG(b.rel < num_relations, "block relation out of range");
    largest_block_ = std::max(largest_block_, b.fact_list.size());
    by_relation_[b.rel].push_back(b.id);
  }
#if PREFREP_AUDIT_ENABLED
  // The partition/connectivity audit of the graph constructor needs the
  // conflict graph and a fully covered universe; here the session is
  // responsible (its PREFREP_AUDIT hook compares the whole incremental
  // state against a from-scratch rebuild).  Check the cheap local
  // invariants only.
  free_facts_.ForEach([&](size_t f) {
    PREFREP_CHECK_MSG(block_of_[f] == kNoBlock,
                      "audit: a free fact is indexed into a block");
  });
  for (const Block& b : blocks_) {
    PREFREP_CHECK_MSG(b.size() >= 2,
                      "audit: a block must hold at least two facts");
    PREFREP_CHECK_MSG(b.facts.count() == b.fact_list.size(),
                      "audit: block bitset and fact list disagree");
    for (FactId f : b.fact_list) {
      PREFREP_CHECK_MSG(b.facts.test(f) && block_of_[f] == b.id,
                        "audit: block membership disagrees with block_of");
    }
  }
#endif
}

bool PriorityIsBlockLocal(const BlockDecomposition& blocks,
                          const PriorityRelation& priority) {
  for (const auto& [higher, lower] : priority.edges()) {
    size_t b = blocks.block_of(higher);
    if (b == BlockDecomposition::kNoBlock || blocks.block_of(lower) != b) {
      return false;
    }
  }
  return true;
}

}  // namespace prefrep
