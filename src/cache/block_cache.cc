#include "cache/block_cache.h"

#include <algorithm>

namespace prefrep {

BlockSolveCache::BlockSolveCache(size_t capacity)
    : capacity_(std::max<size_t>(capacity, kNumShards)),
      shard_capacity_(std::max<size_t>(capacity_ / kNumShards, 1)) {}

size_t BlockSolveCache::EntryBytes(const Entry& entry) {
  auto bitset_bytes = [](const DynamicBitset& b) {
    return ((b.size() + 63) / 64) * sizeof(uint64_t);
  };
  size_t bytes = sizeof(Entry) + sizeof(BlockFingerprint);
  bytes += bitset_bytes(entry.witness_local);
  bytes += bitset_bytes(entry.repair_local);
  for (const DynamicBitset& r : entry.repairs_local) {
    bytes += sizeof(DynamicBitset) + bitset_bytes(r);
  }
  return bytes;
}

std::optional<BlockSolveCache::Entry> BlockSolveCache::Lookup(
    const BlockFingerprint& key) {
  Shard& shard = shard_of(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;  // copy out under the lock
}

void BlockSolveCache::Store(const BlockFingerprint& key, Entry entry) {
  Shard& shard = shard_of(key);
  const size_t incoming_bytes = EntryBytes(entry);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Entry& existing = it->second->second;
    if (entry.nodes_valid && !existing.nodes_valid) {
      // Same deterministic result, but now with a real node count; the
      // upgrade lets node-replaying callers start hitting too.
      bytes_.fetch_add(incoming_bytes, std::memory_order_relaxed);
      bytes_.fetch_sub(EntryBytes(existing), std::memory_order_relaxed);
      existing = std::move(entry);
      stores_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    const auto& victim = shard.lru.back();
    bytes_.fetch_sub(EntryBytes(victim.second), std::memory_order_relaxed);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  bytes_.fetch_add(incoming_bytes, std::memory_order_relaxed);
  shard.lru.emplace_front(key, std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  stores_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
}

void BlockSolveCache::Store(const BlockFingerprint& base,
                            const BlockFingerprint& key, Entry entry) {
  {
    MutexLock lock(derived_mu_);
    std::vector<BlockFingerprint>& keys = derived_[base];
    if (std::find(keys.begin(), keys.end(), key) == keys.end() &&
        keys.size() < kMaxDerivedPerBase) {
      keys.push_back(key);
    }
  }
  Store(key, std::move(entry));
}

bool BlockSolveCache::Erase(const BlockFingerprint& key) {
  Shard& shard = shard_of(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    return false;
  }
  bytes_.fetch_sub(EntryBytes(it->second->second),
                   std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.lru.erase(it->second);
  shard.index.erase(it);
  return true;
}

size_t BlockSolveCache::EraseDerivedFrom(const BlockFingerprint& base) {
  std::vector<BlockFingerprint> keys;
  {
    MutexLock lock(derived_mu_);
    auto it = derived_.find(base);
    if (it == derived_.end()) {
      return 0;
    }
    keys = std::move(it->second);
    derived_.erase(it);
  }
  size_t erased = 0;
  for (const BlockFingerprint& key : keys) {
    if (Erase(key)) {
      ++erased;
    }
  }
  return erased;
}

BlockCacheStats BlockSolveCache::stats() const {
  BlockCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

bool MayServeCachedEntry(const ResourceGovernor& governor,
                         const BlockSolveCache::Entry& entry) {
  if (governor.unlimited()) {
    return true;  // CommitReplayNodes is a no-op; nothing to preserve
  }
  if (governor.exhausted()) {
    return false;  // a fresh solve would not run either
  }
  if (governor.budget().Unlimited() && governor.NodeFiringIndex() == 0) {
    // Armed by cancellation only: a parallel worker of an ungoverned
    // session.  The shared governor is unarmed, so the merge never
    // reads this worker's node count — replay accuracy is moot.
    return true;
  }
  if (!entry.nodes_valid) {
    return false;  // node-counting caller, uncounted entry: miss
  }
  const uint64_t firing = governor.NodeFiringIndex();
  if (firing != 0 && governor.nodes_spent() + entry.nodes >= firing) {
    // The fresh solve would have exhausted the budget mid-block; rerun
    // it so the budget fires exactly as it does cache-off.
    return false;
  }
  return true;
}

void ReplayServedNodes(ResourceGovernor& governor,
                       const BlockSolveCache::Entry& entry) {
  governor.CommitReplayNodes(entry.nodes_valid ? entry.nodes : 0);
}

void BlockSolveCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, entry] : shard.lru) {
      bytes_.fetch_sub(EntryBytes(entry), std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.index.clear();
    shard.lru.clear();
  }
  MutexLock lock(derived_mu_);
  derived_.clear();
}

}  // namespace prefrep
