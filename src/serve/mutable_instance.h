// Copyright (c) prefrep contributors.
// The mutable-instance substrate of a resident solving session
// (src/serve/session.h).  An Instance is append-only with stable dense
// fact ids — exactly what bitset subinstances need — so mutation is
// layered on top rather than in: a MutableInstance owns a private
// Instance copy of the session's problem and represents deletion by
// *tombstoning* (clearing the fact's bit in the live mask) and
// re-insertion of identical content by *revival* (the Instance's set
// semantics hand back the old id).  The id universe only ever grows,
// which keeps every previously-issued id, bitset and block key valid
// across arbitrary edit sequences.
//
// Every fact is labeled: facts parsed with labels keep them, unlabeled
// facts get the synthetic f<id> label the text format would print.
// Labels are what make the serving contract checkable — answers are
// rendered through labels, so a from-scratch rebuild on the serialized
// live state (whose ids are compacted) still prints byte-identical
// output.

#ifndef PREFREP_SERVE_MUTABLE_INSTANCE_H_
#define PREFREP_SERVE_MUTABLE_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/dynamic_bitset.h"
#include "base/status.h"
#include "model/problem.h"

namespace prefrep {

/// An editable fact set with stable ids: tombstone deletes, revival
/// inserts, synthesized labels, and an edit generation counter.
/// Thread-compatible, not thread-safe: owned and edited by exactly one
/// SessionContext, which serializes ops (serve/session.h) — solver
/// workers see the underlying Instance only through const views that
/// outlive their requests, so no locks or PREFREP_GUARDED_BY
/// annotations appear here.
class MutableInstance {
 public:
  /// Deep-copies `problem`'s instance (schema, facts, labels) fact by
  /// fact, preserving ids, and synthesizes f<id> labels for unlabeled
  /// facts.  All facts start live.  The priority and J of `problem` are
  /// NOT copied — the session layers those separately.
  explicit MutableInstance(const PreferredRepairProblem& problem);

  PREFREP_DISALLOW_COPY(MutableInstance);

  const Schema& schema() const { return *schema_; }
  const Instance& instance() const { return *instance_; }

  /// Universe size, including tombstoned ids.
  size_t universe_size() const { return instance_->num_facts(); }

  size_t num_live() const { return live_.count(); }

  /// Live mask at universe size (tombstoned ids clear).
  const DynamicBitset& live() const { return live_; }

  bool IsLive(FactId f) const {
    return f < live_.size() && live_.test(f);
  }

  /// Monotone counter bumped by every successful Insert/Tombstone.
  uint64_t generation() const { return generation_; }

  struct InsertOutcome {
    FactId id = kInvalidFactId;
    /// True when the fact already existed live (idempotent no-op).
    bool already_live = false;
    /// True when a tombstoned fact of identical content was revived.
    bool revived = false;
  };

  /// Inserts (or revives) the fact `relation_name(constants...)` under
  /// `label`.  Errors: unknown relation, arity mismatch, `label` bound
  /// to a fact of different content, or content already present under a
  /// different label (labels are permanent, so the insert cannot
  /// honestly take effect).
  Result<InsertOutcome> Insert(std::string_view relation_name,
                               const std::vector<std::string>& constants,
                               std::string_view label);

  /// Tombstones the live fact named `label`.  Errors when the label is
  /// unknown or already tombstoned.
  Result<FactId> Tombstone(std::string_view label);

  /// Resolves a label to a *live* fact id; errors otherwise.
  Result<FactId> ResolveLive(std::string_view label) const;

  /// Serializes the live state (schema, live facts in id order,
  /// `priority` edges, `j`) in the io/text_format grammar.  Parsing the
  /// result rebuilds this state under an order-preserving id
  /// compaction, which is what the session's byte-identical-rebuild
  /// contract rests on.
  std::string SerializeLive(const PriorityRelation* priority,
                            const DynamicBitset* j) const;

 private:
  std::unique_ptr<Schema> schema_;
  std::unique_ptr<Instance> instance_;
  DynamicBitset live_;
  uint64_t generation_ = 0;
};

}  // namespace prefrep

#endif  // PREFREP_SERVE_MUTABLE_INSTANCE_H_
