// Copyright (c) prefrep contributors.
// ThreadPool — the work-stealing worker pool behind parallel per-block
// solving (repair/parallel_solver.h).
//
// This is deliberately the only place in the library that touches raw
// std::thread (tools/check_prefrep.py bans it outside src/base/, as
// prefrep-raw-concurrency): every concurrent
// computation goes through a pool, so cancellation, budget enforcement
// and shutdown have one owner.  The pool itself knows nothing about
// repairs — it runs opaque tasks:
//
//   * Submit() places a task on a per-worker deque, round-robin, so a
//     caller that submits its tasks largest-cost-first (the parallel
//     solver sorts blocks by size, the cost model behind the block-size
//     histogram of conflicts/stats.h) spreads the heavy tasks across
//     workers up front.
//   * Idle workers first drain their own deque front-to-back, then
//     steal from the back of a sibling's deque, so load imbalance fixes
//     itself without a central queue bottleneck.
//   * The destructor DISCARDS tasks that have not started, finishes the
//     ones that have, and joins every worker.  Callers that must see a
//     task's result therefore wait for the task's own completion
//     signal, not for the pool; callers that abandon a session simply
//     destroy the pool and rely on cooperative cancellation
//     (ResourceGovernor::ArmCancellation) to unwind in-flight work.
//
// Tasks must not throw (the library reports failure through Status and
// three-valued results, never exceptions).

#ifndef PREFREP_BASE_THREAD_POOL_H_
#define PREFREP_BASE_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "base/macros.h"
#include "base/thread_annotations.h"

namespace prefrep {

/// A fixed-size work-stealing pool.  Submission is single-producer (the
/// session that owns the pool); execution is multi-consumer.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Discards unstarted tasks, finishes running ones, joins workers.
  ~ThreadPool();

  PREFREP_DISALLOW_COPY(ThreadPool);

  size_t num_threads() const { return workers_.size(); }

  /// The parallelism the hardware advertises, floored at one (the
  /// standard permits hardware_concurrency() == 0 when unknown).
  static size_t HardwareConcurrency();

  /// Enqueues one task.  Tasks may run in any order and on any worker;
  /// completion is signalled by the task itself.  Must be called from
  /// the owning thread only.
  void Submit(std::function<void()> task);

 private:
  // One deque per worker, each with its own lock: the owner pops from
  // the front, thieves steal from the back, so they contend only when
  // the deque is nearly empty.
  struct WorkerQueue {
    Mutex mutex;
    std::deque<std::function<void()>> tasks PREFREP_GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t worker);
  std::function<void()> ClaimTask(size_t worker);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  Mutex wake_mutex_;
  CondVar wake_cv_;
  // Tasks submitted but not yet claimed by a worker; lets idle workers
  // sleep instead of spinning over empty deques.  Atomic (not guarded):
  // read lock-free on the claim fast path; the wake protocol publishes
  // increments under wake_mutex_ so sleepers cannot miss them.
  std::atomic<size_t> unclaimed_{0};
  std::atomic<bool> stop_{false};
  // Single-owner state: Submit() is restricted to the owning thread
  // (class contract), so the round-robin cursor needs no lock.
  size_t submit_cursor_ = 0;
  // Declared last so the loops observe fully-constructed state.
  std::vector<std::thread> workers_;
};

}  // namespace prefrep

#endif  // PREFREP_BASE_THREAD_POOL_H_
