// Copyright (c) prefrep contributors.
// Armstrong relations.  For an FD set ∆ over a relation R, an Armstrong
// relation is an instance that satisfies an FD X → Y **iff** ∆ ⊨ X → Y —
// the classical certificate that ∆'s closure is exactly what one thinks
// it is (Armstrong 1974; Beeri–Dowd–Fagin–Statman 1984, co-authored by
// this paper's first author).
//
// Construction: the sets on which two tuples may agree without forcing
// more agreement are exactly the ∆-closed attribute sets.  Starting
// from one base tuple, add for every closed set C a tuple agreeing with
// the base precisely on C (fresh values elsewhere).  Any X → Y with
// ∆ ⊭ X → Y is then violated by the witness pair for C = ⟦R.X⟧, while
// every implied FD holds by closedness.
//
// Used in tests as an independent oracle for the FD machinery and the
// dichotomy classifiers: an instance-level ground truth for implication.

#ifndef PREFREP_FD_ARMSTRONG_H_
#define PREFREP_FD_ARMSTRONG_H_

#include <memory>
#include <vector>

#include "fd/fd_set.h"
#include "model/instance.h"

namespace prefrep {

/// All ∆-closed attribute sets (fixpoints of the closure), ascending by
/// mask.  Enumerates 2^arity subsets; arity ≤ 20 enforced.
std::vector<AttrSet> ClosedAttributeSets(const FDSet& fds);

/// Builds an Armstrong relation for `fds` into a fresh instance over
/// `schema` (which must have the single relation the FD set describes).
/// Returns the instance; fact 0 is the base tuple and fact i ≥ 1 agrees
/// with it exactly on the i-th closed set.
std::unique_ptr<Instance> BuildArmstrongInstance(const Schema& schema,
                                                 const FDSet& fds);

/// True iff `instance`'s relation `rel` satisfies the FD (the
/// definitional check, O(n²) pairs — test-oracle use).
bool InstanceSatisfiesFd(const Instance& instance, RelId rel, const FD& fd);

}  // namespace prefrep

#endif  // PREFREP_FD_ARMSTRONG_H_
