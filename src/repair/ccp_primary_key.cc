#include "repair/ccp_primary_key.h"

#include "repair/subinstance_ops.h"

namespace prefrep {

Digraph BuildCcpPrimaryKeyGraph(const ConflictGraph& cg,
                                const PriorityRelation& pr,
                                const DynamicBitset& j,
                                const DynamicBitset* universe) {
  size_t n = cg.num_facts();
  Digraph graph(n);
  for (FactId f = 0; f < n; ++f) {
    if (universe != nullptr && !universe->test(f)) {
      continue;
    }
    if (j.test(f)) {
      // f ∈ J: conflict edges towards I \ J.
      for (FactId g : cg.neighbors(f)) {
        if (!j.test(g)) {
          graph.AddEdge(f, g);
        }
      }
    } else {
      // f ∈ I \ J: priority edges towards the J-facts it improves.
      for (FactId target : pr.Dominates(f)) {
        if (j.test(target) &&
            (universe == nullptr || universe->test(target))) {
          graph.AddEdge(f, target);
        }
      }
    }
  }
  return graph;
}

CheckResult CheckGlobalOptimalCcpPrimaryKey(const ConflictGraph& cg,
                                            const PriorityRelation& pr,
                                            const DynamicBitset& j) {
  const Instance& instance = cg.instance();
  if (!IsConsistent(cg, j)) {
    return CheckResult::NotOptimalNoWitness();  // not a repair
  }
  if (std::optional<FactId> extension = FindExtension(cg, j)) {
    DynamicBitset improvement = j;
    improvement.set(*extension);
    return CheckResult::NotOptimal(
        std::move(improvement),
        "J is not maximal: " + instance.FactToString(*extension) +
            " can be added without conflict");
  }

  Digraph graph = BuildCcpPrimaryKeyGraph(cg, pr, j);
  std::optional<std::vector<size_t>> cycle = graph.FindCycle();
  if (!cycle.has_value()) {
    return CheckResult::Optimal();
  }
  // Lemma 7.3: J' = (J \ {f_i}) ∪ {g_i} over the cycle's J / I\J nodes.
  DynamicBitset improvement = j;
  for (size_t node : *cycle) {
    FactId f = static_cast<FactId>(node);
    if (j.test(f)) {
      improvement.reset(f);
    } else {
      improvement.set(f);
    }
  }
  return CheckResult::NotOptimal(std::move(improvement),
                                 "cycle in G_{J, I\\J}");
}

}  // namespace prefrep
