#include "graph/digraph.h"

#include <algorithm>

namespace prefrep {

std::optional<std::vector<size_t>> Digraph::TopologicalOrder() const {
  size_t n = adjacency_.size();
  std::vector<uint32_t> indegree(n, 0);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v : adjacency_[u]) {
      ++indegree[v];
    }
  }
  std::vector<size_t> order;
  order.reserve(n);
  std::vector<size_t> queue;
  for (size_t u = 0; u < n; ++u) {
    if (indegree[u] == 0) {
      queue.push_back(u);
    }
  }
  while (!queue.empty()) {
    size_t u = queue.back();
    queue.pop_back();
    order.push_back(u);
    for (size_t v : adjacency_[u]) {
      if (--indegree[v] == 0) {
        queue.push_back(v);
      }
    }
  }
  if (order.size() != n) {
    return std::nullopt;
  }
  return order;
}

bool Digraph::IsAcyclic() const { return TopologicalOrder().has_value(); }

std::optional<std::vector<size_t>> Digraph::FindCycle() const {
  size_t n = adjacency_.size();
  // Iterative DFS with colors; on a back edge, unwind the explicit stack
  // to produce the cycle.
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(n, kWhite);
  std::vector<size_t> parent(n, SIZE_MAX);
  // Stack entries: (node, next-successor-index).
  std::vector<std::pair<size_t, size_t>> stack;
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) {
      continue;
    }
    color[root] = kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adjacency_[u].size()) {
        size_t v = adjacency_[u][next++];
        if (color[v] == kWhite) {
          color[v] = kGray;
          parent[v] = u;
          stack.emplace_back(v, 0);
        } else if (color[v] == kGray) {
          // Cycle: v → ... → u → v; walk parents from u back to v.
          std::vector<size_t> cycle;
          size_t w = u;
          cycle.push_back(v);
          while (w != v) {
            cycle.push_back(w);
            w = parent[w];
          }
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
      } else {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

std::vector<size_t> Digraph::StronglyConnectedComponents(
    size_t* num_components) const {
  size_t n = adjacency_.size();
  std::vector<size_t> comp(n, SIZE_MAX);
  std::vector<size_t> index(n, SIZE_MAX);
  std::vector<size_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> scc_stack;
  size_t next_index = 0;
  size_t next_comp = 0;

  // Iterative Tarjan.
  std::vector<std::pair<size_t, size_t>> call_stack;
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != SIZE_MAX) {
      continue;
    }
    call_stack.emplace_back(root, 0);
    while (!call_stack.empty()) {
      auto& [u, next] = call_stack.back();
      if (next == 0) {
        index[u] = low[u] = next_index++;
        scc_stack.push_back(u);
        on_stack[u] = true;
      }
      if (next < adjacency_[u].size()) {
        size_t v = adjacency_[u][next++];
        if (index[v] == SIZE_MAX) {
          call_stack.emplace_back(v, 0);
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], index[v]);
        }
      } else {
        if (low[u] == index[u]) {
          for (;;) {
            size_t w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == u) {
              break;
            }
          }
          ++next_comp;
        }
        size_t u_done = u;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          size_t parent = call_stack.back().first;
          low[parent] = std::min(low[parent], low[u_done]);
        }
      }
    }
  }
  if (num_components != nullptr) {
    *num_components = next_comp;
  }
  return comp;
}

}  // namespace prefrep
