// Copyright (c) prefrep contributors.
// Standalone driver for the tests/fuzz harnesses, used when the build
// is not linked against libFuzzer (any non-Clang toolchain).  It speaks
// the same CLI subset as libFuzzer so CTest smoke runs and CI invoke
// both builds identically:
//
//   <fuzzer> [corpus_dir ...] [-runs=N] [-max_total_time=SECONDS]
//            [-seed=N]
//
// Behavior: every regular file in every corpus directory (recursively)
// is replayed once; then up to N mutated inputs are generated from
// random corpus members with a deterministic xorshift PRNG and fed to
// LLVMFuzzerTestOneInput, stopping early when the time budget runs out.
// This is corpus replay plus shallow mutation — regression coverage and
// crash reproduction, not coverage-guided exploration; run the `fuzz`
// preset (clang + libFuzzer) for real fuzzing.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// xorshift64*: deterministic across platforms, no <random> state size
// ambiguity, good enough for byte mutations.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  size_t Below(size_t bound) {
    return bound == 0 ? 0 : static_cast<size_t>(Next() % bound);
  }

 private:
  uint64_t state_;
};

void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

// One random edit: flip, insert, erase, duplicate a chunk, or splice a
// chunk from another corpus member.
void Mutate(std::string* input, const std::vector<std::string>& corpus,
            Rng* rng) {
  switch (rng->Below(5)) {
    case 0: {  // flip a byte
      if (input->empty()) break;
      (*input)[rng->Below(input->size())] =
          static_cast<char>(rng->Next() & 0xff);
      break;
    }
    case 1: {  // insert a byte
      input->insert(input->begin() + rng->Below(input->size() + 1),
                    static_cast<char>(rng->Next() & 0xff));
      break;
    }
    case 2: {  // erase a byte
      if (input->empty()) break;
      input->erase(input->begin() + rng->Below(input->size()));
      break;
    }
    case 3: {  // duplicate a chunk in place
      if (input->empty()) break;
      size_t start = rng->Below(input->size());
      size_t len = 1 + rng->Below(input->size() - start);
      std::string chunk = input->substr(start, len);
      input->insert(rng->Below(input->size() + 1), chunk);
      break;
    }
    case 4: {  // splice a chunk from another corpus member
      if (corpus.empty()) break;
      const std::string& other = corpus[rng->Below(corpus.size())];
      if (other.empty()) break;
      size_t start = rng->Below(other.size());
      size_t len = 1 + rng->Below(other.size() - start);
      input->insert(rng->Below(input->size() + 1),
                    other.substr(start, len));
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 1000;
  uint64_t max_total_time_s = 0;  // 0: no time limit
  uint64_t seed = 1;
  std::vector<std::string> corpus_dirs;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "-max_total_time=", 16) == 0) {
      max_total_time_s = std::strtoull(arg + 16, nullptr, 10);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = std::strtoull(arg + 6, nullptr, 10);
    } else if (arg[0] == '-') {
      // Other libFuzzer flags are accepted and ignored so invocations
      // written for the fuzz preset also run here.
      std::fprintf(stderr, "[driver] ignoring flag %s\n", arg);
    } else {
      corpus_dirs.push_back(arg);
    }
  }

  std::vector<std::string> corpus;
  for (const std::string& dir : corpus_dirs) {
    std::error_code ec;
    std::filesystem::recursive_directory_iterator it(dir, ec);
    if (ec) {
      std::fprintf(stderr, "[driver] cannot open corpus dir %s: %s\n",
                   dir.c_str(), ec.message().c_str());
      return 2;
    }
    for (const auto& entry : it) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      corpus.push_back(buffer.str());
    }
  }

  for (const std::string& input : corpus) {
    RunOne(input);
  }
  std::fprintf(stderr, "[driver] replayed %zu corpus inputs\n",
               corpus.size());

  Rng rng(seed);
  const auto start = std::chrono::steady_clock::now();
  uint64_t executed = 0;
  for (; executed < runs; ++executed) {
    if (max_total_time_s != 0) {
      auto elapsed = std::chrono::steady_clock::now() - start;
      if (std::chrono::duration_cast<std::chrono::seconds>(elapsed).count() >=
          static_cast<int64_t>(max_total_time_s)) {
        break;
      }
    }
    std::string input =
        corpus.empty() ? std::string() : corpus[rng.Below(corpus.size())];
    size_t edits = 1 + rng.Below(8);
    for (size_t e = 0; e < edits; ++e) {
      Mutate(&input, corpus, &rng);
    }
    RunOne(input);
  }
  std::fprintf(stderr, "[driver] executed %llu mutated runs (seed %llu)\n",
               static_cast<unsigned long long>(executed),
               static_cast<unsigned long long>(seed));
  return 0;
}
