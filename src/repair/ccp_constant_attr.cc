// Polynomial ccp algorithm for the constant-attribute tractable case of
// Theorem 7.1 (§7.2.2): a single FD ∅ → B.
#include "repair/ccp_constant_attr.h"

#include <unordered_map>

#include "base/hash.h"
#include "repair/subinstance_ops.h"

namespace prefrep {

std::vector<std::vector<FactId>> ConsistentPartitions(
    const Instance& instance, RelId rel) {
  const Schema& schema = instance.schema();
  // ⟦R.∅⟧: the attributes forced constant by ∆|rel.
  AttrSet constant_attrs = schema.fds(rel).Closure(AttrSet());
  std::unordered_map<std::vector<ValueId>, std::vector<FactId>,
                     VectorHash<ValueId>>
      groups;
  std::vector<std::vector<ValueId>> order;  // deterministic output order
  for (FactId f : instance.facts_of(rel)) {
    const Fact& fact = instance.fact(f);
    std::vector<ValueId> key;
    constant_attrs.ForEach(
        [&](int a) { key.push_back(fact.values[a - 1]); });
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      order.push_back(key);
    }
    it->second.push_back(f);
  }
  std::vector<std::vector<FactId>> out;
  out.reserve(order.size());
  for (const std::vector<ValueId>& key : order) {
    out.push_back(std::move(groups[key]));
  }
  return out;
}

void ForEachConstantAttrRepair(
    const Instance& instance,
    const std::function<bool(const DynamicBitset&)>& fn) {
  const Schema& schema = instance.schema();
  std::vector<std::vector<std::vector<FactId>>> partitions;
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    std::vector<std::vector<FactId>> p = ConsistentPartitions(instance, rel);
    if (!p.empty()) {
      partitions.push_back(std::move(p));
    }
  }
  // Odometer over one partition choice per non-empty relation.
  std::vector<size_t> choice(partitions.size(), 0);
  for (;;) {
    DynamicBitset repair(instance.num_facts());
    for (size_t i = 0; i < partitions.size(); ++i) {
      for (FactId f : partitions[i][choice[i]]) {
        repair.set(f);
      }
    }
    if (!fn(repair)) {
      return;
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < choice.size()) {
      if (++choice[pos] < partitions[pos].size()) {
        break;
      }
      choice[pos] = 0;
      ++pos;
    }
    if (pos == choice.size()) {
      return;  // odometer wrapped: all combinations visited
    }
  }
}

CheckResult CheckGlobalOptimalCcpConstantAttr(const ConflictGraph& cg,
                                              const PriorityRelation& pr,
                                              const DynamicBitset& j) {
  if (!IsRepair(cg, j)) {
    // If J is consistent but not maximal, the extension is a witness.
    if (IsConsistent(cg, j)) {
      if (std::optional<FactId> ext = FindExtension(cg, j)) {
        DynamicBitset improvement = j;
        improvement.set(*ext);
        return CheckResult::NotOptimal(std::move(improvement),
                                       "J is not maximal");
      }
    }
    return CheckResult::NotOptimalNoWitness();
  }
  // If a global improvement exists, its maximal extension is also a global
  // improvement (J′ ⊆ J″ keeps J″\J ⊇ J′\J while shrinking J\J″), so it
  // suffices to scan the repairs.
  CheckResult result = CheckResult::Optimal();
  ForEachConstantAttrRepair(
      cg.instance(), [&](const DynamicBitset& candidate) {
        if (IsGlobalImprovement(cg, pr, j, candidate)) {
          result = CheckResult::NotOptimal(
              candidate, "an enumerated repair globally improves J");
          return false;
        }
        return true;
      });
  return result;
}

}  // namespace prefrep
