#include "gen/running_example.h"

#include "conflicts/conflicts.h"

namespace prefrep {

Schema RunningExampleSchema() {
  Schema schema;
  RelId book_loc = schema.MustAddRelation("BookLoc", 3);
  RelId lib_loc = schema.MustAddRelation("LibLoc", 2);
  schema.MustAddFd(book_loc, FD(AttrSet{1}, AttrSet{2}));  // δ1
  schema.MustAddFd(lib_loc, FD(AttrSet{1}, AttrSet{2}));   // δ2
  schema.MustAddFd(lib_loc, FD(AttrSet{2}, AttrSet{1}));   // δ3
  return schema;
}

PreferredRepairProblem RunningExampleProblem() {
  PreferredRepairProblem problem(RunningExampleSchema());
  Instance& inst = *problem.instance;

  // Figure 1, BookLoc(isbn, genre, lib).
  inst.MustAddFact("BookLoc", {"b1", "fiction", "lib1"}, "g1f1");
  inst.MustAddFact("BookLoc", {"b1", "fiction", "lib2"}, "g1f2");
  inst.MustAddFact("BookLoc", {"b1", "drama", "lib3"}, "f1d3");
  inst.MustAddFact("BookLoc", {"b2", "poetry", "lib1"}, "f2p1");
  inst.MustAddFact("BookLoc", {"b3", "horror", "lib2"}, "h3h2");

  // Figure 1, LibLoc(lib, loc).
  inst.MustAddFact("LibLoc", {"lib1", "almaden"}, "d1a");
  inst.MustAddFact("LibLoc", {"lib1", "edenvale"}, "d1e");
  inst.MustAddFact("LibLoc", {"lib2", "almaden"}, "g2a");
  inst.MustAddFact("LibLoc", {"lib2", "bascom"}, "f2b");
  inst.MustAddFact("LibLoc", {"lib3", "almaden"}, "f3a");
  inst.MustAddFact("LibLoc", {"lib3", "cambrian"}, "f3c");
  inst.MustAddFact("LibLoc", {"lib1", "bascom"}, "e1b");
  inst.MustAddFact("LibLoc", {"lib3", "bascom"}, "e3b");

  // Example 2.3: gy ≻ fx and ey ≻ dx for all conflicting pairs, where a
  // fact's grade is the leading letter of its label.
  problem.InitPriority();
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    for (FactId g = 0; g < inst.num_facts(); ++g) {
      if (f == g || !FactsConflict(inst, f, g)) {
        continue;
      }
      char higher = inst.label(g)[0];
      char lower = inst.label(f)[0];
      if ((higher == 'g' && lower == 'f') ||
          (higher == 'e' && lower == 'd')) {
        problem.priority->MustAdd(g, f);
      }
    }
  }
  problem.j = inst.EmptySubinstance();
  return problem;
}

DynamicBitset RunningExampleJ(const Instance& instance, int index) {
  switch (index) {
    case 1:
      return instance.SubinstanceByLabels(
          {"g1f1", "g1f2", "f2p1", "h3h2", "d1e", "f2b", "f3a"});
    case 2:
      return instance.SubinstanceByLabels(
          {"g1f1", "g1f2", "f2p1", "h3h2", "d1e", "g2a", "e3b"});
    case 3:
      // See the header note: the repair that is Pareto-optimal but not
      // globally-optimal (the printed J3 duplicates J1).
      return instance.SubinstanceByLabels(
          {"g1f1", "g1f2", "f2p1", "h3h2", "d1a", "f2b", "f3c"});
    case 4:
      return instance.SubinstanceByLabels(
          {"g1f1", "g1f2", "f2p1", "h3h2", "e1b", "g2a", "f3c"});
    default:
      PREFREP_FATAL("running-example J index must be 1..4");
  }
}

}  // namespace prefrep
