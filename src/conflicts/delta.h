// Copyright (c) prefrep contributors.
// Delta conflict detection for resident sessions (src/serve).  The
// one-shot ConflictGraph constructor buckets all facts per (relation,
// FD) by their lhs-projection, sub-bucketed by rhs-projection, and
// connects across sub-buckets.  A ConflictDeltaIndex keeps exactly
// those buckets *alive* across edits, so inserting a fact finds its
// δ-conflict neighbors in O(|∆| · bucket) instead of O(instance), and
// deleting a fact just unhooks it from its buckets.
//
// Bucketing uses the same key-materialization-free projection kernel
// as the batch join (conflicts/projection.h): buckets are keyed by the
// seeded 64-bit hash of the projected lhs columns, collision-verified
// by comparing rows word-parallel against a bucket representative —
// never by a materialized key vector.  A resident-session edit thus
// pays the same per-probe cost profile as a batch-build fact.
//
// The index tracks the live facts only: the serve layer tombstones
// deleted facts (ids are stable, the Instance never shrinks), and a
// tombstoned fact must neither conflict with anything nor be revived
// into the wrong bucket — reviving re-inserts it like a fresh fact.

#ifndef PREFREP_CONFLICTS_DELTA_H_
#define PREFREP_CONFLICTS_DELTA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "conflicts/projection.h"
#include "model/instance.h"

namespace prefrep {

/// Persistent per-(relation, FD) conflict buckets over the live facts
/// of one (growing) instance.
class ConflictDeltaIndex {
 public:
  /// Binds `instance` (must outlive the index) with no facts indexed.
  /// Callers Insert() every initially-live fact.
  explicit ConflictDeltaIndex(const Instance& instance);

  /// Indexes fact `f` and returns its δ-conflict neighbors among the
  /// facts indexed so far — sorted ascending, deduplicated (a pair may
  /// conflict under several FDs).  `f` must not be indexed already.
  std::vector<FactId> InsertAndCollect(FactId f);

  /// Unhooks fact `f` from every bucket.  No-op if `f` is not indexed.
  void Erase(FactId f);

  bool Contains(FactId f) const {
    return f < indexed_.size() && indexed_[f];
  }

 private:
  // One rhs-equivalence class inside an lhs bucket; members.front() is
  // the representative rows are compared against.  Invariant: never
  // empty (empty classes are erased immediately).
  struct RhsGroup {
    std::vector<FactId> members;
  };

  // One lhs bucket: the rhs classes of its facts.  Invariant: never
  // empty; the representative of the bucket's lhs projection is
  // subs.front().members.front().
  struct LhsGroup {
    std::vector<RhsGroup> subs;
  };

  // One (relation, FD) bucket table.  `by_hash` maps the seeded lhs
  // projection hash to the bucket ids carrying that hash (usually one;
  // more only on a 64-bit collision, disambiguated by row compare).
  // Buckets live in `groups`, recycled through `free_list` so ids stay
  // stable while the map only ever stores small integers.
  struct Table {
    FdProjection proj;
    std::unordered_map<uint64_t, std::vector<uint32_t>> by_hash;
    std::vector<LhsGroup> groups;
    std::vector<uint32_t> free_list;
  };

  /// The bucket of `row` in `table`, or UINT32_MAX when absent.
  uint32_t FindGroup(const Table& table, uint64_t hash,
                     const ValueId* row) const;

  const Instance* instance_;
  // tables_[rel][k] is the bucket table of the k-th nontrivial FD of
  // relation rel (trivial FDs never produce conflicts and are skipped).
  std::vector<std::vector<Table>> tables_;
  // indexed_[f]: whether fact f currently sits in the buckets.
  std::vector<bool> indexed_;
};

}  // namespace prefrep

#endif  // PREFREP_CONFLICTS_DELTA_H_
