// Fixture for tools/check_prefrep.py --selftest (never compiled): the
// same cross-block product as bad/checkpoint_product.cc written
// correctly — a governor checkpoint on every materializing iteration,
// mirroring the canonical pattern in src/repair/block_solver.cc.

#include <vector>

namespace prefrep {

struct Repair {};
struct Ctx {};
struct Governor {
  bool Checkpoint();
};
std::vector<Repair> AllOptimalRepairs(const Ctx& ctx, int block);
Repair Merge(const Repair& a, const Repair& b);

std::vector<Repair> CrossProduct(const Ctx& ctx, Governor* governor,
                                 int blocks) {
  std::vector<Repair> out(1);
  for (int b = 0; b < blocks; ++b) {
    std::vector<Repair> optimal = AllOptimalRepairs(ctx, b);
    std::vector<Repair> next;
    for (const Repair& prefix : out) {
      for (const Repair& choice : optimal) {
        if (!governor->Checkpoint()) {
          return {};
        }
        next.push_back(Merge(prefix, choice));
      }
    }
    out = std::move(next);
  }
  return out;
}

}  // namespace prefrep
