// Copyright (c) prefrep contributors.
// The unified preferred-repair checker.  It classifies the schema along
// the dichotomy of the selected priority mode (Theorem 3.1 for ordinary
// priorities, Theorem 7.1 for cross-conflict ones) and dispatches each
// check to the matching polynomial algorithm, falling back to the exact
// exponential baseline on the coNP-complete side.
//
// Ordinary mode additionally exploits Proposition 3.5: both conflicts
// and (conflict-bounded) priorities are intra-relation, so J is
// globally-optimal iff each restriction J|R is — the checker therefore
// routes relation by relation, and a schema that mixes tractable and
// hard relations only pays the exponential fallback on the hard ones.

#ifndef PREFREP_REPAIR_CHECKER_H_
#define PREFREP_REPAIR_CHECKER_H_

#include <memory>
#include <string>
#include <vector>

#include "classify/ccp_dichotomy.h"
#include "classify/dichotomy.h"
#include "repair/improvement.h"

namespace prefrep {

/// Configuration for the unified checker.
struct CheckerOptions {
  /// Which priority relations the problem admits; selects the dichotomy.
  PriorityMode mode = PriorityMode::kConflictOnly;
  /// Permit the exponential exact fallback on hard (coNP-complete)
  /// schemas.  When false, checks on hard schemas fail with
  /// FailedPrecondition instead of potentially running forever.
  bool allow_exponential = true;
};

/// Outcome of a dispatched check: the answer plus the route taken.
struct CheckOutcome {
  CheckResult result;
  /// One entry per algorithm invocation, e.g.
  /// "BookLoc: GRepCheck1FD ({1} -> {1, 2})".
  std::vector<std::string> route;
};

/// A checker bound to one prioritizing instance.  Builds the conflict
/// graph and the schema classifications once; individual checks are then
/// as cheap as the dispatched algorithm.
class RepairChecker {
 public:
  /// The priority must be validated for the mode in `options` (checked).
  RepairChecker(const Instance& instance, const PriorityRelation& priority,
                CheckerOptions options = {});

  const ConflictGraph& conflict_graph() const { return cg_; }
  const SchemaClassification& classification() const {
    return classification_;
  }
  const CcpSchemaClassification& ccp_classification() const {
    return ccp_classification_;
  }

  /// Whether every dispatched global check runs in polynomial time.
  bool SchemaIsTractable() const;

  /// Plain repair checking: is J a maximal consistent subinstance?
  bool IsRepair(const DynamicBitset& j) const;

  /// Globally-optimal repair checking (the paper's central problem).
  Result<CheckOutcome> CheckGloballyOptimal(const DynamicBitset& j) const;

  /// Pareto-optimal repair checking (PTIME for every schema and mode).
  CheckResult CheckParetoOptimal(const DynamicBitset& j) const;

  /// Completion-optimal repair checking (PTIME; ordinary mode only).
  CheckResult CheckCompletionOptimal(const DynamicBitset& j) const;

 private:
  Result<CheckOutcome> CheckConflictOnly(const DynamicBitset& j) const;
  Result<CheckOutcome> CheckCrossConflict(const DynamicBitset& j) const;

  const Instance& instance_;
  const PriorityRelation& priority_;
  CheckerOptions options_;
  ConflictGraph cg_;
  SchemaClassification classification_;
  CcpSchemaClassification ccp_classification_;
};

}  // namespace prefrep

#endif  // PREFREP_REPAIR_CHECKER_H_
