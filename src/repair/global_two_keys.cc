#include "repair/global_two_keys.h"

#include "conflicts/conflicts.h"
#include "repair/pareto.h"
#include "repair/subinstance_ops.h"

namespace prefrep {

namespace {

std::vector<ValueId> Project(const Fact& f, AttrSet attrs) {
  std::vector<ValueId> key;
  key.reserve(static_cast<size_t>(attrs.size()));
  attrs.ForEach([&](int a) { key.push_back(f.values[a - 1]); });
  return key;
}

std::string RenderProjection(const Instance& instance,
                             const std::vector<ValueId>& proj) {
  if (proj.size() == 1) {
    return instance.dict().Text(proj[0]);
  }
  std::string out = "(";
  for (size_t i = 0; i < proj.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += instance.dict().Text(proj[i]);
  }
  out += ")";
  return out;
}

// Node interner shared by the two sides of the bipartite graph.
class NodeTable {
 public:
  NodeTable(KeyedImprovementGraph* g, const Instance* instance)
      : g_(g), instance_(instance) {}

  size_t Get(const std::vector<ValueId>& proj, bool left) {
    auto& index = left ? left_index_ : right_index_;
    auto it = index.find(proj);
    if (it != index.end()) {
      return it->second;
    }
    size_t node = g_->graph.AddNode();
    g_->labels.push_back(RenderProjection(*instance_, proj));
    g_->is_left.push_back(left);
    g_->left_fact.push_back(kInvalidFactId);
    g_->right_fact.push_back(kInvalidFactId);
    index.emplace(proj, node);
    return node;
  }

 private:
  KeyedImprovementGraph* g_;
  const Instance* instance_;
  std::unordered_map<std::vector<ValueId>, size_t, VectorHash<ValueId>>
      left_index_;
  std::unordered_map<std::vector<ValueId>, size_t, VectorHash<ValueId>>
      right_index_;
};

}  // namespace

size_t KeyedImprovementGraph::FindNode(const std::string& label,
                                       bool left) const {
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label && is_left[i] == left) {
      return i;
    }
  }
  return SIZE_MAX;
}

bool KeyedImprovementGraph::HasEdge(const std::string& from_label,
                                    bool from_left,
                                    const std::string& to_label,
                                    bool to_left) const {
  size_t from = FindNode(from_label, from_left);
  size_t to = FindNode(to_label, to_left);
  if (from == SIZE_MAX || to == SIZE_MAX) {
    return false;
  }
  for (size_t v : graph.successors(from)) {
    if (v == to) {
      return true;
    }
  }
  return false;
}

KeyedImprovementGraph BuildImprovementGraph(
    const Instance& instance, const PriorityRelation& pr, RelId rel,
    AttrSet first_key, AttrSet second_key, const DynamicBitset& j,
    const DynamicBitset* universe) {
  KeyedImprovementGraph g;
  NodeTable nodes(&g, &instance);
  auto in_universe = [universe](FactId f) {
    return universe == nullptr || universe->test(f);
  };

  // Forward edges: one per J-fact, f[first] → f[second].
  for (FactId f : instance.facts_of(rel)) {
    if (!j.test(f) || !in_universe(f)) {
      continue;
    }
    const Fact& fact = instance.fact(f);
    size_t left = nodes.Get(Project(fact, first_key), /*left=*/true);
    size_t right = nodes.Get(Project(fact, second_key), /*left=*/false);
    PREFREP_CHECK_MSG(g.left_fact[left] == kInvalidFactId,
                      "two J-facts share a key projection: J violates the "
                      "first key");
    PREFREP_CHECK_MSG(g.right_fact[right] == kInvalidFactId,
                      "two J-facts share a key projection: J violates the "
                      "second key");
    g.left_fact[left] = f;
    g.right_fact[right] = f;
    g.graph.AddEdge(left, right);
  }

  // Backward edges: f′ ∈ I \ J preferred over a J-fact f that shares the
  // second-key projection contributes f′[second] → f′[first].
  for (FactId f_prime : instance.facts_of(rel)) {
    if (j.test(f_prime) || !in_universe(f_prime)) {
      continue;
    }
    const Fact& fp = instance.fact(f_prime);
    for (FactId f : pr.Dominates(f_prime)) {
      if (!j.test(f)) {
        continue;
      }
      const Fact& ff = instance.fact(f);
      if (ff.rel != rel || !FactsAgreeOn(fp, ff, second_key)) {
        continue;
      }
      size_t right = nodes.Get(Project(fp, second_key), /*left=*/false);
      size_t left = nodes.Get(Project(fp, first_key), /*left=*/true);
      auto key = std::make_pair(right, left);
      if (!g.backward_witness.count(key)) {
        g.backward_witness.emplace(key, f_prime);
        g.graph.AddEdge(right, left);
      }
      break;  // one backward edge per f′ suffices (same endpoints anyway)
    }
  }
  return g;
}

namespace {

// Turns a cycle of G^{first,second}_J into the global improvement
// (J \ F) ∪ F′ of Lemma 4.4.
DynamicBitset ImprovementFromCycle(const KeyedImprovementGraph& g,
                                   const std::vector<size_t>& cycle,
                                   const DynamicBitset& j) {
  DynamicBitset out = j;
  size_t k = cycle.size();
  for (size_t i = 0; i < k; ++i) {
    size_t u = cycle[i];
    size_t v = cycle[(i + 1) % k];
    if (g.is_left[u]) {
      // Forward edge u → v: remove the J-fact of this left node.
      PREFREP_CHECK_MSG(g.left_fact[u] != kInvalidFactId,
                        "a left node on a cycle must carry its J-fact");
      out.reset(g.left_fact[u]);
    } else {
      // Backward edge u → v: add its witness fact.
      auto it = g.backward_witness.find({u, v});
      PREFREP_CHECK_MSG(it != g.backward_witness.end(),
                        "cycle uses an unknown backward edge");
      out.set(it->second);
    }
  }
  return out;
}

}  // namespace

CheckResult CheckGlobalOptimalTwoKeys(const ConflictGraph& cg,
                                      const PriorityRelation& pr, RelId rel,
                                      AttrSet key1, AttrSet key2,
                                      const DynamicBitset& j,
                                      const DynamicBitset* universe) {
  const Instance& instance = cg.instance();
  auto in_universe = [universe](FactId f) {
    return universe == nullptr || universe->test(f);
  };

  // Reject inconsistent J (not a repair, hence not globally-optimal).
  for (FactId f : instance.facts_of(rel)) {
    if (!j.test(f) || !in_universe(f)) {
      continue;
    }
    for (FactId g : cg.neighbors(f)) {
      if (g > f && j.test(g)) {
        return CheckResult::NotOptimalNoWitness();
      }
    }
  }

  // Step 1 of GRepCheck2Keys: a Pareto improvement (this also catches a
  // non-maximal J).  Restrict attention to this relation: a Pareto
  // improvement through a fact of another relation is invisible to this
  // sub-problem and is handled by its own relation's check.
  for (FactId g : instance.facts_of(rel)) {
    if (j.test(g) || !in_universe(g)) {
      continue;
    }
    bool improves = true;
    for (FactId f : cg.neighbors(g)) {
      if (j.test(f) && !pr.Prefers(g, f)) {
        improves = false;
        break;
      }
    }
    if (improves) {
      DynamicBitset improvement = j;
      for (FactId f : cg.neighbors(g)) {
        if (j.test(f)) {
          improvement.reset(f);
        }
      }
      improvement.set(g);
      return CheckResult::NotOptimal(
          std::move(improvement),
          "Pareto improvement through " + instance.FactToString(g));
    }
  }

  // Step 2: cycles in G12_J and G21_J.
  KeyedImprovementGraph g12 =
      BuildImprovementGraph(instance, pr, rel, key1, key2, j, universe);
  if (auto cycle = g12.graph.FindCycle()) {
    return CheckResult::NotOptimal(ImprovementFromCycle(g12, *cycle, j),
                                   "cycle in G12_J");
  }
  KeyedImprovementGraph g21 =
      BuildImprovementGraph(instance, pr, rel, key2, key1, j, universe);
  if (auto cycle = g21.graph.FindCycle()) {
    return CheckResult::NotOptimal(ImprovementFromCycle(g21, *cycle, j),
                                   "cycle in G21_J");
  }
  return CheckResult::Optimal();
}

}  // namespace prefrep
