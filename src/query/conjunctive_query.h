// Copyright (c) prefrep contributors.
// Conjunctive queries over prefrep instances.  The paper's concluding
// remarks single out *consistent query answering under preferred
// repairs* as the next problem in the framework; this module provides
// the query substrate: CQ representation, parsing and evaluation, used
// by query/consistent_answers.h.
//
// A query has the form
//
//     Q(x, z) :- R(x, y), S(y, z, "c")
//
// with variables (identifiers) and quoted constants in atom arguments;
// the head lists the output variables (an empty head is a boolean
// query).

#ifndef PREFREP_QUERY_CONJUNCTIVE_QUERY_H_
#define PREFREP_QUERY_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "base/dynamic_bitset.h"
#include "base/status.h"
#include "model/instance.h"

namespace prefrep {

/// One argument of an atom: a variable or a constant.
struct QueryTerm {
  enum class Kind { kVariable, kConstant };
  Kind kind = Kind::kVariable;
  /// Variable index (into ConjunctiveQuery::variables) or constant text.
  size_t variable = 0;
  std::string constant;
};

/// One atom R(t1, ..., tk).
struct QueryAtom {
  std::string relation;
  std::vector<QueryTerm> terms;
};

/// A conjunctive query with named variables.
class ConjunctiveQuery {
 public:
  /// Parses "Q(x, y) :- R(x, z), S(z, y)".  Constants are quoted with
  /// double quotes.  Head variables must occur in the body (safety).
  [[nodiscard]] static Result<ConjunctiveQuery> Parse(std::string_view text);

  const std::vector<std::string>& variables() const { return variables_; }
  const std::vector<size_t>& head() const { return head_; }
  const std::vector<QueryAtom>& body() const { return body_; }
  bool IsBoolean() const { return head_.empty(); }

  /// Renders back to the parse syntax.
  std::string ToString() const;

  /// An output tuple: one constant per head variable.
  using AnswerTuple = std::vector<std::string>;

  /// Evaluates the query on the subinstance `sub` of `instance` by
  /// backtracking join (atom order as written; small queries only).
  /// Answers are deduplicated and sorted.
  std::vector<AnswerTuple> Evaluate(const Instance& instance,
                                    const DynamicBitset& sub) const;

  /// Boolean-query convenience: true iff some homomorphism exists.
  bool EvaluateBoolean(const Instance& instance,
                       const DynamicBitset& sub) const;

 private:
  std::vector<std::string> variables_;  // variable names by index
  std::vector<size_t> head_;            // head variable indices
  std::vector<QueryAtom> body_;
};

}  // namespace prefrep

#endif  // PREFREP_QUERY_CONJUNCTIVE_QUERY_H_
