#include "repair/construct.h"

#include <optional>
#include <unordered_set>

#include "base/random.h"
#include "cache/block_cache.h"
#include "repair/audit.h"
#include "repair/parallel_solver.h"

namespace prefrep {

namespace {

// Per-block tie-break stream: kRandom draws must not depend on how
// many blocks ran before this one (or on which thread ran it), so each
// block derives its own deterministic stream from (seed, block id).
// Rng expands seeds through splitmix64, so the xor-mix is enough.
Rng BlockRng(const ConstructOptions& options, size_t block_id) {
  return Rng(options.seed ^ ((block_id + 1) * 0x9e3779b97f4a7c15ULL));
}

// One greedy pass over `universe` (the whole instance, or one block):
// repeatedly keep a ≻-maximal remaining fact and drop its conflicts.
// Conflict-bounded priorities keep both dominators and conflicts inside
// the universe, so the pass never reads outside it.  Checkpoints on
// `governor` once per pick; nullopt when the budget fires (the partial
// bitset is discarded — it would not be a maximal repair).
std::optional<DynamicBitset> GreedyWithin(const ConflictGraph& cg,
                                          const PriorityRelation& pr,
                                          const DynamicBitset& universe,
                                          const ConstructOptions& options,
                                          Rng& rng,
                                          ResourceGovernor& governor) {
  size_t n = cg.num_facts();
  DynamicBitset remaining = universe;
  DynamicBitset out(n);
  size_t left = remaining.count();
  while (left > 0) {
    if (!governor.Checkpoint()) {
      return std::nullopt;
    }
    // The ≻-maximal remaining facts (acyclicity guarantees one exists).
    std::vector<FactId> candidates;
    remaining.ForEach([&](size_t f) {
      for (FactId g : pr.DominatedBy(static_cast<FactId>(f))) {
        if (remaining.test(g)) {
          return;
        }
      }
      candidates.push_back(static_cast<FactId>(f));
    });
    PREFREP_CHECK_MSG(!candidates.empty(),
                      "acyclic priority must leave a maximal fact");
    FactId pick = candidates.front();
    switch (options.tie_break) {
      case TieBreak::kFirstFact:
        break;  // candidates are in ascending id order already
      case TieBreak::kRandom:
        pick = candidates[rng.NextBounded(candidates.size())];
        break;
      case TieBreak::kMostDominating: {
        size_t best = 0;
        for (FactId c : candidates) {
          size_t score = pr.Dominates(c).size();
          if (score > best) {
            best = score;
            pick = c;
          }
        }
        break;
      }
    }
    out.set(pick);
    remaining.reset(pick);
    --left;
    for (FactId u : cg.neighbors(pick)) {
      if (remaining.test(u)) {
        remaining.reset(u);
        --left;
      }
    }
  }
  return out;
}

// GreedyWithin on one block through the block-solve cache.  The greedy
// output is a function of the block's canonical structure, the
// tie-break rule, and — for kRandom — the block's derived tie-break
// stream seed (BlockRng), so exactly those salt the key: two identical
// blocks share a kFirstFact/kMostDominating entry but keep separate
// kRandom entries, because their streams genuinely differ.  Partial
// (budget-aborted) passes are never cached; the serve rule is the
// shared MayServeCachedEntry (no admission step to mirror — the greedy
// pass has no AdmitBlock).
std::optional<DynamicBitset> CachedGreedyBlock(const ProblemContext& cx,
                                               const Block& bb,
                                               const ConstructOptions& options,
                                               ResourceGovernor& governor) {
  const ConflictGraph& cg = cx.conflict_graph();
  const PriorityRelation& pr = cx.priority();
  const auto fresh_greedy = [&](ResourceGovernor& gov) {
    Rng rng = BlockRng(options, bb.id);
    return GreedyWithin(cg, pr, bb.facts, options, rng, gov);
  };
  BlockSolveCache* cache = cx.block_cache();
  if (cache == nullptr || !cx.priority_block_local()) {
    return fresh_greedy(governor);
  }
  const uint64_t stream_salt =
      options.tie_break == TieBreak::kRandom
          ? options.seed ^ ((bb.id + 1) * 0x9e3779b97f4a7c15ULL)
          : 0;
  const BlockFingerprint base = ComputeBlockFingerprint(cx, bb);
  const BlockFingerprint key =
      DeriveOpKey(base, BlockCacheOp::kConstruct,
                  static_cast<uint64_t>(options.tie_break), stream_salt);
  if (std::optional<BlockSolveCache::Entry> entry = cache->Lookup(key);
      entry.has_value() && MayServeCachedEntry(governor, *entry)) {
    cache->NoteHit();
    ReplayServedNodes(governor, *entry);
    DynamicBitset out =
        UncanonicalizeSubset(bb, entry->repair_local, cg.num_facts());
    if (audit::Enabled()) {
      std::optional<DynamicBitset> expect =
          fresh_greedy(ResourceGovernor::Unlimited());
      PREFREP_CHECK_MSG(expect.has_value() && *expect == out,
                        "block-solve cache hit diverges from a fresh greedy "
                        "pass (fingerprint collision or canonicalization "
                        "bug)");
    }
    return out;
  }
  cache->NoteMiss();
  const uint64_t nodes_before = governor.nodes_spent();
  std::optional<DynamicBitset> out = fresh_greedy(governor);
  if (!out.has_value() || governor.exhausted()) {
    return out;  // aborted pass: never cached
  }
  BlockSolveCache::Entry entry;
  entry.repair_local = CanonicalizeSubset(bb, *out);
  entry.nodes = governor.nodes_spent() - nodes_before;
  entry.nodes_valid = !governor.unlimited();
  cache->Store(base, key, std::move(entry));
  return out;
}

}  // namespace

DynamicBitset ConstructGloballyOptimalRepair(
    const ConflictGraph& cg, const PriorityRelation& pr,
    const ConstructOptions& options) {
  PREFREP_CHECK_MSG(pr.IsConflictBounded(),
                    "construction relies on completion semantics, which "
                    "require conflict-bounded priorities (§2.3)");
  Rng rng(options.seed);
  DynamicBitset universe(cg.num_facts());
  universe.set_all();
  DynamicBitset out = *GreedyWithin(cg, pr, universe, options, rng,
                                    ResourceGovernor::Unlimited());
  audit::CheckConstructedRepair(cg, pr, out,
                                "ConstructGloballyOptimalRepair");
  return out;
}

DynamicBitset ConstructGloballyOptimalRepair(const ProblemContext& ctx,
                                             const ConstructOptions& options) {
  const ConflictGraph& cg = ctx.conflict_graph();
  const PriorityRelation& pr = ctx.priority();
  PREFREP_CHECK_MSG(pr.IsConflictBounded(),
                    "construction relies on completion semantics, which "
                    "require conflict-bounded priorities (§2.3)");
  DynamicBitset out = ctx.blocks().free_facts();
  std::vector<size_t> order(ctx.blocks().num_blocks());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  // Ungoverned by contract (like the (cg, pr) overload), so the greedy
  // pass runs against the unlimited governor even inside workers; every
  // block's pass is deterministic, so worker payloads are always
  // adopted as-is.
  ParallelBlockSession<DynamicBitset> session(
      ctx, std::move(order),
      [&](const ProblemContext& cx, const Block& bb) {
        return *CachedGreedyBlock(cx, bb, options,
                                  ResourceGovernor::Unlimited());
      },
      [](const DynamicBitset&) { return true; });
  for (const Block& b : ctx.blocks().blocks()) {
    out |= session.Next(b);
  }
  if (audit::Enabled()) {
    // A resident context's instance may carry tombstoned facts outside
    // the solving universe (free facts ∪ blocks); audit within it.
    DynamicBitset universe = ctx.blocks().free_facts();
    for (const Block& b : ctx.blocks().blocks()) {
      universe |= b.facts;
    }
    audit::CheckConstructedRepair(
        cg, pr, out, "ConstructGloballyOptimalRepair (per-block)",
        &universe);
  }
  return out;
}

Result<DynamicBitset> TryConstructGloballyOptimalRepair(
    const ProblemContext& ctx, const ConstructOptions& options) {
  const ConflictGraph& cg = ctx.conflict_graph();
  const PriorityRelation& pr = ctx.priority();
  PREFREP_CHECK_MSG(pr.IsConflictBounded(),
                    "construction relies on completion semantics, which "
                    "require conflict-bounded priorities (§2.3)");
  ResourceGovernor& governor = ctx.governor();
  DynamicBitset out = ctx.blocks().free_facts();
  std::vector<size_t> order(ctx.blocks().num_blocks());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  ParallelBlockSession<std::optional<DynamicBitset>> session(
      ctx, std::move(order),
      [&](const ProblemContext& cx, const Block& bb) {
        return CachedGreedyBlock(cx, bb, options, cx.governor());
      },
      [](const std::optional<DynamicBitset>& r) { return r.has_value(); });
  for (const Block& b : ctx.blocks().blocks()) {
    std::optional<DynamicBitset> block_repair = session.Next(b);
    if (!block_repair.has_value()) {
      Status status = governor.ToStatus();
      PREFREP_CHECK_MSG(!status.ok(),
                        "greedy pass aborted without an exhausted governor");
      return status;
    }
    out |= *block_repair;
  }
  if (audit::Enabled()) {
    DynamicBitset universe = ctx.blocks().free_facts();
    for (const Block& b : ctx.blocks().blocks()) {
      universe |= b.facts;
    }
    audit::CheckConstructedRepair(
        cg, pr, out, "TryConstructGloballyOptimalRepair (per-block)",
        &universe);
  }
  return out;
}

void SampleOptimalRepairs(
    const ConflictGraph& cg, const PriorityRelation& pr, size_t attempts,
    const std::function<bool(const DynamicBitset&)>& fn) {
  std::unordered_set<DynamicBitset, DynamicBitsetHash> seen;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    ConstructOptions options;
    options.tie_break = TieBreak::kRandom;
    options.seed = attempt * 0x9e3779b97f4a7c15ULL + 1;
    DynamicBitset repair = ConstructGloballyOptimalRepair(cg, pr, options);
    if (seen.insert(repair).second && !fn(repair)) {
      return;
    }
  }
}

}  // namespace prefrep
