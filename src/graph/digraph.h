// Copyright (c) prefrep contributors.
// A minimal directed-graph utility: adjacency lists over dense node ids,
// cycle detection and extraction, topological order, and Tarjan SCC.
// Used by the improvement-graph constructions of §4.2 and §7.2.1.

#ifndef PREFREP_GRAPH_DIGRAPH_H_
#define PREFREP_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/macros.h"

namespace prefrep {

/// A directed graph over nodes 0..n-1.
class Digraph {
 public:
  explicit Digraph(size_t num_nodes = 0) : adjacency_(num_nodes) {}

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Appends a new node; returns its id.
  size_t AddNode() {
    adjacency_.emplace_back();
    return adjacency_.size() - 1;
  }

  /// Adds the edge u → v (parallel edges are kept; they do not affect any
  /// of the queries below).
  void AddEdge(size_t u, size_t v) {
    PREFREP_CHECK(u < adjacency_.size() && v < adjacency_.size());
    adjacency_[u].push_back(v);
    ++num_edges_;
  }

  const std::vector<size_t>& successors(size_t u) const {
    PREFREP_CHECK(u < adjacency_.size());
    return adjacency_[u];
  }

  /// True iff the graph has no directed cycle.
  bool IsAcyclic() const;

  /// Returns some directed cycle as a node sequence v0 → v1 → ... → v0
  /// (first node not repeated at the end), or nullopt if acyclic.
  std::optional<std::vector<size_t>> FindCycle() const;

  /// A topological order, or nullopt if the graph has a cycle.
  std::optional<std::vector<size_t>> TopologicalOrder() const;

  /// Strongly connected components (Tarjan, iterative); returns for each
  /// node its component id, components numbered in reverse topological
  /// order of the condensation.
  std::vector<size_t> StronglyConnectedComponents(size_t* num_components)
      const;

 private:
  std::vector<std::vector<size_t>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace prefrep

#endif  // PREFREP_GRAPH_DIGRAPH_H_
