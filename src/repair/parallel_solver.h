// Copyright (c) prefrep contributors.
// ParallelBlockSession — parallel per-block solving with a
// deterministic, serial-equivalent merge.
//
// Blocks are independent (Proposition 3.5 of the paper; docs/algorithms.md,
// "Why blocks are sound"), so per-block checking, counting, enumeration
// and construction can run
// on a work-stealing pool (base/thread_pool.h).  The hard part is not
// the fan-out but the contract: verdicts, witnesses, BoundedCount and
// DegradationReport must be byte-identical to the serial pass at any
// thread count, including under a ResourceGovernor that fires mid-call.
// The session achieves that with speculate-then-replay:
//
//   1. SPECULATE.  Every block is submitted to the pool,
//      largest-cost-first (cost = block size, the exponent of the
//      2^|b| fallback — the same quantity the block-size histogram of
//      conflicts/stats.h aggregates).  Each worker runs the UNCHANGED
//      per-block routine against a private governor whose node cap is
//      the shared budget's remaining node-space headroom, so no worker
//      can run past the point where any serial schedule would have
//      fired, and whose deadline is anchored at the shared governor's
//      start.
//   2. MERGE, in the caller's serial block order.  A worker result is
//      adopted verbatim iff the worker completed it, it is a usable
//      payload, and replaying its node count after the blocks merged
//      before it stays strictly below the budget's firing index — i.e.
//      iff the serial pass would have completed the block identically.
//      Adopted node counts are committed to the shared governor
//      (ResourceGovernor::CommitReplayNodes), keeping its nodes_spent()
//      exactly on the serial trajectory.  Any other block is simply
//      RERUN on the caller's thread against the shared governor, which
//      reproduces the serial behaviour bit for bit: where inside the
//      block the budget fires, the exhaustion cause string, admission
//      refusals, partial counts.  Once the shared governor is
//      exhausted, reruns of exponential blocks are refused immediately
//      (AdmitBlock) and tractable blocks stay exact — the same
//      degradation ladder as the serial loop.
//   3. CANCEL cooperatively.  A definite "J is not optimal" in block k
//      makes every block after k (in merge order) unreachable for the
//      serial pass, and shared-governor exhaustion makes exponential
//      results after the exhaustion point unadoptable; both lower a
//      shared cancellation bound that worker governors poll at their
//      checkpoints (ResourceGovernor::ArmCancellation).  Abandoning the
//      session (early return, destructor) cancels everything that the
//      caller did not consume.
//
// The one dimension that cannot be deterministic is the wall-clock
// deadline — it is nondeterministic in the serial pass already.  Under
// a deadline the merge stays sound (adopted results are exact, the rest
// degrades exactly like a serial pass whose clock fired at merge time);
// see docs/parallelism.md for the full guarantee.

#ifndef PREFREP_REPAIR_PARALLEL_SOLVER_H_
#define PREFREP_REPAIR_PARALLEL_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "base/thread_annotations.h"
#include "base/thread_pool.h"
#include "model/context.h"

namespace prefrep {

namespace parallel_internal {

/// Submission order for the pool: positions of `order` sorted by block
/// size descending (ties by position, so scheduling is deterministic).
std::vector<size_t> LargestFirstSchedule(const BlockDecomposition& blocks,
                                         const std::vector<size_t>& order);

/// Worker threads a session may use for `num_blocks` blocks under the
/// context's parallelism knob; 0 or 1 means "stay serial".
size_t SessionThreads(const ProblemContext& ctx, size_t num_blocks);

}  // namespace parallel_internal

/// One parallel pass over the blocks listed in `order` (block ids, in
/// the caller's serial iteration order).  The caller then consumes the
/// per-block payloads by calling Next(block) for a prefix of `order` —
/// stopping early (e.g. at a refuting block) is fine and cancels the
/// rest.  `run` computes one block's payload and must route every
/// governor interaction through the ProblemContext it is given (it runs
/// once per block, against a worker context or the caller's context —
/// never both for the same final payload).  `valid` says whether a
/// payload is adoptable at all (e.g. a known verdict, a non-zero
/// count); invalid payloads are recomputed serially so the shared
/// governor records the authoritative refusal/exhaustion.  `refutes`
/// (optional) marks payloads that make the serial pass return
/// immediately, enabling the kNo short-circuit.
template <typename Payload>
class ParallelBlockSession {
 public:
  using RunFn = std::function<Payload(const ProblemContext&, const Block&)>;
  using ValidFn = std::function<bool(const Payload&)>;
  using RefutesFn = std::function<bool(const Payload&)>;

  ParallelBlockSession(const ProblemContext& ctx, std::vector<size_t> order,
                       RunFn run, ValidFn valid, RefutesFn refutes = nullptr)
      : parent_(ctx),
        order_(std::move(order)),
        run_(std::move(run)),
        valid_(std::move(valid)),
        refutes_(std::move(refutes)) {
    ResourceGovernor& shared = parent_.governor();
    firing_ = shared.NodeFiringIndex();
    const size_t threads =
        parallel_internal::SessionThreads(parent_, order_.size());
    serial_ = threads <= 1 || shared.exhausted();
    uint64_t worker_cap = 0;
    if (!serial_ && firing_ != 0) {
      const uint64_t spent = shared.nodes_spent();
      if (firing_ <= spent + 1) {
        serial_ = true;  // no node-space headroom left to speculate in
      } else {
        // Workers fire at local node worker_cap + 1 = the earliest
        // global index at which any serial schedule could fire.
        worker_cap = firing_ - spent - 1;
      }
    }
    if (serial_) {
      return;
    }
    parent_.Prime();
    worker_budget_.deadline_ms = shared.budget().deadline_ms;
    worker_budget_.max_nodes = worker_cap;
    worker_budget_.max_block = shared.budget().max_block;
    start_ = shared.start();
    slots_ = std::vector<Slot>(order_.size());
    pool_ = std::make_unique<ThreadPool>(threads);
    for (size_t pos :
         parallel_internal::LargestFirstSchedule(parent_.blocks(), order_)) {
      pool_->Submit([this, pos] { RunTask(pos); });
    }
  }

  /// Cancels and joins whatever the caller did not consume.
  ~ParallelBlockSession() {
    if (pool_ != nullptr) {
      LowerCancelBound(next_pos_);
      pool_.reset();  // joins in-flight tasks, discards unstarted ones
    }
  }

  PREFREP_DISALLOW_COPY(ParallelBlockSession);

  /// The serial-equivalent payload for `b`, which must be the next
  /// block of `order`.
  Payload Next(const Block& b) {
    PREFREP_CHECK_MSG(next_pos_ < order_.size() && order_[next_pos_] == b.id,
                      "parallel session consumed out of its block order");
    const size_t pos = next_pos_++;
    if (serial_) {
      return run_(parent_, b);
    }
    Slot& slot = slots_[pos];
    {
      MutexLock lock(mutex_);
      done_cv_.Wait(mutex_, [&slot] { return slot.done; });
    }
    ResourceGovernor& shared = parent_.governor();
    if (slot.completed && !shared.exhausted() && valid_(slot.payload) &&
        (firing_ == 0 || shared.nodes_spent() + slot.nodes < firing_)) {
      shared.CommitReplayNodes(slot.nodes);
      return std::move(slot.payload);
    }
    // Serial-order rerun against the shared governor: reproduces what
    // the serial pass does with this block bit for bit — where inside
    // it the budget fires, the cause string, admission refusals.
    Payload payload = run_(parent_, b);
    if (shared.exhausted()) {
      // Exponential results after the exhaustion point can never be
      // adopted; release those workers at their next checkpoint.
      LowerCancelBound(pos + 1);
    }
    return payload;
  }

 private:
  struct Slot {
    Payload payload{};
    uint64_t nodes = 0;
    bool completed = false;
    bool done = false;  // written under mutex_, waited on via done_cv_
  };

  void RunTask(size_t pos) {
    Slot& slot = slots_[pos];
    ResourceGovernor local(worker_budget_, start_);
    local.ArmCancellation(&cancel_bound_, pos);
    ProblemContext view = parent_.WorkerView(&local);
    slot.payload = run_(view, parent_.blocks().block(order_[pos]));
    slot.nodes = local.nodes_spent();
    slot.completed = !local.exhausted();
    if (slot.completed && refutes_ != nullptr && refutes_(slot.payload)) {
      // The serial pass returns at the first refuting block; everything
      // after it (in merge order) is unreachable.
      LowerCancelBound(pos + 1);
    }
    {
      MutexLock lock(mutex_);
      slot.done = true;
    }
    done_cv_.NotifyAll();
  }

  void LowerCancelBound(uint64_t bound) {
    uint64_t current = cancel_bound_.load(std::memory_order_relaxed);
    while (bound < current &&
           !cancel_bound_.compare_exchange_weak(current, bound,
                                                std::memory_order_relaxed)) {
    }
  }

  const ProblemContext& parent_;
  std::vector<size_t> order_;
  RunFn run_;
  ValidFn valid_;
  RefutesFn refutes_;
  bool serial_ = true;
  uint64_t firing_ = 0;
  ResourceBudget worker_budget_;
  std::chrono::steady_clock::time_point start_{};
  size_t next_pos_ = 0;
  std::atomic<uint64_t> cancel_bound_{std::numeric_limits<uint64_t>::max()};
  // Slot ownership protocol (finer than one annotation can say): a
  // slot's payload/nodes/completed are written exclusively by the one
  // worker running that block, then published by setting `done` under
  // mutex_; the consumer reads them only after observing done under
  // mutex_.  The mutex therefore guards the done flags and orders the
  // payload hand-off (TSAN-verified; per-slot fields cannot carry a
  // PREFREP_GUARDED_BY because each is guarded only from publication
  // on).
  std::vector<Slot> slots_;
  Mutex mutex_;
  CondVar done_cv_;
  // Last member: destroyed (joined) first, while everything the tasks
  // reference is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace prefrep

#endif  // PREFREP_REPAIR_PARALLEL_SOLVER_H_
