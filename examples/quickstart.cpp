// Quickstart: the paper's running example, end to end.
//
// Builds the BookLoc/LibLoc instance of Figure 1 with the priority of
// Example 2.3, then walks through the notions of the paper: conflicts,
// repairs, Pareto/global/completion optimality, the dichotomy
// classification, and witness extraction for a non-optimal repair.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "classify/dichotomy.h"
#include "gen/running_example.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"

using namespace prefrep;

int main() {
  // 1. The inconsistent prioritizing instance (I, ≻) of the paper.
  PreferredRepairProblem problem = RunningExampleProblem();
  const Instance& inst = *problem.instance;
  std::printf("schema:\n%s\n", inst.schema().ToString().c_str());
  std::printf("I has %zu facts; the priority has %zu edges\n\n",
              inst.num_facts(), problem.priority->num_edges());

  // 2. Which side of the dichotomy of Theorem 3.1 is this schema on?
  SchemaClassification classification = ClassifySchema(inst.schema());
  for (RelId r = 0; r < inst.schema().num_relations(); ++r) {
    std::printf("%-8s: %s (%s)\n",
                inst.schema().relation_name(r).c_str(),
                TractableKindName(classification.relations[r].kind),
                classification.relations[r].explanation.c_str());
  }
  std::printf("=> globally-optimal repair checking is %s here\n\n",
              classification.tractable ? "polynomial" : "coNP-complete");

  // 3. Check the four candidate repairs of Example 2.5.
  RepairChecker checker(inst, *problem.priority);
  for (int i = 1; i <= 4; ++i) {
    DynamicBitset j = RunningExampleJ(inst, i);
    bool pareto = checker.CheckParetoOptimal(j).optimal;
    bool completion = checker.CheckCompletionOptimal(j).optimal;
    auto global = checker.CheckGloballyOptimal(j);
    std::printf("J%d = %s\n", i, inst.SubinstanceToString(j).c_str());
    std::printf("    repair=%s pareto=%s global=%s completion=%s\n",
                checker.IsRepair(j) ? "yes" : "no", pareto ? "yes" : "no",
                global.ok() && global->result.optimal ? "yes" : "no",
                completion ? "yes" : "no");
    if (global.ok() && !global->result.optimal &&
        global->result.witness.has_value()) {
      std::printf("    improvement: %s\n        (%s)\n",
                  inst.SubinstanceToString(
                          global->result.witness->improvement)
                      .c_str(),
                  global->result.witness->explanation.c_str());
    }
    for (const std::string& step : global.ok() ? global->route
                                               : std::vector<std::string>{}) {
      std::printf("    route: %s\n", step.c_str());
    }
  }

  // 4. Count the repairs under each preferred-repair semantics.
  const ConflictGraph& cg = checker.conflict_graph();
  std::printf("\nrepairs: %llu total, %zu globally-optimal, %zu "
              "Pareto-optimal, %zu completion-optimal\n",
              static_cast<unsigned long long>(CountRepairs(cg)),
              AllOptimalRepairs(cg, *problem.priority,
                                RepairSemantics::kGlobal)
                  .size(),
              AllOptimalRepairs(cg, *problem.priority,
                                RepairSemantics::kPareto)
                  .size(),
              AllOptimalRepairs(cg, *problem.priority,
                                RepairSemantics::kCompletion)
                  .size());
  return 0;
}
