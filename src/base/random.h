// Copyright (c) prefrep contributors.
// Deterministic pseudo-random generation for tests, generators and
// benchmarks.  We use our own xoshiro256** engine so that workloads are
// reproducible across platforms and standard-library versions.

#ifndef PREFREP_BASE_RANDOM_H_
#define PREFREP_BASE_RANDOM_H_

#include <cstdint>
#include <vector>

#include "base/macros.h"

namespace prefrep {

/// xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
/// Deterministic given the seed, identical across platforms.
class Rng {
 public:
  /// Seeds the engine; any 64-bit seed is acceptable (expanded through
  /// splitmix64).
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be positive.  Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Returns a uniformly random subset of {0, ..., n-1} of size k.
  std::vector<size_t> Sample(size_t n, size_t k);

  /// Zipf-distributed value in [0, n) with exponent s (s = 0 is uniform).
  /// Computed by inverse-CDF over precomputable weights; O(n) per call, use
  /// ZipfTable for hot loops.
  size_t NextZipf(size_t n, double s);

 private:
  uint64_t s_[4];
};

/// Precomputed Zipf sampler: O(log n) per draw.
class ZipfTable {
 public:
  /// Builds the CDF table for universe size n and exponent s >= 0.
  ZipfTable(size_t n, double s);

  /// Draws one Zipf-distributed value in [0, n).
  size_t Sample(Rng* rng) const;

  size_t universe_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace prefrep

#endif  // PREFREP_BASE_RANDOM_H_
