// Tests for the resource governor: budgets fire where they should,
// degraded verdicts are three-valued and never wrong, cancellation
// unwinds from any enumeration state without torn witnesses, and the
// bounded counting/construction/query layers keep their degradation
// contracts.  Run under the asan preset this file doubles as the
// clean-unwinding (no leak, no torn state) check.

#include <gtest/gtest.h>

#include "base/governor.h"
#include "gen/hard_workloads.h"
#include "query/consistent_answers.h"
#include "reductions/hard_schemas.h"
#include "repair/block_solver.h"
#include "repair/checker.h"
#include "repair/construct.h"
#include "repair/counting.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::ProblemSpec;

TEST(SaturatingMulTest, SaturatesExactlyAtTheBoundary) {
  bool saturated = false;
  EXPECT_EQ(SaturatingMulU64(3, 5, &saturated), 15u);
  EXPECT_FALSE(saturated);
  // 2^32 * 2^31 = 2^63: representable, not saturated.
  EXPECT_EQ(SaturatingMulU64(uint64_t{1} << 32, uint64_t{1} << 31, &saturated),
            uint64_t{1} << 63);
  EXPECT_FALSE(saturated);
  // 2^32 * 2^32 = 2^64: one past the top.
  EXPECT_EQ(SaturatingMulU64(uint64_t{1} << 32, uint64_t{1} << 32, &saturated),
            UINT64_MAX);
  EXPECT_TRUE(saturated);
  saturated = false;
  EXPECT_EQ(SaturatingMulU64(UINT64_MAX, 2, &saturated), UINT64_MAX);
  EXPECT_TRUE(saturated);
  // Zero never saturates, even against UINT64_MAX.
  saturated = false;
  EXPECT_EQ(SaturatingMulU64(0, UINT64_MAX, &saturated), 0u);
  EXPECT_FALSE(saturated);
}

TEST(GovernorTest, UnlimitedGovernorPassesEverythingAndCountsNothing) {
  ResourceGovernor& g = ResourceGovernor::Unlimited();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(g.Checkpoint());
  }
  EXPECT_EQ(g.nodes_spent(), 0u);  // fast path performs no writes
  EXPECT_FALSE(g.exhausted());
  EXPECT_TRUE(g.AdmitBlock(10));
  EXPECT_TRUE(g.ToStatus().ok());
}

TEST(GovernorTest, NodeBudgetFiresAtTheConfiguredCheckpointAndIsSticky) {
  ResourceBudget budget;
  budget.max_nodes = 5;
  ResourceGovernor g(budget);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(g.Checkpoint()) << "checkpoint " << i;
  }
  EXPECT_FALSE(g.Checkpoint());  // 6th node exceeds the budget
  EXPECT_TRUE(g.exhausted());
  EXPECT_EQ(g.cause(), ExhaustCause::kNodeBudget);
  EXPECT_FALSE(g.Checkpoint());  // sticky
  EXPECT_FALSE(g.AdmitBlock(2));  // no new blocks after exhaustion
  EXPECT_EQ(g.ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, FaultInjectionFiresAtTheNthCheckpoint) {
  ResourceGovernor g{ResourceBudget{}};
  g.ForceExhaustAtCheckpointForTesting(3);
  EXPECT_TRUE(g.Checkpoint());
  EXPECT_TRUE(g.Checkpoint());
  EXPECT_FALSE(g.Checkpoint());
  EXPECT_EQ(g.cause(), ExhaustCause::kFaultInjection);
  EXPECT_EQ(g.nodes_spent(), 3u);
}

TEST(GovernorTest, OversizedBlockIsRefusedEvenWithoutAConfiguredBudget) {
  // The 64-fact hard cap guards the uint64 subset/count arithmetic: a
  // 1 << 64 would be undefined behaviour, so such blocks must be
  // refused up front, budget or no budget.
  ResourceGovernor g{ResourceBudget{}};
  EXPECT_TRUE(g.AdmitBlock(ResourceGovernor::kMaxExhaustiveBlockFacts));
  EXPECT_FALSE(g.AdmitBlock(ResourceGovernor::kMaxExhaustiveBlockFacts + 1));
  EXPECT_TRUE(g.degraded());
  EXPECT_FALSE(g.exhausted());  // refusal is not sticky
  EXPECT_EQ(g.blocks_refused(), 1u);
  EXPECT_TRUE(g.AdmitBlock(4));  // later blocks still admitted
  EXPECT_EQ(g.ToStatus().code(), StatusCode::kResourceExhausted);
}

// A 64-fact single-block clique reaching the solver must come back
// kUnknown instead of entering the 2^64 enumeration.
TEST(GovernorTest, SixtyFourFactBlockComesBackUnknownFromTheSolver) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  for (int i = 0; i < 64; ++i) {
    spec.facts.push_back("f" + std::to_string(i) + ": k, v" +
                         std::to_string(i));
  }
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ProblemContext ctx(*p.instance, *p.priority);
  ASSERT_EQ(ctx.blocks().num_blocks(), 1u);
  const Block& b = ctx.blocks().blocks().front();
  ASSERT_EQ(b.size(), 64u);
  DynamicBitset j = testing_util::Sub(*p.instance, {"f0"});
  CheckResult result = ExhaustiveBlockSolver().CheckBlock(ctx, b, j);
  EXPECT_FALSE(result.known());
  EXPECT_FALSE(result.witness.has_value());
  EXPECT_NE(result.unknown_reason.find("admissible size"), std::string::npos)
      << result.unknown_reason;
  // The abandoned enumeration also yields the unambiguous sentinels of
  // the other solver entry points: no repairs, count zero.
  EXPECT_TRUE(ExhaustiveBlockSolver().OptimalBlockRepairs(ctx, b).empty());
  EXPECT_EQ(ExhaustiveBlockSolver().CountBlock(ctx, b), 0u);
}

TEST(ClusteredWorkloadTest, IsOneBlockWithTheClosedFormRepairCount) {
  PreferredRepairProblem p = MakeHardClusteredWorkload(5, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  EXPECT_EQ(ctx.conflict_graph().num_facts(), 15u);
  EXPECT_EQ(ctx.blocks().num_blocks(), 1u);  // the spine merges cliques
  // (s-1)^(c-1) * (s-1+c) = 2^4 * 7 = 112.
  EXPECT_EQ(CountRepairs(ctx.conflict_graph()), 112u);
  EXPECT_TRUE(p.priority->Validate(PriorityMode::kConflictOnly).ok());
  EXPECT_TRUE(ctx.priority_block_local());
  EXPECT_TRUE(IsRepair(ctx.conflict_graph(), p.j));
  // J (all member-1 facts) is globally optimal: nothing dominates them.
  EXPECT_TRUE(
      ExhaustiveCheckGlobalOptimal(ctx.conflict_graph(), *p.priority, p.j)
          .optimal);
}

TEST(GovernorTest, NodeBudgetInterruptsTheExhaustiveCheckMidBlock) {
  PreferredRepairProblem p = MakeHardClusteredWorkload(13, 3);  // 39 facts
  ConflictGraph cg(*p.instance);
  ResourceBudget budget;
  budget.max_nodes = 100;  // far below the 61440-repair scan
  ResourceGovernor g(budget);
  CheckResult result = ExhaustiveCheckGlobalOptimal(cg, *p.priority, p.j, g);
  EXPECT_FALSE(result.known());
  EXPECT_FALSE(result.witness.has_value());
  EXPECT_TRUE(g.exhausted());
  EXPECT_EQ(g.cause(), ExhaustCause::kNodeBudget);
  // Work stops within one interval of the budget, not at 61440 nodes.
  EXPECT_LE(g.nodes_spent(), budget.max_nodes + 1);
}

TEST(GovernorTest, DeadlineFiresMidBlockAndReportsUnknown) {
  // 20 cliques of 3 = 60 facts and ~11.5M repairs: an ungoverned scan
  // takes seconds, so a short deadline reliably fires mid-enumeration.
  PreferredRepairProblem p = MakeHardClusteredWorkload(20, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  ResourceBudget budget;
  budget.deadline_ms = 25;
  ResourceGovernor g(budget);
  ctx.set_governor(&g);
  RepairChecker checker(ctx);
  auto outcome = checker.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.verdict, CheckResult::Verdict::kUnknown);
  EXPECT_EQ(g.cause(), ExhaustCause::kDeadline);
  EXPECT_TRUE(outcome->degradation.Degraded());
  ASSERT_EQ(outcome->degradation.abandoned.size(), 1u);
  EXPECT_EQ(outcome->degradation.abandoned.front().block_size, 60u);
  EXPECT_EQ(g.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernorTest, AmpleBudgetGivesTheExactVerdictAndNoDegradation) {
  PreferredRepairProblem p = MakeHardClusteredWorkload(8, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  ResourceBudget budget;
  budget.deadline_ms = 60000;
  budget.max_nodes = 50'000'000;
  ResourceGovernor g(budget);
  ctx.set_governor(&g);
  RepairChecker checker(ctx);
  auto outcome = checker.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.verdict, CheckResult::Verdict::kYes);
  EXPECT_TRUE(outcome->result.optimal);
  EXPECT_FALSE(g.degraded());
  EXPECT_FALSE(outcome->degradation.Degraded());
  EXPECT_EQ(outcome->degradation.blocks_exact,
            outcome->degradation.blocks_total);
  EXPECT_GT(g.nodes_spent(), 0u);  // the budget was really being counted
}

// Two hard S1 blocks of different sizes under a max_block budget: the
// small block is still answered exactly, the large one is reported
// unknown, and the overall verdict degrades to kUnknown only when no
// admitted block refutes J.
class TwoBlockBudgetTest : public ::testing::Test {
 protected:
  // Clique of `size` facts sharing attributes 1 and 2 (12→3 conflicts);
  // distinct attribute-1 values keep the two cliques in separate blocks.
  static void AddClique(PreferredRepairProblem& p, const std::string& key,
                        size_t size) {
    const std::string relation = p.instance->schema().relation_name(0);
    for (size_t j = 0; j < size; ++j) {
      p.instance->MustAddFact(relation,
                              {key, "m", key + "c" + std::to_string(j)},
                              key + ":f" + std::to_string(j));
    }
  }

  static PreferredRepairProblem MakeTwoCliques(size_t first, size_t second) {
    PreferredRepairProblem p(HardSchema(1));
    AddClique(p, "a", first);
    AddClique(p, "b", second);
    p.InitPriority();
    // Fact 1 of each clique dominates its clique-mates.
    for (const std::string& key : {std::string("a"), std::string("b")}) {
      size_t size = key == "a" ? first : second;
      for (size_t j = 0; j < size; ++j) {
        if (j == 1) {
          continue;
        }
        PREFREP_CHECK(p.priority
                          ->AddByLabels(key + ":f1",
                                        key + ":f" + std::to_string(j))
                          .ok());
      }
    }
    return p;
  }
};

TEST_F(TwoBlockBudgetTest, AdmittedBlocksStayExactRefusedOnesGoUnknown) {
  PreferredRepairProblem p = MakeTwoCliques(3, 6);
  ProblemContext ctx(*p.instance, *p.priority);
  ASSERT_EQ(ctx.blocks().num_blocks(), 2u);
  ResourceBudget budget;
  budget.max_block = 4;  // admits the 3-clique, refuses the 6-clique
  ResourceGovernor g(budget);
  ctx.set_governor(&g);
  RepairChecker checker(ctx);

  // J optimal on the small block, unknowable on the refused one.
  p.j = testing_util::Sub(*p.instance, {"a:f1", "b:f1"});
  auto outcome = checker.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.verdict, CheckResult::Verdict::kUnknown);
  EXPECT_EQ(outcome->degradation.blocks_total, 2u);
  EXPECT_EQ(outcome->degradation.blocks_exact, 1u);
  EXPECT_EQ(outcome->degradation.blocks_abandoned, 1u);
  ASSERT_EQ(outcome->degradation.abandoned.size(), 1u);
  EXPECT_EQ(outcome->degradation.abandoned.front().block_size, 6u);

  // A dominated pick in the *admitted* block is a definite kNo with a
  // valid witness, refused block or not.
  ResourceGovernor g2(budget);
  ctx.set_governor(&g2);
  p.j = testing_util::Sub(*p.instance, {"a:f0", "b:f1"});
  outcome = checker.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.verdict, CheckResult::Verdict::kNo);
  EXPECT_EQ(testing_util::VerifyWitness(ctx.conflict_graph(), *p.priority,
                                        p.j, outcome->result),
            "");
  ctx.set_governor(nullptr);
}

TEST_F(TwoBlockBudgetTest, DefiniteNoInALaterBlockSurvivesAnEarlierRefusal) {
  // The refused block comes first in block order; the dispatcher must
  // keep going and still find the definite refutation behind it.
  PreferredRepairProblem p = MakeTwoCliques(6, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  ResourceBudget budget;
  budget.max_block = 4;
  ResourceGovernor g(budget);
  ctx.set_governor(&g);
  RepairChecker checker(ctx);
  p.j = testing_util::Sub(*p.instance, {"a:f1", "b:f0"});  // bad small block
  auto outcome = checker.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.verdict, CheckResult::Verdict::kNo);
  EXPECT_FALSE(outcome->result.optimal);
}

TEST(GovernorTest, BoundedCountIsExactUngovernedAndALowerBoundGoverned) {
  PreferredRepairProblem p = MakeHardClusteredWorkload(6, 3);
  {
    ProblemContext ctx(*p.instance, *p.priority);
    // Ungoverned: (s-1)^(c-1) * (s-1+c) = 2^5 * 8 repairs in the one
    // block; the globally-optimal one is exactly J (member 1 is the
    // unique ≻-maximal choice per clique, the spine adds none).
    BoundedCount all =
        CountOptimalRepairsBounded(ctx, RepairSemantics::kGlobal);
    EXPECT_TRUE(all.exact);
    EXPECT_FALSE(all.saturated);
    EXPECT_EQ(all.unknown_blocks, 0u);
    EXPECT_EQ(all.lower_bound, 1u);
    EXPECT_EQ(CountRepairs(ctx.conflict_graph()), 256u);
  }
  {
    ProblemContext ctx(*p.instance, *p.priority);
    ResourceBudget budget;
    budget.max_nodes = 50;
    ResourceGovernor g(budget);
    ctx.set_governor(&g);
    BoundedCount cut =
        CountOptimalRepairsBounded(ctx, RepairSemantics::kGlobal);
    EXPECT_FALSE(cut.exact);
    EXPECT_EQ(cut.unknown_blocks, 1u);
    EXPECT_GE(cut.lower_bound, 1u);  // the verified floor
  }
}

TEST(GovernorTest, CountProductSaturatesAtSixtyFourDoublingBlocks) {
  // 64 independent unordered conflict pairs: every repair is globally
  // optimal, so the per-block product is 2^64 — one past uint64.  With
  // 63 pairs the count 2^63 is still exact.
  for (size_t pairs : {size_t{63}, size_t{64}}) {
    ProblemSpec spec;
    spec.arity = 2;
    spec.fds = {"1 -> 2"};
    for (size_t i = 0; i < pairs; ++i) {
      spec.facts.push_back("a" + std::to_string(i) + ": k" +
                           std::to_string(i) + ", 1");
      spec.facts.push_back("b" + std::to_string(i) + ": k" +
                           std::to_string(i) + ", 2");
    }
    PreferredRepairProblem p = testing_util::MakeProblem(spec);
    ProblemContext ctx(*p.instance, *p.priority);
    BoundedCount count =
        CountOptimalRepairsBounded(ctx, RepairSemantics::kGlobal);
    if (pairs == 63) {
      EXPECT_TRUE(count.exact);
      EXPECT_FALSE(count.saturated);
      EXPECT_EQ(count.lower_bound, uint64_t{1} << 63);
    } else {
      EXPECT_FALSE(count.exact);
      EXPECT_TRUE(count.saturated);
      EXPECT_EQ(count.lower_bound, UINT64_MAX);
    }
    EXPECT_EQ(count.unknown_blocks, 0u);  // saturation is not abandonment
  }
}

// Cancellation can strike at *any* enumeration state; whatever comes
// back must be a definite verdict that matches the unlimited run, or
// kUnknown with no witness attached.  Under the asan preset this sweep
// is also the no-leak / no-torn-bitset check.
TEST(GovernorTest, FaultSweepNeverProducesATornOrWrongResult) {
  PreferredRepairProblem p = MakeHardClusteredWorkload(4, 3);
  ConflictGraph cg(*p.instance);
  const CheckResult unlimited =
      ExhaustiveCheckGlobalOptimal(cg, *p.priority, p.j);
  ASSERT_TRUE(unlimited.optimal);
  DynamicBitset bad = p.j;
  bad.reset(p.instance->FindLabel("q0:f1"));
  bad.set(p.instance->FindLabel("q0:f0"));
  for (uint64_t n = 1; n <= 40; ++n) {
    ResourceGovernor g{ResourceBudget{}};
    g.ForceExhaustAtCheckpointForTesting(n);
    CheckResult result = ExhaustiveCheckGlobalOptimal(cg, *p.priority, p.j, g);
    if (result.known()) {
      EXPECT_TRUE(result.optimal) << "fault at " << n;
    } else {
      EXPECT_FALSE(result.witness.has_value()) << "fault at " << n;
      EXPECT_FALSE(result.unknown_reason.empty()) << "fault at " << n;
    }

    ResourceGovernor g2{ResourceBudget{}};
    g2.ForceExhaustAtCheckpointForTesting(n);
    CheckResult refuted =
        ExhaustiveCheckGlobalOptimal(cg, *p.priority, bad, g2);
    if (refuted.known()) {
      // A definite kNo found before the fault stands, and its witness
      // must be a real improvement, not a torn bitset.
      EXPECT_FALSE(refuted.optimal) << "fault at " << n;
      EXPECT_EQ(testing_util::VerifyWitness(cg, *p.priority, bad, refuted), "")
          << "fault at " << n;
    } else {
      EXPECT_FALSE(refuted.witness.has_value()) << "fault at " << n;
    }
  }
}

TEST(GovernorTest, TryConstructDegradesToStatusInsteadOfATornRepair) {
  PreferredRepairProblem p = MakeHardClusteredWorkload(5, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  DynamicBitset ungoverned = ConstructGloballyOptimalRepair(ctx);

  ResourceGovernor g{ResourceBudget{}};
  g.ForceExhaustAtCheckpointForTesting(2);
  ctx.set_governor(&g);
  auto cut = TryConstructGloballyOptimalRepair(ctx);
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kResourceExhausted);

  ResourceBudget ample;
  ample.max_nodes = 1'000'000;
  ResourceGovernor g2(ample);
  ctx.set_governor(&g2);
  auto full = TryConstructGloballyOptimalRepair(ctx);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, ungoverned);
  ctx.set_governor(nullptr);
}

TEST(GovernorTest, BoundedQueriesDegradeToUnknownNotToAWrongAnswer) {
  PreferredRepairProblem p = MakeHardClusteredWorkload(4, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  // Every member-1 fact has attribute 2 = "m"; Q asks for a kept fact
  // of clique 0.  J = all member 1s is the unique globally-optimal
  // repair, so Q is certainly true under kGlobal.
  auto q = ConjunctiveQuery::Parse("Q() :- R1(\"k0\", \"m\", x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(CertainlyTrueBounded(ctx, *q, AnswerSemantics::kGlobal),
            Trilean::kTrue);
  EXPECT_EQ(PossiblyTrueBounded(ctx, *q, AnswerSemantics::kGlobal),
            Trilean::kTrue);

  ResourceBudget budget;
  budget.max_nodes = 5;
  ResourceGovernor g(budget);
  ctx.set_governor(&g);
  EXPECT_EQ(CertainlyTrueBounded(ctx, *q, AnswerSemantics::kGlobal),
            Trilean::kUnknown);
  auto bounded = ConsistentAnswersBounded(ctx, *q, AnswerSemantics::kGlobal);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kResourceExhausted);
  ctx.set_governor(nullptr);
}

TEST(GovernorTest, AllRepairsQueriesKeepDefiniteEarlyAnswers) {
  // Under kAllRepairs semantics each enumerated repair is complete, so
  // a refutation/confirmation found before exhaustion is definite.
  PreferredRepairProblem p = MakeHardClusteredWorkload(4, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  // Every fact has attribute 2 = "m" and repairs are non-empty, so this
  // holds in every repair: the first enumerated repair confirms
  // PossiblyTrue, but certifying CertainlyTrue needs the full scan.
  auto everywhere = ConjunctiveQuery::Parse("Q() :- R1(x, \"m\", y)");
  ASSERT_TRUE(everywhere.ok());
  // No fact matches, so the first repair already refutes CertainlyTrue.
  auto nowhere = ConjunctiveQuery::Parse("Q() :- R1(x, \"nope\", y)");
  ASSERT_TRUE(nowhere.ok());
  ResourceBudget budget;
  budget.max_nodes = 20;  // reaches the first repairs, not the full scan
  ResourceGovernor g(budget);
  ctx.set_governor(&g);
  EXPECT_EQ(PossiblyTrueBounded(ctx, *everywhere, AnswerSemantics::kAllRepairs),
            Trilean::kTrue);
  ResourceGovernor g2(budget);
  ctx.set_governor(&g2);
  EXPECT_EQ(CertainlyTrueBounded(ctx, *nowhere, AnswerSemantics::kAllRepairs),
            Trilean::kFalse);
  // Certifying the universal query under the same tiny budget: unknown.
  ResourceGovernor g3(budget);
  ctx.set_governor(&g3);
  EXPECT_EQ(
      CertainlyTrueBounded(ctx, *everywhere, AnswerSemantics::kAllRepairs),
      Trilean::kUnknown);
  ctx.set_governor(nullptr);
}

TEST(GovernorTest, DegradationReportPrintsTheAbandonedBlocks) {
  DegradationReport report;
  report.blocks_total = 3;
  report.blocks_exact = 2;
  report.blocks_abandoned = 1;
  report.nodes_spent = 1234;
  report.cause = "node budget of 1000 exhausted";
  report.abandoned.push_back(BlockDegradation{7, 40, 1000, "node budget"});
  EXPECT_TRUE(report.Degraded());
  std::string text = report.ToString();
  EXPECT_NE(text.find("2/3"), std::string::npos) << text;
  EXPECT_NE(text.find("block #7"), std::string::npos) << text;
  EXPECT_NE(text.find("40"), std::string::npos) << text;
}

}  // namespace
}  // namespace prefrep
