#include "serve/mutable_instance.h"

#include <utility>

namespace prefrep {

MutableInstance::MutableInstance(const PreferredRepairProblem& problem) {
  schema_ = std::make_unique<Schema>(*problem.schema);
  instance_ = std::make_unique<Instance>(schema_.get());
  const Instance& src = *problem.instance;
  for (FactId f = 0; f < src.num_facts(); ++f) {
    const Fact fact = src.fact(f);
    std::vector<std::string> constants;
    constants.reserve(fact.values.size());
    for (ValueId v : fact.values) {
      constants.emplace_back(src.dict().Text(v));
    }
    const std::string label = src.label(f).empty()
                                  ? "f" + std::to_string(f)
                                  : src.label(f);
    Result<FactId> added = instance_->AddFact(fact.rel, constants, label);
    PREFREP_CHECK_MSG(added.ok() && *added == f,
                      "deep copy must preserve fact ids");
  }
  live_ = instance_->AllFacts();
}

Result<MutableInstance::InsertOutcome> MutableInstance::Insert(
    std::string_view relation_name, const std::vector<std::string>& constants,
    std::string_view label) {
  if (label.empty()) {
    return Status::InvalidArgument("insert requires a fact label");
  }
  RelId rel = schema_->FindRelation(relation_name);
  if (rel == kInvalidRelId) {
    return Status::NotFound("unknown relation '" +
                            std::string(relation_name) + "'");
  }
  if (constants.size() != static_cast<size_t>(schema_->arity(rel))) {
    return Status::InvalidArgument(
        "arity mismatch for relation '" + std::string(relation_name) + "'");
  }
  // Probe by content first: the append-only Instance would otherwise
  // happily relabel an existing fact, and labels must stay permanent
  // for the rebuild contract.
  std::vector<ValueId> values;
  values.reserve(constants.size());
  for (const std::string& c : constants) {
    values.push_back(instance_->dict().Intern(c));
  }
  FactId existing = instance_->FindRow(rel, values.data(), values.size());
  if (existing != kInvalidFactId) {
    if (instance_->label(existing) != label) {
      return Status::AlreadyExists(
          "fact content already present as '" +
          instance_->label(existing) + "'");
    }
    InsertOutcome out;
    out.id = existing;
    if (live_.test(existing)) {
      out.already_live = true;
    } else {
      live_.set(existing);
      out.revived = true;
      ++generation_;
    }
    return out;
  }
  if (instance_->FindLabel(label) != kInvalidFactId) {
    return Status::AlreadyExists("label '" + std::string(label) +
                                 "' already names a different fact");
  }
  Result<FactId> added =
      instance_->AddFactValues(rel, std::move(values), label);
  if (!added.ok()) {
    return added.status();
  }
  live_.Resize(instance_->num_facts());
  live_.set(*added);
  ++generation_;
  InsertOutcome out;
  out.id = *added;
  return out;
}

Result<FactId> MutableInstance::Tombstone(std::string_view label) {
  Result<FactId> id = ResolveLive(label);
  if (!id.ok()) {
    return id;
  }
  live_.reset(*id);
  ++generation_;
  return id;
}

Result<FactId> MutableInstance::ResolveLive(std::string_view label) const {
  FactId id = instance_->FindLabel(label);
  if (id == kInvalidFactId) {
    return Status::NotFound("unknown fact label '" + std::string(label) +
                            "'");
  }
  if (!live_.test(id)) {
    return Status::NotFound("fact '" + std::string(label) +
                            "' has been deleted");
  }
  return id;
}

std::string MutableInstance::SerializeLive(const PriorityRelation* priority,
                                           const DynamicBitset* j) const {
  // Mirrors io/text_format's ProblemToText, restricted to live facts.
  // Every fact is labeled by construction, so no labels are synthesized
  // here — the rebuilt (id-compacted) instance prints the same names.
  std::string out;
  for (RelId r = 0; r < schema_->num_relations(); ++r) {
    out += "relation " + schema_->relation_name(r) + " " +
           std::to_string(schema_->arity(r)) + "\n";
    for (const FD& fd : schema_->fds(r).fds()) {
      out += "fd " + schema_->relation_name(r) + ": " + fd.ToString() + "\n";
    }
  }
  live_.ForEach([&](size_t f) {
    const Fact fact = instance_->fact(static_cast<FactId>(f));
    out += "fact " + instance_->label(static_cast<FactId>(f)) + " " +
           schema_->relation_name(fact.rel) + "(";
    for (size_t i = 0; i < fact.values.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += instance_->dict().Text(fact.values[i]);
    }
    out += ")\n";
  });
  if (priority != nullptr) {
    for (const auto& [higher, lower] : priority->edges()) {
      out += "prefer " + instance_->label(higher) + " > " +
             instance_->label(lower) + "\n";
    }
  }
  if (j != nullptr && j->any()) {
    out += "j";
    j->ForEach([&](size_t f) {
      out += " " + instance_->label(static_cast<FactId>(f));
    });
    out += "\n";
  }
  return out;
}

}  // namespace prefrep
