// Renders the improvement structure of Definition 2.4 as a human-readable
// explanation of why a candidate repair is not optimal.
#include "repair/explain.h"

#include "repair/subinstance_ops.h"

namespace prefrep {

std::string ExplainImprovement(const ConflictGraph& cg,
                               const PriorityRelation& pr,
                               const DynamicBitset& j,
                               const DynamicBitset& improvement) {
  const Instance& inst = cg.instance();
  if (!IsGlobalImprovement(cg, pr, j, improvement)) {
    return "(not a global improvement of J)\n";
  }
  DynamicBitset removed = j - improvement;
  DynamicBitset added = improvement - j;
  std::string out;
  if (removed.none()) {
    out += "J is not maximal; the following facts can be added:\n";
  } else {
    out += "every removed fact is outranked by an added one:\n";
    removed.ForEach([&](size_t f_prime) {
      // Find one added improver (one exists by validity).
      FactId improver = kInvalidFactId;
      for (FactId f : pr.DominatedBy(static_cast<FactId>(f_prime))) {
        if (added.test(f)) {
          improver = f;
          break;
        }
      }
      out += "  - drop " + inst.FactToString(static_cast<FactId>(f_prime)) +
             "  (outranked by " + inst.FactToString(improver) + ")\n";
    });
  }
  added.ForEach([&](size_t f) {
    out += "  + add  " + inst.FactToString(static_cast<FactId>(f)) + "\n";
  });
  if (IsParetoImprovement(cg, pr, j, improvement)) {
    out += "this is also a Pareto improvement\n";
  }
  return out;
}

std::string ExplainOutcome(const ConflictGraph& cg,
                           const PriorityRelation& pr,
                           const DynamicBitset& j,
                           const CheckResult& result) {
  const Instance& inst = cg.instance();
  if (result.optimal) {
    return "J is a globally-optimal repair: no exchange of facts with "
           "preferred facts can improve it.\n";
  }
  if (result.witness.has_value()) {
    std::string out = "J is not globally optimal";
    if (!result.witness->explanation.empty()) {
      out += " (" + result.witness->explanation + ")";
    }
    out += ":\n";
    out += ExplainImprovement(cg, pr, j, result.witness->improvement);
    return out;
  }
  // No witness: J is not a repair at all.
  if (auto violation = FindViolation(inst, j)) {
    return "J is inconsistent: " + inst.FactToString(violation->first) +
           " conflicts with " + inst.FactToString(violation->second) + "\n";
  }
  return "J is not globally optimal.\n";
}

}  // namespace prefrep
