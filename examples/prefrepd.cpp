// prefrepd — a resident preferred-repair server over one problem file.
//
// Loads a problem in the text format of src/io/text_format.h, builds a
// long-lived SessionContext (src/serve/session.h), and then executes
// session ops (src/io/ops_format.h) one per line:
//
//   prefrepd <file> [options]             # ops from stdin (REPL / pipe)
//   prefrepd <file> --script <ops-file>   # ops from a batch script
//
// Each op's reply is printed to stdout, followed by a blank line so
// multi-line replies (witnesses, degradation summaries, answer lists)
// stay framed.  An op error prints "error: <message>" and the loop
// continues — a serving process does not die on one bad request.
//
// Options:
//   --threads N       per-block solver threads (0 = hardware, 1 = serial)
//   --cache[=N]       block-solve cache (N = capacity in entries)
//   --deadline-ms N / --max-nodes N / --max-block N
//                     initial per-request budget (see the budget op)
//
// Exit codes: 0 = served, 2 = usage, 3 = input error.
//
// The edit → query → edit loop is where the serve layer earns its keep:
// every edit patches the conflict graph and block decomposition in
// place and invalidates only the touched blocks' cache entries, so a
// query after an edit re-solves the edited block and replays everything
// else (bench/bench_serve.cc measures the gap against per-request
// rebuilding).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "io/ops_format.h"
#include "io/text_format.h"
#include "serve/session.h"

using namespace prefrep;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: prefrepd <file> [--script <ops-file>] [--threads N] "
      "[--cache[=N]]\n"
      "                [--deadline-ms N] [--max-nodes N] [--max-block N]\n"
      "ops (one per line, '#' comments): insert, delete, prefer, jset, "
      "jadd, jdel,\n"
      "  budget, check, count, construct, cqa, stats  (see "
      "docs/serving.md)\n");
  return 2;
}

// Executes one raw input line against the session; returns the reply
// (or the error text).  Blank/comment lines yield an empty reply.
std::string ServeLine(SessionContext& session, const std::string& raw) {
  std::string line = raw;
  const size_t hash = line.find('#');
  if (hash != std::string::npos) {
    line.resize(hash);
  }
  const size_t start = line.find_first_not_of(" \t\r\n");
  if (start == std::string::npos) {
    return "";
  }
  Result<SessionOp> op = ParseSessionOp(line);
  if (!op.ok()) {
    return "error: " + op.status().message();
  }
  Result<std::string> reply = session.Execute(*op);
  if (!reply.ok()) {
    return "error: " + reply.status().message();
  }
  return *reply;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const char* problem_path = argv[1];
  const char* script_path = nullptr;
  SessionOptions options;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--script") == 0 && i + 1 < argc) {
      script_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      options.cache_capacity = BlockSolveCache::kDefaultCapacity;
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      options.cache_capacity = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.budget.deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc) {
      options.budget.max_nodes = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-block") == 0 && i + 1 < argc) {
      options.budget.max_block = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      return Usage();
    }
  }
  Result<PreferredRepairProblem> problem = ParseProblemFile(problem_path);
  if (!problem.ok()) {
    std::fprintf(stderr, "error: %s\n", problem.status().ToString().c_str());
    return 3;
  }
  Result<std::unique_ptr<SessionContext>> session =
      SessionContext::Create(*problem, options);
  if (!session.ok()) {
    std::fprintf(stderr, "error: %s\n", session.status().ToString().c_str());
    return 3;
  }

  std::istream* in = &std::cin;
  std::ifstream script;
  if (script_path != nullptr) {
    script.open(script_path);
    if (!script.is_open()) {
      std::fprintf(stderr, "error: cannot open script '%s'\n", script_path);
      return 3;
    }
    in = &script;
  }
  std::string line;
  while (std::getline(*in, line)) {
    const std::string reply = ServeLine(**session, line);
    if (!reply.empty()) {
      std::printf("%s\n\n", reply.c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
