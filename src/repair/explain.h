// Copyright (c) prefrep contributors.
// Human-readable explanations of check outcomes.  A boolean verdict is
// rarely enough for a cleaning tool: when J is rejected, the user wants
// to see which facts must leave, which enter, and which preference
// justifies every eviction (the structure of Definition 2.4).

#ifndef PREFREP_REPAIR_EXPLAIN_H_
#define PREFREP_REPAIR_EXPLAIN_H_

#include <string>

#include "repair/improvement.h"

namespace prefrep {

/// Renders a multi-line explanation of why `improvement` is a global
/// improvement of `j`: the removed facts each paired with a preferred
/// added fact, the added facts, and whether the improvement is also a
/// Pareto improvement.  Requires the improvement to be valid (checked;
/// returns a diagnostic line otherwise).
std::string ExplainImprovement(const ConflictGraph& cg,
                               const PriorityRelation& pr,
                               const DynamicBitset& j,
                               const DynamicBitset& improvement);

/// Renders a full outcome: optimal → a one-line confirmation; not
/// optimal with a witness → ExplainImprovement of the witness; not
/// optimal without a witness → the reason J is not even a repair.
std::string ExplainOutcome(const ConflictGraph& cg,
                           const PriorityRelation& pr,
                           const DynamicBitset& j,
                           const CheckResult& result);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_EXPLAIN_H_
