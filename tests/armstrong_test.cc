// Tests for Armstrong relations, and their use as an instance-level
// oracle for FD implication: the built instance satisfies exactly the
// FDs that ∆ implies, so the whole implication machinery gets verified
// against definitional pairwise satisfaction.

#include <gtest/gtest.h>

#include "base/random.h"
#include "fd/armstrong.h"

namespace prefrep {
namespace {

TEST(ArmstrongTest, ClosedSetsBasics) {
  // ∆ = {1→2}: closed sets are those not containing 1 without 2.
  FDSet fds(3, {FD(AttrSet{1}, AttrSet{2})});
  std::vector<AttrSet> closed = ClosedAttributeSets(fds);
  // Of the 8 subsets, {1}, {1,3} are not closed.
  EXPECT_EQ(closed.size(), 6u);
  for (const AttrSet& c : closed) {
    EXPECT_EQ(fds.Closure(c), c);
  }
  // ∅ and the full set are always closed.
  EXPECT_EQ(closed.front(), AttrSet());
  EXPECT_EQ(closed.back(), (AttrSet{1, 2, 3}));
}

TEST(ArmstrongTest, EmptyFdSetMakesEverythingClosed) {
  FDSet fds(3);
  EXPECT_EQ(ClosedAttributeSets(fds).size(), 8u);
}

TEST(ArmstrongTest, ConstantAttributeShrinksClosedSets) {
  // ∅→1: closed sets must contain 1.
  FDSet fds(2, {FD(AttrSet(), AttrSet{1})});
  std::vector<AttrSet> closed = ClosedAttributeSets(fds);
  for (const AttrSet& c : closed) {
    EXPECT_TRUE(c.Contains(1));
  }
  EXPECT_EQ(closed.size(), 2u);  // {1}, {1,2}
}

TEST(ArmstrongTest, InstanceIsArmstrongForKnownFdSet) {
  Schema schema = Schema::SingleRelation(
      "R", 3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  const FDSet& fds = schema.fds(0);
  std::unique_ptr<Instance> inst = BuildArmstrongInstance(schema, fds);
  // Satisfies the declared FDs and their consequences...
  EXPECT_TRUE(InstanceSatisfiesFd(*inst, 0, FD(AttrSet{1}, AttrSet{2})));
  EXPECT_TRUE(InstanceSatisfiesFd(*inst, 0, FD(AttrSet{1}, AttrSet{3})));
  EXPECT_TRUE(InstanceSatisfiesFd(*inst, 0, FD(AttrSet{1, 3}, AttrSet{2})));
  // ... but nothing else.
  EXPECT_FALSE(InstanceSatisfiesFd(*inst, 0, FD(AttrSet{2}, AttrSet{1})));
  EXPECT_FALSE(InstanceSatisfiesFd(*inst, 0, FD(AttrSet{3}, AttrSet{2})));
  EXPECT_FALSE(InstanceSatisfiesFd(*inst, 0, FD(AttrSet(), AttrSet{3})));
}

// The defining property, randomized: satisfaction in the Armstrong
// instance ⟺ implication from ∆, for every (X, Y) over the arity.
class ArmstrongProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArmstrongProperty, SatisfiesExactlyTheImpliedFds) {
  Rng rng(GetParam() * 10007 + 3);
  int arity = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4
  Schema schema;
  RelId rel = schema.MustAddRelation("R", arity);
  uint64_t full = (uint64_t{1} << arity) - 1;
  size_t num_fds = rng.NextBounded(4);
  for (size_t i = 0; i < num_fds; ++i) {
    schema.MustAddFd(rel, FD(AttrSet::FromMask(rng.Next() & full),
                             AttrSet::FromMask(rng.Next() & full)));
  }
  const FDSet& fds = schema.fds(0);
  std::unique_ptr<Instance> inst = BuildArmstrongInstance(schema, fds);
  for (uint64_t x = 0; x <= full; ++x) {
    for (uint64_t y = 0; y <= full; ++y) {
      FD candidate(AttrSet::FromMask(x), AttrSet::FromMask(y));
      EXPECT_EQ(InstanceSatisfiesFd(*inst, 0, candidate),
                fds.Implies(candidate))
          << fds.ToString() << " candidate " << candidate.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArmstrongProperty,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace prefrep
