// B5 — the Lemma 5.2 reduction in action: cost of building the HC → S1
// instance, cost of the Π translation (§5.3), and the exponential cost
// of *deciding* the reduced instances with the exact checker —
// empirically, deciding the reduction output solves Hamiltonian Cycle.

#include <benchmark/benchmark.h>

#include "graph/undirected.h"
#include "reductions/hc_to_s1.h"
#include "reductions/pattern_reduction.h"
#include "reductions/pi_case1.h"
#include "repair/exhaustive.h"

namespace prefrep {
namespace {

void BM_Reduction_BuildHcInstance(benchmark::State& state) {
  Rng rng(5);
  UndirectedGraph g = UndirectedGraph::HamiltonianWithChords(
      static_cast<size_t>(state.range(0)), state.range(0), &rng);
  for (auto _ : state) {
    PreferredRepairProblem problem = ReduceHamiltonianCycleToS1(g);
    benchmark::DoNotOptimize(problem.instance->num_facts());
  }
  state.counters["facts"] = static_cast<double>(
      ReduceHamiltonianCycleToS1(g).instance->num_facts());
}
BENCHMARK(BM_Reduction_BuildHcInstance)->DenseRange(4, 24, 4);

// Deciding the reduced instances with the exact checker.  Timings from
// a calibration pass: C3 (Hamiltonian, witness found) ~10 ms; P3
// (non-Hamiltonian, full exhaustion) ~2.5 s; C4 already ~50 s and P4 is
// out of reach — the reduction transfers Hamiltonian Cycle's hardness
// wholesale, which is exactly Lemma 5.2's point.
void BM_Reduction_DecideC3Hamiltonian(benchmark::State& state) {
  UndirectedGraph g = UndirectedGraph::Cycle(3);
  PreferredRepairProblem problem = ReduceHamiltonianCycleToS1(g);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r =
        ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_Reduction_DecideC3Hamiltonian)->Unit(benchmark::kMillisecond);

void BM_Reduction_DecideP3NonHamiltonian(benchmark::State& state) {
  UndirectedGraph g = UndirectedGraph::Path(3);
  PreferredRepairProblem problem = ReduceHamiltonianCycleToS1(g);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r =
        ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_Reduction_DecideP3NonHamiltonian)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Reduction_PiTranslate(benchmark::State& state) {
  // Π over a growing S1 instance (the HC-derived one), for a 4-ary
  // three-key target.
  Rng rng(3);
  UndirectedGraph g = UndirectedGraph::HamiltonianWithChords(
      static_cast<size_t>(state.range(0)), 2, &rng);
  PreferredRepairProblem src = ReduceHamiltonianCycleToS1(g);
  Schema target = Schema::SingleRelation(
      "R", 4,
      {FD(AttrSet{1, 2}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{2, 3}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{1, 3}, AttrSet{1, 2, 3, 4})});
  auto reduction = PiCase1Reduction::Create(target);
  if (!reduction.ok()) {
    state.SkipWithError("reduction creation failed");
    return;
  }
  for (auto _ : state) {
    PreferredRepairProblem dst = reduction->Apply(src);
    benchmark::DoNotOptimize(dst.instance->num_facts());
  }
  state.counters["facts"] =
      static_cast<double>(src.instance->num_facts());
}
BENCHMARK(BM_Reduction_PiTranslate)->DenseRange(4, 20, 4);

void BM_Reduction_HamiltonianSolverBaseline(benchmark::State& state) {
  // The Held–Karp ground-truth solver, for scale comparison.
  Rng rng(9);
  UndirectedGraph g = UndirectedGraph::HamiltonianWithChords(
      static_cast<size_t>(state.range(0)), 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HasHamiltonianCycle(g));
  }
}
BENCHMARK(BM_Reduction_HamiltonianSolverBaseline)->DenseRange(4, 20, 4);

// The pattern-reduction search (machine-checked completion of the
// omitted Cases 2–7) enumerates 8^arity coordinate assignments.
void BM_Reduction_PatternSearch(benchmark::State& state) {
  // A hard target of the requested arity: chain 1→2, 2→3 padded with
  // free attributes.
  int arity = static_cast<int>(state.range(0));
  Schema target = Schema::SingleRelation(
      "R", arity, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  for (auto _ : state) {
    auto reduction = PatternReduction::Search(target);
    benchmark::DoNotOptimize(reduction.ok());
  }
}
BENCHMARK(BM_Reduction_PatternSearch)->DenseRange(3, 7, 1)
    ->Unit(benchmark::kMicrosecond);

// Worst case: a tractable target forces the search to exhaust all
// assignments for all six sources before concluding NotFound.
void BM_Reduction_PatternSearchNegative(benchmark::State& state) {
  int arity = static_cast<int>(state.range(0));
  Schema target = Schema::SingleRelation(
      "R", arity, {FD(AttrSet{1}, AttrSet::Full(arity))});  // single key
  for (auto _ : state) {
    auto reduction = PatternReduction::Search(target);
    benchmark::DoNotOptimize(reduction.ok());
  }
}
BENCHMARK(BM_Reduction_PatternSearchNegative)->DenseRange(3, 6, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep

BENCHMARK_MAIN();
