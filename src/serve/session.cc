#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "cache/block_fingerprint.h"
#include "io/text_format.h"
#include "query/conjunctive_query.h"
#include "query/consistent_answers.h"
#include "repair/block_solver.h"
#include "repair/construct.h"

namespace prefrep {

namespace {

const char* SemName(AnswerSemantics s) {
  switch (s) {
    case AnswerSemantics::kAllRepairs:
      return "repairs";
    case AnswerSemantics::kGlobal:
      return "global";
    case AnswerSemantics::kPareto:
      return "pareto";
    case AnswerSemantics::kCompletion:
      return "completion";
  }
  return "global";
}

// DegradationReport::ToString minus the cache-traffic line: hit/miss
// counts legitimately differ between a warm session and a cold rebuild
// (and between cache on/off), so the session's reply surface — which
// must be byte-identical across all of those — renders the report
// without them.  Everything else (block tallies, node counts, causes)
// is identical by the cache's node-replay contract.
std::string RenderDegradation(const DegradationReport& r) {
  std::string out = "blocks: " + std::to_string(r.blocks_exact) + "/" +
                    std::to_string(r.blocks_total) + " solved exactly, " +
                    std::to_string(r.blocks_abandoned) +
                    " abandoned; nodes spent: " +
                    std::to_string(r.nodes_spent);
  if (!r.cause.empty()) {
    out += "; cause: " + r.cause;
  }
  for (const BlockDegradation& b : r.abandoned) {
    out += "\n  block #" + std::to_string(b.block_id) + " (" +
           std::to_string(b.block_size) + " facts, " +
           std::to_string(b.nodes) + " nodes): " + b.reason;
  }
  return out;
}

RepairSemantics ToRepairSemantics(AnswerSemantics s) {
  switch (s) {
    case AnswerSemantics::kPareto:
      return RepairSemantics::kPareto;
    case AnswerSemantics::kCompletion:
      return RepairSemantics::kCompletion;
    default:
      return RepairSemantics::kGlobal;
  }
}

}  // namespace

Result<std::unique_ptr<SessionContext>> SessionContext::Create(
    const PreferredRepairProblem& problem, SessionOptions options) {
  PREFREP_CHECK_MSG(problem.schema != nullptr && problem.instance != nullptr &&
                        problem.priority != nullptr,
                    "session needs a complete problem (call InitPriority)");
  PriorityMode mode;
  if (problem.priority->Validate(PriorityMode::kConflictOnly).ok()) {
    mode = PriorityMode::kConflictOnly;
  } else {
    Status ccp = problem.priority->Validate(PriorityMode::kCrossConflict);
    if (!ccp.ok()) {
      return ccp;
    }
    mode = PriorityMode::kCrossConflict;
  }
  std::unique_ptr<SessionContext> session(
      new SessionContext(problem, options));
  session->mode_ = mode;
  return session;
}

SessionContext::SessionContext(const PreferredRepairProblem& problem,
                               SessionOptions options)
    : facts_(problem),
      conflict_index_(facts_.instance()),
      options_(options),
      budget_(options.budget) {
  // Rebuild the priority over the session's own instance copy in the
  // original declaration order — edges() order is serialization order,
  // which the rebuild contract depends on.
  priority_ = std::make_unique<PriorityRelation>(&facts_.instance());
  for (const auto& [higher, lower] : problem.priority->edges()) {
    priority_->MustAdd(higher, lower);
  }
  classification_ = ClassifySchema(facts_.schema());
  ccp_classification_ = ClassifyCcpSchema(facts_.schema());
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<BlockSolveCache>(options_.cache_capacity);
  }
  graph_ = std::make_unique<ConflictGraph>(facts_.instance());
  const size_t n = facts_.universe_size();
  free_ = DynamicBitset(n);
  block_key_of_.assign(n, kInvalidFactId);
  for (FactId f = 0; f < n; ++f) {
    // The graph constructor already found all edges; the index just
    // needs every initial fact in its buckets.
    conflict_index_.InsertAndCollect(f);
  }
  std::vector<bool> visited(n, false);
  for (FactId f = 0; f < n; ++f) {
    if (visited[f]) {
      continue;
    }
    visited[f] = true;
    if (graph_->neighbors(f).empty()) {
      free_.set(f);
      continue;
    }
    std::vector<FactId> component{f};
    std::vector<FactId> stack{f};
    while (!stack.empty()) {
      FactId u = stack.back();
      stack.pop_back();
      for (FactId v : graph_->neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          component.push_back(v);
          stack.push_back(v);
        }
      }
    }
    std::sort(component.begin(), component.end());
    InstallBlock(std::move(component));
  }
  if (problem.j.size() > 0) {
    problem.j.ForEach([&](size_t f) { j_.insert(static_cast<FactId>(f)); });
  }
}

void SessionContext::InstallBlock(std::vector<FactId> members) {
  PREFREP_CHECK_MSG(members.size() >= 2, "a block has at least two facts");
  const FactId key = members.front();
  BlockMembers bm;
  bm.rel = facts_.instance().fact(key).rel;
  for (FactId m : members) {
    block_key_of_[m] = key;
  }
  bm.facts = std::move(members);
  const bool inserted = block_members_.emplace(key, std::move(bm)).second;
  PREFREP_CHECK_MSG(inserted, "block key already resident");
  if (cache_ != nullptr) {
    changed_keys_.insert(key);
  }
  view_dirty_ = true;
}

void SessionContext::RetireBlock(FactId key) {
  invalidation_.Retire(key, cache_.get());
  stats_.cache_entries_erased = invalidation_.entries_erased();
  categoricity_memo_.Invalidate(key);
  block_members_.erase(key);
  changed_keys_.erase(key);
  ++stats_.blocks_retired;
  view_dirty_ = true;
}

Result<std::string> SessionContext::Insert(
    std::string_view label, std::string_view relation_name,
    const std::vector<std::string>& constants) {
  Result<MutableInstance::InsertOutcome> outcome =
      facts_.Insert(relation_name, constants, label);
  if (!outcome.ok()) {
    return outcome.status();
  }
  if (outcome->already_live) {
    return "ok " + std::string(label) + " unchanged";
  }
  ++stats_.edits;
  view_dirty_ = true;
  const FactId f = outcome->id;
  const size_t n = facts_.universe_size();
  graph_->ResizeUniverse(n);
  free_.Resize(n);
  if (block_key_of_.size() < n) {
    block_key_of_.resize(n, kInvalidFactId);
  }
  priority_->SyncUniverse();
  const std::vector<FactId> neighbors = conflict_index_.InsertAndCollect(f);
  graph_->AddConflictEdges(f, neighbors);
  const char* verb = outcome->revived ? "revived" : "inserted";
  if (neighbors.empty()) {
    free_.set(f);
    return "ok " + std::string(verb) + " " + std::string(label) + " (free)";
  }
  // Merge: f, its free neighbors, and every neighbor block become one
  // block (they are all connected through f now).
  std::set<FactId> touched_keys;
  std::vector<FactId> members{f};
  for (FactId g : neighbors) {
    if (free_.test(g)) {
      free_.reset(g);
      members.push_back(g);
    } else {
      touched_keys.insert(block_key_of_[g]);
    }
  }
  for (FactId key : touched_keys) {
    auto it = block_members_.find(key);
    PREFREP_CHECK_MSG(it != block_members_.end(), "dangling block key");
    members.insert(members.end(), it->second.facts.begin(),
                   it->second.facts.end());
    RetireBlock(key);
  }
  std::sort(members.begin(), members.end());
  const size_t block_size = members.size();
  InstallBlock(std::move(members));
  return "ok " + std::string(verb) + " " + std::string(label) +
         " (block of " + std::to_string(block_size) + ")";
}

Result<std::string> SessionContext::Delete(std::string_view label) {
  Result<FactId> id = facts_.Tombstone(label);
  if (!id.ok()) {
    return id.status();
  }
  ++stats_.edits;
  view_dirty_ = true;
  const FactId f = *id;
  j_.erase(f);
  priority_->SyncUniverse();
  priority_->RemoveEdgesTouching(f);
  const std::vector<FactId> neighbors = graph_->neighbors(f);
  graph_->RemoveIncidentEdges(f);
  conflict_index_.Erase(f);
  if (free_.test(f)) {
    free_.reset(f);
    return "ok deleted " + std::string(label);
  }
  const FactId key = block_key_of_[f];
  PREFREP_CHECK_MSG(key != kInvalidFactId, "live non-free fact has a block");
  auto it = block_members_.find(key);
  PREFREP_CHECK_MSG(it != block_members_.end(), "dangling block key");
  const std::vector<FactId> members = it->second.facts;
  RetireBlock(key);
  for (FactId m : members) {
    block_key_of_[m] = kInvalidFactId;
  }
  // Re-split: connected components of the old block minus f.  Edges of
  // the survivors still point only inside the old block, so a BFS over
  // the live adjacency is confined to `members` automatically.
  std::unordered_set<FactId> visited{f};
  size_t split_blocks = 0;
  for (FactId seed : members) {
    if (visited.count(seed) > 0) {
      continue;
    }
    visited.insert(seed);
    std::vector<FactId> component{seed};
    std::vector<FactId> stack{seed};
    while (!stack.empty()) {
      FactId u = stack.back();
      stack.pop_back();
      for (FactId v : graph_->neighbors(u)) {
        if (visited.insert(v).second) {
          component.push_back(v);
          stack.push_back(v);
        }
      }
    }
    if (component.size() == 1) {
      free_.set(seed);
    } else {
      std::sort(component.begin(), component.end());
      InstallBlock(std::move(component));
      ++split_blocks;
    }
  }
  return "ok deleted " + std::string(label) + " (" +
         std::to_string(split_blocks) + " block(s) remain of its block)";
}

bool SessionContext::Reaches(FactId from, FactId to) const {
  if (from == to) {
    return true;
  }
  std::vector<FactId> stack{from};
  std::unordered_set<FactId> seen{from};
  while (!stack.empty()) {
    FactId u = stack.back();
    stack.pop_back();
    for (FactId v : priority_->Dominates(u)) {
      if (v == to) {
        return true;
      }
      if (seen.insert(v).second) {
        stack.push_back(v);
      }
    }
  }
  return false;
}

Result<std::string> SessionContext::Prefer(std::string_view higher_label,
                                           std::string_view lower_label) {
  Result<FactId> higher = facts_.ResolveLive(higher_label);
  if (!higher.ok()) {
    return higher.status();
  }
  Result<FactId> lower = facts_.ResolveLive(lower_label);
  if (!lower.ok()) {
    return lower.status();
  }
  if (*higher == *lower) {
    return Status::InvalidArgument(
        "a fact cannot be preferred over itself");
  }
  if (!FactsConflict(facts_.instance(), *higher, *lower)) {
    return Status::FailedPrecondition(
        "prefer requires conflicting facts ('" + std::string(higher_label) +
        "' and '" + std::string(lower_label) + "' do not conflict)");
  }
  if (priority_->Prefers(*higher, *lower)) {
    return "ok " + std::string(higher_label) + " > " +
           std::string(lower_label) + " (already preferred)";
  }
  priority_->SyncUniverse();
  if (Reaches(*lower, *higher)) {
    return Status::InvalidArgument(
        "prefer " + std::string(higher_label) + " > " +
        std::string(lower_label) + " would create a priority cycle");
  }
  priority_->MustAdd(*higher, *lower);
  ++stats_.edits;
  // The block's fact set is unchanged (no view rebuild), but its solved
  // state — and so its fingerprint-keyed cache entries and its memoized
  // categoricity bit — is stale.  The memo exists with the cache off,
  // so its invalidation is NOT gated on cache_.
  const FactId key = block_key_of_[*higher];
  PREFREP_CHECK_MSG(key != kInvalidFactId && key == block_key_of_[*lower],
                    "conflicting facts share a block");
  categoricity_memo_.Invalidate(key);
  if (cache_ != nullptr) {
    invalidation_.Retire(key, cache_.get());
    stats_.cache_entries_erased = invalidation_.entries_erased();
    changed_keys_.insert(key);
  }
  return "ok " + std::string(higher_label) + " > " +
         std::string(lower_label);
}

DynamicBitset SessionContext::JSubinstance() const {
  DynamicBitset j(facts_.universe_size());
  for (FactId f : j_) {
    j.set(f);
  }
  return j;
}

std::string SessionContext::SerializeLive() {
  const DynamicBitset j = JSubinstance();
  return facts_.SerializeLive(priority_.get(), &j);
}

void SessionContext::EnsureFresh() {
  if (view_dirty_) {
    const size_t n = facts_.universe_size();
    std::vector<Block> blocks;
    blocks.reserve(block_members_.size());
    std::vector<size_t> block_of(n, BlockDecomposition::kNoBlock);
    for (const auto& [key, bm] : block_members_) {
      Block b;
      b.id = blocks.size();
      b.rel = bm.rel;
      b.facts = DynamicBitset(n);
      for (FactId m : bm.facts) {
        b.facts.set(m);
        block_of[m] = b.id;
      }
      b.fact_list = bm.facts;
      blocks.push_back(std::move(b));
    }
    DynamicBitset free_copy = free_;
    blocks_view_ = std::make_unique<BlockDecomposition>(
        std::move(blocks), std::move(free_copy), std::move(block_of),
        facts_.schema().num_relations());
    priority_block_local_value_ =
        PriorityIsBlockLocal(*blocks_view_, *priority_);
    ProblemContext::ResidentArtifacts artifacts;
    artifacts.graph = graph_.get();
    artifacts.classification = &classification_;
    artifacts.ccp_classification = &ccp_classification_;
    artifacts.blocks = blocks_view_.get();
    artifacts.priority_block_local = &priority_block_local_value_;
    ctx_ = std::make_unique<ProblemContext>(facts_.instance(), *priority_,
                                            artifacts);
    ctx_->set_parallelism(options_.threads);
    ctx_->set_block_cache(cache_.get());
    view_dirty_ = false;
#if PREFREP_AUDIT_ENABLED
    AuditAgainstRebuild();
#endif
  }
  if (cache_ != nullptr && !changed_keys_.empty()) {
    for (FactId key : changed_keys_) {
      auto it = block_members_.find(key);
      if (it == block_members_.end()) {
        continue;
      }
      const size_t bid = blocks_view_->block_of(key);
      invalidation_.Install(
          key, ComputeBlockFingerprint(*ctx_, blocks_view_->block(bid)));
    }
    changed_keys_.clear();
  }
}

ProblemContext& SessionContext::context() {
  EnsureFresh();
  return *ctx_;
}

#if PREFREP_AUDIT_ENABLED
void SessionContext::AuditAgainstRebuild() {
  Result<PreferredRepairProblem> rebuilt = ParseProblemText(SerializeLive());
  PREFREP_CHECK_MSG(rebuilt.ok(), "serialized live state must re-parse");
  const ConflictGraph rebuilt_graph(*rebuilt->instance);
  const BlockDecomposition rebuilt_blocks(rebuilt_graph);
  PREFREP_CHECK_MSG(rebuilt_graph.num_edges() == graph_->num_edges(),
                    "incremental conflict edges diverged from rebuild");
  PREFREP_CHECK_MSG(
      rebuilt_blocks.num_blocks() == blocks_view_->num_blocks(),
      "incremental block count diverged from rebuild");
  PREFREP_CHECK_MSG(
      rebuilt_blocks.free_facts().count() ==
          blocks_view_->free_facts().count(),
      "incremental free-fact count diverged from rebuild");
  // Id compaction is order-preserving, so block i of the session must
  // hold exactly the labels of block i of the rebuild, position by
  // position.
  for (size_t i = 0; i < rebuilt_blocks.num_blocks(); ++i) {
    const Block& mine = blocks_view_->block(i);
    const Block& theirs = rebuilt_blocks.block(i);
    PREFREP_CHECK_MSG(mine.size() == theirs.size(),
                      "incremental block size diverged from rebuild");
    for (size_t k = 0; k < mine.fact_list.size(); ++k) {
      PREFREP_CHECK_MSG(
          facts_.instance().label(mine.fact_list[k]) ==
              rebuilt->instance->label(theirs.fact_list[k]),
          "incremental block membership diverged from rebuild");
    }
  }
  PREFREP_CHECK_MSG(
      rebuilt->priority->num_edges() == priority_->num_edges(),
      "incremental priority edges diverged from rebuild");
  const auto& mine_edges = priority_->edges();
  const auto& their_edges = rebuilt->priority->edges();
  for (size_t i = 0; i < mine_edges.size(); ++i) {
    PREFREP_CHECK_MSG(
        facts_.instance().label(mine_edges[i].first) ==
                rebuilt->instance->label(their_edges[i].first) &&
            facts_.instance().label(mine_edges[i].second) ==
                rebuilt->instance->label(their_edges[i].second),
        "incremental priority edge order diverged from rebuild");
  }
  PREFREP_CHECK_MSG(
      PriorityIsBlockLocal(rebuilt_blocks, *rebuilt->priority) ==
          priority_block_local_value_,
      "incremental block-locality flag diverged from rebuild");
}
#endif

Result<std::string> SessionContext::RunCheck(AnswerSemantics semantics) {
  EnsureFresh();
  if (!priority_block_local_value_) {
    return Status::FailedPrecondition(
        "session queries require a block-local priority");
  }
  if (semantics == AnswerSemantics::kCompletion &&
      !priority_->IsConflictBounded()) {
    return Status::FailedPrecondition(
        "completion semantics requires a conflict-bounded priority");
  }
  const DynamicBitset j = JSubinstance();
  ResourceGovernor governor(budget_);
  if (!budget_.Unlimited()) {
    ctx_->set_governor(&governor);
  }
  CheckResult result;
  DegradationReport report;
  switch (semantics) {
    case AnswerSemantics::kGlobal:
      result = CheckGlobalOptimalByBlocks(*ctx_, j, mode_, nullptr, &report);
      break;
    case AnswerSemantics::kPareto:
      result = CheckParetoOptimalByBlocks(*ctx_, j);
      break;
    case AnswerSemantics::kCompletion:
      result = CheckCompletionOptimalByBlocks(*ctx_, j);
      break;
    default:
      ctx_->set_governor(nullptr);
      return Status::InvalidArgument("check does not take 'repairs'");
  }
  ctx_->set_governor(nullptr);
  std::string out = std::string("check ") + SemName(semantics) + ": ";
  switch (result.verdict) {
    case CheckResult::Verdict::kYes:
      out += "optimal";
      break;
    case CheckResult::Verdict::kNo:
      out += "not optimal";
      break;
    case CheckResult::Verdict::kUnknown:
      out += "unknown";
      break;
  }
  if (result.witness.has_value()) {
    out += "\nwitness: " +
           facts_.instance().SubinstanceToString(result.witness->improvement);
    if (!result.witness->explanation.empty()) {
      out += "\nbecause: " + result.witness->explanation;
    }
  }
  if (!result.known() && !result.unknown_reason.empty()) {
    out += "\nreason: " + result.unknown_reason;
  }
  if (report.Degraded()) {
    out += "\n" + RenderDegradation(report);
  }
  return out;
}

Result<std::string> SessionContext::RunCount(AnswerSemantics semantics) {
  EnsureFresh();
  if (!priority_block_local_value_) {
    return Status::FailedPrecondition(
        "session queries require a block-local priority");
  }
  if (semantics == AnswerSemantics::kCompletion &&
      !priority_->IsConflictBounded()) {
    return Status::FailedPrecondition(
        "completion semantics requires a conflict-bounded priority");
  }
  ResourceGovernor governor(budget_);
  if (!budget_.Unlimited()) {
    ctx_->set_governor(&governor);
  }
  const BoundedCount count =
      CountOptimalRepairsByBlocksBounded(*ctx_, ToRepairSemantics(semantics));
  ctx_->set_governor(nullptr);
  std::string out = std::string("count ") + SemName(semantics) + ": ";
  if (!count.exact) {
    out += ">= ";
  }
  out += std::to_string(count.lower_bound);
  if (count.saturated) {
    out += " (saturated)";
  }
  if (!count.exact) {
    out += " (" + std::to_string(count.unknown_blocks) +
           " block(s) abandoned)";
  }
  return out;
}

Result<std::string> SessionContext::RunConstruct() {
  EnsureFresh();
  if (!priority_->IsConflictBounded()) {
    return Status::FailedPrecondition(
        "construct requires a conflict-bounded priority");
  }
  ResourceGovernor governor(budget_);
  if (!budget_.Unlimited()) {
    ctx_->set_governor(&governor);
  }
  Result<DynamicBitset> repair = TryConstructGloballyOptimalRepair(*ctx_);
  ctx_->set_governor(nullptr);
  if (!repair.ok()) {
    return "construct: unknown (" + repair.status().message() + ")";
  }
  return "repair: " + facts_.instance().SubinstanceToString(*repair);
}

Result<std::string> SessionContext::RunCqa(AnswerSemantics semantics,
                                           const std::string& query_text) {
  EnsureFresh();
  if (semantics != AnswerSemantics::kAllRepairs &&
      !priority_block_local_value_) {
    return Status::FailedPrecondition(
        "session queries require a block-local priority");
  }
  if (semantics == AnswerSemantics::kCompletion &&
      !priority_->IsConflictBounded()) {
    return Status::FailedPrecondition(
        "completion semantics requires a conflict-bounded priority");
  }
  Result<ConjunctiveQuery> query = ConjunctiveQuery::Parse(query_text);
  if (!query.ok()) {
    return query.status();
  }
  // Tombstoned ids must not be enumerated as repair members under the
  // kAllRepairs semantics (the optimal semantics range over blocks ∪
  // free facts only, which already excludes them).
  const DynamicBitset* universe = semantics == AnswerSemantics::kAllRepairs
                                      ? &facts_.live()
                                      : nullptr;
  ResourceGovernor governor(budget_);
  if (!budget_.Unlimited()) {
    ctx_->set_governor(&governor);
  }
  // Memoized per-block categoricity verdicts ride along; the memo
  // changes cost, never answers, and the path taken is a deterministic
  // function of the live state and budget — so the path line below is
  // part of the byte-identical-under-rebuild reply surface.
  CqaPath path = CqaPath::kEnumeration;
  CqaOptions cqa_options;
  cqa_options.memo = &categoricity_memo_;
  cqa_options.path = &path;
  std::string out = std::string("cqa ") + SemName(semantics) + ": ";
  if (query->IsBoolean()) {
    const Trilean certain =
        CertainlyTrueBounded(*ctx_, *query, semantics, universe, cqa_options);
    out += TrileanName(certain);
    if (certain == Trilean::kUnknown) {
      out += " (" + governor.CauseString() + ")";
    }
  } else {
    Result<std::vector<ConjunctiveQuery::AnswerTuple>> answers =
        ConsistentAnswersBounded(*ctx_, *query, semantics, universe,
                                 cqa_options);
    if (!answers.ok()) {
      out += "unknown (" + answers.status().message() + ")";
    } else {
      out += std::to_string(answers->size()) + " answer(s)";
      for (const ConjunctiveQuery::AnswerTuple& tuple : *answers) {
        out += "\n  (";
        for (size_t i = 0; i < tuple.size(); ++i) {
          if (i > 0) {
            out += ", ";
          }
          out += tuple[i];
        }
        out += ")";
      }
    }
  }
  out += "\npath: ";
  out += CqaPathName(path);
  ctx_->set_governor(nullptr);
  return out;
}

std::string SessionContext::RenderStats() {
  // Informational only — cache and retirement counters depend on the
  // session's edit history, so stats is exempt from the byte-identical
  // rebuild contract (and the differential battery skips it).
  return "stats: generation=" + std::to_string(facts_.generation()) +
         " live=" + std::to_string(facts_.num_live()) +
         " blocks=" + std::to_string(block_members_.size()) +
         " free=" + std::to_string(free_.count()) +
         " edits=" + std::to_string(stats_.edits) +
         " queries=" + std::to_string(stats_.queries) +
         " blocks-retired=" + std::to_string(stats_.blocks_retired) +
         " cache-entries-erased=" +
         std::to_string(stats_.cache_entries_erased) +
         " query-micros=" + std::to_string(stats_.query_micros) +
         " cache-capacity=" + std::to_string(options_.cache_capacity) +
         " categoricity-memo=" + std::to_string(categoricity_memo_.size()) +
         " categoricity-hits=" + std::to_string(categoricity_memo_.hits()) +
         " categoricity-misses=" +
         std::to_string(categoricity_memo_.misses());
}

Result<std::string> SessionContext::Execute(const SessionOp& op) {
  switch (op.kind) {
    case SessionOp::Kind::kInsert:
      return Insert(op.label, op.relation, op.constants);
    case SessionOp::Kind::kDelete:
      return Delete(op.label);
    case SessionOp::Kind::kPrefer: {
      std::string out;
      for (size_t i = 0; i + 1 < op.chain.size(); ++i) {
        Result<std::string> one = Prefer(op.chain[i], op.chain[i + 1]);
        if (!one.ok()) {
          // Earlier pairs of the chain stand (like the text format,
          // which adds chain pairs one by one).
          return one.status();
        }
        if (!out.empty()) {
          out += "\n";
        }
        out += *one;
      }
      return out;
    }
    case SessionOp::Kind::kJSet:
    case SessionOp::Kind::kJAdd:
    case SessionOp::Kind::kJDel: {
      std::vector<FactId> ids;
      ids.reserve(op.labels.size());
      for (const std::string& label : op.labels) {
        Result<FactId> id = facts_.ResolveLive(label);
        if (!id.ok()) {
          return id.status();
        }
        ids.push_back(*id);
      }
      if (op.kind == SessionOp::Kind::kJSet) {
        j_.clear();
      }
      for (FactId id : ids) {
        if (op.kind == SessionOp::Kind::kJDel) {
          j_.erase(id);
        } else {
          j_.insert(id);
        }
      }
      return "ok j = " +
             facts_.instance().SubinstanceToString(JSubinstance());
    }
    case SessionOp::Kind::kBudget:
      set_budget(op.budget);
      return "ok " + SessionOpToString(op);
    case SessionOp::Kind::kCheck:
    case SessionOp::Kind::kCount:
    case SessionOp::Kind::kConstruct:
    case SessionOp::Kind::kCqa: {
      ++stats_.queries;
      const auto start = std::chrono::steady_clock::now();
      Result<std::string> reply =
          op.kind == SessionOp::Kind::kCheck   ? RunCheck(op.semantics)
          : op.kind == SessionOp::Kind::kCount ? RunCount(op.semantics)
          : op.kind == SessionOp::Kind::kConstruct
              ? RunConstruct()
              : RunCqa(op.semantics, op.query);
      stats_.query_micros += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      return reply;
    }
    case SessionOp::Kind::kStats:
      return RenderStats();
  }
  return Status::InvalidArgument("unknown session op");
}

}  // namespace prefrep
