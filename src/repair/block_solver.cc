#include "repair/block_solver.h"

#include "cache/block_cache.h"
#include "repair/audit.h"
#include "repair/parallel_solver.h"
#include "repair/ccp_constant_attr.h"
#include "repair/ccp_primary_key.h"
#include "repair/completion.h"
#include "repair/global_one_fd.h"
#include "repair/global_two_keys.h"
#include "repair/pareto.h"
#include "repair/subinstance_ops.h"

namespace prefrep {

namespace {

// A maximality defect of J within the block: a block fact outside J with
// no conflict in J (conflicts never leave a block, so testing against
// the whole J is exact).  nullopt when J ∩ b is maximal.
std::optional<CheckResult> FindBlockExtension(const ProblemContext& ctx,
                                              const Block& b,
                                              const DynamicBitset& j) {
  const ConflictGraph& cg = ctx.conflict_graph();
  for (FactId g : b.fact_list) {
    if (j.test(g)) {
      continue;
    }
    bool blocked = false;
    for (FactId u : cg.neighbors(g)) {
      if (j.test(u)) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      continue;
    }
    DynamicBitset improvement = j;
    improvement.set(g);
    return CheckResult::NotOptimal(
        std::move(improvement),
        "J is not maximal: " + ctx.instance().FactToString(g) +
            " can be added without conflict");
  }
  return std::nullopt;
}

class OneFdSolver final : public BlockSolver {
 public:
  std::string_view Name() const override { return "GRepCheck1FD"; }
  CheckResult CheckBlock(const ProblemContext& ctx, const Block& b,
                         const DynamicBitset& j) const override {
    const RelationClassification& rc = ctx.classification().relations[b.rel];
    PREFREP_CHECK_MSG(rc.kind == TractableKind::kSingleFd,
                      "block dispatched to GRepCheck1FD but its relation is "
                      "not single-fd");
    return CheckGlobalOptimalOneFd(ctx.conflict_graph(), ctx.priority(), b.rel,
                                   rc.single_fd, j, &b.facts);
  }
};

class TwoKeysSolver final : public BlockSolver {
 public:
  std::string_view Name() const override { return "GRepCheck2Keys"; }
  CheckResult CheckBlock(const ProblemContext& ctx, const Block& b,
                         const DynamicBitset& j) const override {
    const RelationClassification& rc = ctx.classification().relations[b.rel];
    PREFREP_CHECK_MSG(rc.kind == TractableKind::kTwoKeys,
                      "block dispatched to GRepCheck2Keys but its relation is "
                      "not two-keys");
    return CheckGlobalOptimalTwoKeys(ctx.conflict_graph(), ctx.priority(),
                                     b.rel, rc.key1, rc.key2, j, &b.facts);
  }
};

class ExhaustiveSolver final : public BlockSolver {
 public:
  std::string_view Name() const override { return "exhaustive"; }
  bool Polynomial() const override { return false; }
  CheckResult CheckBlock(const ProblemContext& ctx, const Block& b,
                         const DynamicBitset& j) const override {
    // A non-maximal J ∩ b is improved by a superset block-repair, so the
    // enumeration needs no separate maximality check.
    const ConflictGraph& cg = ctx.conflict_graph();
    const PriorityRelation& pr = ctx.priority();
    ResourceGovernor& governor = ctx.governor();
    if (!governor.AdmitBlock(b.size())) {
      return CheckResult::Unknown(
          "block #" + std::to_string(b.id) + " (" + std::to_string(b.size()) +
          " facts) exceeds the admissible size for exhaustive solving");
    }
    CheckResult result = CheckResult::Optimal();
    ForEachRepairWithin(cg, b.facts, governor, [&](const DynamicBitset& r) {
      DynamicBitset candidate = (j - b.facts) | r;
      if (IsGlobalImprovement(cg, pr, j, candidate)) {
        result = CheckResult::NotOptimal(
            std::move(candidate),
            "an enumerated block-repair improves J on block " +
                std::to_string(b.id));
        return false;
      }
      return true;
    });
    // A found improvement is definite even when the budget then fired;
    // an incomplete scan that found nothing proves nothing.
    if (result.optimal && governor.exhausted()) {
      return CheckResult::Unknown(governor.CauseString());
    }
    return result;
  }
};

class CcpPrimaryKeySolver final : public BlockSolver {
 public:
  std::string_view Name() const override { return "ccp primary-key"; }
  // Conservative: BuildCcpPrimaryKeyGraph consumes the whole priority
  // relation, whose cross-conflict edges the block fingerprint does not
  // canonicalize (it requires block-local priorities).
  bool BlockDetermined() const override { return false; }
  CheckResult CheckBlock(const ProblemContext& ctx, const Block& b,
                         const DynamicBitset& j) const override {
    // The cycle criterion (Lemma 7.3) assumes J is a repair; restricted
    // to a block it assumes J ∩ b is a block-repair.
    if (std::optional<CheckResult> defect = FindBlockExtension(ctx, b, j)) {
      return *std::move(defect);
    }
    Digraph graph = BuildCcpPrimaryKeyGraph(ctx.conflict_graph(),
                                            ctx.priority(), j, &b.facts);
    std::optional<std::vector<size_t>> cycle = graph.FindCycle();
    if (!cycle.has_value()) {
      return CheckResult::Optimal();
    }
    DynamicBitset improvement = j;
    for (size_t node : *cycle) {
      FactId f = static_cast<FactId>(node);
      if (j.test(f)) {
        improvement.reset(f);
      } else {
        improvement.set(f);
      }
    }
    return CheckResult::NotOptimal(
        std::move(improvement),
        "cycle in G_{J, I\\J} within block " + std::to_string(b.id));
  }
};

class CcpConstantAttrSolver final : public BlockSolver {
 public:
  std::string_view Name() const override { return "ccp constant-attribute"; }
  // Reads ConsistentPartitions of the whole relation — state outside
  // the block the fingerprint cannot vouch for.
  bool BlockDetermined() const override { return false; }
  CheckResult CheckBlock(const ProblemContext& ctx, const Block& b,
                         const DynamicBitset& j) const override {
    // Under a constant-attribute assignment a relation with ≥ 2
    // consistent partitions is one block whose block-repairs are exactly
    // the partitions, so the scan is linear in their number (the
    // whole-instance algorithm pays the product over relations).
    const ConflictGraph& cg = ctx.conflict_graph();
    const PriorityRelation& pr = ctx.priority();
    if (std::optional<CheckResult> defect = FindBlockExtension(ctx, b, j)) {
      return *std::move(defect);
    }
    const DynamicBitset in_block = j & b.facts;
    for (const std::vector<FactId>& part :
         ConsistentPartitions(ctx.instance(), b.rel)) {
      DynamicBitset partition(cg.num_facts());
      for (FactId f : part) {
        partition.set(f);
      }
      if (partition == in_block) {
        continue;
      }
      DynamicBitset candidate = (j - b.facts) | partition;
      if (IsGlobalImprovement(cg, pr, j, candidate)) {
        return CheckResult::NotOptimal(
            std::move(candidate),
            "a consistent partition improves J on block " +
                std::to_string(b.id));
      }
    }
    return CheckResult::Optimal();
  }
};

class ParetoSolver final : public BlockSolver {
 public:
  std::string_view Name() const override { return "ParetoCheck"; }
  RepairSemantics Semantics() const override {
    return RepairSemantics::kPareto;
  }
  CheckResult CheckBlock(const ProblemContext& ctx, const Block& b,
                         const DynamicBitset& j) const override {
    return FindParetoImprovement(ctx.conflict_graph(), ctx.priority(), j,
                                 &b.facts);
  }
};

class CompletionSolver final : public BlockSolver {
 public:
  std::string_view Name() const override { return "CompletionCheck"; }
  RepairSemantics Semantics() const override {
    return RepairSemantics::kCompletion;
  }
  CheckResult CheckBlock(const ProblemContext& ctx, const Block& b,
                         const DynamicBitset& j) const override {
    return CheckCompletionOptimal(ctx.conflict_graph(), ctx.priority(), j,
                                  &b.facts);
  }
};

// The identity order: every per-block dispatcher below walks
// BlockDecomposition::blocks() front to back.
std::vector<size_t> AllBlocksInOrder(const BlockDecomposition& blocks) {
  std::vector<size_t> order(blocks.num_blocks());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  return order;
}

}  // namespace

std::vector<DynamicBitset> BlockSolver::OptimalBlockRepairs(
    const ProblemContext& ctx, const Block& b) const {
  ResourceGovernor& governor = ctx.governor();
  if (!governor.AdmitBlock(b.size())) {
    return {};  // refused up front (see header: empty means "abandoned")
  }
  std::vector<DynamicBitset> out;
  ForEachRepairWithin(ctx.conflict_graph(), b.facts, governor,
                      [&](const DynamicBitset& r) {
                        CheckResult result = CheckBlock(ctx, b, r);
                        if (result.known() && result.optimal) {
                          out.push_back(r);
                        }
                        return true;
                      });
  if (governor.exhausted()) {
    return {};  // partial set: unusable for cross-products (see header)
  }
  return out;
}

uint64_t BlockSolver::CountBlock(const ProblemContext& ctx,
                                 const Block& b) const {
  ResourceGovernor& governor = ctx.governor();
  if (!governor.AdmitBlock(b.size())) {
    // 0 is unambiguous "abandoned": a real block always counts ≥ 1.
    return 0;
  }
  uint64_t count = 0;
  ForEachRepairWithin(ctx.conflict_graph(), b.facts, governor,
                      [&](const DynamicBitset& r) {
                        CheckResult result = CheckBlock(ctx, b, r);
                        if (result.known() && result.optimal) {
                          ++count;
                        }
                        return true;
                      });
  return count;  // a lower bound when governor.exhausted()
}

DynamicBitset BlockSolver::ConstructBlock(const ProblemContext& ctx,
                                          const Block& b) const {
  // Block-restricted greedy completion (cf. GreedyCompletionRepair):
  // repeatedly keep the lowest-id ≻-maximal remaining fact and drop its
  // conflicts.  Deterministic; a completion-optimal block-repair is
  // globally- and Pareto-optimal too.
  const ConflictGraph& cg = ctx.conflict_graph();
  const PriorityRelation& pr = ctx.priority();
  PREFREP_CHECK_MSG(pr.IsConflictBounded(),
                    "greedy block construction relies on completion "
                    "semantics, which require conflict-bounded priorities");
  DynamicBitset remaining = b.facts;
  DynamicBitset out(cg.num_facts());
  while (remaining.any()) {
    FactId pick = kInvalidFactId;
    remaining.ForEach([&](size_t f) {
      if (pick != kInvalidFactId) {
        return;
      }
      for (FactId g : pr.DominatedBy(static_cast<FactId>(f))) {
        if (remaining.test(g)) {
          return;
        }
      }
      pick = static_cast<FactId>(f);
    });
    PREFREP_CHECK_MSG(pick != kInvalidFactId,
                      "acyclic priority must leave a maximal fact");
    out.set(pick);
    remaining.reset(pick);
    for (FactId u : cg.neighbors(pick)) {
      remaining.reset(u);
    }
  }
  audit::CheckConstructedBlockRepair(cg, pr, b.facts, out,
                                     "BlockSolver::ConstructBlock");
  return out;
}

const BlockSolver& OneFdBlockSolver() {
  static const OneFdSolver solver;
  return solver;
}

const BlockSolver& TwoKeysBlockSolver() {
  static const TwoKeysSolver solver;
  return solver;
}

const BlockSolver& ExhaustiveBlockSolver() {
  static const ExhaustiveSolver solver;
  return solver;
}

const BlockSolver& CcpPrimaryKeyBlockSolver() {
  static const CcpPrimaryKeySolver solver;
  return solver;
}

const BlockSolver& CcpConstantAttrBlockSolver() {
  static const CcpConstantAttrSolver solver;
  return solver;
}

const BlockSolver& ParetoBlockSolver() {
  static const ParetoSolver solver;
  return solver;
}

const BlockSolver& CompletionBlockSolver() {
  static const CompletionSolver solver;
  return solver;
}

const BlockSolver& DispatchBlockSolver(const ProblemContext& ctx,
                                       const Block& b, PriorityMode mode) {
  if (mode == PriorityMode::kConflictOnly) {
    switch (ctx.classification().relations[b.rel].kind) {
      case TractableKind::kSingleFd:
        return OneFdBlockSolver();
      case TractableKind::kTwoKeys:
        return TwoKeysBlockSolver();
      case TractableKind::kHard:
        return ExhaustiveBlockSolver();
    }
    return ExhaustiveBlockSolver();
  }
  const CcpSchemaClassification& ccp = ctx.ccp_classification();
  if (ccp.primary_key_assignment) {
    return CcpPrimaryKeyBlockSolver();
  }
  if (ccp.constant_attr_assignment) {
    return CcpConstantAttrBlockSolver();
  }
  return ExhaustiveBlockSolver();
}

const BlockSolver& SolverForSemantics(const ProblemContext& ctx,
                                      const Block& b,
                                      RepairSemantics semantics) {
  switch (semantics) {
    case RepairSemantics::kGlobal:
      return DispatchBlockSolver(ctx, b,
                                 ctx.priority().IsConflictBounded()
                                     ? PriorityMode::kConflictOnly
                                     : PriorityMode::kCrossConflict);
    case RepairSemantics::kPareto:
      return ParetoBlockSolver();
    case RepairSemantics::kCompletion:
      return CompletionBlockSolver();
  }
  return ExhaustiveBlockSolver();
}

namespace {

// ---- Block-solve cache plumbing (cache/block_cache.h) ----------------
//
// Every helper below upholds the two cache invariants spelled out in
// docs/caching.md:
//
//  * Store only complete results.  Nothing produced by an exhausted
//    governor, no kUnknown verdict, no abandoned (empty / zero)
//    payload ever enters the table — which is why a stored entry is
//    automatically "computed under a sufficient budget" for any caller
//    whose own remaining headroom passes MayServe.
//  * Serve only when a fresh solve would have completed too.  The
//    caller's governor must still admit the block (WouldAdmitBlock, so
//    refusal accounting is reproduced by an actual refused solve), and
//    replaying the entry's node cost must not reach the node firing
//    index — otherwise the fresh solve would have fired mid-block and
//    the hit is refused so exactly that happens.

uint64_t SolverSalt(const BlockSolver& solver) {
  const std::string_view name = solver.Name();
  return HashRange(name.begin(), name.end());
}

// In audit builds, re-solves a served hit from scratch (fresh unlimited
// governor, no cache) and dies on any divergence — the safety net for
// fingerprint collisions and canonicalization bugs.
template <typename Fresh>
void AuditCacheHit(const ProblemContext& ctx, Fresh&& fresh_matches) {
  if (!audit::Enabled()) {
    return;
  }
  ProblemContext fresh = ctx.WorkerView(&ResourceGovernor::Unlimited());
  fresh.set_block_cache(nullptr);
  PREFREP_CHECK_MSG(fresh_matches(fresh),
                    "block-solve cache hit diverges from a fresh solve "
                    "(fingerprint collision or canonicalization bug)");
}

// CheckBlock through the cache.  Only the exhaustive solver is
// memoized: it is the non-polynomial path, and its witnesses
// ("an enumerated block-repair improves J on block #i") re-render
// byte-identically from the canonical payload — the tractable solvers'
// messages embed fact labels, which a fingerprint deliberately forgets.
CheckResult CacheAwareCheckBlock(const BlockSolver& solver,
                                 const ProblemContext& ctx, const Block& b,
                                 const DynamicBitset& j) {
  BlockSolveCache* cache = ctx.block_cache();
  if (cache == nullptr || &solver != &ExhaustiveBlockSolver() ||
      !ctx.priority_block_local()) {
    return solver.CheckBlock(ctx, b, j);
  }
  ResourceGovernor& governor = ctx.governor();
  if (!governor.WouldAdmitBlock(b.size())) {
    return solver.CheckBlock(ctx, b, j);  // records the refusal
  }
  const BlockFingerprint base = ComputeBlockFingerprint(ctx, b);
  const BlockFingerprint key =
      DeriveOpKey(base, BlockCacheOp::kVerdict, SolverSalt(solver),
                  CanonicalSubsetDigest(b, j));
  if (std::optional<BlockSolveCache::Entry> entry = cache->Lookup(key);
      entry.has_value() && MayServeCachedEntry(governor, *entry)) {
    cache->NoteHit();
    ReplayServedNodes(governor, *entry);
    CheckResult served;
    if (entry->optimal) {
      served = CheckResult::Optimal();
    } else {
      // Rehydrate the witness in this block's coordinates: same
      // enumeration index, same facts under the canonical isomorphism,
      // same message — byte-identical to the fresh solve.
      DynamicBitset candidate =
          (j - b.facts) |
          UncanonicalizeSubset(b, entry->witness_local, j.size());
      served = CheckResult::NotOptimal(
          std::move(candidate),
          "an enumerated block-repair improves J on block " +
              std::to_string(b.id));
    }
    AuditCacheHit(ctx, [&](const ProblemContext& fresh) {
      CheckResult expect = solver.CheckBlock(fresh, b, j);
      if (!expect.known() || expect.optimal != served.optimal) {
        return false;
      }
      if (expect.optimal) {
        return true;
      }
      return expect.witness.has_value() && served.witness.has_value() &&
             expect.witness->improvement == served.witness->improvement &&
             expect.witness->explanation == served.witness->explanation;
    });
    return served;
  }
  cache->NoteMiss();
  const uint64_t nodes_before = governor.nodes_spent();
  CheckResult result = solver.CheckBlock(ctx, b, j);
  if (!result.known() || governor.exhausted()) {
    return result;  // incomplete: never cached
  }
  BlockSolveCache::Entry entry;
  entry.optimal = result.optimal;
  if (!result.optimal) {
    if (!result.witness.has_value()) {
      return result;  // witnessless refutation: nothing replayable
    }
    entry.witness_local = CanonicalizeSubset(b, result.witness->improvement);
  }
  entry.nodes = governor.nodes_spent() - nodes_before;
  entry.nodes_valid = !governor.unlimited();
  cache->Store(base, key, std::move(entry));
  return result;
}

}  // namespace

std::vector<DynamicBitset> CachedOptimalBlockRepairs(const BlockSolver& solver,
                                                     const ProblemContext& ctx,
                                                     const Block& b) {
  BlockSolveCache* cache = ctx.block_cache();
  if (cache == nullptr || !solver.BlockDetermined() ||
      !ctx.priority_block_local()) {
    return solver.OptimalBlockRepairs(ctx, b);
  }
  ResourceGovernor& governor = ctx.governor();
  if (!governor.WouldAdmitBlock(b.size())) {
    return solver.OptimalBlockRepairs(ctx, b);  // records the refusal
  }
  const BlockFingerprint base = ComputeBlockFingerprint(ctx, b);
  const BlockFingerprint key =
      DeriveOpKey(base, BlockCacheOp::kOptimalSet, SolverSalt(solver));
  if (std::optional<BlockSolveCache::Entry> entry = cache->Lookup(key);
      entry.has_value() && MayServeCachedEntry(governor, *entry)) {
    cache->NoteHit();
    ReplayServedNodes(governor, *entry);
    std::vector<DynamicBitset> out;
    out.reserve(entry->repairs_local.size());
    for (const DynamicBitset& local : entry->repairs_local) {
      out.push_back(UncanonicalizeSubset(b, local, b.facts.size()));
    }
    AuditCacheHit(ctx, [&](const ProblemContext& fresh) {
      return solver.OptimalBlockRepairs(fresh, b) == out;
    });
    return out;
  }
  cache->NoteMiss();
  const uint64_t nodes_before = governor.nodes_spent();
  std::vector<DynamicBitset> out = solver.OptimalBlockRepairs(ctx, b);
  if (out.empty() || governor.exhausted()) {
    return out;  // empty means abandoned (see header): never cached
  }
  BlockSolveCache::Entry entry;
  entry.repairs_local.reserve(out.size());
  for (const DynamicBitset& r : out) {
    entry.repairs_local.push_back(CanonicalizeSubset(b, r));
  }
  entry.nodes = governor.nodes_spent() - nodes_before;
  entry.nodes_valid = !governor.unlimited();
  cache->Store(base, key, std::move(entry));
  return out;
}

uint64_t CachedCountBlock(const BlockSolver& solver, const ProblemContext& ctx,
                          const Block& b) {
  BlockSolveCache* cache = ctx.block_cache();
  if (cache == nullptr || !solver.BlockDetermined() ||
      !ctx.priority_block_local()) {
    return solver.CountBlock(ctx, b);
  }
  ResourceGovernor& governor = ctx.governor();
  if (!governor.WouldAdmitBlock(b.size())) {
    return solver.CountBlock(ctx, b);  // records the refusal
  }
  const BlockFingerprint base = ComputeBlockFingerprint(ctx, b);
  const BlockFingerprint key =
      DeriveOpKey(base, BlockCacheOp::kCount, SolverSalt(solver));
  if (std::optional<BlockSolveCache::Entry> entry = cache->Lookup(key);
      entry.has_value() && MayServeCachedEntry(governor, *entry)) {
    cache->NoteHit();
    ReplayServedNodes(governor, *entry);
    const uint64_t count = entry->count;
    AuditCacheHit(ctx, [&](const ProblemContext& fresh) {
      return solver.CountBlock(fresh, b) == count;
    });
    return count;
  }
  cache->NoteMiss();
  const uint64_t nodes_before = governor.nodes_spent();
  const uint64_t count = solver.CountBlock(ctx, b);
  if (count == 0 || governor.exhausted()) {
    // 0 is the "abandoned" sentinel and an exhausted count is a lower
    // bound; neither is a complete result.
    return count;
  }
  BlockSolveCache::Entry entry;
  entry.count = count;
  entry.nodes = governor.nodes_spent() - nodes_before;
  entry.nodes_valid = !governor.unlimited();
  cache->Store(base, key, std::move(entry));
  return count;
}

CheckResult AuditedCheckBlock(const BlockSolver& solver,
                              const ProblemContext& ctx, const Block& b,
                              const DynamicBitset& j) {
  CheckResult result = CacheAwareCheckBlock(solver, ctx, b, j);
  if (audit::Enabled() && audit::internal::ForcingWrongVerdict() &&
      result.known()) {
    // Test-only fault injection: corrupt the verdict so the death test
    // can prove the audit below actually fires.  An unknown verdict is
    // left alone — there is nothing to flip and the audit skips it.
    result = result.optimal ? CheckResult::NotOptimalNoWitness()
                            : CheckResult::Optimal();
  }
  audit::CheckBlockVerdict(ctx, solver, b, j, result);
  return result;
}

namespace {

// The shared combine loop: consistency, conflict-free facts, then the
// conjunction of per-block checks.  `give_free_witness` distinguishes
// the witness-producing semantics from the completion check (which,
// like its whole-instance counterpart, reports no witnesses).
template <typename SolverFor>
CheckResult CheckOptimalByBlocksImpl(const ProblemContext& ctx,
                                     const DynamicBitset& j,
                                     SolverFor&& solver_for,
                                     size_t* failed_block,
                                     bool give_free_witness,
                                     DegradationReport* degradation = nullptr) {
  PREFREP_CHECK_MSG(ctx.priority_block_local(),
                    "per-block optimality checking requires a block-local "
                    "priority");
  const ConflictGraph& cg = ctx.conflict_graph();
  if (!IsConsistent(cg, j)) {
    return CheckResult::NotOptimalNoWitness();
  }
  const BlockDecomposition& blocks = ctx.blocks();
  // A conflict-free fact belongs to every repair; no block check would
  // notice its absence.
  const DynamicBitset missing = blocks.free_facts() - j;
  if (missing.any()) {
    if (!give_free_witness) {
      return CheckResult::NotOptimalNoWitness();
    }
    FactId f = static_cast<FactId>(missing.FindFirst());
    DynamicBitset improvement = j;
    improvement.set(f);
    return CheckResult::NotOptimal(
        std::move(improvement),
        "J is not maximal: " + ctx.instance().FactToString(f) +
            " has no conflicts");
  }
  // Per-block conjunction with graceful degradation: a definite kNo
  // refutes J outright (even once the budget is exhausted — the witness
  // was found before or by a polynomial solver); an unknown block is
  // recorded and skipped, so every tractable block is still answered
  // exactly; any surviving unknown makes the conjunction unknown.
  ResourceGovernor& governor = ctx.governor();
  size_t exact = 0;
  std::string first_unknown_reason;
  std::vector<BlockDegradation> abandoned;
  BlockSolveCache* const cache = ctx.block_cache();
  const BlockCacheStats cache_before =
      cache != nullptr ? cache->stats() : BlockCacheStats{};
  const auto fill_report = [&]() {
    if (degradation == nullptr) {
      return;
    }
    degradation->blocks_total = blocks.blocks().size();
    degradation->blocks_exact = exact;
    degradation->blocks_abandoned = abandoned.size();
    degradation->nodes_spent = governor.nodes_spent();
    degradation->cause =
        governor.degraded() ? governor.CauseString() : std::string();
    if (cache != nullptr) {
      // Per-call delta of the shared counters; approximate when other
      // sessions hit the same cache concurrently (and excluded from the
      // byte-identical cache-on/off contract either way).
      const BlockCacheStats now = cache->stats();
      degradation->cache_hits = now.hits - cache_before.hits;
      degradation->cache_misses = now.misses - cache_before.misses;
    }
    degradation->abandoned = std::move(abandoned);
  };
  // The session speculates every block on the worker pool (when the
  // context allows parallelism) and hands back per-block results that
  // are byte-identical to running AuditedCheckBlock serially right
  // here, including the governor's accounting; see parallel_solver.h.
  ParallelBlockSession<CheckResult> session(
      ctx, AllBlocksInOrder(blocks),
      [&](const ProblemContext& cx, const Block& bb) {
        return AuditedCheckBlock(solver_for(bb), cx, bb, j);
      },
      [](const CheckResult& r) { return r.known(); },
      [](const CheckResult& r) { return r.known() && !r.optimal; });
  for (const Block& b : blocks.blocks()) {
    const uint64_t nodes_before = governor.nodes_spent();
    CheckResult result = session.Next(b);
    if (!result.known()) {
      abandoned.push_back(BlockDegradation{
          b.id, b.size(), governor.nodes_spent() - nodes_before,
          result.unknown_reason});
      if (first_unknown_reason.empty()) {
        first_unknown_reason = result.unknown_reason;
      }
      continue;
    }
    if (!result.optimal) {
      if (failed_block != nullptr) {
        *failed_block = b.id;
      }
      fill_report();
      return result;
    }
    ++exact;
  }
  fill_report();
  if (!first_unknown_reason.empty()) {
    return CheckResult::Unknown(std::move(first_unknown_reason));
  }
  return CheckResult::Optimal();
}

}  // namespace

CheckResult CheckGlobalOptimalByBlocks(const ProblemContext& ctx,
                                       const DynamicBitset& j,
                                       PriorityMode mode,
                                       size_t* failed_block,
                                       DegradationReport* degradation) {
  return CheckOptimalByBlocksImpl(
      ctx, j,
      [&](const Block& b) -> const BlockSolver& {
        return DispatchBlockSolver(ctx, b, mode);
      },
      failed_block, /*give_free_witness=*/true, degradation);
}

CheckResult CheckParetoOptimalByBlocks(const ProblemContext& ctx,
                                       const DynamicBitset& j) {
  return CheckOptimalByBlocksImpl(
      ctx, j,
      [](const Block&) -> const BlockSolver& { return ParetoBlockSolver(); },
      /*failed_block=*/nullptr, /*give_free_witness=*/true);
}

CheckResult CheckCompletionOptimalByBlocks(const ProblemContext& ctx,
                                           const DynamicBitset& j) {
  return CheckOptimalByBlocksImpl(
      ctx, j,
      [](const Block&) -> const BlockSolver& {
        return CompletionBlockSolver();
      },
      /*failed_block=*/nullptr, /*give_free_witness=*/false);
}

std::vector<DynamicBitset> AllOptimalRepairs(const ProblemContext& ctx,
                                             RepairSemantics semantics) {
  if (!ctx.priority_block_local()) {
    return AllOptimalRepairs(ctx.conflict_graph(), ctx.priority(), semantics);
  }
  ResourceGovernor& governor = ctx.governor();
  std::vector<DynamicBitset> out{ctx.blocks().free_facts()};
  // Per-block repair sets are enumeration order within one block, so a
  // worker's set is bitwise the serial one; the session only has to
  // merge them in block order (parallel_solver.h).
  ParallelBlockSession<std::vector<DynamicBitset>> session(
      ctx, AllBlocksInOrder(ctx.blocks()),
      [&](const ProblemContext& cx, const Block& bb) {
        return CachedOptimalBlockRepairs(SolverForSemantics(ctx, bb, semantics),
                                         cx, bb);
      },
      [](const std::vector<DynamicBitset>& v) { return !v.empty(); });
  for (const Block& b : ctx.blocks().blocks()) {
    const BlockSolver& solver = SolverForSemantics(ctx, b, semantics);
    std::vector<DynamicBitset> optimal = session.Next(b);
    if (optimal.empty()) {
      // Abandoned (budget fired or block refused): a partial
      // cross-product is not a set of repairs, so return nothing.  The
      // CHECK keeps the ungoverned invariant honest — an empty set
      // without degradation would be an algorithmic bug, not a budget.
      PREFREP_CHECK_MSG(
          governor.degraded() ||
              b.size() > ResourceGovernor::kMaxExhaustiveBlockFacts,
          "every block admits an optimal block-repair");
      return {};
    }
    audit::CheckBlockRepairSet(ctx, solver, b, optimal);
    // The cross-product is where enumeration really explodes — the
    // per-block sets above are at most 2^|block| each, but their
    // product multiplies across blocks.  Charge one checkpoint per
    // materialized repair so a node budget bounds the product itself,
    // not just the per-block solves feeding it.
    std::vector<DynamicBitset> next;
    next.reserve(out.size() * optimal.size());
    for (const DynamicBitset& prefix : out) {
      for (const DynamicBitset& choice : optimal) {
        if (!governor.Checkpoint()) {
          return {};
        }
        next.push_back(prefix | choice);
      }
    }
    out = std::move(next);
  }
  return out;
}

uint64_t CountOptimalRepairsByBlocks(const ProblemContext& ctx,
                                     RepairSemantics semantics) {
  return CountOptimalRepairsByBlocksBounded(ctx, semantics).lower_bound;
}

BoundedCount CountOptimalRepairsByBlocksBounded(const ProblemContext& ctx,
                                                RepairSemantics semantics) {
  PREFREP_CHECK_MSG(ctx.priority_block_local(),
                    "per-block counting requires a block-local priority");
  ResourceGovernor& governor = ctx.governor();
  BoundedCount out;
  // A zero payload is never adopted (it means refused, cut short at
  // zero, or — audited below — a genuine algorithmic zero), so the
  // rerun leaves the authoritative record on the shared governor.
  ParallelBlockSession<uint64_t> session(
      ctx, AllBlocksInOrder(ctx.blocks()),
      [&](const ProblemContext& cx, const Block& bb) {
        return CachedCountBlock(SolverForSemantics(ctx, bb, semantics), cx, bb);
      },
      [](const uint64_t& count) { return count > 0; });
  for (const Block& b : ctx.blocks().blocks()) {
    const BlockSolver& solver = SolverForSemantics(ctx, b, semantics);
    const bool was_exhausted = governor.exhausted();
    uint64_t block_count = session.Next(b);
    // A cut-short block keeps what it verified, floored at one (every
    // block has ≥ 1 optimal block-repair); 0 from an uncut block would
    // be an algorithmic bug and still goes through the audit below.
    const bool block_unknown =
        (!was_exhausted && governor.exhausted()) ||
        (block_count == 0 &&
         (governor.degraded() ||
          b.size() > ResourceGovernor::kMaxExhaustiveBlockFacts));
    if (block_unknown) {
      out.exact = false;
      ++out.unknown_blocks;
      block_count = block_count == 0 ? 1 : block_count;
    } else {
      audit::CheckBlockCount(ctx, solver, b, block_count);
      if (block_count == 0) {
        // An uncut zero annihilates the product exactly.
        out.lower_bound = 0;
        return out;
      }
    }
    bool saturated = false;
    out.lower_bound = SaturatingMulU64(out.lower_bound, block_count,
                                       &saturated);
    if (saturated) {
      out.saturated = true;
      out.exact = false;
    }
  }
  return out;
}

}  // namespace prefrep
