#include "base/thread_pool.h"

namespace prefrep {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? 1 : num_threads;
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::Submit(std::function<void()> task) {
  WorkerQueue& queue = *queues_[submit_cursor_];
  submit_cursor_ = (submit_cursor_ + 1) % queues_.size();
  {
    MutexLock lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  {
    // Publish under wake_mutex_ so a worker between its predicate check
    // and its wait cannot miss the wakeup.
    MutexLock lock(wake_mutex_);
    unclaimed_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.NotifyOne();
}

std::function<void()> ThreadPool::ClaimTask(size_t worker) {
  // Own deque first (front), then steal from siblings (back): the owner
  // and a thief meet at opposite ends, so they contend only when one
  // task is left.
  {
    WorkerQueue& own = *queues_[worker];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.front());
      own.tasks.pop_front();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  for (size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& victim = *queues_[(worker + i) % queues_.size()];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(size_t worker) {
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) {
      return;  // unstarted tasks are discarded by contract
    }
    if (std::function<void()> task = ClaimTask(worker)) {
      task();
      continue;
    }
    MutexLock lock(wake_mutex_);
    wake_cv_.Wait(wake_mutex_, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             unclaimed_.load(std::memory_order_relaxed) > 0;
    });
  }
}

}  // namespace prefrep
