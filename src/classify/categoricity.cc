#include "classify/categoricity.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "io/text_format.h"
#include "repair/audit.h"
#include "repair/block_solver.h"
#include "repair/parallel_solver.h"

namespace prefrep {

const char* CategoricityName(Categoricity value) {
  switch (value) {
    case Categoricity::kCategorical:
      return "categorical";
    case Categoricity::kAmbiguous:
      return "ambiguous";
    case Categoricity::kUnknown:
      return "unknown";
  }
  return "?";
}

// ---- CategoricityMemo ------------------------------------------------

const CategoricityMemo::Entry* CategoricityMemo::Lookup(
    FactId key, RepairSemantics semantics) const {
  auto it = entries_.find({key, static_cast<int>(semantics)});
  return it == entries_.end() ? nullptr : &it->second;
}

void CategoricityMemo::Store(FactId key, RepairSemantics semantics,
                             Entry entry) {
  PREFREP_CHECK_MSG(entry.unique != Trilean::kUnknown,
                    "only complete categoricity verdicts may be memoized");
  entries_[{key, static_cast<int>(semantics)}] = std::move(entry);
}

void CategoricityMemo::Invalidate(FactId key) {
  auto it = entries_.lower_bound({key, 0});
  while (it != entries_.end() && it->first.first == key) {
    it = entries_.erase(it);
  }
}

namespace {

// A block's memo key: its smallest fact id — the same key the serve
// layer files block state (and fingerprint invalidation) under.
FactId BlockKey(const Block& b) { return b.fact_list.front(); }

// Whether the priority totally orders every conflicting pair of `b`.
// Conflict neighbors of a block fact are block facts by definition of
// connected components, so scanning adjacency lists covers exactly the
// block's conflict pairs.
bool BlockPriorityTotalOnConflicts(const ConflictGraph& cg,
                                   const PriorityRelation& pr,
                                   const Block& b) {
  for (FactId f : b.fact_list) {
    for (FactId g : cg.neighbors(f)) {
      if (g <= f) {
        continue;  // each conflict pair once
      }
      if (!pr.Prefers(f, g) && !pr.Prefers(g, f)) {
        return false;
      }
    }
  }
  return true;
}

// Whether no priority edge touches any fact of `b` (in either
// orientation, including edges leaving the block).  Such a block's
// improvement relation is empty under every semantics — nothing is
// preferred to anything — so EVERY block-repair is optimal, and a block
// with a conflict pair has at least two maximal independent sets:
// ambiguous outright, in time linear in the block.
bool BlockPriorityEmpty(const PriorityRelation& pr, const Block& b) {
  for (FactId f : b.fact_list) {
    if (!pr.Dominates(f).empty() || !pr.DominatedBy(f).empty()) {
      return false;
    }
  }
  return true;
}

// Test-only fault injection, same contract as AuditedCheckBlock:
// corrupt the verdict *before* it is audited so the death test can
// prove the categoricity audit actually fires.  A flipped kFalse gets
// no repair, which the audit also rejects.
void MaybeCorruptForTesting(BlockCategoricity* result) {
  if (audit::Enabled() && audit::internal::ForcingWrongVerdict() &&
      result->unique != Trilean::kUnknown) {
    result->unique = result->unique == Trilean::kTrue ? Trilean::kFalse
                                                      : Trilean::kTrue;
  }
}

// The per-block decision with the conflict-boundedness of the whole
// priority precomputed (it is O(priority edges) to test, so
// DecideCategoricity pays for it once, not per block).
BlockCategoricity DecideBlockImpl(const ProblemContext& ctx, const Block& b,
                                  RepairSemantics semantics,
                                  bool conflict_bounded) {
  BlockCategoricity out;
  if (conflict_bounded &&
      BlockPriorityTotalOnConflicts(ctx.conflict_graph(), ctx.priority(), b)) {
    // Fast tier: a total priority admits exactly one optimal
    // block-repair, identical under all three semantics ([SCM]), and
    // the greedy block construction produces it in polynomial time.
    out.unique = Trilean::kTrue;
    out.repair = SolverForSemantics(ctx, b, semantics).ConstructBlock(ctx, b);
    MaybeCorruptForTesting(&out);
    return out;
  }
  if (b.fact_list.size() >= 2 && BlockPriorityEmpty(ctx.priority(), b)) {
    // Ambiguity tier: conflicts with no preferences means every
    // block-repair is optimal, and there are at least two.  Keeps the
    // pre-pass polynomial on near-miss instances, where the broken
    // block is exactly this shape.
    out.unique = Trilean::kFalse;
    MaybeCorruptForTesting(&out);
    return out;
  }
  // Exact tier: materialize the optimal block-repairs and test
  // uniqueness.  Empty unambiguously means abandoned (every block has
  // at least one optimal block-repair).
  out.exponential = true;
  std::vector<DynamicBitset> optimal = CachedOptimalBlockRepairs(
      SolverForSemantics(ctx, b, semantics), ctx, b);
  if (optimal.empty()) {
    ResourceGovernor& governor = ctx.governor();
    out.unique = Trilean::kUnknown;
    out.unknown_reason = governor.exhausted()
                             ? governor.CauseString()
                             : "block " + std::to_string(b.id) +
                                   " refused by the block-admission budget";
  } else if (optimal.size() == 1) {
    out.unique = Trilean::kTrue;
    out.repair = std::move(optimal.front());
  } else {
    out.unique = Trilean::kFalse;
  }
  MaybeCorruptForTesting(&out);
  return out;
}

// Mirror of the block-solve cache's MayServeCachedEntry (see
// docs/caching.md): serve a memoized verdict only when a fresh decision
// under `governor` would have completed identically.  Exponential
// entries must additionally re-pass block admission, so the refusal a
// fresh solve would have recorded is reproduced by an actual refused
// solve instead of short-circuited.
bool MayServeMemoEntry(const ResourceGovernor& governor,
                       const CategoricityMemo::Entry& entry,
                       size_t block_facts) {
  if (entry.exponential && !governor.WouldAdmitBlock(block_facts)) {
    return false;
  }
  if (governor.unlimited()) {
    return true;
  }
  if (governor.exhausted()) {
    return false;
  }
  if (governor.budget().Unlimited() && governor.NodeFiringIndex() == 0) {
    return true;  // cancellation-only governor: no node-space dimension
  }
  if (!entry.nodes_valid) {
    return false;
  }
  const uint64_t firing = governor.NodeFiringIndex();
  if (firing != 0 && governor.nodes_spent() + entry.nodes >= firing) {
    return false;
  }
  return true;
}

BlockCategoricity FromMemoEntry(const CategoricityMemo::Entry& entry,
                                size_t universe_size) {
  BlockCategoricity out;
  out.unique = entry.unique;
  out.exponential = entry.exponential;
  if (entry.unique == Trilean::kTrue) {
    out.repair = DynamicBitset(universe_size);
    for (FactId f : entry.repair_facts) {
      out.repair.set(f);
    }
  }
  return out;
}

CategoricityMemo::Entry ToMemoEntry(const BlockCategoricity& result,
                                    uint64_t nodes, bool nodes_valid) {
  CategoricityMemo::Entry entry;
  entry.unique = result.unique;
  entry.exponential = result.exponential;
  entry.nodes = nodes;
  entry.nodes_valid = nodes_valid;
  if (result.unique == Trilean::kTrue) {
    for (size_t f = 0; f < result.repair.size(); ++f) {
      if (result.repair.test(f)) {
        entry.repair_facts.push_back(f);
      }
    }
  }
  return entry;
}

}  // namespace

BlockCategoricity DecideBlockCategoricity(const ProblemContext& ctx,
                                          const Block& b,
                                          RepairSemantics semantics) {
  return DecideBlockImpl(ctx, b, semantics,
                         ctx.priority().IsConflictBounded());
}

CategoricityResult DecideCategoricity(const ProblemContext& ctx,
                                      RepairSemantics semantics,
                                      CategoricityMemo* memo) {
  CategoricityResult result;
  if (!ctx.priority_block_local()) {
    // Per-block composition is unsound for cross-block priorities, and
    // a whole-instance uniqueness test costs exactly the enumeration
    // the fast path exists to avoid — report "undecided" for free.
    result.unknown_reason =
        "priority relates facts across blocks; per-block categoricity "
        "does not apply";
    return result;
  }
  ResourceGovernor& governor = ctx.governor();
  const BlockDecomposition& blocks = ctx.blocks();
  const bool conflict_bounded = ctx.priority().IsConflictBounded();

  // Blocks without a memoized verdict run through the parallel session;
  // memoized blocks are resolved at merge time, rerun serially when the
  // entry cannot be served under this governor.
  std::vector<const CategoricityMemo::Entry*> memoized(blocks.num_blocks(),
                                                       nullptr);
  std::vector<size_t> fresh_order;
  fresh_order.reserve(blocks.num_blocks());
  for (const Block& b : blocks.blocks()) {
    if (memo != nullptr) {
      memoized[b.id] = memo->Lookup(BlockKey(b), semantics);
    }
    if (memoized[b.id] == nullptr) {
      if (memo != nullptr) {
        ++memo->misses_;
      }
      fresh_order.push_back(b.id);
    }
  }
  ParallelBlockSession<BlockCategoricity> session(
      ctx, std::move(fresh_order),
      [semantics, conflict_bounded](const ProblemContext& cx,
                                    const Block& bb) {
        return DecideBlockImpl(cx, bb, semantics, conflict_bounded);
      },
      [](const BlockCategoricity& r) { return r.unique != Trilean::kUnknown; },
      [](const BlockCategoricity& r) { return r.unique == Trilean::kFalse; });

  DynamicBitset repair = blocks.free_facts();
  for (const Block& b : blocks.blocks()) {
    if (!governor.Checkpoint()) {
      result.unknown_reason = governor.CauseString();
      return result;
    }
    BlockCategoricity block_result;
    bool store = false;
    const uint64_t before = governor.nodes_spent();
    if (memoized[b.id] != nullptr &&
        MayServeMemoEntry(governor, *memoized[b.id], b.size())) {
      ++memo->hits_;
      const CategoricityMemo::Entry& entry = *memoized[b.id];
      governor.CommitReplayNodes(entry.nodes_valid ? entry.nodes : 0);
      block_result = FromMemoEntry(entry, repair.size());
    } else if (memoized[b.id] != nullptr) {
      // Unservable entry: rerun on the caller's thread so the shared
      // governor records the authoritative refusal/exhaustion.
      ++memo->misses_;
      block_result = DecideBlockImpl(ctx, b, semantics, conflict_bounded);
      store = true;
    } else {
      block_result = session.Next(b);
      store = memo != nullptr;
    }
    audit::CheckBlockCategoricity(ctx, b, semantics, block_result);
    if (store && block_result.unique != Trilean::kUnknown) {
      memo->Store(BlockKey(b), semantics,
                  ToMemoEntry(block_result, governor.nodes_spent() - before,
                              /*nodes_valid=*/!governor.unlimited()));
    }
    if (block_result.unique == Trilean::kFalse) {
      result.verdict = Categoricity::kAmbiguous;
      result.ambiguous_block = b.id;
      audit::CheckCategoricityVerdict(ctx, semantics, result);
      return result;
    }
    if (block_result.unique == Trilean::kUnknown) {
      result.unknown_reason = block_result.unknown_reason.empty()
                                  ? governor.CauseString()
                                  : block_result.unknown_reason;
      return result;
    }
    repair |= block_result.repair;
  }
  result.verdict = Categoricity::kCategorical;
  result.repair = std::move(repair);
  audit::CheckCategoricityVerdict(ctx, semantics, result);
  return result;
}

namespace audit {
namespace internal {

#if PREFREP_AUDIT_ENABLED

namespace {

// Same contract as the repair-audit Fail: print the offending instance
// in the io/text_format grammar for replay, then abort.
[[noreturn]] void FailCategoricity(const Instance& instance,
                                   const PriorityRelation& pr,
                                   const std::string& what) {
  std::string dump = ProblemToText(instance, &pr, nullptr);
  std::fprintf(stderr,
               "[prefrep audit] %s\n"
               "[prefrep audit] replay input (io/text_format):\n%s",
               what.c_str(), dump.c_str());
  PREFREP_FATAL("categoricity audit failed — replay dump above");
}

// The definitional optimal-repair set of one block: enumerate its
// block-repairs and keep the ones nothing improves (repair/exhaustive.h
// — the same baseline layer every repair audit uses).
std::vector<DynamicBitset> DefinitionalBlockOptimal(
    const ProblemContext& ctx, const Block& b, RepairSemantics semantics) {
  return OptimalRepairsWithin(ctx.conflict_graph(), ctx.priority(), b.facts,
                              semantics);
}

}  // namespace

void BlockCategoricityImpl(const ProblemContext& ctx, const Block& b,
                           RepairSemantics semantics,
                           const BlockCategoricity& result) {
  if (result.unique == Trilean::kUnknown || b.size() > kMaxVerdictBlock) {
    return;  // an undecided verdict asserts nothing
  }
  std::vector<DynamicBitset> optimal =
      DefinitionalBlockOptimal(ctx, b, semantics);
  const bool unique = optimal.size() == 1;
  const std::string tag =
      "categoricity of block " + std::to_string(b.id) + " (" +
      std::to_string(b.size()) + " facts)";
  if (unique != (result.unique == Trilean::kTrue)) {
    FailCategoricity(ctx.instance(), ctx.priority(),
                     tag + ": verdict " + TrileanName(result.unique) +
                         " but the block has " +
                         std::to_string(optimal.size()) +
                         " optimal block-repair(s)");
  }
  if (result.unique == Trilean::kTrue && !(result.repair == optimal.front())) {
    FailCategoricity(ctx.instance(), ctx.priority(),
                     tag + ": reported unique block-repair is not the "
                           "definitional one");
  }
}

void CategoricityVerdictImpl(const ProblemContext& ctx,
                             RepairSemantics semantics,
                             const CategoricityResult& result) {
  if (result.verdict == Categoricity::kUnknown ||
      !ctx.priority_block_local()) {
    return;
  }
  const BlockDecomposition& blocks = ctx.blocks();
  size_t live_facts = blocks.free_facts().count();
  for (const Block& b : blocks.blocks()) {
    live_facts += b.size();
  }
  if (live_facts > kMaxWholeInstance) {
    return;
  }
  // Definitional optimal-repair set over the context's own universe
  // ({free facts} × ∏ per-block optimal block-repairs — the resident
  // decomposition may carry tombstoned ids a from-graph rebuild would
  // misread as free facts).  Ungoverned on purpose, like every audit
  // baseline: the kMaxWholeInstance gate above bounds the product.
  std::vector<DynamicBitset> all{blocks.free_facts()};
  for (const Block& b : blocks.blocks()) {
    std::vector<DynamicBitset> per_block =
        DefinitionalBlockOptimal(ctx, b, semantics);
    std::vector<DynamicBitset> next;
    next.reserve(all.size() * per_block.size());
    for (const DynamicBitset& prefix : all) {
      for (const DynamicBitset& choice : per_block) {
        next.push_back(prefix | choice);
      }
    }
    all = std::move(next);
  }
  const bool unique = all.size() == 1;
  if (unique != (result.verdict == Categoricity::kCategorical)) {
    FailCategoricity(ctx.instance(), ctx.priority(),
                     std::string("whole-instance categoricity: verdict ") +
                         CategoricityName(result.verdict) + " but " +
                         std::to_string(all.size()) +
                         " optimal repair(s) exist");
  }
  if (result.verdict == Categoricity::kCategorical &&
      !(result.repair == all.front())) {
    FailCategoricity(ctx.instance(), ctx.priority(),
                     "whole-instance categoricity: reported unique repair "
                     "is not the definitional one");
  }
}

#endif  // PREFREP_AUDIT_ENABLED

}  // namespace internal
}  // namespace audit
}  // namespace prefrep
