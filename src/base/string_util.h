// Copyright (c) prefrep contributors.
// Small string helpers used by parsers, printers and error messages.

#ifndef PREFREP_BASE_STRING_UTIL_H_
#define PREFREP_BASE_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace prefrep {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Splits `s` on `sep` and strips whitespace from each piece; empty pieces
/// are dropped.
std::vector<std::string> StrSplitTrimmed(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Returns true if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative decimal integer; nullopt on any non-digit content.
std::optional<uint64_t> ParseUint(std::string_view s);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace prefrep

#endif  // PREFREP_BASE_STRING_UTIL_H_
