// Copyright (c) prefrep contributors.
// Fuzz harness for the problem text format (io/text_format.h).
//
// Properties checked on every input the parser accepts:
//   1. Render/reparse closure: ProblemToText of a parsed problem must
//      itself parse.  Serialization is the session layer's rebuild
//      surface (serve/session.h byte-identical-rebuild contract), so a
//      parseable state whose serialization does not reparse would break
//      resident serving.
//   2. Render idempotence: serializing the reparsed problem must
//      reproduce the serialization byte for byte.  ProblemToText emits
//      facts in id order and the reparse's id compaction is
//      order-preserving, so one round must reach a fixpoint.
// Rejected inputs must fail with a Status, never a crash.
//
// Build: linked against libFuzzer under the `fuzz` preset, or against
// tests/fuzz/standalone_driver.cc everywhere else (same CLI).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "io/text_format.h"

namespace prefrep {
namespace {

[[noreturn]] void PropertyFailure(const char* property,
                                  const std::string& detail) {
  std::fprintf(stderr, "[text_format_fuzz] %s violated: %s\n", property,
               detail.c_str());
  std::abort();  // the crash signal both libFuzzer and the driver report
}

}  // namespace
}  // namespace prefrep

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  prefrep::Result<prefrep::PreferredRepairProblem> problem =
      prefrep::ParseProblemText(input);
  if (!problem.ok()) {
    return 0;  // rejection with a Status is the expected failure mode
  }

  std::string rendered = prefrep::ProblemToText(*problem);
  prefrep::Result<prefrep::PreferredRepairProblem> reparsed =
      prefrep::ParseProblemText(rendered);
  if (!reparsed.ok()) {
    prefrep::PropertyFailure(
        "render/reparse closure",
        rendered + "\n-- error: " + reparsed.status().ToString());
  }
  std::string again = prefrep::ProblemToText(*reparsed);
  if (again != rendered) {
    prefrep::PropertyFailure("render idempotence",
                             rendered + "\n-- reserialized:\n" + again);
  }
  return 0;
}
