#!/usr/bin/env python3
"""Perf-regression gate for the conflict hot path (B18).

    python3 tools/perf_gate.py --baseline BENCH_hotpath.json \
                               [--bench build/bench/bench_hotpath]
    python3 tools/perf_gate.py --baseline <json> --current <json>
    python3 tools/perf_gate.py --selftest

Re-measures the hotpath suite (or takes a pre-distilled --current) and
compares it against the committed baseline BENCH_hotpath.json.  Only
RATIOS are compared — flat-join speedup over the preserved reference
join, the FactsAgreeOn early-exit gain, the scalar-fallback penalty —
because ratios of two measurements taken on the same machine in the
same run transfer across hardware, while absolute microseconds do not.
A committed baseline from one machine therefore gates runs on any
other.

Gate rules (see docs/memory-layout.md):

  flat_speedup      >= 3.0 at every shard point (absolute floor), and
                    >= 75% of the baseline ratio (25% regression
                    tolerance for noise);
  early_exit_gain   >= 2.0, and >= 75% of baseline — losing the
                    short-circuit shows up as this ratio collapsing
                    to ~1;
  scalar_penalty    <= 1.25x baseline and <= 2.0 absolute — the scalar
                    fallback drifting away from the vector kernel means
                    a portability regression.

Exit status 1 on any breach, with one line per failed rule.  --selftest
verifies the gate actually bites: a synthetically regressed current
must fail, an identical current must pass.

Stdlib-only by design (runs in CI and the bare build container).
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_to_json import distill_hotpath, run_bench  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

TOLERANCE = 0.75          # current ratio must be >= 75% of baseline
SPEEDUP_FLOOR = 3.0       # flat join vs reference, any shard count
EARLY_EXIT_FLOOR = 2.0    # FactsAgreeOn short-circuit gain
SCALAR_CEILING = 2.0      # scalar fallback vs vector kernel
SCALAR_HEADROOM = 1.25    # allowed growth over the baseline penalty


def check(baseline: dict, current: dict) -> list[str]:
    """Returns one message per violated gate rule (empty = pass)."""
    failures: list[str] = []
    for shards, base_row in sorted(baseline.get("conflict_build", {}).items(),
                                   key=lambda kv: int(kv[0])):
        cur_row = current.get("conflict_build", {}).get(shards)
        if cur_row is None or "flat_speedup" not in cur_row:
            failures.append(f"conflict_build[{shards}]: missing from the "
                            f"current measurement")
            continue
        speedup = cur_row["flat_speedup"]
        base = base_row.get("flat_speedup")
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"conflict_build[{shards}].flat_speedup = {speedup:.2f}x "
                f"breaches the >= {SPEEDUP_FLOOR:.1f}x floor")
        if base is not None and speedup < base * TOLERANCE:
            failures.append(
                f"conflict_build[{shards}].flat_speedup = {speedup:.2f}x "
                f"regressed > {100 * (1 - TOLERANCE):.0f}% from the "
                f"baseline {base:.2f}x")
        penalty = cur_row.get("scalar_penalty")
        base_penalty = base_row.get("scalar_penalty")
        if penalty is not None:
            if penalty > SCALAR_CEILING:
                failures.append(
                    f"conflict_build[{shards}].scalar_penalty = "
                    f"{penalty:.2f}x breaches the <= {SCALAR_CEILING:.1f}x "
                    f"ceiling")
            if base_penalty is not None and \
                    penalty > max(base_penalty, 1.0) * SCALAR_HEADROOM:
                failures.append(
                    f"conflict_build[{shards}].scalar_penalty = "
                    f"{penalty:.2f}x grew > {100 * (SCALAR_HEADROOM - 1):.0f}% "
                    f"over the baseline {base_penalty:.2f}x")
    base_kernel = baseline.get("agree_kernel", {})
    cur_kernel = current.get("agree_kernel", {})
    gain = cur_kernel.get("early_exit_gain")
    base_gain = base_kernel.get("early_exit_gain")
    if gain is None:
        failures.append("agree_kernel.early_exit_gain: missing from the "
                        "current measurement")
    else:
        if gain < EARLY_EXIT_FLOOR:
            failures.append(
                f"agree_kernel.early_exit_gain = {gain:.2f}x breaches the "
                f">= {EARLY_EXIT_FLOOR:.1f}x floor — the FactsAgreeOn "
                f"short-circuit is gone")
        if base_gain is not None and gain < base_gain * TOLERANCE:
            failures.append(
                f"agree_kernel.early_exit_gain = {gain:.2f}x regressed "
                f"> {100 * (1 - TOLERANCE):.0f}% from the baseline "
                f"{base_gain:.2f}x")
    return failures


def selftest() -> int:
    baseline = {
        "conflict_build": {
            "8": {"flat_speedup": 5.0, "scalar_penalty": 1.0},
            "32": {"flat_speedup": 10.0, "scalar_penalty": 1.0},
        },
        "agree_kernel": {"early_exit_gain": 7.0},
    }
    # Identical measurement: must pass.
    if check(baseline, copy.deepcopy(baseline)):
        print("perf_gate selftest: FAIL — identical current was rejected",
              file=sys.stderr)
        return 1
    # A 40% speedup regression (beyond the 25% tolerance): must fail.
    regressed = copy.deepcopy(baseline)
    regressed["conflict_build"]["32"]["flat_speedup"] = 6.0
    if not check(baseline, regressed):
        print("perf_gate selftest: FAIL — 40% speedup regression passed",
              file=sys.stderr)
        return 1
    # A floor breach with a matching (already-bad) baseline: must fail.
    bad_floor = copy.deepcopy(baseline)
    bad_floor["conflict_build"]["8"]["flat_speedup"] = 2.0
    if not check(bad_floor, copy.deepcopy(bad_floor)):
        print("perf_gate selftest: FAIL — sub-floor speedup passed",
              file=sys.stderr)
        return 1
    # A lost early exit: must fail.
    no_exit = copy.deepcopy(baseline)
    no_exit["agree_kernel"]["early_exit_gain"] = 1.0
    if not check(baseline, no_exit):
        print("perf_gate selftest: FAIL — lost early exit passed",
              file=sys.stderr)
        return 1
    # A scalar fallback drifting to 3x the vector kernel: must fail.
    slow_scalar = copy.deepcopy(baseline)
    slow_scalar["conflict_build"]["8"]["scalar_penalty"] = 3.0
    if not check(baseline, slow_scalar):
        print("perf_gate selftest: FAIL — 3x scalar penalty passed",
              file=sys.stderr)
        return 1
    print("perf_gate selftest: all synthetic regressions rejected, "
          "identical measurement accepted")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_hotpath.json to gate against")
    parser.add_argument("--bench",
                        default=str(REPO_ROOT / "build/bench/bench_hotpath"),
                        help="hotpath benchmark binary to measure")
    parser.add_argument("--current", default=None,
                        help="pre-distilled current JSON (skips the "
                             "benchmark run; for CI debugging)")
    parser.add_argument("--selftest", action="store_true",
                        help="verify the gate rejects synthetic regressions")
    args = parser.parse_args()
    if args.selftest:
        return selftest()
    if args.baseline is None:
        parser.error("--baseline is required (or use --selftest)")
    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    if args.current is not None:
        current = json.loads(Path(args.current).read_text(encoding="utf-8"))
    else:
        bench = Path(args.bench)
        if not bench.exists():
            print(f"perf_gate: no binary at {bench} — build bench_hotpath "
                  f"first", file=sys.stderr)
            return 1
        current = distill_hotpath(run_bench(bench))
    failures = check(baseline, current)
    for failure in failures:
        print(f"perf_gate: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    for shards, row in sorted(current.get("conflict_build", {}).items(),
                              key=lambda kv: int(kv[0])):
        print(f"perf_gate: ok conflict_build[{shards}] "
              f"{row['flat_speedup']:.1f}x (baseline "
              f"{baseline['conflict_build'][shards]['flat_speedup']:.1f}x)")
    gain = current.get("agree_kernel", {}).get("early_exit_gain")
    if gain is not None:
        print(f"perf_gate: ok agree_kernel {gain:.1f}x early-exit gain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
