#include "gen/edit_script.h"

#include <algorithm>
#include <utility>

#include "base/macros.h"
#include "base/random.h"
#include "base/string_util.h"
#include "io/ops_format.h"

namespace prefrep {

namespace {

// One fact the script may ever reference.  A fact's priority rank is
// its global creation order and never changes — revival re-inserts the
// same label and constants, so every prefer edge points from an
// earlier-created fact to a later-created one and the priority stays
// acyclic over any prefix of the script.
struct ScriptFact {
  std::string label;
  std::vector<std::string> constants;
};

// Live/tombstoned bookkeeping for one shard.  Indices refer to the
// workload-wide fact table; `tombstoned` is a stack (most recent last)
// so revival replays the most recently deleted fact first.
struct ShardState {
  std::vector<size_t> live;
  std::vector<size_t> tombstoned;
};

SessionOp QueryOp(size_t turn) {
  SessionOp op;
  switch (turn % 8) {
    case 0:
      op.kind = SessionOp::Kind::kCheck;
      op.semantics = AnswerSemantics::kGlobal;
      break;
    case 1:
      op.kind = SessionOp::Kind::kCount;
      op.semantics = AnswerSemantics::kGlobal;
      break;
    case 2:
      op.kind = SessionOp::Kind::kCheck;
      op.semantics = AnswerSemantics::kPareto;
      break;
    case 3:
      op.kind = SessionOp::Kind::kConstruct;
      break;
    case 4:
      op.kind = SessionOp::Kind::kCqa;
      op.semantics = AnswerSemantics::kGlobal;
      op.query = "Q(x) :- R(x, y, z)";
      break;
    case 5:
      op.kind = SessionOp::Kind::kCount;
      op.semantics = AnswerSemantics::kPareto;
      break;
    case 6:
      op.kind = SessionOp::Kind::kCheck;
      op.semantics = AnswerSemantics::kCompletion;
      break;
    default:
      op.kind = SessionOp::Kind::kCqa;
      op.semantics = AnswerSemantics::kAllRepairs;
      op.query = "Q(y) :- R(x, y, z)";
      break;
  }
  return op;
}

}  // namespace

EditScriptWorkload MakeEditScriptWorkload(const EditScriptOptions& options) {
  PREFREP_CHECK_MSG(options.shards >= 1,
                    "an edit script needs at least one shard");
  PREFREP_CHECK_MSG(options.facts_per_shard >= 2,
                    "a shard below two facts is not a conflict block");
  EditScriptWorkload out;

  // R(3) with FD 1 → 2: facts sharing attribute 1 and differing on
  // attribute 2 conflict pairwise, so each shard (one attribute-1
  // constant, pairwise-distinct attribute-2 constants) is one clique.
  Schema schema;
  const RelId rel = schema.MustAddRelation("R", 3);
  schema.MustAddFd(rel, FD(AttrSet{1}, AttrSet{2}));
  out.problem = PreferredRepairProblem(std::move(schema));
  Instance& inst = *out.problem.instance;
  const std::string relation = inst.schema().relation_name(rel);

  std::vector<ScriptFact> facts;  // index = creation rank
  std::vector<ShardState> shard_state(options.shards);
  auto shard_fact = [&](size_t shard, const std::string& label,
                        std::string attr2) {
    ScriptFact f;
    f.label = label;
    f.constants = {StrFormat("s%zu", shard), std::move(attr2),
                   StrFormat("p%zu", facts.size())};
    facts.push_back(f);
    return facts.size() - 1;
  };

  for (size_t s = 0; s < options.shards; ++s) {
    for (size_t i = 0; i < options.facts_per_shard; ++i) {
      const size_t idx = shard_fact(s, StrFormat("s%zuf%zu", s, i),
                                    StrFormat("v%zu_%zu", s, i));
      inst.MustAddFact(relation, facts[idx].constants, facts[idx].label);
      shard_state[s].live.push_back(idx);
    }
  }
  out.problem.InitPriority();
  for (size_t s = 0; s < options.shards; ++s) {
    PREFREP_CHECK(out.problem.priority
                      ->AddByLabels(StrFormat("s%zuf0", s),
                                    StrFormat("s%zuf1", s))
                      .ok());
  }
  out.problem.j = inst.EmptySubinstance();
  for (size_t s = 0; s < options.shards; ++s) {
    out.problem.j.set(inst.FindLabel(StrFormat("s%zuf0", s)));
  }

  Rng rng(options.seed);
  ZipfTable zipf(options.shards, options.shard_skew);
  size_t fresh_counter = 0;
  size_t query_turn = 0;

  auto emit = [&](const SessionOp& op) {
    out.ops.push_back(SessionOpToString(op));
  };
  auto emit_insert = [&](size_t shard, size_t idx) {
    SessionOp op;
    op.kind = SessionOp::Kind::kInsert;
    op.label = facts[idx].label;
    op.relation = relation;
    op.constants = facts[idx].constants;
    emit(op);
    shard_state[shard].live.push_back(idx);
  };
  auto fresh_insert = [&](size_t shard) {
    const size_t idx =
        shard_fact(shard, StrFormat("e%zu", fresh_counter),
                   StrFormat("w%zu", fresh_counter));
    ++fresh_counter;
    emit_insert(shard, idx);
  };

  while (out.ops.size() < options.num_ops) {
    // Every pass below emits exactly one op, so this is the op index.
    const size_t op_index = out.ops.size();
    if (options.jset_every != 0 && op_index > 0 &&
        op_index % options.jset_every == 0) {
      // Re-anchor J to the lowest-ranked live fact of every nonempty
      // shard (deletes may have drained it).
      SessionOp op;
      op.kind = SessionOp::Kind::kJSet;
      for (ShardState& state : shard_state) {
        if (state.live.empty()) {
          continue;
        }
        const size_t idx =
            *std::min_element(state.live.begin(), state.live.end());
        op.labels.push_back(facts[idx].label);
      }
      emit(op);
      continue;
    }
    if (rng.NextBool(options.query_fraction)) {
      emit(QueryOp(query_turn++));
      continue;
    }
    const size_t shard = zipf.Sample(&rng);
    ShardState& state = shard_state[shard];
    if (rng.NextBool(options.delete_fraction) && !state.live.empty()) {
      const size_t pos = rng.NextBounded(state.live.size());
      const size_t idx = state.live[pos];
      state.live.erase(state.live.begin() + static_cast<ptrdiff_t>(pos));
      state.tombstoned.push_back(idx);
      SessionOp op;
      op.kind = SessionOp::Kind::kDelete;
      op.label = facts[idx].label;
      emit(op);
      continue;
    }
    if (state.live.size() >= 2 && rng.NextBool(0.4)) {
      // Prefer two live clique members, oriented by creation rank.
      size_t a = state.live[rng.NextBounded(state.live.size())];
      size_t b = state.live[rng.NextBounded(state.live.size())];
      if (a != b) {
        if (a > b) {
          std::swap(a, b);
        }
        SessionOp op;
        op.kind = SessionOp::Kind::kPrefer;
        op.chain = {facts[a].label, facts[b].label};
        emit(op);
        continue;
      }
    }
    if (!state.tombstoned.empty() && rng.NextBool(0.3)) {
      // Revive the shard's most recently deleted fact (same label and
      // constants — the session's revival path).
      const size_t idx = state.tombstoned.back();
      state.tombstoned.pop_back();
      emit_insert(shard, idx);
      continue;
    }
    fresh_insert(shard);
  }
  return out;
}

}  // namespace prefrep
