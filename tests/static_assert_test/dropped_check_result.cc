// Copyright (c) prefrep contributors.
// Negative-compile proof: dropping a CheckResult MUST NOT compile under
// -Werror=unused-result.  A dropped CheckResult is a swallowed verdict
// (possibly kUnknown — a budget expiry the caller never saw), so the
// struct is declared [[nodiscard]] in repair/improvement.h.

#include "repair/improvement.h"

namespace {

prefrep::CheckResult Decide() { return prefrep::CheckResult::Optimal(); }

void Caller() {
  Decide();  // dropped verdict — must be a hard error
}

}  // namespace

int main() {
  Caller();
  return 0;
}
