// Copyright (c) prefrep contributors.
// Word-parallel equality over contiguous ValueId runs — the innermost
// kernel of FD-projection comparison (conflicts/projection.h).  The
// columnar fact arena (model/instance.h) stores a tuple as a contiguous
// fixed-stride row of 32-bit ValueIds, so "do two facts agree on a
// contiguous attribute range" is a memcmp-shaped loop: 8 ValueIds per
// 64-byte cache line, 4 per 128-bit vector register.
//
// Dispatch rules (documented in docs/memory-layout.md):
//   * runs shorter than one vector (n < 4) take the scalar loop — the
//     common case for narrow FDs (1–3 columns), where a branch to the
//     vector path would cost more than it saves;
//   * SSE2 on x86-64 and NEON on AArch64 are compile-time baseline ISA
//     features, so there is no runtime CPUID probing — the preprocessor
//     picks exactly one implementation per build;
//   * every vector path has a scalar twin (EqualRangeScalar) that is
//     always compiled, is the only implementation on other targets, and
//     can be forced at runtime (SetForceScalar) so benchmarks report an
//     honest no-SIMD fallback column (bench/bench_hotpath.cc).
//
// All comparisons are exact 32-bit equality; there is no tolerance, no
// masking, and no read past `n` elements (tails fall back to scalar),
// so the kernel is safe on the last row of an arena slab.

#ifndef PREFREP_BASE_SIMD_H_
#define PREFREP_BASE_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#define PREFREP_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define PREFREP_SIMD_NEON 1
#endif

namespace prefrep {
namespace simd {

/// True when this build has a vector implementation compiled in (the
/// scalar fallback is always present regardless).
inline constexpr bool kHasVectorKernel =
#if defined(PREFREP_SIMD_SSE2) || defined(PREFREP_SIMD_NEON)
    true;
#else
    false;
#endif

namespace internal {
/// Benchmark-only switch: when set, EqualRange always takes the scalar
/// loop, so the fallback column in BENCH_hotpath.json measures real
/// code, not a simulation.  Relaxed atomics: toggled only between
/// benchmark runs, never mid-solve.
inline std::atomic<bool> g_force_scalar{false};
}  // namespace internal

inline void SetForceScalar(bool force) {
  internal::g_force_scalar.store(force, std::memory_order_relaxed);
}

inline bool force_scalar() {
  return internal::g_force_scalar.load(std::memory_order_relaxed);
}

/// The honest fallback: a plain early-exit loop, no wide loads.
inline bool EqualRangeScalar(const uint32_t* a, const uint32_t* b,
                             size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

/// Element-wise equality of two runs of `n` 32-bit values.  Unaligned
/// loads (arena rows have arity stride, not vector stride); scalar tail.
inline bool EqualRange(const uint32_t* a, const uint32_t* b, size_t n) {
  if (n < 4 || force_scalar()) {
    return EqualRangeScalar(a, b, n);
  }
#if defined(PREFREP_SIMD_SSE2)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(va, vb)) != 0xFFFF) {
      return false;
    }
  }
  return EqualRangeScalar(a + i, b + i, n - i);
#elif defined(PREFREP_SIMD_NEON)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32x4_t va = vld1q_u32(a + i);
    uint32x4_t vb = vld1q_u32(b + i);
    uint32x4_t eq = vceqq_u32(va, vb);
    // All four lanes must be all-ones; min-across-lanes is ~0 iff so.
    if (vminvq_u32(eq) != ~uint32_t{0}) {
      return false;
    }
  }
  return EqualRangeScalar(a + i, b + i, n - i);
#else
  return EqualRangeScalar(a, b, n);
#endif
}

}  // namespace simd
}  // namespace prefrep

#endif  // PREFREP_BASE_SIMD_H_
