#include "base/random.h"

#include <cmath>

namespace prefrep {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) {
    s_[i] = SplitMix64(&sm);
  }
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PREFREP_CHECK(bound > 0);
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of `bound`.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  PREFREP_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  PREFREP_CHECK(k <= n);
  // Floyd's algorithm would avoid the O(n) scratch, but n is small in all
  // of our uses; a partial Fisher–Yates keeps the output order random too.
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) {
    pool[i] = i;
  }
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

size_t Rng::NextZipf(size_t n, double s) {
  ZipfTable table(n, s);
  return table.Sample(this);
}

ZipfTable::ZipfTable(size_t n, double s) {
  PREFREP_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) {
    cdf_[i] /= total;
  }
}

size_t ZipfTable::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace prefrep
