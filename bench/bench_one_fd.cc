// B1 — polynomial scaling of GRepCheck1FD (Theorem 3.1, condition 1;
// §4.1).  Sweeps the instance size for optimal and non-optimal
// candidate repairs; also reports the definitional improvement check in
// isolation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "repair/global_one_fd.h"
#include "repair/improvement.h"

namespace prefrep {
namespace {

const FD kFd(AttrSet{1}, AttrSet{2});

void BM_OneFd_OptimalJ(benchmark::State& state) {
  // High-priority greedy J is (almost always) optimal: worst case for
  // the algorithm, which must try every swap before accepting.
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kHighPriorityRepair);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r =
        CheckGlobalOptimalOneFd(cg, *problem.priority, 0, kFd, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OneFd_OptimalJ)->RangeMultiplier(2)->Range(16, 2048)
    ->Complexity(benchmark::oNSquared);

void BM_OneFd_ImprovableJ(benchmark::State& state) {
  // Low-priority J admits improvements: the scan usually exits early.
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kLowPriorityRepair);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r =
        CheckGlobalOptimalOneFd(cg, *problem.priority, 0, kFd, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OneFd_ImprovableJ)->RangeMultiplier(2)->Range(16, 2048)
    ->Complexity();

void BM_OneFd_SwapConstruction(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kRandomRepair);
  const Instance& inst = *problem.instance;
  ConflictGraph cg(inst);
  // Find one conflicting (f ∈ J, g ∉ J) pair to swap repeatedly.
  FactId f = kInvalidFactId, g = kInvalidFactId;
  for (FactId cand = 0; cand < inst.num_facts() && f == kInvalidFactId;
       ++cand) {
    if (!problem.j.test(cand)) {
      continue;
    }
    for (FactId n : cg.neighbors(cand)) {
      if (!problem.j.test(n)) {
        f = cand;
        g = n;
        break;
      }
    }
  }
  if (f == kInvalidFactId) {
    state.SkipWithError("no conflicting pair straddling J");
    return;
  }
  for (auto _ : state) {
    DynamicBitset swapped = SwapBlocks(inst, 0, kFd, problem.j, f, g);
    benchmark::DoNotOptimize(swapped.count());
  }
}
BENCHMARK(BM_OneFd_SwapConstruction)->RangeMultiplier(4)->Range(16, 4096);

void BM_IsGlobalImprovement(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kLowPriorityRepair);
  ConflictGraph cg(*problem.instance);
  DynamicBitset other =
      GenerateRandomProblem(bench::OneFdSchema(),
                            [&] {
                              RandomProblemOptions o;
                              o.facts_per_relation =
                                  static_cast<size_t>(state.range(0));
                              o.domain_size =
                                  static_cast<size_t>(state.range(0) / 4 + 2);
                              o.seed = 42;  // same instance, different J
                              o.j_policy = JPolicy::kHighPriorityRepair;
                              return o;
                            }())
          .j;
  for (auto _ : state) {
    bool r = IsGlobalImprovement(cg, *problem.priority, problem.j, other);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IsGlobalImprovement)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace prefrep

BENCHMARK_MAIN();
