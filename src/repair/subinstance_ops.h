// Copyright (c) prefrep contributors.
// Consistency, maximality and (plain) repair checking for subinstances
// (§2.2, §2.4).  A repair of I is a maximal consistent subinstance of I
// (Arenas–Bertossi–Chomicki subset repairs under FDs).

#ifndef PREFREP_REPAIR_SUBINSTANCE_OPS_H_
#define PREFREP_REPAIR_SUBINSTANCE_OPS_H_

#include <optional>
#include <utility>
#include <vector>

#include "base/dynamic_bitset.h"
#include "conflicts/conflicts.h"
#include "model/instance.h"

namespace prefrep {

/// Tests whether the subinstance satisfies every FD of the schema.
/// Runs in O(|sub| · |∆|) via hashing on FD left-hand sides — no conflict
/// graph needed.
bool IsConsistent(const Instance& instance, const DynamicBitset& sub);

/// Same, via a prebuilt conflict graph (O(edges within sub)).
bool IsConsistent(const ConflictGraph& cg, const DynamicBitset& sub);

/// Returns a violating pair of facts of `sub`, if any.
std::optional<std::pair<FactId, FactId>> FindViolation(
    const Instance& instance, const DynamicBitset& sub);

/// Tests whether `sub` is maximal consistent, i.e. a repair of I: `sub` is
/// consistent and every fact of I \ sub conflicts with some fact of `sub`.
bool IsRepair(const ConflictGraph& cg, const DynamicBitset& sub);

/// Returns a fact of I \ sub that could be added without violating
/// consistency (a maximality counterexample), if any.  Requires `sub`
/// consistent.
std::optional<FactId> FindExtension(const ConflictGraph& cg,
                                    const DynamicBitset& sub);

/// Greedily extends a consistent subinstance to a repair by adding
/// non-conflicting facts in ascending fact-id order.
DynamicBitset ExtendToRepair(const ConflictGraph& cg, DynamicBitset sub);

/// Restricts `sub` to the facts of relation `rel`.
DynamicBitset RestrictToRelation(const Instance& instance, RelId rel,
                                 const DynamicBitset& sub);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_SUBINSTANCE_OPS_H_
