// Copyright (c) prefrep contributors.

#include "gen/categorical_workload.h"

#include "conflicts/conflicts.h"
#include "gen/hard_workloads.h"

namespace prefrep {

PreferredRepairProblem MakeCategoricalWorkload(
    const CategoricalWorkloadOptions& opts) {
  PREFREP_CHECK_MSG(opts.blocks >= 1, "need at least one block");
  PREFREP_CHECK_MSG(opts.cliques >= 2 && opts.clique_size >= 3,
                    "each block needs at least two cliques of at least "
                    "three facts (see MakeHardClusteredWorkload)");
  PreferredRepairProblem problem =
      MakeHardShardedWorkload(opts.blocks, opts.cliques, opts.clique_size);
  // Replace the per-clique domination priority with the total-by-id
  // completion: every conflicting pair gets an edge, the lower fact id
  // preferred.  Id order is a linear order, so the result is acyclic,
  // and edges connect conflicting facts only, so it stays
  // conflict-bounded (hence block-local).
  problem.priority = std::make_unique<PriorityRelation>(problem.instance.get());
  const ConflictGraph cg(*problem.instance);
  // The near-miss block is the last shard; MakeHardShardedWorkload adds
  // facts shard-contiguously, so its facts are exactly the last
  // cliques × clique_size ids.
  const size_t per_block = opts.cliques * opts.clique_size;
  const size_t near_miss_begin =
      opts.near_miss ? (opts.blocks - 1) * per_block : cg.num_facts();
  for (FactId u = 0; u < cg.num_facts(); ++u) {
    if (u >= near_miss_begin) {
      break;  // shards are independent: every later edge is internal
    }
    for (FactId v : cg.neighbors(u)) {
      if (u < v) {
        problem.priority->MustAdd(u, v);
      }
    }
  }
  // Greedy by id = the unique optimal repair under the total-by-id
  // priority (and still a repair of the stripped last block).
  problem.j = problem.instance->EmptySubinstance();
  for (FactId f = 0; f < cg.num_facts(); ++f) {
    bool blocked = false;
    for (FactId g : cg.neighbors(f)) {
      if (g < f && problem.j.test(g)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      problem.j.set(f);
    }
  }
  return problem;
}

}  // namespace prefrep
