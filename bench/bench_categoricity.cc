// B17 — the categoricity fast path (classify/categoricity.h) versus the
// enumeration route it replaces.  The claim: on a certified-categorical
// instance CQA costs one polynomial pre-pass plus one query evaluation,
// while the enumeration path still walks every block's full optimal
// block-repair search; and on a near-miss instance (one block refutes
// categoricity) the pre-pass declines cheaply, so the fallback stays
// within noise of the forced enumeration.  Four measurements over the
// same clique-with-spine gadget (gen/categorical_workload.h):
//
//   BM_CqaCategoricalFast — default route on a total-priority workload:
//                           the pre-pass certifies every block and CQA
//                           evaluates the query on the one repair.
//   BM_CqaCategoricalEnum — the same query with force_enumeration: the
//                           fast path bypassed, the block solver walks
//                           the (s-1)^(c-1)·(s-1+c)-repair space.
//   BM_CqaNearMissFast    — default route with the near-miss knob: the
//                           pre-pass refutes on the broken block and
//                           falls back, paying the pre-pass for free.
//   BM_CqaNearMissEnum    — the forced-enumeration baseline for the
//                           near-miss pair (the fallback's floor).
//
// Threads are pinned to 1 so the ratio isolates the route, not the
// dispatch.  tools/bench_to_json.py turns the Fast/Enum pairs into the
// BENCH_categoricity.json speedup and fallback-overhead figures
// (EXPERIMENTS.md, B17).

#include <benchmark/benchmark.h>

#include <cstdint>

#include "classify/categoricity.h"
#include "gen/categorical_workload.h"
#include "model/context.h"
#include "query/conjunctive_query.h"
#include "query/consistent_answers.h"

namespace prefrep {
namespace {

// Two blocks keep the instance small enough that the forced
// enumeration still terminates at the largest clique count; the
// per-block repair space (s-1)^(c-1)·(s-1+c) is what the argument
// sweeps (cliques c at clique size s = 3: c=7 -> 576 repairs,
// c=9 -> 2816, c=11 -> 13312 per block).
constexpr size_t kBlocks = 2;
constexpr size_t kCliqueSize = 3;

PreferredRepairProblem CategoricityProblem(size_t cliques, bool near_miss) {
  CategoricalWorkloadOptions opts;
  opts.blocks = kBlocks;
  opts.cliques = cliques;
  opts.clique_size = kCliqueSize;
  opts.near_miss = near_miss;
  return MakeCategoricalWorkload(opts);
}

ConjunctiveQuery CategoricityQuery() {
  auto query = ConjunctiveQuery::Parse("Q(x) :- R1(x, y, z)");
  PREFREP_CHECK(query.ok());
  return *query;
}

// One full CQA request per iteration: fresh context (the serving
// layer's memo amortization is bench_serve's story; this pair measures
// the one-shot routes), global semantics, answer-set query.
void RunCqa(benchmark::State& state, bool near_miss, bool force) {
  PreferredRepairProblem problem =
      CategoricityProblem(static_cast<size_t>(state.range(0)), near_miss);
  const ConjunctiveQuery query = CategoricityQuery();
  CqaOptions options;
  options.force_enumeration = force;
  for (auto _ : state) {
    ProblemContext ctx(*problem.instance, *problem.priority);
    ctx.set_parallelism(1);
    auto answers = ConsistentAnswersBounded(ctx, query,
                                            AnswerSemantics::kGlobal,
                                            nullptr, options);
    PREFREP_CHECK(answers.ok());
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["cliques"] = static_cast<double>(state.range(0));
}

void BM_CqaCategoricalFast(benchmark::State& state) {
  RunCqa(state, /*near_miss=*/false, /*force=*/false);
}
BENCHMARK(BM_CqaCategoricalFast)
    ->Arg(7)->Arg(9)->Arg(11)
    ->Unit(benchmark::kMicrosecond);

void BM_CqaCategoricalEnum(benchmark::State& state) {
  RunCqa(state, /*near_miss=*/false, /*force=*/true);
}
BENCHMARK(BM_CqaCategoricalEnum)
    ->Arg(7)->Arg(9)->Arg(11)
    ->Unit(benchmark::kMicrosecond);

// The near-miss pair stops at 9 cliques: the broken block's 2816
// optimal block-repairs already cost seconds per request either way,
// which is plenty to resolve an overhead ratio near 1.0.
void BM_CqaNearMissFast(benchmark::State& state) {
  RunCqa(state, /*near_miss=*/true, /*force=*/false);
}
BENCHMARK(BM_CqaNearMissFast)
    ->Arg(7)->Arg(9)
    ->Unit(benchmark::kMicrosecond);

void BM_CqaNearMissEnum(benchmark::State& state) {
  RunCqa(state, /*near_miss=*/true, /*force=*/true);
}
BENCHMARK(BM_CqaNearMissEnum)
    ->Arg(7)->Arg(9)
    ->Unit(benchmark::kMicrosecond);

// The decision alone (no query), fresh context per iteration: the cost
// a serving session pays on a memo miss, and the absolute size of the
// "pre-pass for free" claim above.
void BM_DecideCategoricity(benchmark::State& state) {
  PreferredRepairProblem problem = CategoricityProblem(
      static_cast<size_t>(state.range(0)), /*near_miss=*/false);
  for (auto _ : state) {
    ProblemContext ctx(*problem.instance, *problem.priority);
    ctx.set_parallelism(1);
    CategoricityResult result =
        DecideCategoricity(ctx, RepairSemantics::kGlobal);
    PREFREP_CHECK(result.verdict == Categoricity::kCategorical);
    benchmark::DoNotOptimize(result.repair.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["cliques"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DecideCategoricity)
    ->Arg(7)->Arg(9)->Arg(11)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep
