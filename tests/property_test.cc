// Randomized cross-validation of every polynomial checking algorithm
// against the definitional / exhaustive baselines (experiments E7, E8,
// E13, E14 of DESIGN.md).  Each suite sweeps seeds × J-policies via
// parameterized tests; instances are kept small enough that exhaustive
// enumeration is exact ground truth.

#include <gtest/gtest.h>

#include "gen/random_instance.h"
#include "repair/ccp_constant_attr.h"
#include "repair/ccp_primary_key.h"
#include "repair/checker.h"
#include "repair/completion.h"
#include "repair/exhaustive.h"
#include "repair/global_one_fd.h"
#include "repair/global_two_keys.h"
#include "repair/pareto.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

struct SweepParam {
  uint64_t seed;
  JPolicy policy;
};

std::string PolicyName(JPolicy p) {
  switch (p) {
    case JPolicy::kRandomRepair:
      return "RandomRepair";
    case JPolicy::kLowPriorityRepair:
      return "LowPriorityRepair";
    case JPolicy::kHighPriorityRepair:
      return "HighPriorityRepair";
    case JPolicy::kRandomConsistentSubset:
      return "RandomSubset";
  }
  return "?";
}

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_" +
         PolicyName(info.param.policy);
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> out;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (JPolicy policy :
         {JPolicy::kRandomRepair, JPolicy::kLowPriorityRepair,
          JPolicy::kHighPriorityRepair, JPolicy::kRandomConsistentSubset}) {
      out.push_back({seed, policy});
    }
  }
  return out;
}

RandomProblemOptions BaseOptions(const SweepParam& p) {
  RandomProblemOptions opts;
  opts.facts_per_relation = 14;
  opts.domain_size = 3;
  opts.priority_density = 0.6;
  opts.j_policy = p.policy;
  opts.seed = p.seed * 7919 + 13;
  return opts;
}

// --- GRepCheck1FD vs exhaustive (Lemma 4.2 / E7) ---------------------------

class OneFdProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OneFdProperty, MatchesExhaustive) {
  Schema schema = Schema::SingleRelation(
      "R", 3, {FD(AttrSet{1}, AttrSet{2})});
  PreferredRepairProblem problem =
      GenerateRandomProblem(schema, BaseOptions(GetParam()));
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  CheckResult fast =
      CheckGlobalOptimalOneFd(cg, pr, 0, FD(AttrSet{1}, AttrSet{2}),
                              problem.j);
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal)
      << "J = " << problem.instance->SubinstanceToString(problem.j);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, fast), "");
}

TEST_P(OneFdProperty, MatchesExhaustiveWithWideFd) {
  // A single fd with a two-attribute RHS: {1} → {2, 3}.
  Schema schema = Schema::SingleRelation(
      "R", 3, {FD(AttrSet{1}, AttrSet{2, 3})});
  PreferredRepairProblem problem =
      GenerateRandomProblem(schema, BaseOptions(GetParam()));
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  CheckResult fast = CheckGlobalOptimalOneFd(
      cg, pr, 0, FD(AttrSet{1}, AttrSet{2, 3}), problem.j);
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, fast), "");
}

TEST_P(OneFdProperty, MatchesExhaustiveWithEmptyLhs) {
  // Constant-attribute fd ∅ → 1 is still a single fd (tractable side).
  Schema schema = Schema::SingleRelation("R", 2, {FD(AttrSet(), AttrSet{1})});
  PreferredRepairProblem problem =
      GenerateRandomProblem(schema, BaseOptions(GetParam()));
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  CheckResult fast = CheckGlobalOptimalOneFd(
      cg, pr, 0, FD(AttrSet(), AttrSet{1}), problem.j);
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, fast), "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, OneFdProperty,
                         ::testing::ValuesIn(MakeSweep()), ParamName);

// --- GRepCheck2Keys vs exhaustive (Lemma 4.4 / E8) -------------------------

class TwoKeysProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TwoKeysProperty, BinaryRelationMatchesExhaustive) {
  Schema schema = Schema::SingleRelation(
      "R", 2, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{1})});
  PreferredRepairProblem problem =
      GenerateRandomProblem(schema, BaseOptions(GetParam()));
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  CheckResult fast = CheckGlobalOptimalTwoKeys(cg, pr, 0, AttrSet{1},
                                               AttrSet{2}, problem.j);
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal)
      << "J = " << problem.instance->SubinstanceToString(problem.j);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, fast), "");
}

TEST_P(TwoKeysProperty, CompositeKeysMatchExhaustive) {
  // Keys {1,2} and {2,3} over a quaternary relation (overlapping keys,
  // an extra free attribute 4): Example 3.3's T-relation shape.
  Schema schema = Schema::SingleRelation(
      "T", 4, {FD(AttrSet{1, 2}, AttrSet{1, 2, 3, 4}),
               FD(AttrSet{2, 3}, AttrSet{1, 2, 3, 4})});
  RandomProblemOptions opts = BaseOptions(GetParam());
  opts.domain_size = 2;  // keep key collisions frequent
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  CheckResult fast = CheckGlobalOptimalTwoKeys(
      cg, pr, 0, AttrSet{1, 2}, AttrSet{2, 3}, problem.j);
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, fast), "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoKeysProperty,
                         ::testing::ValuesIn(MakeSweep()), ParamName);

// --- Pareto checking vs exhaustive -----------------------------------------

class ParetoProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ParetoProperty, MatchesExhaustiveOnHardSchema) {
  // The Pareto check is polynomial for *every* schema; validate it on a
  // hard one (S4 = {1→2, 2→3}).
  Schema schema = Schema::SingleRelation(
      "R", 3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  PreferredRepairProblem problem =
      GenerateRandomProblem(schema, BaseOptions(GetParam()));
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  if (!IsConsistent(cg, problem.j)) {
    GTEST_SKIP() << "generator produced an inconsistent J (impossible)";
  }
  CheckResult fast = CheckParetoOptimal(cg, pr, problem.j);
  CheckResult exact = ExhaustiveCheckParetoOptimal(cg, pr, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal);
  if (!fast.optimal && fast.witness.has_value()) {
    EXPECT_TRUE(IsParetoImprovement(cg, pr, problem.j,
                                    fast.witness->improvement));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParetoProperty,
                         ::testing::ValuesIn(MakeSweep()), ParamName);

// --- CCP primary-key algorithm vs exhaustive (Lemma 7.3 / E13) -------------

class CcpPrimaryKeyProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CcpPrimaryKeyProperty, MatchesExhaustive) {
  // Two relations, each with a primary key; cross-conflict priorities.
  Schema schema;
  RelId r = schema.MustAddRelation("R", 2);
  RelId s = schema.MustAddRelation("S", 2);
  schema.MustAddFd(r, FD(AttrSet{1}, AttrSet{1, 2}));
  schema.MustAddFd(s, FD(AttrSet{1}, AttrSet{1, 2}));
  RandomProblemOptions opts = BaseOptions(GetParam());
  opts.facts_per_relation = 9;
  opts.cross_priority_density = 0.5;
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  CheckResult fast = CheckGlobalOptimalCcpPrimaryKey(cg, pr, problem.j);
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal)
      << "J = " << problem.instance->SubinstanceToString(problem.j);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, fast), "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, CcpPrimaryKeyProperty,
                         ::testing::ValuesIn(MakeSweep()), ParamName);

// --- CCP constant-attribute algorithm vs exhaustive (E14) ------------------

class CcpConstantAttrProperty : public ::testing::TestWithParam<SweepParam> {
};

TEST_P(CcpConstantAttrProperty, MatchesExhaustive) {
  Schema schema;
  RelId r = schema.MustAddRelation("R", 2);
  RelId s = schema.MustAddRelation("S", 2);
  schema.MustAddFd(r, FD(AttrSet(), AttrSet{1}));
  schema.MustAddFd(s, FD(AttrSet(), AttrSet{1, 2}));
  RandomProblemOptions opts = BaseOptions(GetParam());
  opts.facts_per_relation = 9;
  opts.cross_priority_density = 0.5;
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  CheckResult fast = CheckGlobalOptimalCcpConstantAttr(cg, pr, problem.j);
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, fast), "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, CcpConstantAttrProperty,
                         ::testing::ValuesIn(MakeSweep()), ParamName);

// --- Unified checker vs exhaustive, mixed schema ----------------------------

class CheckerProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CheckerProperty, MixedTractableSchemaMatchesExhaustive) {
  // The running-example shape: one single-fd relation + one two-keys
  // relation, checked through the dispatching RepairChecker.
  Schema schema;
  RelId a = schema.MustAddRelation("A", 3);
  RelId b = schema.MustAddRelation("B", 2);
  schema.MustAddFd(a, FD(AttrSet{1}, AttrSet{2}));
  schema.MustAddFd(b, FD(AttrSet{1}, AttrSet{2}));
  schema.MustAddFd(b, FD(AttrSet{2}, AttrSet{1}));
  RandomProblemOptions opts = BaseOptions(GetParam());
  opts.facts_per_relation = 10;
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  RepairChecker checker(*problem.instance, pr);
  EXPECT_TRUE(checker.SchemaIsTractable());
  auto outcome = checker.CheckGloballyOptimal(problem.j);
  ASSERT_TRUE(outcome.ok());
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(outcome->result.optimal, exact.optimal);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, outcome->result),
            "");
}

TEST_P(CheckerProperty, HardRelationFallbackMatchesExhaustive) {
  // A schema mixing a tractable relation with a hard one (S4): the
  // checker must route the hard relation through the exact fallback and
  // still agree with whole-instance exhaustive checking.
  Schema schema;
  RelId a = schema.MustAddRelation("Easy", 2);
  RelId b = schema.MustAddRelation("Hard", 3);
  schema.MustAddFd(a, FD(AttrSet{1}, AttrSet{2}));
  schema.MustAddFd(b, FD(AttrSet{1}, AttrSet{2}));
  schema.MustAddFd(b, FD(AttrSet{2}, AttrSet{3}));
  RandomProblemOptions opts = BaseOptions(GetParam());
  opts.facts_per_relation = 8;
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  RepairChecker checker(*problem.instance, pr);
  EXPECT_FALSE(checker.SchemaIsTractable());
  auto outcome = checker.CheckGloballyOptimal(problem.j);
  ASSERT_TRUE(outcome.ok());
  CheckResult exact = ExhaustiveCheckGlobalOptimal(cg, pr, problem.j);
  EXPECT_EQ(outcome->result.optimal, exact.optimal);
  EXPECT_EQ(testing_util::VerifyWitness(cg, pr, problem.j, outcome->result),
            "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, CheckerProperty,
                         ::testing::ValuesIn(MakeSweep()), ParamName);

// --- Semantics inclusions: completion ⊆ global ⊆ Pareto ---------------------

class InclusionProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(InclusionProperty, OptimalityInclusionsHold) {
  Schema schema = Schema::SingleRelation(
      "R", 3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
  RandomProblemOptions opts = BaseOptions(GetParam());
  opts.facts_per_relation = 10;
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  for (const DynamicBitset& repair : AllRepairs(cg)) {
    bool completion = CheckCompletionOptimal(cg, pr, repair).optimal;
    bool global = ExhaustiveCheckGlobalOptimal(cg, pr, repair).optimal;
    bool pareto = CheckParetoOptimal(cg, pr, repair).optimal;
    EXPECT_TRUE(!completion || global) << "completion ⊆ global violated";
    EXPECT_TRUE(!global || pareto) << "global ⊆ Pareto violated";
  }
}

TEST_P(InclusionProperty, EveryInstanceHasACompletionOptimalRepair) {
  Schema schema = Schema::SingleRelation(
      "R", 2, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{1})});
  PreferredRepairProblem problem =
      GenerateRandomProblem(schema, BaseOptions(GetParam()));
  ConflictGraph cg(*problem.instance);
  const PriorityRelation& pr = *problem.priority;
  // The greedy procedure always yields one, and the checker accepts it.
  DynamicBitset greedy = GreedyCompletionRepair(cg, pr, GetParam().seed);
  EXPECT_TRUE(IsRepair(cg, greedy));
  EXPECT_TRUE(CheckCompletionOptimal(cg, pr, greedy).optimal);
}

INSTANTIATE_TEST_SUITE_P(Sweep, InclusionProperty,
                         ::testing::ValuesIn(MakeSweep()), ParamName);

}  // namespace
}  // namespace prefrep
