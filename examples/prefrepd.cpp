// prefrepd — a resident preferred-repair server over one problem file.
//
// Loads a problem in the text format of src/io/text_format.h, builds a
// long-lived SessionContext (src/serve/session.h), and then executes
// session ops (src/io/ops_format.h) one per line:
//
//   prefrepd <file> [options]             # ops from stdin (REPL / pipe)
//   prefrepd <file> --script <ops-file>   # ops from a batch script
//
// Each op's reply is printed to stdout, followed by a blank line so
// multi-line replies (witnesses, degradation summaries, answer lists)
// stay framed.  An op error prints "error: <message>" and the loop
// continues — a serving process does not die on one bad request.
//
// Options:
//   --threads N       per-block solver threads (0 = hardware, 1 = serial)
//   --cache[=N]       block-solve cache (N = capacity in entries)
//   --deadline-ms N / --max-nodes N / --max-block N
//                     initial per-request budget (see the budget op)
//   --wal <path>      durable mode: log acknowledged edits to a WAL and
//                     recover from <path> (+ snapshot) on startup
//                     (docs/durability.md)
//   --snapshot <path> snapshot location (default: <wal>.snapshot)
//   --snapshot-every N  checkpoint after every N logged edits
//   --fsync=MODE      always | batch | off (default always)
//
// In durable mode startup prints one "recovery: ..." line (snapshot
// loaded / N ops replayed / torn tail dropped), and a clean EOF
// shutdown checkpoints: snapshot published, WAL truncated.  Recovery
// failures (corrupt state beyond the torn-tail rule) exit 5 with a
// DataLoss report rather than serving wrong answers.
//
// Input hardening: lines are read through a bounded reader — a line
// over the 1 MiB ops cap (kMaxSessionOpLineBytes) is rejected with an
// error reply and skipped without ever buffering it whole, so a hostile
// pipe cannot make the daemon allocate without bound.
//
// Exit codes: 0 = served, 2 = usage, 3 = input error, 5 = data loss.
//
// The edit → query → edit loop is where the serve layer earns its keep:
// every edit patches the conflict graph and block decomposition in
// place and invalidates only the touched blocks' cache entries, so a
// query after an edit re-solves the edited block and replays everything
// else (bench/bench_serve.cc measures the gap against per-request
// rebuilding).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "io/ops_format.h"
#include "io/text_format.h"
#include "persist/durable_session.h"
#include "persist/wal.h"
#include "serve/session.h"

using namespace prefrep;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: prefrepd <file> [--script <ops-file>] [--threads N] "
      "[--cache[=N]]\n"
      "                [--deadline-ms N] [--max-nodes N] [--max-block N]\n"
      "                [--wal <path>] [--snapshot <path>] "
      "[--snapshot-every N]\n"
      "                [--fsync=always|batch|off]\n"
      "ops (one per line, '#' comments): insert, delete, prefer, jset, "
      "jadd, jdel,\n"
      "  budget, check, count, construct, cqa, stats  (see "
      "docs/serving.md)\n");
  return 2;
}

// Reads one '\n'-terminated line into `line`, buffering at most
// max_bytes + 1 characters.  An over-cap line is consumed to its end
// but reported (*over_cap = true) with only a truncated prefix kept, so
// memory stays bounded no matter what the pipe feeds us.  Returns false
// at EOF with nothing read.
bool ReadBoundedLine(std::istream& in, size_t max_bytes, std::string* line,
                     bool* over_cap) {
  line->clear();
  *over_cap = false;
  int c = in.get();
  if (c == std::char_traits<char>::eof()) {
    return false;
  }
  for (; c != std::char_traits<char>::eof() && c != '\n'; c = in.get()) {
    if (line->size() > max_bytes) {
      *over_cap = true;  // keep consuming, stop buffering
      continue;
    }
    line->push_back(static_cast<char>(c));
  }
  return true;
}

// One op executor that routes through the durable wrapper when one is
// configured (so WAL logging sees exactly the acknowledged edits).
Result<std::string> ExecuteOp(SessionContext& session,
                              DurableSession* durable, const SessionOp& op) {
  if (durable != nullptr) {
    return durable->Execute(op);
  }
  return session.Execute(op);
}

// Executes one raw input line; returns the reply (or the error text).
// Blank/comment lines yield an empty reply.
std::string ServeLine(SessionContext& session, DurableSession* durable,
                      const std::string& raw) {
  std::string line = raw;
  const size_t hash = line.find('#');
  if (hash != std::string::npos) {
    line.resize(hash);
  }
  const size_t start = line.find_first_not_of(" \t\r\n");
  if (start == std::string::npos) {
    return "";
  }
  Result<SessionOp> op = ParseSessionOp(line);
  if (!op.ok()) {
    return "error: " + op.status().message();
  }
  Result<std::string> reply = ExecuteOp(session, durable, *op);
  if (!reply.ok()) {
    return "error: " + reply.status().message();
  }
  return *reply;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const char* problem_path = argv[1];
  const char* script_path = nullptr;
  SessionOptions options;
  DurabilityOptions durability;
  bool durable_mode = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--script") == 0 && i + 1 < argc) {
      script_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      options.cache_capacity = BlockSolveCache::kDefaultCapacity;
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      options.cache_capacity = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.budget.deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc) {
      options.budget.max_nodes = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-block") == 0 && i + 1 < argc) {
      options.budget.max_block = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--wal") == 0 && i + 1 < argc) {
      durability.wal_path = argv[++i];
      durable_mode = true;
    } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      durability.snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0 &&
               i + 1 < argc) {
      durability.snapshot_every =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strncmp(argv[i], "--fsync=", 8) == 0) {
      Result<FsyncMode> mode = ParseFsyncMode(argv[i] + 8);
      if (!mode.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     mode.status().ToString().c_str());
        return 2;
      }
      durability.fsync = *mode;
    } else if (std::strncmp(argv[i], "--test-crash-at-wal-record=", 27) ==
               0) {
      // Crash-fault injection for the durability battery: die (exit
      // 137, SIGKILL-alike) after persisting only B bytes of the K-th
      // WAL record.  Format K[:B], default B = 0.
      const char* spec = argv[i] + 27;
      char* colon = nullptr;
      const uint64_t record =
          static_cast<uint64_t>(std::strtoull(spec, &colon, 10));
      size_t partial = 0;
      if (colon != nullptr && *colon == ':') {
        partial = static_cast<size_t>(std::strtoull(colon + 1, nullptr, 10));
      }
      ForceCrashAtWalRecordForTesting(record, partial);
    } else {
      return Usage();
    }
  }
  if (!durable_mode && !durability.snapshot_path.empty()) {
    std::fprintf(stderr, "error: --snapshot requires --wal\n");
    return 2;
  }
  Result<PreferredRepairProblem> problem = ParseProblemFile(problem_path);
  if (!problem.ok()) {
    std::fprintf(stderr, "error: %s\n", problem.status().ToString().c_str());
    return 3;
  }

  std::unique_ptr<SessionContext> plain_session;
  std::unique_ptr<DurableSession> durable_session;
  SessionContext* session = nullptr;
  if (durable_mode) {
    Result<std::unique_ptr<DurableSession>> opened =
        DurableSession::Open(*problem, options, durability);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   opened.status().ToString().c_str());
      return opened.status().code() == StatusCode::kDataLoss ? 5 : 3;
    }
    durable_session = std::move(opened).value();
    session = &durable_session->session();
    std::printf("recovery: %s\n\n",
                durable_session->recovery().ToString().c_str());
    std::fflush(stdout);
  } else {
    Result<std::unique_ptr<SessionContext>> created =
        SessionContext::Create(*problem, options);
    if (!created.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   created.status().ToString().c_str());
      return 3;
    }
    plain_session = std::move(created).value();
    session = plain_session.get();
  }

  std::istream* in = &std::cin;
  std::ifstream script;
  if (script_path != nullptr) {
    script.open(script_path);
    if (!script.is_open()) {
      std::fprintf(stderr, "error: cannot open script '%s'\n", script_path);
      return 3;
    }
    in = &script;
  }
  std::string line;
  bool over_cap = false;
  while (ReadBoundedLine(*in, kMaxSessionOpLineBytes, &line, &over_cap)) {
    std::string reply;
    if (over_cap) {
      reply = "error: line exceeds the " +
              std::to_string(kMaxSessionOpLineBytes) +
              "-byte cap and was dropped";
    } else {
      reply = ServeLine(*session, durable_session.get(), line);
    }
    if (!reply.empty()) {
      std::printf("%s\n\n", reply.c_str());
      std::fflush(stdout);
    }
  }
  if (durable_session != nullptr) {
    // Clean shutdown: publish a final snapshot and truncate the WAL it
    // subsumes, so the next boot replays nothing.
    const Status closed = durable_session->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "error: shutdown checkpoint failed: %s\n",
                   closed.ToString().c_str());
      return 3;
    }
  }
  return 0;
}
