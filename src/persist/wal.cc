#include "persist/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "base/hash.h"
#include "base/macros.h"

namespace prefrep {

namespace {

// Crash-injection state (test-only, set before any Append happens).
uint64_t g_crash_at_append = 0;
size_t g_crash_partial_bytes = 0;
uint64_t g_append_count = 0;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

// Decodes the record starting at `bytes`; returns false when the bytes
// do not form a complete, checksum-valid record (torn or corrupt).
// On success sets *record and *record_bytes.
bool TryDecodeRecord(std::string_view bytes, WalRecord* record,
                     size_t* record_bytes) {
  if (bytes.size() < kWalRecordHeaderBytes) {
    return false;
  }
  const uint32_t payload_len = GetU32(bytes.data());
  if (payload_len > kMaxWalPayloadBytes) {
    return false;
  }
  const size_t total = kWalRecordHeaderBytes + payload_len;
  if (bytes.size() < total) {
    return false;
  }
  const uint64_t seq = GetU64(bytes.data() + 4);
  const uint64_t checksum = GetU64(bytes.data() + 12);
  const std::string_view payload =
      bytes.substr(kWalRecordHeaderBytes, payload_len);
  if (checksum != WalRecordChecksum(seq, payload)) {
    return false;
  }
  record->seq = seq;
  record->payload.assign(payload);
  *record_bytes = total;
  return true;
}

// True when any complete, checksum-valid record starts anywhere in
// `bytes`.  Distinguishes a torn tail (nothing valid follows the
// damage) from mid-log corruption (valid records stranded after it).
bool AnyValidRecordWithin(std::string_view bytes) {
  WalRecord scratch;
  size_t scratch_bytes = 0;
  for (size_t off = 0; off + kWalRecordHeaderBytes <= bytes.size(); ++off) {
    if (TryDecodeRecord(bytes.substr(off), &scratch, &scratch_bytes)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<FsyncMode> ParseFsyncMode(std::string_view word) {
  if (word == "always") {
    return FsyncMode::kAlways;
  }
  if (word == "batch") {
    return FsyncMode::kBatch;
  }
  if (word == "off") {
    return FsyncMode::kOff;
  }
  return Status::InvalidArgument(
      "unknown fsync mode '" + std::string(word) +
      "' (expected always|batch|off)");
}

const char* FsyncModeName(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kAlways:
      return "always";
    case FsyncMode::kBatch:
      return "batch";
    case FsyncMode::kOff:
      return "off";
  }
  return "unknown";
}

uint64_t WalRecordChecksum(uint64_t seq, std::string_view payload) {
  uint64_t h = HashMix64(seq ^ 0x77616c2d636b73ULL);  // "wal-cks"
  // Mix 8 payload bytes per step; the tail word is length-tagged so
  // "ab" and "ab\0" differ.
  size_t i = 0;
  for (; i + 8 <= payload.size(); i += 8) {
    h = HashMix64(h ^ GetU64(payload.data() + i));
  }
  uint64_t tail = static_cast<uint64_t>(payload.size());
  for (size_t j = i; j < payload.size(); ++j) {
    tail = (tail << 8) | static_cast<unsigned char>(payload[j]);
  }
  return HashMix64(h ^ tail);
}

std::string EncodeWalRecord(uint64_t seq, std::string_view payload) {
  PREFREP_CHECK_MSG(payload.size() <= kMaxWalPayloadBytes,
                    "WAL payload over kMaxWalPayloadBytes");
  std::string out;
  out.reserve(kWalRecordHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, seq);
  PutU64(&out, WalRecordChecksum(seq, payload));
  out.append(payload);
  return out;
}

Result<WalContents> ParseWalBytes(std::string_view bytes) {
  WalContents out;
  if (bytes.empty()) {
    return out;  // a never-created log is a valid empty log
  }
  const std::string_view magic(kWalMagic, kWalMagicBytes);
  if (bytes.size() < kWalMagicBytes) {
    // A crash can tear the very first write (the magic itself); bytes
    // that are a proper prefix of the magic are a torn empty log.
    if (magic.substr(0, bytes.size()) == bytes) {
      out.torn_tail_dropped = true;
      return out;
    }
    return Status::DataLoss("WAL file does not start with " +
                            std::string(kWalMagic));
  }
  if (bytes.substr(0, kWalMagicBytes) != magic) {
    return Status::DataLoss("WAL file does not start with " +
                            std::string(kWalMagic));
  }
  size_t off = kWalMagicBytes;
  while (off < bytes.size()) {
    WalRecord record;
    size_t record_bytes = 0;
    if (!TryDecodeRecord(bytes.substr(off), &record, &record_bytes)) {
      if (AnyValidRecordWithin(bytes.substr(off + 1))) {
        return Status::DataLoss(
            "WAL corrupt at byte " + std::to_string(off) +
            " with valid records after it (not a torn tail)");
      }
      out.torn_tail_dropped = true;
      break;
    }
    if (!out.records.empty() &&
        record.seq != out.records.back().seq + 1) {
      return Status::DataLoss(
          "WAL seq gap: record " + std::to_string(record.seq) +
          " follows " + std::to_string(out.records.back().seq));
    }
    out.records.push_back(std::move(record));
    off += record_bytes;
  }
  out.valid_bytes = off < bytes.size() ? off : bytes.size();
  return out;
}

Status WalWriter::Open(const std::string& path, FsyncMode mode,
                       uint64_t next_seq) {
  PREFREP_CHECK_MSG(!file_.is_open(), "WalWriter is already open");
  path_ = path;
  mode_ = mode;
  next_seq_ = next_seq;
  unsynced_records_ = 0;
  const bool fresh = !FileExists(path);
  PREFREP_RETURN_NOT_OK(file_.Open(path));
  if (fresh) {
    PREFREP_RETURN_NOT_OK(
        file_.Append(std::string_view(kWalMagic, kWalMagicBytes)));
    if (mode_ != FsyncMode::kOff) {
      PREFREP_RETURN_NOT_OK(file_.Sync());
    }
  }
  return Status::OK();
}

Result<uint64_t> WalWriter::Append(std::string_view payload) {
  if (!file_.is_open()) {
    return Status::Unavailable("WAL append on a closed writer");
  }
  if (payload.size() > kMaxWalPayloadBytes) {
    return Status::ResourceExhausted(
        "WAL payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxWalPayloadBytes) +
        "-byte record cap");
  }
  const uint64_t seq = next_seq_;
  const std::string record = EncodeWalRecord(seq, payload);
  ++g_append_count;
  if (g_crash_at_append != 0 && g_append_count == g_crash_at_append) {
    // Simulate a power cut mid-append: persist exactly `partial_bytes`
    // of this record, then die without unwinding.  137 mirrors the
    // exit status of a SIGKILLed process so the sweep driver treats
    // both crash flavors identically.
    const Status partial = file_.AppendPrefix(record, g_crash_partial_bytes);
    PREFREP_CHECK_MSG(partial.ok(), "crash-injection append failed");
    const Status sync = file_.Sync();
    PREFREP_CHECK_MSG(sync.ok(), "crash-injection sync failed");
    _exit(137);
  }
  PREFREP_RETURN_NOT_OK(file_.Append(record));
  ++next_seq_;
  ++unsynced_records_;
  switch (mode_) {
    case FsyncMode::kAlways:
      PREFREP_RETURN_NOT_OK(SyncNow());
      break;
    case FsyncMode::kBatch:
      if (unsynced_records_ >= kWalBatchSyncEvery) {
        PREFREP_RETURN_NOT_OK(SyncNow());
      }
      break;
    case FsyncMode::kOff:
      break;
  }
  return seq;
}

Status WalWriter::SyncNow() {
  if (!file_.is_open()) {
    return Status::Unavailable("WAL sync on a closed writer");
  }
  if (unsynced_records_ == 0) {
    return Status::OK();
  }
  PREFREP_RETURN_NOT_OK(file_.Sync());
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::Close() {
  if (!file_.is_open()) {
    return Status::OK();
  }
  if (mode_ != FsyncMode::kOff) {
    PREFREP_RETURN_NOT_OK(SyncNow());
  }
  return file_.Close();
}

Status WalWriter::Truncate(uint64_t next_seq) {
  if (!file_.is_open()) {
    return Status::Unavailable("WAL truncate on a closed writer");
  }
  // Publish an empty log atomically, then reopen the append handle on
  // the new inode (the old fd still points at the renamed-away file).
  PREFREP_RETURN_NOT_OK(file_.Close());
  PREFREP_RETURN_NOT_OK(
      AtomicWriteFile(path_, std::string_view(kWalMagic, kWalMagicBytes)));
  PREFREP_RETURN_NOT_OK(file_.Open(path_));
  next_seq_ = next_seq;
  unsynced_records_ = 0;
  return Status::OK();
}

void ForceCrashAtWalRecordForTesting(uint64_t nth_append,
                                     size_t partial_bytes) {
  g_crash_at_append = nth_append;
  g_crash_partial_bytes = partial_bytes;
  g_append_count = 0;
}

}  // namespace prefrep
