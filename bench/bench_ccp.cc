// B7 — the cross-conflict tractable algorithms of Theorem 7.1: the
// primary-key graph algorithm (§7.2.1) and the constant-attribute
// partition enumeration (§7.2.2), swept over instance size and (for the
// latter) over the number of relations, which drives the polynomial's
// degree.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "repair/ccp_constant_attr.h"
#include "repair/ccp_primary_key.h"

namespace prefrep {
namespace {

void BM_CcpPrimaryKey_Check(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::PrimaryKeySchema(), state.range(0),
      JPolicy::kHighPriorityRepair, /*seed=*/42, /*cross_density=*/0.5);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r =
        CheckGlobalOptimalCcpPrimaryKey(cg, *problem.priority, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CcpPrimaryKey_Check)->RangeMultiplier(2)->Range(16, 4096)
    ->Complexity();

void BM_CcpPrimaryKey_GraphBuild(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::PrimaryKeySchema(), state.range(0), JPolicy::kRandomRepair,
      /*seed=*/42, /*cross_density=*/0.5);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    Digraph g = BuildCcpPrimaryKeyGraph(cg, *problem.priority, problem.j);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_CcpPrimaryKey_GraphBuild)->RangeMultiplier(4)->Range(16, 4096);

void BM_CcpConstantAttr_Check(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::ConstantAttrSchema(), state.range(0),
      JPolicy::kHighPriorityRepair, /*seed=*/42, /*cross_density=*/0.5);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r = CheckGlobalOptimalCcpConstantAttr(cg, *problem.priority,
                                                      problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CcpConstantAttr_Check)->RangeMultiplier(2)->Range(16, 1024)
    ->Complexity();

// The repair count under a constant-attribute assignment is
// ∏_R #partitions(R): polynomial in the data for a fixed schema, but of
// degree = #relations.  Sweep the relation count at fixed facts/relation.
void BM_CcpConstantAttr_RelationSweep(benchmark::State& state) {
  Schema schema;
  for (int64_t r = 0; r < state.range(0); ++r) {
    RelId rel = schema.MustAddRelation("R" + std::to_string(r), 2);
    schema.MustAddFd(rel, FD(AttrSet(), AttrSet{1}));
  }
  RandomProblemOptions opts;
  opts.facts_per_relation = 8;
  opts.domain_size = 4;
  opts.cross_priority_density = 0.3;
  opts.j_policy = JPolicy::kHighPriorityRepair;
  opts.seed = 17;
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r = CheckGlobalOptimalCcpConstantAttr(cg, *problem.priority,
                                                      problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_CcpConstantAttr_RelationSweep)->DenseRange(1, 5, 1);

}  // namespace
}  // namespace prefrep

BENCHMARK_MAIN();
