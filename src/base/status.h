// Copyright (c) prefrep contributors.
// Lightweight Status / Result error-handling types in the Arrow/RocksDB
// idiom: recoverable API-boundary errors are returned, never thrown.

#ifndef PREFREP_BASE_STATUS_H_
#define PREFREP_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "base/macros.h"

namespace prefrep {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad schema, bad fd, bad fact, ...)
  kNotFound,          ///< named entity (relation, fact label) does not exist
  kAlreadyExists,     ///< duplicate definition
  kOutOfRange,        ///< index out of bounds (attribute, fact id, ...)
  kFailedPrecondition,///< operation not applicable in the current state
  kUnimplemented,     ///< feature intentionally not provided
  kInternal,          ///< invariant violation surfaced as a recoverable error
  kParseError,        ///< text-format syntax error
  kDeadlineExceeded,  ///< wall-clock budget ran out before an answer
  kResourceExhausted,  ///< work budget (nodes, block size) ran out
  kDataLoss,          ///< durable state is corrupt beyond safe recovery
  kUnavailable,       ///< durable backing store cannot be opened/written
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome.  Cheap to copy in the OK case (no
/// allocation); error states carry a message.  [[nodiscard]] at the
/// class level: a dropped Status is a swallowed failure, so ignoring
/// any Status-returning call is a compile warning (-Werror in the
/// strict presets) at every call site, annotated or not.  Deliberate
/// drops must say why via a justified suppression (see
/// tools/check_prefrep.py, nodiscard-discipline).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error outcome.  Access to the value of a non-OK result is a
/// fatal error (checking tools must not proceed on garbage).
/// [[nodiscard]] like Status: parse and edit entry points return
/// Result, and ignoring one silently discards both the value and the
/// failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, see above.
  Result(T value) : value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  // NOLINTNEXTLINE(google-explicit-constructor): lets `return SomeError();` work.
  Result(Status status) : status_(std::move(status)) {
    PREFREP_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; fatal if !ok().
  const T& value() const& {
    PREFREP_CHECK_MSG(ok(), "Result::value() on error result");
    return *value_;
  }
  T& value() & {
    PREFREP_CHECK_MSG(ok(), "Result::value() on error result");
    return *value_;
  }
  T&& value() && {
    PREFREP_CHECK_MSG(ok(), "Result::value() on error result");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;           // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Propagates an error status from an expression, Arrow-style.
#define PREFREP_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::prefrep::Status _st = (expr);          \
    if (PREFREP_UNLIKELY(!_st.ok())) {       \
      return _st;                            \
    }                                        \
  } while (0)

/// Evaluates a Result expression; on error returns its status, otherwise
/// assigns the value to `lhs`.
#define PREFREP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (PREFREP_UNLIKELY(!tmp.ok())) {                  \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define PREFREP_ASSIGN_OR_RETURN(lhs, expr) \
  PREFREP_ASSIGN_OR_RETURN_IMPL(            \
      PREFREP_CONCAT_(_result_, __LINE__), lhs, expr)

#define PREFREP_CONCAT_INNER_(a, b) a##b
#define PREFREP_CONCAT_(a, b) PREFREP_CONCAT_INNER_(a, b)

}  // namespace prefrep

#endif  // PREFREP_BASE_STATUS_H_
