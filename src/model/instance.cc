#include "model/instance.h"

namespace prefrep {

Result<FactId> Instance::AddFact(RelId rel,
                                 const std::vector<std::string>& constants,
                                 std::string_view label) {
  std::vector<ValueId> values;
  values.reserve(constants.size());
  for (const std::string& c : constants) {
    values.push_back(dict_.Intern(c));
  }
  return AddFactValues(rel, std::move(values), label);
}

Result<FactId> Instance::AddFactValues(RelId rel, std::vector<ValueId> values,
                                       std::string_view label) {
  if (rel >= schema_->num_relations()) {
    return Status::OutOfRange("relation id out of range");
  }
  if (static_cast<int>(values.size()) != schema_->arity(rel)) {
    return Status::InvalidArgument(
        "fact over '" + schema_->relation_name(rel) + "' has " +
        std::to_string(values.size()) + " values, arity is " +
        std::to_string(schema_->arity(rel)));
  }
  Fact fact{rel, std::move(values)};
  auto it = fact_index_.find(fact);
  FactId id;
  if (it != fact_index_.end()) {
    id = it->second;  // set semantics: duplicate facts collapse
  } else {
    PREFREP_CHECK_MSG(facts_.size() < kInvalidFactId, "fact id overflow");
    id = static_cast<FactId>(facts_.size());
    facts_.push_back(fact);
    labels_.emplace_back();
    if (by_relation_.size() < schema_->num_relations()) {
      by_relation_.resize(schema_->num_relations());
    }
    by_relation_[rel].push_back(id);
    fact_index_.emplace(std::move(fact), id);
  }
  if (!label.empty()) {
    std::string key(label);
    auto existing = label_index_.find(key);
    if (existing != label_index_.end() && existing->second != id) {
      return Status::AlreadyExists("label '" + key +
                                   "' already names a different fact");
    }
    labels_[id] = key;
    label_index_.emplace(std::move(key), id);
  }
  return id;
}

FactId Instance::MustAddFact(std::string_view relation_name,
                             const std::vector<std::string>& constants,
                             std::string_view label) {
  RelId rel = schema_->FindRelation(relation_name);
  PREFREP_CHECK_MSG(rel != kInvalidRelId, "unknown relation in MustAddFact");
  Result<FactId> r = AddFact(rel, constants, label);
  PREFREP_CHECK_MSG(r.ok(), "MustAddFact failed");
  return *r;
}

FactId Instance::FindFact(const Fact& fact) const {
  auto it = fact_index_.find(fact);
  return it == fact_index_.end() ? kInvalidFactId : it->second;
}

FactId Instance::FindLabel(std::string_view label) const {
  auto it = label_index_.find(std::string(label));
  return it == label_index_.end() ? kInvalidFactId : it->second;
}

DynamicBitset Instance::SubinstanceByLabels(
    const std::vector<std::string>& labels) const {
  DynamicBitset sub(facts_.size());
  for (const std::string& label : labels) {
    FactId id = FindLabel(label);
    PREFREP_CHECK_MSG(id != kInvalidFactId, "unknown fact label");
    sub.set(id);
  }
  return sub;
}

std::string Instance::FactToString(FactId id) const {
  const Fact& f = fact(id);
  std::string out;
  if (!labels_[id].empty()) {
    out += labels_[id];
    out += "=";
  }
  out += schema_->relation_name(f.rel);
  out += "(";
  for (size_t i = 0; i < f.values.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += dict_.Text(f.values[i]);
  }
  out += ")";
  return out;
}

std::string Instance::SubinstanceToString(const DynamicBitset& sub) const {
  std::string out = "{";
  bool first = true;
  sub.ForEach([&](size_t id) {
    if (!first) {
      out += ", ";
    }
    first = false;
    FactId fid = static_cast<FactId>(id);
    if (!labels_[fid].empty()) {
      out += labels_[fid];
    } else {
      out += FactToString(fid);
    }
  });
  out += "}";
  return out;
}

}  // namespace prefrep
