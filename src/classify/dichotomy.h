// Copyright (c) prefrep contributors.
// The dichotomy classifier of Theorem 3.1 / §6.  For a schema S = (R, ∆),
// globally-optimal repair checking (ordinary, conflict-bounded
// priorities) is solvable in polynomial time iff for every relation
// symbol R:
//
//   1. ∆|R is equivalent to a single FD, or
//   2. ∆|R is equivalent to a set of two key constraints;
//
// otherwise it is coNP-complete.  Theorem 6.1: which side a schema is on
// is decidable in polynomial time; the algorithm below follows §6,
// justified by Lemma 6.2 (an equivalent single FD / pair of incomparable
// keys can always be found among the syntactic left-hand sides) and
// Theorem 6.3 (FD implication is polynomial).

#ifndef PREFREP_CLASSIFY_DICHOTOMY_H_
#define PREFREP_CLASSIFY_DICHOTOMY_H_

#include <string>
#include <vector>

#include "fd/fd_set.h"
#include "model/schema.h"

namespace prefrep {

/// Which tractable case (if any) a relation's FD set falls into.
enum class TractableKind {
  kSingleFd,  ///< ∆|R ≡ {A → B} (Theorem 3.1, condition 1)
  kTwoKeys,   ///< ∆|R ≡ {A1 → ⟦R⟧, A2 → ⟦R⟧}, incomparable (condition 2)
  kHard,      ///< neither: coNP-complete relation
};

const char* TractableKindName(TractableKind kind);

/// Classification of one relation's FD set, with the artifacts the
/// tractable algorithms need.
struct RelationClassification {
  TractableKind kind = TractableKind::kHard;
  /// For kSingleFd: the equivalent FD A → ⟦R.A⟧ (trivial ∅ → ∅ when ∆|R
  /// has no nontrivial FD).
  FD single_fd;
  /// For kTwoKeys: the two incomparable keys.
  AttrSet key1;
  AttrSet key2;
  /// Human-readable justification.
  std::string explanation;
};

/// Classifies one relation's FD set (the single-relation dichotomy).
/// Prefers kSingleFd when both conditions hold (e.g. a single key).
RelationClassification ClassifyRelationFds(const FDSet& fds);

/// Classification of a whole schema: tractable iff every relation is.
struct SchemaClassification {
  bool tractable = true;
  std::vector<RelationClassification> relations;  // indexed by RelId

  /// The hard relations (empty iff tractable).
  std::vector<RelId> HardRelations() const;
};

/// Theorem 6.1: decides in polynomial time which side of the dichotomy
/// of Theorem 3.1 the schema is on.
SchemaClassification ClassifySchema(const Schema& schema);

}  // namespace prefrep

#endif  // PREFREP_CLASSIFY_DICHOTOMY_H_
