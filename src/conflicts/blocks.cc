#include "conflicts/blocks.h"

namespace prefrep {

BlockDecomposition::BlockDecomposition(const ConflictGraph& cg)
    : free_facts_(cg.num_facts()),
      block_of_(cg.num_facts(), kNoBlock),
      by_relation_(cg.instance().schema().num_relations()) {
  size_t n = cg.num_facts();
  const Instance& instance = cg.instance();
  // BFS from each unvisited non-isolated fact; scanning fact ids in
  // ascending order numbers blocks by their smallest member.
  std::vector<FactId> queue;
  for (FactId start = 0; start < n; ++start) {
    if (cg.neighbors(start).empty()) {
      free_facts_.set(start);
      continue;
    }
    if (block_of_[start] != kNoBlock) {
      continue;
    }
    Block block;
    block.id = blocks_.size();
    block.rel = instance.fact(start).rel;
    block.facts = DynamicBitset(n);
    queue.clear();
    queue.push_back(start);
    block_of_[start] = block.id;
    while (!queue.empty()) {
      FactId f = queue.back();
      queue.pop_back();
      block.facts.set(f);
      PREFREP_CHECK_MSG(instance.fact(f).rel == block.rel,
                        "conflict edges must be intra-relation");
      for (FactId g : cg.neighbors(f)) {
        if (block_of_[g] == kNoBlock) {
          block_of_[g] = block.id;
          queue.push_back(g);
        }
      }
    }
    block.fact_list.reserve(block.facts.count());
    block.facts.ForEach([&](size_t f) {
      block.fact_list.push_back(static_cast<FactId>(f));
    });
    largest_block_ = std::max(largest_block_, block.fact_list.size());
    by_relation_[block.rel].push_back(block.id);
    blocks_.push_back(std::move(block));
  }
}

bool PriorityIsBlockLocal(const BlockDecomposition& blocks,
                          const PriorityRelation& priority) {
  for (const auto& [higher, lower] : priority.edges()) {
    size_t b = blocks.block_of(higher);
    if (b == BlockDecomposition::kNoBlock || blocks.block_of(lower) != b) {
      return false;
    }
  }
  return true;
}

}  // namespace prefrep
