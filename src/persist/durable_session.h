// Copyright (c) prefrep contributors.
// DurableSession — a SessionContext whose acknowledged edits survive a
// crash.  It composes the two persist primitives:
//
//   WAL     (persist/wal.h)      every successful state-changing op is
//                                appended, as its rendered ops-format
//                                line, after it applies and before its
//                                reply is returned;
//   snapshot (persist/snapshot.h) periodic checkpoints capture the full
//                                live state and atomically truncate the
//                                log the snapshot subsumes.
//
// Recovery order (Open): load the newest valid snapshot if present,
// rebuild the session from its body, then replay the WAL tail — records
// with seq ≤ the snapshot's are skipped (a crash can land between
// snapshot publication and WAL truncation), the first replayed record
// must be snapshot-seq + 1 (a gap means the WAL and snapshot are from
// different generations → kDataLoss), and a torn final record is
// dropped.  Replayed ops were all acknowledged successes, so a replay
// *failure* is also kDataLoss — the durable history no longer matches
// the state it claims to rebuild — never a silent skip.
//
// Queries are not logged; the durable history is exactly the edit
// sequence, and the serving layer's byte-identical-under-rebuild
// contract extends to recovery: a recovered session answers every query
// identically to an uninterrupted session that executed the durable
// edit prefix (proved by the crash battery in tests/durability_test.cc
// and tests/durability_crash_sweep.sh).

#ifndef PREFREP_PERSIST_DURABLE_SESSION_H_
#define PREFREP_PERSIST_DURABLE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "model/problem.h"
#include "persist/wal.h"
#include "serve/session.h"

namespace prefrep {

/// Where and how session state is persisted.
struct DurabilityOptions {
  std::string wal_path;       ///< required
  std::string snapshot_path;  ///< default: wal_path + ".snapshot"
  FsyncMode fsync = FsyncMode::kAlways;
  /// Checkpoint automatically after this many logged edits (0: only at
  /// Close / explicit Checkpoint).
  uint64_t snapshot_every = 0;
};

/// What recovery found on disk (reported on daemon startup).
struct RecoveryStats {
  bool snapshot_loaded = false;
  uint64_t snapshot_seq = 0;
  uint64_t ops_replayed = 0;
  /// Stale records (seq ≤ snapshot seq) skipped — a crash landed
  /// between snapshot publication and WAL truncation.
  uint64_t records_skipped = 0;
  bool torn_tail_dropped = false;
  uint64_t durable_seq = 0;

  /// One human-readable line ("snapshot loaded (seq 12), 3 ops
  /// replayed, torn tail dropped, durable seq 15").
  std::string ToString() const;
};

/// A resident session backed by a WAL + snapshot pair.
class DurableSession {
 public:
  /// Recovers (or bootstraps) durable state and opens the WAL for
  /// appending.  `base_problem` seeds the session only when no snapshot
  /// exists yet — after the first checkpoint the snapshot takes over.
  /// Errors: kDataLoss for unrecoverable on-disk corruption (see file
  /// header), kUnavailable when the backing files cannot be opened.
  static Result<std::unique_ptr<DurableSession>> Open(
      const PreferredRepairProblem& base_problem,
      SessionOptions session_options, DurabilityOptions durability);

  PREFREP_DISALLOW_COPY(DurableSession);

  /// Executes one op; successful state-changing ops are appended to the
  /// WAL (per the fsync mode) before the reply is returned, then a
  /// snapshot-every checkpoint may run.  A WAL append failure is
  /// returned as the op's status: the edit is live in memory but NOT
  /// durable, and the caller must not acknowledge it.
  [[nodiscard]] Result<std::string> Execute(const SessionOp& op);

  /// Publishes a snapshot at the current durable seq and truncates the
  /// WAL it subsumes.
  [[nodiscard]] Status Checkpoint();

  /// Clean shutdown: final checkpoint + WAL close (idempotent).  After
  /// Close, Execute returns kUnavailable.
  [[nodiscard]] Status Close();

  /// True for the op kinds that mutate session state and are therefore
  /// logged (insert/delete/prefer/jset/jadd/jdel/budget).
  static bool IsDurableEdit(SessionOp::Kind kind);

  SessionContext& session() { return *session_; }
  const RecoveryStats& recovery() const { return recovery_; }
  uint64_t durable_seq() const { return wal_.next_seq() - 1; }
  const DurabilityOptions& options() const { return options_; }

 private:
  DurableSession() = default;

  std::unique_ptr<SessionContext> session_;
  WalWriter wal_;
  DurabilityOptions options_;
  RecoveryStats recovery_;
  uint64_t edits_since_checkpoint_ = 0;
  bool closed_ = false;
};

}  // namespace prefrep

#endif  // PREFREP_PERSIST_DURABLE_SESSION_H_
