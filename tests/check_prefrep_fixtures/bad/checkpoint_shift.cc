// Fixture for tools/check_prefrep.py --selftest (never compiled): a
// subset-space walk bounded by a runtime shift with no governor
// checkpoint — 2^n iterations the budget never admitted, and UB
// outright once n reaches 64.
// EXPECT-FINDING: prefrep-checkpoint

#include <cstdint>

namespace prefrep {

void Use(uint64_t mask);

void EnumerateSubsets(int n) {
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    Use(mask);  // no Checkpoint() — bug
  }
}

}  // namespace prefrep
