// Copyright (c) prefrep contributors.
// A self-contained preferred-repair-checking problem: the schema, the
// (inconsistent) prioritizing instance (I, ≻), and the candidate
// subinstance J.  Generators and reductions produce this bundle; owning
// pointers keep internal references stable across moves.

#ifndef PREFREP_MODEL_PROBLEM_H_
#define PREFREP_MODEL_PROBLEM_H_

#include <memory>

#include "base/dynamic_bitset.h"
#include "model/instance.h"
#include "priority/priority.h"

namespace prefrep {

/// A repair-checking input ((I, ≻), J) together with its schema.
struct PreferredRepairProblem {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<Instance> instance;
  std::unique_ptr<PriorityRelation> priority;
  DynamicBitset j;

  PreferredRepairProblem() = default;

  /// Allocates an empty problem over a copy of `schema_value`.
  explicit PreferredRepairProblem(Schema schema_value)
      : schema(std::make_unique<Schema>(std::move(schema_value))) {
    instance = std::make_unique<Instance>(schema.get());
  }

  /// Initializes the priority relation once all facts exist.
  void InitPriority() {
    priority = std::make_unique<PriorityRelation>(instance.get());
  }
};

}  // namespace prefrep

#endif  // PREFREP_MODEL_PROBLEM_H_
