#!/usr/bin/env bash
# External crash-fault battery for prefrepd durability (docs/durability.md).
#
# Four phases, all against a real daemon process:
#   1. Kill-point sweep: --test-crash-at-wal-record=K:B murders the daemon
#      at every WAL append of a 12-edit script, with the torn tail cut at
#      several offsets inside the record.  After each crash the daemon is
#      rebooted on the same WAL and its query answers must be byte-identical
#      to a never-crashed control run over the durable prefix.
#   2. Raw SIGKILL: the daemon is killed -9 mid-stream while edits arrive
#      over a pipe; recovery must succeed and answer exactly as a control
#      run over whatever prefix turned out to be durable.
#   3. Clean-shutdown checkpoint: EOF must leave a magic-only WAL and a
#      snapshot that a second boot recovers from with zero replayed ops.
#   4. Bounded reader: a multi-MiB input line must get an error reply, not
#      unbounded buffering or a crash, and the daemon must keep serving.
#
# Usage: durability_crash_sweep.sh <prefrepd-binary> [workdir]
# Exit 0 on success; nonzero with a FAIL line on the first violation.
set -u

PREFREPD=${1:?usage: durability_crash_sweep.sh <prefrepd-binary> [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "${WORK}"
trap 'rm -rf "${WORK}"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

PROBLEM="${WORK}/problem.txt"
cat > "${PROBLEM}" <<'EOF'
relation LibLoc 2
fd LibLoc: {1} -> {2}
fact d1a LibLoc(lib1, almaden)
fact e1b LibLoc(lib1, bascom)
fact d2a LibLoc(lib2, almaden)
prefer e1b > d1a
j d1a
EOF

# Every line is a durable edit; each prefix of the list is itself a valid
# script (labels are defined before they are referenced), which is what
# lets a control run replay any crash prefix.
EDITS="${WORK}/edits.ops"
cat > "${EDITS}" <<'EOF'
insert m1 LibLoc(lib1, c1)
insert m2 LibLoc(lib2, c2)
insert m3 LibLoc(lib5, c3)
prefer m1 > d1a
prefer m2 > d2a
jadd m3
insert m4 LibLoc(lib6, c4)
delete m4
budget max-nodes 100000
insert m5 LibLoc(lib1, c5)
prefer e1b > m5
jdel m3
EOF
NUM_EDITS=$(wc -l < "${EDITS}")

QUERIES="${WORK}/queries.ops"
cat > "${QUERIES}" <<'EOF'
check global
count global
count pareto
construct
cqa global Q(x) :- LibLoc(x, y)
EOF

# Query replies only: drop edit acks, the recovery banner, and blank
# separators so a recovered run and a plain control run compare equal.
query_replies() {
  grep -v -e '^ok ' -e '^recovery:' -e '^$' "$1" || true
}

# Control answers after the first $1 edits, computed without durability.
control_answers() {
  local prefix_len=$1
  local out="${WORK}/control_${prefix_len}.out"
  if [ ! -f "${out}" ]; then
    { head -n "${prefix_len}" "${EDITS}"; cat "${QUERIES}"; } \
      > "${WORK}/control_${prefix_len}.ops"
    "${PREFREPD}" "${PROBLEM}" --script "${WORK}/control_${prefix_len}.ops" \
      > "${out}" 2>/dev/null \
      || fail "control run for prefix ${prefix_len} failed"
  fi
  query_replies "${out}"
}

# --- Phase 1: kill-point sweep over every WAL append -----------------------
# Partial-tail offsets all sit inside the 20-byte record header, so the
# torn record can never masquerade as complete.
PARTIALS=(0 7 19)
for K in $(seq 1 "${NUM_EDITS}"); do
  B=${PARTIALS[$(( (K - 1) % ${#PARTIALS[@]} ))]}
  WAL="${WORK}/sweep_${K}_${B}.wal"
  "${PREFREPD}" "${PROBLEM}" --wal "${WAL}" --fsync=off \
    --test-crash-at-wal-record="${K}:${B}" --script "${EDITS}" \
    > /dev/null 2>&1
  rc=$?
  [ "${rc}" -eq 137 ] || fail "crash at record ${K}: expected exit 137, got ${rc}"
  "${PREFREPD}" "${PROBLEM}" --wal "${WAL}" --script "${QUERIES}" \
    > "${WORK}/recovered.out" 2>&1 \
    || fail "recovery after crash at record ${K} exited nonzero"
  grep -q "durable seq $((K - 1))\$" "${WORK}/recovered.out" \
    || fail "crash at record ${K}: recovery did not report durable seq $((K - 1)): $(head -n 1 "${WORK}/recovered.out")"
  if ! diff <(control_answers $((K - 1))) \
            <(query_replies "${WORK}/recovered.out") > /dev/null; then
    fail "crash at record ${K} (torn at ${B} bytes): recovered answers diverge from the durable prefix"
  fi
done
echo "ok: kill-point sweep, ${NUM_EDITS} records x torn offsets ${PARTIALS[*]}"

# --- Phase 2: raw SIGKILL mid-stream ---------------------------------------
WAL="${WORK}/sigkill.wal"
mkfifo "${WORK}/feed"
# The daemon runs under a reaper subshell so the outer script sees its
# exit status without bash's "Killed" job notice polluting the output.
(
  "${PREFREPD}" "${PROBLEM}" --wal "${WAL}" --fsync=off \
    < "${WORK}/feed" > /dev/null 2>&1 &
  echo $! > "${WORK}/daemon.pid"
  wait $!
  echo $? > "${WORK}/daemon.rc"
) 2>/dev/null &
REAPER=$!
{
  while IFS= read -r line; do
    echo "${line}"
    sleep 0.02
  done < "${EDITS}"
  # Keep the pipe open so the daemon dies by signal, not EOF checkpoint.
  sleep 5
} > "${WORK}/feed" &
FEEDER=$!
for _ in $(seq 1 50); do
  [ -s "${WORK}/daemon.pid" ] && break
  sleep 0.01
done
sleep 0.11
kill -9 "$(cat "${WORK}/daemon.pid")" 2>/dev/null
wait "${REAPER}" 2>/dev/null
rc=$(cat "${WORK}/daemon.rc")
kill "${FEEDER}" 2>/dev/null
wait "${FEEDER}" 2>/dev/null
[ "${rc}" -eq 137 ] || fail "SIGKILL phase: daemon exit ${rc}, expected 137"
"${PREFREPD}" "${PROBLEM}" --wal "${WAL}" --script "${QUERIES}" \
  > "${WORK}/sigkill.out" 2>&1 \
  || fail "recovery after SIGKILL exited nonzero"
SEQ=$(sed -n 's/.*durable seq \([0-9][0-9]*\)$/\1/p;1q' "${WORK}/sigkill.out")
[ -n "${SEQ}" ] || fail "SIGKILL phase: no recovery banner in output"
[ "${SEQ}" -le "${NUM_EDITS}" ] || fail "SIGKILL phase: durable seq ${SEQ} exceeds ${NUM_EDITS} edits"
if ! diff <(control_answers "${SEQ}") \
          <(query_replies "${WORK}/sigkill.out") > /dev/null; then
  fail "SIGKILL phase: recovered answers diverge from durable prefix ${SEQ}"
fi
echo "ok: SIGKILL mid-stream, recovered at durable seq ${SEQ}"

# --- Phase 3: clean shutdown checkpoints -----------------------------------
WAL="${WORK}/clean.wal"
cat "${EDITS}" "${QUERIES}" \
  | "${PREFREPD}" "${PROBLEM}" --wal "${WAL}" > /dev/null 2>&1 \
  || fail "clean durable run exited nonzero"
[ -f "${WAL}.snapshot" ] || fail "clean shutdown left no snapshot"
WAL_BYTES=$(wc -c < "${WAL}")
[ "${WAL_BYTES}" -eq 8 ] \
  || fail "clean shutdown left ${WAL_BYTES} WAL bytes, expected magic-only 8"
"${PREFREPD}" "${PROBLEM}" --wal "${WAL}" --script "${QUERIES}" \
  > "${WORK}/clean.out" 2>&1 \
  || fail "boot from checkpoint exited nonzero"
grep -q "snapshot loaded (seq ${NUM_EDITS}), 0 ops replayed" "${WORK}/clean.out" \
  || fail "boot from checkpoint did not recover from the snapshot: $(head -n 1 "${WORK}/clean.out")"
if ! diff <(control_answers "${NUM_EDITS}") \
          <(query_replies "${WORK}/clean.out") > /dev/null; then
  fail "checkpoint boot answers diverge from the full-script control"
fi
echo "ok: clean shutdown checkpoint, magic-only WAL + snapshot seq ${NUM_EDITS}"

# --- Phase 4: bounded input reader -----------------------------------------
{
  printf 'insert '
  head -c 2097152 /dev/zero | tr '\0' 'a'
  printf '\ncount global\n'
} > "${WORK}/huge.ops"
"${PREFREPD}" "${PROBLEM}" --script "${WORK}/huge.ops" \
  > "${WORK}/huge.out" 2>&1
rc=$?
[ "${rc}" -eq 0 ] || fail "over-cap line: daemon exited ${rc}, expected 0"
grep -q '^error:' "${WORK}/huge.out" \
  || fail "over-cap line did not produce an error reply"
grep -q '^count global: ' "${WORK}/huge.out" \
  || fail "daemon stopped serving after the over-cap line"
echo "ok: 2 MiB line rejected with an error reply, daemon kept serving"

echo "PASS: durability crash sweep"
