// Copyright (c) prefrep contributors.
// A small declarative text format for preferred-repair problems, used by
// the examples, the CLI tools and round-trip tests.  Grammar (lines;
// '#' starts a comment; blank lines ignored):
//
//   relation <Name> <arity>
//   fd <Name>: <A> -> <B>          # e.g.  fd LibLoc: 2 -> 1
//   fact <label> <Name>(<c1>, <c2>, ...)
//   prefer <label> > <label> [> <label> ...]   # chain of priorities
//   j <label> [<label> ...]        # adds facts to the candidate J
//
// Example:
//
//   relation LibLoc 2
//   fd LibLoc: 1 -> 2
//   fd LibLoc: 2 -> 1
//   fact d1a LibLoc(lib1, almaden)
//   fact e1b LibLoc(lib1, bascom)
//   prefer e1b > d1a
//   j d1a

#ifndef PREFREP_IO_TEXT_FORMAT_H_
#define PREFREP_IO_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "model/problem.h"

namespace prefrep {

/// Parses a whole problem from text.  Errors carry the line number.
[[nodiscard]] Result<PreferredRepairProblem> ParseProblemText(
    std::string_view text);

/// Reads a problem from a file.
[[nodiscard]] Result<PreferredRepairProblem> ParseProblemFile(
    const std::string& path);

/// Serializes a problem to the same text format (labels are synthesized
/// as f<id> for unlabeled facts).
std::string ProblemToText(const PreferredRepairProblem& problem);

/// Serializes a raw (instance, priority, J) view — the form the audit
/// layer (repair/audit.h) holds when an invariant trips — so failures
/// can be replayed through ParseProblemText.  `priority` and `j` may be
/// null to omit the corresponding sections.
std::string ProblemToText(const Instance& instance,
                          const PriorityRelation* priority,
                          const DynamicBitset* j);

}  // namespace prefrep

#endif  // PREFREP_IO_TEXT_FORMAT_H_
