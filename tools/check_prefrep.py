#!/usr/bin/env python3
"""AST-backed domain checker for prefrep — the semantic rules that grew
out of tools/lint_prefrep.py's regex checks.  Registered as the
`check-prefrep` CTest; run from the repository root:

    python3 tools/check_prefrep.py [--engine=auto|internal|clang]
    python3 tools/check_prefrep.py --selftest   # fixture self-test

Unlike the line-regex lint, these rules need structure: loop extents,
loop nesting, and which values flow from which calls.  The checker
builds that structure with one of two engines producing the same
intermediate form (a loop tree with header/body source extents):

  * clang     libclang (python clang.cindex) — a real C++ AST.  Used
              when importable and a libclang shared object loads.
  * internal  a self-contained mini-parser: comment/string stripping,
              brace matching, loop-tree extraction.  No dependencies, so
              the check runs in the bare build container; the clang
              engine is the cross-check in CI.

Checks
------
prefrep-checkpoint
    Cooperative-cancellation discipline over the enumeration core
    (src/repair, src/query, src/serve).  Two shapes are flagged:
    (a) any loop whose bound is a runtime shift (`1 << n` — a
        subset-space walk) with no reachable governor Checkpoint() in
        its body, and
    (b) any nested loop (depth >= 2) ranging over a *repair-derived*
        value that materializes results (push_back/emplace/insert)
        without a reachable Checkpoint() in its body.
    Repair-derived: the loop's range/condition mentions a value
    assigned (transitively) from AllOptimalRepairs /
    OptimalBlockRepairs / CachedOptimalBlockRepairs / RepairsFor* /
    *.Next(...).  This is the AllOptimalRepairs cross-block-product
    bug class: per-block repair lists are governor-budgeted when they
    are *produced*, but the cross-block product that *combines* them
    multiplies sizes the governor never admitted — only a checkpoint
    inside the product loop keeps the budget honest (the canonical
    pattern lives in src/repair/block_solver.cc).  Single consuming
    loops over one already-charged list are fine and not flagged.
    Escape: NOLINT(prefrep-checkpoint) on the loop line or the line
    above (justification discipline enforced by lint_prefrep check 4).

prefrep-nodiscard
    [[nodiscard]] discipline on failure-carrying types: Status and
    Result (src/base/status.h) and CheckResult
    (src/repair/improvement.h) must be declared class-level
    [[nodiscard]], and every Parse* entry point declared in a header
    must return one of those types or std::optional — a parse result
    that can be silently dropped hides malformed input.  The
    class-level attributes are what the negative-compile tests
    (tests/static_assert_test/) prove effective.

prefrep-raw-concurrency
    Raw standard-library concurrency primitives (std::mutex and
    friends, std::lock_guard/unique_lock/scoped_lock,
    std::condition_variable*, std::thread/jthread/async) are banned
    outside src/base/: everything else must go through the annotated
    Mutex/MutexLock/CondVar wrappers (src/base/thread_annotations.h)
    so Clang Thread Safety Analysis sees every acquisition, and
    through base/thread_pool.h for execution.  Subsumes (and retires)
    lint_prefrep's regex raw-thread and unbounded-shift checks.
    Escape: NOLINT(prefrep-raw-concurrency) on or above the line.

prefrep-durability
    Two invariants of the persistence layer (src/persist/,
    docs/durability.md).  (a) Raw write primitives (fopen/fwrite,
    std::ofstream/std::fstream, ::open/::write/::creat and friends)
    are banned in src/persist/ outside file_io.cc: every byte that
    reaches disk must pass through the checksummed AppendOnlyFile /
    AtomicWriteFile choke point, or crash-atomicity claims rot one
    convenience write at a time.  (b) Recovery and durability entry
    points declared in src/persist/ headers (Open/Read*/Load*/
    Recover*/Replay*/Write*/Append*/Sync*/Close/Truncate)
    must return Status or Result<...>: a recovery step whose failure
    is a bool or void turns data loss into silent wrong answers.
    Escape: NOLINT(prefrep-durability) on or above the line.

prefrep-hotloop
    Node-based hash maps keyed by materialized key vectors
    (std::unordered_map<std::vector<...>, ...>) are banned in
    src/conflicts/: the conflict join is the hot path the columnar
    rewrite flattened (docs/memory-layout.md), and a vector-keyed map
    reintroduces one heap allocation per probe plus pointer-chasing
    per bucket.  Key by the seeded projection hash and verify against
    a row representative instead (conflicts/projection.h).
    Escape: NOLINT(prefrep-hotloop) on or above the line — the
    preserved reference join (conflicts.cc) carries one deliberately.

Exit status 0 when clean; 1 with one `path:line: message` per finding.
Stdlib-only unless the clang engine is explicitly requested.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CHECKPOINT_DIRS = ("src/repair", "src/query", "src/serve", "src/classify")
RAW_CONCURRENCY_DIRS = ("src", "tests", "bench", "examples")
RAW_CONCURRENCY_EXEMPT_PREFIX = "src/base/"
FIXTURE_DIR = Path("tests/check_prefrep_fixtures")

STATUS_HEADER = Path("src/base/status.h")
IMPROVEMENT_HEADER = Path("src/repair/improvement.h")

# Calls whose results are (lists of) repairs: the per-block enumerators
# and the incremental session accessor.  `.Next(` catches
# ParallelBlockSession::Next and any future streaming source.
SOURCE_CALL_RE = re.compile(
    r"\b(?:AllOptimalRepairs|OptimalBlockRepairs|CachedOptimalBlockRepairs|"
    r"RepairsFor\w*)\s*\(|\.\s*Next\s*\(")
VAR_SHIFT_RE = re.compile(
    r"\b1(?:[uU][lL]{0,2}|[lL]{1,2}[uU]?)?\s*<<\s*[A-Za-z_]")
MATERIALIZE_RE = re.compile(r"\b(?:push_back|emplace_back|emplace|insert)\s*\(")
CHECKPOINT_RE = re.compile(r"\bCheckpoint\s*\(")
ASSIGN_RE = re.compile(r"(\w+)\s*=[^=]")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

HOTLOOP_DIR = "src/conflicts"
HOTLOOP_RE = re.compile(r"\bstd::unordered_map\s*<\s*std::vector\b")

RAW_CONCURRENCY_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|thread|jthread|"
    r"async)\b")

PARSE_DECL_NAME_RE = re.compile(r"\bParse\w*\s*\(")
NODISCARD_RETURN_RE = re.compile(r"\bStatus\b|\bResult\s*<|\boptional\s*<")

DURABILITY_DIR = "src/persist"
DURABILITY_WRITE_CHOKE_POINT = "src/persist/file_io.cc"
RAW_WRITE_RE = re.compile(
    r"\b(?:fopen|freopen|fwrite|fputs|fprintf|std::ofstream|std::fstream|"
    r"::open|::openat|::creat|::write|::pwrite|::writev)\b")
# `Checkpoint` is deliberately absent: it names governor checkpointing
# in the enumeration core (canonically bool), not a durability entry.
RECOVERY_ENTRY_RE = re.compile(
    r"\b(?:Open|Read\w*|Load\w*|Recover\w*|Replay\w*|Write\w*|Append\w*|"
    r"Sync\w*|Close|Truncate)\s*\(")
# Tokens that may precede a declaration without being its return type;
# a statement holding nothing else is a constructor (no return type).
DECL_QUALIFIERS = frozenset((
    "public", "private", "protected", "static", "virtual", "inline",
    "constexpr", "explicit", "friend", "nodiscard", "maybe_unused",
    "override", "final"))

EXPECT_FINDING_RE = re.compile(r"EXPECT-FINDING:\s*([\w-]+)")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line
    structure (same transform as lint_prefrep)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


@dataclass
class Loop:
    """One loop with source extents into the stripped file text."""
    header_start: int      # offset of the `for`/`while` keyword
    header: str            # text inside the loop parentheses
    body_start: int        # offset of the first body character
    body_end: int          # offset one past the body
    line: int              # 1-based line of the keyword
    depth: int = 1         # 1 = outermost loop of its function
    parent: "Loop | None" = field(default=None, repr=False)


def _match_forward(code: str, i: int, open_c: str, close_c: str) -> int:
    """Offset one past the bracket that closes code[i] (which must be
    open_c); len(code) if unbalanced."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == open_c:
            depth += 1
        elif c == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


class InternalEngine:
    """Loop-tree extraction by lexical brace matching on stripped text."""

    name = "internal"

    LOOP_KEYWORD_RE = re.compile(r"\b(for|while)\s*\(")

    def extract_loops(self, path: Path, code: str) -> list[Loop]:
        loops: list[Loop] = []
        for m in self.LOOP_KEYWORD_RE.finditer(code):
            header_open = m.end() - 1
            header_close = _match_forward(code, header_open, "(", ")")
            header = code[header_open + 1:header_close - 1]
            i = header_close
            n = len(code)
            while i < n and code[i].isspace():
                i += 1
            if i >= n:
                continue
            if code[i] == "{":
                body_end = _match_forward(code, i, "{", "}")
                body_start = i + 1
                body_end -= 1
            else:
                # Single-statement body: scan to the ';' at bracket depth
                # zero (an inner `for(;;)` or init-list keeps depth > 0).
                body_start = i
                depth = 0
                while i < n:
                    c = code[i]
                    if c in "({[":
                        depth += 1
                    elif c in ")}]":
                        depth -= 1
                    elif c == ";" and depth == 0:
                        break
                    i += 1
                body_end = i
            line = code.count("\n", 0, m.start()) + 1
            loops.append(Loop(m.start(), header, body_start, body_end, line))
        self._assign_depths(loops)
        return loops

    @staticmethod
    def _assign_depths(loops: list[Loop]) -> None:
        # Parent = innermost loop whose body encloses this loop's keyword.
        # Lexical nesting respects function boundaries for free.
        for loop in loops:
            parent = None
            for other in loops:
                if other is loop:
                    continue
                if other.body_start <= loop.header_start < other.body_end:
                    if parent is None or other.body_start > parent.body_start:
                        parent = other
            loop.parent = parent
        for loop in loops:
            depth, p = 1, loop.parent
            while p is not None:
                depth += 1
                p = p.parent
            loop.depth = depth


class ClangEngine:
    """Loop-tree extraction from a real AST via libclang.  Produces the
    same Loop records (offsets into the stripped text) as
    InternalEngine, so every rule downstream is engine-independent."""

    name = "clang"

    def __init__(self) -> None:
        import clang.cindex as cindex  # noqa: deferred, optional dep
        self._cindex = cindex
        try:
            self._index = cindex.Index.create()
        except Exception:
            # Distros ship libclang under versioned paths the binding
            # does not always probe; try the usual suspects once.
            import glob
            candidates = sorted(
                glob.glob("/usr/lib/llvm-*/lib/libclang*.so*")
                + glob.glob("/usr/lib/*/libclang*.so*"), reverse=True)
            if not candidates:
                raise
            cindex.Config.set_library_file(candidates[0])
            self._index = cindex.Index.create()
        self._loop_kinds = {
            cindex.CursorKind.FOR_STMT,
            cindex.CursorKind.WHILE_STMT,
            cindex.CursorKind.DO_STMT,
            cindex.CursorKind.CXX_FOR_RANGE_STMT,
        }

    def extract_loops(self, path: Path, code: str) -> list[Loop]:
        cindex = self._cindex
        tu = self._index.parse(
            str(path),
            args=["-std=c++20", "-xc++", "-I", str(REPO_ROOT / "src")],
            options=cindex.TranslationUnit.PARSE_INCOMPLETE)
        loops: list[Loop] = []

        def visit(cursor):
            for child in cursor.get_children():
                loc = child.location
                if loc.file is not None and Path(str(loc.file)) != path:
                    continue
                if child.kind in self._loop_kinds:
                    start = child.extent.start.offset
                    children = list(child.get_children())
                    if children:
                        body = children[-1]
                        body_start = body.extent.start.offset
                        body_end = body.extent.end.offset
                        header = code[start:body_start]
                    else:
                        body_start = body_end = child.extent.end.offset
                        header = code[start:body_end]
                    # Trim the keyword off the header text so it matches
                    # the internal engine's parenthesized-header shape.
                    paren = header.find("(")
                    header = header[paren + 1:] if paren != -1 else header
                    loops.append(Loop(start, header, body_start, body_end,
                                      child.location.line))
                visit(child)

        visit(tu.cursor)
        InternalEngine._assign_depths(loops)
        return loops


def make_engine(choice: str) -> "InternalEngine | ClangEngine":
    if choice == "internal":
        return InternalEngine()
    if choice == "clang":
        return ClangEngine()
    try:
        return ClangEngine()
    except Exception:
        return InternalEngine()


class Checker:
    def __init__(self, engine) -> None:
        self.engine = engine
        self.findings: list[str] = []

    def report(self, rel: Path, line: int, check: str, message: str) -> None:
        self.findings.append(f"{rel}:{line}: [{check}] {message}")

    # -- prefrep-checkpoint ------------------------------------------------

    @staticmethod
    def tainted_names(code: str) -> set[str]:
        """Identifiers (transitively) assigned from a repair-source call.
        Statement-granular: split on ';', look for `lhs = ...source...`,
        then run a var-to-var copy fixpoint (`a = b` / `a = move(b)`)."""
        tainted: set[str] = set()
        statements = code.split(";")
        for stmt in statements:
            m = ASSIGN_RE.search(stmt)
            if m and SOURCE_CALL_RE.search(stmt[m.end():]):
                tainted.add(m.group(1))
        changed = True
        while changed:
            changed = False
            for stmt in statements:
                m = ASSIGN_RE.search(stmt)
                if not m or m.group(1) in tainted:
                    continue
                rhs_idents = set(IDENT_RE.findall(stmt[m.end():]))
                if rhs_idents & tainted:
                    tainted.add(m.group(1))
                    changed = True
        return tainted

    def check_checkpoint(self, rel: Path, text: str, code: str) -> None:
        lines = text.split("\n")
        tainted = self.tainted_names(code)
        for loop in self.engine.extract_loops(REPO_ROOT / rel, code):
            body = code[loop.body_start:loop.body_end]
            if CHECKPOINT_RE.search(body):
                continue
            raw = lines[loop.line - 1] if loop.line <= len(lines) else ""
            prev = lines[loop.line - 2] if loop.line >= 2 else ""
            if ("prefrep-checkpoint" in raw or "prefrep-checkpoint" in prev):
                continue
            if VAR_SHIFT_RE.search(loop.header):
                self.report(
                    rel, loop.line, "prefrep-checkpoint",
                    "loop bounded by a runtime `1 << n` subset walk with no "
                    "reachable governor Checkpoint() in its body — call "
                    "governor->Checkpoint() per iteration (see "
                    "src/base/governor.h) or justify with "
                    "NOLINT(prefrep-checkpoint)")
                continue
            if loop.depth < 2 or not MATERIALIZE_RE.search(body):
                continue
            header_idents = set(IDENT_RE.findall(loop.header))
            if (header_idents & tainted) or SOURCE_CALL_RE.search(loop.header):
                self.report(
                    rel, loop.line, "prefrep-checkpoint",
                    "nested loop over a repair-derived range materializes "
                    "results with no reachable governor Checkpoint() — this "
                    "is the cross-block-product shape whose size the "
                    "governor never admitted; checkpoint every iteration "
                    "(canonical pattern: src/repair/block_solver.cc) or "
                    "justify with NOLINT(prefrep-checkpoint)")

    # -- prefrep-nodiscard -------------------------------------------------

    def check_class_nodiscard(self) -> None:
        for rel, kind, name in ((STATUS_HEADER, "class", "Status"),
                                (STATUS_HEADER, "class", "Result"),
                                (IMPROVEMENT_HEADER, "struct", "CheckResult")):
            path = REPO_ROOT / rel
            if not path.exists():
                self.report(rel, 1, "prefrep-nodiscard", "file missing")
                continue
            code = strip_comments_and_strings(
                path.read_text(encoding="utf-8"))
            if not re.search(
                    rf"\b{kind}\s+\[\[\s*nodiscard\s*\]\]\s+{name}\b", code):
                self.report(
                    rel, 1, "prefrep-nodiscard",
                    f"{kind} {name} must be declared `{kind} [[nodiscard]] "
                    f"{name}` — the class-level attribute is what makes "
                    "every dropped result a warning (and what "
                    "tests/static_assert_test proves)")

    def check_parse_declarations(self, rel: Path, code: str) -> None:
        for m in PARSE_DECL_NAME_RE.finditer(code):
            stmt_start = max(code.rfind(ch, 0, m.start())
                             for ch in ";{}#")
            stmt = code[stmt_start + 1:m.start()]
            if not stmt.strip():
                continue  # argument position or similar — not a declaration
            if re.search(r"[=.,(]|->|\breturn\b", stmt):
                continue  # a call, not a declaration
            if NODISCARD_RETURN_RE.search(stmt):
                continue
            line = code.count("\n", 0, m.start()) + 1
            self.report(
                rel, line, "prefrep-nodiscard",
                "Parse* entry point must return Status, Result<...> or "
                "std::optional<...> so a dropped parse failure cannot "
                "compile silently")

    # -- prefrep-raw-concurrency ------------------------------------------

    def check_raw_concurrency(self, rel: Path, text: str, code: str) -> None:
        lines = text.split("\n")
        for idx, code_line in enumerate(code.split("\n"), start=1):
            m = RAW_CONCURRENCY_RE.search(code_line)
            if not m:
                continue
            raw = lines[idx - 1] if idx <= len(lines) else ""
            prev = lines[idx - 2] if idx >= 2 else ""
            if ("prefrep-raw-concurrency" in raw
                    or "prefrep-raw-concurrency" in prev):
                continue
            self.report(
                rel, idx, "prefrep-raw-concurrency",
                f"raw std::{m.group(1)} outside src/base/ — use the "
                "annotated Mutex/MutexLock/CondVar wrappers "
                "(src/base/thread_annotations.h) so Thread Safety Analysis "
                "sees the acquisition, and base/thread_pool.h for "
                "execution; or justify with NOLINT(prefrep-raw-concurrency)")

    # -- prefrep-hotloop ---------------------------------------------------

    def check_hotloop(self, rel: Path, text: str, code: str) -> None:
        lines = text.split("\n")
        for m in HOTLOOP_RE.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            raw = lines[line - 1] if line <= len(lines) else ""
            prev = lines[line - 2] if line >= 2 else ""
            if "prefrep-hotloop" in raw or "prefrep-hotloop" in prev:
                continue
            self.report(
                rel, line, "prefrep-hotloop",
                "hash map keyed by a materialized std::vector in the "
                "conflict hot path — key by the seeded projection hash "
                "and verify against a row representative instead "
                "(conflicts/projection.h, docs/memory-layout.md); or "
                "justify with NOLINT(prefrep-hotloop)")

    # -- prefrep-durability ------------------------------------------------

    def check_raw_persist_writes(self, rel: Path, text: str,
                                 code: str) -> None:
        lines = text.split("\n")
        for idx, code_line in enumerate(code.split("\n"), start=1):
            m = RAW_WRITE_RE.search(code_line)
            if not m:
                continue
            raw = lines[idx - 1] if idx <= len(lines) else ""
            prev = lines[idx - 2] if idx >= 2 else ""
            if "prefrep-durability" in raw or "prefrep-durability" in prev:
                continue
            self.report(
                rel, idx, "prefrep-durability",
                f"raw write primitive `{m.group(0)}` in the persistence "
                "layer — every byte that reaches disk must go through the "
                "checksummed AppendOnlyFile/AtomicWriteFile choke point "
                "(src/persist/file_io.h), or justify with "
                "NOLINT(prefrep-durability)")

    def check_recovery_entry_returns(self, rel: Path, text: str,
                                     code: str) -> None:
        lines = text.split("\n")
        for m in RECOVERY_ENTRY_RE.finditer(code):
            if m.start() > 0 and code[m.start() - 1] in "~.:_":
                continue  # destructor, member call, or qualified name tail
            stmt_start = max(code.rfind(ch, 0, m.start()) for ch in ";{}#")
            stmt = code[stmt_start + 1:m.start()]
            if not stmt.strip():
                continue
            if re.search(r"[=.,(]|->|\breturn\b", stmt):
                continue  # a call or initializer, not a declaration
            return_type = [t for t in IDENT_RE.findall(stmt)
                           if t not in DECL_QUALIFIERS]
            if not return_type:
                continue  # constructor: qualifiers only, no return type
            if NODISCARD_RETURN_RE.search(stmt):
                continue
            line = code.count("\n", 0, m.start()) + 1
            raw = lines[line - 1] if line <= len(lines) else ""
            prev = lines[line - 2] if line >= 2 else ""
            if "prefrep-durability" in raw or "prefrep-durability" in prev:
                continue
            self.report(
                rel, line, "prefrep-durability",
                "durability/recovery entry point must return Status or "
                "Result<...> — a recovery step whose failure is void or "
                "bool turns data loss into silent wrong answers; or "
                "justify with NOLINT(prefrep-durability)")

    # -- drivers -----------------------------------------------------------

    def run_tree(self) -> int:
        scanned = 0
        self.check_class_nodiscard()
        for d in CHECKPOINT_DIRS:
            for path in sorted((REPO_ROOT / d).rglob("*")):
                if path.suffix not in (".h", ".cc"):
                    continue
                rel = path.relative_to(REPO_ROOT)
                text = path.read_text(encoding="utf-8")
                code = strip_comments_and_strings(text)
                self.check_checkpoint(rel, text, code)
                scanned += 1
        for path in sorted((REPO_ROOT / "src").rglob("*.h")):
            rel = path.relative_to(REPO_ROOT)
            code = strip_comments_and_strings(
                path.read_text(encoding="utf-8"))
            self.check_parse_declarations(rel, code)
            scanned += 1
        for path in sorted((REPO_ROOT / DURABILITY_DIR).rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            rel = path.relative_to(REPO_ROOT)
            text = path.read_text(encoding="utf-8")
            code = strip_comments_and_strings(text)
            if str(rel) != DURABILITY_WRITE_CHOKE_POINT:
                self.check_raw_persist_writes(rel, text, code)
            if path.suffix == ".h":
                self.check_recovery_entry_returns(rel, text, code)
            scanned += 1
        for path in sorted((REPO_ROOT / HOTLOOP_DIR).rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            rel = path.relative_to(REPO_ROOT)
            text = path.read_text(encoding="utf-8")
            self.check_hotloop(rel, text, strip_comments_and_strings(text))
            scanned += 1
        for d in RAW_CONCURRENCY_DIRS:
            for suffix in ("*.h", "*.cc", "*.cpp"):
                for path in sorted((REPO_ROOT / d).rglob(suffix)):
                    rel = path.relative_to(REPO_ROOT)
                    rel_str = str(rel)
                    if rel_str.startswith(RAW_CONCURRENCY_EXEMPT_PREFIX):
                        continue
                    if rel_str.startswith(str(FIXTURE_DIR)):
                        continue  # fixtures are deliberately dirty
                    text = path.read_text(encoding="utf-8")
                    code = strip_comments_and_strings(text)
                    self.check_raw_concurrency(rel, text, code)
                    scanned += 1
        return scanned

    def run_fixture(self, path: Path) -> list[str]:
        """Applies every per-file rule to one fixture, returning its
        findings (fixtures opt into all checks regardless of directory)."""
        saved, self.findings = self.findings, []
        rel = path.relative_to(REPO_ROOT)
        text = path.read_text(encoding="utf-8")
        code = strip_comments_and_strings(text)
        self.check_checkpoint(rel, text, code)
        self.check_parse_declarations(rel, code)
        self.check_raw_concurrency(rel, text, code)
        self.check_hotloop(rel, text, code)
        self.check_raw_persist_writes(rel, text, code)
        self.check_recovery_entry_returns(rel, text, code)
        got, self.findings = self.findings, saved
        return got


def run_selftest(engine) -> int:
    """Every fixture under bad/ must produce at least one finding of the
    check id named by its `EXPECT-FINDING:` comment (and no finding of
    any other check); every fixture under clean/ must produce none."""
    checker = Checker(engine)
    failures = []
    bad_dir = REPO_ROOT / FIXTURE_DIR / "bad"
    clean_dir = REPO_ROOT / FIXTURE_DIR / "clean"
    bad = sorted(p for p in bad_dir.rglob("*") if p.suffix in (".h", ".cc"))
    clean = sorted(
        p for p in clean_dir.rglob("*") if p.suffix in (".h", ".cc"))
    if not bad or not clean:
        print(f"check_prefrep --selftest: no fixtures under {FIXTURE_DIR}")
        return 1
    for path in bad:
        rel = path.relative_to(REPO_ROOT)
        expected = EXPECT_FINDING_RE.findall(
            path.read_text(encoding="utf-8"))
        if not expected:
            failures.append(f"{rel}: bad fixture lacks an "
                            "`EXPECT-FINDING: <check>` comment")
            continue
        findings = checker.run_fixture(path)
        flagged = {f.split("[", 1)[1].split("]", 1)[0]
                   for f in findings if "[" in f}
        for check in expected:
            if check not in flagged:
                failures.append(
                    f"{rel}: expected a {check} finding, got "
                    f"{findings or 'none'}")
        for check in flagged - set(expected):
            failures.append(f"{rel}: unexpected {check} finding")
    for path in clean:
        rel = path.relative_to(REPO_ROOT)
        findings = checker.run_fixture(path)
        if findings:
            failures.append(f"{rel}: clean fixture flagged: {findings}")
    for failure in failures:
        print(failure)
    print(f"check_prefrep --selftest [{engine.name}]: "
          f"{len(bad)} bad + {len(clean)} clean fixtures, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--engine", choices=("auto", "internal", "clang"),
                        default="auto",
                        help="AST engine (auto: clang if available, else "
                        "the built-in parser)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture self-test instead of the tree")
    parser.add_argument("--verbose", action="store_true",
                        help="print the number of files scanned")
    args = parser.parse_args()
    engine = make_engine(args.engine)
    if args.selftest:
        return run_selftest(engine)
    checker = Checker(engine)
    scanned = checker.run_tree()
    for finding in checker.findings:
        print(finding)
    if args.verbose or not checker.findings:
        status = "clean" if not checker.findings else "dirty"
        print(f"check_prefrep [{engine.name}]: scanned {scanned} files, "
              f"{len(checker.findings)} finding(s), {status}")
    return 1 if checker.findings else 0


if __name__ == "__main__":
    sys.exit(main())
