// B14 — the block-solve cache (cache/block_cache.h) A/B: exact
// globally-optimal checking on MakeHardShardedWorkload with k identical
// hard blocks (the cache's target shape — one exhaustive solve, k−1
// replays) versus the same workload with `distinct_blocks` (every block
// canonically unique — pure fingerprint/lookup overhead, same repair
// space and cost otherwise).  Threads are pinned to 1, so the ratio is
// a clean serial A/B of the memoization itself; the parallel
// interaction is bench_parallel's and tests/metamorphic_test.cc's job.
//
// The cache is cleared every iteration: each measurement includes the
// one cold solve plus k−1 hits, which is the cache's steady-state cost
// on a fresh problem (a warm rerun would measure k hits and flatter the
// ratio).  Expected on identical shards: ≈ k× at k ≥ 32 blocks of this
// size (EXPERIMENTS.md, B14).  Expected on distinct shards: within
// noise of cache-off.

#include <benchmark/benchmark.h>

#include "cache/block_cache.h"
#include "gen/hard_workloads.h"
#include "model/context.h"
#include "repair/checker.h"
#include "repair/counting.h"

namespace prefrep {
namespace {

constexpr size_t kCliques = 4;
constexpr size_t kCliqueSize = 4;

// arg0 = shards (identical hard blocks of kCliques × kCliqueSize
// facts), arg1 = 1 to install the cache.
void BM_CacheCheckIdenticalBlocks(benchmark::State& state) {
  PreferredRepairProblem problem = MakeHardShardedWorkload(
      static_cast<size_t>(state.range(0)), kCliques, kCliqueSize);
  ProblemContext ctx(*problem.instance, *problem.priority);
  ctx.set_parallelism(1);
  BlockSolveCache cache;
  if (state.range(1) != 0) {
    ctx.set_block_cache(&cache);
  }
  RepairChecker checker(ctx);
  for (auto _ : state) {
    cache.Clear();
    auto outcome = checker.CheckGloballyOptimal(problem.j);
    benchmark::DoNotOptimize(outcome.ok() && outcome->result.optimal);
  }
  BlockCacheStats stats = cache.stats();
  state.counters["blocks"] = static_cast<double>(state.range(0));
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_CacheCheckIdenticalBlocks)
    ->ArgsProduct({{8, 32, 64}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Same shape, but every shard is canonically distinct: the cache can
// only miss, so cache-on measures the fingerprint + lookup + store
// overhead against the identical exhaustive work.
void BM_CacheCheckDistinctBlocks(benchmark::State& state) {
  PreferredRepairProblem problem =
      MakeHardShardedWorkload(static_cast<size_t>(state.range(0)), kCliques,
                              kCliqueSize, /*distinct_blocks=*/true);
  ProblemContext ctx(*problem.instance, *problem.priority);
  ctx.set_parallelism(1);
  BlockSolveCache cache;
  if (state.range(1) != 0) {
    ctx.set_block_cache(&cache);
  }
  RepairChecker checker(ctx);
  for (auto _ : state) {
    cache.Clear();
    auto outcome = checker.CheckGloballyOptimal(problem.j);
    benchmark::DoNotOptimize(outcome.ok() && outcome->result.optimal);
  }
  BlockCacheStats stats = cache.stats();
  state.counters["blocks"] = static_cast<double>(state.range(0));
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_CacheCheckDistinctBlocks)
    ->ArgsProduct({{32}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Counting replays the per-block repair count instead of re-enumerating
// the block's 2^c subsets — the largest constant-factor win.
void BM_CacheCountIdenticalBlocks(benchmark::State& state) {
  PreferredRepairProblem problem = MakeHardShardedWorkload(
      static_cast<size_t>(state.range(0)), kCliques, kCliqueSize);
  ProblemContext ctx(*problem.instance, *problem.priority);
  ctx.set_parallelism(1);
  BlockSolveCache cache;
  if (state.range(1) != 0) {
    ctx.set_block_cache(&cache);
  }
  for (auto _ : state) {
    cache.Clear();
    BoundedCount count =
        CountOptimalRepairsBounded(ctx, RepairSemantics::kGlobal);
    benchmark::DoNotOptimize(count.lower_bound);
  }
  state.counters["blocks"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CacheCountIdenticalBlocks)
    ->ArgsProduct({{32}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// The warm steady state: the table already holds every fingerprint (no
// Clear between iterations), as in a long-lived service re-checking
// instances built from a fixed gadget library.
void BM_CacheCheckWarm(benchmark::State& state) {
  PreferredRepairProblem problem = MakeHardShardedWorkload(
      static_cast<size_t>(state.range(0)), kCliques, kCliqueSize);
  ProblemContext ctx(*problem.instance, *problem.priority);
  ctx.set_parallelism(1);
  BlockSolveCache cache;
  ctx.set_block_cache(&cache);
  RepairChecker checker(ctx);
  for (auto _ : state) {
    auto outcome = checker.CheckGloballyOptimal(problem.j);
    benchmark::DoNotOptimize(outcome.ok() && outcome->result.optimal);
  }
  state.counters["blocks"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CacheCheckWarm)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefrep
