#include "test_util.h"

#include "base/string_util.h"

namespace prefrep {
namespace testing_util {

PreferredRepairProblem MakeProblem(const ProblemSpec& spec) {
  Schema schema;
  schema.MustAddRelation("R", spec.arity);
  for (const std::string& fd : spec.fds) {
    schema.MustAddFdParsed(fd);
  }
  PreferredRepairProblem problem(std::move(schema));
  for (const std::string& fact : spec.facts) {
    size_t colon = fact.find(':');
    PREFREP_CHECK_MSG(colon != std::string::npos,
                      "fact spec needs 'label: values'");
    std::string label(StripAsciiWhitespace(fact.substr(0, colon)));
    std::vector<std::string> values =
        StrSplitTrimmed(fact.substr(colon + 1), ',');
    problem.instance->MustAddFact("R", values, label);
  }
  problem.InitPriority();
  for (const std::string& edge : spec.priorities) {
    size_t gt = edge.find('>');
    PREFREP_CHECK_MSG(gt != std::string::npos,
                      "priority spec needs 'higher > lower'");
    std::string higher(StripAsciiWhitespace(edge.substr(0, gt)));
    std::string lower(StripAsciiWhitespace(edge.substr(gt + 1)));
    PREFREP_CHECK(problem.priority->AddByLabels(higher, lower).ok());
  }
  problem.j = problem.instance->EmptySubinstance();
  return problem;
}

DynamicBitset Sub(const Instance& instance,
                  const std::vector<std::string>& labels) {
  return instance.SubinstanceByLabels(labels);
}

std::string VerifyWitness(const ConflictGraph& cg, const PriorityRelation& pr,
                          const DynamicBitset& j, const CheckResult& result) {
  if (result.optimal || !result.witness.has_value()) {
    return "";
  }
  if (!IsGlobalImprovement(cg, pr, j, result.witness->improvement)) {
    return "witness is not a global improvement (" +
           result.witness->explanation + "); witness = " +
           cg.instance().SubinstanceToString(result.witness->improvement);
  }
  return "";
}

}  // namespace testing_util
}  // namespace prefrep
