// Consistent query answering under preferred repairs — the open problem
// the paper points to (§8).  This demo shows how priorities sharpen
// query answers: a hospital merges two patient-record systems, and the
// classical consistent answers (all repairs) lose disputed facts, while
// preferred-repair answers keep exactly what the priorities justify.
//
// Run: ./build/examples/certain_answers

#include <cstdio>

#include "conflicts/conflicts.h"
#include "model/problem.h"
#include "query/consistent_answers.h"

using namespace prefrep;

namespace {

void PrintAnswers(const char* title,
                  const std::vector<ConjunctiveQuery::AnswerTuple>& answers) {
  std::printf("%s (%zu):\n", title, answers.size());
  for (const auto& tuple : answers) {
    std::printf("  (");
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", tuple[i].c_str());
    }
    std::printf(")\n");
  }
}

}  // namespace

int main() {
  // Patient(id, ward) — a patient is in one ward; Allergy(id, drug) —
  // free of FDs (allergies accumulate, no conflicts).
  Schema schema;
  RelId patient = schema.MustAddRelation("Patient", 2);
  schema.MustAddRelation("Allergy", 2);
  schema.MustAddFd(patient, FD(AttrSet{1}, AttrSet{2}));

  PreferredRepairProblem problem(std::move(schema));
  Instance& inst = *problem.instance;
  // The two systems disagree about p1's ward; system A is authoritative.
  inst.MustAddFact("Patient", {"p1", "cardiology"}, "sysA:p1");
  inst.MustAddFact("Patient", {"p1", "oncology"}, "sysB:p1");
  inst.MustAddFact("Patient", {"p2", "neurology"}, "sysB:p2");
  inst.MustAddFact("Allergy", {"p1", "penicillin"});
  inst.MustAddFact("Allergy", {"p2", "ibuprofen"});

  problem.InitPriority();
  PREFREP_CHECK(problem.priority->AddByLabels("sysA:p1", "sysB:p1").ok());

  ConflictGraph cg(inst);
  std::printf("facts: %zu, conflicts: %zu\n\n", inst.num_facts(),
              cg.num_edges());

  auto ward_query = ConjunctiveQuery::Parse("Q(id, ward) :- Patient(id, ward)");
  PREFREP_CHECK(ward_query.ok());
  PrintAnswers("classical consistent answers (all repairs)",
               ConsistentAnswers(cg, *problem.priority, *ward_query,
                                 AnswerSemantics::kAllRepairs));
  PrintAnswers("\nglobally-optimal repair answers",
               ConsistentAnswers(cg, *problem.priority, *ward_query,
                                 AnswerSemantics::kGlobal));

  // A join: which allergies matter on each ward?
  auto join = ConjunctiveQuery::Parse(
      "Q(ward, drug) :- Patient(id, ward), Allergy(id, drug)");
  PREFREP_CHECK(join.ok());
  PrintAnswers("\nward-level allergy list (classical)",
               ConsistentAnswers(cg, *problem.priority, *join,
                                 AnswerSemantics::kAllRepairs));
  PrintAnswers("ward-level allergy list (globally-optimal)",
               ConsistentAnswers(cg, *problem.priority, *join,
                                 AnswerSemantics::kGlobal));

  // Boolean certainty.
  auto boolean = ConjunctiveQuery::Parse(
      "Q() :- Patient(\"p1\", \"cardiology\")");
  PREFREP_CHECK(boolean.ok());
  std::printf("\n'p1 in cardiology' certainly true classically: %s\n",
              CertainlyTrue(cg, *problem.priority, *boolean,
                            AnswerSemantics::kAllRepairs)
                  ? "yes"
                  : "no");
  std::printf("'p1 in cardiology' certainly true under preferences: %s\n",
              CertainlyTrue(cg, *problem.priority, *boolean,
                            AnswerSemantics::kGlobal)
                  ? "yes"
                  : "no");
  return 0;
}
