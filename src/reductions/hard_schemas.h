// Copyright (c) prefrep contributors.
// The concrete hard schemas of the paper.
//
// Example 3.4: six single-relation schemas S1..S6, each a ternary
// relation, for which globally-optimal repair checking is coNP-complete
// (ordinary priorities); they are the sources of the reductions of §5.
//
// §7.3: four schemas Sa..Sd for which globally-optimal repair checking
// over ccp-instances is coNP-complete; note Sd = {1→2, 2→1} is tractable
// under ordinary priorities (two keys!) but hard under cross-conflict
// ones — the two dichotomies genuinely differ.

#ifndef PREFREP_REDUCTIONS_HARD_SCHEMAS_H_
#define PREFREP_REDUCTIONS_HARD_SCHEMAS_H_

#include "model/schema.h"

namespace prefrep {

/// S1 = ({R1}, {{1,2}→3, {1,3}→2, {2,3}→1}) — three keys.
Schema HardSchemaS1();
/// S2 = ({R2}, {1→2, 2→1}) over a ternary relation.
Schema HardSchemaS2();
/// S3 = ({R3}, {{1,2}→3, 3→2}).
Schema HardSchemaS3();
/// S4 = ({R4}, {1→2, 2→3}).
Schema HardSchemaS4();
/// S5 = ({R5}, {1→3, 2→3}).
Schema HardSchemaS5();
/// S6 = ({R6}, {∅→1, 2→3}).
Schema HardSchemaS6();

/// All six Example 3.4 schemas, indexed 1..6 (index 0 unused).
Schema HardSchema(int index);

/// Sa = ({R/2, S/2}, {R: 1→2, S: ∅→1}) — hard over ccp-instances.
Schema CcpHardSchemaSa();
/// Sb = ({R/3}, {1→2}) — hard over ccp-instances.
Schema CcpHardSchemaSb();
/// Sc = ({R/3}, {1→2, ∅→3}) — hard over ccp-instances.
Schema CcpHardSchemaSc();
/// Sd = ({R/2}, {1→2, 2→1}) — hard over ccp-instances, tractable under
/// ordinary priorities.
Schema CcpHardSchemaSd();

}  // namespace prefrep

#endif  // PREFREP_REDUCTIONS_HARD_SCHEMAS_H_
