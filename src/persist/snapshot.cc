#include "persist/snapshot.h"

#include <cstdio>

#include "persist/file_io.h"
#include "persist/wal.h"

namespace prefrep {

namespace {

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

// Consumes the next '\n'-terminated line of `text` starting at *pos.
// Returns false at end of input.
bool NextLine(std::string_view text, size_t* pos, std::string_view* line) {
  if (*pos >= text.size()) {
    return false;
  }
  const size_t nl = text.find('\n', *pos);
  if (nl == std::string_view::npos) {
    *line = text.substr(*pos);
    *pos = text.size();
  } else {
    *line = text.substr(*pos, nl - *pos);
    *pos = nl + 1;
  }
  return true;
}

// Parses a decimal uint64 occupying the whole of `word`.
bool ParseU64(std::string_view word, uint64_t* out) {
  if (word.empty() || word.size() > 20) {
    return false;
  }
  uint64_t v = 0;
  for (char c : word) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      return false;
    }
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseHexU64(std::string_view word, uint64_t* out) {
  if (word.size() != 16) {
    return false;
  }
  uint64_t v = 0;
  for (char c : word) {
    uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::DataLoss("snapshot corrupt: " + what);
}

}  // namespace

std::string RenderSnapshot(uint64_t seq, std::string_view budget_line,
                           std::string_view body) {
  std::string out;
  out.reserve(128 + body.size());
  out += kSnapshotMagicLine;
  out += '\n';
  out += "# seq ";
  out += std::to_string(seq);
  out += '\n';
  out += "# budget ";
  out += budget_line;
  out += '\n';
  out += "# body-checksum ";
  out += HexU64(WalRecordChecksum(seq, body));
  out += '\n';
  out += body;
  return out;
}

Result<SnapshotContents> ParseSnapshotText(std::string_view text) {
  size_t pos = 0;
  std::string_view line;
  if (!NextLine(text, &pos, &line) || line != kSnapshotMagicLine) {
    return Corrupt("missing '# prefrep-snapshot v1' header");
  }
  SnapshotContents out;
  if (!NextLine(text, &pos, &line) || line.substr(0, 6) != "# seq ") {
    return Corrupt("missing '# seq' header");
  }
  if (!ParseU64(line.substr(6), &out.seq)) {
    return Corrupt("unparsable seq");
  }
  if (!NextLine(text, &pos, &line) || line.substr(0, 9) != "# budget ") {
    return Corrupt("missing '# budget' header");
  }
  out.budget_line.assign(line.substr(9));
  if (!NextLine(text, &pos, &line) ||
      line.substr(0, 16) != "# body-checksum ") {
    return Corrupt("missing '# body-checksum' header");
  }
  uint64_t declared = 0;
  if (!ParseHexU64(line.substr(16), &declared)) {
    return Corrupt("unparsable body checksum");
  }
  out.body.assign(text.substr(pos));
  const uint64_t actual = WalRecordChecksum(out.seq, out.body);
  if (declared != actual) {
    return Corrupt("body checksum mismatch (declared " + HexU64(declared) +
                   ", computed " + HexU64(actual) + ")");
  }
  return out;
}

Status WriteSnapshotFile(const std::string& path, uint64_t seq,
                         std::string_view budget_line,
                         std::string_view body) {
  return AtomicWriteFile(path, RenderSnapshot(seq, budget_line, body));
}

Result<SnapshotContents> ReadSnapshotFile(const std::string& path) {
  PREFREP_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  Result<SnapshotContents> parsed = ParseSnapshotText(text);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  parsed.status().message() + " (at '" + path + "')");
  }
  return parsed;
}

}  // namespace prefrep
