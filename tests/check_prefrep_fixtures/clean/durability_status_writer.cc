// Fixture for tools/check_prefrep.py --selftest (never compiled): the
// blessed persistence shapes — bytes reach disk only through the
// checksummed choke point (persist/file_io.h), and every durability
// entry point carries its failure in a Status or Result.

#include <string>

#include "base/status.h"
#include "persist/file_io.h"

namespace prefrep {

Status WriteManifest(const std::string& path, const std::string& body) {
  return AtomicWriteFile(path, body);
}

Result<std::string> LoadManifest(const std::string& path) {
  return ReadFileToString(path);
}

}  // namespace prefrep
