// Timestamp-based cleaning — the paper's second motivating scenario
// ("timestamp information implies that a more recent fact should be
// preferred over an earlier one").
//
// A fleet of sensors reports Reading(sensor, window, value) where each
// sensor must report one value per window ({1,2} → 3), and sensors are
// registered at one site in Site(sensor, site) with conflicting
// registrations resolved towards the most recent one (two keys: a
// sensor has one site; here each site also hosts one sensor).
//
// The demo ingests an out-of-order stream, prefers later arrivals among
// conflicting facts, and compares the "keep the last write" state
// against the globally-optimal repairs.
//
// Run: ./build/examples/sensor_cleaning

#include <cstdio>
#include <string>
#include <vector>

#include "conflicts/conflicts.h"
#include "repair/subinstance_ops.h"
#include "model/problem.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"

using namespace prefrep;

namespace {

struct Arrival {
  int timestamp;
  std::string relation;
  std::vector<std::string> values;
};

}  // namespace

int main() {
  Schema schema;
  RelId reading = schema.MustAddRelation("Reading", 3);
  RelId site = schema.MustAddRelation("Site", 2);
  schema.MustAddFd(reading, FD(AttrSet{1, 2}, AttrSet{3}));  // single fd
  schema.MustAddFd(site, FD(AttrSet{1}, AttrSet{2}));        // two keys
  schema.MustAddFd(site, FD(AttrSet{2}, AttrSet{1}));

  std::vector<Arrival> stream = {
      {1, "Site", {"s1", "roof"}},
      {2, "Site", {"s2", "basement"}},
      {3, "Reading", {"s1", "w1", "21.5"}},
      {4, "Reading", {"s2", "w1", "18.0"}},
      {5, "Reading", {"s1", "w1", "21.9"}},   // correction of t=3
      {6, "Site", {"s1", "basement"}},        // s1 moved; clashes with s2
      {7, "Reading", {"s2", "w2", "18.4"}},
      {8, "Reading", {"s1", "w2", "22.0"}},
      {9, "Site", {"s2", "roof"}},            // swap completed
  };

  PreferredRepairProblem problem(std::move(schema));
  Instance& inst = *problem.instance;
  std::vector<int> arrived_at;
  for (const Arrival& a : stream) {
    std::string label = "t" + std::to_string(a.timestamp);
    FactId id = inst.MustAddFact(a.relation, a.values, label);
    if (arrived_at.size() <= id) {
      arrived_at.resize(id + 1, 0);
    }
    arrived_at[id] = a.timestamp;
  }

  // Later conflicting facts are preferred.
  problem.InitPriority();
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    for (FactId g = 0; g < inst.num_facts(); ++g) {
      if (f != g && FactsConflict(inst, f, g) &&
          arrived_at[f] > arrived_at[g]) {
        problem.priority->MustAdd(f, g);
      }
    }
  }

  RepairChecker checker(inst, *problem.priority);
  const ConflictGraph& cg = checker.conflict_graph();
  std::printf("%zu facts, %zu conflicting pairs; schema tractable: %s\n\n",
              inst.num_facts(), cg.num_edges(),
              checker.SchemaIsTractable() ? "yes" : "no");

  // Strategy 1 — last-writer-wins: keep each fact unless a later
  // conflicting fact exists.
  DynamicBitset lww = inst.AllFacts();
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    for (FactId g : cg.neighbors(f)) {
      if (arrived_at[g] > arrived_at[f]) {
        lww.reset(f);
      }
    }
  }
  // Strategy 2 — keep the earliest facts instead.
  DynamicBitset stale = inst.AllFacts();
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    for (FactId g : cg.neighbors(f)) {
      if (arrived_at[g] < arrived_at[f]) {
        stale.reset(f);
      }
    }
  }

  for (auto& [name, state] :
       std::vector<std::pair<std::string, DynamicBitset*>>{
           {"last-writer-wins", &lww}, {"first-writer-wins", &stale}}) {
    // The strategies may leave a non-maximal state; extend first.
    DynamicBitset candidate = ExtendToRepair(cg, *state);
    auto outcome = checker.CheckGloballyOptimal(candidate);
    std::printf("state '%s': %s\n", name.c_str(),
                inst.SubinstanceToString(candidate).c_str());
    std::printf("  globally-optimal: %s\n",
                outcome.ok() && outcome->result.optimal ? "yes" : "no");
    if (outcome.ok() && !outcome->result.optimal &&
        outcome->result.witness.has_value()) {
      std::printf("  cleaner state: %s\n",
                  inst.SubinstanceToString(
                          outcome->result.witness->improvement)
                      .c_str());
    }
  }

  std::printf("\nall globally-optimal cleanings:\n");
  for (const DynamicBitset& j :
       AllOptimalRepairs(cg, *problem.priority, RepairSemantics::kGlobal)) {
    std::printf("  %s\n", inst.SubinstanceToString(j).c_str());
  }
  return 0;
}
