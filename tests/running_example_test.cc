// Executable reproduction of the paper's running example:
//   * Figure 1 / Examples 2.1–2.3: the instance, its conflicts and the
//     priority relation;
//   * Example 2.5: the repairs J1..J4 and their Pareto/global status;
//   * Example 3.2: the schema is on the tractable side of Theorem 3.1;
//   * Example 4.1: the swap J[f↔g] on BookLoc;
//   * Example 4.3 / Figure 3: the graphs G12_J and G21_J on LibLoc.

#include <gtest/gtest.h>

#include "classify/dichotomy.h"
#include "gen/running_example.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"
#include "repair/global_one_fd.h"
#include "repair/global_two_keys.h"
#include "repair/pareto.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::Sub;

class RunningExampleTest : public ::testing::Test {
 protected:
  RunningExampleTest()
      : problem_(RunningExampleProblem()),
        inst_(*problem_.instance),
        pr_(*problem_.priority),
        cg_(inst_) {}

  FactId F(const std::string& label) const {
    FactId id = inst_.FindLabel(label);
    EXPECT_NE(id, kInvalidFactId) << label;
    return id;
  }

  PreferredRepairProblem problem_;
  const Instance& inst_;
  const PriorityRelation& pr_;
  ConflictGraph cg_;
};

TEST_F(RunningExampleTest, Figure1InstanceShape) {
  EXPECT_EQ(inst_.num_facts(), 13u);
  EXPECT_EQ(inst_.facts_of(0).size(), 5u);  // BookLoc
  EXPECT_EQ(inst_.facts_of(1).size(), 8u);  // LibLoc
  // g1f1 and f1d3 agree on isbn but not genre (Example 2.1).
  const Fact& g1f1 = inst_.fact(F("g1f1"));
  const Fact& f1d3 = inst_.fact(F("f1d3"));
  EXPECT_EQ(g1f1.values[0], f1d3.values[0]);
  EXPECT_NE(g1f1.values[1], f1d3.values[1]);
}

TEST_F(RunningExampleTest, Example22Conflicts) {
  // {g1f1, f1d3} is a δ1-conflict, {d1a, d1e} a δ2-conflict, {d1a, g2a} a
  // δ3-conflict.
  EXPECT_TRUE(FactsConflict(inst_, F("g1f1"), F("f1d3")));
  EXPECT_TRUE(FactsConflict(inst_, F("d1a"), F("d1e")));
  EXPECT_TRUE(FactsConflict(inst_, F("d1a"), F("g2a")));
  // I is inconsistent; facts of different relations never conflict.
  EXPECT_FALSE(IsConsistent(inst_, inst_.AllFacts()));
  EXPECT_FALSE(FactsConflict(inst_, F("g1f1"), F("d1a")));
  // Non-conflicting same-relation facts.
  EXPECT_FALSE(FactsConflict(inst_, F("g1f1"), F("g1f2")));
  EXPECT_FALSE(FactsConflict(inst_, F("d1e"), F("f3c")));
}

TEST_F(RunningExampleTest, Example23Priority) {
  // As stated: g1f1 ≻ f1d3 and e1b ≻ d1a; also g2a ≻ f2b, g2a ≻ f3a
  // (used by Example 2.5), and acyclic + conflict-bounded.
  EXPECT_TRUE(pr_.Prefers(F("g1f1"), F("f1d3")));
  EXPECT_TRUE(pr_.Prefers(F("g1f2"), F("f1d3")));
  EXPECT_TRUE(pr_.Prefers(F("e1b"), F("d1a")));
  EXPECT_TRUE(pr_.Prefers(F("e1b"), F("d1e")));
  EXPECT_TRUE(pr_.Prefers(F("g2a"), F("f2b")));
  EXPECT_TRUE(pr_.Prefers(F("g2a"), F("f3a")));
  // No reverse or cross-grade preferences.
  EXPECT_FALSE(pr_.Prefers(F("f1d3"), F("g1f1")));
  EXPECT_FALSE(pr_.Prefers(F("g2a"), F("d1a")));
  EXPECT_TRUE(pr_.Validate(PriorityMode::kConflictOnly).ok());
  EXPECT_EQ(pr_.num_edges(), 6u);
}

TEST_F(RunningExampleTest, Example25RepairsAreRepairs) {
  for (int i = 1; i <= 4; ++i) {
    DynamicBitset j = RunningExampleJ(inst_, i);
    EXPECT_TRUE(IsRepair(cg_, j)) << "J" << i;
  }
}

TEST_F(RunningExampleTest, Example25J2ImprovesJ1) {
  DynamicBitset j1 = RunningExampleJ(inst_, 1);
  DynamicBitset j2 = RunningExampleJ(inst_, 2);
  // J1\J2 = {f2b, f3a}, J2\J1 = {g2a, e3b}; g2a ≻ f2b and g2a ≻ f3a make
  // J2 a Pareto (hence global) improvement of J1.
  EXPECT_EQ(j1 - j2, Sub(inst_, {"f2b", "f3a"}));
  EXPECT_EQ(j2 - j1, Sub(inst_, {"g2a", "e3b"}));
  EXPECT_TRUE(IsParetoImprovement(cg_, pr_, j1, j2));
  EXPECT_TRUE(IsGlobalImprovement(cg_, pr_, j1, j2));
  EXPECT_FALSE(IsGlobalImprovement(cg_, pr_, j2, j1));
}

TEST_F(RunningExampleTest, Example25J2IsGloballyOptimal) {
  DynamicBitset j2 = RunningExampleJ(inst_, 2);
  EXPECT_TRUE(ExhaustiveCheckGlobalOptimal(cg_, pr_, j2).optimal);
  EXPECT_TRUE(CheckParetoOptimal(cg_, pr_, j2).optimal);
}

TEST_F(RunningExampleTest, Example25J3ParetoButNotGloballyOptimal) {
  DynamicBitset j3 = RunningExampleJ(inst_, 3);
  DynamicBitset j4 = RunningExampleJ(inst_, 4);
  EXPECT_TRUE(CheckParetoOptimal(cg_, pr_, j3).optimal);
  EXPECT_FALSE(ExhaustiveCheckGlobalOptimal(cg_, pr_, j3).optimal);
  // J4 is a global but not a Pareto improvement of J3.
  EXPECT_TRUE(IsGlobalImprovement(cg_, pr_, j3, j4));
  EXPECT_FALSE(IsParetoImprovement(cg_, pr_, j3, j4));
}

TEST_F(RunningExampleTest, Example25J4IsGloballyOptimal) {
  DynamicBitset j4 = RunningExampleJ(inst_, 4);
  EXPECT_TRUE(ExhaustiveCheckGlobalOptimal(cg_, pr_, j4).optimal);
}

TEST_F(RunningExampleTest, J3IsTheOnlyParetoNotGlobalRepair) {
  // Motivation for our reading of the (mis-printed) J3: enumerate all
  // repairs and verify exactly one is Pareto-optimal but not
  // globally-optimal, and it is our J3.
  DynamicBitset j3 = RunningExampleJ(inst_, 3);
  std::vector<DynamicBitset> gap;
  for (const DynamicBitset& repair : AllRepairs(cg_)) {
    bool pareto = CheckParetoOptimal(cg_, pr_, repair).optimal;
    bool global = ExhaustiveCheckGlobalOptimal(cg_, pr_, repair).optimal;
    EXPECT_TRUE(!global || pareto)
        << "globally-optimal must be Pareto-optimal";
    if (pareto && !global) {
      gap.push_back(repair);
    }
  }
  ASSERT_EQ(gap.size(), 1u);
  EXPECT_EQ(gap[0], j3);
}

TEST_F(RunningExampleTest, Example32SchemaIsTractable) {
  SchemaClassification c = ClassifySchema(inst_.schema());
  EXPECT_TRUE(c.tractable);
  ASSERT_EQ(c.relations.size(), 2u);
  EXPECT_EQ(c.relations[0].kind, TractableKind::kSingleFd);  // BookLoc
  EXPECT_EQ(c.relations[0].single_fd.lhs, AttrSet{1});
  EXPECT_EQ(c.relations[1].kind, TractableKind::kTwoKeys);  // LibLoc
}

TEST_F(RunningExampleTest, UnifiedCheckerMatchesExhaustive) {
  RepairChecker checker(inst_, pr_);
  EXPECT_TRUE(checker.SchemaIsTractable());
  for (int i = 1; i <= 4; ++i) {
    DynamicBitset j = RunningExampleJ(inst_, i);
    auto outcome = checker.CheckGloballyOptimal(j);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    bool expected = ExhaustiveCheckGlobalOptimal(cg_, pr_, j).optimal;
    EXPECT_EQ(outcome->result.optimal, expected) << "J" << i;
    EXPECT_EQ(testing_util::VerifyWitness(cg_, pr_, j, outcome->result), "");
  }
}

// Example 4.1: restricted to BookLoc, J = {g1f1, g1f2, f2p1} and
// J′ = {f1d3, f2p1} satisfy J[g1f1 ↔ f1d3] = J′ and J′[f1d3 ↔ g1f1] = J.
TEST_F(RunningExampleTest, Example41SwapBlocks) {
  FD fd(AttrSet{1}, AttrSet{2});
  RelId book_loc = inst_.schema().FindRelation("BookLoc");
  DynamicBitset j = Sub(inst_, {"g1f1", "g1f2", "f2p1"});
  DynamicBitset j_prime = Sub(inst_, {"f1d3", "f2p1"});
  EXPECT_EQ(SwapBlocks(inst_, book_loc, fd, j, F("g1f1"), F("f1d3")),
            j_prime);
  EXPECT_EQ(SwapBlocks(inst_, book_loc, fd, j_prime, F("f1d3"), F("g1f1")),
            j);
}

// Example 4.3 / Figure 3: J = {d1a, f2b, f3c} on LibLoc.  G12_J has three
// forward edges and no backward edge; G21_J has the backward edges
// lib2 → almaden (g2a ≻ f2b) and lib1 → bascom (e1b ≻ d1a), closing a
// cycle (which is why Example 2.5's J3 is not globally optimal).
TEST_F(RunningExampleTest, Example43Figure3Graphs) {
  RelId lib_loc = inst_.schema().FindRelation("LibLoc");
  DynamicBitset j = Sub(inst_, {"d1a", "f2b", "f3c"});

  KeyedImprovementGraph g12 =
      BuildImprovementGraph(inst_, pr_, lib_loc, AttrSet{1}, AttrSet{2}, j);
  EXPECT_TRUE(g12.HasEdge("lib1", true, "almaden", false));
  EXPECT_TRUE(g12.HasEdge("lib2", true, "bascom", false));
  EXPECT_TRUE(g12.HasEdge("lib3", true, "cambrian", false));
  EXPECT_EQ(g12.graph.num_edges(), 3u);  // no backward edges
  EXPECT_TRUE(g12.graph.IsAcyclic());

  KeyedImprovementGraph g21 =
      BuildImprovementGraph(inst_, pr_, lib_loc, AttrSet{2}, AttrSet{1}, j);
  EXPECT_TRUE(g21.HasEdge("almaden", true, "lib1", false));
  EXPECT_TRUE(g21.HasEdge("bascom", true, "lib2", false));
  EXPECT_TRUE(g21.HasEdge("cambrian", true, "lib3", false));
  EXPECT_TRUE(g21.HasEdge("lib2", false, "almaden", true));
  EXPECT_TRUE(g21.HasEdge("lib1", false, "bascom", true));
  EXPECT_EQ(g21.graph.num_edges(), 5u);
  EXPECT_FALSE(g21.graph.IsAcyclic());
}

TEST_F(RunningExampleTest, TwoKeysCheckerFindsTheCycleImprovement) {
  RelId lib_loc = inst_.schema().FindRelation("LibLoc");
  // Whole-instance J3 (which restricts to {d1a, f2b, f3c} on LibLoc).
  DynamicBitset j3 = RunningExampleJ(inst_, 3);
  CheckResult r = CheckGlobalOptimalTwoKeys(cg_, pr_, lib_loc, AttrSet{1},
                                            AttrSet{2}, j3);
  EXPECT_FALSE(r.optimal);
  EXPECT_EQ(testing_util::VerifyWitness(cg_, pr_, j3, r), "");
}

TEST_F(RunningExampleTest, OneFdCheckerOnBookLoc) {
  RelId book_loc = inst_.schema().FindRelation("BookLoc");
  FD fd(AttrSet{1}, AttrSet{2});
  // BookLoc facts of J2 (all four J's share them): the fiction block wins
  // because nothing improves it.
  DynamicBitset j2 = RunningExampleJ(inst_, 2);
  EXPECT_TRUE(CheckGlobalOptimalOneFd(cg_, pr_, book_loc, fd, j2).optimal);

  // Take the drama fact instead: {f1d3, f2p1, h3h2} plus J2's LibLoc
  // facts.  g1f1/g1f2 ≻ f1d3, so swapping blocks improves it.
  DynamicBitset alt = Sub(inst_, {"f1d3", "f2p1", "h3h2", "d1e", "g2a",
                                  "e3b"});
  CheckResult r = CheckGlobalOptimalOneFd(cg_, pr_, book_loc, fd, alt);
  EXPECT_FALSE(r.optimal);
  EXPECT_EQ(testing_util::VerifyWitness(cg_, pr_, alt, r), "");
}

TEST_F(RunningExampleTest, RepairCountsAndOptimalCounts) {
  // 2 BookLoc repairs (the b1 fiction-vs-drama choice; f2p1 and h3h2 are
  // conflict-free) × 8 LibLoc repairs (6 lib→loc matchings covering all
  // three libraries plus 2 where both lib2 facts are blocked) = 16.
  EXPECT_EQ(CountRepairs(cg_), 16u);
  std::vector<DynamicBitset> global =
      AllOptimalRepairs(cg_, pr_, RepairSemantics::kGlobal);
  std::vector<DynamicBitset> pareto =
      AllOptimalRepairs(cg_, pr_, RepairSemantics::kPareto);
  std::vector<DynamicBitset> completion =
      AllOptimalRepairs(cg_, pr_, RepairSemantics::kCompletion);
  // Completion ⊆ global ⊆ Pareto.
  EXPECT_LE(completion.size(), global.size());
  EXPECT_LE(global.size(), pareto.size());
  EXPECT_EQ(pareto.size(), global.size() + 1);  // exactly J3 in the gap
}

}  // namespace
}  // namespace prefrep
