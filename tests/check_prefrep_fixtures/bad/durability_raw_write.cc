// Fixture for tools/check_prefrep.py --selftest (never compiled): a
// persistence-layer writer that bypasses the checksummed
// AppendOnlyFile/AtomicWriteFile choke point.  The bytes hit disk with
// no record framing, no checksum and no atomic publish, so a crash
// mid-write leaves a torn file recovery cannot distinguish from valid
// state — exactly what the raw-write ban exists to prevent.
// EXPECT-FINDING: prefrep-durability

#include <fstream>
#include <string>

namespace prefrep {

void SaveStateUnsafely(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  out << body;
}

}  // namespace prefrep
