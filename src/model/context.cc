#include "model/context.h"

namespace prefrep {

ProblemContext::ProblemContext(const Instance& instance,
                               const PriorityRelation& priority)
    : instance_(&instance), priority_(&priority) {
  PREFREP_CHECK_MSG(&priority.instance() == &instance,
                    "priority relation is over a different instance");
}

ProblemContext::ProblemContext(const ConflictGraph& graph,
                               const PriorityRelation& priority)
    : instance_(&graph.instance()),
      priority_(&priority),
      external_graph_(&graph) {
  PREFREP_CHECK_MSG(&priority.instance() == &graph.instance(),
                    "priority relation is over a different instance");
}

const ConflictGraph& ProblemContext::conflict_graph() const {
  if (external_graph_ != nullptr) {
    return *external_graph_;
  }
  if (graph_ == nullptr) {
    graph_ = std::make_unique<ConflictGraph>(*instance_);
  }
  return *graph_;
}

const SchemaClassification& ProblemContext::classification() const {
  if (classification_ == nullptr) {
    classification_ =
        std::make_unique<SchemaClassification>(ClassifySchema(
            instance_->schema()));
  }
  return *classification_;
}

const CcpSchemaClassification& ProblemContext::ccp_classification() const {
  if (ccp_classification_ == nullptr) {
    ccp_classification_ = std::make_unique<CcpSchemaClassification>(
        ClassifyCcpSchema(instance_->schema()));
  }
  return *ccp_classification_;
}

const BlockDecomposition& ProblemContext::blocks() const {
  if (blocks_ == nullptr) {
    blocks_ = std::make_unique<BlockDecomposition>(conflict_graph());
  }
  return *blocks_;
}

bool ProblemContext::priority_block_local() const {
  if (priority_block_local_ == nullptr) {
    priority_block_local_ =
        std::make_unique<bool>(PriorityIsBlockLocal(blocks(), *priority_));
  }
  return *priority_block_local_;
}

void ProblemContext::Prime() const {
  conflict_graph();
  classification();
  ccp_classification();
  blocks();
  priority_block_local();
}

}  // namespace prefrep
