// Copyright (c) prefrep contributors.
// Case branching for the hardness proof (§5.2).  Given a single-relation
// FD set ∆ that violates the condition of Theorem 3.1 (equivalent to
// neither a single FD nor two keys), the proof reduces from one of the
// six hard schemas of Example 3.4 according to the following cases:
//
//   Case 1: ∆ is equivalent to k ≥ 3 keys          (reduce from S1)
//   Otherwise fix a minimal determiner A that is not a key and a minimal
//   (w.r.t. containment) non-redundant determiner B ≠ A, and with
//   A⁺ = ⟦R.A⟧, Â = A⁺ \ A, B⁺ = ⟦R.B⟧, B̂ = B⁺ \ B:
//   Case 2: A⁺ = B⁺                                 (reduce from S2)
//   Case 3: B⁺ ⊄ A⁺, A ∩ B̂ ≠ ∅, Â ∩ B ≠ ∅          (reduce from S3)
//   Case 4: B⁺ ⊄ A⁺, A ∩ B̂ ≠ ∅, Â ∩ B = ∅          (reduce from S4)
//   Case 5: B⁺ ⊄ A⁺, A ∩ B̂ = ∅, B̂ ⊆ Â             (reduce from S5)
//   Case 6: B⁺ ⊄ A⁺, A ∩ B̂ = ∅, B̂ ⊄ Â             (reduce from S6)
//   Case 7: A⁺ ⊄ B⁺                                 (symmetric to B⁺ ⊄ A⁺)
//
// Cases 2–6 cover every subcase of B⁺ ⊆ A⁺ together with case 2; with
// cases 1 and 7 the branching is exhaustive.

#ifndef PREFREP_CLASSIFY_CASE_ANALYSIS_H_
#define PREFREP_CLASSIFY_CASE_ANALYSIS_H_

#include <string>

#include "base/status.h"
#include "fd/fd_set.h"

namespace prefrep {

/// The outcome of the §5.2 branching for one hard relation.
struct HardnessCase {
  int case_number = 0;  ///< 1..7
  /// For cases 2–7: the chosen determiners and their closures.
  AttrSet a;        ///< minimal determiner that is not a key
  AttrSet b;        ///< minimal non-redundant determiner ≠ A
  AttrSet a_plus;   ///< ⟦R.A⟧
  AttrSet b_plus;   ///< ⟦R.B⟧
  /// For case 1: the equivalent keys.
  std::vector<AttrSet> keys;
  std::string explanation;
};

/// Runs the §5.2 branching.  Fails with InvalidArgument if `fds` does not
/// violate the condition of Theorem 3.1 (i.e. is tractable).
Result<HardnessCase> AnalyzeHardRelation(const FDSet& fds);

}  // namespace prefrep

#endif  // PREFREP_CLASSIFY_CASE_ANALYSIS_H_
