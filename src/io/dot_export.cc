#include "io/dot_export.h"

#include "repair/ccp_primary_key.h"

namespace prefrep {

namespace {

// DOT string literal with basic escaping.
std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string NodeName(const Instance& inst, FactId f) {
  const std::string& label = inst.label(f);
  return label.empty() ? "f" + std::to_string(f) : label;
}

}  // namespace

std::string ConflictGraphToDot(const ConflictGraph& cg,
                               const PriorityRelation& pr,
                               const DynamicBitset& j) {
  const Instance& inst = cg.instance();
  std::string out = "digraph conflicts {\n";
  out += "  rankdir=LR;\n  node [shape=ellipse];\n";
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    out += "  " + Quote(NodeName(inst, f)) + " [label=" +
           Quote(inst.FactToString(f));
    if (j.test(f)) {
      out += ", style=filled, fillcolor=lightblue";
    }
    out += "];\n";
  }
  for (const auto& [f, g] : cg.edges()) {
    out += "  " + Quote(NodeName(inst, f)) + " -> " +
           Quote(NodeName(inst, g)) + " [dir=none];\n";
  }
  for (const auto& [higher, lower] : pr.edges()) {
    out += "  " + Quote(NodeName(inst, higher)) + " -> " +
           Quote(NodeName(inst, lower)) +
           " [style=dashed, color=red, constraint=false];\n";
  }
  out += "}\n";
  return out;
}

std::string ImprovementGraphToDot(const KeyedImprovementGraph& graph,
                                  const std::string& title) {
  std::string out = "digraph " + title + " {\n  rankdir=LR;\n";
  // Two ranks: left projections, right projections.
  out += "  { rank=source;";
  for (size_t v = 0; v < graph.labels.size(); ++v) {
    if (graph.is_left[v]) {
      out += " " + Quote("L:" + graph.labels[v]) + ";";
    }
  }
  out += " }\n  { rank=sink;";
  for (size_t v = 0; v < graph.labels.size(); ++v) {
    if (!graph.is_left[v]) {
      out += " " + Quote("R:" + graph.labels[v]) + ";";
    }
  }
  out += " }\n";
  for (size_t v = 0; v < graph.labels.size(); ++v) {
    std::string name =
        (graph.is_left[v] ? "L:" : "R:") + graph.labels[v];
    out += "  " + Quote(name) + " [label=" + Quote(graph.labels[v]) +
           (graph.is_left[v] ? ", shape=box" : ", shape=ellipse") + "];\n";
  }
  for (size_t u = 0; u < graph.labels.size(); ++u) {
    std::string from = (graph.is_left[u] ? "L:" : "R:") + graph.labels[u];
    for (size_t v : graph.graph.successors(u)) {
      std::string to = (graph.is_left[v] ? "L:" : "R:") + graph.labels[v];
      bool backward = !graph.is_left[u];
      out += "  " + Quote(from) + " -> " + Quote(to) +
             (backward ? " [style=dashed, color=red]" : "") + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string CcpGraphToDot(const ConflictGraph& cg,
                          const PriorityRelation& pr,
                          const DynamicBitset& j) {
  const Instance& inst = cg.instance();
  Digraph graph = BuildCcpPrimaryKeyGraph(cg, pr, j);
  std::string out = "digraph ccp {\n  rankdir=LR;\n";
  out += "  { rank=source;";
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    if (j.test(f)) {
      out += " " + Quote(NodeName(inst, f)) + ";";
    }
  }
  out += " }\n";
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    out += "  " + Quote(NodeName(inst, f)) + " [label=" +
           Quote(inst.FactToString(f)) +
           (j.test(f) ? ", style=filled, fillcolor=lightblue" : "") +
           "];\n";
  }
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    for (size_t v : graph.successors(u)) {
      bool priority_edge = !j.test(u);  // I\J → J edges carry ≻
      out += "  " + Quote(NodeName(inst, static_cast<FactId>(u))) + " -> " +
             Quote(NodeName(inst, static_cast<FactId>(v))) +
             (priority_edge ? " [style=dashed, color=red]" : "") + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace prefrep
