#include "gen/hard_workloads.h"

#include "base/string_util.h"
#include "reductions/hard_schemas.h"

namespace prefrep {

namespace {

// Per-schema gadget shapes.  u(i) is a constant unique to gadget i,
// shared by both facts; hi/lo suffixes make the conflicting attribute
// differ.  The shapes are chosen so that facts of different gadgets
// never conflict (verified in gen_test.cc):
//
//   S1 {12→3,13→2,23→1}: (k_i, m_i, c_i{hi,lo}) — conflict on {1,2}→3;
//       across gadgets every attribute pair differs.
//   S2 {1→2,2→1} (ternary): (k_i, m_i{hi,lo}, t_i).
//   S3 {{1,2}→3, 3→2}: (k_i, m_i, c_i{hi,lo}) with globally unique c.
//   S4 {1→2, 2→3}: (k_i, m_i{hi,lo}, t_i{hi,lo}) — attr-2 values unique.
//   S5 {1→3, 2→3}: (k_i, m_i{hi,lo}, c_i{hi,lo}).
//   S6 {∅→1, 2→3}: (z, m_i, t_i{hi,lo}) — attr 1 constant everywhere so
//       the ∅→1 constraint never fires; conflicts are per-gadget on 2→3.
std::vector<std::string> GadgetFact(int index, size_t i, bool hi) {
  std::string k = StrFormat("k%zu", i);
  std::string m = StrFormat("m%zu", i);
  std::string t = StrFormat("t%zu", i);
  std::string suffix = hi ? "hi" : "lo";
  switch (index) {
    case 1:
      return {k, m, StrFormat("c%zu_%s", i, suffix.c_str())};
    case 2:
      return {k, StrFormat("m%zu_%s", i, suffix.c_str()), t};
    case 3:
      return {k, m, StrFormat("c%zu_%s", i, suffix.c_str())};
    case 4:
      return {k, StrFormat("m%zu_%s", i, suffix.c_str()),
              StrFormat("t%zu_%s", i, suffix.c_str())};
    case 5:
      return {k, StrFormat("m%zu_%s", i, suffix.c_str()),
              StrFormat("c%zu_%s", i, suffix.c_str())};
    case 6:
      return {"z", m, StrFormat("t%zu_%s", i, suffix.c_str())};
    default:
      PREFREP_FATAL("hard workload index must be 1..6");
  }
}

}  // namespace

PreferredRepairProblem MakeHardChoiceWorkload(int index, size_t groups,
                                              HardJ j_choice) {
  PreferredRepairProblem problem(HardSchema(index));
  Instance& inst = *problem.instance;
  const std::string relation = inst.schema().relation_name(0);
  for (size_t i = 0; i < groups; ++i) {
    inst.MustAddFact(relation, GadgetFact(index, i, /*hi=*/true),
                     StrFormat("hi:%zu", i));
    inst.MustAddFact(relation, GadgetFact(index, i, /*hi=*/false),
                     StrFormat("lo:%zu", i));
  }
  problem.InitPriority();
  for (size_t i = 0; i < groups; ++i) {
    PREFREP_CHECK(problem.priority
                      ->AddByLabels(StrFormat("hi:%zu", i),
                                    StrFormat("lo:%zu", i))
                      .ok());
  }
  problem.j = inst.EmptySubinstance();
  for (size_t i = 0; i < groups; ++i) {
    problem.j.set(inst.FindLabel(
        j_choice == HardJ::kAllPreferred ? StrFormat("hi:%zu", i)
                                         : StrFormat("lo:%zu", i)));
  }
  return problem;
}

PreferredRepairProblem MakeHardClusteredWorkload(size_t cliques,
                                                 size_t clique_size) {
  PREFREP_CHECK_MSG(cliques >= 2 && clique_size >= 3,
                    "the clustered workload needs at least two cliques of "
                    "at least three facts to have a spine and a J");
  PreferredRepairProblem problem(HardSchema(1));
  Instance& inst = *problem.instance;
  const std::string relation = inst.schema().relation_name(0);
  // Member j of clique q: attribute 1 is per-clique, attribute 2 is one
  // global constant, attribute 3 is the global spine constant for j = 0
  // and unique otherwise.  So 12→3 conflicts members within a clique,
  // 23→1 conflicts the member-0 spine across cliques, and no other FD
  // ever fires (13→2 needs equal attributes 1 and 3 — inside a clique
  // attribute 3 differs, across cliques attribute 1 does).
  for (size_t q = 0; q < cliques; ++q) {
    for (size_t j = 0; j < clique_size; ++j) {
      std::string attr3 =
          j == 0 ? std::string("spine") : StrFormat("c%zu_%zu", q, j);
      inst.MustAddFact(relation, {StrFormat("k%zu", q), "m", attr3},
                       StrFormat("q%zu:f%zu", q, j));
    }
  }
  problem.InitPriority();
  for (size_t q = 0; q < cliques; ++q) {
    for (size_t j = 0; j < clique_size; ++j) {
      if (j == 1) {
        continue;
      }
      PREFREP_CHECK(problem.priority
                        ->AddByLabels(StrFormat("q%zu:f1", q),
                                      StrFormat("q%zu:f%zu", q, j))
                        .ok());
    }
  }
  problem.j = inst.EmptySubinstance();
  for (size_t q = 0; q < cliques; ++q) {
    problem.j.set(inst.FindLabel(StrFormat("q%zu:f1", q)));
  }
  return problem;
}

PreferredRepairProblem MakeHardShardedWorkload(size_t shards, size_t cliques,
                                               size_t clique_size,
                                               bool distinct_blocks) {
  PREFREP_CHECK_MSG(shards >= 1, "need at least one shard");
  PREFREP_CHECK_MSG(cliques >= 2 && clique_size >= 3,
                    "each shard needs at least two cliques of at least "
                    "three facts (see MakeHardClusteredWorkload)");
  PreferredRepairProblem problem(HardSchema(1));
  Instance& inst = *problem.instance;
  const std::string relation = inst.schema().relation_name(0);
  // Same fact shapes as MakeHardClusteredWorkload, but every constant
  // carries the shard index: attribute 2 (the within-shard glue) is
  // "m<s>", so no FD of S1 can relate facts of different shards and
  // each shard is one conflict block.
  for (size_t s = 0; s < shards; ++s) {
    for (size_t q = 0; q < cliques; ++q) {
      for (size_t j = 0; j < clique_size; ++j) {
        std::string attr3 = j == 0 ? StrFormat("spine%zu", s)
                                   : StrFormat("c%zu_%zu_%zu", s, q, j);
        inst.MustAddFact(relation,
                         {StrFormat("k%zu_%zu", s, q), StrFormat("m%zu", s),
                          attr3},
                         StrFormat("s%zu:q%zu:f%zu", s, q, j));
      }
    }
  }
  problem.InitPriority();
  for (size_t s = 0; s < shards; ++s) {
    for (size_t q = 0; q < cliques; ++q) {
      for (size_t j = 0; j < clique_size; ++j) {
        if (j == 1) {
          continue;
        }
        if (distinct_blocks) {
          // Droppable-edge position within the shard; shard s keeps the
          // edge iff the matching bit of s is clear.  Shards below
          // 2^(cliques·(clique_size−1)) (capped at 64 bits) thus get
          // pairwise-distinct priority edge sets — see the header for
          // why every variant keeps the same optimal J and cost.
          const size_t p = q * (clique_size - 1) + (j == 0 ? 0 : j - 1);
          if ((s >> (p % 64)) & 1) {
            continue;
          }
        }
        PREFREP_CHECK(problem.priority
                          ->AddByLabels(StrFormat("s%zu:q%zu:f1", s, q),
                                        StrFormat("s%zu:q%zu:f%zu", s, q, j))
                          .ok());
      }
    }
  }
  problem.j = inst.EmptySubinstance();
  for (size_t s = 0; s < shards; ++s) {
    for (size_t q = 0; q < cliques; ++q) {
      problem.j.set(inst.FindLabel(StrFormat("s%zu:q%zu:f1", s, q)));
    }
  }
  return problem;
}

}  // namespace prefrep
