// Copyright (c) prefrep contributors.
// Audit-mode bodies (see audit.h).  Baselines are definitional: repair
// enumeration (repair/exhaustive.h) and the improvement checkers of
// Definition 2.4 (repair/improvement.h) — never the algorithm under
// audit.  In regular builds this translation unit only carries the
// test-only fault-injection flag.

#include "repair/audit.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "io/text_format.h"
#include "repair/exhaustive.h"
#include "repair/improvement.h"
#include "repair/subinstance_ops.h"

namespace prefrep {
namespace audit {
namespace internal {

namespace {
// Atomic: parallel workers consult the flag mid-solve while a test
// thread may be toggling it.
std::atomic<bool> g_force_wrong_verdict{false};
}  // namespace

void ForceWrongVerdictForTesting(bool enabled) {
  g_force_wrong_verdict.store(enabled, std::memory_order_relaxed);
}

bool ForcingWrongVerdict() {
  return g_force_wrong_verdict.load(std::memory_order_relaxed);
}

#if PREFREP_AUDIT_ENABLED

namespace {

// Prints the failure and the offending instance in the io/text_format
// grammar, then aborts.  The dump can be replayed through prefrepctl or
// ParseProblemText directly.
[[noreturn]] void Fail(const Instance& instance, const PriorityRelation* pr,
                       const DynamicBitset* j, const std::string& what) {
  std::string dump = ProblemToText(instance, pr, j);
  std::fprintf(stderr,
               "[prefrep audit] %s\n"
               "[prefrep audit] replay input (io/text_format):\n%s",
               what.c_str(), dump.c_str());
  PREFREP_FATAL("audit failed — replay dump above");
}

// Definitional Pareto-optimality of J restricted to block `b`: no
// block-repair of b yields a Pareto improvement of J.  Scanning
// block-repairs is complete: extending an improvement to maximal within
// the block only shrinks J \ J′, which preserves the witness fact.
bool ExhaustiveParetoBlockOptimal(const ConflictGraph& cg,
                                  const PriorityRelation& pr, const Block& b,
                                  const DynamicBitset& j) {
  bool optimal = true;
  ForEachRepairWithin(cg, b.facts, [&](const DynamicBitset& r) {
    DynamicBitset candidate = (j - b.facts) | r;
    if (IsParetoImprovement(cg, pr, j, candidate)) {
      optimal = false;
      return false;
    }
    return true;
  });
  return optimal;
}

// The definitional optimal block-repair set of `b` under `semantics`:
// pairwise-filters the block-repair enumeration through the
// Definition 2.4 improvement checkers.  Empty optional for completion
// semantics (no independent polynomial-free baseline exists).
std::optional<std::vector<DynamicBitset>> BaselineOptimalBlockRepairs(
    const ProblemContext& ctx, const Block& b, RepairSemantics semantics) {
  if (semantics == RepairSemantics::kCompletion) {
    return std::nullopt;
  }
  const ConflictGraph& cg = ctx.conflict_graph();
  const PriorityRelation& pr = ctx.priority();
  std::vector<DynamicBitset> all = AllRepairsWithin(cg, b.facts);
  std::vector<DynamicBitset> optimal;
  for (const DynamicBitset& r : all) {
    bool is_optimal = true;
    for (const DynamicBitset& other : all) {
      bool improves = semantics == RepairSemantics::kGlobal
                          ? IsGlobalImprovement(cg, pr, r, other)
                          : IsParetoImprovement(cg, pr, r, other);
      if (improves) {
        is_optimal = false;
        break;
      }
    }
    if (is_optimal) {
      optimal.push_back(r);
    }
  }
  return optimal;
}

std::string BlockTag(const BlockSolver& solver, const Block& b) {
  return std::string(solver.Name()) + " on block " + std::to_string(b.id) +
         " (" + std::to_string(b.size()) + " facts)";
}

}  // namespace

void BlockVerdictImpl(const ProblemContext& ctx, const BlockSolver& solver,
                      const Block& b, const DynamicBitset& j,
                      const CheckResult& result) {
  const ConflictGraph& cg = ctx.conflict_graph();
  const PriorityRelation& pr = ctx.priority();
  if (!result.known()) {
    // A budget-degraded verdict asserts nothing — except that it must
    // not leak a torn witness from the cancelled enumeration.
    if (result.witness.has_value()) {
      Fail(cg.instance(), &pr, &j,
           BlockTag(solver, b) +
               " returned an unknown verdict that carries a witness");
    }
    return;
  }
  if (!result.optimal && result.witness.has_value()) {
    const DynamicBitset& w = result.witness->improvement;
    bool valid = true;
    switch (solver.Semantics()) {
      case RepairSemantics::kGlobal:
        valid = IsGlobalImprovement(cg, pr, j, w);
        break;
      case RepairSemantics::kPareto:
        valid = IsParetoImprovement(cg, pr, j, w);
        break;
      case RepairSemantics::kCompletion:
        break;  // completion checks report no witnesses
    }
    if (!valid) {
      Fail(cg.instance(), &pr, &j,
           BlockTag(solver, b) + " reported a witness that is no " +
               "improvement of J: " + result.witness->explanation);
    }
  }
  if (!solver.Polynomial() || b.size() > kMaxVerdictBlock) {
    return;
  }
  // The baselines run on an ungoverned twin of the context: an audit
  // cross-check must stay exact (and must not consume the caller's
  // budget) even when the audited call itself is being cancelled.
  ProblemContext ungoverned(cg, pr);
  switch (solver.Semantics()) {
    case RepairSemantics::kGlobal: {
      CheckResult baseline =
          ExhaustiveBlockSolver().CheckBlock(ungoverned, b, j);
      if (baseline.optimal != result.optimal) {
        Fail(cg.instance(), &pr, &j,
             BlockTag(solver, b) + " said " +
                 (result.optimal ? "optimal" : "not optimal") +
                 " but the exhaustive baseline disagrees");
      }
      break;
    }
    case RepairSemantics::kPareto: {
      bool baseline = ExhaustiveParetoBlockOptimal(cg, pr, b, j);
      if (baseline != result.optimal) {
        Fail(cg.instance(), &pr, &j,
             BlockTag(solver, b) + " said " +
                 (result.optimal ? "Pareto-optimal" : "not Pareto-optimal") +
                 " but the Pareto enumeration baseline disagrees");
      }
      break;
    }
    case RepairSemantics::kCompletion: {
      // No enumeration baseline, but completion-optimal ⊆ globally-
      // optimal [SCM]: a positive completion verdict on a block whose
      // restriction is globally improvable is certainly wrong.
      if (result.optimal) {
        CheckResult global =
            ExhaustiveBlockSolver().CheckBlock(ungoverned, b, j);
        if (!global.optimal) {
          Fail(cg.instance(), &pr, &j,
               BlockTag(solver, b) +
                   " said completion-optimal but the block restriction is "
                   "not even globally-optimal (completion ⊆ global)");
        }
      }
      break;
    }
  }
}

void BlockCountImpl(const ProblemContext& ctx, const BlockSolver& solver,
                    const Block& b, uint64_t count) {
  if (!solver.Polynomial() || b.size() > kMaxSetBlock) {
    return;
  }
  std::optional<std::vector<DynamicBitset>> baseline =
      BaselineOptimalBlockRepairs(ctx, b, solver.Semantics());
  if (!baseline.has_value()) {
    return;
  }
  if (count != baseline->size()) {
    Fail(ctx.conflict_graph().instance(), &ctx.priority(), nullptr,
         BlockTag(solver, b) + " counted " + std::to_string(count) +
             " optimal block-repairs; the enumeration baseline counts " +
             std::to_string(baseline->size()));
  }
}

void BlockRepairSetImpl(const ProblemContext& ctx, const BlockSolver& solver,
                        const Block& b,
                        const std::vector<DynamicBitset>& repairs) {
  if (!solver.Polynomial() || b.size() > kMaxSetBlock) {
    return;
  }
  std::optional<std::vector<DynamicBitset>> baseline =
      BaselineOptimalBlockRepairs(ctx, b, solver.Semantics());
  if (!baseline.has_value()) {
    return;
  }
  const Instance& instance = ctx.conflict_graph().instance();
  if (repairs.size() != baseline->size()) {
    Fail(instance, &ctx.priority(), nullptr,
         BlockTag(solver, b) + " materialized " +
             std::to_string(repairs.size()) +
             " optimal block-repairs; the enumeration baseline has " +
             std::to_string(baseline->size()));
  }
  for (const DynamicBitset& r : repairs) {
    if (std::find(baseline->begin(), baseline->end(), r) == baseline->end()) {
      Fail(instance, &ctx.priority(), &r,
           BlockTag(solver, b) +
               " materialized a block-repair (dumped as J) that the "
               "enumeration baseline rejects as non-optimal");
    }
  }
}

void GlobalVerdictImpl(const ConflictGraph& cg, const PriorityRelation& pr,
                       const DynamicBitset& j, const CheckResult& result,
                       const char* algorithm) {
  if (!result.known()) {
    if (result.witness.has_value()) {
      Fail(cg.instance(), &pr, &j,
           std::string(algorithm) +
               " returned an unknown verdict that carries a witness");
    }
    return;
  }
  if (!result.optimal && result.witness.has_value() &&
      !IsGlobalImprovement(cg, pr, j, result.witness->improvement)) {
    Fail(cg.instance(), &pr, &j,
         std::string(algorithm) + " reported a witness that is no global " +
             "improvement of J: " + result.witness->explanation);
  }
  if (cg.num_facts() > kMaxWholeInstance || !IsConsistent(cg, j)) {
    return;
  }
  CheckResult baseline = ExhaustiveCheckGlobalOptimal(cg, pr, j);
  if (baseline.optimal != result.optimal) {
    Fail(cg.instance(), &pr, &j,
         std::string(algorithm) + " said " +
             (result.optimal ? "optimal" : "not optimal") +
             " but the exhaustive whole-instance baseline disagrees");
  }
}

void ParetoWitnessImpl(const ConflictGraph& cg, const PriorityRelation& pr,
                       const DynamicBitset& j, const CheckResult& result) {
  if (result.optimal || !result.witness.has_value()) {
    return;
  }
  if (!IsParetoImprovement(cg, pr, j, result.witness->improvement)) {
    Fail(cg.instance(), &pr, &j,
         "FindParetoImprovement reported a witness that is no Pareto "
         "improvement of J: " +
             result.witness->explanation);
  }
}

void ConstructedRepairImpl(const ConflictGraph& cg, const PriorityRelation& pr,
                           const DynamicBitset& repair, const char* origin,
                           const DynamicBitset* universe) {
  if (universe != nullptr && !repair.IsSubsetOf(*universe)) {
    Fail(cg.instance(), &pr, &repair,
         std::string(origin) +
             " produced a repair with facts outside its universe");
  }
  if (!IsConsistent(cg, repair)) {
    Fail(cg.instance(), &pr, &repair,
         std::string(origin) + " produced an inconsistent subinstance "
                               "(dumped as J)");
  }
  if (universe == nullptr) {
    if (std::optional<FactId> f = FindExtension(cg, repair)) {
      Fail(cg.instance(), &pr, &repair,
           std::string(origin) + " produced a non-maximal repair: " +
               cg.instance().FactToString(*f) +
               " can be added without conflict");
    }
  } else {
    FactId missing = kInvalidFactId;
    (*universe - repair).ForEach([&](size_t f) {
      if (missing != kInvalidFactId) {
        return;
      }
      for (FactId u : cg.neighbors(static_cast<FactId>(f))) {
        if (repair.test(u)) {
          return;
        }
      }
      missing = static_cast<FactId>(f);
    });
    if (missing != kInvalidFactId) {
      Fail(cg.instance(), &pr, &repair,
           std::string(origin) + " produced a non-maximal repair: " +
               cg.instance().FactToString(missing) +
               " can be added without conflict");
    }
  }
  const size_t scope = universe != nullptr ? universe->count()
                                           : cg.num_facts();
  if (scope > kMaxWholeInstance) {
    return;
  }
  // Greedy outputs are completion-optimal, hence globally- and
  // Pareto-optimal [SCM]; verify both against enumeration.
  if (universe != nullptr) {
    // Universe-restricted baseline: optimal iff no repair of the
    // universe improves the output (optimality quantifies over repairs,
    // which are maximal, so enumerating them is complete).
    bool global_ok = true;
    bool pareto_ok = true;
    ForEachRepairWithin(cg, *universe, [&](const DynamicBitset& r) {
      if (IsGlobalImprovement(cg, pr, repair, r)) {
        global_ok = false;
      }
      if (IsParetoImprovement(cg, pr, repair, r)) {
        pareto_ok = false;
      }
      return global_ok && pareto_ok;
    });
    if (!global_ok) {
      Fail(cg.instance(), &pr, &repair,
           std::string(origin) +
               " produced a repair that is not globally-optimal "
               "within its universe");
    }
    if (!pareto_ok) {
      Fail(cg.instance(), &pr, &repair,
           std::string(origin) +
               " produced a repair that is not Pareto-optimal "
               "within its universe");
    }
    return;
  }
  if (!ExhaustiveCheckGlobalOptimal(cg, pr, repair).optimal) {
    Fail(cg.instance(), &pr, &repair,
         std::string(origin) +
             " produced a repair that is not globally-optimal");
  }
  if (!ExhaustiveCheckParetoOptimal(cg, pr, repair).optimal) {
    Fail(cg.instance(), &pr, &repair,
         std::string(origin) +
             " produced a repair that is not Pareto-optimal");
  }
}

void ConstructedBlockRepairImpl(const ConflictGraph& cg,
                                const PriorityRelation& pr,
                                const DynamicBitset& universe,
                                const DynamicBitset& repair,
                                const char* origin) {
  if (!repair.IsSubsetOf(universe)) {
    Fail(cg.instance(), &pr, &repair,
         std::string(origin) +
             " produced a block-repair with facts outside its block");
  }
  if (!IsConsistent(cg, repair)) {
    Fail(cg.instance(), &pr, &repair,
         std::string(origin) +
             " produced an inconsistent block-repair (dumped as J)");
  }
  FactId missing = kInvalidFactId;
  (universe - repair).ForEach([&](size_t f) {
    if (missing != kInvalidFactId) {
      return;
    }
    for (FactId u : cg.neighbors(static_cast<FactId>(f))) {
      if (repair.test(u)) {
        return;
      }
    }
    missing = static_cast<FactId>(f);
  });
  if (missing != kInvalidFactId) {
    Fail(cg.instance(), &pr, &repair,
         std::string(origin) + " produced a non-maximal block-repair: " +
             cg.instance().FactToString(missing) +
             " can be added without conflict");
  }
}

void CompletionVerdictImpl(const ConflictGraph& cg, const PriorityRelation& pr,
                           const DynamicBitset& j,
                           const DynamicBitset* universe,
                           const CheckResult& result) {
  if (!result.optimal) {
    return;  // negative completion verdicts carry no witness to audit
  }
  if (universe == nullptr) {
    if (!IsRepair(cg, j)) {
      Fail(cg.instance(), &pr, &j,
           "CheckCompletionOptimal accepted a J that is not a repair");
    }
    return;
  }
  ConstructedBlockRepairImpl(cg, pr, *universe, j & *universe,
                             "CheckCompletionOptimal (accepted restriction)");
}

#endif  // PREFREP_AUDIT_ENABLED

}  // namespace internal
}  // namespace audit
}  // namespace prefrep
