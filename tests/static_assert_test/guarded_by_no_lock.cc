// Copyright (c) prefrep contributors.
// Negative-compile proof: reading a PREFREP_GUARDED_BY field without
// holding its mutex MUST NOT compile under Clang with
// -Werror=thread-safety (the tsa preset's configuration).  Registered
// only for Clang builds — the annotations are no-ops elsewhere.

#include "base/thread_annotations.h"

namespace {

struct Counter {
  prefrep::Mutex mu;
  int value PREFREP_GUARDED_BY(mu) = 0;
};

int UnlockedRead(Counter& c) {
  return c.value;  // no lock held — must be a thread-safety error
}

}  // namespace

int main() {
  Counter c;
  return UnlockedRead(c);
}
