// The fixed hard schemas S1..S4 driving the lower-bound reductions of §5
// and the ccp hardness side of Theorem 7.1 — see reductions/hard_schemas.h
// for which reduction each schema anchors.
#include "reductions/hard_schemas.h"

namespace prefrep {

Schema HardSchemaS1() {
  return Schema::SingleRelation(
      "R1", 3,
      {FD(AttrSet{1, 2}, AttrSet{3}), FD(AttrSet{1, 3}, AttrSet{2}),
       FD(AttrSet{2, 3}, AttrSet{1})});
}

Schema HardSchemaS2() {
  return Schema::SingleRelation(
      "R2", 3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{1})});
}

Schema HardSchemaS3() {
  return Schema::SingleRelation(
      "R3", 3, {FD(AttrSet{1, 2}, AttrSet{3}), FD(AttrSet{3}, AttrSet{2})});
}

Schema HardSchemaS4() {
  return Schema::SingleRelation(
      "R4", 3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{3})});
}

Schema HardSchemaS5() {
  return Schema::SingleRelation(
      "R5", 3, {FD(AttrSet{1}, AttrSet{3}), FD(AttrSet{2}, AttrSet{3})});
}

Schema HardSchemaS6() {
  return Schema::SingleRelation(
      "R6", 3, {FD(AttrSet(), AttrSet{1}), FD(AttrSet{2}, AttrSet{3})});
}

Schema HardSchema(int index) {
  switch (index) {
    case 1:
      return HardSchemaS1();
    case 2:
      return HardSchemaS2();
    case 3:
      return HardSchemaS3();
    case 4:
      return HardSchemaS4();
    case 5:
      return HardSchemaS5();
    case 6:
      return HardSchemaS6();
    default:
      PREFREP_FATAL("hard schema index must be 1..6");
  }
}

Schema CcpHardSchemaSa() {
  Schema schema;
  RelId r = schema.MustAddRelation("R", 2);
  RelId s = schema.MustAddRelation("S", 2);
  schema.MustAddFd(r, FD(AttrSet{1}, AttrSet{2}));
  schema.MustAddFd(s, FD(AttrSet(), AttrSet{1}));
  return schema;
}

Schema CcpHardSchemaSb() {
  return Schema::SingleRelation("R", 3, {FD(AttrSet{1}, AttrSet{2})});
}

Schema CcpHardSchemaSc() {
  return Schema::SingleRelation(
      "R", 3, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet(), AttrSet{3})});
}

Schema CcpHardSchemaSd() {
  return Schema::SingleRelation(
      "R", 2, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{1})});
}

}  // namespace prefrep
