// Fixture for tools/check_prefrep.py --selftest (never compiled):
// durability entry points whose failures are a bool and a void — a
// recovery step that cannot report data loss turns corruption into
// silent wrong answers, which is what the Status/Result return rule
// exists to prevent.
// EXPECT-FINDING: prefrep-durability

#ifndef PREFREP_TESTS_CHECK_PREFREP_FIXTURES_BAD_DURABILITY_UNTYPED_RECOVERY_H_
#define PREFREP_TESTS_CHECK_PREFREP_FIXTURES_BAD_DURABILITY_UNTYPED_RECOVERY_H_

#include <string>

namespace prefrep {

bool RecoverFromDisk(const std::string& wal_path);

void TruncateLog(const std::string& wal_path);

}  // namespace prefrep

#endif  // PREFREP_TESTS_CHECK_PREFREP_FIXTURES_BAD_DURABILITY_UNTYPED_RECOVERY_H_
