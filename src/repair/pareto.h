// Copyright (c) prefrep contributors.
// Pareto-optimal repair checking (§2.4, §3).  For every schema this is
// solvable in polynomial time [Staworko–Chomicki–Marcinkowski]:
//
//   J has a Pareto improvement  ⟺  some fact g ∈ I \ J is preferred over
//   every fact of J it conflicts with (including the vacuous case of a
//   fact with no conflicts in J, which witnesses non-maximality).
//
// This characterization (proved in the module test) also works for
// cross-conflict priorities, so the same routine serves §7.

#ifndef PREFREP_REPAIR_PARETO_H_
#define PREFREP_REPAIR_PARETO_H_

#include "repair/improvement.h"

namespace prefrep {

/// Finds a Pareto improvement of the consistent subinstance `j`, if one
/// exists.  Requires `j` consistent (checked).
///
/// The witness returned is (J \ C(g)) ∪ {g}, where g is the improving
/// fact and C(g) the facts of J conflicting with g.
///
/// A non-null `universe` restricts the candidate improving facts g to
/// one conflict block; a Pareto improvement through g only removes facts
/// conflicting with g, so the whole-instance verdict is the conjunction
/// of the per-block verdicts (plus presence of all conflict-free facts).
CheckResult FindParetoImprovement(const ConflictGraph& cg,
                                  const PriorityRelation& pr,
                                  const DynamicBitset& j,
                                  const DynamicBitset* universe = nullptr);

/// Pareto-optimal repair checking: true iff `j` is a Pareto-optimal
/// repair of I, i.e. `j` is consistent and admits no Pareto improvement.
/// (A consistent non-maximal `j` always admits one, so maximality need
/// not be tested separately.)  Returns a witness when not optimal.
CheckResult CheckParetoOptimal(const ConflictGraph& cg,
                               const PriorityRelation& pr,
                               const DynamicBitset& j);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_PARETO_H_
