#include "fd/fd.h"

#include "base/string_util.h"

namespace prefrep {

std::string FD::ToString() const {
  return lhs.ToString() + " -> " + rhs.ToString();
}

std::string AttrSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int a) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += std::to_string(a);
  });
  out += "}";
  return out;
}

namespace {

// Parses one side of an FD: "1", "{1,2}", "{}", "" (empty set).
Result<AttrSet> ParseSide(std::string_view text) {
  std::string_view s = StripAsciiWhitespace(text);
  if (!s.empty() && s.front() == '{') {
    if (s.back() != '}') {
      return Status::ParseError("unbalanced '{' in attribute set: '" +
                                std::string(text) + "'");
    }
    s = s.substr(1, s.size() - 2);
  }
  AttrSet result;
  for (const std::string& piece : StrSplitTrimmed(s, ',')) {
    std::optional<uint64_t> attr = ParseUint(piece);
    if (!attr.has_value() || *attr < 1 ||
        *attr > static_cast<uint64_t>(kMaxArity)) {
      return Status::ParseError("bad attribute position '" + piece +
                                "' (must be 1.." + std::to_string(kMaxArity) +
                                ")");
    }
    result.Add(static_cast<int>(*attr));
  }
  return result;
}

}  // namespace

Result<FD> FD::Parse(std::string_view text) {
  size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("missing '->' in fd: '" + std::string(text) +
                              "'");
  }
  PREFREP_ASSIGN_OR_RETURN(AttrSet lhs, ParseSide(text.substr(0, arrow)));
  PREFREP_ASSIGN_OR_RETURN(AttrSet rhs, ParseSide(text.substr(arrow + 2)));
  return FD(lhs, rhs);
}

}  // namespace prefrep
