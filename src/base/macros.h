// Copyright (c) prefrep contributors.
// Common macros used across the prefrep library.

#ifndef PREFREP_BASE_MACROS_H_
#define PREFREP_BASE_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Marks a branch as likely/unlikely taken for the optimizer.
#if defined(__GNUC__) || defined(__clang__)
#define PREFREP_LIKELY(x) (__builtin_expect(!!(x), 1))
#define PREFREP_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define PREFREP_LIKELY(x) (x)
#define PREFREP_UNLIKELY(x) (x)
#endif

/// Aborts the process with a message; used for violated internal invariants.
#define PREFREP_FATAL(msg)                                                   \
  do {                                                                       \
    std::fprintf(stderr, "[prefrep fatal] %s:%d: %s\n", __FILE__, __LINE__,  \
                 (msg));                                                     \
    std::abort();                                                            \
  } while (0)

/// Checks an invariant in all build types.  Checking algorithms in this
/// library are verification tools, so we prefer hard failure over silent
/// corruption even in release builds.
#define PREFREP_CHECK(cond)                                                  \
  do {                                                                       \
    if (PREFREP_UNLIKELY(!(cond))) {                                         \
      PREFREP_FATAL("check failed: " #cond);                                 \
    }                                                                        \
  } while (0)

#define PREFREP_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (PREFREP_UNLIKELY(!(cond))) {                                         \
      PREFREP_FATAL("check failed: " #cond " — " msg);                       \
    }                                                                        \
  } while (0)

/// Debug-only invariant check; compiled out in release builds.
#ifndef NDEBUG
#define PREFREP_DCHECK(cond) PREFREP_CHECK(cond)
#else
#define PREFREP_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

/// Compile-time audit gate.  A build configured with -DPREFREP_AUDIT=ON
/// (the `audit` CMake preset) defines PREFREP_AUDIT, and every polynomial
/// verdict, constructed repair and block decomposition is cross-validated
/// against its definitional baseline at runtime (see repair/audit.h).
/// The gate must be set globally (it is a project-wide compile
/// definition), or inline audit wrappers would violate the ODR.
#ifdef PREFREP_AUDIT
#define PREFREP_AUDIT_ENABLED 1
#else
#define PREFREP_AUDIT_ENABLED 0
#endif

/// Disallows copy construction and copy assignment.
#define PREFREP_DISALLOW_COPY(TypeName)      \
  TypeName(const TypeName&) = delete;        \
  TypeName& operator=(const TypeName&) = delete

#endif  // PREFREP_BASE_MACROS_H_
