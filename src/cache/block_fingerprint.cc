#include "cache/block_fingerprint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "base/macros.h"
#include "classify/dichotomy.h"
#include "model/instance.h"

namespace prefrep {
namespace {

// Section tags for domain separation inside one fingerprint.
constexpr uint64_t kTagRelation = 0xa11a'0001;
constexpr uint64_t kTagFacts = 0xa11a'0002;
constexpr uint64_t kTagConflicts = 0xa11a'0003;
constexpr uint64_t kTagPriority = 0xa11a'0004;

constexpr uint64_t kDomainBlock = 0x626c'6f63'6b66'7001ULL;   // "blockfp"
constexpr uint64_t kDomainSubset = 0x7375'6273'6574'6401ULL;  // "subsetd"

constexpr uint64_t kHiSeed = 0x9368'5f8a'6d1c'3b47ULL;
constexpr uint64_t kLoSeed = 0x27d4'eb2f'1656'67c5ULL;

}  // namespace

FingerprintAccumulator::FingerprintAccumulator(uint64_t domain)
    : hi_(HashMix64(domain ^ kHiSeed)), lo_(HashMix64(domain ^ kLoSeed)) {}

FingerprintAccumulator::FingerprintAccumulator(const BlockFingerprint& base,
                                               uint64_t domain)
    : hi_(HashMix64(base.hi ^ domain ^ kHiSeed)),
      lo_(HashMix64(base.lo ^ domain ^ kLoSeed)) {}

BlockFingerprint FingerprintAccumulator::Finish() const {
  BlockFingerprint fp;
  fp.hi = HashMix64(hi_ ^ (length_ * 0xff51'afd7'ed55'8ccdULL));
  fp.lo = HashMix64(lo_ + length_);
  return fp;
}

// fingerprint-field-guard: Block=4 PriorityRelation=5
//
// The lint check `fingerprint-guard` (tools/lint_prefrep.py) counts the
// data members of struct Block (conflicts/blocks.h) and class
// PriorityRelation (priority/priority.h) and fails when the counts
// above go stale.  If it fired: decide whether the new field changes
// block identity (absorb it below, or show it is derived — id and
// fact_list are coordinates the canonical relabeling exists to erase,
// facts is fact_list as a bitset, rel is covered by the classification
// and value sections; instance_/edge_set_/dominates_/dominated_by_ are
// derived views of edges_), then update the counts.
BlockFingerprint ComputeBlockFingerprint(const ProblemContext& ctx,
                                         const Block& b) {
  const Instance& instance = ctx.instance();
  const ConflictGraph& cg = ctx.conflict_graph();
  const PriorityRelation& priority = ctx.priority();
  const size_t n = b.fact_list.size();
  PREFREP_CHECK_MSG(n >= 2, "fingerprinting a non-block");

  FingerprintAccumulator acc(kDomainBlock);

  // Relation shape + Theorem 3.1 classification.  The classification
  // masks pin down everything the tractable solvers read of the FD set;
  // the conflict-edge section pins down everything the exhaustive and
  // greedy paths read of it.
  const RelationClassification& rc = ctx.classification().relations[b.rel];
  acc.Absorb(kTagRelation);
  acc.Absorb(instance.fact(b.fact_list.front()).values.size());
  acc.Absorb(static_cast<uint64_t>(rc.kind));
  acc.Absorb(rc.single_fd.lhs.mask());
  acc.Absorb(rc.single_fd.rhs.mask());
  acc.Absorb(rc.key1.mask());
  acc.Absorb(rc.key2.mask());

  // Facts as canonical value tuples: local order is ascending fact id
  // (fact_list order), values renamed first-occurrence-first.  Two
  // blocks agreeing here have the same equality structure over their
  // tuples, which is all that FD-based conflict/violation reasoning
  // observes.  The rename table is a flat first-seen vector (a few
  // dozen values per block): a linear scan beats a hash map at this
  // size and keeps the all-miss overhead down (bench_cache, distinct).
  acc.Absorb(kTagFacts);
  acc.Absorb(n);
  std::vector<ValueId> first_seen;
  first_seen.reserve(n * 4);
  for (FactId f : b.fact_list) {
    const Fact& fact = instance.fact(f);
    for (ValueId v : fact.values) {
      size_t canonical = 0;
      while (canonical < first_seen.size() && first_seen[canonical] != v) {
        ++canonical;
      }
      if (canonical == first_seen.size()) {
        first_seen.push_back(v);
      }
      acc.Absorb(canonical);
    }
  }

  // Local index of a block fact: fact_list is ascending, so a binary
  // search replaces a hash map (fact ids are dense but block facts need
  // not be contiguous).  SIZE_MAX for facts outside the block.
  const auto local = [&b](FactId g) -> size_t {
    auto it = std::lower_bound(b.fact_list.begin(), b.fact_list.end(), g);
    if (it == b.fact_list.end() || *it != g) {
      return SIZE_MAX;
    }
    return static_cast<size_t>(it - b.fact_list.begin());
  };

  // Conflict edges as local pairs (i, j), i < j.  fact_list and every
  // neighbor list are ascending, so the emission order is canonical
  // without sorting.
  acc.Absorb(kTagConflicts);
  for (size_t i = 0; i < n; ++i) {
    for (FactId g : cg.neighbors(b.fact_list[i])) {
      const size_t j = local(g);
      if (j == SIZE_MAX || j <= i) {
        continue;  // neighbor outside the block (impossible) or j <= i
      }
      acc.Absorb(i);
      acc.Absorb(j);
    }
  }

  // Block-local priority edges as local pairs (higher, lower).
  // Dominates() lists are in insertion order — not canonical — so the
  // pairs are sorted before absorption.
  acc.Absorb(kTagPriority);
  std::vector<std::pair<uint64_t, uint64_t>> priority_edges;
  for (size_t i = 0; i < n; ++i) {
    for (FactId g : priority.Dominates(b.fact_list[i])) {
      const size_t j = local(g);
      PREFREP_CHECK_MSG(j != SIZE_MAX,
                        "block fingerprint requires a block-local priority "
                        "(an edge leaves the block)");
      priority_edges.emplace_back(i, j);
    }
  }
  std::sort(priority_edges.begin(), priority_edges.end());
  for (const auto& [hi, lo] : priority_edges) {
    acc.Absorb(hi);
    acc.Absorb(lo);
  }

  return acc.Finish();
}

BlockFingerprint DeriveOpKey(const BlockFingerprint& base, BlockCacheOp op,
                             uint64_t salt_a, uint64_t salt_b) {
  FingerprintAccumulator acc(base, 0x6f70'6b65'7964'6501ULL);  // "opkeyd"
  acc.Absorb(static_cast<uint64_t>(op));
  acc.Absorb(salt_a);
  acc.Absorb(salt_b);
  return acc.Finish();
}

uint64_t CanonicalSubsetDigest(const Block& b, const DynamicBitset& sub) {
  FingerprintAccumulator acc(kDomainSubset);
  for (size_t i = 0; i < b.fact_list.size(); ++i) {
    if (sub.test(b.fact_list[i])) {
      acc.Absorb(i);
    }
  }
  return acc.Finish().lo;
}

DynamicBitset UncanonicalizeSubset(const Block& b, const DynamicBitset& local,
                                   size_t num_facts) {
  PREFREP_CHECK_MSG(local.size() == b.fact_list.size(),
                    "cached block payload has the wrong block size");
  DynamicBitset global(num_facts);
  local.ForEach([&](size_t i) { global.set(b.fact_list[i]); });
  return global;
}

DynamicBitset CanonicalizeSubset(const Block& b, const DynamicBitset& global) {
  DynamicBitset local(b.fact_list.size());
  for (size_t i = 0; i < b.fact_list.size(); ++i) {
    if (global.test(b.fact_list[i])) {
      local.set(i);
    }
  }
  return local;
}

}  // namespace prefrep
