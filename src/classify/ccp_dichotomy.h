// Copyright (c) prefrep contributors.
// The dichotomy classifier for cross-conflict priorities (Theorem 7.1 /
// Theorem 7.6).  Over ccp-instances, globally-optimal repair checking is
// polynomial iff ∆ is a *primary-key assignment* (every ∆|R equivalent to
// one key constraint) or a *constant-attribute assignment* (every ∆|R
// equivalent to one FD ∅ → B); otherwise coNP-complete.
//
// Note how the two dichotomies differ: under ordinary priorities the
// tractability condition is per-relation (each relation independently
// single-fd or two-keys); under ccp the condition is global — all
// relations must be primary-key, or all constant-attribute — because a
// cross-conflict priority can couple relations.

#ifndef PREFREP_CLASSIFY_CCP_DICHOTOMY_H_
#define PREFREP_CLASSIFY_CCP_DICHOTOMY_H_

#include <string>
#include <vector>

#include "fd/fd_set.h"
#include "model/schema.h"

namespace prefrep {

/// Tests whether one relation's FDs are equivalent to a single key
/// constraint A → ⟦R⟧; returns the key through `key` if so.  An FD set
/// with no nontrivial FD qualifies with the trivial key ⟦R⟧.
bool IsSingleKeyEquivalent(const FDSet& fds, AttrSet* key);

/// Tests whether one relation's FDs are equivalent to a single
/// constant-attribute constraint ∅ → B; returns B = ⟦R.∅⟧ through
/// `constant_attrs` if so.
bool IsConstantAttrEquivalent(const FDSet& fds, AttrSet* constant_attrs);

/// Classification of a schema for the ccp dichotomy.
struct CcpSchemaClassification {
  bool primary_key_assignment = false;
  bool constant_attr_assignment = false;
  /// Per-relation key (valid when primary_key_assignment).
  std::vector<AttrSet> keys;
  /// Per-relation constant attributes (valid when
  /// constant_attr_assignment).
  std::vector<AttrSet> constant_attrs;
  std::string explanation;

  bool tractable() const {
    return primary_key_assignment || constant_attr_assignment;
  }
};

/// Theorem 7.6: decides in polynomial time which side of the dichotomy
/// of Theorem 7.1 the schema is on.
CcpSchemaClassification ClassifyCcpSchema(const Schema& schema);

}  // namespace prefrep

#endif  // PREFREP_CLASSIFY_CCP_DICHOTOMY_H_
