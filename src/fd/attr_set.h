// Copyright (c) prefrep contributors.
// Attribute sets.  Following the paper (§2.1), attributes of a relation
// symbol R are the positions 1..arity(R), written ⟦R⟧.  An AttrSet is a
// subset of ⟦R⟧ represented as a 64-bit mask, so arity is limited to 64
// (enforced at schema construction).
//
// Externally (parsing, printing, the paper) attributes are 1-based; the
// mask stores attribute i at bit (i-1).

#ifndef PREFREP_FD_ATTR_SET_H_
#define PREFREP_FD_ATTR_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/macros.h"

namespace prefrep {

/// Maximum supported relation arity.
inline constexpr int kMaxArity = 64;

/// A set of attribute positions (1-based, as in the paper).
class AttrSet {
 public:
  /// The empty attribute set.
  constexpr AttrSet() : mask_(0) {}

  /// Constructs from 1-based attribute positions, e.g. AttrSet{1, 3}.
  AttrSet(std::initializer_list<int> attrs) : mask_(0) {
    for (int a : attrs) {
      Add(a);
    }
  }

  /// The full set ⟦R⟧ = {1, ..., arity}.
  static AttrSet Full(int arity) {
    PREFREP_CHECK(arity >= 0 && arity <= kMaxArity);
    if (arity == 0) {
      return AttrSet();
    }
    AttrSet s;
    s.mask_ = (arity == 64) ? ~uint64_t{0} : ((uint64_t{1} << arity) - 1);
    return s;
  }

  /// Constructs from a raw mask (bit i-1 ⇔ attribute i).
  static AttrSet FromMask(uint64_t mask) {
    AttrSet s;
    s.mask_ = mask;
    return s;
  }

  uint64_t mask() const { return mask_; }

  bool empty() const { return mask_ == 0; }
  int size() const { return __builtin_popcountll(mask_); }

  /// Membership of 1-based attribute `a`.
  bool Contains(int a) const {
    PREFREP_DCHECK(a >= 1 && a <= kMaxArity);
    return (mask_ >> (a - 1)) & 1;
  }

  void Add(int a) {
    PREFREP_CHECK(a >= 1 && a <= kMaxArity);
    mask_ |= uint64_t{1} << (a - 1);
  }

  void Remove(int a) {
    PREFREP_CHECK(a >= 1 && a <= kMaxArity);
    mask_ &= ~(uint64_t{1} << (a - 1));
  }

  bool IsSubsetOf(const AttrSet& other) const {
    return (mask_ & ~other.mask_) == 0;
  }

  /// Proper subset.
  bool IsStrictSubsetOf(const AttrSet& other) const {
    return IsSubsetOf(other) && mask_ != other.mask_;
  }

  bool Intersects(const AttrSet& other) const {
    return (mask_ & other.mask_) != 0;
  }

  friend AttrSet operator|(AttrSet a, AttrSet b) {
    return FromMask(a.mask_ | b.mask_);
  }
  friend AttrSet operator&(AttrSet a, AttrSet b) {
    return FromMask(a.mask_ & b.mask_);
  }
  /// Set difference.
  friend AttrSet operator-(AttrSet a, AttrSet b) {
    return FromMask(a.mask_ & ~b.mask_);
  }

  AttrSet& operator|=(AttrSet b) {
    mask_ |= b.mask_;
    return *this;
  }
  AttrSet& operator&=(AttrSet b) {
    mask_ &= b.mask_;
    return *this;
  }
  AttrSet& operator-=(AttrSet b) {
    mask_ &= ~b.mask_;
    return *this;
  }

  bool operator==(const AttrSet& other) const { return mask_ == other.mask_; }
  bool operator!=(const AttrSet& other) const { return mask_ != other.mask_; }
  /// Arbitrary stable order (by mask); lets AttrSet key ordered containers.
  bool operator<(const AttrSet& other) const { return mask_ < other.mask_; }

  /// 1-based attribute positions in increasing order.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    uint64_t m = mask_;
    while (m) {
      out.push_back(__builtin_ctzll(m) + 1);
      m &= m - 1;
    }
    return out;
  }

  /// Calls fn(a) for each 1-based attribute in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t m = mask_;
    while (m) {
      fn(__builtin_ctzll(m) + 1);
      m &= m - 1;
    }
  }

  /// Renders as "{1, 3}" ("∅" for the empty set is spelled "{}").
  std::string ToString() const;

 private:
  uint64_t mask_;
};

struct AttrSetHash {
  size_t operator()(const AttrSet& s) const {
    return static_cast<size_t>(s.mask() * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace prefrep

#endif  // PREFREP_FD_ATTR_SET_H_
