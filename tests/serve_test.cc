// Tests for the resident serving layer (serve/): incremental
// conflict/block maintenance under insert/delete/prefer, the batched
// op API, and the byte-identical-to-rebuild contract — after any edit
// sequence every query reply must equal the reply of a fresh session
// built from the serialized live state, across threads 1/8, cache
// on/off, and governed/ungoverned configurations.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gen/edit_script.h"
#include "io/ops_format.h"
#include "io/text_format.h"
#include "serve/session.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::ProblemSpec;

std::unique_ptr<SessionContext> MustCreate(const PreferredRepairProblem& p,
                                           SessionOptions options = {}) {
  Result<std::unique_ptr<SessionContext>> session =
      SessionContext::Create(p, options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

std::string MustExecute(SessionContext& session, const std::string& line) {
  Result<SessionOp> op = ParseSessionOp(line);
  EXPECT_TRUE(op.ok()) << line << ": " << op.status().ToString();
  Result<std::string> reply = session.Execute(*op);
  EXPECT_TRUE(reply.ok()) << line << ": " << reply.status().ToString();
  return reply.ok() ? *reply : std::string();
}

// The base fixture problem: two independent blocks {a1, a2} and
// {b1, b2, b3} plus the free fact c1, with a1 ≻ a2 and b1 ≻ b2.
PreferredRepairProblem FixtureProblem() {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a1: ka, x1", "a2: ka, x2", "b1: kb, y1",
                "b2: kb, y2", "b3: kb, y3", "c1: kc, z1"};
  spec.priorities = {"a1 > a2", "b1 > b2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  p.j = testing_util::Sub(*p.instance, {"a1", "b1", "c1"});
  return p;
}

// Every query the battery compares, in one deterministic order.
std::vector<std::string> AllQueries() {
  return {
      "check global",
      "check pareto",
      "check completion",
      "count global",
      "count pareto",
      "count completion",
      "construct",
      "cqa global Q(x) :- R(x, y)",
      "cqa repairs Q(y) :- R(x, y)",
  };
}

// Asserts that `session` answers every query byte-identically to a
// fresh session built by parsing session.SerializeLive().  This is THE
// serving-layer contract: incremental maintenance must be externally
// invisible.
void ExpectMatchesRebuild(SessionContext& session, SessionOptions options,
                          const std::string& note) {
  const std::string text = session.SerializeLive();
  Result<PreferredRepairProblem> reparsed = ParseProblemText(text);
  ASSERT_TRUE(reparsed.ok()) << note << ": " << reparsed.status().ToString();
  std::unique_ptr<SessionContext> rebuilt = MustCreate(*reparsed, options);
  // The rebuilt session's J comes from the serialized `j` clause; the
  // live session's J is whatever the edits left.  SerializeLive emits
  // it, so the two agree by construction — just confirm.
  ASSERT_EQ(session.JSubinstance().count(),
            rebuilt->JSubinstance().count())
      << note;
  for (const std::string& query : AllQueries()) {
    const std::string live_reply = MustExecute(session, query);
    const std::string rebuilt_reply = MustExecute(*rebuilt, query);
    EXPECT_EQ(live_reply, rebuilt_reply) << note << " query: " << query;
  }
}

// Cross-checks every cached per-block categoricity bit against a
// from-scratch recomputation on the current resident state: (1) no
// memo entry may outlive its block (insert-merge, delete-split and
// prefer must have retired it), and (2) every surviving entry must
// still equal what deciding the block fresh produces.
void ExpectMemoMatchesRecompute(SessionContext& session,
                                const std::string& note) {
  ProblemContext& ctx = session.context();
  CategoricityMemo& memo = session.categoricity_memo();
  std::set<FactId> block_keys;
  for (const Block& b : ctx.blocks().blocks()) {
    block_keys.insert(b.fact_list.front());
  }
  for (const auto& [key, sem] : memo.keys()) {
    ASSERT_TRUE(block_keys.count(key) > 0)
        << note << ": memo entry for key " << key
        << " outlived its block (sem " << sem << ")";
  }
  for (const Block& b : ctx.blocks().blocks()) {
    const FactId key = b.fact_list.front();
    for (RepairSemantics sem :
         {RepairSemantics::kGlobal, RepairSemantics::kPareto,
          RepairSemantics::kCompletion}) {
      const CategoricityMemo::Entry* entry = memo.Lookup(key, sem);
      if (entry == nullptr) {
        continue;
      }
      BlockCategoricity fresh = DecideBlockCategoricity(ctx, b, sem);
      ASSERT_EQ(entry->unique, fresh.unique)
          << note << ": cached categoricity bit diverged for block key "
          << key << " sem " << static_cast<int>(sem);
      if (entry->unique == Trilean::kTrue) {
        std::vector<FactId> fresh_facts;
        fresh.repair.ForEach(
            [&](size_t f) { fresh_facts.push_back(f); });
        EXPECT_EQ(entry->repair_facts, fresh_facts)
            << note << ": cached unique repair diverged for block key "
            << key;
      }
    }
  }
}

// ---- Directed edit/boundary cases ----------------------------------

TEST(ServeSessionTest, InsertIntoFreeSpaceStaysFree) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  const std::string reply = MustExecute(*s, "insert d1 R(kd, w1)");
  EXPECT_NE(reply.find("(free)"), std::string::npos) << reply;
  ExpectMatchesRebuild(*s, {}, "free insert");
}

TEST(ServeSessionTest, InsertMergesFreeFactIntoBlock) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  // c2 conflicts the free fact c1: the pair becomes a new 2-block.
  const std::string reply = MustExecute(*s, "insert c2 R(kc, z2)");
  EXPECT_NE(reply.find("block of 2"), std::string::npos) << reply;
  ExpectMatchesRebuild(*s, {}, "free->block merge");
}

TEST(ServeSessionTest, InsertMergesTwoBlocksViaBridgeFact) {
  ProblemSpec spec;
  spec.arity = 3;
  // FDs 1→2 and 2→3: {a1,a2} conflict on attribute 1, {b1,b2} on
  // attribute 2 — a bridge fact sharing ka and m2 joins both.
  spec.fds = {"1 -> 2", "2 -> 3"};
  spec.facts = {"a1: ka, m1, t1", "a2: ka, m1b, t2", "b1: kb, m2, u1",
                "b2: kb2, m2, u2"};
  spec.priorities = {};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  p.j = p.instance->EmptySubinstance();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  const std::string reply = MustExecute(*s, "insert z R(ka, m2, t9)");
  EXPECT_NE(reply.find("block of 5"), std::string::npos) << reply;
  ExpectMatchesRebuild(*s, {}, "two-block merge");
}

TEST(ServeSessionTest, DeleteSplitsBlockAndFreesSingletons) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  // {a1, a2} is a 2-block; deleting a1 leaves a2 free (0 blocks remain).
  const std::string reply = MustExecute(*s, "delete a1");
  EXPECT_NE(reply.find("0 block(s) remain"), std::string::npos) << reply;
  ExpectMatchesRebuild(*s, {}, "block->free split");
}

TEST(ServeSessionTest, DeleteBridgeResplitsMergedBlock) {
  ProblemSpec spec;
  spec.arity = 3;
  spec.fds = {"1 -> 2", "2 -> 3"};
  spec.facts = {"a1: ka, m1, t1", "a2: ka, m1b, t2", "b1: kb, m2, u1",
                "b2: kb2, m2, u2", "z: ka, m2, t9"};
  spec.priorities = {};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  p.j = p.instance->EmptySubinstance();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  // z bridges {a1,a2} and {b1,b2} into one 5-block; removing it
  // restores the two original blocks.
  const std::string reply = MustExecute(*s, "delete z");
  EXPECT_NE(reply.find("2 block(s) remain"), std::string::npos) << reply;
  ExpectMatchesRebuild(*s, {}, "bridge delete resplit");
}

TEST(ServeSessionTest, DeleteDropsJMember) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  const size_t before = s->JSubinstance().count();
  MustExecute(*s, "delete b1");
  EXPECT_EQ(s->JSubinstance().count(), before - 1);
  ExpectMatchesRebuild(*s, {}, "delete J member");
}

TEST(ServeSessionTest, RevivalRestoresIdenticalFact) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  MustExecute(*s, "delete b3");
  const std::string reply = MustExecute(*s, "insert b3 R(kb, y3)");
  EXPECT_NE(reply.find("revived"), std::string::npos) << reply;
  ExpectMatchesRebuild(*s, {}, "revival");
}

TEST(ServeSessionTest, RevivalRejectsChangedContent) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  MustExecute(*s, "delete b3");
  Result<SessionOp> op = ParseSessionOp("insert b3 R(kb, CHANGED)");
  ASSERT_TRUE(op.ok());
  Result<std::string> reply = s->Execute(*op);
  EXPECT_FALSE(reply.ok());
}

TEST(ServeSessionTest, PreferInvalidatesWithoutChangingBlocks) {
  PreferredRepairProblem p = FixtureProblem();
  SessionOptions options;
  options.cache_capacity = 64;
  std::unique_ptr<SessionContext> s = MustCreate(p, options);
  const std::string cold = MustExecute(*s, "check global");
  MustExecute(*s, "prefer b2 > b3");
  ExpectMatchesRebuild(*s, options, "prefer");
  // And the new edge is really in force, not served stale from cache.
  const std::string after = MustExecute(*s, "check global");
  std::unique_ptr<SessionContext> fresh =
      MustCreate(*ParseProblemText(s->SerializeLive()));
  EXPECT_EQ(after, MustExecute(*fresh, "check global"));
  (void)cold;
}

TEST(ServeSessionTest, CqaPopulatesAndEditsRetireCategoricityMemo) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  EXPECT_EQ(s->categoricity_memo().size(), 0u);
  const std::string reply = MustExecute(*s, "cqa global Q(x) :- R(x, y)");
  // The reply reports which route answered, and the pre-pass left one
  // verdict per block behind.
  EXPECT_NE(reply.find("path: "), std::string::npos) << reply;
  EXPECT_EQ(s->categoricity_memo().size(), 2u);  // blocks {a*} and {b*}
  ExpectMemoMatchesRecompute(*s, "after cqa");
  // Prefer retires exactly the edited block's entries — with the
  // block-solve cache OFF, proving the memo invalidation is not gated
  // on it.
  MustExecute(*s, "prefer b2 > b3");
  EXPECT_EQ(s->categoricity_memo().size(), 1u);
  ExpectMemoMatchesRecompute(*s, "after prefer");
  // Delete splits the b-block: its entry must not survive either.
  MustExecute(*s, "cqa global Q(x) :- R(x, y)");
  EXPECT_EQ(s->categoricity_memo().size(), 2u);
  MustExecute(*s, "delete b2");
  ExpectMemoMatchesRecompute(*s, "after delete");
  for (const auto& [key, sem] : s->categoricity_memo().keys()) {
    EXPECT_EQ(key, p.instance->FindLabel("a1"))
        << "only the untouched a-block's entry may survive";
  }
}

TEST(ServeSessionTest, PreferRejectsCycles) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  // The fixture has b1 ≻ b2 already; closing the triangle must fail.
  MustExecute(*s, "prefer b2 > b3");
  Result<SessionOp> op = ParseSessionOp("prefer b3 > b1");
  ASSERT_TRUE(op.ok());
  Result<std::string> reply = s->Execute(*op);
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("cycle"), std::string::npos)
      << reply.status().ToString();
}

TEST(ServeSessionTest, PreferRejectsNonConflictingPair) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  Result<SessionOp> op = ParseSessionOp("prefer a1 > b1");
  ASSERT_TRUE(op.ok());
  Result<std::string> reply = s->Execute(*op);
  EXPECT_FALSE(reply.ok());
}

TEST(ServeSessionTest, BudgetOpGovernsFollowingQueries) {
  PreferredRepairProblem p = FixtureProblem();
  std::unique_ptr<SessionContext> s = MustCreate(p);
  MustExecute(*s, "budget max-nodes 1");
  const std::string reply = MustExecute(*s, "count global");
  EXPECT_NE(reply.find(">="), std::string::npos) << reply;
  MustExecute(*s, "budget");
  const std::string exact = MustExecute(*s, "count global");
  EXPECT_EQ(exact.find(">="), std::string::npos) << exact;
}

// ---- Randomized differential battery -------------------------------

struct BatteryConfig {
  size_t threads;
  size_t cache_capacity;
  bool governed;
  const char* name;
};

void RunBattery(const BatteryConfig& config, uint64_t seed) {
  EditScriptOptions gen;
  gen.shards = 6;
  gen.facts_per_shard = 3;
  gen.num_ops = 60;
  gen.seed = seed;
  EditScriptWorkload workload = MakeEditScriptWorkload(gen);

  SessionOptions options;
  options.threads = config.threads;
  options.cache_capacity = config.cache_capacity;
  std::unique_ptr<SessionContext> session =
      MustCreate(workload.problem, options);
  if (config.governed) {
    MustExecute(*session, "budget max-nodes 100000");
  }
  size_t edits_since_check = 0;
  for (size_t i = 0; i < workload.ops.size(); ++i) {
    const std::string& line = workload.ops[i];
    SCOPED_TRACE(config.name + std::string(" op ") + std::to_string(i) +
                 ": " + line);
    MustExecute(*session, line);
    ExpectMemoMatchesRecompute(*session, config.name + std::string(" op ") +
                                             std::to_string(i));
    if (::testing::Test::HasFailure()) {
      return;
    }
    if (++edits_since_check >= 7) {
      edits_since_check = 0;
      ExpectMatchesRebuild(*session, options,
                           config.name + std::string(" after op ") +
                               std::to_string(i));
      if (::testing::Test::HasFailure()) {
        return;
      }
    }
  }
  ExpectMatchesRebuild(*session, options, config.name + std::string(" end"));
}

TEST(ServeBatteryTest, SerialNoCache) {
  RunBattery({1, 0, false, "serial/nocache"}, 7);
}

TEST(ServeBatteryTest, SerialCached) {
  RunBattery({1, 128, false, "serial/cache"}, 7);
}

TEST(ServeBatteryTest, ParallelNoCache) {
  RunBattery({8, 0, false, "threads8/nocache"}, 11);
}

TEST(ServeBatteryTest, ParallelCached) {
  RunBattery({8, 128, false, "threads8/cache"}, 11);
}

TEST(ServeBatteryTest, GovernedCached) {
  RunBattery({1, 128, true, "governed/cache"}, 13);
}

// Cache on vs cache off must agree byte for byte on the same script —
// the node-replay contract extended to the serving layer.
TEST(ServeBatteryTest, CacheOnOffAgree) {
  EditScriptOptions gen;
  gen.shards = 5;
  gen.facts_per_shard = 3;
  gen.num_ops = 50;
  gen.seed = 23;
  EditScriptWorkload workload = MakeEditScriptWorkload(gen);
  SessionOptions with_cache;
  with_cache.cache_capacity = 128;
  std::unique_ptr<SessionContext> cached =
      MustCreate(workload.problem, with_cache);
  std::unique_ptr<SessionContext> uncached = MustCreate(workload.problem);
  for (size_t i = 0; i < workload.ops.size(); ++i) {
    const std::string& line = workload.ops[i];
    SCOPED_TRACE("op " + std::to_string(i) + ": " + line);
    EXPECT_EQ(MustExecute(*cached, line), MustExecute(*uncached, line));
  }
  for (const std::string& query : AllQueries()) {
    EXPECT_EQ(MustExecute(*cached, query), MustExecute(*uncached, query))
        << query;
  }
}

// ---- Generator sanity ----------------------------------------------

TEST(ServeScriptTest, GeneratedScriptsExecuteCleanly) {
  EditScriptOptions gen;
  gen.shards = 4;
  gen.facts_per_shard = 2;
  gen.num_ops = 80;
  gen.seed = 99;
  EditScriptWorkload workload = MakeEditScriptWorkload(gen);
  EXPECT_EQ(workload.ops.size(), gen.num_ops);
  std::unique_ptr<SessionContext> session = MustCreate(workload.problem);
  for (const std::string& line : workload.ops) {
    MustExecute(*session, line);  // every generated op must succeed
  }
}

TEST(ServeScriptTest, ScriptsAreDeterministic) {
  EditScriptOptions gen;
  gen.num_ops = 40;
  gen.seed = 5;
  EXPECT_EQ(MakeEditScriptWorkload(gen).ops, MakeEditScriptWorkload(gen).ops);
}

}  // namespace
}  // namespace prefrep
