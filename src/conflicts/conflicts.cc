#include "conflicts/conflicts.h"

#include <algorithm>
#include <unordered_map>

#include "base/hash.h"
#include "conflicts/projection.h"

namespace prefrep {

bool FactsAgreeOn(const Fact& f, const Fact& g, AttrSet attrs) {
  PREFREP_DCHECK(f.rel == g.rel);
  // Short-circuit: one mismatching attribute settles disagreement, so
  // walk the mask directly instead of ForEach over every position
  // (bench_hotpath BM_AgreeKernel pins the early exit).
  uint64_t m = attrs.mask();
  while (m != 0) {
    const int o = __builtin_ctzll(m);  // 0-based column offset
    if (f.values[o] != g.values[o]) {
      return false;
    }
    m &= m - 1;
  }
  return true;
}

bool IsDeltaConflict(const Fact& f, const Fact& g, const FD& fd) {
  if (f.rel != g.rel) {
    return false;
  }
  return FactsAgreeOn(f, g, fd.lhs) && !FactsAgreeOn(f, g, fd.rhs);
}

bool FactsConflict(const Instance& instance, FactId f, FactId g) {
  const Fact ff = instance.fact(f);
  const Fact gg = instance.fact(g);
  if (ff.rel != gg.rel) {
    return false;
  }
  for (const FD& fd : instance.schema().fds(ff.rel).fds()) {
    if (IsDeltaConflict(ff, gg, fd)) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<FactId, FactId>> AllConflictPairsNaive(
    const Instance& instance) {
  std::vector<std::pair<FactId, FactId>> out;
  const Schema& schema = instance.schema();
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    const std::vector<FactId>& facts = instance.facts_of(rel);
    for (size_t i = 0; i < facts.size(); ++i) {
      for (size_t k = i + 1; k < facts.size(); ++k) {
        FactId f = std::min(facts[i], facts[k]);
        FactId g = std::max(facts[i], facts[k]);
        if (FactsConflict(instance, f, g)) {
          out.emplace_back(f, g);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<FactId, FactId>> AllConflictPairsHashedReference(
    const Instance& instance) {
  // The pre-columnar production join, preserved verbatim as the
  // ablation baseline the perf gate measures the flat join against
  // (tools/perf_gate.py) and the differential batteries cross-check it
  // with (tests/metamorphic_test.cc).  It deliberately materializes a
  // projected key vector per fact per FD and buckets through nested
  // node-based hash maps — exactly the allocation pattern the columnar
  // rewrite removes.  Do not "optimize" it: its cost is the point.
  auto project = [](const Fact& f, AttrSet attrs) {
    std::vector<ValueId> key;
    key.reserve(static_cast<size_t>(attrs.size()));
    attrs.ForEach([&](int a) { key.push_back(f.values[a - 1]); });
    return key;
  };
  std::vector<std::pair<FactId, FactId>> out;
  const Schema& schema = instance.schema();
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    const std::vector<FactId>& rel_facts = instance.facts_of(rel);
    for (const FD& fd : schema.fds(rel).fds()) {
      if (fd.IsTrivial()) {
        continue;
      }
      // Ablation baseline kept deliberately (see above); the production
      // join below is key-materialization-free.
      // NOLINT(prefrep-hotloop)
      std::unordered_map<std::vector<ValueId>,  // NOLINT(prefrep-hotloop)
                         std::unordered_map<std::vector<ValueId>,
                                            std::vector<FactId>,
                                            VectorHash<ValueId>>,
                         VectorHash<ValueId>>
          buckets;
      for (FactId f : rel_facts) {
        const Fact fact = instance.fact(f);
        buckets[project(fact, fd.lhs)][project(fact, fd.rhs)].push_back(f);
      }
      for (const auto& [lhs_key, sub_buckets] : buckets) {
        (void)lhs_key;
        if (sub_buckets.size() < 2) {
          continue;
        }
        std::vector<const std::vector<FactId>*> groups;
        groups.reserve(sub_buckets.size());
        for (const auto& [rhs_key, group] : sub_buckets) {
          (void)rhs_key;
          groups.push_back(&group);
        }
        for (size_t i = 0; i < groups.size(); ++i) {
          for (size_t j = i + 1; j < groups.size(); ++j) {
            for (FactId f : *groups[i]) {
              for (FactId g : *groups[j]) {
                out.emplace_back(std::min(f, g), std::max(f, g));
              }
            }
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

// One lhs bucket of the flat join: the seeded projection hash (for
// cheap slot rejection), a representative fact and a member count.
// Plain data — membership lives in a shared counting-sort arena, so
// building buckets allocates nothing per bucket.
struct LhsGroup {
  uint64_t hash = 0;
  FactId rep = kInvalidFactId;
  uint32_t count = 0;
  uint32_t begin = 0;  // offset of the bucket's run in the order arena
};

// The flat join core: for each relation and each FD A → B, group the
// facts by their A-projection, sub-grouped by B-projection; facts in
// different sub-groups of the same group are in δ-conflict.  Grouping
// is one open-addressing flat table per (rel, FD), keyed by the seeded
// hash of the projected lhs columns read straight off the columnar row
// — no key vectors, no per-bucket allocations: bucket membership is a
// counting sort into one reused arena (docs/memory-layout.md).  Emits
// raw (min, max) pairs, duplicated when a pair conflicts under several
// FDs; callers sort + unique.
void CollectFlatPairs(const Instance& instance,
                      std::vector<std::pair<FactId, FactId>>& out) {
  const Schema& schema = instance.schema();
  std::vector<uint32_t> slots;      // open-addressing table → group id
  std::vector<LhsGroup> groups;     // bucket metadata, reused
  std::vector<uint32_t> group_of;   // [fact position] → group id
  std::vector<FactId> order;        // facts laid out bucket-by-bucket
  std::vector<uint32_t> cursor;     // per-bucket write cursor
  std::vector<FactId> sub_reps;     // rhs-class representatives, reused
  std::vector<uint32_t> sub_of;     // [member position] → rhs class
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    const std::vector<FactId>& rel_facts = instance.facts_of(rel);
    if (rel_facts.size() < 2) {
      continue;
    }
    const size_t n = rel_facts.size();
    for (const FdProjection& p : BuildFdProjections(schema, rel)) {
      size_t cap = 16;
      while (cap < n * 2) {
        cap <<= 1;
      }
      const size_t mask = cap - 1;
      slots.assign(cap, UINT32_MAX);
      groups.clear();
      group_of.resize(n);
      // Pass 1: assign every fact its lhs bucket (probe by hash, verify
      // against the bucket representative's row — keys never leave the
      // arena).
      for (size_t k = 0; k < n; ++k) {
        const FactId f = rel_facts[k];
        const ValueId* row = instance.row(f);
        const uint64_t h = ProjectHash(row, p.lhs, p.lhs_seed);
        size_t i = h & mask;
        uint32_t gid;
        while (true) {
          const uint32_t s = slots[i];
          if (s == UINT32_MAX) {
            gid = static_cast<uint32_t>(groups.size());
            slots[i] = gid;
            groups.push_back(LhsGroup{h, f, 1, 0});
            break;
          }
          if (groups[s].hash == h &&
              RowsEqualOn(row, instance.row(groups[s].rep), p.lhs)) {
            gid = s;
            ++groups[s].count;
            break;
          }
          i = (i + 1) & mask;
        }
        group_of[k] = gid;
      }
      // Pass 2: counting sort the facts into per-bucket runs of one
      // shared arena (stable: insertion order within a bucket).
      uint32_t offset = 0;
      cursor.resize(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        groups[g].begin = offset;
        cursor[g] = offset;
        offset += groups[g].count;
      }
      order.resize(n);
      for (size_t k = 0; k < n; ++k) {
        order[cursor[group_of[k]]++] = rel_facts[k];
      }
      // Pass 3: within each bucket, classify members into rhs classes
      // by linear scan against class representatives, then emit one
      // pair per cross-class member pair.
      for (const LhsGroup& grp : groups) {
        if (grp.count < 2) {
          continue;
        }
        sub_reps.clear();
        sub_of.resize(grp.count);
        for (uint32_t m = 0; m < grp.count; ++m) {
          const FactId f = order[grp.begin + m];
          const ValueId* row = instance.row(f);
          uint32_t sid = UINT32_MAX;
          for (uint32_t s = 0; s < sub_reps.size(); ++s) {
            if (RowsEqualOn(row, instance.row(sub_reps[s]), p.rhs)) {
              sid = s;
              break;
            }
          }
          if (sid == UINT32_MAX) {
            sid = static_cast<uint32_t>(sub_reps.size());
            sub_reps.push_back(f);
          }
          sub_of[m] = sid;
        }
        if (sub_reps.size() < 2) {
          continue;
        }
        for (uint32_t i = 0; i < grp.count; ++i) {
          for (uint32_t j = i + 1; j < grp.count; ++j) {
            if (sub_of[i] != sub_of[j]) {
              const FactId f = order[grp.begin + i];
              const FactId g = order[grp.begin + j];
              out.emplace_back(std::min(f, g), std::max(f, g));
            }
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<std::pair<FactId, FactId>> AllConflictPairsFlat(
    const Instance& instance) {
  std::vector<std::pair<FactId, FactId>> out;
  CollectFlatPairs(instance, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ConflictGraph::ConflictGraph(const Instance& instance)
    : instance_(&instance) {
  const size_t n = instance.num_facts();
  edges_ = AllConflictPairsFlat(instance);

  // Derive adjacency from the sorted unique edge list.  Processing
  // lexicographically sorted (f, g) pairs appends to each adjacency
  // row in ascending order: row x first receives the f's of pairs
  // (f, x) — ascending, all below x — then the g's of pairs (x, g).
  std::vector<uint32_t> degree(n, 0);
  for (const auto& [f, g] : edges_) {
    ++degree[f];
    ++degree[g];
  }
  adjacency_.assign(n, {});
  for (FactId f = 0; f < n; ++f) {
    adjacency_[f].reserve(degree[f]);
  }
  for (const auto& [f, g] : edges_) {
    adjacency_[f].push_back(g);
    adjacency_[g].push_back(f);
  }
}

void ConflictGraph::ResizeUniverse(size_t num_facts) {
  PREFREP_CHECK_MSG(num_facts >= adjacency_.size(),
                    "the conflict-graph universe cannot shrink");
  adjacency_.resize(num_facts);
}

void ConflictGraph::AddConflictEdges(FactId f,
                                     const std::vector<FactId>& neighbors) {
  PREFREP_CHECK_MSG(f < adjacency_.size(), "fact id out of range");
  for (FactId g : neighbors) {
    PREFREP_CHECK_MSG(g < adjacency_.size() && g != f,
                      "bad conflict neighbor");
    std::vector<FactId>& adj_f = adjacency_[f];
    auto pos_f = std::lower_bound(adj_f.begin(), adj_f.end(), g);
    PREFREP_CHECK_MSG(pos_f == adj_f.end() || *pos_f != g,
                      "conflict edge inserted twice");
    adj_f.insert(pos_f, g);
    std::vector<FactId>& adj_g = adjacency_[g];
    adj_g.insert(std::lower_bound(adj_g.begin(), adj_g.end(), f), f);
    std::pair<FactId, FactId> edge{std::min(f, g), std::max(f, g)};
    edges_.insert(std::lower_bound(edges_.begin(), edges_.end(), edge),
                  edge);
  }
}

void ConflictGraph::RemoveIncidentEdges(FactId f) {
  PREFREP_CHECK_MSG(f < adjacency_.size(), "fact id out of range");
  for (FactId g : adjacency_[f]) {
    std::vector<FactId>& adj_g = adjacency_[g];
    adj_g.erase(std::remove(adj_g.begin(), adj_g.end(), f), adj_g.end());
  }
  adjacency_[f].clear();
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [f](const std::pair<FactId, FactId>& e) {
                                return e.first == f || e.second == f;
                              }),
               edges_.end());
}

DynamicBitset ConflictGraph::NeighborSet(FactId f) const {
  DynamicBitset out(adjacency_.size());
  for (FactId g : neighbors(f)) {
    out.set(g);
  }
  return out;
}

bool ConflictGraph::ConflictsWithSet(FactId f,
                                     const DynamicBitset& sub) const {
  for (FactId g : neighbors(f)) {
    if (sub.test(g)) {
      return true;
    }
  }
  return false;
}

std::vector<FactId> ConflictGraph::ConflictsInSet(
    FactId f, const DynamicBitset& sub) const {
  std::vector<FactId> out;
  for (FactId g : neighbors(f)) {
    if (sub.test(g)) {
      out.push_back(g);
    }
  }
  return out;
}

}  // namespace prefrep
