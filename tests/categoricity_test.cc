// The categoricity fast path's proof of equivalence: a differential
// battery pitting the pre-pass CQA route against the forced enumeration
// route (byte-identical answers required, across serial/parallel ×
// cache on/off × governed/ungoverned), a definitional cross-check of
// the per-block decision against exhaustively enumerated optimal
// block-repairs on every block of at most 12 facts, memo
// cost-not-outcome checks, and an audit death test proving the
// PREFREP_AUDIT hook really re-verifies verdicts at runtime.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "cache/block_cache.h"
#include "classify/categoricity.h"
#include "gen/categorical_workload.h"
#include "gen/random_instance.h"
#include "gen/running_example.h"
#include "query/consistent_answers.h"
#include "repair/audit.h"
#include "repair/block_solver.h"
#include "repair/exhaustive.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::ProblemSpec;

constexpr RepairSemantics kSemantics[] = {RepairSemantics::kGlobal,
                                          RepairSemantics::kPareto,
                                          RepairSemantics::kCompletion};

constexpr AnswerSemantics kAnswerSemantics[] = {AnswerSemantics::kGlobal,
                                                AnswerSemantics::kPareto,
                                                AnswerSemantics::kCompletion};

PreferredRepairProblem RandomProblem(uint64_t seed, double priority_density) {
  Schema schema = Schema::SingleRelation(
      "R", 2, {FD(AttrSet{1}, AttrSet{2})});
  RandomProblemOptions opts;
  opts.facts_per_relation = 10;
  opts.domain_size = 3;
  opts.priority_density = priority_density;
  opts.seed = seed;
  return GenerateRandomProblem(schema, opts);
}

// One battery configuration: thread count, cache, budget.
struct Config {
  size_t threads = 1;
  bool cache = false;
  ResourceBudget budget;
  std::string name;
};

std::vector<Config> Configs() {
  std::vector<Config> out;
  ResourceBudget unlimited;
  ResourceBudget governed;
  governed.max_nodes = 200000;  // generous: fires only on pathologies
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (bool cache : {false, true}) {
      for (bool armed : {false, true}) {
        Config c;
        c.threads = threads;
        c.cache = cache;
        c.budget = armed ? governed : unlimited;
        c.name = "threads=" + std::to_string(threads) +
                 " cache=" + std::to_string(cache) +
                 " governed=" + std::to_string(armed);
        out.push_back(c);
      }
    }
  }
  return out;
}

// Runs one CQA query both ways under `config` and requires the results
// to match byte for byte (answers, Trileans and statuses alike).  Each
// route gets its own fresh governor so neither can starve the other.
void ExpectPathsAgree(const PreferredRepairProblem& p,
                      const ConjunctiveQuery& query, const Config& config,
                      const std::string& what) {
  std::optional<BlockSolveCache> cache;
  if (config.cache) {
    cache.emplace(256);
  }
  for (AnswerSemantics sem : kAnswerSemantics) {
    auto run = [&](bool force) {
      ProblemContext ctx(*p.instance, *p.priority);
      ctx.set_parallelism(config.threads);
      if (cache.has_value()) {
        ctx.set_block_cache(&*cache);
      }
      ResourceGovernor governor(config.budget);
      if (!config.budget.Unlimited()) {
        ctx.set_governor(&governor);
      }
      CqaOptions options;
      options.force_enumeration = force;
      return ConsistentAnswersBounded(ctx, query, sem, nullptr, options);
    };
    auto fast = run(false);
    auto slow = run(true);
    const std::string label =
        what + " " + config.name + " sem=" + std::to_string(int(sem));
    ASSERT_EQ(fast.ok(), slow.ok()) << label;
    if (fast.ok()) {
      EXPECT_EQ(*fast, *slow) << label;
    } else {
      EXPECT_EQ(fast.status().code(), slow.status().code()) << label;
    }
    // Boolean probes must agree too (certain and possible).
    auto run_bool = [&](bool force, bool certain) {
      ProblemContext ctx(*p.instance, *p.priority);
      ctx.set_parallelism(config.threads);
      if (cache.has_value()) {
        ctx.set_block_cache(&*cache);
      }
      ResourceGovernor governor(config.budget);
      if (!config.budget.Unlimited()) {
        ctx.set_governor(&governor);
      }
      CqaOptions options;
      options.force_enumeration = force;
      return certain
                 ? CertainlyTrueBounded(ctx, query, sem, nullptr, options)
                 : PossiblyTrueBounded(ctx, query, sem, nullptr, options);
    };
    EXPECT_EQ(run_bool(false, true), run_bool(true, true)) << label;
    EXPECT_EQ(run_bool(false, false), run_bool(true, false)) << label;
  }
}

TEST(CategoricityDecisionTest, CategoricalWorkloadIsCertified) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 3;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  ProblemContext ctx(*p.instance, *p.priority);
  for (RepairSemantics sem : kSemantics) {
    CategoricityResult result = DecideCategoricity(ctx, sem);
    ASSERT_EQ(result.verdict, Categoricity::kCategorical)
        << result.unknown_reason;
    // The generator's greedy-by-id J is the unique optimal repair.
    EXPECT_EQ(result.repair, p.j);
  }
}

TEST(CategoricityDecisionTest, NearMissBreaksExactlyTheLastBlock) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 3;
  opts.near_miss = true;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  ProblemContext ctx(*p.instance, *p.priority);
  for (RepairSemantics sem : kSemantics) {
    CategoricityResult result = DecideCategoricity(ctx, sem);
    EXPECT_EQ(result.verdict, Categoricity::kAmbiguous);
    EXPECT_EQ(result.ambiguous_block, ctx.blocks().num_blocks() - 1);
  }
  // Block-level: every block but the last is unique, the last is not.
  for (size_t i = 0; i < ctx.blocks().num_blocks(); ++i) {
    BlockCategoricity bc =
        DecideBlockCategoricity(ctx, ctx.blocks().block(i),
                                RepairSemantics::kGlobal);
    if (i + 1 < ctx.blocks().num_blocks()) {
      EXPECT_EQ(bc.unique, Trilean::kTrue) << "block " << i;
      EXPECT_FALSE(bc.exponential) << "block " << i;
    } else {
      EXPECT_EQ(bc.unique, Trilean::kFalse) << "block " << i;
      // The stripped block has no priority edges at all, which the
      // polynomial ambiguity tier refutes without enumeration.
      EXPECT_FALSE(bc.exponential) << "block " << i;
    }
  }
}

TEST(CategoricityDecisionTest, CrossBlockPriorityIsUnknownWithoutWork) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  // Two separate blocks; priority crosses them.
  spec.facts = {"a1: k, v1", "a2: k, v2", "b1: m, w1", "b2: m, w2"};
  spec.priorities = {"a1 > b1"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ProblemContext ctx(*p.instance, *p.priority);
  ASSERT_FALSE(ctx.priority_block_local());
  CategoricityResult result =
      DecideCategoricity(ctx, RepairSemantics::kGlobal);
  EXPECT_EQ(result.verdict, Categoricity::kUnknown);
  EXPECT_FALSE(result.unknown_reason.empty());
}

// (b) of the battery: the per-block decision agrees with the
// definitional check — enumerate the block's optimal block-repairs and
// test |set| == 1 — on every block of at most 12 facts, across
// handcrafted, generated and random instances.
TEST(CategoricityDefinitionalTest, AgreesWithExhaustiveEnumeration) {
  std::vector<PreferredRepairProblem> problems;
  problems.push_back(RunningExampleProblem());
  {
    CategoricalWorkloadOptions opts;
    opts.blocks = 2;
    problems.push_back(MakeCategoricalWorkload(opts));
    opts.near_miss = true;
    problems.push_back(MakeCategoricalWorkload(opts));
  }
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    problems.push_back(RandomProblem(seed, 0.3));
    problems.push_back(RandomProblem(seed + 100, 0.9));
  }
  size_t blocks_checked = 0;
  for (size_t pi = 0; pi < problems.size(); ++pi) {
    const PreferredRepairProblem& p = problems[pi];
    ProblemContext ctx(*p.instance, *p.priority);
    const ConflictGraph& cg = ctx.conflict_graph();
    for (size_t i = 0; i < ctx.blocks().num_blocks(); ++i) {
      const Block& b = ctx.blocks().block(i);
      if (b.size() > 12) {
        continue;
      }
      ++blocks_checked;
      for (RepairSemantics sem : kSemantics) {
        BlockCategoricity bc = DecideBlockCategoricity(ctx, b, sem);
        std::vector<DynamicBitset> optimal =
            OptimalRepairsWithin(cg, *p.priority, b.facts, sem);
        ASSERT_NE(bc.unique, Trilean::kUnknown)
            << "ungoverned small block must decide (problem " << pi
            << " block " << i << ")";
        EXPECT_EQ(bc.unique == Trilean::kTrue, optimal.size() == 1)
            << "problem " << pi << " block " << i << " sem " << int(sem);
        if (bc.unique == Trilean::kTrue) {
          ASSERT_EQ(optimal.size(), 1u);
          EXPECT_EQ(bc.repair, optimal.front())
              << "problem " << pi << " block " << i;
        }
      }
    }
    // Whole-instance verdict against full optimal-repair enumeration
    // (block-local priorities only — the others are kUnknown by
    // contract, which asserts nothing).
    if (!ctx.priority_block_local() || p.instance->num_facts() > 14) {
      continue;
    }
    for (RepairSemantics sem : kSemantics) {
      CategoricityResult result = DecideCategoricity(ctx, sem);
      ASSERT_NE(result.verdict, Categoricity::kUnknown);
      std::vector<DynamicBitset> all = AllOptimalRepairs(ctx, sem);
      EXPECT_EQ(result.verdict == Categoricity::kCategorical,
                all.size() == 1)
          << "problem " << pi << " sem " << int(sem);
      if (result.verdict == Categoricity::kCategorical) {
        EXPECT_EQ(result.repair, all.front()) << "problem " << pi;
      }
    }
  }
  EXPECT_GE(blocks_checked, 10u) << "battery lost its coverage";
}

// (a) of the battery: byte-identical CQA answers with the pre-pass on
// and off, on categorical, near-miss and random instances, across
// serial/parallel × cache on/off × governed/ungoverned.
TEST(CategoricityDifferentialTest, FastAndEnumerationPathsAgree) {
  auto q_full = ConjunctiveQuery::Parse("Q(x, y, z) :- R1(x, y, z)");
  ASSERT_TRUE(q_full.ok());
  auto q_bool = ConjunctiveQuery::Parse("Q() :- R1(x, y, z)");
  ASSERT_TRUE(q_bool.ok());
  for (bool near_miss : {false, true}) {
    CategoricalWorkloadOptions opts;
    opts.blocks = 2;
    opts.near_miss = near_miss;
    PreferredRepairProblem p = MakeCategoricalWorkload(opts);
    for (const Config& config : Configs()) {
      ExpectPathsAgree(p, *q_full, config,
                       near_miss ? "near-miss" : "categorical");
      ExpectPathsAgree(p, *q_bool, config,
                       near_miss ? "near-miss-bool" : "categorical-bool");
    }
  }
  auto q_rand = ConjunctiveQuery::Parse("Q(x) :- R(x, y)");
  ASSERT_TRUE(q_rand.ok());
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PreferredRepairProblem p = RandomProblem(seed, 0.6);
    for (const Config& config : Configs()) {
      ExpectPathsAgree(p, *q_rand, config,
                       "random seed=" + std::to_string(seed));
    }
  }
}

// Starved budgets on a categorical instance: the pre-pass costs a
// handful of checkpoints, the enumeration thousands, so between the two
// there is a band of budgets where only the fast route completes — the
// point of the fast path.  The invariants are (1) the fast route never
// reports worse than the forced one, (2) any answer it does produce
// equals the ungoverned ground truth, and (3) when the fast route also
// fails (budget too tight even for the pre-pass), it fails
// byte-identically to the forced route, because the pre-pass's private
// governor leaves the caller's untouched.
TEST(CategoricityDifferentialTest, StarvedBudgetNeverDegradesWorse) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 2;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  auto query = ConjunctiveQuery::Parse("Q(x, y, z) :- R1(x, y, z)");
  ASSERT_TRUE(query.ok());
  for (AnswerSemantics sem : kAnswerSemantics) {
    auto truth = [&] {
      ProblemContext ctx(*p.instance, *p.priority);
      CqaOptions options;
      options.force_enumeration = true;
      return ConsistentAnswersBounded(ctx, *query, sem, nullptr, options);
    }();
    ASSERT_TRUE(truth.ok());
    for (uint64_t max_nodes : {uint64_t{1}, uint64_t{5}, uint64_t{25}}) {
      auto run = [&](bool force) {
        ProblemContext ctx(*p.instance, *p.priority);
        ResourceBudget budget;
        budget.max_nodes = max_nodes;
        ResourceGovernor governor(budget);
        ctx.set_governor(&governor);
        CqaOptions options;
        options.force_enumeration = force;
        return ConsistentAnswersBounded(ctx, *query, sem, nullptr, options);
      };
      auto fast = run(false);
      auto slow = run(true);
      const std::string label = "nodes=" + std::to_string(max_nodes) +
                                " sem=" + std::to_string(int(sem));
      if (fast.ok()) {
        EXPECT_EQ(*fast, *truth) << label;  // never a wrong answer
      } else {
        // Identical degradation: the pre-pass left the caller's
        // governor untouched, so the fallback is the seed path.
        ASSERT_FALSE(slow.ok()) << label;
        EXPECT_EQ(fast.status().code(), slow.status().code()) << label;
      }
      EXPECT_TRUE(fast.ok() || !slow.ok())
          << label << ": the fast route reported worse than the forced one";
    }
  }
}

// Block-admission starvation is the one asymmetry, and it is one-sided
// by design: the enumeration path must dive into each block (refused at
// max_block), while the tier-1 categoricity decision is polynomial — no
// dive, nothing to refuse.  The fast route may therefore ANSWER where
// the seed route reports unknown; when it does, its answer must equal
// the ungoverned ground truth.  It must never report a worse or
// different answer.
TEST(CategoricityDifferentialTest, BlockStarvationDegradesNoWorse) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 2;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  auto query = ConjunctiveQuery::Parse("Q(x, y, z) :- R1(x, y, z)");
  ASSERT_TRUE(query.ok());
  ResourceBudget tiny;
  tiny.max_block = 2;
  auto run = [&](bool force, bool governed) {
    ProblemContext ctx(*p.instance, *p.priority);
    ResourceGovernor governor(tiny);
    if (governed) {
      ctx.set_governor(&governor);
    }
    CqaOptions options;
    options.force_enumeration = force;
    return ConsistentAnswersBounded(ctx, *query, AnswerSemantics::kGlobal,
                                    nullptr, options);
  };
  auto truth = run(/*force=*/true, /*governed=*/false);
  ASSERT_TRUE(truth.ok());
  auto slow = run(/*force=*/true, /*governed=*/true);
  EXPECT_FALSE(slow.ok()) << "max_block=2 must refuse the enumeration";
  auto fast = run(/*force=*/false, /*governed=*/true);
  ASSERT_TRUE(fast.ok())
      << "the polynomial pre-pass is not subject to block admission";
  EXPECT_EQ(*fast, *truth);
}

TEST(CategoricityPathTest, PathReportsWhichRouteRan) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 2;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  auto query = ConjunctiveQuery::Parse("Q() :- R1(x, y, z)");
  ASSERT_TRUE(query.ok());
  ProblemContext ctx(*p.instance, *p.priority);
  CqaPath path = CqaPath::kEnumeration;
  CqaOptions options;
  options.path = &path;
  (void)CertainlyTrueBounded(ctx, *query, AnswerSemantics::kGlobal, nullptr,
                             options);
  EXPECT_EQ(path, CqaPath::kCategorical);
  options.force_enumeration = true;
  (void)CertainlyTrueBounded(ctx, *query, AnswerSemantics::kGlobal, nullptr,
                             options);
  EXPECT_EQ(path, CqaPath::kEnumeration);
  options.force_enumeration = false;
  // kAllRepairs never takes the pre-pass.
  (void)CertainlyTrueBounded(ctx, *query, AnswerSemantics::kAllRepairs,
                             nullptr, options);
  EXPECT_EQ(path, CqaPath::kEnumeration);
  // Near-miss: ambiguous, so the fast route declines.
  opts.near_miss = true;
  PreferredRepairProblem miss = MakeCategoricalWorkload(opts);
  ProblemContext miss_ctx(*miss.instance, *miss.priority);
  (void)CertainlyTrueBounded(miss_ctx, *query, AnswerSemantics::kGlobal,
                             nullptr, options);
  EXPECT_EQ(path, CqaPath::kEnumeration);
  EXPECT_STREQ(CqaPathName(CqaPath::kCategorical), "categorical");
  EXPECT_STREQ(CqaPathName(CqaPath::kEnumeration), "enumeration");
}

TEST(CategoricityMemoTest, MemoChangesCostNotOutcome) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 3;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  ProblemContext ctx(*p.instance, *p.priority);
  CategoricityMemo memo;
  CategoricityResult fresh =
      DecideCategoricity(ctx, RepairSemantics::kGlobal, &memo);
  EXPECT_EQ(memo.size(), ctx.blocks().num_blocks());
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.misses(), ctx.blocks().num_blocks());
  CategoricityResult replay =
      DecideCategoricity(ctx, RepairSemantics::kGlobal, &memo);
  EXPECT_EQ(memo.hits(), ctx.blocks().num_blocks());
  EXPECT_EQ(memo.misses(), ctx.blocks().num_blocks());
  EXPECT_EQ(replay.verdict, fresh.verdict);
  EXPECT_EQ(replay.repair, fresh.repair);
  CategoricityResult bare = DecideCategoricity(ctx, RepairSemantics::kGlobal);
  EXPECT_EQ(bare.verdict, fresh.verdict);
  EXPECT_EQ(bare.repair, fresh.repair);
  // Per-semantics keying: a different semantics misses.
  (void)DecideCategoricity(ctx, RepairSemantics::kPareto, &memo);
  EXPECT_EQ(memo.size(), 2 * ctx.blocks().num_blocks());
  // Invalidation drops exactly the keyed block.
  memo.Invalidate(ctx.blocks().block(0).fact_list.front());
  EXPECT_EQ(memo.size(), 2 * (ctx.blocks().num_blocks() - 1));
}

TEST(CategoricityMemoTest, GovernedReplayMatchesFreshDecision) {
  // Exponential verdicts must replay only when a fresh solve under the
  // requesting governor would also have completed: a node budget below
  // the recorded cost must refuse the entry and re-decide (here: fail
  // identically to a memo-less run).
  CategoricalWorkloadOptions opts;
  opts.blocks = 2;
  opts.near_miss = true;  // the last block decides via enumeration
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  ProblemContext ctx(*p.instance, *p.priority);
  CategoricityMemo memo;
  // Warm the memo ungoverned... entries carry nodes_valid = false.
  (void)DecideCategoricity(ctx, RepairSemantics::kGlobal, &memo);
  ASSERT_GT(memo.size(), 0u);
  for (uint64_t max_nodes : {uint64_t{1}, uint64_t{20}, uint64_t{100000}}) {
    ResourceBudget budget;
    budget.max_nodes = max_nodes;
    auto run = [&](CategoricityMemo* m) {
      ResourceGovernor governor(budget);
      ProblemContext governed(*p.instance, *p.priority);
      governed.set_governor(&governor);
      return DecideCategoricity(governed, RepairSemantics::kGlobal, m);
    };
    CategoricityResult with_memo = run(&memo);
    CategoricityResult without = run(nullptr);
    EXPECT_EQ(with_memo.verdict, without.verdict)
        << "max_nodes=" << max_nodes;
    if (with_memo.verdict == Categoricity::kCategorical) {
      EXPECT_EQ(with_memo.repair, without.repair);
    }
  }
}

// (c) of the battery: with fault injection flipping a block verdict,
// the PREFREP_AUDIT hook must abort the process; without it, the same
// decision passes.  The workload is pure tier-1 (total priority), so
// the only audited verdict between the flip and the crash is the
// categoricity one.
TEST(CategoricityAuditDeathTest, ForcedWrongVerdictIsCaught) {
  if (!audit::Enabled()) {
    GTEST_SKIP() << "PREFREP_AUDIT is off; audit hooks compile to no-ops";
  }
  CategoricalWorkloadOptions opts;
  opts.blocks = 2;
  opts.cliques = 2;
  opts.clique_size = 3;  // 6-fact blocks: within kMaxVerdictBlock
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  ProblemContext ctx(*p.instance, *p.priority);
  EXPECT_DEATH(
      {
        audit::internal::ForceWrongVerdictForTesting(true);
        (void)DecideCategoricity(ctx, RepairSemantics::kGlobal);
      },
      "audit");
  audit::internal::ForceWrongVerdictForTesting(false);
}

TEST(CategoricityAuditDeathTest, UnforcedVerdictPassesTheAudit) {
  if (!audit::Enabled()) {
    GTEST_SKIP() << "PREFREP_AUDIT is off; audit hooks compile to no-ops";
  }
  CategoricalWorkloadOptions opts;
  opts.blocks = 2;
  opts.cliques = 2;
  opts.clique_size = 3;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  ProblemContext ctx(*p.instance, *p.priority);
  CategoricityResult result =
      DecideCategoricity(ctx, RepairSemantics::kGlobal);
  EXPECT_EQ(result.verdict, Categoricity::kCategorical);
}

}  // namespace
}  // namespace prefrep
