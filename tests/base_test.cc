// Tests for the base utilities: Status/Result, DynamicBitset, Rng,
// string helpers and hashing.

#include <gtest/gtest.h>

#include <set>

#include "base/dynamic_bitset.h"
#include "base/random.h"
#include "base/status.h"
#include "base/string_util.h"

namespace prefrep {
namespace {

TEST(StatusTest, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::InvalidArgument("bad fd");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad fd");
}

TEST(StatusTest, ResultValueAndError) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(7), 42);

  Result<int> bad = Status::NotFound("missing");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(BitsetTest, SetTestCount) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_TRUE(b.test(64));
  EXPECT_FALSE(b.test(63));
  b.reset(64);
  EXPECT_EQ(b.count(), 2u);
}

TEST(BitsetTest, SetAllRespectsUniverse) {
  DynamicBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  EXPECT_EQ(b.ToVector().back(), 69u);
}

TEST(BitsetTest, Algebra) {
  DynamicBitset a(100), b(100);
  a.set(1);
  a.set(50);
  a.set(99);
  b.set(50);
  b.set(2);
  EXPECT_EQ((a & b).ToVector(), std::vector<size_t>{50});
  EXPECT_EQ((a | b).count(), 4u);
  EXPECT_EQ((a - b).ToVector(), (std::vector<size_t>{1, 99}));
  EXPECT_TRUE((a & b).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_FALSE(a.IsDisjointFrom(b));
  b.reset(50);
  EXPECT_TRUE(a.IsDisjointFrom(b));
}

TEST(BitsetTest, ForEachOrderAndFindFirst) {
  DynamicBitset b(200);
  b.set(150);
  b.set(3);
  b.set(64);
  EXPECT_EQ(b.ToVector(), (std::vector<size_t>{3, 64, 150}));
  EXPECT_EQ(b.FindFirst(), 3u);
  DynamicBitset empty(10);
  EXPECT_EQ(empty.FindFirst(), 10u);
}

TEST(BitsetTest, EqualityAndHash) {
  DynamicBitset a(65), b(65);
  a.set(64);
  EXPECT_NE(a, b);
  b.set(64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.HashValue(), b.HashValue());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundedIsInRangeAndCoversValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(17);
  std::vector<size_t> s = rng.Sample(10, 4);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (size_t x : s) {
    EXPECT_LT(x, 10u);
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(3);
  ZipfTable zipf(100, 1.2);
  size_t low = 0;
  for (int i = 0; i < 2000; ++i) {
    if (zipf.Sample(&rng) < 10) {
      ++low;
    }
  }
  EXPECT_GT(low, 1000u);  // heavy head
}

TEST(StringUtilTest, SplitJoinTrim) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplitTrimmed(" a , b ,, c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrJoin({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(StripAsciiWhitespace("  hi\t"), "hi");
  EXPECT_TRUE(StartsWith("relation R 2", "relation "));
  EXPECT_FALSE(StartsWith("rel", "relation"));
}

TEST(StringUtilTest, ParseUint) {
  EXPECT_EQ(ParseUint("0"), 0u);
  EXPECT_EQ(ParseUint("12345"), 12345u);
  EXPECT_FALSE(ParseUint("").has_value());
  EXPECT_FALSE(ParseUint("-3").has_value());
  EXPECT_FALSE(ParseUint("1a").has_value());
  EXPECT_FALSE(ParseUint("99999999999999999999999").has_value());
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%zu", size_t{42}), "42");
}

}  // namespace
}  // namespace prefrep
