// Copyright (c) prefrep contributors.
// Clang Thread Safety Analysis annotations and the annotated locking
// primitives built on them: Mutex, MutexLock, CondVar.
//
// The parallel solving stack (base/thread_pool.h,
// repair/parallel_solver.h, cache/block_cache.h) upholds its locking
// discipline on every path, not just the paths TSAN happens to
// exercise.  These macros move that discipline into the compiler: a
// field declared PREFREP_GUARDED_BY(mu) cannot be touched without
// holding mu, a function declared PREFREP_REQUIRES(mu) cannot be called
// without it, and the `tsa` CMake preset turns any violation into a
// build error (-Wthread-safety -Werror).  Under compilers without the
// analysis (GCC) the macros expand to nothing and the annotated types
// behave exactly like their std counterparts.
//
// Discipline (enforced by tools/check_prefrep.py, raw-concurrency
// check): outside src/base/, concurrent code uses Mutex / MutexLock /
// CondVar from this header and spawns work through base/thread_pool.h —
// never raw std::mutex, std::lock_guard, std::condition_variable or
// std::thread.  Raw primitives are invisible to the analysis, so one
// raw lock un-verifies every invariant the annotations state.

#ifndef PREFREP_BASE_THREAD_ANNOTATIONS_H_
#define PREFREP_BASE_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#include "base/macros.h"

// ---------------------------------------------------------------------
// Attribute macros.  Names follow the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with the
// PREFREP_ prefix; each expands to the underlying attribute only when
// the compiler implements it.
// ---------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define PREFREP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PREFREP_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a data member readable/writable only while holding `x`.
#define PREFREP_GUARDED_BY(x) PREFREP_THREAD_ANNOTATION_(guarded_by(x))

/// Declares a pointer member whose *pointee* is guarded by `x`.
#define PREFREP_PT_GUARDED_BY(x) PREFREP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that callers must hold the given capabilities.
#define PREFREP_REQUIRES(...) \
  PREFREP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the given capabilities
/// (deadlock prevention for functions that acquire them internally).
#define PREFREP_EXCLUDES(...) \
  PREFREP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (a lock operation).
#define PREFREP_ACQUIRE(...) \
  PREFREP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (an unlock operation).
#define PREFREP_RELEASE(...) \
  PREFREP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; `b` is the success value.
#define PREFREP_TRY_ACQUIRE(...) \
  PREFREP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Marks a type as a capability ("mutex" in diagnostics).
#define PREFREP_CAPABILITY(x) PREFREP_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose lifetime equals a critical section.
#define PREFREP_SCOPED_CAPABILITY \
  PREFREP_THREAD_ANNOTATION_(scoped_lockable)

/// Function returns a reference to the given capability.
#define PREFREP_RETURN_CAPABILITY(x) \
  PREFREP_THREAD_ANNOTATION_(lock_returned(x))

/// Lock-ordering declaration: this capability must be acquired after /
/// before the listed ones.
#define PREFREP_ACQUIRED_AFTER(...) \
  PREFREP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define PREFREP_ACQUIRED_BEFORE(...) \
  PREFREP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Escape hatch — disables the analysis for one function.  Every use
/// must carry a justification comment (suppression discipline applies).
#define PREFREP_NO_THREAD_SAFETY_ANALYSIS \
  PREFREP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace prefrep {

/// An annotated exclusive mutex over std::mutex.  Lowercase
/// lock()/unlock()/try_lock() keep it a standard Lockable, so it
/// composes with std facilities (CondVar below waits on it directly);
/// the annotations make every acquisition visible to the analysis.
class PREFREP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  PREFREP_DISALLOW_COPY(Mutex);

  void lock() PREFREP_ACQUIRE() { mu_.lock(); }
  void unlock() PREFREP_RELEASE() { mu_.unlock(); }
  bool try_lock() PREFREP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over a Mutex; the only way the library takes a
/// lock (bare Mutex::lock() calls do not unwind on early return).
class PREFREP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PREFREP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PREFREP_RELEASE() { mu_.unlock(); }
  PREFREP_DISALLOW_COPY(MutexLock);

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex.  Wait() declares
/// the mutex requirement, so a caller that forgot to take the lock is a
/// compile error under the analysis — not a lost wakeup at runtime.
class CondVar {
 public:
  CondVar() = default;
  PREFREP_DISALLOW_COPY(CondVar);

  /// Atomically releases `mu`, blocks until notified, and reacquires
  /// `mu` before returning (std::condition_variable_any semantics; the
  /// capability is held again on return, which is what the annotation
  /// states).
  void Wait(Mutex& mu) PREFREP_REQUIRES(mu) { cv_.wait(mu); }

  /// Predicate loop: returns once `pred()` holds, with `mu` held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) PREFREP_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace prefrep

#endif  // PREFREP_BASE_THREAD_ANNOTATIONS_H_
