// Copyright (c) prefrep contributors.
// Summary statistics of a conflict graph: how contested an instance is,
// how its conflicts cluster, and a cheap upper bound on the repair
// count — useful for deciding whether exact enumeration is feasible
// before attempting it.

#ifndef PREFREP_CONFLICTS_STATS_H_
#define PREFREP_CONFLICTS_STATS_H_

#include <string>
#include <utility>
#include <vector>

#include "conflicts/conflicts.h"

namespace prefrep {

/// Aggregate statistics of one conflict graph.
struct ConflictStats {
  size_t num_facts = 0;
  size_t num_conflicts = 0;       ///< conflicting pairs
  size_t conflicting_facts = 0;   ///< facts with ≥ 1 conflict
  size_t max_degree = 0;
  /// Connected components of the conflict graph *excluding* isolated
  /// facts (every isolated fact belongs to every repair).
  size_t num_components = 0;
  size_t largest_component = 0;
  /// ∏ over components of (#maximal independent sets upper bound):
  /// capped at 2^63; exact per-component counts are exponential to get,
  /// so this uses the Moon–Moser bound 3^(n/3) per component.
  double log2_repair_upper_bound = 0.0;
  /// Facts with no conflicts at all (members of every repair).
  size_t free_facts = 0;
  /// Block-size distribution: (size, number of blocks of that size),
  /// ascending by size.  Blocks are the ≥ 2-fact components
  /// (conflicts/blocks.h); their sizes govern the cost of the per-block
  /// exponential fallbacks (Σ 2^size) and of repair counting.
  std::vector<std::pair<size_t, size_t>> block_size_histogram;

  std::string ToString() const;
};

/// Computes the statistics in O(facts + conflicts).
ConflictStats ComputeConflictStats(const ConflictGraph& cg);

/// Connected components of the conflict graph: for each fact its
/// component id (isolated facts get their own singleton components).
/// Exposed for tests and for per-component processing.
std::vector<size_t> ConflictComponents(const ConflictGraph& cg,
                                       size_t* num_components);

}  // namespace prefrep

#endif  // PREFREP_CONFLICTS_STATS_H_
