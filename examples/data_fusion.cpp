// Data fusion across sources of different reliability — the paper's
// first motivating scenario ("one source is regarded to be more
// reliable than another").
//
// We integrate customer records from three sources (crm > billing >
// legacy import) into one Customer(id, email, city) relation with the
// key id → {email, city}.  Conflicting facts are prioritized by source
// reliability; globally-optimal repairs are exactly the "trust the most
// reliable source, fall back when it is silent" fusions, and the demo
// shows repair checking both accepting and rejecting fusions.
//
// Run: ./build/examples/data_fusion

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "conflicts/conflicts.h"
#include "model/problem.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"

using namespace prefrep;

namespace {

struct SourcedFact {
  std::string source;  // "crm", "billing", "legacy"
  std::string id, email, city;
};

}  // namespace

int main() {
  Schema schema;
  RelId customer = schema.MustAddRelation("Customer", 3);
  // id determines the whole record: a primary key.
  schema.MustAddFd(customer, FD(AttrSet{1}, AttrSet{1, 2, 3}));

  std::vector<SourcedFact> feed = {
      {"legacy", "c1", "ada@old-mail.org", "Zurich"},
      {"billing", "c1", "ada@pay.example", "Zurich"},
      {"crm", "c1", "ada@example.com", "Bern"},
      {"legacy", "c2", "bob@old-mail.org", "Geneva"},
      {"billing", "c2", "bob@pay.example", "Lausanne"},
      {"crm", "c3", "cleo@example.com", "Basel"},
      {"legacy", "c4", "dan@old-mail.org", "Lugano"},
  };
  std::map<std::string, int> reliability = {
      {"crm", 3}, {"billing", 2}, {"legacy", 1}};

  PreferredRepairProblem problem(std::move(schema));
  Instance& inst = *problem.instance;
  std::vector<std::string> source_of;
  for (size_t i = 0; i < feed.size(); ++i) {
    const SourcedFact& f = feed[i];
    std::string label = f.source + ":" + f.id;
    inst.MustAddFact("Customer", {f.id, f.email, f.city}, label);
    source_of.push_back(f.source);
  }

  // Priority: between conflicting facts, the more reliable source wins.
  problem.InitPriority();
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    for (FactId g = 0; g < inst.num_facts(); ++g) {
      if (f != g && FactsConflict(inst, f, g) &&
          reliability[source_of[f]] > reliability[source_of[g]]) {
        problem.priority->MustAdd(f, g);
      }
    }
  }

  RepairChecker checker(inst, *problem.priority);
  std::printf("Customer feed: %zu facts, %zu conflicts, schema is %s\n\n",
              inst.num_facts(), checker.conflict_graph().num_edges(),
              checker.SchemaIsTractable() ? "tractable (single key)"
                                          : "coNP-complete");

  // Candidate fusion A: always trust the most reliable available source.
  DynamicBitset best = inst.SubinstanceByLabels(
      {"crm:c1", "billing:c2", "crm:c3", "legacy:c4"});
  // Candidate fusion B: the legacy import wherever it has a record.
  DynamicBitset legacy_first = inst.SubinstanceByLabels(
      {"legacy:c1", "legacy:c2", "crm:c3", "legacy:c4"});

  for (auto& [name, j] :
       std::vector<std::pair<std::string, DynamicBitset*>>{
           {"reliability-first", &best}, {"legacy-first", &legacy_first}}) {
    auto outcome = checker.CheckGloballyOptimal(*j);
    std::printf("fusion '%s' = %s\n", name.c_str(),
                inst.SubinstanceToString(*j).c_str());
    if (!outcome.ok()) {
      std::printf("  error: %s\n", outcome.status().ToString().c_str());
      continue;
    }
    std::printf("  globally-optimal: %s\n",
                outcome->result.optimal ? "yes" : "no");
    if (!outcome->result.optimal && outcome->result.witness.has_value()) {
      std::printf("  better fusion: %s\n",
                  inst.SubinstanceToString(
                          outcome->result.witness->improvement)
                      .c_str());
    }
  }

  // With a single key per relation, priorities define a unique optimal
  // fusion exactly when every conflict set has a top element; enumerate
  // to confirm.
  std::vector<DynamicBitset> optimal = AllOptimalRepairs(
      checker.conflict_graph(), *problem.priority, RepairSemantics::kGlobal);
  std::printf("\n%zu globally-optimal fusion(s):\n", optimal.size());
  for (const DynamicBitset& j : optimal) {
    std::printf("  %s\n", inst.SubinstanceToString(j).c_str());
  }
  return 0;
}
