#include "repair/checker.h"

#include "cache/block_cache.h"
#include "repair/audit.h"
#include "repair/block_solver.h"
#include "repair/parallel_solver.h"
#include "repair/ccp_constant_attr.h"
#include "repair/ccp_primary_key.h"
#include "repair/completion.h"
#include "repair/exhaustive.h"
#include "repair/pareto.h"
#include "repair/subinstance_ops.h"

namespace prefrep {

namespace {

void ValidateForMode(const ProblemContext& ctx, const CheckerOptions& options) {
  Status valid = ctx.priority().Validate(options.mode);
  PREFREP_CHECK_MSG(valid.ok(),
                    "priority relation invalid for the checker's mode");
}

// Completes a degradation report whose `abandoned` list was filled
// during the block loop.  `cache_before` is the caller's snapshot of
// the block-solve cache counters at call start, so the report carries
// this call's traffic (approximate under concurrent sessions, and
// excluded from the byte-identical cache-on/off contract).
void FillDegradation(const ProblemContext& ctx, size_t blocks_exact,
                     const BlockCacheStats& cache_before,
                     DegradationReport* report) {
  ResourceGovernor& governor = ctx.governor();
  report->blocks_total = ctx.blocks().num_blocks();
  report->blocks_exact = blocks_exact;
  report->blocks_abandoned = report->abandoned.size();
  report->nodes_spent = governor.nodes_spent();
  report->cause =
      governor.degraded() ? governor.CauseString() : std::string();
  if (const BlockSolveCache* cache = ctx.block_cache()) {
    const BlockCacheStats now = cache->stats();
    report->cache_hits = now.hits - cache_before.hits;
    report->cache_misses = now.misses - cache_before.misses;
  }
}

}  // namespace

RepairChecker::RepairChecker(const Instance& instance,
                             const PriorityRelation& priority,
                             CheckerOptions options)
    : owned_ctx_(std::make_unique<ProblemContext>(instance, priority)),
      ctx_(owned_ctx_.get()),
      options_(options) {
  ValidateForMode(*ctx_, options_);
  if (options_.governor != nullptr) {
    owned_ctx_->set_governor(options_.governor);
  }
  ctx_->Prime();
}

RepairChecker::RepairChecker(const ProblemContext& context,
                             CheckerOptions options)
    : ctx_(&context), options_(options) {
  PREFREP_CHECK_MSG(options_.governor == nullptr,
                    "a borrowed context is shared state: install the "
                    "governor on the context, not in CheckerOptions");
  ValidateForMode(*ctx_, options_);
  ctx_->Prime();
}

bool RepairChecker::SchemaIsTractable() const {
  return options_.mode == PriorityMode::kConflictOnly
             ? ctx_->classification().tractable
             : ctx_->ccp_classification().tractable();
}

bool RepairChecker::IsRepair(const DynamicBitset& j) const {
  return prefrep::IsRepair(ctx_->conflict_graph(), j);
}

Result<CheckOutcome> RepairChecker::CheckGloballyOptimal(
    const DynamicBitset& j) const {
  PREFREP_CHECK_MSG(j.size() == ctx_->instance().num_facts(),
                    "subinstance bitset size mismatch");
  return options_.mode == PriorityMode::kConflictOnly
             ? CheckConflictOnly(j)
             : CheckCrossConflict(j);
}

Result<CheckOutcome> RepairChecker::CheckConflictOnly(
    const DynamicBitset& j) const {
  const ConflictGraph& cg = ctx_->conflict_graph();
  const Instance& instance = ctx_->instance();
  const BlockDecomposition& blocks = ctx_->blocks();
  CheckOutcome outcome;
  outcome.result = CheckResult::Optimal();
  // An inconsistent J is no repair at all; reject before dispatch.
  if (!IsConsistent(cg, j)) {
    outcome.result = CheckResult::NotOptimalNoWitness();
    outcome.route.push_back("rejected: J is inconsistent (not a repair)");
    return outcome;
  }
  // Conflict-free facts belong to every repair; no block-restricted
  // check would notice their absence.
  const DynamicBitset missing_free = blocks.free_facts() - j;
  if (missing_free.any()) {
    FactId f = static_cast<FactId>(missing_free.FindFirst());
    DynamicBitset improvement = j;
    improvement.set(f);
    outcome.result = CheckResult::NotOptimal(
        std::move(improvement),
        "J is not maximal: " + instance.FactToString(f) +
            " has no conflicts");
    outcome.route.push_back(
        "rejected: J misses a conflict-free fact (present in every repair)");
    return outcome;
  }
  // Proposition 3.5 + block locality: route block by block, reported
  // relation by relation.  Under a governed context the loop keeps
  // going past abandoned blocks — a later (tractable or cheap) block
  // may still refute J — and reports kUnknown only when no block did.
  ResourceGovernor& governor = ctx_->governor();
  size_t blocks_exact = 0;
  std::string first_unknown_reason;
  const BlockCacheStats cache_before = ctx_->block_cache() != nullptr
                                           ? ctx_->block_cache()->stats()
                                           : BlockCacheStats{};
  // The serial iteration order is relation-grouped (it matches the
  // route lines); the parallel session merges in exactly that order.
  // Blocks of a relation the loop below will refuse (hard relation with
  // the exponential fallback disabled) are never reached serially, so
  // they are excluded from the session too.
  std::vector<size_t> session_order;
  for (RelId rel = 0; rel < instance.schema().num_relations(); ++rel) {
    if (ctx_->classification().relations[rel].kind == TractableKind::kHard &&
        !options_.allow_exponential) {
      break;
    }
    const std::vector<size_t>& rel_blocks = blocks.blocks_of_relation(rel);
    session_order.insert(session_order.end(), rel_blocks.begin(),
                         rel_blocks.end());
  }
  ParallelBlockSession<CheckResult> session(
      *ctx_, std::move(session_order),
      [&](const ProblemContext& cx, const Block& b) {
        return AuditedCheckBlock(
            DispatchBlockSolver(cx, b, PriorityMode::kConflictOnly), cx, b, j);
      },
      [](const CheckResult& r) { return r.known(); },
      [](const CheckResult& r) { return r.known() && !r.optimal; });
  for (RelId rel = 0; rel < instance.schema().num_relations(); ++rel) {
    const RelationClassification& rc = ctx_->classification().relations[rel];
    const std::string& name = instance.schema().relation_name(rel);
    const std::vector<size_t>& rel_blocks = blocks.blocks_of_relation(rel);
    // The per-block solver itself is picked by the session's dispatch
    // (identical to this classification); the switch builds the route.
    std::string route;
    switch (rc.kind) {
      case TractableKind::kSingleFd:
        route = name + ": GRepCheck1FD (" + rc.single_fd.ToString() + ")";
        break;
      case TractableKind::kTwoKeys:
        route = name + ": GRepCheck2Keys (" + rc.key1.ToString() + ", " +
                rc.key2.ToString() + ")";
        break;
      case TractableKind::kHard:
        if (!options_.allow_exponential) {
          return Status::FailedPrecondition(
              "relation '" + name +
              "' is on the coNP-complete side of Theorem 3.1 and the "
              "exponential fallback is disabled");
        }
        route = name + ": exhaustive fallback";
        break;
    }
    route += " over " + std::to_string(rel_blocks.size()) + " block(s)";
    outcome.route.push_back(std::move(route));
    for (size_t bid : rel_blocks) {
      const Block& b = blocks.block(bid);
      const uint64_t nodes_before = governor.nodes_spent();
      CheckResult result = session.Next(b);
      if (!result.known()) {
        outcome.route.back() +=
            "; abandoned block " + std::to_string(bid) + " (budget)";
        outcome.degradation.abandoned.push_back(BlockDegradation{
            bid, b.size(), governor.nodes_spent() - nodes_before,
            result.unknown_reason});
        if (first_unknown_reason.empty()) {
          first_unknown_reason = std::move(result.unknown_reason);
        }
        continue;
      }
      if (!result.optimal) {
        outcome.route.back() += "; failed at block " + std::to_string(bid);
        outcome.result = std::move(result);
        FillDegradation(*ctx_, blocks_exact, cache_before, &outcome.degradation);
        return outcome;
      }
      ++blocks_exact;
    }
  }
  FillDegradation(*ctx_, blocks_exact, cache_before, &outcome.degradation);
  if (!first_unknown_reason.empty()) {
    outcome.result = CheckResult::Unknown(std::move(first_unknown_reason));
  }
  return outcome;
}

Result<CheckOutcome> RepairChecker::CheckCrossConflict(
    const DynamicBitset& j) const {
  const ConflictGraph& cg = ctx_->conflict_graph();
  const PriorityRelation& pr = ctx_->priority();
  // A ccp priority may relate facts of different blocks (or conflict-free
  // facts); per-block dispatch is sound only when it does not.
  const bool block_local = ctx_->priority_block_local();
  CheckOutcome outcome;
  auto run_by_blocks = [&](const std::string& algorithm) {
    outcome.route.push_back(
        algorithm + " over " + std::to_string(ctx_->blocks().num_blocks()) +
        " block(s)");
    size_t failed = BlockDecomposition::kNoBlock;
    outcome.result = CheckGlobalOptimalByBlocks(
        *ctx_, j, PriorityMode::kCrossConflict, &failed,
        &outcome.degradation);
    if (failed != BlockDecomposition::kNoBlock) {
      outcome.route.back() += "; failed at block " + std::to_string(failed);
    }
    if (outcome.degradation.Degraded()) {
      outcome.route.back() +=
          "; abandoned " +
          std::to_string(outcome.degradation.blocks_abandoned) +
          " block(s) (budget)";
    }
  };
  if (ctx_->ccp_classification().primary_key_assignment) {
    if (block_local) {
      run_by_blocks("ccp primary-key algorithm (G_{J,I\\J})");
    } else {
      outcome.route.push_back(
          "ccp primary-key algorithm (G_{J,I\\J}) (cross-block priority; "
          "whole instance)");
      outcome.result = CheckGlobalOptimalCcpPrimaryKey(cg, pr, j);
      audit::CheckGlobalVerdict(cg, pr, j, outcome.result,
                                "ccp primary-key algorithm");
    }
    return outcome;
  }
  if (ctx_->ccp_classification().constant_attr_assignment) {
    if (block_local) {
      run_by_blocks("ccp constant-attribute algorithm (partition scan)");
    } else {
      outcome.route.push_back(
          "ccp constant-attribute algorithm (partition enumeration)");
      outcome.result = CheckGlobalOptimalCcpConstantAttr(cg, pr, j);
      audit::CheckGlobalVerdict(cg, pr, j, outcome.result,
                                "ccp constant-attribute algorithm");
    }
    return outcome;
  }
  if (!options_.allow_exponential) {
    return Status::FailedPrecondition(
        "schema is on the coNP-complete side of Theorem 7.1 and the "
        "exponential fallback is disabled");
  }
  if (block_local) {
    run_by_blocks("exhaustive fallback");
  } else {
    outcome.route.push_back("exhaustive fallback (whole instance)");
    ResourceGovernor& governor = ctx_->governor();
    const uint64_t nodes_before = governor.nodes_spent();
    outcome.result = ExhaustiveCheckGlobalOptimal(cg, pr, j, governor);
    if (!outcome.result.known()) {
      outcome.route.back() += "; abandoned (budget)";
      // The whole instance was one unit of work; report it as one
      // abandoned "block" spanning every fact.
      outcome.degradation.blocks_total = 1;
      outcome.degradation.blocks_abandoned = 1;
      outcome.degradation.nodes_spent = governor.nodes_spent();
      outcome.degradation.cause = governor.CauseString();
      outcome.degradation.abandoned.push_back(BlockDegradation{
          0, cg.num_facts(), governor.nodes_spent() - nodes_before,
          outcome.result.unknown_reason});
    }
  }
  return outcome;
}

CheckResult RepairChecker::CheckParetoOptimal(const DynamicBitset& j) const {
  if (!ctx_->priority_block_local()) {
    return prefrep::CheckParetoOptimal(ctx_->conflict_graph(),
                                       ctx_->priority(), j);
  }
  return CheckParetoOptimalByBlocks(*ctx_, j);
}

CheckResult RepairChecker::CheckCompletionOptimal(
    const DynamicBitset& j) const {
  PREFREP_CHECK_MSG(options_.mode == PriorityMode::kConflictOnly,
                    "completion semantics are defined for conflict-bounded "
                    "priorities only");
  return CheckCompletionOptimalByBlocks(*ctx_, j);
}

}  // namespace prefrep
