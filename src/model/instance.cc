#include "model/instance.h"

namespace prefrep {

namespace {
// Index sizing: grow at 70% load, start small (most test instances hold
// a handful of facts; hot workloads rehash a few amortized times).
constexpr size_t kInitialIndexCapacity = 16;
constexpr size_t kLoadNumerator = 7;
constexpr size_t kLoadDenominator = 10;
}  // namespace

uint64_t Instance::HashRow(RelId rel, const ValueId* values, size_t count) {
  uint64_t h = HashMix64(0x5eedfac75eedfac7ULL ^ rel);
  for (size_t i = 0; i < count; ++i) {
    h = HashMix64(h ^ values[i]);
  }
  return h;
}

Result<FactId> Instance::AddFact(RelId rel,
                                 const std::vector<std::string>& constants,
                                 std::string_view label) {
  std::vector<ValueId> values;
  values.reserve(constants.size());
  for (const std::string& c : constants) {
    values.push_back(dict_.Intern(c));
  }
  return AddFactValues(rel, std::move(values), label);
}

Result<FactId> Instance::AddFactValues(RelId rel, std::vector<ValueId> values,
                                       std::string_view label) {
  if (rel >= schema_->num_relations()) {
    return Status::OutOfRange("relation id out of range");
  }
  if (static_cast<int>(values.size()) != schema_->arity(rel)) {
    return Status::InvalidArgument(
        "fact over '" + schema_->relation_name(rel) + "' has " +
        std::to_string(values.size()) + " values, arity is " +
        std::to_string(schema_->arity(rel)));
  }
  FactId id = FindRow(rel, values.data(), values.size());
  if (id == kInvalidFactId) {  // set semantics: duplicates collapse
    PREFREP_CHECK_MSG(num_facts() < kInvalidFactId, "fact id overflow");
    id = AppendRow(rel, values.data(), values.size());
  }
  if (!label.empty()) {
    std::string key(label);
    auto existing = label_index_.find(key);
    if (existing != label_index_.end() && existing->second != id) {
      return Status::AlreadyExists("label '" + key +
                                   "' already names a different fact");
    }
    labels_[id] = key;
    label_index_.emplace(std::move(key), id);
  }
  return id;
}

FactId Instance::AppendRow(RelId rel, const ValueId* values, size_t count) {
  // Ensure index capacity BEFORE touching the directories: GrowIndex
  // reinserts exactly the facts already appended.
  if (index_slots_.empty() ||
      (num_facts() + 1) * kLoadDenominator >
          index_slots_.size() * kLoadNumerator) {
    GrowIndex();
  }
  FactId id = static_cast<FactId>(num_facts());
  std::vector<ValueId>& slab = columns_[rel];
  uint32_t slot = static_cast<uint32_t>(slab.size() / stride_[rel]);
  slab.insert(slab.end(), values, values + count);
  fact_rel_.push_back(rel);
  fact_slot_.push_back(slot);
  labels_.emplace_back();
  if (by_relation_.size() < schema_->num_relations()) {
    by_relation_.resize(schema_->num_relations());
  }
  by_relation_[rel].push_back(id);

  size_t mask = index_slots_.size() - 1;
  size_t i = HashRow(rel, values, count) & mask;
  while (index_slots_[i] != kInvalidFactId) {
    i = (i + 1) & mask;
  }
  index_slots_[i] = id;
  return id;
}

void Instance::GrowIndex() {
  size_t capacity =
      index_slots_.empty() ? kInitialIndexCapacity : index_slots_.size() * 2;
  index_slots_.assign(capacity, kInvalidFactId);
  size_t mask = capacity - 1;
  for (FactId f = 0; f < num_facts(); ++f) {
    RelId rel = fact_rel_[f];
    size_t i = HashRow(rel, row(f), stride_[rel]) & mask;
    while (index_slots_[i] != kInvalidFactId) {
      i = (i + 1) & mask;
    }
    index_slots_[i] = f;
  }
}

FactId Instance::FindRow(RelId rel, const ValueId* values,
                         size_t count) const {
  if (index_slots_.empty()) {
    return kInvalidFactId;
  }
  size_t mask = index_slots_.size() - 1;
  size_t i = HashRow(rel, values, count) & mask;
  while (true) {
    FactId f = index_slots_[i];
    if (f == kInvalidFactId) {
      return kInvalidFactId;
    }
    if (fact_rel_[f] == rel && stride_[rel] == count &&
        simd::EqualRange(row(f), values, count)) {
      return f;
    }
    i = (i + 1) & mask;
  }
}

FactId Instance::MustAddFact(std::string_view relation_name,
                             const std::vector<std::string>& constants,
                             std::string_view label) {
  RelId rel = schema_->FindRelation(relation_name);
  PREFREP_CHECK_MSG(rel != kInvalidRelId, "unknown relation in MustAddFact");
  Result<FactId> r = AddFact(rel, constants, label);
  PREFREP_CHECK_MSG(r.ok(), "MustAddFact failed");
  return *r;
}

FactId Instance::FindLabel(std::string_view label) const {
  auto it = label_index_.find(std::string(label));
  return it == label_index_.end() ? kInvalidFactId : it->second;
}

DynamicBitset Instance::SubinstanceByLabels(
    const std::vector<std::string>& labels) const {
  DynamicBitset sub(num_facts());
  for (const std::string& label : labels) {
    FactId id = FindLabel(label);
    PREFREP_CHECK_MSG(id != kInvalidFactId, "unknown fact label");
    sub.set(id);
  }
  return sub;
}

std::string Instance::FactToString(FactId id) const {
  const Fact f = fact(id);
  std::string out;
  if (!labels_[id].empty()) {
    out += labels_[id];
    out += "=";
  }
  out += schema_->relation_name(f.rel);
  out += "(";
  for (size_t i = 0; i < f.values.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += dict_.Text(f.values[i]);
  }
  out += ")";
  return out;
}

std::string Instance::SubinstanceToString(const DynamicBitset& sub) const {
  std::string out = "{";
  bool first = true;
  sub.ForEach([&](size_t id) {
    if (!first) {
      out += ", ";
    }
    first = false;
    FactId fid = static_cast<FactId>(id);
    if (!labels_[fid].empty()) {
      out += labels_[fid];
    } else {
      out += FactToString(fid);
    }
  });
  out += "}";
  return out;
}

}  // namespace prefrep
