// Cleaning inconsistencies in information extraction — the application
// that motivated preferred repairs in Fagin, Kimelfeld, Reiss and
// Vansummeren (PODS 2014), cited in the paper's introduction: rule-based
// extractors emit overlapping/contradictory annotations, and cleaning
// strategies of systems like SystemT are captured by prioritized
// repairs.
//
// Model: Mention(doc_pos, type) — each document position carries at most
// one entity type (fd 1 → 2).  Extractors disagree; priorities encode
// the cleaning policy "dictionary matches beat regex matches, longer
// rules beat shorter ones".  The globally-optimal repairs are exactly
// the cleanings the policy sanctions.
//
// Run: ./build/examples/span_cleaning

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "conflicts/conflicts.h"
#include "model/problem.h"
#include "repair/checker.h"
#include "repair/counting.h"

using namespace prefrep;

namespace {

struct Annotation {
  std::string extractor;  // "dict", "regex_long", "regex_short"
  std::string position;   // e.g. "doc1:17"
  std::string type;       // "PERSON", "ORG", ...
};

}  // namespace

int main() {
  Schema schema;
  RelId mention = schema.MustAddRelation("Mention", 2);
  schema.MustAddFd(mention, FD(AttrSet{1}, AttrSet{2}));

  // Extraction output over two documents (disagreements at doc1:17 and
  // doc2:03).
  std::vector<Annotation> annotations = {
      {"dict", "doc1:17", "PERSON"},
      {"regex_long", "doc1:17", "ORG"},
      {"regex_short", "doc1:17", "LOC"},
      {"regex_long", "doc1:42", "DATE"},
      {"regex_long", "doc2:03", "ORG"},
      {"regex_short", "doc2:03", "PERSON"},
      {"dict", "doc2:90", "LOC"},
  };
  std::map<std::string, int> strength = {
      {"dict", 3}, {"regex_long", 2}, {"regex_short", 1}};

  PreferredRepairProblem problem(std::move(schema));
  Instance& inst = *problem.instance;
  std::vector<std::string> extractor_of;
  for (const Annotation& a : annotations) {
    std::string label = a.extractor + "@" + a.position;
    inst.MustAddFact("Mention", {a.position, a.type}, label);
    extractor_of.push_back(a.extractor);
  }
  problem.InitPriority();
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    for (FactId g = 0; g < inst.num_facts(); ++g) {
      if (f != g && FactsConflict(inst, f, g) &&
          strength[extractor_of[f]] > strength[extractor_of[g]]) {
        problem.priority->MustAdd(f, g);
      }
    }
  }

  RepairChecker checker(inst, *problem.priority);
  std::printf("annotations: %zu, contradictions: %zu\n",
              inst.num_facts(), checker.conflict_graph().num_edges());

  // The policy induces a total priority on every contradiction here, so
  // the cleaning is unambiguous — the polynomial uniqueness condition
  // applies.
  auto unique = UniqueOptimalIfTotalPriority(checker.conflict_graph(),
                                             *problem.priority);
  if (unique.has_value()) {
    std::printf("policy gives an unambiguous cleaning:\n  %s\n",
                inst.SubinstanceToString(*unique).c_str());
    auto outcome = checker.CheckGloballyOptimal(*unique);
    std::printf("checker confirms optimality: %s\n",
                outcome.ok() && outcome->result.optimal ? "yes" : "no");
  } else {
    std::printf("policy leaves ambiguity (priority not total on "
                "contradictions)\n");
  }

  // An ad-hoc cleaning that keeps the *first* annotation per position —
  // what a naive pipeline might do — is rejected with a better cleaning.
  DynamicBitset naive = inst.AllFacts();
  for (FactId f = 0; f < inst.num_facts(); ++f) {
    for (FactId g : checker.conflict_graph().neighbors(f)) {
      if (g < f) {
        naive.reset(f);
      }
    }
  }
  auto outcome = checker.CheckGloballyOptimal(naive);
  std::printf("\nnaive first-wins cleaning %s\n",
              inst.SubinstanceToString(naive).c_str());
  if (outcome.ok() && !outcome->result.optimal &&
      outcome->result.witness.has_value()) {
    std::printf("rejected; policy-sanctioned cleaning: %s\n",
                inst.SubinstanceToString(outcome->result.witness->improvement)
                    .c_str());
  } else {
    std::printf("accepted (it coincides with the policy's cleaning)\n");
  }
  return 0;
}
