// Copyright (c) prefrep contributors.
// Categoricity — does the priority determine a *unique* optimal repair?
//
// Kimelfeld–Livshits–Peterfreund ("Unambiguous Prioritized Repairing of
// Databases") call a prioritizing instance *categorical* when exactly
// one repair is optimal; consistent query answering then collapses to
// evaluating the query on that single repair, because an intersection
// (or union) over a one-element repair set is the set itself.  This
// module decides categoricity per conflict block and composes the
// whole-instance verdict, three-valued under a resource budget:
//
//   * a block whose conflict pairs are totally ordered by a
//     conflict-bounded priority is categorical outright, and its unique
//     optimal block-repair is the greedy construction ([SCM]: under a
//     total priority the globally-, Pareto- and completion-optimal
//     repairs coincide and are unique) — polynomial, the fast tier;
//   * a block with conflicts but no priority edge touching any of its
//     facts is ambiguous outright: the improvement relation is empty,
//     so every block-repair is optimal and a conflict pair guarantees
//     at least two — also polynomial;
//   * any other block falls back to materializing its optimal
//     block-repair set (repair/block_solver.h) and testing |set| == 1 —
//     exponential, budget-governed, abandoned as kUnknown;
//   * the instance is categorical iff every block is (block
//     independence: optimal repairs factor as {free facts} × ∏ per-block
//     optimal block-repairs), ambiguous as soon as one block has two
//     optimal block-repairs, and unknown if a block stayed undecided
//     before any block refuted.
//
// Cross-block (non-block-local) priorities are reported kUnknown
// without work: per-block reasoning is unsound there, and deciding
// categoricity whole-instance costs as much as the enumeration the fast
// path exists to avoid.
//
// The query layer (query/consistent_answers.h) runs this as a pre-pass
// under a *private* governor derived from the caller's budget, so a
// non-categorical or unknown verdict falls back to the enumeration path
// with the caller's governor untouched — byte-identical to never having
// asked.  The serving layer (serve/session.h) memoizes per-block
// verdicts in a CategoricityMemo and invalidates them under
// insert/delete/prefer alongside its fingerprint invalidation; the memo
// follows the block-solve cache's serve discipline (docs/caching.md),
// so memoization changes cost, never outcome.

#ifndef PREFREP_CLASSIFY_CATEGORICITY_H_
#define PREFREP_CLASSIFY_CATEGORICITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "model/context.h"
#include "repair/exhaustive.h"

namespace prefrep {

/// Whole-instance categoricity verdict.
enum class Categoricity {
  kCategorical,  ///< exactly one optimal repair exists
  kAmbiguous,    ///< at least two optimal repairs exist
  kUnknown,      ///< undecided: budget fired, oversized block, or
                 ///< cross-block priority
};

/// Short human-readable name ("categorical" / "ambiguous" / "unknown").
const char* CategoricityName(Categoricity value);

/// One block's categoricity answer.
struct BlockCategoricity {
  /// kTrue: the block has exactly one optimal block-repair (in
  /// `repair`); kFalse: at least two; kUnknown: abandoned by the budget
  /// or refused admission.
  Trilean unique = Trilean::kUnknown;
  /// The unique optimal block-repair (full-universe bitset, block facts
  /// only); meaningful iff unique == Trilean::kTrue.
  DynamicBitset repair;
  /// True when the exponential tier (optimal block-repair enumeration)
  /// decided the block; false for the polynomial total-priority tier.
  bool exponential = false;
  /// Governor cause when unique == Trilean::kUnknown.
  std::string unknown_reason;
};

/// Whole-instance categoricity result.
struct CategoricityResult {
  Categoricity verdict = Categoricity::kUnknown;
  /// The unique optimal repair; meaningful iff verdict == kCategorical.
  DynamicBitset repair;
  /// Id of the first block with two optimal block-repairs (merge
  /// order); meaningful iff verdict == kAmbiguous.
  size_t ambiguous_block = SIZE_MAX;
  /// Why the verdict stayed open; meaningful iff verdict == kUnknown.
  std::string unknown_reason;
};

/// Session-resident memo of per-block categoricity verdicts, keyed by
/// (block key, semantics) where the block key is the block's smallest
/// fact id — the same key the serve layer files block state under, so
/// its insert/delete/prefer invalidation can retire memo entries
/// alongside fingerprints.  Single-threaded by design (the serve layer
/// consults it from the request thread only; DecideCategoricity touches
/// it exclusively in its serial merge loop, never from workers).
///
/// Serving follows the block-solve cache's discipline so the memo can
/// only change cost, never outcome: only complete (known) verdicts are
/// stored, and an entry is served only when a fresh solve under the
/// requesting governor would have completed identically — see
/// DecideCategoricity for the replay rule.
class CategoricityMemo {
 public:
  struct Entry {
    Trilean unique = Trilean::kUnknown;
    /// The unique optimal block-repair's facts (sorted ids; ids are
    /// stable across universe growth, unlike bitset widths).  Empty
    /// unless unique == Trilean::kTrue.
    std::vector<FactId> repair_facts;
    /// Serial node cost of the decision, valid only when `nodes_valid`
    /// (measured under an armed governor).
    uint64_t nodes = 0;
    bool nodes_valid = false;
    /// Whether the exponential tier produced the verdict (such entries
    /// must re-pass block admission before being served).
    bool exponential = false;
  };

  /// The memoized verdict for (key, semantics), if any.
  const Entry* Lookup(FactId key, RepairSemantics semantics) const;

  /// Records a complete verdict (CHECK: unique != kUnknown).
  void Store(FactId key, RepairSemantics semantics, Entry entry);

  /// Retires every semantics' entry for the block keyed by `key` (the
  /// block's smallest fact id).  Call whenever the block's membership
  /// or internal priority edges change.
  void Invalidate(FactId key);

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

  /// Snapshot of the resident (block key, semantics) key set, so tests
  /// can cross-check every cached verdict against a from-scratch
  /// recomputation and prove no entry outlives its block.
  std::vector<std::pair<FactId, int>> keys() const {
    std::vector<std::pair<FactId, int>> out;
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      out.push_back(key);
    }
    return out;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  friend CategoricityResult DecideCategoricity(const ProblemContext&,
                                               RepairSemantics,
                                               CategoricityMemo*);
  std::map<std::pair<FactId, int>, Entry> entries_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

/// Decides whether block `b` has a unique optimal block-repair under
/// `semantics`.  Polls ctx.governor(); kUnknown when the budget fires
/// or the block is refused admission.
BlockCategoricity DecideBlockCategoricity(const ProblemContext& ctx,
                                          const Block& b,
                                          RepairSemantics semantics);

/// Decides whether (I, ≻) has a unique `semantics`-optimal repair.
/// Requires nothing of the priority: cross-block priorities yield
/// kUnknown outright.  Per-block decisions run through a
/// ParallelBlockSession (byte-identical to the serial pass at any
/// thread count); the serial merge checkpoints ctx.governor() once per
/// block and bails at the first ambiguous or undecided block.  With a
/// `memo`, blocks whose stored verdict may be served under the current
/// governor (same replay rule as the block-solve cache: complete entry,
/// admission re-checked for exponential entries, node replay below the
/// firing index) skip recomputation; everything else is decided fresh
/// and, if complete, stored back.
CategoricityResult DecideCategoricity(const ProblemContext& ctx,
                                      RepairSemantics semantics,
                                      CategoricityMemo* memo = nullptr);

namespace audit {
namespace internal {

// Out-of-line audit bodies; defined (non-trivially) only in audit
// builds.  Call the inline wrappers below instead.
void BlockCategoricityImpl(const ProblemContext& ctx, const Block& b,
                           RepairSemantics semantics,
                           const BlockCategoricity& result);
void CategoricityVerdictImpl(const ProblemContext& ctx,
                             RepairSemantics semantics,
                             const CategoricityResult& result);

}  // namespace internal

/// Cross-validates a per-block categoricity verdict against the
/// definitional check (materialize the block's optimal block-repairs,
/// test |set| == 1) on blocks of at most repair-audit kMaxVerdictBlock
/// facts.  Unknown verdicts are exempt (they assert nothing).
inline void CheckBlockCategoricity(const ProblemContext& ctx, const Block& b,
                                   RepairSemantics semantics,
                                   const BlockCategoricity& result) {
#if PREFREP_AUDIT_ENABLED
  internal::BlockCategoricityImpl(ctx, b, semantics, result);
#else
  (void)ctx;
  (void)b;
  (void)semantics;
  (void)result;
#endif
}

/// Cross-validates a whole-instance categoricity verdict against full
/// optimal-repair enumeration on instances of at most kMaxWholeInstance
/// facts.
inline void CheckCategoricityVerdict(const ProblemContext& ctx,
                                     RepairSemantics semantics,
                                     const CategoricityResult& result) {
#if PREFREP_AUDIT_ENABLED
  internal::CategoricityVerdictImpl(ctx, semantics, result);
#else
  (void)ctx;
  (void)semantics;
  (void)result;
#endif
}

}  // namespace audit
}  // namespace prefrep

#endif  // PREFREP_CLASSIFY_CATEGORICITY_H_
