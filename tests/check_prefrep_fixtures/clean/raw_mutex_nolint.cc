// Fixture for tools/check_prefrep.py --selftest (never compiled): the
// suppression escape for the raw-concurrency ban — allowed when named
// and justified (lint_prefrep check 4 enforces the justification).

#include <mutex>

namespace prefrep {

// NOLINT(prefrep-raw-concurrency): fixture exercises the inline escape.
std::mutex g_probe_mu;  // NOLINT(prefrep-raw-concurrency): same-line form.

void Lock() {
  // fixture: exercises the line-above escape form
  // NOLINT(prefrep-raw-concurrency)
  std::lock_guard<std::mutex> lock(g_probe_mu);
}

}  // namespace prefrep
