#include "model/schema.h"

#include "base/string_util.h"

namespace prefrep {

Result<RelId> Schema::AddRelation(std::string name, int arity) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (arity < 1 || arity > kMaxArity) {
    return Status::InvalidArgument("arity of '" + name + "' must be in 1.." +
                                   std::to_string(kMaxArity));
  }
  if (by_name_.count(name)) {
    return Status::AlreadyExists("relation '" + name + "' already declared");
  }
  RelId id = static_cast<RelId>(relations_.size());
  by_name_.emplace(name, id);
  relations_.push_back(RelationDef{std::move(name), arity});
  fd_sets_.emplace_back(arity);
  return id;
}

RelId Schema::MustAddRelation(std::string name, int arity) {
  Result<RelId> r = AddRelation(std::move(name), arity);
  PREFREP_CHECK_MSG(r.ok(), "MustAddRelation failed");
  return *r;
}

Status Schema::AddFd(RelId rel, const FD& fd) {
  if (rel >= relations_.size()) {
    return Status::OutOfRange("relation id out of range");
  }
  if (!fd.FitsArity(relations_[rel].arity)) {
    return Status::InvalidArgument(
        "fd " + fd.ToString() + " does not fit arity of relation '" +
        relations_[rel].name + "'");
  }
  fd_sets_[rel].Add(fd);
  return Status::OK();
}

Status Schema::AddFd(std::string_view relation_name, const FD& fd) {
  RelId rel = FindRelation(relation_name);
  if (rel == kInvalidRelId) {
    return Status::NotFound("unknown relation '" + std::string(relation_name) +
                            "'");
  }
  return AddFd(rel, fd);
}

Status Schema::AddFdParsed(std::string_view text) {
  // Accept "Rel: A -> B" and, for single-relation schemas, plain "A -> B".
  size_t colon = text.find(':');
  std::string_view rel_part;
  std::string_view fd_part = text;
  if (colon != std::string_view::npos &&
      text.substr(0, colon).find("->") == std::string_view::npos) {
    rel_part = StripAsciiWhitespace(text.substr(0, colon));
    fd_part = text.substr(colon + 1);
  }
  PREFREP_ASSIGN_OR_RETURN(FD fd, FD::Parse(fd_part));
  if (!rel_part.empty()) {
    return AddFd(rel_part, fd);
  }
  if (relations_.size() != 1) {
    return Status::InvalidArgument(
        "fd '" + std::string(text) +
        "' names no relation and the schema is not single-relation");
  }
  return AddFd(RelId{0}, fd);
}

void Schema::MustAddFd(RelId rel, const FD& fd) {
  Status s = AddFd(rel, fd);
  PREFREP_CHECK_MSG(s.ok(), "MustAddFd failed");
}

void Schema::MustAddFdParsed(std::string_view text) {
  Status s = AddFdParsed(text);
  PREFREP_CHECK_MSG(s.ok(), "MustAddFdParsed failed");
}

RelId Schema::FindRelation(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidRelId : it->second;
}

Schema Schema::SingleRelation(std::string name, int arity,
                              std::initializer_list<FD> fds) {
  Schema schema;
  RelId rel = schema.MustAddRelation(std::move(name), arity);
  for (const FD& fd : fds) {
    schema.MustAddFd(rel, fd);
  }
  return schema;
}

std::string Schema::ToString() const {
  std::string out;
  for (RelId r = 0; r < relations_.size(); ++r) {
    out += "relation " + relations_[r].name + "/" +
           std::to_string(relations_[r].arity) + "\n";
    for (const FD& fd : fd_sets_[r].fds()) {
      out += "  " + relations_[r].name + ": " + fd.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace prefrep
