#!/usr/bin/env python3
"""Runs a benchmark suite and distills its BENCH_<suite>.json.

    python3 tools/bench_to_json.py [--suite serve|recovery|categoricity|hotpath]
                                   [--bench <path>] [--out <path>]

Drives the suite's built binary with --benchmark_format=json and
reduces the raw Google-Benchmark dump to the figures EXPERIMENTS.md
tracks:

  serve (BENCH_serve.json, B15):
    edit_latency_us      — one tombstone/revival round trip, per edit
    steady_state_ops_sec — op throughput over the Zipf edit/query script
    speedup              — per (blocks, cache) point: BM_ServeRebuild
                           time / BM_ServeIncremental time, the
                           incremental-vs-rebuild gap at one edit per
                           query (the ISSUE gate: >= 10x at 64 blocks).
                           Any point below 1.0x is a crossover — the
                           resident session is slower than rebuilding —
                           and gets a WARNING.

  recovery (BENCH_recovery.json, B16):
    wal_append_us        — per-record append cost by fsync mode; the
                           always/off ratio is the durability price
    recovery_replay      — cold boot vs un-checkpointed WAL length
    snapshot_boot        — the same state recovered from a checkpoint
    checkpoint_ms        — one snapshot + WAL truncation

  categoricity (BENCH_categoricity.json, B17):
    speedup              — per clique count: BM_CqaCategoricalEnum
                           time / BM_CqaCategoricalFast time, the
                           categoricity fast path against the forced
                           enumeration on a certified-categorical
                           instance (the ISSUE gate: >= 5x on the
                           many-repair points).
    fallback_overhead    — per clique count: BM_CqaNearMissFast time /
                           BM_CqaNearMissEnum time; the pre-pass
                           refutes in polynomial time on the broken
                           block, so this must stay within noise of
                           1.0 (WARNING above 1.25x).
    decide_us            — the bare DecideCategoricity cost, the
                           serving layer's price for a memo miss.

  hotpath (BENCH_hotpath.json, B18):
    conflict_build       — per shard count: flat columnar join vs the
                           preserved pre-columnar reference join vs the
                           flat join on the scalar SIMD fallback.
                           flat_speedup = reference/flat (the ISSUE
                           gate: >= 3x on the hard sharded workload);
                           scalar_penalty = scalar/flat (the honest
                           no-SSE2/NEON number, reported separately).
    block_decomposition_us, consistency_scan_us
                         — downstream consumers of the same kernels.
    agree_kernel         — FactsAgreeOn with an early exit to take vs a
                           full 12-column agreement; early_exit_gain =
                           full/early must stay well above 1.0 or the
                           short-circuit has been lost.
    Ratios, not absolute times, are what tools/perf_gate.py compares
    against the committed baseline — they transfer across machines.

Stdlib-only by design (runs in CI and the bare build container).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_bench(bench: Path) -> dict:
    cmd = [str(bench), "--benchmark_format=json",
           "--benchmark_min_time=0.2"]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    return json.loads(proc.stdout)


def by_name(raw: dict) -> dict[str, dict]:
    return {b["name"]: b for b in raw.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}


def time_ns(bench: dict) -> float:
    unit = bench.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return float(bench["real_time"]) * scale


def context_of(raw: dict) -> dict:
    return {
        "host": raw.get("context", {}).get("host_name", ""),
        "num_cpus": raw.get("context", {}).get("num_cpus", 0),
        "date": raw.get("context", {}).get("date", ""),
    }


def distill_serve(raw: dict) -> dict:
    benches = by_name(raw)
    out: dict = {
        "benchmark": "bench_serve",
        "context": context_of(raw),
        "edit_latency_us": {},
        "steady_state_ops_sec": None,
        "speedup": {},
    }
    for name, bench in benches.items():
        if name.startswith("BM_ServeEditLatency/"):
            blocks = name.split("/")[1]
            # Two edits per iteration (delete + revival).
            out["edit_latency_us"][blocks] = time_ns(bench) / 2 / 1e3
        elif name.startswith("BM_ServeScriptReplay/"):
            ops = float(name.split("/")[1])
            out["steady_state_ops_sec"] = ops / (time_ns(bench) / 1e9)
    for blocks in ("64", "256"):
        rebuild = benches.get(f"BM_ServeRebuild/{blocks}")
        if rebuild is None:
            continue
        for cache in ("0", "1"):
            incremental = benches.get(f"BM_ServeIncremental/{blocks}/{cache}")
            if incremental is None:
                continue
            key = f"blocks={blocks}/cache={'on' if cache == '1' else 'off'}"
            out["speedup"][key] = {
                "rebuild_us": time_ns(rebuild) / 1e3,
                "incremental_us": time_ns(incremental) / 1e3,
                "speedup": time_ns(rebuild) / time_ns(incremental),
            }
    return out


def report_serve(summary: dict) -> None:
    gate = summary["speedup"].get("blocks=64/cache=on", {}).get("speedup")
    for key, row in summary["speedup"].items():
        print(f"  {key}: {row['speedup']:.1f}x "
              f"({row['rebuild_us']:.0f}us -> {row['incremental_us']:.1f}us)")
        if row["speedup"] < 1.0:
            print(f"bench_to_json: WARNING {key} crossed over "
                  f"({row['speedup']:.2f}x): the resident session is slower "
                  f"than a per-request rebuild at this point — see "
                  f"`prefrepctl session --crossover` and docs/serving.md",
                  file=sys.stderr)
    if gate is not None and gate < 10.0:
        print(f"bench_to_json: WARNING speedup gate "
              f"(>=10x at 64 blocks, cache on) not met: {gate:.1f}x",
              file=sys.stderr)


FSYNC_MODES = {"0": "off", "1": "batch", "2": "always"}


def distill_recovery(raw: dict) -> dict:
    benches = by_name(raw)
    out: dict = {
        "benchmark": "bench_recovery",
        "context": context_of(raw),
        "wal_append_us": {},
        "fsync_penalty": None,
        "recovery_replay": {},
        "snapshot_boot": {},
        "checkpoint_ms": None,
    }
    for name, bench in benches.items():
        if name.startswith("BM_WalAppend/"):
            mode = FSYNC_MODES.get(name.split("/")[1], name.split("/")[1])
            out["wal_append_us"][mode] = time_ns(bench) / 1e3
        elif name.startswith("BM_RecoveryReplay/"):
            ops = name.split("/")[1]
            replayed = bench.get("ops_replayed", 0.0)
            row = {"boot_ms": time_ns(bench) / 1e6,
                   "ops_replayed": int(replayed)}
            if replayed:
                row["us_per_replayed_op"] = time_ns(bench) / replayed / 1e3
            out["recovery_replay"][ops] = row
        elif name.startswith("BM_RecoverySnapshot/"):
            ops = name.split("/")[1]
            out["snapshot_boot"][ops] = {"boot_ms": time_ns(bench) / 1e6}
        elif name.startswith("BM_Checkpoint/"):
            out["checkpoint_ms"] = time_ns(bench) / 1e6
    off = out["wal_append_us"].get("off")
    always = out["wal_append_us"].get("always")
    if off and always:
        out["fsync_penalty"] = always / off
    for ops, row in out["snapshot_boot"].items():
        replay = out["recovery_replay"].get(ops)
        if replay is not None and row["boot_ms"] > 0:
            row["speedup_vs_replay"] = replay["boot_ms"] / row["boot_ms"]
    return out


def report_recovery(summary: dict) -> None:
    for mode, us in summary["wal_append_us"].items():
        print(f"  append fsync={mode}: {us:.2f}us/record")
    if summary["fsync_penalty"] is not None:
        print(f"  fsync=always costs {summary['fsync_penalty']:.0f}x "
              f"fsync=off per record")
    for ops, row in summary["recovery_replay"].items():
        print(f"  cold boot, {ops}-op WAL: {row['boot_ms']:.2f}ms "
              f"({row['ops_replayed']} replayed)")
    for ops, row in summary["snapshot_boot"].items():
        speedup = row.get("speedup_vs_replay")
        extra = f", {speedup:.1f}x over replay" if speedup else ""
        print(f"  checkpointed boot, {ops} ops: "
              f"{row['boot_ms']:.2f}ms{extra}")
        if speedup is not None and speedup < 1.0:
            print(f"bench_to_json: WARNING snapshot boot at {ops} ops is "
                  f"slower than WAL replay ({speedup:.2f}x) — "
                  f"checkpointing lost its purpose",
                  file=sys.stderr)
    if summary["checkpoint_ms"] is not None:
        print(f"  checkpoint: {summary['checkpoint_ms']:.2f}ms")


def distill_categoricity(raw: dict) -> dict:
    benches = by_name(raw)
    out: dict = {
        "benchmark": "bench_categoricity",
        "context": context_of(raw),
        "speedup": {},
        "fallback_overhead": {},
        "decide_us": {},
    }
    for name, bench in benches.items():
        if name.startswith("BM_CqaCategoricalFast/"):
            cliques = name.split("/")[1]
            enum = benches.get(f"BM_CqaCategoricalEnum/{cliques}")
            if enum is None:
                continue
            out["speedup"][cliques] = {
                "fast_us": time_ns(bench) / 1e3,
                "enum_us": time_ns(enum) / 1e3,
                "speedup": time_ns(enum) / time_ns(bench),
            }
        elif name.startswith("BM_CqaNearMissFast/"):
            cliques = name.split("/")[1]
            enum = benches.get(f"BM_CqaNearMissEnum/{cliques}")
            if enum is None:
                continue
            out["fallback_overhead"][cliques] = {
                "fast_us": time_ns(bench) / 1e3,
                "enum_us": time_ns(enum) / 1e3,
                "overhead": time_ns(bench) / time_ns(enum),
            }
        elif name.startswith("BM_DecideCategoricity/"):
            cliques = name.split("/")[1]
            out["decide_us"][cliques] = time_ns(bench) / 1e3
    return out


def report_categoricity(summary: dict) -> None:
    for cliques, row in sorted(summary["speedup"].items(), key=lambda kv: int(kv[0])):
        print(f"  categorical, {cliques} cliques: {row['speedup']:.1f}x "
              f"({row['enum_us']:.0f}us -> {row['fast_us']:.1f}us)")
        if row["speedup"] < 5.0:
            print(f"bench_to_json: WARNING categoricity speedup gate "
                  f"(>=5x) not met at {cliques} cliques: "
                  f"{row['speedup']:.1f}x", file=sys.stderr)
    for cliques, row in sorted(summary["fallback_overhead"].items(),
                               key=lambda kv: int(kv[0])):
        print(f"  near-miss, {cliques} cliques: "
              f"{row['overhead']:.2f}x enumeration "
              f"({row['enum_us']:.0f}us -> {row['fast_us']:.0f}us)")
        if row["overhead"] > 1.25:
            print(f"bench_to_json: WARNING near-miss fallback at {cliques} "
                  f"cliques costs {row['overhead']:.2f}x the forced "
                  f"enumeration — the pre-pass is no longer within noise "
                  f"(see docs/categoricity.md)", file=sys.stderr)
    for cliques, us in sorted(summary["decide_us"].items(),
                              key=lambda kv: int(kv[0])):
        print(f"  decide, {cliques} cliques: {us:.1f}us")


def distill_hotpath(raw: dict) -> dict:
    benches = by_name(raw)
    out: dict = {
        "benchmark": "bench_hotpath",
        "context": context_of(raw),
        "conflict_build": {},
        "graph_build_us": {},
        "block_decomposition_us": {},
        "consistency_scan_us": {},
        "agree_kernel": {},
    }
    for name, bench in benches.items():
        if name.startswith("BM_ConflictPairsFlat/"):
            shards = name.split("/")[1]
            ref = benches.get(f"BM_ConflictPairsReference/{shards}")
            scalar = benches.get(f"BM_ConflictPairsFlatScalar/{shards}")
            row = {"flat_us": time_ns(bench) / 1e3}
            if ref is not None:
                row["reference_us"] = time_ns(ref) / 1e3
                row["flat_speedup"] = time_ns(ref) / time_ns(bench)
            if scalar is not None:
                row["scalar_us"] = time_ns(scalar) / 1e3
                row["scalar_penalty"] = time_ns(scalar) / time_ns(bench)
            out["conflict_build"][shards] = row
        elif name.startswith("BM_ConflictGraphBuild/"):
            shards = name.split("/")[1]
            out["graph_build_us"][shards] = time_ns(bench) / 1e3
        elif name.startswith("BM_BlockDecomposition/"):
            shards = name.split("/")[1]
            out["block_decomposition_us"][shards] = time_ns(bench) / 1e3
        elif name.startswith("BM_ConsistencyScan/"):
            shards = name.split("/")[1]
            out["consistency_scan_us"][shards] = time_ns(bench) / 1e3
    early = benches.get("BM_AgreeEarlyExit")
    full = benches.get("BM_AgreeFullScan")
    if early is not None and full is not None:
        out["agree_kernel"] = {
            "early_exit_ns": time_ns(early),
            "full_scan_ns": time_ns(full),
            "early_exit_gain": time_ns(full) / time_ns(early),
        }
    return out


def report_hotpath(summary: dict) -> None:
    for shards, row in sorted(summary["conflict_build"].items(),
                              key=lambda kv: int(kv[0])):
        speedup = row.get("flat_speedup")
        if speedup is None:
            continue
        print(f"  conflict build, {shards} shards: {speedup:.1f}x "
              f"({row['reference_us']:.0f}us -> {row['flat_us']:.1f}us"
              + (f", scalar {row['scalar_us']:.1f}us"
                 if "scalar_us" in row else "") + ")")
        if speedup < 3.0:
            print(f"bench_to_json: WARNING conflict-build speedup gate "
                  f"(>=3x) not met at {shards} shards: {speedup:.1f}x",
                  file=sys.stderr)
    kernel = summary["agree_kernel"]
    if kernel:
        print(f"  agree kernel: early exit {kernel['early_exit_ns']:.1f}ns, "
              f"full scan {kernel['full_scan_ns']:.1f}ns "
              f"({kernel['early_exit_gain']:.1f}x gain)")


SUITES = {
    "serve": {
        "bench": "build/bench/bench_serve",
        "out": "BENCH_serve.json",
        "distill": distill_serve,
        "report": report_serve,
    },
    "recovery": {
        "bench": "build/bench/bench_recovery",
        "out": "BENCH_recovery.json",
        "distill": distill_recovery,
        "report": report_recovery,
    },
    "categoricity": {
        "bench": "build/bench/bench_categoricity",
        "out": "BENCH_categoricity.json",
        "distill": distill_categoricity,
        "report": report_categoricity,
    },
    "hotpath": {
        "bench": "build/bench/bench_hotpath",
        "out": "BENCH_hotpath.json",
        "distill": distill_hotpath,
        "report": report_hotpath,
    },
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--suite", choices=sorted(SUITES), default="serve",
                        help="which benchmark suite to run and distill")
    parser.add_argument("--bench", default=None,
                        help="path to the built benchmark binary")
    parser.add_argument("--out", default=None,
                        help="output JSON path")
    args = parser.parse_args()
    suite = SUITES[args.suite]
    bench = Path(args.bench or REPO_ROOT / suite["bench"])
    out_path = Path(args.out or REPO_ROOT / suite["out"])
    if not bench.exists():
        print(f"bench_to_json: no binary at {bench} — build "
              f"{bench.name} first", file=sys.stderr)
        return 1
    summary = suite["distill"](run_bench(bench))
    out_path.write_text(json.dumps(summary, indent=2) + "\n",
                        encoding="utf-8")
    print(f"bench_to_json: wrote {out_path}")
    suite["report"](summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
