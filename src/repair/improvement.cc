// Global and Pareto improvement predicates, Definition 2.4 verbatim.
#include "repair/improvement.h"

#include "repair/subinstance_ops.h"

namespace prefrep {

bool IsGlobalImprovement(const ConflictGraph& cg, const PriorityRelation& pr,
                         const DynamicBitset& j,
                         const DynamicBitset& improved) {
  if (improved == j) {
    return false;
  }
  if (!IsConsistent(cg, improved)) {
    return false;
  }
  DynamicBitset removed = j - improved;   // J \ J'
  DynamicBitset added = improved - j;     // J' \ J
  bool ok = true;
  removed.ForEach([&](size_t f_prime) {
    if (!ok) {
      return;
    }
    // Some added fact must be preferred over f'.
    bool covered = false;
    for (FactId f : pr.DominatedBy(static_cast<FactId>(f_prime))) {
      if (added.test(f)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      ok = false;
    }
  });
  return ok;
}

bool IsParetoImprovement(const ConflictGraph& cg, const PriorityRelation& pr,
                         const DynamicBitset& j,
                         const DynamicBitset& improved) {
  if (improved == j) {
    return false;
  }
  if (!IsConsistent(cg, improved)) {
    return false;
  }
  DynamicBitset removed = j - improved;
  DynamicBitset added = improved - j;
  bool found = false;
  added.ForEach([&](size_t f) {
    if (found) {
      return;
    }
    bool dominates_all = true;
    removed.ForEach([&](size_t f_prime) {
      if (dominates_all &&
          !pr.Prefers(static_cast<FactId>(f), static_cast<FactId>(f_prime))) {
        dominates_all = false;
      }
    });
    if (dominates_all) {
      found = true;
    }
  });
  // A Pareto improvement needs a witness fact in J' \ J; if J' ⊆ J there
  // is none (and indeed no subset of J can Pareto-improve J).
  return found && added.any();
}

}  // namespace prefrep
