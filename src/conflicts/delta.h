// Copyright (c) prefrep contributors.
// Delta conflict detection for resident sessions (src/serve).  The
// one-shot ConflictGraph constructor buckets all facts per (relation,
// FD) by their lhs-projection, sub-bucketed by rhs-projection, and
// connects across sub-buckets.  A ConflictDeltaIndex keeps exactly
// those buckets *alive* across edits, so inserting a fact finds its
// δ-conflict neighbors in O(|∆| · bucket) instead of O(instance), and
// deleting a fact just unhooks it from its buckets.
//
// The index tracks the live facts only: the serve layer tombstones
// deleted facts (ids are stable, the Instance never shrinks), and a
// tombstoned fact must neither conflict with anything nor be revived
// into the wrong bucket — reviving re-inserts it like a fresh fact.

#ifndef PREFREP_CONFLICTS_DELTA_H_
#define PREFREP_CONFLICTS_DELTA_H_

#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "model/instance.h"

namespace prefrep {

/// Persistent per-(relation, FD) conflict buckets over the live facts
/// of one (growing) instance.
class ConflictDeltaIndex {
 public:
  /// Binds `instance` (must outlive the index) with no facts indexed.
  /// Callers Insert() every initially-live fact.
  explicit ConflictDeltaIndex(const Instance& instance);

  /// Indexes fact `f` and returns its δ-conflict neighbors among the
  /// facts indexed so far — sorted ascending, deduplicated (a pair may
  /// conflict under several FDs).  `f` must not be indexed already.
  std::vector<FactId> InsertAndCollect(FactId f);

  /// Unhooks fact `f` from every bucket.  No-op if `f` is not indexed.
  void Erase(FactId f);

  bool Contains(FactId f) const {
    return f < indexed_.size() && indexed_[f];
  }

 private:
  // One (relation, FD) bucket table: lhs-projection → rhs-projection →
  // facts.  Two indexed facts conflict under this FD iff they share the
  // outer key but sit in different inner groups.
  using SubBuckets =
      std::unordered_map<std::vector<ValueId>, std::vector<FactId>,
                         VectorHash<ValueId>>;
  using Buckets =
      std::unordered_map<std::vector<ValueId>, SubBuckets,
                         VectorHash<ValueId>>;

  const Instance* instance_;
  // tables_[rel][k] is the bucket table of the k-th nontrivial FD of
  // relation rel (trivial FDs never produce conflicts and are skipped).
  std::vector<std::vector<Buckets>> tables_;
  std::vector<bool> indexed_;
};

}  // namespace prefrep

#endif  // PREFREP_CONFLICTS_DELTA_H_
