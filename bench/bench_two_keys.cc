// B2 — polynomial scaling of GRepCheck2Keys (Theorem 3.1, condition 2;
// §4.2): the full check, the G12/G21 graph construction alone, and the
// composite-key variant.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "repair/global_two_keys.h"

namespace prefrep {
namespace {

void BM_TwoKeys_OptimalJ(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::TwoKeysSchema(), state.range(0), JPolicy::kHighPriorityRepair);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r = CheckGlobalOptimalTwoKeys(
        cg, *problem.priority, 0, AttrSet{1}, AttrSet{2}, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TwoKeys_OptimalJ)->RangeMultiplier(2)->Range(16, 4096)
    ->Complexity();

void BM_TwoKeys_ImprovableJ(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::TwoKeysSchema(), state.range(0), JPolicy::kLowPriorityRepair);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r = CheckGlobalOptimalTwoKeys(
        cg, *problem.priority, 0, AttrSet{1}, AttrSet{2}, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_TwoKeys_ImprovableJ)->RangeMultiplier(2)->Range(16, 4096);

void BM_TwoKeys_GraphConstruction(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::TwoKeysSchema(), state.range(0), JPolicy::kRandomRepair);
  const Instance& inst = *problem.instance;
  for (auto _ : state) {
    KeyedImprovementGraph g = BuildImprovementGraph(
        inst, *problem.priority, 0, AttrSet{1}, AttrSet{2}, problem.j);
    benchmark::DoNotOptimize(g.graph.num_edges());
  }
}
BENCHMARK(BM_TwoKeys_GraphConstruction)->RangeMultiplier(4)->Range(16, 4096);

void BM_TwoKeys_CompositeKeys(benchmark::State& state) {
  Schema schema = Schema::SingleRelation(
      "T", 4, {FD(AttrSet{1, 2}, AttrSet{1, 2, 3, 4}),
               FD(AttrSet{2, 3}, AttrSet{1, 2, 3, 4})});
  PreferredRepairProblem problem = bench::SizedProblem(
      schema, state.range(0), JPolicy::kRandomRepair);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r = CheckGlobalOptimalTwoKeys(
        cg, *problem.priority, 0, AttrSet{1, 2}, AttrSet{2, 3}, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_TwoKeys_CompositeKeys)->RangeMultiplier(2)->Range(16, 2048);

}  // namespace
}  // namespace prefrep

BENCHMARK_MAIN();
