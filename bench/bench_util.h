// Copyright (c) prefrep contributors.
// Shared helpers for the prefrep benchmark suite.

#ifndef PREFREP_BENCH_BENCH_UTIL_H_
#define PREFREP_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include "gen/random_instance.h"
#include "model/problem.h"

namespace prefrep {
namespace bench {

/// Canonical tractable schemas used across benchmarks.
inline Schema OneFdSchema() {
  return Schema::SingleRelation("R", 3, {FD(AttrSet{1}, AttrSet{2})});
}

inline Schema TwoKeysSchema() {
  return Schema::SingleRelation(
      "R", 2, {FD(AttrSet{1}, AttrSet{2}), FD(AttrSet{2}, AttrSet{1})});
}

inline Schema PrimaryKeySchema() {
  return Schema::SingleRelation("R", 3, {FD(AttrSet{1}, AttrSet{2, 3})});
}

inline Schema ConstantAttrSchema() {
  return Schema::SingleRelation("R", 2, {FD(AttrSet(), AttrSet{1})});
}

/// A random problem sized by the benchmark argument.  `policy` shapes
/// how adversarial J is; conflict density is controlled by a domain
/// that grows with n so conflict-group sizes stay ~constant.
inline PreferredRepairProblem SizedProblem(const Schema& schema, int64_t n,
                                           JPolicy policy,
                                           uint64_t seed = 42,
                                           double cross_density = 0.0) {
  RandomProblemOptions opts;
  opts.facts_per_relation = static_cast<size_t>(n);
  opts.domain_size = static_cast<size_t>(n / 4 + 2);
  opts.priority_density = 0.6;
  opts.cross_priority_density = cross_density;
  opts.j_policy = policy;
  opts.seed = seed;
  return GenerateRandomProblem(schema, opts);
}

}  // namespace bench
}  // namespace prefrep

#endif  // PREFREP_BENCH_BENCH_UTIL_H_
