// Durability cost model (src/persist/, docs/durability.md).  Four
// measurements behind the three numbers EXPERIMENTS.md tracks:
//
//   BM_WalAppend          — per-record append cost under each fsync
//                           mode; the always/batch/off spread IS the
//                           durability price list a deployment chooses
//                           from.
//   BM_RecoveryReplay     — DurableSession::Open against a WAL of N
//                           records and no snapshot: cold-boot cost as
//                           a function of un-checkpointed history.
//   BM_RecoverySnapshot   — the same durable state recovered from a
//                           checkpoint (snapshot + empty WAL tail):
//                           what --snapshot-every buys at boot.
//   BM_Checkpoint         — one snapshot + WAL truncation, the price
//                           paid every --snapshot-every edits.
//
// All file I/O happens under a per-benchmark mkdtemp directory; the
// timed loops exclude workload construction (PauseTiming / fixture
// setup) so the numbers isolate the persistence layer.
// tools/bench_to_json.py --suite recovery reduces the dump to
// BENCH_recovery.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/macros.h"
#include "gen/edit_script.h"
#include "io/ops_format.h"
#include "persist/durable_session.h"
#include "persist/file_io.h"
#include "persist/wal.h"

namespace prefrep {
namespace {

// A scratch directory that lives for one benchmark function.  Removal
// is best-effort recursive (the tree only ever holds our WAL/snapshot
// files); std::system is acceptable in bench scaffolding.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/prefrep_bench_recovery.XXXXXX";
    PREFREP_CHECK_MSG(::mkdtemp(tmpl) != nullptr, "mkdtemp failed");
    path_ = tmpl;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    // NOLINTNEXTLINE(cert-env33-c): bench-only recursive cleanup.
    (void)std::system(cmd.c_str());
  }
  PREFREP_DISALLOW_COPY(TempDir);
  std::string File(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

// The durable workload: the generated Zipf edit/query script from
// gen/edit_script.h, filtered down to its durable edits — exactly the
// lines a serving session would append to its WAL.
EditScriptWorkload RecoveryWorkload(size_t num_ops) {
  EditScriptOptions opts;
  opts.shards = 8;
  opts.facts_per_shard = 4;
  opts.num_ops = num_ops;
  opts.seed = 7;
  return MakeEditScriptWorkload(opts);
}

SessionOptions BenchSessionOptions() {
  SessionOptions options;
  options.threads = 1;
  options.cache_capacity = 0;
  options.budget.max_nodes = 20000;
  return options;
}

std::vector<SessionOp> ParseAll(const std::vector<std::string>& lines) {
  std::vector<SessionOp> ops;
  ops.reserve(lines.size());
  for (const std::string& line : lines) {
    Result<SessionOp> op = ParseSessionOp(line);
    PREFREP_CHECK_MSG(op.ok(), "workload line unparsable");
    ops.push_back(*std::move(op));
  }
  return ops;
}

// Runs the whole workload through a durable session so the WAL (and,
// with `checkpoint`, the snapshot) on disk is a real artifact of the
// serving path, not a synthetic image.
void BuildDurableState(const EditScriptWorkload& workload,
                       const std::vector<SessionOp>& ops,
                       const std::string& wal_path, bool checkpoint) {
  DurabilityOptions durability;
  durability.wal_path = wal_path;
  durability.fsync = FsyncMode::kOff;
  auto session = DurableSession::Open(workload.problem,
                                      BenchSessionOptions(), durability);
  PREFREP_CHECK_MSG(session.ok(), "durable open failed");
  for (const SessionOp& op : ops) {
    benchmark::DoNotOptimize((*session)->Execute(op).ok());
  }
  if (checkpoint) {
    PREFREP_CHECK((*session)->Close().ok());
  }
  // No Close() otherwise: the WAL keeps its full record tail, which is
  // precisely the cold-boot fixture BM_RecoveryReplay wants.
}

// arg0: fsync mode (0 = off, 1 = batch, 2 = always).  One WAL record
// per iteration, payload shaped like a real session edit line.
void BM_WalAppend(benchmark::State& state) {
  TempDir dir;
  const FsyncMode mode = state.range(0) == 0   ? FsyncMode::kOff
                         : state.range(0) == 1 ? FsyncMode::kBatch
                                               : FsyncMode::kAlways;
  WalWriter wal;
  PREFREP_CHECK(wal.Open(dir.File("append.wal"), mode, 1).ok());
  const std::string payload = "insert s0:q0:f2 R1(k0_0, m0, c0_0_2)";
  for (auto _ : state) {
    Result<uint64_t> seq = wal.Append(payload);
    benchmark::DoNotOptimize(seq.ok());
  }
  PREFREP_CHECK(wal.SyncNow().ok());
  PREFREP_CHECK(wal.Close().ok());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["fsync"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// arg0: durable ops in the WAL tail.  Each iteration is a full cold
// boot: snapshot probe (absent), WAL parse, session rebuild, replay.
void BM_RecoveryReplay(benchmark::State& state) {
  TempDir dir;
  const EditScriptWorkload workload =
      RecoveryWorkload(static_cast<size_t>(state.range(0)));
  const std::vector<SessionOp> ops = ParseAll(workload.ops);
  const std::string wal_path = dir.File("replay.wal");
  BuildDurableState(workload, ops, wal_path, /*checkpoint=*/false);
  DurabilityOptions durability;
  durability.wal_path = wal_path;
  durability.fsync = FsyncMode::kOff;
  uint64_t replayed = 0;
  for (auto _ : state) {
    auto session = DurableSession::Open(workload.problem,
                                        BenchSessionOptions(), durability);
    PREFREP_CHECK_MSG(session.ok(), "recovery failed");
    replayed = (*session)->recovery().ops_replayed;
    benchmark::DoNotOptimize(replayed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(replayed));
  state.counters["ops_replayed"] = static_cast<double>(replayed);
}
BENCHMARK(BM_RecoveryReplay)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// The same durable history, checkpointed: boot cost collapses to one
// snapshot parse + problem rebuild, zero replays.
void BM_RecoverySnapshot(benchmark::State& state) {
  TempDir dir;
  const EditScriptWorkload workload =
      RecoveryWorkload(static_cast<size_t>(state.range(0)));
  const std::vector<SessionOp> ops = ParseAll(workload.ops);
  const std::string wal_path = dir.File("snap.wal");
  BuildDurableState(workload, ops, wal_path, /*checkpoint=*/true);
  DurabilityOptions durability;
  durability.wal_path = wal_path;
  durability.fsync = FsyncMode::kOff;
  for (auto _ : state) {
    auto session = DurableSession::Open(workload.problem,
                                        BenchSessionOptions(), durability);
    PREFREP_CHECK_MSG(session.ok(), "snapshot recovery failed");
    PREFREP_CHECK((*session)->recovery().snapshot_loaded);
    benchmark::DoNotOptimize((*session)->recovery().durable_seq);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["durable_ops"] = static_cast<double>(ops.size());
}
BENCHMARK(BM_RecoverySnapshot)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// One checkpoint: SerializeLive + atomic snapshot publish + WAL
// truncation, on a session holding the full workload state.
void BM_Checkpoint(benchmark::State& state) {
  TempDir dir;
  const EditScriptWorkload workload =
      RecoveryWorkload(static_cast<size_t>(state.range(0)));
  const std::vector<SessionOp> ops = ParseAll(workload.ops);
  DurabilityOptions durability;
  durability.wal_path = dir.File("ckpt.wal");
  durability.fsync = FsyncMode::kOff;
  auto session = DurableSession::Open(workload.problem,
                                      BenchSessionOptions(), durability);
  PREFREP_CHECK(session.ok());
  for (const SessionOp& op : ops) {
    benchmark::DoNotOptimize((*session)->Execute(op).ok());
  }
  for (auto _ : state) {
    PREFREP_CHECK((*session)->Checkpoint().ok());
  }
  PREFREP_CHECK((*session)->Close().ok());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Checkpoint)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefrep
