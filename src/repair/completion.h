// Copyright (c) prefrep contributors.
// Completion-optimal repair checking.  [SCM] define J to be a
// completion-optimal repair of (I, ≻) if J is the (unique) globally-
// optimal repair under some *completion* of ≻ — an acyclic extension that
// is total on every conflicting pair.  Completion-optimal repairs are
// exactly the possible outputs of the nondeterministic greedy procedure
//
//   while facts remain: pick any remaining fact f with no remaining g ≻ f,
//   add f to the output, delete f's conflicting facts;
//
// and [SCM, Cor. 4] show checking is polynomial.  Our checker runs the
// greedy restricted to J-facts to a fixpoint; confluence (removals never
// block a pickable fact, and priorities never hold between the mutually
// consistent facts of J) makes the fixpoint canonical:
//
//   J is completion-optimal  ⟺  the fixpoint picks all of J and the
//   conflict deletions eliminate all of I \ J.
//
// The equivalence with the enumerate-all-completions definition is
// verified by brute force in completion_test.cc.
//
// NOTE (§4.1): [SCM, Prop. 10(iii)] claimed completion and global
// optimality coincide for single-FD schemas; the paper reports this is
// incorrect.  See completion_test.cc for a concrete single-FD instance
// with a globally-optimal repair that is not completion-optimal.

#ifndef PREFREP_REPAIR_COMPLETION_H_
#define PREFREP_REPAIR_COMPLETION_H_

#include "repair/improvement.h"

namespace prefrep {

/// Decides whether J is a completion-optimal repair of (I, ≻).
/// Requires a conflict-bounded priority (§2.3); completion semantics for
/// cross-conflict priorities are not defined by [SCM] and are rejected
/// with a PREFREP_CHECK.
///
/// A non-null `universe` restricts the check to one conflict block:
/// decides whether J ∩ universe is a completion-optimal repair of the
/// block.  Sound because the greedy procedure's picks and deletions
/// never leave a block (conflicts and conflict-bounded priorities are
/// intra-block), so its possible outputs factor across blocks.
CheckResult CheckCompletionOptimal(const ConflictGraph& cg,
                                   const PriorityRelation& pr,
                                   const DynamicBitset& j,
                                   const DynamicBitset* universe = nullptr);

/// Runs one (deterministic, seeded) execution of the greedy procedure,
/// producing a completion-optimal repair.  Different seeds explore
/// different completions.
DynamicBitset GreedyCompletionRepair(const ConflictGraph& cg,
                                     const PriorityRelation& pr,
                                     uint64_t seed);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_COMPLETION_H_
