// Randomized end-to-end stress: random schemas (arities, FD sets — some
// tractable, some hard), random instances (uniform and Zipf-skewed),
// random priorities and all J-policies, checked through the unified
// RepairChecker against the exhaustive ground truth, in both priority
// modes.  This is the widest net in the suite: any disagreement between
// a dispatched polynomial algorithm and the definitional semantics
// anywhere in the library fails here.

#include <gtest/gtest.h>

#include "gen/random_instance.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"
#include "repair/pareto.h"
#include "test_util.h"

namespace prefrep {
namespace {

Schema RandomSchema(Rng* rng) {
  Schema schema;
  size_t num_relations = 1 + rng->NextBounded(2);
  for (size_t r = 0; r < num_relations; ++r) {
    int arity = 2 + static_cast<int>(rng->NextBounded(2));  // 2..3
    RelId rel = schema.MustAddRelation("R" + std::to_string(r), arity);
    size_t num_fds = rng->NextBounded(3);  // 0..2
    uint64_t full = (uint64_t{1} << arity) - 1;
    for (size_t i = 0; i < num_fds; ++i) {
      schema.MustAddFd(rel, FD(AttrSet::FromMask(rng->Next() & full),
                               AttrSet::FromMask(rng->Next() & full)));
    }
  }
  return schema;
}

class StressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, UnifiedCheckerMatchesExhaustiveConflictOnly) {
  Rng rng(GetParam() * 65537 + 11);
  Schema schema = RandomSchema(&rng);
  RandomProblemOptions opts;
  opts.facts_per_relation = 6 + rng.NextBounded(5);
  opts.domain_size = 2 + rng.NextBounded(3);
  opts.value_skew = rng.NextBool(0.3) ? 1.1 : 0.0;
  opts.priority_density = 0.3 + 0.5 * rng.NextDouble();
  opts.j_policy = static_cast<JPolicy>(rng.NextBounded(4));
  opts.seed = rng.Next();
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  RepairChecker checker(*problem.instance, *problem.priority);
  auto outcome = checker.CheckGloballyOptimal(problem.j);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  CheckResult exact =
      ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
  EXPECT_EQ(outcome->result.optimal, exact.optimal)
      << schema.ToString() << "\nJ = "
      << problem.instance->SubinstanceToString(problem.j);
  EXPECT_EQ(testing_util::VerifyWitness(cg, *problem.priority, problem.j,
                                        outcome->result),
            "");
}

TEST_P(StressTest, UnifiedCheckerMatchesExhaustiveCrossConflict) {
  Rng rng(GetParam() * 92821 + 3);
  Schema schema = RandomSchema(&rng);
  RandomProblemOptions opts;
  opts.facts_per_relation = 5 + rng.NextBounded(4);
  opts.domain_size = 2 + rng.NextBounded(3);
  opts.priority_density = 0.3 + 0.5 * rng.NextDouble();
  opts.cross_priority_density = 0.5;
  opts.j_policy = static_cast<JPolicy>(rng.NextBounded(4));
  opts.seed = rng.Next();
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  CheckerOptions copts;
  copts.mode = PriorityMode::kCrossConflict;
  RepairChecker checker(*problem.instance, *problem.priority, copts);
  auto outcome = checker.CheckGloballyOptimal(problem.j);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  CheckResult exact =
      ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
  EXPECT_EQ(outcome->result.optimal, exact.optimal)
      << schema.ToString() << "\nJ = "
      << problem.instance->SubinstanceToString(problem.j);
  EXPECT_EQ(testing_util::VerifyWitness(cg, *problem.priority, problem.j,
                                        outcome->result),
            "");
}

TEST_P(StressTest, ParetoAgreesEverywhere) {
  Rng rng(GetParam() * 48271 + 7);
  Schema schema = RandomSchema(&rng);
  RandomProblemOptions opts;
  opts.facts_per_relation = 6 + rng.NextBounded(5);
  opts.domain_size = 2 + rng.NextBounded(3);
  opts.priority_density = 0.5;
  opts.j_policy = static_cast<JPolicy>(rng.NextBounded(4));
  opts.seed = rng.Next();
  PreferredRepairProblem problem = GenerateRandomProblem(schema, opts);
  ConflictGraph cg(*problem.instance);
  CheckResult fast = CheckParetoOptimal(cg, *problem.priority, problem.j);
  CheckResult exact =
      ExhaustiveCheckParetoOptimal(cg, *problem.priority, problem.j);
  EXPECT_EQ(fast.optimal, exact.optimal) << schema.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace prefrep
