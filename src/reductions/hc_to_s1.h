// Copyright (c) prefrep contributors.
// The reduction of Lemma 5.2: undirected Hamiltonian Cycle ≤p the
// complement of globally-optimal repair checking over S1.
//
// Given a graph G = (V, E) with V = {v0, ..., v(n-1)}, the construction
// produces ((I, ≻), J) over S1 such that J has a global improvement iff
// G has a Hamiltonian cycle — i.e. J is a globally-optimal repair iff G
// is NOT Hamiltonian.  Figure 5 of the paper illustrates the instance
// for the two-node graph with a single edge.
//
// Facts of I, for every index i ∈ {0..n-1} (arithmetic mod n) and node
// vj (p, q, r are fresh constants per (i, j)):
//
//   R1(i, p_j^i, v_j)            ∈ J
//   R1(i-1, q_j^i, r_j^i)        ∈ J
//   R1(i, v_j, r_j^i)            ∈ J
//   R1(i, q_j^i, r_j^i)
//   R1(i, v_j, v_j)
//   R1(i, p_j^i, r_k^{i+1})      for every edge {v_j, v_k} ∈ E
//                                (both orientations of the edge)
//
// Priorities:
//
//   R1(i, p_j^i, r_k^{i+1}) ≻ R1(i, p_j^i, v_j)
//   R1(i, q_j^i, r_j^i)     ≻ R1(i-1, q_j^i, r_j^i)
//   R1(i, v_j, v_j)         ≻ R1(i, v_j, r_j^i)

#ifndef PREFREP_REDUCTIONS_HC_TO_S1_H_
#define PREFREP_REDUCTIONS_HC_TO_S1_H_

#include "graph/undirected.h"
#include "model/problem.h"

namespace prefrep {

/// Builds the Lemma 5.2 instance for `g` (which must have ≥ 1 node).
/// The returned problem satisfies: priority is acyclic and conflict-
/// bounded, J is a repair, and J is globally-optimal iff `g` has no
/// Hamiltonian cycle.
PreferredRepairProblem ReduceHamiltonianCycleToS1(const UndirectedGraph& g);

/// Builds the global improvement J′ that the "if" direction of Lemma 5.2
/// derives from a Hamiltonian cycle `cycle` (a permutation of the nodes).
/// Useful for verifying the forward direction constructively.
DynamicBitset ImprovementFromHamiltonianCycle(
    const PreferredRepairProblem& problem, const UndirectedGraph& g,
    const std::vector<size_t>& cycle);

}  // namespace prefrep

#endif  // PREFREP_REDUCTIONS_HC_TO_S1_H_
