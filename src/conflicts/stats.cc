#include "conflicts/stats.h"

#include <cmath>
#include <map>

#include "base/string_util.h"
#include "conflicts/blocks.h"

namespace prefrep {

namespace {

// Union-find over fact ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i] = i;
    }
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return;
    }
    if (size_[a] < size_[b]) {
      std::swap(a, b);
    }
    parent_[b] = a;
    size_[a] += size_[b];
  }

  size_t ComponentSize(size_t x) { return size_[Find(x)]; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace

std::vector<size_t> ConflictComponents(const ConflictGraph& cg,
                                       size_t* num_components) {
  size_t n = cg.num_facts();
  UnionFind uf(n);
  for (const auto& [f, g] : cg.edges()) {
    uf.Union(f, g);
  }
  std::vector<size_t> component(n, SIZE_MAX);
  size_t next = 0;
  for (size_t f = 0; f < n; ++f) {
    size_t root = uf.Find(f);
    if (component[root] == SIZE_MAX) {
      component[root] = next++;
    }
    component[f] = component[root];
  }
  if (num_components != nullptr) {
    *num_components = next;
  }
  return component;
}

ConflictStats ComputeConflictStats(const ConflictGraph& cg) {
  ConflictStats stats;
  stats.num_facts = cg.num_facts();
  stats.num_conflicts = cg.num_edges();
  for (FactId f = 0; f < cg.num_facts(); ++f) {
    size_t degree = cg.neighbors(f).size();
    if (degree > 0) {
      ++stats.conflicting_facts;
    }
    stats.max_degree = std::max(stats.max_degree, degree);
  }
  BlockDecomposition blocks(cg);
  stats.num_components = blocks.num_blocks();
  stats.largest_component = blocks.largest_block();
  stats.free_facts = blocks.free_facts().count();
  std::map<size_t, size_t> histogram;
  for (const Block& block : blocks.blocks()) {
    ++histogram[block.size()];
    // Moon–Moser: a graph on k vertices has ≤ 3^(k/3) maximal
    // independent sets; repairs multiply across blocks.
    stats.log2_repair_upper_bound +=
        static_cast<double>(block.size()) / 3.0 * std::log2(3.0);
  }
  stats.block_size_histogram.assign(histogram.begin(), histogram.end());
  return stats;
}

std::string ConflictStats::ToString() const {
  std::string out = StrFormat(
      "%zu facts, %zu conflicts (%zu facts contested, max degree %zu); "
      "%zu block(s), largest %zu, %zu free fact(s); repairs <= 2^%.1f",
      num_facts, num_conflicts, conflicting_facts, max_degree,
      num_components, largest_component, free_facts,
      log2_repair_upper_bound);
  if (!block_size_histogram.empty()) {
    out += "; block sizes:";
    for (const auto& [size, count] : block_size_histogram) {
      out += StrFormat(" %zux%zu", count, size);
    }
  }
  return out;
}

}  // namespace prefrep
