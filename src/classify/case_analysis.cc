#include "classify/case_analysis.h"

#include "classify/dichotomy.h"
#include "fd/determiners.h"

namespace prefrep {

Result<HardnessCase> AnalyzeHardRelation(const FDSet& fds) {
  RelationClassification classification = ClassifyRelationFds(fds);
  if (classification.kind != TractableKind::kHard) {
    return Status::InvalidArgument(
        "FD set is tractable (" + classification.explanation +
        "); the §5.2 branching applies only to hard relations");
  }

  HardnessCase out;

  // Case 1: equivalent to three or more keys (fewer is impossible here:
  // one key is a single FD, two keys is condition 2 of Theorem 3.1).
  if (fds.EquivalentToSomeKeySet()) {
    out.keys = fds.AsKeySet();
    PREFREP_CHECK_MSG(out.keys.size() >= 3,
                      "a hard key-set schema must have ≥ 3 keys");
    out.case_number = 1;
    out.explanation = "∆ is equivalent to a set of " +
                      std::to_string(out.keys.size()) + " keys (≥ 3)";
    return out;
  }

  // Cases 2–7.  A: minimal determiner that is not a key (§5.2 shows it
  // exists because ∆ is not equivalent to any set of keys).
  std::optional<AttrSet> a = MinimalNonKeyDeterminer(fds);
  if (!a.has_value()) {
    return Status::Internal(
        "no minimal non-key determiner found for a non-key-set ∆ "
        "(should be impossible)");
  }
  // B: non-redundant determiner ≠ A, minimal w.r.t. containment (§5.2
  // shows it exists because ∆ is not equivalent to a single FD).
  std::optional<AttrSet> b =
      MinimalNonRedundantDeterminerExcluding(fds, *a);
  if (!b.has_value()) {
    return Status::Internal(
        "no second non-redundant determiner found for a non-single-fd ∆ "
        "(should be impossible)");
  }
  out.a = *a;
  out.b = *b;
  out.a_plus = fds.Closure(*a);
  out.b_plus = fds.Closure(*b);
  AttrSet a_hat = out.a_plus - out.a;
  AttrSet b_hat = out.b_plus - out.b;

  if (out.a_plus == out.b_plus) {
    out.case_number = 2;
    out.explanation = "A⁺ = B⁺";
  } else if (!out.b_plus.IsSubsetOf(out.a_plus)) {
    if (out.a.Intersects(b_hat)) {
      if (a_hat.Intersects(out.b)) {
        out.case_number = 3;
        out.explanation = "B⁺ ⊄ A⁺, A ∩ B̂ ≠ ∅, Â ∩ B ≠ ∅";
      } else {
        out.case_number = 4;
        out.explanation = "B⁺ ⊄ A⁺, A ∩ B̂ ≠ ∅, Â ∩ B = ∅";
      }
    } else if (b_hat.IsSubsetOf(a_hat)) {
      out.case_number = 5;
      out.explanation = "B⁺ ⊄ A⁺, A ∩ B̂ = ∅, B̂ ⊆ Â";
    } else {
      out.case_number = 6;
      out.explanation = "B⁺ ⊄ A⁺, A ∩ B̂ = ∅, B̂ ⊄ Â";
    }
  } else {
    // B⁺ ⊊ A⁺, hence A⁺ ⊄ B⁺.
    out.case_number = 7;
    out.explanation = "A⁺ ⊄ B⁺ (symmetric to the B⁺ ⊄ A⁺ cases)";
  }
  return out;
}

}  // namespace prefrep
