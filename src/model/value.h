// Copyright (c) prefrep contributors.
// Interned constant values.  The paper assumes an infinite set Const of
// constants; we intern every constant (a string) to a dense 32-bit id so
// tuples are small integer vectors and comparisons are integer compares.

#ifndef PREFREP_MODEL_VALUE_H_
#define PREFREP_MODEL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/macros.h"

namespace prefrep {

/// Dense id of an interned constant.
using ValueId = uint32_t;

/// Sentinel for "no value".
inline constexpr ValueId kInvalidValueId = UINT32_MAX;

/// Transparent string hash, so the index can be probed with a
/// string_view directly (no std::string materialized per lookup).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Bidirectional map between constants (strings) and dense ValueIds.
///
/// Interning is append-only; ids are stable for the dictionary's lifetime.
class ValueDict {
 public:
  ValueDict() = default;
  PREFREP_DISALLOW_COPY(ValueDict);
  ValueDict(ValueDict&&) = default;
  ValueDict& operator=(ValueDict&&) = default;

  /// Interns `text`, returning its id (existing id if already interned).
  /// Allocation-free when `text` is already interned.
  ValueId Intern(std::string_view text) {
    auto it = index_.find(text);
    if (it != index_.end()) {
      return it->second;
    }
    PREFREP_CHECK_MSG(values_.size() < kInvalidValueId,
                      "value dictionary overflow");
    ValueId id = static_cast<ValueId>(values_.size());
    values_.emplace_back(text);
    index_.emplace(values_.back(), id);
    return id;
  }

  /// Interns the decimal rendering of an integer.
  ValueId InternInt(int64_t v) { return Intern(std::to_string(v)); }

  /// Looks up an already-interned constant; kInvalidValueId if absent.
  /// Allocation-free.
  ValueId Find(std::string_view text) const {
    auto it = index_.find(text);
    return it == index_.end() ? kInvalidValueId : it->second;
  }

  /// The text of an interned constant.
  const std::string& Text(ValueId id) const {
    PREFREP_CHECK(id < values_.size());
    return values_[id];
  }

  size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueId, TransparentStringHash,
                     std::equal_to<>>
      index_;
};

}  // namespace prefrep

#endif  // PREFREP_MODEL_VALUE_H_
