// Copyright (c) prefrep contributors.
// Global and Pareto improvements (Definition 2.4).  Given consistent
// subinstances J and J′ of a prioritizing instance (I, ≻):
//
//  * J′ is a *global improvement* of J if J′ ≠ J and every fact
//    f′ ∈ J \ J′ has some f ∈ J′ \ J with f ≻ f′;
//  * J′ is a *Pareto improvement* of J if some fact f ∈ J′ \ J has
//    f ≻ f′ for every f′ ∈ J \ J′.
//
// These are the definitional checkers; every algorithm in this library
// that reports a non-optimality witness has that witness re-verified by
// these functions in the test suite.

#ifndef PREFREP_REPAIR_IMPROVEMENT_H_
#define PREFREP_REPAIR_IMPROVEMENT_H_

#include <string>

#include "base/dynamic_bitset.h"
#include "conflicts/conflicts.h"
#include "priority/priority.h"

namespace prefrep {

/// True iff `improved` is a global improvement of `j` (both must be
/// consistent; consistency of `improved` is verified, `j` is assumed).
bool IsGlobalImprovement(const ConflictGraph& cg, const PriorityRelation& pr,
                         const DynamicBitset& j,
                         const DynamicBitset& improved);

/// True iff `improved` is a Pareto improvement of `j`.
bool IsParetoImprovement(const ConflictGraph& cg, const PriorityRelation& pr,
                         const DynamicBitset& j,
                         const DynamicBitset& improved);

/// An improvement witness: the subinstance found to improve J, plus a
/// human-readable explanation of how it was found.
struct ImprovementWitness {
  DynamicBitset improvement;
  std::string explanation;
};

/// Outcome of a preferred-repair check.  `optimal` answers the decision
/// problem; when false and the algorithm produces witnesses, `witness`
/// holds an improving subinstance.
struct CheckResult {
  bool optimal = false;
  std::optional<ImprovementWitness> witness;

  static CheckResult Optimal() { return CheckResult{true, std::nullopt}; }
  static CheckResult NotOptimal(DynamicBitset improvement,
                                std::string explanation) {
    return CheckResult{
        false, ImprovementWitness{std::move(improvement),
                                  std::move(explanation)}};
  }
};

}  // namespace prefrep

#endif  // PREFREP_REPAIR_IMPROVEMENT_H_
