// Copyright (c) prefrep contributors.
// Database instances (§2.1).  An instance over a signature is a finite set
// of facts R_i(t); we identify each instance with its set of facts and
// give every fact a dense FactId so subinstances are bitsets.
//
// Storage is columnar (docs/memory-layout.md): tuple values live in one
// contiguous fixed-stride slab per relation (arity is a per-relation
// constant, so row r of relation R starts at offset r·arity), and a
// `Fact` is a *view* — a relation id plus a span into that slab — not an
// owning vector.  The hot conflict-join kernels
// (conflicts/projection.h) read rows through `row(FactId)` and compare
// them word-parallel (base/simd.h); everything else keeps the familiar
// `fact(id).values[i]` shape through the ValueSpan view.

#ifndef PREFREP_MODEL_INSTANCE_H_
#define PREFREP_MODEL_INSTANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/dynamic_bitset.h"
#include "base/hash.h"
#include "base/simd.h"
#include "base/status.h"
#include "model/schema.h"
#include "model/value.h"

namespace prefrep {

/// Dense id of a fact within an Instance.
using FactId = uint32_t;

inline constexpr FactId kInvalidFactId = UINT32_MAX;

/// A read-only view of a tuple's values: a pointer into the owning
/// Instance's per-relation arena slab plus a length (= arity).  Cheap to
/// copy (16 bytes); invalidated by appends to the *same* instance (slab
/// growth may reallocate), so never hold one across AddFact* calls on
/// the instance it points into.
class ValueSpan {
 public:
  constexpr ValueSpan() = default;
  constexpr ValueSpan(const ValueId* data, uint32_t size)
      : data_(data), size_(size) {}

  const ValueId* data() const { return data_; }
  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const ValueId* begin() const { return data_; }
  const ValueId* end() const { return data_ + size_; }

  ValueId operator[](size_t i) const {
    PREFREP_DCHECK(i < size_);
    return data_[i];
  }

  /// Element-wise equality (word-parallel on contiguous memory).
  bool operator==(const ValueSpan& other) const {
    return size_ == other.size_ &&
           simd::EqualRange(data_, other.data_, size_);
  }
  bool operator!=(const ValueSpan& other) const { return !(*this == other); }

 private:
  const ValueId* data_ = nullptr;
  uint32_t size_ = 0;
};

/// A fact R(t): a relation symbol and a view of its tuple of interned
/// values.  Returned by value from Instance::fact(); see ValueSpan for
/// the (no appends while held) validity rule.
struct Fact {
  RelId rel = kInvalidRelId;
  ValueSpan values;

  bool operator==(const Fact& other) const {
    return rel == other.rel && values == other.values;
  }
};

/// A database instance: a set of facts over a schema, with dense ids.
///
/// Facts are set-valued (duplicates collapse to the same id) and ids are
/// stable.  An Instance owns its ValueDict, so facts from different
/// instances must never be mixed.  Facts can carry optional labels (like
/// the paper's g1f1, d1a, ...) used by the text format, the examples and
/// error messages.
class Instance {
 public:
  /// Creates an empty instance over `schema`.  The schema must outlive the
  /// instance.
  explicit Instance(const Schema* schema) : schema_(schema) {
    PREFREP_CHECK(schema != nullptr);
    by_relation_.resize(schema->num_relations());
    columns_.resize(schema->num_relations());
    stride_.reserve(schema->num_relations());
    for (RelId r = 0; r < schema->num_relations(); ++r) {
      stride_.push_back(static_cast<uint32_t>(schema->arity(r)));
    }
  }

  PREFREP_DISALLOW_COPY(Instance);
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  const Schema& schema() const { return *schema_; }
  ValueDict& dict() { return dict_; }
  const ValueDict& dict() const { return dict_; }

  size_t num_facts() const { return fact_rel_.size(); }

  /// The fact as a (rel, value-span) view.  Valid until the next append
  /// to this instance.
  Fact fact(FactId id) const {
    PREFREP_CHECK(id < fact_rel_.size());
    RelId rel = fact_rel_[id];
    return Fact{rel, ValueSpan(row(id), stride_[rel])};
  }

  /// Relation of a fact (no span materialized).
  RelId rel_of(FactId id) const {
    PREFREP_CHECK(id < fact_rel_.size());
    return fact_rel_[id];
  }

  /// Direct pointer to the fact's contiguous value row in the
  /// per-relation arena slab (length = arity of its relation).  The hot
  /// accessor of the conflict-join kernels; same validity rule as Fact.
  const ValueId* row(FactId id) const {
    PREFREP_DCHECK(id < fact_rel_.size());
    RelId rel = fact_rel_[id];
    return columns_[rel].data() +
           static_cast<size_t>(fact_slot_[id]) * stride_[rel];
  }

  /// The whole arena slab of one relation: facts_of(rel)[i]'s values are
  /// the stride-sized run starting at i·arity(rel).  For bulk kernels.
  const std::vector<ValueId>& relation_slab(RelId rel) const {
    PREFREP_CHECK(rel < columns_.size());
    return columns_[rel];
  }

  /// Adds a fact given by relation id and constant texts; returns the
  /// (possibly pre-existing) fact id.  Arity is checked.
  Result<FactId> AddFact(RelId rel, const std::vector<std::string>& constants,
                         std::string_view label = {});

  /// Adds a fact with already-interned values.
  Result<FactId> AddFactValues(RelId rel, std::vector<ValueId> values,
                               std::string_view label = {});

  /// Adds by relation name; fatal on error (for tests/examples).
  FactId MustAddFact(std::string_view relation_name,
                     const std::vector<std::string>& constants,
                     std::string_view label = {});

  /// Finds a fact by content; kInvalidFactId if absent.  The probe
  /// span may point anywhere (typically a caller-local buffer).
  FactId FindFact(const Fact& fact) const {
    return FindRow(fact.rel, fact.values.data(), fact.values.size());
  }

  /// Finds a fact by relation and value row; kInvalidFactId if absent.
  FactId FindRow(RelId rel, const ValueId* values, size_t count) const;

  /// Finds a fact by label; kInvalidFactId if absent.
  FactId FindLabel(std::string_view label) const;

  /// The label of a fact (empty if unlabeled).
  const std::string& label(FactId id) const {
    PREFREP_CHECK(id < labels_.size());
    return labels_[id];
  }

  /// All fact ids of relation `rel`, in insertion order.  Fact i of this
  /// list occupies slot i of the relation's arena slab.
  const std::vector<FactId>& facts_of(RelId rel) const {
    PREFREP_CHECK(rel < by_relation_.size());
    return by_relation_[rel];
  }

  /// An all-ones bitset over the facts (the subinstance I itself).
  DynamicBitset AllFacts() const {
    DynamicBitset b(num_facts());
    b.set_all();
    return b;
  }

  /// An all-zero bitset over the facts.
  DynamicBitset EmptySubinstance() const {
    return DynamicBitset(num_facts());
  }

  /// Builds a subinstance bitset from fact labels; fatal on unknown label.
  DynamicBitset SubinstanceByLabels(
      const std::vector<std::string>& labels) const;

  /// Renders a fact as "Rel(a, b, c)" (with its label prefix if present).
  std::string FactToString(FactId id) const;

  /// Renders a subinstance as "{f1, f2, ...}" using labels when available.
  std::string SubinstanceToString(const DynamicBitset& sub) const;

 private:
  /// Seeded content hash of a (relation, value-row) pair; drives the
  /// open-addressing fact index.
  static uint64_t HashRow(RelId rel, const ValueId* values, size_t count);

  /// Appends a row to the relation slab and all per-fact directories
  /// (the index must already have been probed: content is known new).
  FactId AppendRow(RelId rel, const ValueId* values, size_t count);

  /// Doubles the open-addressing index and reinserts every fact.
  void GrowIndex();

  const Schema* schema_;
  ValueDict dict_;

  // Columnar arena: one fixed-stride value slab per relation; the
  // per-fact directory maps a FactId to its (relation, slot) location.
  std::vector<std::vector<ValueId>> columns_;  // [rel] → slab
  std::vector<uint32_t> stride_;               // [rel] → arity
  std::vector<RelId> fact_rel_;                // [fact] → relation
  std::vector<uint32_t> fact_slot_;            // [fact] → slab row

  std::vector<std::string> labels_;
  std::vector<std::vector<FactId>> by_relation_;

  // Open-addressing content index (power-of-two capacity, linear
  // probing, kInvalidFactId = empty).  Keys are never materialized: a
  // probe hashes the candidate row and compares against slab rows.
  std::vector<FactId> index_slots_;

  std::unordered_map<std::string, FactId> label_index_;
};

}  // namespace prefrep

#endif  // PREFREP_MODEL_INSTANCE_H_
