// prefrepctl — command-line front end for the prefrep library.
//
// Subcommands (all read a problem in the text format of
// src/io/text_format.h):
//
//   prefrepctl classify <file>            both dichotomy verdicts
//   prefrepctl check <file> [--ccp] [--semantics global|pareto|completion]
//                                         is the file's J an optimal repair?
//   prefrepctl enumerate <file> [--optimal-only] [--limit N]
//                                         list repairs / optimal repairs
//   prefrepctl answers <file> "<query>" [--semantics ...]
//                                         consistent answers of a CQ
//   prefrepctl session <file> <script.ops>
//                                         run a session-ops batch script
//                                         (insert/delete/prefer edits +
//                                         queries; see docs/serving.md)
//   prefrepctl dump <file>                parse and pretty-print back
//
// Every solving subcommand routes through one resident SessionContext
// (src/serve/session.h): the conflict graph, classifications and block
// decomposition are built once per process and shared — the same
// artifacts a long-lived prefrepd server keeps warm across edits.
//
// Budget options (check / enumerate / answers / session): --deadline-ms
// N, --max-nodes N, --max-block N install a ResourceGovernor;
// exponential work past the budget degrades to "unknown" with a
// per-block degradation summary instead of running forever
// (docs/robustness.md).
//
// --threads N sets the per-block solver parallelism (0 = hardware
// concurrency, 1 = exact serial execution); results are identical at
// every value (docs/parallelism.md).
//
// --cache[=entries] installs a block-solve cache (docs/caching.md):
// isomorphic conflict blocks are solved once and replayed, with a
// traffic summary printed after the run.  Results are identical with
// and without it.
//
// Exit codes: 0 = success ("yes" answers), 1 = "no" answer, 2 = usage,
// 3 = input error, 4 = unknown (resource budget exhausted).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/block_cache.h"
#include "classify/ccp_dichotomy.h"
#include "classify/dichotomy.h"
#include "io/dot_export.h"
#include "io/ops_format.h"
#include "io/text_format.h"
#include "persist/durable_session.h"
#include "query/consistent_answers.h"
#include "repair/checker.h"
#include "conflicts/stats.h"
#include "repair/counting.h"
#include "repair/explain.h"
#include "serve/session.h"

using namespace prefrep;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: prefrepctl <command> <file> [options]\n"
      "  classify <file>\n"
      "  check <file> [--ccp] [--semantics global|pareto|completion]\n"
      "  enumerate <file> [--optimal-only] [--limit N]\n"
      "  answers <file> \"Q(x) :- R(x, y)\" [--semantics "
      "all|global|pareto|completion]\n"
      "  session <file> <script.ops>  run session ops (edits + queries)\n"
      "  stats <file>          conflict/block structure + fallback cost\n"
      "  dot <file>            Graphviz of conflicts + priorities + J\n"
      "  dump <file>\n"
      "budget options (check/enumerate/answers/session):\n"
      "  --deadline-ms N  --max-nodes N  --max-block N\n"
      "  degrade to \"unknown\" (exit 4) instead of running forever\n"
      "  --threads N      per-block solver threads (0 = hardware, 1 = "
      "serial)\n"
      "  --cache[=N]      memoize per-block solves (N = capacity in "
      "entries)\n"
      "durability options (session; see docs/durability.md):\n"
      "  --wal <path>     recover from and log edits to a write-ahead "
      "log\n"
      "  --snapshot <path>  snapshot location (default <wal>.snapshot)\n"
      "  --snapshot-every N  checkpoint after every N logged edits\n"
      "  --fsync=MODE     always | batch | off (default always)\n"
      "  --crossover      report resident-vs-rebuild query timing after "
      "the script\n");
  return 2;
}

Result<PreferredRepairProblem> Load(const char* path) {
  return ParseProblemFile(path);
}

int CmdClassify(const PreferredRepairProblem& p) {
  const Schema& schema = p.instance->schema();
  SchemaClassification ordinary = ClassifySchema(schema);
  for (RelId r = 0; r < schema.num_relations(); ++r) {
    std::printf("%-12s %-10s %s\n", schema.relation_name(r).c_str(),
                TractableKindName(ordinary.relations[r].kind),
                ordinary.relations[r].explanation.c_str());
  }
  CcpSchemaClassification ccp = ClassifyCcpSchema(schema);
  std::printf("ordinary priorities:       %s\n",
              ordinary.tractable ? "PTIME" : "coNP-complete");
  std::printf("cross-conflict priorities: %s (%s)\n",
              ccp.tractable() ? "PTIME" : "coNP-complete",
              ccp.explanation.c_str());
  return 0;
}

void PrintCacheStats(const BlockSolveCache* cache) {
  if (cache == nullptr) {
    return;
  }
  BlockCacheStats s = cache->stats();
  std::printf("cache: %llu hit(s), %llu miss(es), %llu store(s), "
              "%llu eviction(s), %zu entries, ~%zu bytes\n",
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.stores),
              static_cast<unsigned long long>(s.evictions), s.entries,
              s.bytes);
}

void PrintDegradation(const ResourceGovernor& governor,
                      const DegradationReport& degradation) {
  if (!governor.degraded() && !degradation.Degraded()) {
    return;
  }
  std::printf("budget: %s\n", governor.CauseString().c_str());
  if (degradation.blocks_total > 0) {
    std::printf("%s\n", degradation.ToString().c_str());
  }
}

int CmdCheck(const PreferredRepairProblem& p, SessionContext& session,
             bool ccp, const std::string& semantics,
             const ResourceBudget& budget) {
  CheckerOptions opts;
  opts.mode = ccp ? PriorityMode::kCrossConflict : PriorityMode::kConflictOnly;
  Status valid = p.priority->Validate(opts.mode);
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid priority: %s\n",
                 valid.ToString().c_str());
    return 3;
  }
  ResourceGovernor governor(budget);
  ProblemContext& ctx = session.context();
  if (!budget.Unlimited()) {
    ctx.set_governor(&governor);
  }
  RepairChecker checker(ctx, opts);
  std::printf("J = %s\n", p.instance->SubinstanceToString(p.j).c_str());
  bool optimal = false;
  if (semantics == "pareto") {
    optimal = checker.CheckParetoOptimal(p.j).optimal;
    std::printf("Pareto-optimal repair: %s\n", optimal ? "yes" : "no");
  } else if (semantics == "completion") {
    optimal = checker.CheckCompletionOptimal(p.j).optimal;
    std::printf("completion-optimal repair: %s\n", optimal ? "yes" : "no");
  } else {
    auto outcome = checker.CheckGloballyOptimal(p.j);
    if (!outcome.ok()) {
      ctx.set_governor(nullptr);
      std::fprintf(stderr, "error: %s\n",
                   outcome.status().ToString().c_str());
      return 3;
    }
    for (const std::string& step : outcome->route) {
      std::printf("route: %s\n", step.c_str());
    }
    if (!outcome->result.known()) {
      std::printf("globally-optimal repair: unknown (%s)\n",
                  outcome->result.unknown_reason.c_str());
      PrintDegradation(governor, outcome->degradation);
      PrintCacheStats(session.cache());
      ctx.set_governor(nullptr);
      return 4;
    }
    optimal = outcome->result.optimal;
    std::printf("globally-optimal repair: %s\n", optimal ? "yes" : "no");
    PrintDegradation(governor, outcome->degradation);
    PrintCacheStats(session.cache());
    std::printf("%s", ExplainOutcome(ctx.conflict_graph(), session.priority(),
                                     p.j, outcome->result)
                          .c_str());
  }
  ctx.set_governor(nullptr);
  return optimal ? 0 : 1;
}

int CmdEnumerate(const PreferredRepairProblem& p, SessionContext& session,
                 bool optimal_only, size_t limit,
                 const ResourceBudget& budget) {
  ProblemContext& ctx = session.context();
  const ConflictGraph& cg = ctx.conflict_graph();
  ResourceGovernor governor(budget);
  if (optimal_only) {
    if (!budget.Unlimited()) {
      ctx.set_governor(&governor);
    }
    std::vector<DynamicBitset> optimal =
        AllOptimalRepairs(ctx, RepairSemantics::kGlobal);
    ctx.set_governor(nullptr);
    if (optimal.empty()) {
      // Every instance has an optimal repair; empty means abandoned.
      std::printf("enumeration abandoned: %s\n",
                  governor.CauseString().c_str());
      PrintCacheStats(session.cache());
      return 4;
    }
    std::printf("%zu globally-optimal repair(s)\n", optimal.size());
    size_t shown = 0;
    for (const DynamicBitset& r : optimal) {
      if (shown++ >= limit) {
        std::printf("... (%zu more)\n", optimal.size() - limit);
        break;
      }
      std::printf("  %s\n", p.instance->SubinstanceToString(r).c_str());
    }
    if (auto unique = UniqueGloballyOptimalRepair(cg, session.priority())) {
      std::printf("the cleaning is unambiguous (unique optimal repair)\n");
    }
    PrintCacheStats(session.cache());
    return 0;
  }
  size_t shown = 0;
  uint64_t total = 0;
  ForEachRepair(cg, governor, [&](const DynamicBitset& r) {
    ++total;
    if (shown < limit) {
      std::printf("  %s\n", p.instance->SubinstanceToString(r).c_str());
      ++shown;
    }
    return true;
  });
  if (governor.exhausted()) {
    std::printf("%llu repair(s) seen, then %s\n",
                static_cast<unsigned long long>(total),
                governor.CauseString().c_str());
    return 4;
  }
  std::printf("%llu repair(s) in total\n",
              static_cast<unsigned long long>(total));
  return 0;
}

int CmdAnswers(const PreferredRepairProblem& p, SessionContext& session,
               const char* query_text, const std::string& semantics,
               const ResourceBudget& budget) {
  Result<ConjunctiveQuery> query = ConjunctiveQuery::Parse(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "bad query: %s\n",
                 query.status().ToString().c_str());
    return 3;
  }
  AnswerSemantics sem = AnswerSemantics::kGlobal;
  if (semantics == "all") {
    sem = AnswerSemantics::kAllRepairs;
  } else if (semantics == "pareto") {
    sem = AnswerSemantics::kPareto;
  } else if (semantics == "completion") {
    sem = AnswerSemantics::kCompletion;
  }
  (void)p;
  ResourceGovernor governor(budget);
  ProblemContext& ctx = session.context();
  if (!budget.Unlimited()) {
    ctx.set_governor(&governor);
  }
  // Report which route answered: "categorical" (the pre-pass certified
  // a unique optimal repair and the intersection collapsed to one query
  // evaluation) or "enumeration" (the general repair-set product).
  CqaPath path = CqaPath::kEnumeration;
  CqaOptions cqa_options;
  cqa_options.memo = &session.categoricity_memo();
  cqa_options.path = &path;
  if (query->IsBoolean()) {
    Trilean certain = CertainlyTrueBounded(ctx, *query, sem, nullptr,
                                           cqa_options);
    ctx.set_governor(nullptr);
    std::printf("certainly true: %s\n",
                certain == Trilean::kTrue
                    ? "yes"
                    : certain == Trilean::kFalse ? "no" : "unknown");
    std::printf("path: %s\n", CqaPathName(path));
    PrintCacheStats(session.cache());
    if (certain == Trilean::kUnknown) {
      std::printf("budget: %s\n", governor.CauseString().c_str());
      return 4;
    }
    return certain == Trilean::kTrue ? 0 : 1;
  }
  auto bounded = ConsistentAnswersBounded(ctx, *query, sem, nullptr,
                                          cqa_options);
  ctx.set_governor(nullptr);
  if (!bounded.ok()) {
    std::printf("answers unknown: %s\n", bounded.status().ToString().c_str());
    PrintCacheStats(session.cache());
    return 4;
  }
  const auto& answers = *bounded;
  std::printf("%zu consistent answer(s):\n", answers.size());
  for (const auto& tuple : answers) {
    std::printf("  (");
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", tuple[i].c_str());
    }
    std::printf(")\n");
  }
  std::printf("path: %s\n", CqaPathName(path));
  PrintCacheStats(session.cache());
  return 0;
}

// Re-runs the script's queries on a from-scratch rebuild of the
// session's serialized live state and reports resident-vs-rebuild wall
// time.  This is the visibility half of the cache-off degradation fix:
// a resident session with the cache disabled can end up SLOWER than
// rebuilding per batch (BENCH_serve.json, blocks=256 cache=off at
// 0.84x), and before this probe nothing in the serving surface said so.
void PrintCrossover(SessionContext& session, SessionOptions options,
                    const std::vector<SessionOp>& ops) {
  const uint64_t resident_micros = session.stats().query_micros;
  if (session.stats().queries == 0) {
    std::printf("crossover: no queries in script, nothing to compare\n");
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  Result<PreferredRepairProblem> rebuilt_problem =
      ParseProblemText(session.SerializeLive());
  if (!rebuilt_problem.ok()) {
    std::printf("crossover: rebuild probe failed: %s\n",
                rebuilt_problem.status().ToString().c_str());
    return;
  }
  Result<std::unique_ptr<SessionContext>> rebuilt =
      SessionContext::Create(*rebuilt_problem, options);
  if (!rebuilt.ok()) {
    std::printf("crossover: rebuild probe failed: %s\n",
                rebuilt.status().ToString().c_str());
    return;
  }
  for (const SessionOp& op : ops) {
    if (op.kind == SessionOp::Kind::kCheck ||
        op.kind == SessionOp::Kind::kCount ||
        op.kind == SessionOp::Kind::kConstruct ||
        op.kind == SessionOp::Kind::kCqa) {
      // Replies were proven byte-identical by the serve battery; here
      // only the wall clock matters.
      Result<std::string> reply = (*rebuilt)->Execute(op);
      if (!reply.ok()) {
        std::printf("crossover: rebuild probe failed: %s\n",
                    reply.status().ToString().c_str());
        return;
      }
    }
  }
  const uint64_t rebuild_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  const double speedup =
      resident_micros == 0
          ? 0.0
          : static_cast<double>(rebuild_micros) /
                static_cast<double>(resident_micros);
  std::printf("crossover: resident-query-micros=%llu "
              "rebuild-replay-micros=%llu speedup=%.2fx\n",
              static_cast<unsigned long long>(resident_micros),
              static_cast<unsigned long long>(rebuild_micros),
              speedup);
  if (speedup != 0.0 && speedup < 1.0) {
    std::printf("warning: resident serving is SLOWER than rebuilding per "
                "batch (cache-capacity=%zu); consider --cache or larger "
                "capacity\n",
                options.cache_capacity);
  }
}

int CmdSession(SessionContext& session, DurableSession* durable,
               const SessionOptions& options, const char* script_path,
               bool crossover) {
  std::ifstream in(script_path);
  if (!in.is_open()) {
    std::fprintf(stderr, "error: cannot open script '%s'\n", script_path);
    return 3;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<std::vector<SessionOp>> ops = ParseSessionScript(buffer.str());
  if (!ops.ok()) {
    std::fprintf(stderr, "error: %s\n", ops.status().ToString().c_str());
    return 3;
  }
  for (const SessionOp& op : *ops) {
    Result<std::string> reply = durable != nullptr ? durable->Execute(op)
                                                   : session.Execute(op);
    if (reply.ok()) {
      std::printf("%s\n\n", reply->c_str());
    } else {
      std::printf("error: %s\n\n", reply.status().message().c_str());
    }
  }
  PrintCacheStats(session.cache());
  if (crossover) {
    PrintCrossover(session, options, *ops);
  }
  if (durable != nullptr) {
    const Status closed = durable->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "error: shutdown checkpoint failed: %s\n",
                   closed.ToString().c_str());
      return 3;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string command = argv[1];
  Result<PreferredRepairProblem> problem = Load(argv[2]);
  if (!problem.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 problem.status().ToString().c_str());
    return 3;
  }
  // Shared option parsing.
  bool ccp = false;
  bool optimal_only = false;
  size_t limit = 20;
  std::string semantics = "global";
  ResourceBudget budget;
  size_t threads = 0;  // 0 = hardware concurrency (the context default)
  size_t cache_capacity = 0;
  DurabilityOptions durability;
  bool crossover = false;
  const char* query_text = nullptr;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ccp") == 0) {
      ccp = true;
    } else if (std::strcmp(argv[i], "--wal") == 0 && i + 1 < argc) {
      durability.wal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      durability.snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0 &&
               i + 1 < argc) {
      durability.snapshot_every =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strncmp(argv[i], "--fsync=", 8) == 0) {
      Result<FsyncMode> mode = ParseFsyncMode(argv[i] + 8);
      if (!mode.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     mode.status().ToString().c_str());
        return 2;
      }
      durability.fsync = *mode;
    } else if (std::strcmp(argv[i], "--crossover") == 0) {
      crossover = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      cache_capacity = BlockSolveCache::kDefaultCapacity;
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      cache_capacity = static_cast<size_t>(std::atoll(argv[i] + 8));
    } else if (std::strcmp(argv[i], "--optimal-only") == 0) {
      optimal_only = true;
    } else if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
      limit = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--semantics") == 0 && i + 1 < argc) {
      semantics = argv[++i];
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      budget.deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc) {
      budget.max_nodes = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-block") == 0 && i + 1 < argc) {
      budget.max_block = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (query_text == nullptr) {
      query_text = argv[i];
    } else {
      return Usage();
    }
  }

  // The stateless commands work straight off the parsed problem (and
  // must keep working on priorities no session would accept).
  if (command == "classify") {
    return CmdClassify(*problem);
  }
  if (command == "dump") {
    std::printf("%s", ProblemToText(*problem).c_str());
    return 0;
  }

  // Everything else runs through one resident session: conflict graph,
  // classifications and blocks built once, shared by every call.
  SessionOptions session_options;
  session_options.threads = threads;
  session_options.cache_capacity = cache_capacity;
  if (command == "session") {
    session_options.budget = budget;
  }

  // `session --wal` recovers through the durable wrapper; every other
  // command (and walless session runs) stays on the plain path.
  if (command == "session" && !durability.wal_path.empty()) {
    if (query_text == nullptr) {
      return Usage();
    }
    Result<std::unique_ptr<DurableSession>> durable =
        DurableSession::Open(*problem, session_options, durability);
    if (!durable.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   durable.status().ToString().c_str());
      return durable.status().code() == StatusCode::kDataLoss ? 5 : 3;
    }
    std::printf("recovery: %s\n\n",
                (*durable)->recovery().ToString().c_str());
    return CmdSession((*durable)->session(), durable->get(),
                      session_options, query_text, crossover);
  }

  Result<std::unique_ptr<SessionContext>> session =
      SessionContext::Create(*problem, session_options);
  if (!session.ok()) {
    std::fprintf(stderr, "invalid priority: %s\n",
                 session.status().ToString().c_str());
    return 3;
  }

  if (command == "check") {
    return CmdCheck(*problem, **session, ccp, semantics, budget);
  }
  if (command == "enumerate") {
    return CmdEnumerate(*problem, **session, optimal_only, limit, budget);
  }
  if (command == "answers") {
    if (query_text == nullptr) {
      return Usage();
    }
    return CmdAnswers(*problem, **session, query_text, semantics, budget);
  }
  if (command == "session") {
    if (query_text == nullptr) {
      return Usage();
    }
    return CmdSession(**session, /*durable=*/nullptr, session_options,
                      query_text, crossover);
  }
  if (command == "stats") {
    const ConflictGraph& cg = (*session)->context().conflict_graph();
    ConflictStats stats = ComputeConflictStats(cg);
    std::printf("%s\n", stats.ToString().c_str());
    // Predicted cost of the per-block exponential fallback (Σ 2^size
    // block-repair enumerations) — what a check on a hard schema pays
    // after the block decomposition, vs 2^contested before it.
    double fallback = 0.0;
    for (const auto& [size, count] : stats.block_size_histogram) {
      fallback += static_cast<double>(count) *
                  std::pow(2.0, static_cast<double>(size));
    }
    std::printf("exponential fallback cost: ~%.0f block-repairs "
                "(whole-instance: 2^%zu)\n",
                fallback, stats.conflicting_facts);
    return 0;
  }
  if (command == "dot") {
    const ConflictGraph& cg = (*session)->context().conflict_graph();
    std::printf("%s",
                ConflictGraphToDot(cg, (*session)->priority(), problem->j)
                    .c_str());
    return 0;
  }
  return Usage();
}
