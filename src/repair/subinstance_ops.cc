// Consistency and maximality primitives over subinstances (§2.2, §2.4):
// the building blocks every checker and constructor shares.
#include "repair/subinstance_ops.h"

#include <unordered_map>

#include "base/hash.h"

namespace prefrep {

namespace {

std::vector<ValueId> Project(const Fact& f, AttrSet attrs) {
  std::vector<ValueId> key;
  key.reserve(static_cast<size_t>(attrs.size()));
  attrs.ForEach([&](int a) { key.push_back(f.values[a - 1]); });
  return key;
}

}  // namespace

bool IsConsistent(const Instance& instance, const DynamicBitset& sub) {
  return !FindViolation(instance, sub).has_value();
}

std::optional<std::pair<FactId, FactId>> FindViolation(
    const Instance& instance, const DynamicBitset& sub) {
  const Schema& schema = instance.schema();
  for (RelId rel = 0; rel < schema.num_relations(); ++rel) {
    for (const FD& fd : schema.fds(rel).fds()) {
      if (fd.IsTrivial()) {
        continue;
      }
      // For A → B: within each A-projection group, all facts must share
      // the same B-projection; remember one representative per group.
      std::unordered_map<std::vector<ValueId>,
                         std::pair<std::vector<ValueId>, FactId>,
                         VectorHash<ValueId>>
          groups;
      for (FactId f : instance.facts_of(rel)) {
        if (!sub.test(f)) {
          continue;
        }
        const Fact& fact = instance.fact(f);
        std::vector<ValueId> lhs_key = Project(fact, fd.lhs);
        std::vector<ValueId> rhs_key = Project(fact, fd.rhs);
        auto [it, inserted] =
            groups.try_emplace(std::move(lhs_key), rhs_key, f);
        if (!inserted && it->second.first != rhs_key) {
          return std::make_pair(it->second.second, f);
        }
      }
    }
  }
  return std::nullopt;
}

bool IsConsistent(const ConflictGraph& cg, const DynamicBitset& sub) {
  bool consistent = true;
  sub.ForEach([&](size_t f) {
    if (!consistent) {
      return;
    }
    for (FactId g : cg.neighbors(static_cast<FactId>(f))) {
      if (g > f && sub.test(g)) {
        consistent = false;
        return;
      }
    }
  });
  return consistent;
}

bool IsRepair(const ConflictGraph& cg, const DynamicBitset& sub) {
  if (!IsConsistent(cg, sub)) {
    return false;
  }
  return !FindExtension(cg, sub).has_value();
}

std::optional<FactId> FindExtension(const ConflictGraph& cg,
                                    const DynamicBitset& sub) {
  size_t n = cg.num_facts();
  for (FactId f = 0; f < n; ++f) {
    if (sub.test(f)) {
      continue;
    }
    if (!cg.ConflictsWithSet(f, sub)) {
      return f;
    }
  }
  return std::nullopt;
}

DynamicBitset ExtendToRepair(const ConflictGraph& cg, DynamicBitset sub) {
  PREFREP_CHECK_MSG(IsConsistent(cg, sub),
                    "ExtendToRepair requires a consistent subinstance");
  size_t n = cg.num_facts();
  for (FactId f = 0; f < n; ++f) {
    if (!sub.test(f) && !cg.ConflictsWithSet(f, sub)) {
      sub.set(f);
    }
  }
  return sub;
}

DynamicBitset RestrictToRelation(const Instance& instance, RelId rel,
                                 const DynamicBitset& sub) {
  DynamicBitset out(instance.num_facts());
  for (FactId f : instance.facts_of(rel)) {
    if (sub.test(f)) {
      out.set(f);
    }
  }
  return out;
}

}  // namespace prefrep
