// Copyright (c) prefrep contributors.
// Positive control for the negative-compile tests: the same constructs
// written correctly — Status consumed, CheckResult consumed, guarded
// field accessed under its lock — compile cleanly with every flag the
// negative TUs are compiled with.  If this fails, the negative tests'
// "failure" proves nothing (the flags or includes are broken, not the
// discipline).

#include "base/status.h"
#include "base/thread_annotations.h"
#include "repair/improvement.h"

namespace {

prefrep::Status MightFail() { return prefrep::Status::OK(); }
prefrep::CheckResult Decide() { return prefrep::CheckResult::Optimal(); }

struct Counter {
  prefrep::Mutex mu;
  int value PREFREP_GUARDED_BY(mu) = 0;
};

int LockedRead(Counter& c) {
  prefrep::MutexLock lock(c.mu);
  return c.value;
}

bool Caller() {
  prefrep::Status s = MightFail();
  prefrep::CheckResult r = Decide();
  return s.ok() && r.optimal;
}

}  // namespace

int main() {
  Counter c;
  return Caller() ? LockedRead(c) : 1;
}
