#include "fd/determiners.h"

#include <algorithm>

namespace prefrep {

bool IsNontrivialDeterminer(const FDSet& fds, AttrSet a) {
  return a.IsStrictSubsetOf(fds.Closure(a));
}

bool IsNonRedundantDeterminer(const FDSet& fds, AttrSet a) {
  if (!IsNontrivialDeterminer(fds, a)) {
    return false;
  }
  AttrSet gained = fds.Closure(a) - a;
  // Enumerate proper subsets of a.  |a| is bounded by the arity of the
  // (fixed, small) schema, so 2^|a| enumeration is acceptable here.
  std::vector<int> attrs = a.ToVector();
  size_t n = attrs.size();
  PREFREP_CHECK_MSG(n <= 24, "determiner enumeration limited to 24 attrs");
  for (uint64_t bits = 0; bits + 1 < (uint64_t{1} << n); ++bits) {
    AttrSet subset;
    for (size_t i = 0; i < n; ++i) {
      if ((bits >> i) & 1) {
        subset.Add(attrs[i]);
      }
    }
    if (gained.IsSubsetOf(fds.Closure(subset))) {
      return false;
    }
  }
  return true;
}

bool IsMinimalDeterminer(const FDSet& fds, AttrSet a) {
  if (!IsNontrivialDeterminer(fds, a)) {
    return false;
  }
  // Every nontrivial determiner contains a syntactic LHS that is itself
  // nontrivial (the first FD whose application grows the closure of `a`
  // has its LHS inside `a`), so it suffices to look at the LHSs of ∆.
  for (const AttrSet& lhs : fds.LeftHandSides()) {
    if (lhs.IsStrictSubsetOf(a) && IsNontrivialDeterminer(fds, lhs)) {
      return false;
    }
  }
  return true;
}

std::vector<AttrSet> MinimalDeterminers(const FDSet& fds) {
  // Every minimal determiner is a syntactic LHS: if A is nontrivial, then
  // the first closure-growing FD application from A has LHS X ⊆ A with X
  // nontrivial; minimality forces X = A.
  std::vector<AttrSet> out;
  for (const AttrSet& lhs : fds.LeftHandSides()) {
    if (IsMinimalDeterminer(fds, lhs) &&
        std::find(out.begin(), out.end(), lhs) == out.end()) {
      out.push_back(lhs);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<AttrSet> MinimalNonKeyDeterminer(const FDSet& fds) {
  for (const AttrSet& a : MinimalDeterminers(fds)) {
    if (!fds.IsKey(a)) {
      return a;
    }
  }
  return std::nullopt;
}

namespace {

// Non-redundant determiners are subsets of the union of the syntactic
// LHSs: an attribute outside every LHS never fires an FD, so dropping it
// leaves the gained closure intact and witnesses redundancy.
std::vector<AttrSet> AllNonRedundantDeterminers(const FDSet& fds) {
  AttrSet universe;
  for (const AttrSet& lhs : fds.LeftHandSides()) {
    universe |= lhs;
  }
  std::vector<int> attrs = universe.ToVector();
  size_t n = attrs.size();
  PREFREP_CHECK_MSG(n <= 20, "determiner enumeration limited to 20 attrs");
  std::vector<AttrSet> out;
  for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
    AttrSet candidate;
    for (size_t i = 0; i < n; ++i) {
      if ((bits >> i) & 1) {
        candidate.Add(attrs[i]);
      }
    }
    if (IsNonRedundantDeterminer(fds, candidate)) {
      out.push_back(candidate);
    }
  }
  return out;
}

}  // namespace

std::optional<AttrSet> MinimalNonRedundantDeterminerExcluding(
    const FDSet& fds, AttrSet exclude) {
  std::vector<AttrSet> candidates = AllNonRedundantDeterminers(fds);
  std::optional<AttrSet> best;
  for (const AttrSet& b : candidates) {
    if (b == exclude) {
      continue;
    }
    bool minimal = true;
    for (const AttrSet& other : candidates) {
      if (other != exclude && other.IsStrictSubsetOf(b)) {
        minimal = false;
        break;
      }
    }
    if (!minimal) {
      continue;
    }
    if (!best.has_value() || b < *best) {
      best = b;  // deterministic tie-break for reproducibility
    }
  }
  return best;
}

}  // namespace prefrep
