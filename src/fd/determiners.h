// Copyright (c) prefrep contributors.
// Determiners (§5.2 of the paper).  For a single-relation schema with FD
// set ∆ over ⟦R⟧:
//
//  * A is a *nontrivial determiner*  iff A ⊊ ⟦R.A⟧ (its closure strictly
//    grows);
//  * A is a *non-redundant determiner* iff there is no B ⊊ A with
//    (⟦R.A⟧ \ A) ⊆ ⟦R.B⟧ (what A adds is not already determined by a
//    proper subset);
//  * A is a *minimal determiner* iff A is nontrivial and no proper subset
//    of A is a nontrivial determiner.
//
// These notions drive the case branching of the hardness proof (Cases 2–7)
// and are exposed for the case-analysis module and its tests.

#ifndef PREFREP_FD_DETERMINERS_H_
#define PREFREP_FD_DETERMINERS_H_

#include <optional>
#include <vector>

#include "fd/fd_set.h"

namespace prefrep {

/// True iff A ⊊ ⟦R.A⟧ under `fds`.
bool IsNontrivialDeterminer(const FDSet& fds, AttrSet a);

/// True iff no B ⊊ A has (⟦R.A⟧ \ A) ⊆ ⟦R.B⟧ and A is nontrivial.
/// (The paper notes every non-redundant determiner is nontrivial.)
bool IsNonRedundantDeterminer(const FDSet& fds, AttrSet a);

/// True iff A is nontrivial and no proper subset of A is nontrivial.
bool IsMinimalDeterminer(const FDSet& fds, AttrSet a);

/// All minimal determiners, found among subsets of syntactic LHSs (every
/// minimal determiner is contained in a syntactic LHS whose closure grows,
/// so this search is complete).
std::vector<AttrSet> MinimalDeterminers(const FDSet& fds);

/// Finds a minimal determiner that is not a key, if one exists (used for
/// Cases 2–7 of the hardness branching, where ∆ is not equivalent to any
/// set of keys and such an A must exist).
std::optional<AttrSet> MinimalNonKeyDeterminer(const FDSet& fds);

/// Finds a non-redundant determiner B ≠ `exclude` that is minimal w.r.t.
/// set containment among such determiners (used as the second determiner
/// in the hardness branching; exists whenever ∆ is not equivalent to a
/// single FD).
std::optional<AttrSet> MinimalNonRedundantDeterminerExcluding(
    const FDSet& fds, AttrSet exclude);

}  // namespace prefrep

#endif  // PREFREP_FD_DETERMINERS_H_
