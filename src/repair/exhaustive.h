// Copyright (c) prefrep contributors.
// Exponential exact baselines.  Globally-optimal repair checking is
// coNP-complete in general (Theorem 3.1's hard side), so the library
// ships an exact checker based on repair enumeration:
//
//   * a consistent subinstance is an independent set of the conflict
//     graph, so repairs are its maximal independent sets, enumerated with
//     Bron–Kerbosch (with pivoting) on the complement graph;
//   * if J has a global improvement, it has one that is a repair (extend
//     any improvement J′ to a maximal J″: J″\J ⊇ J′\J while J\J″ ⊆ J\J′),
//     so scanning repairs is complete — and the same argument holds for
//     Pareto improvements.
//
// These routines validate the polynomial algorithms in the test suite and
// exhibit the exponential blow-up on the hard schemas in the benchmarks.

#ifndef PREFREP_REPAIR_EXHAUSTIVE_H_
#define PREFREP_REPAIR_EXHAUSTIVE_H_

#include <functional>
#include <vector>

#include "base/governor.h"
#include "repair/improvement.h"

namespace prefrep {

/// Enumerates every repair (maximal consistent subinstance) of the
/// instance underlying `cg`, invoking `fn`; stops early when `fn` returns
/// false.  Worst-case exponential output (that is inherent).
void ForEachRepair(const ConflictGraph& cg,
                   const std::function<bool(const DynamicBitset&)>& fn);

/// Budget-governed variant: one `governor.Checkpoint()` per search-tree
/// node.  When the budget runs out the enumeration unwinds immediately
/// (check `governor.exhausted()` afterwards — the enumeration is then
/// incomplete and callers must not treat it as exhaustive).
void ForEachRepair(const ConflictGraph& cg, ResourceGovernor& governor,
                   const std::function<bool(const DynamicBitset&)>& fn);

/// Same, restricted to the facts of `universe`: enumerates the maximal
/// consistent subsets of `universe` (used for the per-relation fallback
/// of the unified checker, where one relation is hard but the others are
/// tractable).
void ForEachRepairWithin(const ConflictGraph& cg,
                         const DynamicBitset& universe,
                         const std::function<bool(const DynamicBitset&)>& fn);

/// Budget-governed variant of ForEachRepairWithin (see above).
void ForEachRepairWithin(const ConflictGraph& cg,
                         const DynamicBitset& universe,
                         ResourceGovernor& governor,
                         const std::function<bool(const DynamicBitset&)>& fn);

/// Ablation variant of ForEachRepair: Bron–Kerbosch *without* pivoting.
/// Exposed for the ablation benchmark that justifies the pivoting
/// choice; results are identical (verified in tests), only slower.
void ForEachRepairNoPivot(
    const ConflictGraph& cg,
    const std::function<bool(const DynamicBitset&)>& fn);

/// Materializes all repairs (use only on small instances).
std::vector<DynamicBitset> AllRepairs(const ConflictGraph& cg);

/// Materializes the maximal consistent subsets of `universe` (full-size
/// bitsets with only universe facts set).  The per-block building brick:
/// the repairs of I are exactly {free facts} ∪ one block-repair per
/// block, so whole-instance work of 2^n factors into Σ 2^{|block|}.
std::vector<DynamicBitset> AllRepairsWithin(const ConflictGraph& cg,
                                            const DynamicBitset& universe);

/// Counts the repairs without materializing them.
uint64_t CountRepairs(const ConflictGraph& cg);

/// Exact globally-optimal repair checking by repair enumeration.
/// Correct for every schema and for both priority modes.
CheckResult ExhaustiveCheckGlobalOptimal(const ConflictGraph& cg,
                                         const PriorityRelation& pr,
                                         const DynamicBitset& j);

/// Budget-governed variant.  A found improvement is definite (kNo) even
/// if the budget later runs out; when the budget fires before the scan
/// certifies optimality the verdict is kUnknown, never a false kYes.
CheckResult ExhaustiveCheckGlobalOptimal(const ConflictGraph& cg,
                                         const PriorityRelation& pr,
                                         const DynamicBitset& j,
                                         ResourceGovernor& governor);

/// Exact Pareto-optimal repair checking by repair enumeration (used to
/// cross-validate the polynomial Pareto check).
CheckResult ExhaustiveCheckParetoOptimal(const ConflictGraph& cg,
                                         const PriorityRelation& pr,
                                         const DynamicBitset& j);

/// Budget-governed variant (same contract as the global one).
CheckResult ExhaustiveCheckParetoOptimal(const ConflictGraph& cg,
                                         const PriorityRelation& pr,
                                         const DynamicBitset& j,
                                         ResourceGovernor& governor);

/// The three preferred-repair semantics of [SCM] (§2.4).
enum class RepairSemantics {
  kGlobal,
  kPareto,
  kCompletion,
};

/// Materializes all repairs optimal under the given semantics.  Useful
/// for counting preferred repairs — the paper's concluding remarks
/// single out counting globally-optimal repairs as an open direction.
///
/// When the priority is block-local (always, for conflict-bounded
/// priorities) the optimal repairs factor as {free facts} × ∏ per-block
/// optimal block-repairs, so enumeration and the quadratic optimality
/// filter run per block; otherwise the whole-instance baseline is used.
/// Output size is inherent (it *is* the answer), but the filtering cost
/// drops from quadratic in ∏ counts to quadratic in max per-block count.
std::vector<DynamicBitset> AllOptimalRepairs(const ConflictGraph& cg,
                                             const PriorityRelation& pr,
                                             RepairSemantics semantics);

/// The block-repairs of `universe` (one conflict block) that are optimal
/// *within the block* under the given semantics.  Never empty for a
/// non-empty block (a completion-optimal block-repair always exists).
/// Optimality within the block equals optimality of the whole repair
/// restricted to the block whenever the priority is block-local.
std::vector<DynamicBitset> OptimalRepairsWithin(const ConflictGraph& cg,
                                                const PriorityRelation& pr,
                                                const DynamicBitset& universe,
                                                RepairSemantics semantics);

/// Budget-governed variant: both the block-repair enumeration and the
/// quadratic optimality filter checkpoint on `governor`.  When
/// `governor.exhausted()` afterwards the returned vector is partial and
/// MUST be discarded (a subset of the optimal block-repairs is not a
/// usable under-approximation for cross-products).
std::vector<DynamicBitset> OptimalRepairsWithin(const ConflictGraph& cg,
                                                const PriorityRelation& pr,
                                                const DynamicBitset& universe,
                                                RepairSemantics semantics,
                                                ResourceGovernor& governor);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_EXHAUSTIVE_H_
