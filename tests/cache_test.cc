// Tests for the block-solve cache (cache/): canonical fingerprint
// invariance and distinctness, subset (un)canonicalization, per-op key
// derivation, LRU eviction and the store-upgrade policy, the
// governor-correct serve rule, and the end-to-end hit behaviour on a
// sharded hard workload.

#include <gtest/gtest.h>

#include "cache/block_cache.h"
#include "cache/block_fingerprint.h"
#include "gen/hard_workloads.h"
#include "model/context.h"
#include "repair/checker.h"

namespace prefrep {
namespace {

// ---- Fingerprints ---------------------------------------------------

// The default sharded workload stamps out constant-renamed copies of
// one block at shifted fact ids: the canonical fingerprint must erase
// both the renaming and the shift.
TEST(BlockFingerprintTest, InvariantUnderRenamingAndFactIdShift) {
  PreferredRepairProblem p = MakeHardShardedWorkload(3, 3, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  ASSERT_EQ(ctx.blocks().num_blocks(), 3u);
  const Block& b0 = ctx.blocks().blocks()[0];
  const Block& b2 = ctx.blocks().blocks()[2];
  EXPECT_NE(b0.fact_list.front(), b2.fact_list.front());
  EXPECT_EQ(ComputeBlockFingerprint(ctx, b0),
            ComputeBlockFingerprint(ctx, b2));
}

TEST(BlockFingerprintTest, DistinguishesPriorityStructure) {
  PreferredRepairProblem p =
      MakeHardShardedWorkload(3, 3, 3, /*distinct_blocks=*/true);
  ProblemContext ctx(*p.instance, *p.priority);
  const Block& b0 = ctx.blocks().blocks()[0];
  const Block& b1 = ctx.blocks().blocks()[1];
  EXPECT_NE(ComputeBlockFingerprint(ctx, b0),
            ComputeBlockFingerprint(ctx, b1));
}

TEST(BlockFingerprintTest, SubsetDigestFollowsTheIsomorphism) {
  PreferredRepairProblem p = MakeHardShardedWorkload(2, 3, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  const Block& b0 = ctx.blocks().blocks()[0];
  const Block& b1 = ctx.blocks().blocks()[1];
  // J (all member-1 facts) restricted to each block picks corresponding
  // members, so the canonical digests agree across the renaming...
  EXPECT_EQ(CanonicalSubsetDigest(b0, p.j), CanonicalSubsetDigest(b1, p.j));
  // ...while a different local subset digests differently.
  DynamicBitset other = p.j;
  other.reset(b0.fact_list.front() + 1);
  other.set(b0.fact_list.front());
  EXPECT_NE(CanonicalSubsetDigest(b0, other),
            CanonicalSubsetDigest(b0, p.j));
}

TEST(BlockFingerprintTest, SubsetCanonicalizationRoundTrips) {
  PreferredRepairProblem p = MakeHardShardedWorkload(2, 3, 3);
  ProblemContext ctx(*p.instance, *p.priority);
  const Block& b1 = ctx.blocks().blocks()[1];
  DynamicBitset local = CanonicalizeSubset(b1, p.j);
  EXPECT_EQ(local.size(), b1.size());
  EXPECT_EQ(local.count(), (p.j & b1.facts).count());
  DynamicBitset back =
      UncanonicalizeSubset(b1, local, ctx.instance().num_facts());
  EXPECT_EQ(back, p.j & b1.facts);
}

TEST(BlockFingerprintTest, OpKeysAreDistinctPerOpAndSalt) {
  BlockFingerprint base{0x1234, 0x5678};
  BlockFingerprint verdict = DeriveOpKey(base, BlockCacheOp::kVerdict, 7, 9);
  EXPECT_NE(verdict, DeriveOpKey(base, BlockCacheOp::kCount, 7, 9));
  EXPECT_NE(verdict, DeriveOpKey(base, BlockCacheOp::kVerdict, 8, 9));
  EXPECT_NE(verdict, DeriveOpKey(base, BlockCacheOp::kVerdict, 7, 10));
  EXPECT_EQ(verdict, DeriveOpKey(base, BlockCacheOp::kVerdict, 7, 9));
}

// ---- The cache table ------------------------------------------------

BlockSolveCache::Entry CountedEntry(uint64_t count, uint64_t nodes) {
  BlockSolveCache::Entry e;
  e.count = count;
  e.nodes = nodes;
  e.nodes_valid = true;
  return e;
}

// Keys with hi = 0 all land in shard 0, making per-shard LRU behaviour
// observable through the public interface.
BlockFingerprint ShardZeroKey(uint64_t lo) { return BlockFingerprint{0, lo}; }

TEST(BlockSolveCacheTest, EvictsLeastRecentlyUsedWithinAShard) {
  // capacity 32 → 2 entries per shard.
  BlockSolveCache cache(/*capacity=*/32);
  cache.Store(ShardZeroKey(1), CountedEntry(11, 0));
  cache.Store(ShardZeroKey(2), CountedEntry(22, 0));
  ASSERT_TRUE(cache.Lookup(ShardZeroKey(1)).has_value());  // refresh key 1
  cache.Store(ShardZeroKey(3), CountedEntry(33, 0));       // evicts key 2
  EXPECT_TRUE(cache.Lookup(ShardZeroKey(1)).has_value());
  EXPECT_FALSE(cache.Lookup(ShardZeroKey(2)).has_value());
  EXPECT_TRUE(cache.Lookup(ShardZeroKey(3)).has_value());
  BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.stores, 3u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(BlockSolveCacheTest, FirstStoreWinsExceptForNodeCountUpgrades) {
  BlockSolveCache cache;
  BlockSolveCache::Entry uncounted;
  uncounted.count = 5;
  uncounted.nodes_valid = false;
  cache.Store(ShardZeroKey(1), uncounted);
  // A counted solve of the same key upgrades the entry...
  cache.Store(ShardZeroKey(1), CountedEntry(5, 40));
  std::optional<BlockSolveCache::Entry> got = cache.Lookup(ShardZeroKey(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->nodes_valid);
  EXPECT_EQ(got->nodes, 40u);
  // ...but an uncounted (or repeated) store never downgrades it.
  cache.Store(ShardZeroKey(1), uncounted);
  cache.Store(ShardZeroKey(1), CountedEntry(5, 99));
  got = cache.Lookup(ShardZeroKey(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->nodes_valid);
  EXPECT_EQ(got->nodes, 40u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(BlockSolveCacheTest, ClearDropsEntriesButKeepsCounters) {
  BlockSolveCache cache;
  cache.Store(ShardZeroKey(1), CountedEntry(1, 0));
  cache.NoteHit();
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(ShardZeroKey(1)).has_value());
  BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

// ---- The serve rule -------------------------------------------------

TEST(ServeRuleTest, UnlimitedGovernorAlwaysServes) {
  BlockSolveCache::Entry uncounted;
  uncounted.nodes_valid = false;
  EXPECT_TRUE(MayServeCachedEntry(ResourceGovernor::Unlimited(), uncounted));
  ReplayServedNodes(ResourceGovernor::Unlimited(), uncounted);  // no-op
}

TEST(ServeRuleTest, ExhaustedGovernorNeverServes) {
  ResourceBudget budget;
  budget.max_nodes = 1;
  ResourceGovernor gov(budget);
  EXPECT_TRUE(gov.Checkpoint());
  EXPECT_FALSE(gov.Checkpoint());  // node budget fires
  ASSERT_TRUE(gov.exhausted());
  EXPECT_FALSE(MayServeCachedEntry(gov, CountedEntry(1, 0)));
}

TEST(ServeRuleTest, CancellationOnlyWorkersServeUncountedEntries) {
  // A worker of an ungoverned parallel session: armed for cancellation,
  // no node-space budget.  Its node counter is never merged back, so
  // even uncounted entries are servable.
  std::atomic<uint64_t> bound{1000};
  ResourceGovernor gov{ResourceBudget{}};
  gov.ArmCancellation(&bound, /*position=*/1);
  ASSERT_FALSE(gov.unlimited());
  ASSERT_EQ(gov.NodeFiringIndex(), 0u);
  BlockSolveCache::Entry uncounted;
  uncounted.nodes_valid = false;
  EXPECT_TRUE(MayServeCachedEntry(gov, uncounted));
}

TEST(ServeRuleTest, NodeCountingGovernorRefusesUncountedEntries) {
  ResourceBudget budget;
  budget.max_nodes = 100;
  ResourceGovernor gov(budget);
  BlockSolveCache::Entry uncounted;
  uncounted.nodes_valid = false;
  EXPECT_FALSE(MayServeCachedEntry(gov, uncounted));
}

TEST(ServeRuleTest, ReplayMustStayBelowTheFiringIndex) {
  ResourceBudget budget;
  budget.max_nodes = 10;  // firing index 11
  ResourceGovernor gov(budget);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(gov.Checkpoint());
  }
  // 5 spent + 5 replayed = 10 < 11: the fresh solve would have
  // completed, so the hit is served and committed.
  BlockSolveCache::Entry five = CountedEntry(0, 5);
  ASSERT_TRUE(MayServeCachedEntry(gov, five));
  ReplayServedNodes(gov, five);
  EXPECT_EQ(gov.nodes_spent(), 10u);
  EXPECT_FALSE(gov.exhausted());
  // 10 spent + 1 replayed = 11 ≥ 11: the fresh solve would have fired
  // mid-block — the hit is refused so the budget fires identically.
  EXPECT_FALSE(MayServeCachedEntry(gov, CountedEntry(0, 1)));
}

TEST(ServeRuleTest, WouldAdmitBlockMirrorsAdmitBlockWithoutRecording) {
  ResourceBudget budget;
  budget.max_block = 8;
  ResourceGovernor gov(budget);
  EXPECT_TRUE(gov.WouldAdmitBlock(8));
  EXPECT_FALSE(gov.WouldAdmitBlock(9));
  EXPECT_FALSE(
      gov.WouldAdmitBlock(ResourceGovernor::kMaxExhaustiveBlockFacts + 1));
  EXPECT_EQ(gov.blocks_refused(), 0u);  // pure query: nothing recorded
  EXPECT_FALSE(gov.AdmitBlock(9));
  EXPECT_EQ(gov.blocks_refused(), 1u);
  // The unarmed governor admits everything under the hard cap.
  EXPECT_TRUE(ResourceGovernor::Unlimited().WouldAdmitBlock(
      ResourceGovernor::kMaxExhaustiveBlockFacts));
}

// ---- End to end -----------------------------------------------------

TEST(CacheEndToEndTest, IdenticalShardsHitAfterTheFirstSolve) {
  PreferredRepairProblem p = MakeHardShardedWorkload(4, 3, 3);

  ProblemContext plain_ctx(*p.instance, *p.priority);
  RepairChecker plain(plain_ctx);
  auto expected = plain.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(expected.ok());

  BlockSolveCache cache;
  ProblemContext ctx(*p.instance, *p.priority);
  ctx.set_block_cache(&cache);
  RepairChecker checker(ctx);
  auto outcome = checker.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.optimal, expected->result.optimal);

  // One shard pays the exhaustive solve; the other three replay it.
  BlockCacheStats first = cache.stats();
  EXPECT_EQ(first.misses, 1u);
  EXPECT_EQ(first.hits, 3u);
  EXPECT_EQ(first.stores, 1u);

  // A warm rerun hits on every shard.
  auto again = checker.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->result.optimal, expected->result.optimal);
  BlockCacheStats second = cache.stats();
  EXPECT_EQ(second.misses, first.misses);
  EXPECT_EQ(second.hits, first.hits + 4);
}

TEST(CacheEndToEndTest, DistinctShardsAllMiss) {
  PreferredRepairProblem p =
      MakeHardShardedWorkload(4, 3, 3, /*distinct_blocks=*/true);
  BlockSolveCache cache;
  ProblemContext ctx(*p.instance, *p.priority);
  ctx.set_block_cache(&cache);
  RepairChecker checker(ctx);
  auto outcome = checker.CheckGloballyOptimal(p.j);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->result.optimal);
  BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.stores, 4u);
}

}  // namespace
}  // namespace prefrep
