#include "repair/counting.h"

#include "repair/block_solver.h"
#include "repair/completion.h"
#include "repair/parallel_solver.h"

namespace prefrep {

uint64_t CountOptimalRepairs(const ConflictGraph& cg,
                             const PriorityRelation& pr,
                             RepairSemantics semantics) {
  ProblemContext ctx(cg, pr);
  return CountOptimalRepairs(ctx, semantics);
}

uint64_t CountOptimalRepairs(const ProblemContext& ctx,
                             RepairSemantics semantics) {
  return CountOptimalRepairsBounded(ctx, semantics).lower_bound;
}

BoundedCount CountOptimalRepairsBounded(const ProblemContext& ctx,
                                        RepairSemantics semantics) {
  if (ctx.priority_block_local()) {
    return CountOptimalRepairsByBlocksBounded(ctx, semantics);
  }
  // Cross-block priority: the count does not factor, so the governed
  // whole-instance enumeration is the only route.  When the budget
  // fires the instance counts as one big unknown "block", and the
  // lower bound falls back to the one optimal repair every instance has.
  const ConflictGraph& cg = ctx.conflict_graph();
  ResourceGovernor& governor = ctx.governor();
  DynamicBitset universe(cg.num_facts());
  universe.set_all();
  std::vector<DynamicBitset> optimal = OptimalRepairsWithin(
      cg, ctx.priority(), universe, semantics, governor);
  if (governor.exhausted()) {
    return BoundedCount{1, /*exact=*/false, /*unknown_blocks=*/1,
                        /*saturated=*/false};
  }
  return BoundedCount{optimal.size(), true, 0, false};
}

std::optional<DynamicBitset> UniqueGloballyOptimalRepair(
    const ConflictGraph& cg, const PriorityRelation& pr) {
  ProblemContext ctx(cg, pr);
  return UniqueGloballyOptimalRepair(ctx);
}

std::optional<DynamicBitset> UniqueGloballyOptimalRepair(
    const ProblemContext& ctx) {
  if (!ctx.priority_block_local()) {
    std::vector<DynamicBitset> optimal = AllOptimalRepairs(
        ctx.conflict_graph(), ctx.priority(), RepairSemantics::kGlobal);
    if (optimal.size() == 1) {
      return optimal.front();
    }
    return std::nullopt;
  }
  DynamicBitset out = ctx.blocks().free_facts();
  std::vector<size_t> order(ctx.blocks().num_blocks());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  ParallelBlockSession<std::vector<DynamicBitset>> session(
      ctx, std::move(order),
      [&](const ProblemContext& cx, const Block& bb) {
        return CachedOptimalBlockRepairs(
            SolverForSemantics(ctx, bb, RepairSemantics::kGlobal), cx, bb);
      },
      [](const std::vector<DynamicBitset>& v) { return !v.empty(); });
  for (const Block& b : ctx.blocks().blocks()) {
    std::vector<DynamicBitset> optimal = session.Next(b);
    if (optimal.size() != 1) {
      return std::nullopt;
    }
    out |= optimal.front();
  }
  return out;
}

bool IsPriorityTotalOnConflicts(const ConflictGraph& cg,
                                const PriorityRelation& pr) {
  for (const auto& [f, g] : cg.edges()) {
    if (!pr.Prefers(f, g) && !pr.Prefers(g, f)) {
      return false;
    }
  }
  return true;
}

std::optional<DynamicBitset> UniqueOptimalIfTotalPriority(
    const ConflictGraph& cg, const PriorityRelation& pr) {
  if (!IsPriorityTotalOnConflicts(cg, pr)) {
    return std::nullopt;
  }
  // With a total priority the greedy output does not depend on the
  // tie-break seed, and it is the unique optimal repair under all three
  // semantics [SCM].
  return GreedyCompletionRepair(cg, pr, /*seed=*/1);
}

}  // namespace prefrep
