// Copyright (c) prefrep contributors.
// Shared helpers for the prefrep test suite.

#ifndef PREFREP_TESTS_TEST_UTIL_H_
#define PREFREP_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "conflicts/conflicts.h"
#include "model/problem.h"
#include "repair/improvement.h"

namespace prefrep {
namespace testing_util {

/// Builds a single-relation problem from compact text: relation arity,
/// FDs ("1 -> 2"), facts as comma-separated constants with labels, and
/// priority edges by label.
struct ProblemSpec {
  int arity = 2;
  std::vector<std::string> fds;
  /// Each entry: "label: c1, c2, ..." .
  std::vector<std::string> facts;
  /// Each entry: "higher > lower" (labels).
  std::vector<std::string> priorities;
};

PreferredRepairProblem MakeProblem(const ProblemSpec& spec);

/// Returns the bitset of facts with the given labels.
DynamicBitset Sub(const Instance& instance,
                  const std::vector<std::string>& labels);

/// If `result` reports non-optimal with a witness, verifies that the
/// witness really is a global improvement of `j`; returns a description
/// of any violation (empty string = fine).
std::string VerifyWitness(const ConflictGraph& cg, const PriorityRelation& pr,
                          const DynamicBitset& j, const CheckResult& result);

}  // namespace testing_util
}  // namespace prefrep

#endif  // PREFREP_TESTS_TEST_UTIL_H_
