// Pins the columnar arena layout of Instance (docs/memory-layout.md):
// per-relation fixed-stride slabs, the (relation, slot) fact directory,
// the open-addressing content index, and the ValueSpan view contract —
// plus the serve-layer tombstone/revival semantics that ride on stable
// fact ids.  These are layout *semantics*, not implementation trivia:
// the conflict-join kernels (conflicts/projection.h) read rows straight
// out of the slabs and are only correct if slot i of facts_of(rel)
// occupies the i-th stride-sized run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/simd.h"
#include "model/instance.h"
#include "model/problem.h"
#include "serve/mutable_instance.h"
#include "test_util.h"

namespace prefrep {
namespace {

Schema TwoRelationSchema() {
  Schema schema;
  RelId r = schema.MustAddRelation("R", 3);
  schema.MustAddFd(r, FD(AttrSet{1}, AttrSet{2}));
  schema.MustAddRelation("S", 2);
  return schema;
}

TEST(InstanceLayoutTest, AppendsFillRelationSlabsInSlotOrder) {
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  // Interleave appends across relations: each slab must stay dense and
  // per-relation, slot i of facts_of(rel) at offset i * arity.
  FactId r0 = instance.MustAddFact("R", {"a", "b", "c"});
  FactId s0 = instance.MustAddFact("S", {"x", "y"});
  FactId r1 = instance.MustAddFact("R", {"a", "b", "d"});
  FactId s1 = instance.MustAddFact("S", {"x", "z"});
  EXPECT_EQ(instance.num_facts(), 4u);
  EXPECT_EQ(instance.rel_of(r0), instance.rel_of(r1));
  EXPECT_NE(instance.rel_of(r0), instance.rel_of(s0));
  const RelId rel_r = instance.rel_of(r0);
  const RelId rel_s = instance.rel_of(s0);
  ASSERT_EQ(instance.facts_of(rel_r).size(), 2u);
  ASSERT_EQ(instance.facts_of(rel_s).size(), 2u);
  EXPECT_EQ(instance.relation_slab(rel_r).size(), 2u * 3u);
  EXPECT_EQ(instance.relation_slab(rel_s).size(), 2u * 2u);
  // Slot order: the i-th fact of a relation owns the i-th stride run.
  for (size_t i = 0; i < 2; ++i) {
    const FactId f = instance.facts_of(rel_r)[i];
    EXPECT_EQ(instance.row(f), instance.relation_slab(rel_r).data() + i * 3)
        << "R slot " << i;
    const FactId g = instance.facts_of(rel_s)[i];
    EXPECT_EQ(instance.row(g), instance.relation_slab(rel_s).data() + i * 2)
        << "S slot " << i;
  }
  // The Fact view reads the same memory the row accessor exposes.
  const Fact fr1 = instance.fact(r1);
  EXPECT_EQ(fr1.values.data(), instance.row(r1));
  EXPECT_EQ(fr1.values.size(), 3u);
  EXPECT_EQ(instance.dict().Text(fr1.values[2]), "d");
  (void)s1;
}

TEST(InstanceLayoutTest, DuplicateContentCollapsesToOneSlot) {
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  FactId first = instance.MustAddFact("R", {"a", "b", "c"});
  FactId again = instance.MustAddFact("R", {"a", "b", "c"});
  EXPECT_EQ(first, again);
  EXPECT_EQ(instance.num_facts(), 1u);
  EXPECT_EQ(instance.relation_slab(instance.rel_of(first)).size(), 3u)
      << "a collapsed duplicate must not grow the slab";
}

TEST(InstanceLayoutTest, ContentIndexSurvivesSlabGrowth) {
  // Enough appends to force both slab reallocation and several index
  // doublings; every fact must stay findable by content afterwards, and
  // every row must still match its fact view.
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  constexpr int kFacts = 500;
  for (int i = 0; i < kFacts; ++i) {
    instance.MustAddFact("R", {"a" + std::to_string(i), "b",
                               "c" + std::to_string(i % 7)});
  }
  ASSERT_EQ(instance.num_facts(), static_cast<size_t>(kFacts));
  for (FactId f = 0; f < static_cast<FactId>(kFacts); ++f) {
    const Fact fact = instance.fact(f);
    EXPECT_EQ(instance.FindFact(fact), f);
    EXPECT_EQ(fact.values.data(), instance.row(f));
  }
  // A caller-local probe buffer (not pointing into the arena) works too.
  std::vector<ValueId> probe = {instance.fact(3).values[0],
                                instance.fact(3).values[1],
                                instance.fact(3).values[2]};
  EXPECT_EQ(instance.FindRow(instance.rel_of(3), probe.data(), probe.size()),
            FactId{3});
  probe[2] = instance.fact(4).values[2];
  EXPECT_EQ(instance.FindRow(instance.rel_of(3), probe.data(), probe.size()),
            kInvalidFactId);
}

TEST(InstanceLayoutTest, ValueSpanEqualityIsContentEquality) {
  Schema schema;
  schema.MustAddRelation("W", 8);
  Instance instance(&schema);
  FactId a = instance.MustAddFact(
      "W", {"1", "2", "3", "4", "5", "6", "7", "8"});
  FactId b = instance.MustAddFact(
      "W", {"1", "2", "3", "4", "5", "6", "7", "9"});
  const Fact fa = instance.fact(a);
  const Fact fb = instance.fact(b);
  EXPECT_TRUE(fa == instance.fact(a));
  EXPECT_FALSE(fa == fb) << "wide rows differing only in the tail must "
                            "compare unequal through the SIMD kernel";
  // The scalar fallback must agree with the vector kernel.
  simd::SetForceScalar(true);
  EXPECT_TRUE(fa == instance.fact(a));
  EXPECT_FALSE(fa == fb);
  simd::SetForceScalar(false);
}

TEST(InstanceLayoutTest, ArityAndLabelErrorsAreRejected) {
  Schema schema = TwoRelationSchema();
  Instance instance(&schema);
  RelId rel = instance.rel_of(instance.MustAddFact("R", {"a", "b", "c"},
                                                   "f0"));
  Result<FactId> wrong_arity = instance.AddFact(rel, {"a", "b"});
  ASSERT_FALSE(wrong_arity.ok());
  EXPECT_EQ(wrong_arity.status().code(), StatusCode::kInvalidArgument);
  // Same content under a fresh label: the Instance relabels in place
  // (set semantics; the serve layer's probe-first Insert is what makes
  // labels permanent for sessions — see mutable_instance.cc).
  Result<FactId> relabel = instance.AddFact(rel, {"a", "b", "c"}, "f1");
  ASSERT_TRUE(relabel.ok());
  EXPECT_EQ(*relabel, FactId{0});
  EXPECT_EQ(instance.label(0), "f1");
  // Same label, different content: rejected.  (The row itself lands in
  // the arena before the label check — set semantics make the stray
  // unlabeled fact harmless, and callers that care probe first.)
  Result<FactId> reuse = instance.AddFact(rel, {"a", "b", "d"}, "f0");
  ASSERT_FALSE(reuse.ok());
  EXPECT_EQ(reuse.status().code(), StatusCode::kAlreadyExists);
}

TEST(InstanceLayoutTest, TombstoneAndRevivalKeepIdsAndSlotsStable) {
  testing_util::ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"f0: a, b", "f1: a, c"};
  PreferredRepairProblem problem = testing_util::MakeProblem(spec);
  MutableInstance mi(problem);
  const Instance& instance = mi.instance();
  const size_t slab_before =
      instance.relation_slab(instance.rel_of(0)).size();
  // Tombstone then revive by content: the fact keeps its id and its
  // arena slot — the slab never shrinks or reorders.
  ASSERT_TRUE(mi.Tombstone("f0").ok());
  EXPECT_FALSE(mi.live().test(0));
  auto revived = mi.Insert("R", {"a", "b"}, "f0");
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived->id, FactId{0});
  EXPECT_TRUE(revived->revived);
  EXPECT_TRUE(mi.live().test(0));
  EXPECT_EQ(instance.relation_slab(instance.rel_of(0)).size(), slab_before);
  // Reviving under a different label must fail — ids stay bound to
  // their labels forever.
  ASSERT_TRUE(mi.Tombstone("f0").ok());
  auto relabeled = mi.Insert("R", {"a", "b"}, "f9");
  ASSERT_FALSE(relabeled.ok());
  EXPECT_EQ(relabeled.status().code(), StatusCode::kAlreadyExists);
  // A genuinely new fact appends a fresh slot at the slab's tail.
  auto fresh = mi.Insert("R", {"a", "d"}, "f2");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->id, FactId{2});
  EXPECT_EQ(instance.relation_slab(instance.rel_of(0)).size(),
            slab_before + 2);
}

}  // namespace
}  // namespace prefrep
