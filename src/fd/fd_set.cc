#include "fd/fd_set.h"

#include <algorithm>

namespace prefrep {

FDSet::FDSet(int arity) : arity_(arity) {
  PREFREP_CHECK(arity >= 0 && arity <= kMaxArity);
}

FDSet::FDSet(int arity, std::initializer_list<FD> fds) : FDSet(arity) {
  for (const FD& fd : fds) {
    Add(fd);
  }
}

void FDSet::Add(const FD& fd) {
  PREFREP_CHECK_MSG(fd.FitsArity(arity_), "fd mentions attribute > arity");
  if (std::find(fds_.begin(), fds_.end(), fd) == fds_.end()) {
    fds_.push_back(fd);
  }
}

Status FDSet::AddParsed(std::string_view text) {
  PREFREP_ASSIGN_OR_RETURN(FD fd, FD::Parse(text));
  if (!fd.FitsArity(arity_)) {
    return Status::InvalidArgument("fd '" + std::string(text) +
                                   "' mentions attribute beyond arity " +
                                   std::to_string(arity_));
  }
  Add(fd);
  return Status::OK();
}

AttrSet FDSet::Closure(AttrSet attrs) const {
  AttrSet closure = attrs;
  bool changed = true;
  // Fixpoint iteration.  With ≤ 64 attributes and small FD sets, the naive
  // loop outperforms the linear-time Beeri–Bernstein bookkeeping.
  while (changed) {
    changed = false;
    for (const FD& fd : fds_) {
      if (fd.lhs.IsSubsetOf(closure) && !fd.rhs.IsSubsetOf(closure)) {
        closure |= fd.rhs;
        changed = true;
      }
    }
  }
  return closure;
}

bool FDSet::Implies(const FD& fd) const {
  return fd.rhs.IsSubsetOf(Closure(fd.lhs));
}

bool FDSet::ImpliesAll(const FDSet& other) const {
  PREFREP_CHECK(arity_ == other.arity_);
  for (const FD& fd : other.fds_) {
    if (!Implies(fd)) {
      return false;
    }
  }
  return true;
}

bool FDSet::EquivalentTo(const FDSet& other) const {
  return ImpliesAll(other) && other.ImpliesAll(*this);
}

bool FDSet::IsKey(AttrSet attrs) const {
  return Closure(attrs) == AllAttrs();
}

bool FDSet::IsMinimalKey(AttrSet attrs) const {
  if (!IsKey(attrs)) {
    return false;
  }
  bool minimal = true;
  attrs.ForEach([&](int a) {
    AttrSet smaller = attrs;
    smaller.Remove(a);
    if (IsKey(smaller)) {
      minimal = false;
    }
  });
  return minimal;
}

namespace {

// Shrinks a key to a minimal key by greedily dropping attributes.
AttrSet MinimizeKey(const FDSet& fds, AttrSet key) {
  for (int a : key.ToVector()) {
    AttrSet smaller = key;
    smaller.Remove(a);
    if (fds.IsKey(smaller)) {
      key = smaller;
    }
  }
  return key;
}

}  // namespace

std::vector<AttrSet> FDSet::MinimalKeys() const {
  // Lucchesi–Osborn saturation: starting from one minimal key, every other
  // minimal key is reachable by replacing, for some FD X → Y, the part of
  // the key inside Y with X and re-minimizing.
  std::vector<AttrSet> keys;
  std::vector<AttrSet> queue;
  AttrSet first = MinimizeKey(*this, AllAttrs());
  keys.push_back(first);
  queue.push_back(first);
  while (!queue.empty()) {
    AttrSet key = queue.back();
    queue.pop_back();
    for (const FD& fd : fds_) {
      if (!fd.rhs.Intersects(key)) {
        continue;
      }
      AttrSet candidate = fd.lhs | (key - fd.rhs);
      bool dominated = false;
      for (const AttrSet& k : keys) {
        if (k.IsSubsetOf(candidate)) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        continue;
      }
      AttrSet minimized = MinimizeKey(*this, candidate);
      if (std::find(keys.begin(), keys.end(), minimized) == keys.end()) {
        keys.push_back(minimized);
        queue.push_back(minimized);
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<AttrSet> FDSet::LeftHandSides() const {
  std::vector<AttrSet> out;
  for (const FD& fd : fds_) {
    if (std::find(out.begin(), out.end(), fd.lhs) == out.end()) {
      out.push_back(fd.lhs);
    }
  }
  return out;
}

FDSet FDSet::SaturatePerLhs() const {
  FDSet out(arity_);
  for (const AttrSet& lhs : LeftHandSides()) {
    AttrSet closure = Closure(lhs);
    if (closure != lhs) {
      out.Add(FD(lhs, closure));
    }
  }
  return out;
}

FDSet FDSet::WithoutTrivial() const {
  FDSet out(arity_);
  for (const FD& fd : fds_) {
    if (!fd.IsTrivial()) {
      out.Add(fd);
    }
  }
  return out;
}

FDSet FDSet::MinimalCover() const {
  // Step 1: singleton right-hand sides, trivial parts dropped.
  FDSet g(arity_);
  for (const FD& fd : fds_) {
    (fd.rhs - fd.lhs).ForEach([&](int b) { g.Add(FD(fd.lhs, AttrSet{b})); });
  }
  // Step 2: remove extraneous LHS attributes (w.r.t. the full set g).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < g.fds_.size(); ++i) {
      FD& fd = g.fds_[i];
      for (int a : fd.lhs.ToVector()) {
        AttrSet reduced = fd.lhs;
        reduced.Remove(a);
        if (fd.rhs.IsSubsetOf(g.Closure(reduced))) {
          fd.lhs = reduced;
          changed = true;
        }
      }
    }
  }
  // Dedup after LHS reduction.
  FDSet dedup(arity_);
  for (const FD& fd : g.fds_) {
    if (!fd.IsTrivial()) {
      dedup.Add(fd);
    }
  }
  // Step 3: drop redundant FDs.
  FDSet out(arity_);
  std::vector<bool> keep(dedup.fds_.size(), true);
  for (size_t i = 0; i < dedup.fds_.size(); ++i) {
    FDSet rest(arity_);
    for (size_t j = 0; j < dedup.fds_.size(); ++j) {
      if (j != i && keep[j]) {
        rest.Add(dedup.fds_[j]);
      }
    }
    if (rest.Implies(dedup.fds_[i])) {
      keep[i] = false;
    }
  }
  for (size_t i = 0; i < dedup.fds_.size(); ++i) {
    if (keep[i]) {
      out.Add(dedup.fds_[i]);
    }
  }
  return out;
}

bool FDSet::EquivalentToSomeKeySet() const {
  // ∆ is equivalent to a set of key constraints iff the LHS of every
  // nontrivial FD in ∆ is a key under ∆.  ("⇐" is immediate; "⇒" because a
  // set of keys can only enlarge a closure to the full set ⟦R⟧, so any
  // strictly-growing FD must start from a key.)
  for (const FD& fd : fds_) {
    if (!fd.IsTrivial() && !IsKey(fd.lhs)) {
      return false;
    }
  }
  return true;
}

std::vector<AttrSet> FDSet::AsKeySet() const {
  if (!EquivalentToSomeKeySet()) {
    return {};
  }
  // Collect the key LHSs of nontrivial FDs and keep only the containment
  // antichain (if A ⊆ A' then A' → ⟦R⟧ is implied by A → ⟦R⟧).
  std::vector<AttrSet> lhss;
  for (const FD& fd : fds_) {
    if (fd.IsTrivial()) {
      continue;
    }
    if (std::find(lhss.begin(), lhss.end(), fd.lhs) == lhss.end()) {
      lhss.push_back(fd.lhs);
    }
  }
  std::vector<AttrSet> keys;
  for (const AttrSet& a : lhss) {
    bool dominated = false;
    for (const AttrSet& b : lhss) {
      if (b != a && b.IsSubsetOf(a)) {
        dominated = true;
        break;
      }
      if (b == a && &b != &a) {
        // duplicates were removed above
      }
    }
    if (!dominated && std::find(keys.begin(), keys.end(), a) == keys.end()) {
      keys.push_back(a);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::string FDSet::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += fds_[i].ToString();
  }
  out += "] over arity " + std::to_string(arity_);
  return out;
}

}  // namespace prefrep
