// Death tests for the library's hard invariants: a checking library
// must fail loudly on API misuse rather than return garbage.  Each test
// documents a contract from the headers.

#include <gtest/gtest.h>

#include "gen/running_example.h"
#include "repair/checker.h"
#include "repair/completion.h"
#include "repair/construct.h"
#include "repair/global_one_fd.h"
#include "repair/pareto.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

using testing_util::ProblemSpec;

TEST(InvariantDeathTest, SubinstanceSizeMismatchIsFatal) {
  PreferredRepairProblem p = RunningExampleProblem();
  RepairChecker checker(*p.instance, *p.priority);
  DynamicBitset wrong_size(3);
  EXPECT_DEATH({ (void)checker.CheckGloballyOptimal(wrong_size); },
               "size mismatch");
}

TEST(InvariantDeathTest, PriorityOverDifferentInstanceIsFatal) {
  PreferredRepairProblem a = RunningExampleProblem();
  PreferredRepairProblem b = RunningExampleProblem();
  EXPECT_DEATH({ RepairChecker checker(*a.instance, *b.priority); },
               "different instance");
}

TEST(InvariantDeathTest, CyclicPriorityRejectedByChecker) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: k, 2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  p.priority->MustAdd(0, 1);
  p.priority->MustAdd(1, 0);  // cycle
  EXPECT_DEATH({ RepairChecker checker(*p.instance, *p.priority); },
               "invalid");
}

TEST(InvariantDeathTest, CompletionRequiresConflictBoundedPriority) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: m, 1"};  // non-conflicting
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  p.priority->MustAdd(0, 1);  // cross-conflict edge
  ConflictGraph cg(*p.instance);
  EXPECT_DEATH(
      { (void)CheckCompletionOptimal(cg, *p.priority, p.j); },
      "conflict-bounded");
  EXPECT_DEATH(
      { (void)ConstructGloballyOptimalRepair(cg, *p.priority); },
      "conflict-bounded");
}

TEST(InvariantDeathTest, SwapBlocksRequiresMemberOfJ) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: k, 2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  DynamicBitset j = testing_util::Sub(*p.instance, {"a"});
  FD fd(AttrSet{1}, AttrSet{2});
  // f must be in J; passing the outside fact dies.
  EXPECT_DEATH(
      {
        (void)SwapBlocks(*p.instance, 0, fd, j,
                         p.instance->FindLabel("b"),
                         p.instance->FindLabel("a"));
      },
      "f ∈ J");
}

TEST(InvariantDeathTest, ParetoRequiresConsistentJ) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: k, 2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  EXPECT_DEATH(
      {
        (void)FindParetoImprovement(cg, *p.priority,
                                    p.instance->AllFacts());
      },
      "consistent");
}

TEST(InvariantDeathTest, ExtendToRepairRequiresConsistentInput) {
  ProblemSpec spec;
  spec.arity = 2;
  spec.fds = {"1 -> 2"};
  spec.facts = {"a: k, 1", "b: k, 2"};
  PreferredRepairProblem p = testing_util::MakeProblem(spec);
  ConflictGraph cg(*p.instance);
  EXPECT_DEATH({ (void)ExtendToRepair(cg, p.instance->AllFacts()); },
               "consistent");
}

}  // namespace
}  // namespace prefrep
