// B4 — the dichotomy made visible: exact (exponential) globally-optimal
// repair checking on the six hard schemas S1..S6 of Example 3.4, next to
// the polynomial algorithms on structurally similar tractable twins.
// The hard side grows exponentially in the instance size while the twins
// stay polynomial — the "who wins, and where it explodes" shape that
// Theorem 3.1 predicts.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gen/hard_workloads.h"
#include "model/context.h"
#include "reductions/hard_schemas.h"
#include "repair/block_solver.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"
#include "repair/global_one_fd.h"
#include "repair/global_two_keys.h"

namespace prefrep {
namespace {

// Choice-gadget workloads: `groups` independent conflicting pairs give
// exactly 2^groups repairs, and J = all-preferred is globally optimal,
// so the exact checker must exhaust the whole space to accept — time
// doubles per unit of the argument.
void RunExhaustive(benchmark::State& state, int schema_index) {
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      schema_index, static_cast<size_t>(state.range(0)),
      HardJ::kAllPreferred);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r =
        ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.counters["repairs"] = static_cast<double>(CountRepairs(cg));
  state.SetComplexityN(state.range(0));
}

void BM_Hard_S1(benchmark::State& state) { RunExhaustive(state, 1); }
void BM_Hard_S2(benchmark::State& state) { RunExhaustive(state, 2); }
void BM_Hard_S3(benchmark::State& state) { RunExhaustive(state, 3); }
void BM_Hard_S4(benchmark::State& state) { RunExhaustive(state, 4); }
void BM_Hard_S5(benchmark::State& state) { RunExhaustive(state, 5); }
void BM_Hard_S6(benchmark::State& state) { RunExhaustive(state, 6); }

// Exponential territory: 16 gadgets = 65536 repairs.
BENCHMARK(BM_Hard_S1)->DenseRange(4, 16, 4);
BENCHMARK(BM_Hard_S2)->DenseRange(4, 16, 4);
BENCHMARK(BM_Hard_S3)->DenseRange(4, 16, 4);
BENCHMARK(BM_Hard_S4)->DenseRange(4, 16, 4);
BENCHMARK(BM_Hard_S5)->DenseRange(4, 16, 4);
BENCHMARK(BM_Hard_S6)->DenseRange(4, 16, 4);

// The improvable twin input: J = all-dispreferred on the same gadgets.
// The exact checker exits at the first witness, so even the hard
// schemas answer quickly when the answer is "no" — the asymmetry that
// makes the problem coNP- (not NP-) complete.
void BM_Hard_S1_ImprovableJ(benchmark::State& state) {
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      1, static_cast<size_t>(state.range(0)), HardJ::kAllDispreferred);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r =
        ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_Hard_S1_ImprovableJ)->DenseRange(4, 16, 4);

// Tractable twin of S2: the same fds {1→2, 2→1} over a *binary*
// relation are two keys — polynomial via GRepCheck2Keys at sizes far
// beyond where ternary S2 explodes.
void BM_Twin_S2Binary(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::TwoKeysSchema(), state.range(0), JPolicy::kHighPriorityRepair,
      /*seed=*/7);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r = CheckGlobalOptimalTwoKeys(
        cg, *problem.priority, 0, AttrSet{1}, AttrSet{2}, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_Twin_S2Binary)->RangeMultiplier(2)->Range(8, 2048);

// Tractable twin of S4: dropping 2→3 from {1→2, 2→3} leaves a single
// fd — polynomial via GRepCheck1FD.
void BM_Twin_S4SingleFd(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kHighPriorityRepair,
      /*seed=*/7);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r = CheckGlobalOptimalOneFd(
        cg, *problem.priority, 0, FD(AttrSet{1}, AttrSet{2}), problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
}
BENCHMARK(BM_Twin_S4SingleFd)->RangeMultiplier(2)->Range(8, 2048);

// The block decomposition's payoff: k disjoint S1 gadgets are k
// conflict blocks of two facts each, so whole-instance exhaustive
// checking enumerates all 2^k repairs while the per-block dispatch
// enumerates 4 block-repairs per block — k·4 instead of 2^k.  Same
// input, same (hard) schema, same verdict; only the decomposition
// differs.  Numbers are recorded in EXPERIMENTS.md.
void BM_MultiBlock_WholeInstance(benchmark::State& state) {
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      1, static_cast<size_t>(state.range(0)), HardJ::kAllPreferred);
  ConflictGraph cg(*problem.instance);
  for (auto _ : state) {
    CheckResult r =
        ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.counters["blocks"] = static_cast<double>(state.range(0));
  state.counters["repairs"] = static_cast<double>(CountRepairs(cg));
}
BENCHMARK(BM_MultiBlock_WholeInstance)->DenseRange(4, 20, 4);

void BM_MultiBlock_PerBlock(benchmark::State& state) {
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      1, static_cast<size_t>(state.range(0)), HardJ::kAllPreferred);
  ProblemContext ctx(*problem.instance, *problem.priority);
  ctx.Prime();
  for (auto _ : state) {
    CheckResult r = CheckGlobalOptimalByBlocks(ctx, problem.j,
                                               PriorityMode::kConflictOnly);
    benchmark::DoNotOptimize(r.optimal);
  }
  state.counters["blocks"] =
      static_cast<double>(ctx.blocks().num_blocks());
}
BENCHMARK(BM_MultiBlock_PerBlock)->DenseRange(4, 20, 4);

// The same contrast through the production entry point: RepairChecker
// routes the hard relation's exhaustive fallback per block, so even the
// coNP-hard S1 schema is cheap while its blocks stay small.
void BM_MultiBlock_Checker(benchmark::State& state) {
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      1, static_cast<size_t>(state.range(0)), HardJ::kAllPreferred);
  RepairChecker checker(*problem.instance, *problem.priority);
  for (auto _ : state) {
    Result<CheckOutcome> r = checker.CheckGloballyOptimal(problem.j);
    benchmark::DoNotOptimize(r.value().result.optimal);
  }
}
BENCHMARK(BM_MultiBlock_Checker)->DenseRange(4, 20, 4);

// Repair counting on a hard schema: the raw search-space growth that
// the exact checker contends with.
void BM_Hard_RepairCount(benchmark::State& state) {
  PreferredRepairProblem problem = MakeHardChoiceWorkload(
      1, static_cast<size_t>(state.range(0)), HardJ::kAllPreferred);
  ConflictGraph cg(*problem.instance);
  uint64_t repairs = 0;
  for (auto _ : state) {
    repairs = CountRepairs(cg);
    benchmark::DoNotOptimize(repairs);
  }
  state.counters["repairs"] = static_cast<double>(repairs);
}
BENCHMARK(BM_Hard_RepairCount)->DenseRange(4, 20, 4);

}  // namespace
}  // namespace prefrep

BENCHMARK_MAIN();
