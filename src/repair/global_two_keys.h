// Copyright (c) prefrep contributors.
// Globally-optimal repair checking for a single-relation schema whose FD
// set is equivalent to two key constraints A1 → ⟦R⟧, A2 → ⟦R⟧ with
// A1 ⊄ A2 and A2 ⊄ A1 (§4.2, algorithm GRepCheck2Keys of Figure 4).
//
// By Lemma 4.4, a repair J has a global improvement iff it has a Pareto
// improvement or one of the bipartite graphs G12_J / G21_J has a cycle:
//
//   * left nodes are A1-projections, right nodes A2-projections;
//   * f ∈ J contributes the forward edge f[A1] → f[A2];
//   * f′ ∈ I \ J with f′ ≻ f for some f ∈ J with f[A2] = f′[A2]
//     contributes the backward edge f′[A2] → f′[A1];
//   * G21_J swaps the roles of A1 and A2.
//
// A cycle alternates forward and backward edges and translates directly
// into a global improvement (the returned witness).

#ifndef PREFREP_REPAIR_GLOBAL_TWO_KEYS_H_
#define PREFREP_REPAIR_GLOBAL_TWO_KEYS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "graph/digraph.h"
#include "repair/improvement.h"

namespace prefrep {

/// The bipartite improvement graph G^{first,second}_J of §4.2.
///
/// Nodes are projections of facts onto `first_key` (left side) and
/// `second_key` (right side); labels render the projected constants.
/// Exposed so tests can reproduce Figure 3 and so witnesses can be
/// reconstructed from cycles.
struct KeyedImprovementGraph {
  Digraph graph;
  /// Render of each node's projection, e.g. "lib1" or "(a, b)".
  std::vector<std::string> labels;
  /// True for left-side nodes (first-key projections).
  std::vector<bool> is_left;
  /// For each left node, the unique J-fact projecting to it
  /// (kInvalidFactId if the node only appears via backward edges).
  std::vector<FactId> left_fact;
  /// For each right node, the unique J-fact projecting to it.
  std::vector<FactId> right_fact;
  /// Witness f′ ∈ I \ J for each backward edge (right node, left node).
  std::unordered_map<std::pair<size_t, size_t>, FactId,
                     PairHash<size_t, size_t>>
      backward_witness;

  /// Looks up a node by its label; SIZE_MAX if absent.  For tests.
  size_t FindNode(const std::string& label, bool left) const;

  /// True iff the graph has an edge between the labelled nodes.
  bool HasEdge(const std::string& from_label, bool from_left,
               const std::string& to_label, bool to_left) const;
};

/// Builds G^{first,second}_J for relation `rel`.  Requires J ∩ rel to be
/// consistent with respect to both keys (so that projections of J-facts
/// onto either key are unique).  A non-null `universe` restricts the
/// construction to the facts of one conflict block; since facts of
/// different blocks never share a key projection, the unrestricted graph
/// is the disjoint union of the per-block graphs.
KeyedImprovementGraph BuildImprovementGraph(
    const Instance& instance, const PriorityRelation& pr, RelId rel,
    AttrSet first_key, AttrSet second_key, const DynamicBitset& j,
    const DynamicBitset* universe = nullptr);

/// GRepCheck2Keys restricted to relation `rel`: decides whether J ∩ rel
/// is a globally-optimal repair of I ∩ rel where ∆|rel is equivalent to
/// the two key constraints key1 → ⟦R⟧ and key2 → ⟦R⟧ (incomparable).
/// Arbitrary J is handled (inconsistent or non-maximal J is rejected).
/// A non-null `universe` restricts the check to one conflict block.
CheckResult CheckGlobalOptimalTwoKeys(const ConflictGraph& cg,
                                      const PriorityRelation& pr, RelId rel,
                                      AttrSet key1, AttrSet key2,
                                      const DynamicBitset& j,
                                      const DynamicBitset* universe = nullptr);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_GLOBAL_TWO_KEYS_H_
