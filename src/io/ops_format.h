// Copyright (c) prefrep contributors.
// The line-oriented session-ops grammar driving resident sessions
// (src/serve/session.h) through prefrepd and `prefrepctl session`.
// One op per line; '#' starts a comment; blank lines are ignored:
//
//   insert <label> <Rel>(<c1>, <c2>, ...)   # add (or revive) a fact
//   delete <label>                          # tombstone a fact
//   prefer <a> > <b> [> <c> ...]            # chain of conflicting facts
//   jset [<label> ...]                      # replace the candidate J
//   jadd <label> [<label> ...]              # add facts to J
//   jdel <label> [<label> ...]              # remove facts from J
//   budget [deadline-ms <N>] [max-nodes <N>] [max-block <N>]
//                                           # per-request budget
//                                           # (no args: unlimited)
//   check [global|pareto|completion]        # is J σ-optimal? (def. global)
//   count [global|pareto|completion]        # number of σ-optimal repairs
//   construct                               # build a globally-optimal repair
//   cqa [repairs|global|pareto|completion] <query>
//                                           # consistent answers, e.g.
//                                           #   cqa global Q(x) :- R(x, y)
//   stats                                   # session counters (not part of
//                                           # the byte-identical contract)
//
// The fact/prefer/j vocabulary deliberately matches io/text_format.h:
// a session script speaks about the same labels a problem file declares.

#ifndef PREFREP_IO_OPS_FORMAT_H_
#define PREFREP_IO_OPS_FORMAT_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/governor.h"
#include "base/status.h"
#include "query/consistent_answers.h"

namespace prefrep {

/// One parsed session op.  Only the fields of the matching kind are
/// meaningful.
struct SessionOp {
  enum class Kind {
    kInsert,
    kDelete,
    kPrefer,
    kJSet,
    kJAdd,
    kJDel,
    kBudget,
    kCheck,
    kCount,
    kConstruct,
    kCqa,
    kStats,
  };

  Kind kind = Kind::kStats;
  std::string label;                   ///< insert/delete
  std::string relation;                ///< insert
  std::vector<std::string> constants;  ///< insert
  std::vector<std::string> chain;      ///< prefer (≥ 2 labels, high → low)
  std::vector<std::string> labels;     ///< jset/jadd/jdel
  ResourceBudget budget;               ///< budget
  AnswerSemantics semantics = AnswerSemantics::kGlobal;  ///< check/count/cqa
  std::string query;                   ///< cqa (unparsed text)
};

/// Parses one op line (no comments/blank lines — callers strip those).
[[nodiscard]] Result<SessionOp> ParseSessionOp(std::string_view line);

/// Hostile-input caps on batch scripts.  They live HERE, on the script
/// reader (and on prefrepd's stream reader, which shares the line cap),
/// not inside ParseSessionOp: rendering can legitimately inflate an
/// accepted line (canonical spacing), so a per-op byte cap would break
/// the render/reparse closure the fuzzer proves.  The line cap matches
/// the WAL record payload cap (persist/wal.h) so every acceptable op is
/// also loggable.
inline constexpr size_t kMaxSessionOpLineBytes = 1u << 20;  // 1 MiB
inline constexpr size_t kMaxSessionScriptOps = 1u << 20;

/// Parses a whole script: one op per line, '#' comments and blank lines
/// skipped.  Errors carry the 1-based line number.  Scripts over the
/// caps above are rejected with kResourceExhausted before any
/// proportional allocation happens.
[[nodiscard]] Result<std::vector<SessionOp>> ParseSessionScript(
    std::string_view text);

/// Renders an op back to its grammar line (tests round-trip through
/// this; generated workloads are emitted as text so every consumer —
/// battery, bench, prefrepd — speaks the same scripts).
std::string SessionOpToString(const SessionOp& op);

}  // namespace prefrep

#endif  // PREFREP_IO_OPS_FORMAT_H_
