// Copyright (c) prefrep contributors.
// Canonical block fingerprints — the key side of the block-solve cache
// (cache/block_cache.h).
//
// Two blocks with the same fingerprint are solved identically by every
// per-block routine, so one block's result can be replayed for the
// other.  The fingerprint canonicalizes away the two sources of
// incidental identity a block carries:
//
//   * global fact ids — facts are relabeled to local indices 0..n-1 in
//     ascending-fact-id order (the order every enumeration loop in this
//     library already uses, which is what makes replayed witnesses land
//     on the right facts); and
//   * concrete values — values are renamed first-occurrence-first while
//     scanning the facts in local order and each tuple left to right,
//     which preserves exactly the equality structure FD reasoning uses.
//
// What is absorbed (each section domain-separated): the relation's
// arity and Theorem 3.1 classification (kind, single-FD attribute
// masks, key masks), the block size, the canonical value tuple of every
// fact, the conflict edges and the block-local priority edges as local
// index pairs.  The satellite lint check in tools/lint_prefrep.py
// enforces that this enumeration keeps up with the Block and
// PriorityRelation structs (see the fingerprint-field-guard comment in
// block_fingerprint.cc).
//
// Soundness (equal fingerprint ⇒ interchangeable results) rests on the
// metamorphic rename/reorder invariance of the solvers: equal
// fingerprints exhibit an order-preserving isomorphism between the
// blocks, and every solver's output is invariant under such a map (see
// docs/caching.md).  The map is *not* complete — blocks isomorphic only
// under a nontrivial fact permutation hash differently and simply miss.
// Hash collisions across genuinely different blocks are possible in
// principle (128-bit key, no canonical form stored); PREFREP_AUDIT
// builds re-solve every hit and would catch one.

#ifndef PREFREP_CACHE_BLOCK_FINGERPRINT_H_
#define PREFREP_CACHE_BLOCK_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>

#include "base/dynamic_bitset.h"
#include "base/hash.h"
#include "conflicts/blocks.h"
#include "model/context.h"

namespace prefrep {

/// A 128-bit cache key.  Compared by value only: the cache stores no
/// canonical form, so distinct blocks colliding in all 128 bits would
/// alias (probability ~ entries² / 2^128; the audit mode is the net).
struct BlockFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const BlockFingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const BlockFingerprint& other) const {
    return !(*this == other);
  }
};

struct BlockFingerprintHash {
  size_t operator()(const BlockFingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ HashMix64(fp.lo));
  }
};

/// Incremental two-lane 128-bit hash.  The lanes run the same splitmix
/// finalizer over differently-seeded, differently-tweaked states, so a
/// single-lane collision does not imply a key collision.
class FingerprintAccumulator {
 public:
  /// Starts a fresh accumulation under a domain tag (distinct tags give
  /// unrelated hash families).
  explicit FingerprintAccumulator(uint64_t domain);

  /// Continues from an existing fingerprint (for deriving per-operation
  /// keys from a block's base fingerprint).
  FingerprintAccumulator(const BlockFingerprint& base, uint64_t domain);

  void Absorb(uint64_t value) {
    ++length_;
    hi_ = HashMix64(hi_ ^ (value + 0x9e3779b97f4a7c15ULL));
    lo_ = HashMix64(lo_ + (value ^ 0xc2b2ae3d27d4eb4fULL));
  }

  /// Finishes the accumulation (folds in the absorbed length, so
  /// prefix-related streams do not collide).
  BlockFingerprint Finish() const;

 private:
  uint64_t hi_;
  uint64_t lo_;
  uint64_t length_ = 0;
};

/// The canonical fingerprint of block `b` of `ctx` (values, conflict
/// edges, priority edges, classification — see the file comment).
/// Touches ctx.classification(), so prime shared contexts first.
BlockFingerprint ComputeBlockFingerprint(const ProblemContext& ctx,
                                         const Block& b);

/// The per-block operations the cache memoizes.  Each gets its own key
/// family derived from the block's base fingerprint, salted with the
/// operation's remaining inputs (solver identity, J ∩ b digest,
/// tie-break stream id — see the call sites in repair/).
enum class BlockCacheOp : uint64_t {
  kVerdict = 1,     ///< CheckBlock (exhaustive solver only)
  kCount = 2,       ///< CountBlock
  kOptimalSet = 3,  ///< OptimalBlockRepairs
  kConstruct = 4,   ///< greedy block construction
};

/// Derives the cache key of one operation on one block: the base
/// fingerprint extended by the op tag and two op-specific salts.
BlockFingerprint DeriveOpKey(const BlockFingerprint& base, BlockCacheOp op,
                             uint64_t salt_a = 0, uint64_t salt_b = 0);

/// Digest of a subinstance restricted to block `b`, in canonical (local
/// index) coordinates.  Used to salt verdict-cache keys with J ∩ b:
/// CheckBlock answers depend on which block facts J keeps, and local
/// indices make the digest rename-invariant.
uint64_t CanonicalSubsetDigest(const Block& b, const DynamicBitset& sub);

/// Maps a block-local bitset (universe = b.size(), produced by a cached
/// solve of an isomorphic block) back to this block's global fact ids
/// (universe = num_facts).
DynamicBitset UncanonicalizeSubset(const Block& b,
                                   const DynamicBitset& local,
                                   size_t num_facts);

/// Projects a global subinstance onto block `b` in local coordinates —
/// the inverse of UncanonicalizeSubset, used when storing results.
DynamicBitset CanonicalizeSubset(const Block& b, const DynamicBitset& global);

}  // namespace prefrep

#endif  // PREFREP_CACHE_BLOCK_FINGERPRINT_H_
