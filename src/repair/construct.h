// Copyright (c) prefrep contributors.
// Constructing preferred repairs (as opposed to checking them).
//
// A corollary the framework gives for free: completion-optimal repairs
// are globally-optimal and Pareto-optimal ([SCM]; inclusions verified
// in this library's tests), and the greedy procedure produces a
// completion-optimal repair in polynomial time for *every* schema.  So
// although globally-optimal repair *checking* is coNP-complete on the
// hard side of Theorem 3.1, *finding some* globally-optimal repair is
// always polynomial — checking is the hard direction, not construction.
//
// This module packages that corollary, with tie-breaking policies that
// choose among the (possibly many) optimal repairs.  Conflict-bounded
// priorities only (completion semantics, §2.3).

#ifndef PREFREP_REPAIR_CONSTRUCT_H_
#define PREFREP_REPAIR_CONSTRUCT_H_

#include <functional>

#include "model/context.h"
#include "repair/improvement.h"

namespace prefrep {

/// How the greedy construction breaks ties among currently ≻-maximal
/// facts.
enum class TieBreak {
  /// Lowest fact id first — deterministic, stable across runs.
  kFirstFact,
  /// Seeded pseudo-random choice — explores different optimal repairs.
  kRandom,
  /// Facts with the most dominated facts first — greedily maximizes the
  /// "authority" of kept facts.
  kMostDominating,
};

/// Options for ConstructGloballyOptimalRepair.
struct ConstructOptions {
  TieBreak tie_break = TieBreak::kFirstFact;
  uint64_t seed = 1;  ///< used by TieBreak::kRandom
};

/// Builds a repair of (I, ≻) that is completion-optimal — hence
/// globally-optimal and Pareto-optimal — in O(n²) time, for any schema.
/// Requires a validated conflict-bounded priority.
DynamicBitset ConstructGloballyOptimalRepair(
    const ConflictGraph& cg, const PriorityRelation& pr,
    const ConstructOptions& options = {});

/// Same, sharing the cached artifacts of an existing ProblemContext:
/// the conflict-free facts are kept outright and the greedy runs block
/// by block — in parallel when ctx.parallelism() allows (greedy picks
/// never cross a block, so for the deterministic tie-breaks the result
/// coincides with the whole-instance greedy; kRandom derives each
/// block's draw stream from (seed, block id), so it may sample a
/// different — equally optimal — repair than the (cg, pr) overload for
/// the same seed, but is itself deterministic at every thread count).
DynamicBitset ConstructGloballyOptimalRepair(
    const ProblemContext& ctx, const ConstructOptions& options = {});

/// Budget-aware construction: like the ProblemContext overload, but
/// checkpoints on ctx.governor() once per greedy pick and returns
/// kDeadlineExceeded/kResourceExhausted instead of a repair when the
/// budget fires mid-pass.  Construction is polynomial (O(n²)), so this
/// only matters for huge instances or very tight budgets shared with
/// preceding exponential work; a cancelled pass never returns a torn
/// (partially built, non-maximal) bitset.
Result<DynamicBitset> TryConstructGloballyOptimalRepair(
    const ProblemContext& ctx, const ConstructOptions& options = {});

/// Enumerates distinct completion-optimal repairs by running the greedy
/// under `attempts` different random tie-breaks, invoking `fn` for each
/// distinct result; stops early when `fn` returns false.  A sampling
/// tool, not an exhaustive enumeration (which is exponential).
void SampleOptimalRepairs(const ConflictGraph& cg,
                          const PriorityRelation& pr, size_t attempts,
                          const std::function<bool(const DynamicBitset&)>& fn);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_CONSTRUCT_H_
