// Fixture for tools/check_prefrep.py --selftest (never compiled): Parse*
// entry points returning the failure-carrying types the nodiscard rule
// accepts — Result, Status (out-param style) and std::optional.

#ifndef PREFREP_TESTS_CHECK_PREFREP_FIXTURES_CLEAN_PARSE_RETURNS_RESULT_H_
#define PREFREP_TESTS_CHECK_PREFREP_FIXTURES_CLEAN_PARSE_RETURNS_RESULT_H_

#include <optional>
#include <string_view>

namespace prefrep {

struct Widget;
class Status;
template <typename T>
class Result;

Result<Widget> ParseWidget(std::string_view text);
Status ParseWidgetInto(std::string_view text, Widget* out);
std::optional<int> ParseCount(std::string_view text);

}  // namespace prefrep

#endif  // PREFREP_TESTS_CHECK_PREFREP_FIXTURES_CLEAN_PARSE_RETURNS_RESULT_H_
