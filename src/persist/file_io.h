// Copyright (c) prefrep contributors.
// The single raw-file-I/O choke point of the durability subsystem
// (src/persist/).  Every byte the WAL and snapshot layers put on disk
// flows through this module — nothing else in src/persist/ may touch
// fopen/ofstream/::open directly (enforced by the prefrep-durability
// rule in tools/check_prefrep.py) — so the fsync and atomic-rename
// discipline that crash-recovery rests on lives in exactly one place:
//
//   * AtomicWriteFile: write-to-temp + fsync + rename(2) + directory
//     fsync.  A reader (and a crash) sees either the old file or the
//     complete new file, never a torn mixture — the snapshot publish
//     primitive and also how the WAL is truncated (an empty log is
//     renamed over the old one).
//   * AppendOnlyFile: O_APPEND writes with an explicit Sync(), the WAL
//     append primitive.  A crash mid-append leaves a torn suffix that
//     recovery detects by checksum (persist/wal.h).
//
// All functions return Status/Result; no error is reported by crashing
// (a serving process must survive a full disk or yanked volume).

#ifndef PREFREP_PERSIST_FILE_IO_H_
#define PREFREP_PERSIST_FILE_IO_H_

#include <string>
#include <string_view>

#include "base/status.h"

namespace prefrep {

/// Default ReadFileToString cap (also the prefrepd batch-script cap).
inline constexpr size_t kMaxPersistFileBytes = 256u << 20;  // 256 MiB

/// Reads a whole file.  kNotFound when it does not exist, kUnavailable
/// on any other I/O error.  `max_bytes` caps hostile inputs: a larger
/// file is rejected with kResourceExhausted before any allocation.
[[nodiscard]] Result<std::string> ReadFileToString(
    const std::string& path, size_t max_bytes = kMaxPersistFileBytes);

/// Returns true iff `path` names an existing regular file.
bool FileExists(const std::string& path);

/// Publishes `contents` at `path` atomically: writes `path`.tmp, fsyncs
/// it, renames over `path`, then fsyncs the parent directory so the
/// rename itself is durable.  kUnavailable on any failure (the original
/// file, if any, is untouched).
[[nodiscard]] Status AtomicWriteFile(const std::string& path,
                                     std::string_view contents);

/// Removes `path` if present (missing is OK); kUnavailable otherwise.
[[nodiscard]] Status RemoveFileIfExists(const std::string& path);

/// An append-only file handle (the WAL backing).  Writes go straight to
/// the OS; durability requires an explicit Sync() (see FsyncMode in
/// persist/wal.h for who calls it when).
class AppendOnlyFile {
 public:
  AppendOnlyFile() = default;
  ~AppendOnlyFile();

  PREFREP_DISALLOW_COPY(AppendOnlyFile);

  /// Opens (creating if needed) `path` for appending.
  [[nodiscard]] Status Open(const std::string& path);

  /// Appends `data` fully; kUnavailable on short or failed writes.
  [[nodiscard]] Status Append(std::string_view data);

  /// Appends only the first `prefix_bytes` of `data` and syncs — the
  /// crash-injection hook uses this to leave a deliberately torn record
  /// on disk before the process dies (persist/wal.h).
  [[nodiscard]] Status AppendPrefix(std::string_view data,
                                    size_t prefix_bytes);

  /// fsync(2): blocks until everything appended so far is on stable
  /// storage.
  [[nodiscard]] Status Sync();

  /// Closes the handle (idempotent).  Errors on the final flush are
  /// reported here rather than swallowed in the destructor.
  [[nodiscard]] Status Close();

  bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace prefrep

#endif  // PREFREP_PERSIST_FILE_IO_H_
