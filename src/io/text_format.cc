#include "io/text_format.h"

#include <fstream>
#include <sstream>

#include "base/string_util.h"

namespace prefrep {

namespace {

Status LineError(size_t line_no, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            message);
}

// Parses "Name(c1, c2, ...)" into relation name + constants.
Status ParseFactTerm(std::string_view term, std::string* relation,
                     std::vector<std::string>* constants) {
  size_t open = term.find('(');
  if (open == std::string_view::npos || term.back() != ')') {
    return Status::ParseError("expected Name(c1, c2, ...), got '" +
                              std::string(term) + "'");
  }
  *relation = std::string(StripAsciiWhitespace(term.substr(0, open)));
  std::string_view inner = term.substr(open + 1, term.size() - open - 2);
  *constants = StrSplitTrimmed(inner, ',');
  if (relation->empty()) {
    return Status::ParseError("missing relation name in fact term");
  }
  if (constants->empty()) {
    return Status::ParseError("fact needs at least one constant");
  }
  return Status::OK();
}

}  // namespace

Result<PreferredRepairProblem> ParseProblemText(std::string_view text) {
  // Two passes: schema lines first (relations + fds), then facts,
  // priorities and J, so declarations may appear in any order.
  std::vector<std::pair<size_t, std::string>> lines;
  {
    size_t line_no = 0;
    for (const std::string& raw : StrSplit(text, '\n')) {
      ++line_no;
      std::string line = raw;
      size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line = line.substr(0, hash);
      }
      std::string_view stripped = StripAsciiWhitespace(line);
      if (!stripped.empty()) {
        lines.emplace_back(line_no, std::string(stripped));
      }
    }
  }

  Schema schema;
  // Relations first so fd lines may precede their relation declaration.
  for (const auto& [line_no, line] : lines) {
    if (StartsWith(line, "relation ")) {
      std::vector<std::string> parts = StrSplitTrimmed(line, ' ');
      if (parts.size() != 3) {
        return LineError(line_no, "expected 'relation <Name> <arity>'");
      }
      std::optional<uint64_t> arity = ParseUint(parts[2]);
      if (!arity.has_value() || *arity < 1 ||
          *arity > static_cast<uint64_t>(kMaxArity)) {
        return LineError(line_no, "bad arity '" + parts[2] + "'");
      }
      Result<RelId> rel =
          schema.AddRelation(parts[1], static_cast<int>(*arity));
      if (!rel.ok()) {
        return LineError(line_no, rel.status().message());
      }
    }
  }
  for (const auto& [line_no, line] : lines) {
    if (StartsWith(line, "fd ")) {
      Status s = schema.AddFdParsed(line.substr(3));
      if (!s.ok()) {
        return LineError(line_no, s.message());
      }
    }
  }

  PreferredRepairProblem problem(std::move(schema));
  Instance& inst = *problem.instance;
  // Second pass: facts.
  for (const auto& [line_no, line] : lines) {
    if (!StartsWith(line, "fact ")) {
      continue;
    }
    std::string_view rest = StripAsciiWhitespace(
        std::string_view(line).substr(5));
    size_t space = rest.find_first_of(" \t");
    if (space == std::string_view::npos) {
      return LineError(line_no, "expected 'fact <label> <Name>(...)'");
    }
    std::string label(rest.substr(0, space));
    std::string relation;
    std::vector<std::string> constants;
    Status s = ParseFactTerm(StripAsciiWhitespace(rest.substr(space)),
                             &relation, &constants);
    if (!s.ok()) {
      return LineError(line_no, s.message());
    }
    RelId rel = problem.instance->schema().FindRelation(relation);
    if (rel == kInvalidRelId) {
      return LineError(line_no, "unknown relation '" + relation + "'");
    }
    Result<FactId> added = inst.AddFact(rel, constants, label);
    if (!added.ok()) {
      return LineError(line_no, added.status().message());
    }
  }

  // Third pass: priorities and J.
  problem.InitPriority();
  problem.j = inst.EmptySubinstance();
  for (const auto& [line_no, line] : lines) {
    if (StartsWith(line, "prefer ")) {
      std::vector<std::string> chain =
          StrSplitTrimmed(line.substr(7), '>');
      if (chain.size() < 2) {
        return LineError(line_no, "expected 'prefer a > b [> c ...]'");
      }
      for (size_t i = 0; i + 1 < chain.size(); ++i) {
        Status s = problem.priority->AddByLabels(chain[i], chain[i + 1]);
        if (!s.ok()) {
          return LineError(line_no, s.message());
        }
      }
    } else if (StartsWith(line, "j ") || line == "j") {
      for (const std::string& label :
           StrSplitTrimmed(std::string_view(line).substr(1), ' ')) {
        FactId id = inst.FindLabel(label);
        if (id == kInvalidFactId) {
          return LineError(line_no, "unknown fact label '" + label + "'");
        }
        problem.j.set(id);
      }
    } else if (!StartsWith(line, "relation ") && !StartsWith(line, "fd ") &&
               !StartsWith(line, "fact ")) {
      return LineError(line_no, "unrecognized directive: '" + line + "'");
    }
  }
  return problem;
}

Result<PreferredRepairProblem> ParseProblemFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseProblemText(buffer.str());
}

std::string ProblemToText(const PreferredRepairProblem& problem) {
  return ProblemToText(*problem.instance, problem.priority.get(), &problem.j);
}

std::string ProblemToText(const Instance& instance,
                          const PriorityRelation* priority,
                          const DynamicBitset* j) {
  const Schema& schema = instance.schema();
  std::string out;
  for (RelId r = 0; r < schema.num_relations(); ++r) {
    out += "relation " + schema.relation_name(r) + " " +
           std::to_string(schema.arity(r)) + "\n";
    for (const FD& fd : schema.fds(r).fds()) {
      out += "fd " + schema.relation_name(r) + ": " + fd.ToString() + "\n";
    }
  }
  auto label_of = [&instance](FactId f) {
    return instance.label(f).empty() ? "f" + std::to_string(f)
                                     : instance.label(f);
  };
  for (FactId f = 0; f < instance.num_facts(); ++f) {
    const Fact& fact = instance.fact(f);
    out += "fact " + label_of(f) + " " +
           schema.relation_name(fact.rel) + "(";
    for (size_t i = 0; i < fact.values.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += instance.dict().Text(fact.values[i]);
    }
    out += ")\n";
  }
  if (priority != nullptr) {
    for (const auto& [higher, lower] : priority->edges()) {
      out += "prefer " + label_of(higher) + " > " + label_of(lower) + "\n";
    }
  }
  if (j != nullptr && j->any()) {
    out += "j";
    j->ForEach([&](size_t f) {
      out += " " + label_of(static_cast<FactId>(f));
    });
    out += "\n";
  }
  return out;
}

}  // namespace prefrep
