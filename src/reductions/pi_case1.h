// Copyright (c) prefrep contributors.
// The fact-translation function Π of §5.3 (Case 1 of the hardness
// branching): a reduction from globally-optimal repair checking over S1
// to globally-optimal repair checking over any single-relation schema
// whose FDs are equivalent to k ≥ 3 pairwise-incomparable keys.
//
// Writing the first three keys as A{1,2}, A{2,3}, A{1,3}, a fact
// f = R1(c1, c2, c3) maps to Π(f) = R(d1, ..., dk) where, per attribute
// position i,
//
//   d_i = ⟨c_a, c_b⟩  if i lies only in A{a,b};
//   d_i = c_s         if i lies in exactly two of the sets, s their
//                     shared coordinate;
//   d_i = •           (one fixed constant) if i lies in all three;
//   d_i = ⟨c1,c2,c3⟩  if i lies in none.
//
// Lemma 5.3: Π is injective.  Lemma 5.4: Π preserves consistency and
// inconsistency of fact pairs.  Both are checked empirically by
// ValidatePiProperties, and the end-to-end equivalence (J optimal over
// S1 ⟺ Π(J) optimal over the target) is exercised in reductions_test.

#ifndef PREFREP_REDUCTIONS_PI_CASE1_H_
#define PREFREP_REDUCTIONS_PI_CASE1_H_

#include <array>
#include <string>
#include <vector>

#include "base/status.h"
#include "model/problem.h"

namespace prefrep {

/// The Case 1 reduction bound to one target schema.
class PiCase1Reduction {
 public:
  /// Validates that `target` is a single-relation schema equivalent to
  /// three or more pairwise-incomparable keys, and fixes the first three
  /// as A{1,2}, A{2,3}, A{1,3}.
  static Result<PiCase1Reduction> Create(const Schema& target);

  /// The antichain of keys the target is equivalent to.
  const std::vector<AttrSet>& keys() const { return keys_; }
  AttrSet a12() const { return a12_; }
  AttrSet a23() const { return a23_; }
  AttrSet a13() const { return a13_; }

  /// Translates one S1 fact, given as its three constants, into the
  /// target fact's constants.
  std::vector<std::string> TranslateConstants(
      const std::array<std::string, 3>& c) const;

  /// Translates a whole repair-checking input over S1: I, ≻ and J map
  /// through Π fact by fact.  Fact labels are preserved.
  PreferredRepairProblem Apply(const PreferredRepairProblem& s1_problem)
      const;

 private:
  PiCase1Reduction() = default;

  Schema target_;
  int arity_ = 0;
  std::vector<AttrSet> keys_;
  AttrSet a12_, a23_, a13_;
};

/// Empirically verifies Lemmas 5.3 and 5.4 on a concrete S1 instance:
/// Π is injective on its facts, and every fact pair is S1-consistent iff
/// its image is target-consistent.  Returns the first violation found.
Status ValidatePiProperties(const PiCase1Reduction& reduction,
                            const Instance& s1_instance);

}  // namespace prefrep

#endif  // PREFREP_REDUCTIONS_PI_CASE1_H_
