// Fixture for tools/check_prefrep.py --selftest (never compiled): a
// Parse* entry point returning bool — the failure can be dropped
// silently at every call site, which is exactly what the
// Status/Result/optional return rule exists to prevent.
// EXPECT-FINDING: prefrep-nodiscard

#ifndef PREFREP_TESTS_CHECK_PREFREP_FIXTURES_BAD_PARSE_RETURNS_BOOL_H_
#define PREFREP_TESTS_CHECK_PREFREP_FIXTURES_BAD_PARSE_RETURNS_BOOL_H_

#include <string_view>

namespace prefrep {

struct Widget;

bool ParseWidget(std::string_view text, Widget* out);

}  // namespace prefrep

#endif  // PREFREP_TESTS_CHECK_PREFREP_FIXTURES_BAD_PARSE_RETURNS_BOOL_H_
