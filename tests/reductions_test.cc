// Tests for the hardness machinery: the Hamiltonian-cycle solver, the
// Lemma 5.2 reduction HC → globally-optimal repair checking over S1
// (experiment E9, Figure 5), and the Π translation of §5.3 (experiment
// E10, Lemmas 5.3–5.5).

#include <gtest/gtest.h>

#include "gen/random_instance.h"
#include "graph/undirected.h"
#include "reductions/hard_schemas.h"
#include "reductions/hc_to_s1.h"
#include "reductions/pi_case1.h"
#include "repair/exhaustive.h"
#include "repair/subinstance_ops.h"
#include "test_util.h"

namespace prefrep {
namespace {

// --- Hamiltonian-cycle solver ------------------------------------------------

TEST(HamiltonianTest, SmallGraphs) {
  EXPECT_TRUE(HasHamiltonianCycle(UndirectedGraph::Cycle(3)));
  EXPECT_TRUE(HasHamiltonianCycle(UndirectedGraph::Cycle(7)));
  EXPECT_TRUE(HasHamiltonianCycle(UndirectedGraph::Complete(5)));
  EXPECT_FALSE(HasHamiltonianCycle(UndirectedGraph::Path(4)));
  EXPECT_FALSE(HasHamiltonianCycle(UndirectedGraph::Path(3)));
  // A star K_{1,3} has no Hamiltonian cycle.
  UndirectedGraph star(4);
  star.AddEdge(0, 1);
  star.AddEdge(0, 2);
  star.AddEdge(0, 3);
  EXPECT_FALSE(HasHamiltonianCycle(star));
}

TEST(HamiltonianTest, FindCycleIsValid) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    UndirectedGraph g = UndirectedGraph::HamiltonianWithChords(
        5 + rng.NextBounded(5), 4, &rng);
    ASSERT_TRUE(HasHamiltonianCycle(g));
    auto cycle = FindHamiltonianCycle(g);
    ASSERT_TRUE(cycle.has_value());
    ASSERT_EQ(cycle->size(), g.num_nodes());
    std::vector<bool> seen(g.num_nodes(), false);
    for (size_t i = 0; i < cycle->size(); ++i) {
      EXPECT_FALSE(seen[(*cycle)[i]]);
      seen[(*cycle)[i]] = true;
      EXPECT_TRUE(g.HasEdge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
    }
  }
}

TEST(HamiltonianTest, PendantGraphsNeverHamiltonian) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    UndirectedGraph g = UndirectedGraph::NonHamiltonianPendant(6, 0.7, &rng);
    EXPECT_FALSE(HasHamiltonianCycle(g));
  }
}

// --- Lemma 5.2: structure of the construction --------------------------------

TEST(HcReductionTest, Figure5InstanceForK2) {
  // Figure 5: G = two nodes joined by one edge → 12 facts (5 per (i,j)
  // pair would be 20, but (i, v_j, v_j) / q / r facts overlap per the
  // construction) — count the exact fact classes instead.
  UndirectedGraph k2(2);
  k2.AddEdge(0, 1);
  PreferredRepairProblem problem = ReduceHamiltonianCycleToS1(k2);
  const Instance& inst = *problem.instance;
  // 5 facts per (i, j) pair (4 pairs) + 2 orientations × 1 edge × 2
  // indices = 20 + 4 = 24 facts.
  EXPECT_EQ(inst.num_facts(), 24u);
  // J holds 3 facts per (i, j) pair.
  EXPECT_EQ(problem.j.count(), 12u);
  // Spot-check Figure 5 rows: R1(0, p^0_0, r^1_1) ∈ I \ J with
  // R1(0, p^0_0, r^1_1) ≻ R1(0, p^0_0, v_0) ∈ J.
  FactId pr = inst.FindLabel("pr:0:0:1");
  FactId pv = inst.FindLabel("pv:0:0");
  ASSERT_NE(pr, kInvalidFactId);
  ASSERT_NE(pv, kInvalidFactId);
  EXPECT_FALSE(problem.j.test(pr));
  EXPECT_TRUE(problem.j.test(pv));
  EXPECT_TRUE(problem.priority->Prefers(pr, pv));
}

TEST(HcReductionTest, ConstructionIsLegal) {
  // "The reader can verify that the input we have defined is legal; that
  // is, ≻ is acyclic and gives preferences only between conflicting
  // facts, and J is consistent" — and in fact a repair.
  Rng rng(11);
  for (size_t n = 2; n <= 5; ++n) {
    UndirectedGraph g = UndirectedGraph::Random(n, 0.5, &rng);
    PreferredRepairProblem problem = ReduceHamiltonianCycleToS1(g);
    EXPECT_TRUE(
        problem.priority->Validate(PriorityMode::kConflictOnly).ok());
    ConflictGraph cg(*problem.instance);
    EXPECT_TRUE(IsRepair(cg, problem.j)) << "n=" << n;
  }
}

// The heart of Lemma 5.2: J has a global improvement iff G has a
// Hamiltonian cycle (using the permutation definition, under which K2
// with one edge IS Hamiltonian: π = (v0, v1) reuses its single edge).
TEST(HcReductionTest, EquivalenceOnNamedGraphs) {
  // The repair space of the reduced instance grows like 4^(n^2), so the
  // exhaustive ground-truth check is kept to n <= 3 here (n = 4 already
  // means ~10^9 repairs when the answer is "optimal"); see the DISABLED_
  // test below for larger graphs.
  struct Case {
    UndirectedGraph graph;
    bool hamiltonian;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({UndirectedGraph::Cycle(3), true, "C3 = K3"});
  cases.push_back({UndirectedGraph::Path(3), false, "P3"});
  UndirectedGraph v_graph(3);  // only one path-pair: still no cycle
  v_graph.AddEdge(0, 1);
  v_graph.AddEdge(0, 2);
  cases.push_back({v_graph, false, "star K_{1,2}"});
  UndirectedGraph k2(2);
  k2.AddEdge(0, 1);
  cases.push_back({k2, true, "K2 (permutation-Hamiltonian)"});
  UndirectedGraph two_isolated(2);
  cases.push_back({two_isolated, false, "two isolated nodes"});
  UndirectedGraph triangle_minus(3);  // 3 nodes, 2 edges
  triangle_minus.AddEdge(0, 1);
  triangle_minus.AddEdge(1, 2);
  cases.push_back({triangle_minus, false, "P3 relabeled"});

  for (const Case& c : cases) {
    PreferredRepairProblem problem = ReduceHamiltonianCycleToS1(c.graph);
    ConflictGraph cg(*problem.instance);
    CheckResult result =
        ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
    EXPECT_EQ(result.optimal, !c.hamiltonian) << c.name;
    EXPECT_EQ(
        testing_util::VerifyWitness(cg, *problem.priority, problem.j, result),
        "")
        << c.name;
  }
}

// n = 4 graphs: minutes of runtime per non-Hamiltonian case.  Run with
// --gtest_also_run_disabled_tests when full ground truth is wanted.
TEST(HcReductionTest, DISABLED_EquivalenceOnLargerGraphs) {
  struct Case {
    UndirectedGraph graph;
    bool hamiltonian;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({UndirectedGraph::Cycle(4), true, "C4"});
  cases.push_back({UndirectedGraph::Complete(4), true, "K4"});
  cases.push_back({UndirectedGraph::Path(4), false, "P4"});
  for (const Case& c : cases) {
    PreferredRepairProblem problem = ReduceHamiltonianCycleToS1(c.graph);
    ConflictGraph cg(*problem.instance);
    CheckResult result =
        ExhaustiveCheckGlobalOptimal(cg, *problem.priority, problem.j);
    EXPECT_EQ(result.optimal, !c.hamiltonian) << c.name;
  }
}

TEST(HcReductionTest, ExplicitImprovementFromCycle) {
  // The "if" direction, constructively: the J′ built from a Hamiltonian
  // cycle is a global improvement of J.
  UndirectedGraph g = UndirectedGraph::Cycle(4);
  PreferredRepairProblem problem = ReduceHamiltonianCycleToS1(g);
  ConflictGraph cg(*problem.instance);
  auto cycle = FindHamiltonianCycle(g);
  ASSERT_TRUE(cycle.has_value());
  DynamicBitset improvement =
      ImprovementFromHamiltonianCycle(problem, g, *cycle);
  EXPECT_TRUE(IsConsistent(cg, improvement));
  EXPECT_TRUE(
      IsGlobalImprovement(cg, *problem.priority, problem.j, improvement));
}

// --- §5.3: the Π translation ---------------------------------------------------

// Targets exercising every branch of the Π case split.
std::vector<Schema> PiTargets() {
  std::vector<Schema> out;
  // S1 itself: keys {1,2}, {2,3}, {1,3}; every attribute lies in exactly
  // two key sets.
  out.push_back(HardSchemaS1());
  // Keys {1,2}, {2,3}, {1,3} over arity 4: attribute 4 in no key set
  // (triple values).
  out.push_back(Schema::SingleRelation(
      "R", 4,
      {FD(AttrSet{1, 2}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{2, 3}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{1, 3}, AttrSet{1, 2, 3, 4})}));
  // Keys {1,4}, {2,4}, {3,4}: attribute 4 in all three (bullet), the
  // others in exactly one (pair values).
  out.push_back(Schema::SingleRelation(
      "R", 4,
      {FD(AttrSet{1, 4}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{2, 4}, AttrSet{1, 2, 3, 4}),
       FD(AttrSet{3, 4}, AttrSet{1, 2, 3, 4})}));
  // Four keys over arity 5 (k > 3; the fourth key rides along).
  out.push_back(Schema::SingleRelation(
      "R", 5,
      {FD(AttrSet{1, 2}, AttrSet{1, 2, 3, 4, 5}),
       FD(AttrSet{2, 3}, AttrSet{1, 2, 3, 4, 5}),
       FD(AttrSet{1, 3}, AttrSet{1, 2, 3, 4, 5}),
       FD(AttrSet{4, 5}, AttrSet{1, 2, 3, 4, 5})}));
  return out;
}

TEST(PiReductionTest, CreateRejectsTractableTargets) {
  EXPECT_FALSE(PiCase1Reduction::Create(
                   Schema::SingleRelation("R", 2,
                                          {FD(AttrSet{1}, AttrSet{2})}))
                   .ok());
  EXPECT_FALSE(PiCase1Reduction::Create(CcpHardSchemaSd()).ok());  // 2 keys
  EXPECT_FALSE(PiCase1Reduction::Create(HardSchemaS4()).ok());  // not keys
}

TEST(PiReductionTest, InjectivityAndConsistencyPreservation) {
  // Lemmas 5.3 / 5.4 checked empirically on a reduction instance (rich in
  // near-collisions) and on random S1 instances.
  UndirectedGraph g = UndirectedGraph::Cycle(3);
  PreferredRepairProblem hc = ReduceHamiltonianCycleToS1(g);
  for (const Schema& target : PiTargets()) {
    auto reduction = PiCase1Reduction::Create(target);
    ASSERT_TRUE(reduction.ok()) << target.ToString();
    EXPECT_EQ(ValidatePiProperties(*reduction, *hc.instance).ToString(),
              "OK");
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      RandomProblemOptions opts;
      opts.facts_per_relation = 25;
      opts.domain_size = 3;
      opts.seed = seed;
      PreferredRepairProblem random_problem =
          GenerateRandomProblem(HardSchemaS1(), opts);
      EXPECT_EQ(
          ValidatePiProperties(*reduction, *random_problem.instance)
              .ToString(),
          "OK");
    }
  }
}

TEST(PiReductionTest, EndToEndEquivalence) {
  // J is globally-optimal over S1 iff Π(J) is globally-optimal over the
  // target — the paper's reduction correctness, checked exhaustively on
  // random S1 inputs (both optimal and non-optimal ones).
  for (const Schema& target : PiTargets()) {
    auto reduction = PiCase1Reduction::Create(target);
    ASSERT_TRUE(reduction.ok());
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      RandomProblemOptions opts;
      opts.facts_per_relation = 12;
      opts.domain_size = 2;
      opts.priority_density = 0.7;
      opts.j_policy =
          (seed % 2 == 0) ? JPolicy::kRandomRepair : JPolicy::kLowPriorityRepair;
      opts.seed = seed * 31;
      PreferredRepairProblem src = GenerateRandomProblem(HardSchemaS1(), opts);
      PreferredRepairProblem dst = reduction->Apply(src);

      ConflictGraph src_cg(*src.instance);
      ConflictGraph dst_cg(*dst.instance);
      bool src_optimal =
          ExhaustiveCheckGlobalOptimal(src_cg, *src.priority, src.j).optimal;
      bool dst_optimal =
          ExhaustiveCheckGlobalOptimal(dst_cg, *dst.priority, dst.j).optimal;
      EXPECT_EQ(src_optimal, dst_optimal) << "seed " << seed;
    }
  }
}

TEST(PiReductionTest, HcThroughPiEndToEnd) {
  // Compose the two reductions: HC → S1 → a 4-ary three-key schema.  The
  // composed instance is globally-optimal iff the graph is not
  // Hamiltonian.
  auto reduction = PiCase1Reduction::Create(PiTargets()[2]);
  ASSERT_TRUE(reduction.ok());
  for (bool hamiltonian : {true, false}) {
    UndirectedGraph g =
        hamiltonian ? UndirectedGraph::Cycle(3) : UndirectedGraph::Path(3);
    PreferredRepairProblem src = ReduceHamiltonianCycleToS1(g);
    PreferredRepairProblem dst = reduction->Apply(src);
    EXPECT_TRUE(dst.priority->Validate(PriorityMode::kConflictOnly).ok());
    ConflictGraph cg(*dst.instance);
    EXPECT_TRUE(IsRepair(cg, dst.j));
    CheckResult result =
        ExhaustiveCheckGlobalOptimal(cg, *dst.priority, dst.j);
    EXPECT_EQ(result.optimal, !hamiltonian);
  }
}

}  // namespace
}  // namespace prefrep
