// B8 — repair enumeration and counting: growth of the repair space with
// conflict density, the Bron–Kerbosch enumerator's throughput, and the
// cost of materializing all optimal repairs per semantics.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "conflicts/conflicts.h"
#include "repair/exhaustive.h"

namespace prefrep {
namespace {

// Density sweep: domain size 2 creates huge conflict groups (few, large
// repairs); large domains approach conflict-free (single repair).
void BM_Enumeration_DensitySweep(benchmark::State& state) {
  RandomProblemOptions opts;
  opts.facts_per_relation = 24;
  opts.domain_size = static_cast<size_t>(state.range(0));
  opts.seed = 5;
  PreferredRepairProblem problem =
      GenerateRandomProblem(bench::OneFdSchema(), opts);
  ConflictGraph cg(*problem.instance);
  uint64_t repairs = 0;
  for (auto _ : state) {
    repairs = CountRepairs(cg);
    benchmark::DoNotOptimize(repairs);
  }
  state.counters["repairs"] = static_cast<double>(repairs);
  state.counters["conflicts"] = static_cast<double>(cg.num_edges());
}
BENCHMARK(BM_Enumeration_DensitySweep)->DenseRange(2, 12, 2);

void BM_Enumeration_SizeSweep(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kRandomRepair);
  ConflictGraph cg(*problem.instance);
  uint64_t repairs = 0;
  for (auto _ : state) {
    repairs = CountRepairs(cg);
    benchmark::DoNotOptimize(repairs);
  }
  state.counters["repairs"] = static_cast<double>(repairs);
}
BENCHMARK(BM_Enumeration_SizeSweep)->RangeMultiplier(2)->Range(8, 64);

void BM_Enumeration_ConflictGraphBuild(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kRandomRepair);
  for (auto _ : state) {
    ConflictGraph cg(*problem.instance);
    benchmark::DoNotOptimize(cg.num_edges());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Enumeration_ConflictGraphBuild)->RangeMultiplier(2)
    ->Range(64, 8192)->Complexity();

void BM_Enumeration_AllOptimal(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::TwoKeysSchema(), 20, JPolicy::kRandomRepair,
      /*seed=*/1);
  ConflictGraph cg(*problem.instance);
  RepairSemantics semantics =
      state.range(0) == 0
          ? RepairSemantics::kGlobal
          : (state.range(0) == 1 ? RepairSemantics::kPareto
                                 : RepairSemantics::kCompletion);
  size_t count = 0;
  for (auto _ : state) {
    count = AllOptimalRepairs(cg, *problem.priority, semantics).size();
    benchmark::DoNotOptimize(count);
  }
  state.SetLabel(state.range(0) == 0   ? "global"
                 : state.range(0) == 1 ? "pareto"
                                       : "completion");
  state.counters["optimal"] = static_cast<double>(count);
}
BENCHMARK(BM_Enumeration_AllOptimal)->DenseRange(0, 2, 1);

// --- Ablations (design choices called out in DESIGN.md) ---------------------

// Bron–Kerbosch pivoting: enumeration with and without the pivot.
void BM_Ablation_EnumerationPivot(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), 32, JPolicy::kRandomRepair,
      /*seed=*/11);
  ConflictGraph cg(*problem.instance);
  bool use_pivot = state.range(0) == 1;
  uint64_t count = 0;
  for (auto _ : state) {
    count = 0;
    auto counter = [&count](const DynamicBitset&) {
      ++count;
      return true;
    };
    if (use_pivot) {
      ForEachRepair(cg, counter);
    } else {
      ForEachRepairNoPivot(cg, counter);
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetLabel(use_pivot ? "pivot" : "no-pivot");
  state.counters["repairs"] = static_cast<double>(count);
}
BENCHMARK(BM_Ablation_EnumerationPivot)->DenseRange(0, 1, 1);

// Conflict detection: hash-bucketed construction vs naive all-pairs.
void BM_Ablation_ConflictDetection(benchmark::State& state) {
  PreferredRepairProblem problem = bench::SizedProblem(
      bench::OneFdSchema(), state.range(0), JPolicy::kRandomRepair);
  bool hashed = state.range(1) == 1;
  size_t edges = 0;
  for (auto _ : state) {
    if (hashed) {
      ConflictGraph cg(*problem.instance);
      edges = cg.num_edges();
    } else {
      edges = AllConflictPairsNaive(*problem.instance).size();
    }
    benchmark::DoNotOptimize(edges);
  }
  state.SetLabel(hashed ? "hashed" : "naive");
  state.counters["conflicts"] = static_cast<double>(edges);
}
BENCHMARK(BM_Ablation_ConflictDetection)
    ->ArgsProduct({{256, 1024, 4096}, {0, 1}});

}  // namespace
}  // namespace prefrep

BENCHMARK_MAIN();
