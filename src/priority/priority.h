// Copyright (c) prefrep contributors.
// Priority relations (§2.3, §7).  A priority ≻ on an instance I is an
// acyclic binary relation on the facts of I; "f ≻ g" reads "f has higher
// priority than g".  In the ordinary setting (§2.3) priorities must relate
// only conflicting facts; in the cross-conflict setting (ccp, §7) any
// acyclic relation is allowed.

#ifndef PREFREP_PRIORITY_PRIORITY_H_
#define PREFREP_PRIORITY_PRIORITY_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "model/instance.h"

namespace prefrep {

/// Which priority relations a checking problem admits.
enum class PriorityMode {
  /// §2.3: f ≻ g only for conflicting f, g (ordinary prioritizing
  /// instance).
  kConflictOnly,
  /// §7: any acyclic relation (cross-conflict-prioritizing instance).
  kCrossConflict,
};

/// An acyclic binary priority relation over the facts of one instance.
///
/// Edges are inserted with Add/Prefer; Validate() checks acyclicity and,
/// in kConflictOnly mode, that every edge joins conflicting facts.
/// Algorithms assume a validated relation.
class PriorityRelation {
 public:
  /// Creates an empty priority over the facts of `instance` (which must
  /// outlive this relation; fact ids must already be final).
  explicit PriorityRelation(const Instance* instance);

  PREFREP_DISALLOW_COPY(PriorityRelation);
  PriorityRelation(PriorityRelation&&) = default;
  PriorityRelation& operator=(PriorityRelation&&) = default;

  const Instance& instance() const { return *instance_; }

  /// Declares `higher ≻ lower`.  Duplicate edges are ignored;
  /// self-loops are rejected (they are cycles of length 1).
  Status Add(FactId higher, FactId lower);

  /// Declares a preference by fact labels.
  Status AddByLabels(std::string_view higher, std::string_view lower);

  /// Fatal-on-error convenience for literal construction.
  void MustAdd(FactId higher, FactId lower);

  /// Removes every edge incident to `f` (both orientations), preserving
  /// the relative order of the surviving edges — serialization order is
  /// part of the serve layer's byte-identical-rebuild contract.  Returns
  /// the number of edges removed.  Used when a fact is deleted.
  size_t RemoveEdgesTouching(FactId f);

  /// Grows the per-fact edge lists to cover facts appended to the
  /// instance after this relation was constructed (fact ids are stable,
  /// existing edges are unaffected).  Add() syncs automatically; callers
  /// reading Dominates()/DominatedBy() for fresh facts must sync first.
  void SyncUniverse();

  /// True iff f ≻ g was declared.
  bool Prefers(FactId f, FactId g) const {
    return edge_set_.count({f, g}) > 0;
  }

  /// Facts g with f ≻ g.
  const std::vector<FactId>& Dominates(FactId f) const {
    PREFREP_CHECK(f < dominates_.size());
    return dominates_[f];
  }

  /// Facts g with g ≻ f.
  const std::vector<FactId>& DominatedBy(FactId f) const {
    PREFREP_CHECK(f < dominated_by_.size());
    return dominated_by_[f];
  }

  size_t num_edges() const { return edges_.size(); }
  const std::vector<std::pair<FactId, FactId>>& edges() const {
    return edges_;
  }

  /// True iff the relation has no cycle (required of every priority).
  bool IsAcyclic() const;

  /// Full validation: acyclicity and, in kConflictOnly mode, that every
  /// edge joins conflicting facts (which also forces same-relation edges).
  Status Validate(PriorityMode mode) const;

  /// True iff every edge joins conflicting facts.
  bool IsConflictBounded() const;

 private:
  const Instance* instance_;
  std::vector<std::pair<FactId, FactId>> edges_;
  std::unordered_set<std::pair<FactId, FactId>, PairHash<FactId, FactId>>
      edge_set_;
  std::vector<std::vector<FactId>> dominates_;
  std::vector<std::vector<FactId>> dominated_by_;
};

}  // namespace prefrep

#endif  // PREFREP_PRIORITY_PRIORITY_H_
