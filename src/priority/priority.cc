#include "priority/priority.h"

#include <algorithm>

#include "conflicts/conflicts.h"

namespace prefrep {

PriorityRelation::PriorityRelation(const Instance* instance)
    : instance_(instance) {
  PREFREP_CHECK(instance != nullptr);
  dominates_.resize(instance->num_facts());
  dominated_by_.resize(instance->num_facts());
}

void PriorityRelation::SyncUniverse() {
  if (dominates_.size() < instance_->num_facts()) {
    dominates_.resize(instance_->num_facts());
    dominated_by_.resize(instance_->num_facts());
  }
}

size_t PriorityRelation::RemoveEdgesTouching(FactId f) {
  size_t removed = 0;
  std::vector<std::pair<FactId, FactId>> kept;
  kept.reserve(edges_.size());
  for (const auto& edge : edges_) {
    if (edge.first != f && edge.second != f) {
      kept.push_back(edge);
      continue;
    }
    ++removed;
    edge_set_.erase(edge);
    // Unlink from the endpoint that survives; f's own lists are cleared
    // wholesale below.  std::remove keeps the survivors' order.
    if (edge.first == f) {
      std::vector<FactId>& v = dominated_by_[edge.second];
      v.erase(std::remove(v.begin(), v.end(), f), v.end());
    } else {
      std::vector<FactId>& v = dominates_[edge.first];
      v.erase(std::remove(v.begin(), v.end(), f), v.end());
    }
  }
  edges_ = std::move(kept);
  if (f < dominates_.size()) {
    dominates_[f].clear();
    dominated_by_[f].clear();
  }
  return removed;
}

Status PriorityRelation::Add(FactId higher, FactId lower) {
  if (higher >= instance_->num_facts() || lower >= instance_->num_facts()) {
    return Status::OutOfRange("priority edge references unknown fact");
  }
  SyncUniverse();
  if (higher == lower) {
    return Status::InvalidArgument(
        "priority self-loop on fact " + instance_->FactToString(higher) +
        " (a cycle of length 1)");
  }
  if (edge_set_.count({higher, lower})) {
    return Status::OK();  // duplicate edge, no-op
  }
  edges_.emplace_back(higher, lower);
  edge_set_.insert({higher, lower});
  dominates_[higher].push_back(lower);
  dominated_by_[lower].push_back(higher);
  return Status::OK();
}

Status PriorityRelation::AddByLabels(std::string_view higher,
                                     std::string_view lower) {
  FactId h = instance_->FindLabel(higher);
  if (h == kInvalidFactId) {
    return Status::NotFound("unknown fact label '" + std::string(higher) +
                            "'");
  }
  FactId l = instance_->FindLabel(lower);
  if (l == kInvalidFactId) {
    return Status::NotFound("unknown fact label '" + std::string(lower) +
                            "'");
  }
  return Add(h, l);
}

void PriorityRelation::MustAdd(FactId higher, FactId lower) {
  Status s = Add(higher, lower);
  PREFREP_CHECK_MSG(s.ok(), "PriorityRelation::MustAdd failed");
}

bool PriorityRelation::IsAcyclic() const {
  // Kahn's algorithm on the ≻-digraph (edge f → g for f ≻ g).
  size_t n = instance_->num_facts();
  std::vector<uint32_t> indegree(n, 0);
  for (const auto& [higher, lower] : edges_) {
    (void)higher;
    ++indegree[lower];
  }
  std::vector<FactId> queue;
  queue.reserve(n);
  for (FactId f = 0; f < n; ++f) {
    if (indegree[f] == 0) {
      queue.push_back(f);
    }
  }
  size_t processed = 0;
  while (!queue.empty()) {
    FactId f = queue.back();
    queue.pop_back();
    ++processed;
    if (f >= dominates_.size()) {
      continue;  // fact appended after construction, no edges yet
    }
    for (FactId g : dominates_[f]) {
      if (--indegree[g] == 0) {
        queue.push_back(g);
      }
    }
  }
  return processed == n;
}

bool PriorityRelation::IsConflictBounded() const {
  for (const auto& [higher, lower] : edges_) {
    if (!FactsConflict(*instance_, higher, lower)) {
      return false;
    }
  }
  return true;
}

Status PriorityRelation::Validate(PriorityMode mode) const {
  if (!IsAcyclic()) {
    return Status::InvalidArgument("priority relation has a cycle");
  }
  if (mode == PriorityMode::kConflictOnly && !IsConflictBounded()) {
    return Status::InvalidArgument(
        "priority relation relates non-conflicting facts; use "
        "PriorityMode::kCrossConflict for ccp-instances (§7)");
  }
  return Status::OK();
}

}  // namespace prefrep
