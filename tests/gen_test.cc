// Tests for the workload generators: structural invariants of the
// random problem generator (acyclicity, conflict-boundedness, J-policy
// guarantees, skew behaviour) across a seed sweep.

#include <gtest/gtest.h>

#include "cache/block_fingerprint.h"
#include "gen/categorical_workload.h"
#include "gen/edit_script.h"
#include "gen/hard_workloads.h"
#include "io/ops_format.h"
#include "gen/random_instance.h"
#include "model/context.h"
#include "repair/block_solver.h"
#include "repair/checker.h"
#include "repair/exhaustive.h"
#include "reductions/hard_schemas.h"
#include "repair/subinstance_ops.h"

namespace prefrep {
namespace {

class GeneratorInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorInvariants, PriorityAlwaysValid) {
  RandomProblemOptions opts;
  opts.facts_per_relation = 25;
  opts.domain_size = 3;
  opts.priority_density = 0.8;
  opts.seed = GetParam();
  PreferredRepairProblem p =
      GenerateRandomProblem(HardSchemaS4(), opts);
  // Without cross density the priority is conflict-bounded and acyclic.
  EXPECT_TRUE(p.priority->Validate(PriorityMode::kConflictOnly).ok());

  opts.cross_priority_density = 0.8;
  PreferredRepairProblem ccp =
      GenerateRandomProblem(HardSchemaS4(), opts);
  EXPECT_TRUE(ccp.priority->Validate(PriorityMode::kCrossConflict).ok());
}

TEST_P(GeneratorInvariants, RepairPoliciesYieldRepairs) {
  for (JPolicy policy : {JPolicy::kRandomRepair, JPolicy::kLowPriorityRepair,
                         JPolicy::kHighPriorityRepair}) {
    RandomProblemOptions opts;
    opts.facts_per_relation = 20;
    opts.domain_size = 3;
    opts.j_policy = policy;
    opts.seed = GetParam() * 7 + 1;
    PreferredRepairProblem p =
        GenerateRandomProblem(HardSchemaS2(), opts);
    ConflictGraph cg(*p.instance);
    EXPECT_TRUE(IsRepair(cg, p.j));
  }
}

TEST_P(GeneratorInvariants, SubsetPolicyYieldsConsistentSubset) {
  RandomProblemOptions opts;
  opts.facts_per_relation = 20;
  opts.domain_size = 3;
  opts.j_policy = JPolicy::kRandomConsistentSubset;
  opts.seed = GetParam() * 13 + 5;
  PreferredRepairProblem p = GenerateRandomProblem(HardSchemaS2(), opts);
  EXPECT_TRUE(IsConsistent(*p.instance, p.j));
}

TEST_P(GeneratorInvariants, DeterministicForFixedSeed) {
  RandomProblemOptions opts;
  opts.facts_per_relation = 15;
  opts.seed = GetParam();
  PreferredRepairProblem a = GenerateRandomProblem(HardSchemaS5(), opts);
  PreferredRepairProblem b = GenerateRandomProblem(HardSchemaS5(), opts);
  EXPECT_EQ(a.instance->num_facts(), b.instance->num_facts());
  EXPECT_EQ(a.priority->edges(), b.priority->edges());
  EXPECT_EQ(a.j, b.j);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorInvariants,
                         ::testing::Range<uint64_t>(1, 16));

TEST(GeneratorTest, DomainSizeControlsConflicts) {
  Schema schema = Schema::SingleRelation("R", 2, {FD(AttrSet{1}, AttrSet{2})});
  RandomProblemOptions small_domain;
  small_domain.facts_per_relation = 40;
  small_domain.domain_size = 4;
  small_domain.seed = 3;
  RandomProblemOptions big_domain = small_domain;
  big_domain.domain_size = 40;
  PreferredRepairProblem pd = GenerateRandomProblem(schema, small_domain);
  PreferredRepairProblem ps = GenerateRandomProblem(schema, big_domain);
  ConflictGraph dense(*pd.instance);
  ConflictGraph sparse(*ps.instance);
  // Small domains dedupe more tuples, so compare conflict *rates*
  // (edges per fact pair) rather than raw counts.
  auto rate = [](const ConflictGraph& cg) {
    size_t n = cg.num_facts();
    return n < 2 ? 0.0
                 : static_cast<double>(cg.num_edges()) * 2.0 /
                       (static_cast<double>(n) * (n - 1));
  };
  EXPECT_GT(rate(dense), 2.0 * rate(sparse));
}

TEST(GeneratorTest, PriorityDensityControlsEdges) {
  Schema schema = Schema::SingleRelation("R", 2, {FD(AttrSet{1}, AttrSet{2})});
  RandomProblemOptions none;
  none.facts_per_relation = 40;
  none.domain_size = 3;
  none.priority_density = 0.0;
  none.seed = 5;
  RandomProblemOptions full = none;
  full.priority_density = 1.0;
  PreferredRepairProblem p0 = GenerateRandomProblem(schema, none);
  PreferredRepairProblem p1 = GenerateRandomProblem(schema, full);
  EXPECT_EQ(p0.priority->num_edges(), 0u);
  ConflictGraph cg(*p1.instance);
  EXPECT_EQ(p1.priority->num_edges(), cg.num_edges());
}

TEST(ShardedWorkloadTest, DecomposesIntoOneBlockPerShard) {
  for (size_t shards : {size_t{1}, size_t{3}, size_t{8}}) {
    PreferredRepairProblem p = MakeHardShardedWorkload(shards, 4, 3);
    ProblemContext ctx(*p.instance, *p.priority);
    EXPECT_EQ(ctx.blocks().num_blocks(), shards);
    for (const Block& b : ctx.blocks().blocks()) {
      EXPECT_EQ(b.size(), 4u * 3u);
    }
    EXPECT_FALSE(ctx.blocks().free_facts().any());
  }
}

TEST(ShardedWorkloadTest, DefaultShardsShareOneCanonicalFingerprint) {
  PreferredRepairProblem p = MakeHardShardedWorkload(8, 4, 4);
  ProblemContext ctx(*p.instance, *p.priority);
  ASSERT_EQ(ctx.blocks().num_blocks(), 8u);
  const BlockFingerprint first =
      ComputeBlockFingerprint(ctx, ctx.blocks().blocks().front());
  for (const Block& b : ctx.blocks().blocks()) {
    EXPECT_EQ(ComputeBlockFingerprint(ctx, b), first)
        << "shard block #" << b.id
        << " should be a constant-renamed copy of shard 0";
  }
}

TEST(ShardedWorkloadTest, DistinctBlocksKnobMakesFingerprintsPairwiseDistinct) {
  PreferredRepairProblem p =
      MakeHardShardedWorkload(8, 4, 4, /*distinct_blocks=*/true);
  ProblemContext ctx(*p.instance, *p.priority);
  ASSERT_EQ(ctx.blocks().num_blocks(), 8u);
  std::vector<BlockFingerprint> fps;
  for (const Block& b : ctx.blocks().blocks()) {
    fps.push_back(ComputeBlockFingerprint(ctx, b));
  }
  for (size_t a = 0; a < fps.size(); ++a) {
    for (size_t b = a + 1; b < fps.size(); ++b) {
      EXPECT_NE(fps[a], fps[b]) << "shards " << a << " and " << b
                                << " should differ in priority structure";
    }
  }
}

TEST(ShardedWorkloadTest, DistinctBlocksKeepsJOptimalAndShapeIdentical) {
  PreferredRepairProblem same = MakeHardShardedWorkload(4, 3, 3);
  PreferredRepairProblem distinct =
      MakeHardShardedWorkload(4, 3, 3, /*distinct_blocks=*/true);
  // Same facts, same conflict structure, same J — only priority edges
  // are dropped, so the repair space (and the exhaustive cost) match.
  EXPECT_EQ(same.instance->num_facts(), distinct.instance->num_facts());
  EXPECT_EQ(same.j, distinct.j);
  EXPECT_LT(distinct.priority->num_edges(), same.priority->num_edges());
  ProblemContext ctx(*distinct.instance, *distinct.priority);
  RepairChecker checker(ctx);
  auto outcome = checker.CheckGloballyOptimal(distinct.j);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->result.optimal);
}

TEST(EditScriptTest, BaseInstanceIsOneBlockPerShard) {
  EditScriptOptions opts;
  opts.shards = 5;
  opts.facts_per_shard = 4;
  EditScriptWorkload w = MakeEditScriptWorkload(opts);
  ProblemContext ctx(*w.problem.instance, *w.problem.priority);
  ASSERT_EQ(ctx.blocks().num_blocks(), opts.shards);
  for (const Block& b : ctx.blocks().blocks()) {
    EXPECT_EQ(b.fact_list.size(), opts.facts_per_shard);
  }
  EXPECT_TRUE(w.problem.priority->Validate(PriorityMode::kConflictOnly).ok());
  EXPECT_EQ(w.problem.j.count(), opts.shards);
}

TEST(EditScriptTest, EveryGeneratedLineParses) {
  EditScriptOptions opts;
  opts.num_ops = 200;
  opts.seed = 3;
  EditScriptWorkload w = MakeEditScriptWorkload(opts);
  EXPECT_EQ(w.ops.size(), opts.num_ops);
  size_t edits = 0;
  size_t queries = 0;
  for (const std::string& line : w.ops) {
    Result<SessionOp> op = ParseSessionOp(line);
    ASSERT_TRUE(op.ok()) << line << ": " << op.status().ToString();
    switch (op->kind) {
      case SessionOp::Kind::kInsert:
      case SessionOp::Kind::kDelete:
      case SessionOp::Kind::kPrefer:
        ++edits;
        break;
      case SessionOp::Kind::kCheck:
      case SessionOp::Kind::kCount:
      case SessionOp::Kind::kConstruct:
      case SessionOp::Kind::kCqa:
        ++queries;
        break;
      default:
        break;
    }
  }
  // The mix respects query_fraction loosely (it is a coin, not a quota).
  EXPECT_GT(edits, queries);
  EXPECT_GT(queries, 0u);
}

TEST(EditScriptTest, ZipfSkewConcentratesEditsOnHotShards) {
  EditScriptOptions opts;
  opts.shards = 8;
  opts.num_ops = 300;
  opts.shard_skew = 2.0;
  opts.query_fraction = 0.0;
  opts.jset_every = 0;
  opts.seed = 17;
  EditScriptWorkload w = MakeEditScriptWorkload(opts);
  // Fresh inserts carry their shard in the first constant: R(s<k>, ...).
  size_t hot = 0;
  size_t cold = 0;
  for (const std::string& line : w.ops) {
    if (line.find("R(s0,") != std::string::npos) {
      ++hot;
    }
    if (line.find("R(s7,") != std::string::npos) {
      ++cold;
    }
  }
  EXPECT_GT(hot, cold);
}

TEST(EditScriptTest, DeterministicGivenSeed) {
  EditScriptOptions opts;
  opts.num_ops = 64;
  opts.seed = 9;
  EXPECT_EQ(MakeEditScriptWorkload(opts).ops, MakeEditScriptWorkload(opts).ops);
  EditScriptOptions other = opts;
  other.seed = 10;
  EXPECT_NE(MakeEditScriptWorkload(other).ops,
            MakeEditScriptWorkload(opts).ops);
}

TEST(ShardedWorkloadTest, JIsGloballyOptimalAtEveryThreadCount) {
  PreferredRepairProblem p = MakeHardShardedWorkload(4, 3, 3);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ProblemContext ctx(*p.instance, *p.priority);
    ctx.set_parallelism(threads);
    RepairChecker checker(ctx);
    auto outcome = checker.CheckGloballyOptimal(p.j);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(outcome->result.optimal) << "threads=" << threads;
  }
}

TEST(CategoricalWorkloadTest, StructureAndPriorityShape) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 3;
  opts.cliques = 3;
  opts.clique_size = 4;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  EXPECT_TRUE(p.priority->Validate(PriorityMode::kConflictOnly).ok());
  EXPECT_TRUE(p.priority->IsConflictBounded());
  ProblemContext ctx(*p.instance, *p.priority);
  ASSERT_EQ(ctx.blocks().num_blocks(), opts.blocks);
  EXPECT_TRUE(ctx.priority_block_local());
  // Total on conflicts: every conflict edge carries a priority edge,
  // lower id preferred.
  const ConflictGraph& cg = ctx.conflict_graph();
  for (FactId u = 0; u < cg.num_facts(); ++u) {
    for (FactId v : cg.neighbors(u)) {
      if (u < v) {
        EXPECT_TRUE(p.priority->Prefers(u, v));
        EXPECT_FALSE(p.priority->Prefers(v, u));
      }
    }
  }
  // J is a repair, and the unique optimal one under every semantics.
  EXPECT_TRUE(IsRepair(cg, p.j));
  for (RepairSemantics sem :
       {RepairSemantics::kGlobal, RepairSemantics::kPareto,
        RepairSemantics::kCompletion}) {
    std::vector<DynamicBitset> optimal = AllOptimalRepairs(ctx, sem);
    ASSERT_EQ(optimal.size(), 1u) << "sem " << static_cast<int>(sem);
    EXPECT_EQ(optimal.front(), p.j);
  }
}

TEST(CategoricalWorkloadTest, NearMissBreaksExactlyOneBlock) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 3;
  opts.near_miss = true;
  PreferredRepairProblem p = MakeCategoricalWorkload(opts);
  EXPECT_TRUE(p.priority->Validate(PriorityMode::kConflictOnly).ok());
  ProblemContext ctx(*p.instance, *p.priority);
  ASSERT_EQ(ctx.blocks().num_blocks(), opts.blocks);
  const ConflictGraph& cg = ctx.conflict_graph();
  // The stripped block still has its conflicts — hence its many
  // repairs — but no priority edge touches it, so ALL its block-repairs
  // are optimal and the instance has more than one optimal repair.
  const Block& last = ctx.blocks().block(opts.blocks - 1);
  for (FactId f : last.fact_list) {
    for (FactId g : cg.neighbors(f)) {
      EXPECT_FALSE(p.priority->Prefers(f, g));
    }
  }
  std::vector<DynamicBitset> last_optimal = OptimalRepairsWithin(
      cg, *p.priority, last.facts, RepairSemantics::kGlobal);
  EXPECT_GT(last_optimal.size(), 1u);
  // Every other block keeps its total priority and its unique optimum.
  for (size_t i = 0; i + 1 < ctx.blocks().num_blocks(); ++i) {
    std::vector<DynamicBitset> optimal =
        OptimalRepairsWithin(cg, *p.priority, ctx.blocks().block(i).facts,
                             RepairSemantics::kGlobal);
    EXPECT_EQ(optimal.size(), 1u) << "block " << i;
  }
  EXPECT_TRUE(IsRepair(cg, p.j));
}

TEST(CategoricalWorkloadTest, DeterministicForFixedKnobs) {
  CategoricalWorkloadOptions opts;
  opts.blocks = 2;
  PreferredRepairProblem a = MakeCategoricalWorkload(opts);
  PreferredRepairProblem b = MakeCategoricalWorkload(opts);
  EXPECT_EQ(a.instance->num_facts(), b.instance->num_facts());
  EXPECT_EQ(a.priority->edges(), b.priority->edges());
  EXPECT_EQ(a.j, b.j);
}

}  // namespace
}  // namespace prefrep
