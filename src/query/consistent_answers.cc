#include "query/consistent_answers.h"

#include <algorithm>

#include "repair/block_solver.h"

namespace prefrep {

const char* CqaPathName(CqaPath value) {
  switch (value) {
    case CqaPath::kCategorical:
      return "categorical";
    case CqaPath::kEnumeration:
      return "enumeration";
  }
  return "?";
}

namespace {

// The categoricity pre-pass: the unique optimal repair as a singleton
// repair set when the instance is certified categorical, nullopt
// otherwise.  Runs under a PRIVATE governor derived from the caller's
// budget (same node/block/deadline dimensions, deadline anchored at the
// caller's start), so an ambiguous or undecided verdict leaves the
// caller's governor untouched and the enumeration fallback behaves
// byte-identically to a build without the pre-pass.  Worker views
// disable nested parallelism, so the view restores the caller's knob —
// the pre-pass parallelizes over blocks exactly like the enumeration
// it replaces.
std::optional<std::vector<DynamicBitset>> CategoricalRepairSet(
    const ProblemContext& ctx, RepairSemantics semantics,
    const CqaOptions& options) {
  if (ctx.governor().exhausted()) {
    return std::nullopt;  // the enumeration must observe the exhaustion
  }
  ResourceGovernor prepass(ctx.governor().budget(), ctx.governor().start());
  ProblemContext view = ctx.WorkerView(&prepass);
  view.set_parallelism(ctx.parallelism());
  CategoricityResult result =
      DecideCategoricity(view, semantics, options.memo);
  if (result.verdict != Categoricity::kCategorical) {
    return std::nullopt;
  }
  return std::vector<DynamicBitset>{std::move(result.repair)};
}

// The σ-repair set to intersect over, or nullopt when the governed
// enumeration was abandoned by the budget.  An abandoned optimal-repair
// product contains no complete repairs, so there is no usable partial
// result; kAllRepairs streams real repairs and is handled separately by
// the Trilean entry points, which can still refute/confirm early.
std::optional<std::vector<DynamicBitset>> RepairsForBounded(
    const ProblemContext& ctx, AnswerSemantics semantics,
    const DynamicBitset* all_repairs_universe = nullptr,
    const CqaOptions& options = {}) {
  if (options.path != nullptr) {
    *options.path = CqaPath::kEnumeration;
  }
  ResourceGovernor& governor = ctx.governor();
  if (semantics == AnswerSemantics::kAllRepairs) {
    std::vector<DynamicBitset> out;
    auto collect = [&](const DynamicBitset& r) {
      out.push_back(r);
      return true;
    };
    if (all_repairs_universe != nullptr) {
      ForEachRepairWithin(ctx.conflict_graph(), *all_repairs_universe,
                          governor, collect);
    } else {
      ForEachRepair(ctx.conflict_graph(), governor, collect);
    }
    if (governor.exhausted()) {
      return std::nullopt;
    }
    return out;
  }
  RepairSemantics rs = RepairSemantics::kGlobal;
  switch (semantics) {
    case AnswerSemantics::kAllRepairs:
      break;
    case AnswerSemantics::kGlobal:
      rs = RepairSemantics::kGlobal;
      break;
    case AnswerSemantics::kPareto:
      rs = RepairSemantics::kPareto;
      break;
    case AnswerSemantics::kCompletion:
      rs = RepairSemantics::kCompletion;
      break;
  }
  if (!options.force_enumeration) {
    if (std::optional<std::vector<DynamicBitset>> categorical =
            CategoricalRepairSet(ctx, rs, options)) {
      if (options.path != nullptr) {
        *options.path = CqaPath::kCategorical;
      }
      return categorical;
    }
  }
  std::vector<DynamicBitset> out = AllOptimalRepairs(ctx, rs);
  if (out.empty()) {
    // AllOptimalRepairs returns empty exactly when abandoned (even an
    // empty instance yields the one empty repair).
    return std::nullopt;
  }
  return out;
}

std::vector<DynamicBitset> RepairsFor(const ProblemContext& ctx,
                                      AnswerSemantics semantics) {
  std::optional<std::vector<DynamicBitset>> repairs =
      RepairsForBounded(ctx, semantics);
  // Every preferred-repair semantics admits at least one optimal repair
  // (completion-optimal repairs exist, and they are global- and
  // Pareto-optimal); an empty instance has the empty repair.  So a
  // missing repair set means the resource budget fired — a bool/vector
  // API cannot degrade, so governed callers must use the Bounded
  // variants.
  PREFREP_CHECK_MSG(repairs.has_value(),
                    "repair enumeration abandoned by the resource budget — "
                    "use the *Bounded consistent-answer APIs");
  return *std::move(repairs);
}

}  // namespace

std::vector<ConjunctiveQuery::AnswerTuple> ConsistentAnswers(
    const ProblemContext& ctx, const ConjunctiveQuery& query,
    AnswerSemantics semantics) {
  std::vector<DynamicBitset> repairs = RepairsFor(ctx, semantics);
  std::vector<ConjunctiveQuery::AnswerTuple> intersection =
      query.Evaluate(ctx.instance(), repairs.front());
  for (size_t i = 1; i < repairs.size() && !intersection.empty(); ++i) {
    std::vector<ConjunctiveQuery::AnswerTuple> next =
        query.Evaluate(ctx.instance(), repairs[i]);
    std::vector<ConjunctiveQuery::AnswerTuple> merged;
    std::set_intersection(intersection.begin(), intersection.end(),
                          next.begin(), next.end(),
                          std::back_inserter(merged));
    intersection = std::move(merged);
  }
  return intersection;
}

Result<std::vector<ConjunctiveQuery::AnswerTuple>> ConsistentAnswersBounded(
    const ProblemContext& ctx, const ConjunctiveQuery& query,
    AnswerSemantics semantics, const DynamicBitset* all_repairs_universe,
    const CqaOptions& options) {
  std::optional<std::vector<DynamicBitset>> repairs =
      RepairsForBounded(ctx, semantics, all_repairs_universe, options);
  if (!repairs.has_value()) {
    Status status = ctx.governor().ToStatus();
    return status.ok() ? Status::ResourceExhausted(
                             "repair enumeration abandoned (oversized block)")
                       : status;
  }
  std::vector<ConjunctiveQuery::AnswerTuple> intersection =
      query.Evaluate(ctx.instance(), repairs->front());
  for (size_t i = 1; i < repairs->size() && !intersection.empty(); ++i) {
    std::vector<ConjunctiveQuery::AnswerTuple> next =
        query.Evaluate(ctx.instance(), (*repairs)[i]);
    std::vector<ConjunctiveQuery::AnswerTuple> merged;
    std::set_intersection(intersection.begin(), intersection.end(),
                          next.begin(), next.end(),
                          std::back_inserter(merged));
    intersection = std::move(merged);
  }
  return intersection;
}

bool CertainlyTrue(const ProblemContext& ctx, const ConjunctiveQuery& query,
                   AnswerSemantics semantics) {
  for (const DynamicBitset& repair : RepairsFor(ctx, semantics)) {
    if (!query.EvaluateBoolean(ctx.instance(), repair)) {
      return false;
    }
  }
  return true;
}

bool PossiblyTrue(const ProblemContext& ctx, const ConjunctiveQuery& query,
                  AnswerSemantics semantics) {
  for (const DynamicBitset& repair : RepairsFor(ctx, semantics)) {
    if (query.EvaluateBoolean(ctx.instance(), repair)) {
      return true;
    }
  }
  return false;
}

Trilean CertainlyTrueBounded(const ProblemContext& ctx,
                             const ConjunctiveQuery& query,
                             AnswerSemantics semantics,
                             const DynamicBitset* all_repairs_universe,
                             const CqaOptions& options) {
  if (semantics == AnswerSemantics::kAllRepairs) {
    // Stream: each enumerated repair is complete, so one that falsifies
    // Q is a definite refutation even if the budget fires later.
    if (options.path != nullptr) {
      *options.path = CqaPath::kEnumeration;
    }
    ResourceGovernor& governor = ctx.governor();
    bool refuted = false;
    auto probe = [&](const DynamicBitset& repair) {
      if (!query.EvaluateBoolean(ctx.instance(), repair)) {
        refuted = true;
        return false;
      }
      return true;
    };
    if (all_repairs_universe != nullptr) {
      ForEachRepairWithin(ctx.conflict_graph(), *all_repairs_universe,
                          governor, probe);
    } else {
      ForEachRepair(ctx.conflict_graph(), governor, probe);
    }
    if (refuted) {
      return Trilean::kFalse;
    }
    return governor.exhausted() ? Trilean::kUnknown : Trilean::kTrue;
  }
  std::optional<std::vector<DynamicBitset>> repairs =
      RepairsForBounded(ctx, semantics, nullptr, options);
  if (!repairs.has_value()) {
    return Trilean::kUnknown;
  }
  for (const DynamicBitset& repair : *repairs) {
    if (!query.EvaluateBoolean(ctx.instance(), repair)) {
      return Trilean::kFalse;
    }
  }
  return Trilean::kTrue;
}

Trilean PossiblyTrueBounded(const ProblemContext& ctx,
                            const ConjunctiveQuery& query,
                            AnswerSemantics semantics,
                            const DynamicBitset* all_repairs_universe,
                            const CqaOptions& options) {
  if (semantics == AnswerSemantics::kAllRepairs) {
    if (options.path != nullptr) {
      *options.path = CqaPath::kEnumeration;
    }
    ResourceGovernor& governor = ctx.governor();
    bool confirmed = false;
    auto probe = [&](const DynamicBitset& repair) {
      if (query.EvaluateBoolean(ctx.instance(), repair)) {
        confirmed = true;
        return false;
      }
      return true;
    };
    if (all_repairs_universe != nullptr) {
      ForEachRepairWithin(ctx.conflict_graph(), *all_repairs_universe,
                          governor, probe);
    } else {
      ForEachRepair(ctx.conflict_graph(), governor, probe);
    }
    if (confirmed) {
      return Trilean::kTrue;
    }
    return governor.exhausted() ? Trilean::kUnknown : Trilean::kFalse;
  }
  std::optional<std::vector<DynamicBitset>> repairs =
      RepairsForBounded(ctx, semantics, nullptr, options);
  if (!repairs.has_value()) {
    return Trilean::kUnknown;
  }
  for (const DynamicBitset& repair : *repairs) {
    if (query.EvaluateBoolean(ctx.instance(), repair)) {
      return Trilean::kTrue;
    }
  }
  return Trilean::kFalse;
}

std::vector<ConjunctiveQuery::AnswerTuple> ConsistentAnswers(
    const ConflictGraph& cg, const PriorityRelation& priority,
    const ConjunctiveQuery& query, AnswerSemantics semantics) {
  ProblemContext ctx(cg, priority);
  return ConsistentAnswers(ctx, query, semantics);
}

bool CertainlyTrue(const ConflictGraph& cg, const PriorityRelation& priority,
                   const ConjunctiveQuery& query,
                   AnswerSemantics semantics) {
  ProblemContext ctx(cg, priority);
  return CertainlyTrue(ctx, query, semantics);
}

bool PossiblyTrue(const ConflictGraph& cg, const PriorityRelation& priority,
                  const ConjunctiveQuery& query, AnswerSemantics semantics) {
  ProblemContext ctx(cg, priority);
  return PossiblyTrue(ctx, query, semantics);
}

}  // namespace prefrep
