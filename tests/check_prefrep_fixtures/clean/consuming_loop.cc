// Fixture for tools/check_prefrep.py --selftest (never compiled):
// consuming an already-materialized repair list is NOT the product bug
// — the list's size was charged to the governor when it was produced,
// so a single loop over it (even one that materializes answers, even
// with a per-repair inner loop over non-repair data) is fine without a
// checkpoint.  This is the src/query/consistent_answers.cc shape; the
// checker must not flag it.

#include <set>
#include <vector>

namespace prefrep {

struct Repair {};
struct Ctx {};
struct Query {};
std::vector<Repair> AllOptimalRepairs(const Ctx& ctx);
std::vector<int> Evaluate(const Query& query, const Repair& repair);

std::set<int> ConsistentAnswers(const Ctx& ctx, const Query& query) {
  std::set<int> answers;
  std::vector<Repair> repairs = AllOptimalRepairs(ctx);
  for (const Repair& repair : repairs) {
    for (int tuple : Evaluate(query, repair)) {
      answers.insert(tuple);
    }
  }
  return answers;
}

}  // namespace prefrep
